GO ?= go

.PHONY: all build test race vet check bench fleet-bench experiments clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet race

bench:
	$(GO) test -bench=. -benchmem .

fleet-bench:
	$(GO) test -run='^$$' -bench=BenchmarkFleetMigrationStorm -benchmem .

experiments:
	$(GO) run ./cmd/experiments -scale quick
