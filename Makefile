GO ?= go

.PHONY: all build test race vet lint lint-sarif lint-baseline check cover fuzz-smoke bench bench-smoke bench-json bench-check bench-backends bench-cloudload bench-armsrace bench-scale fleet-bench experiments clean

# The headline benchmarks tracked across PRs (BENCH_*.json at the repo root).
BENCH_PATTERN = BenchmarkFleetMigrationStorm|BenchmarkFigure5DetectNoNested|BenchmarkFigure6DetectNested

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Determinism lint: the nine detlint rules (five per-package, plus the
# call-graph wallclock/horizon passes and seedflow/hotpath/errwrap) over
# the whole module. Exits non-zero on any unjustified, non-baselined
# finding; the machine-readable report lands in .build/detlint.json and
# is uploaded as a CI artifact.
lint:
	@mkdir -p .build
	$(GO) run ./cmd/detlint -out .build/detlint.json ./...

# Emit the SARIF report for code-scanning upload.
lint-sarif:
	@mkdir -p .build
	$(GO) run ./cmd/detlint -format sarif -out .build/detlint.sarif ./...

# Grandfather the current findings: rewrite .detlint-baseline.json so
# existing findings stay visible (and auditable) but stop failing CI.
# New findings after this point still fail.
lint-baseline:
	$(GO) run ./cmd/detlint -write-baseline ./...

check: build vet lint race

cover:
	@mkdir -p .build
	$(GO) test -coverprofile=.build/coverage.out ./...
	$(GO) tool cover -func=.build/coverage.out | tail -1

# Short fuzz pass over every fuzz target; a crasher fails the build.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzMonitorDispatch$$' -fuzztime=$(FUZZTIME) ./internal/qemu
	$(GO) test -run='^$$' -fuzz='^FuzzBenchJSONParse$$' -fuzztime=$(FUZZTIME) ./cmd/benchjson
	$(GO) test -run='^$$' -fuzz='^FuzzControlPlaneRequest$$' -fuzztime=$(FUZZTIME) ./internal/controlplane
	$(GO) test -run='^$$' -fuzz='^FuzzStrategySpec$$' -fuzztime=$(FUZZTIME) ./internal/scenario
	$(GO) test -run='^$$' -fuzz='^FuzzAllowDirective$$' -fuzztime=$(FUZZTIME) ./cmd/detlint
	$(GO) test -run='^$$' -fuzz='^FuzzDetlintFindingJSON$$' -fuzztime=$(FUZZTIME) ./cmd/detlint

bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark in every package: catches benchmarks
# that no longer compile or panic, without paying for real measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fleet-bench:
	$(GO) test -run='^$$' -bench=BenchmarkFleetMigrationStorm -benchmem .

# Headline benchmarks as structured JSON (cmd/benchjson). Pass
# BASELINE=BENCH_PRn.json to embed before/after rows and speedups.
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem -benchtime=3x . \
		| $(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) -out BENCH.json
	@echo wrote BENCH.json

# The Fig. 5/6 detection sweeps on every registered hypervisor backend
# (one sub-benchmark per backend × figure) as structured JSON: each
# backend's t0/t1/t2 timing signature lands in BENCH_BACKENDS.json.
bench-backends:
	$(GO) test -run='^$$' -bench='^BenchmarkBackendDetection$$' -benchmem -benchtime=3x . \
		| $(GO) run ./cmd/benchjson -out BENCH_BACKENDS.json
	@echo wrote BENCH_BACKENDS.json

# The million-op control-plane load run as structured JSON: p99 job
# latency and the admission-reject rate land in BENCH_CLOUDLOAD.json.
bench-cloudload:
	$(GO) test -run='^$$' -bench='^BenchmarkCloudLoad$$' -benchmem -benchtime=3x . \
		| $(GO) run ./cmd/benchjson -out BENCH_CLOUDLOAD.json
	@echo wrote BENCH_CLOUDLOAD.json

# The sharded-world scaling run as structured JSON: per-host step cost
# at 8/128/1024 hosts (the ≥0.8x efficiency claim) and the O(1)
# template-fork cost at 64MB-1GB guest images land in BENCH_SCALE.json.
# Committed, not gitignored: the scaling curve is a tracked artefact.
bench-scale:
	$(GO) test -run='^$$' -bench='^BenchmarkShardScale$$|^BenchmarkSpawnFrom$$' -benchmem -benchtime=3x . \
		| $(GO) run ./cmd/benchjson -out BENCH_SCALE.json
	@echo wrote BENCH_SCALE.json

# The strategy × detector × backend coverage matrix as structured JSON:
# the overall catch rate and the count of dedup-evading strategies the
# invariant detector recovers land in BENCH_ARMSRACE.json.
bench-armsrace:
	$(GO) test -run='^$$' -bench='^BenchmarkArmsRaceMatrix$$' -benchmem -benchtime=3x . \
		| $(GO) run ./cmd/benchjson -out BENCH_ARMSRACE.json
	@echo wrote BENCH_ARMSRACE.json

# Re-run the headline benchmarks and fail if any regressed against the
# committed baseline, using the same parser that produced it. The
# threshold is wide because wall-clock ns/op at 3 iterations swings
# ±25% with host load; the gate is meant to catch structural
# regressions (losing the recorded 1.8-4x wins), not scheduler noise.
# Use `-threshold 10` by hand on a quiet machine for a tight check.
bench-check:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem -benchtime=3x . \
		| $(GO) run ./cmd/benchjson -check BENCH_PR4.json -threshold 50

experiments:
	$(GO) run ./cmd/experiments -scale quick

clean:
	rm -rf .build BENCH.json BENCH_BACKENDS.json BENCH_CLOUDLOAD.json BENCH_ARMSRACE.json
