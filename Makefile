GO ?= go

.PHONY: all build test race vet check bench experiments clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet race

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments -scale quick
