GO ?= go

.PHONY: all build test race vet check cover bench bench-smoke fleet-bench experiments clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet race

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark in every package: catches benchmarks
# that no longer compile or panic, without paying for real measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fleet-bench:
	$(GO) test -run='^$$' -bench=BenchmarkFleetMigrationStorm -benchmem .

experiments:
	$(GO) run ./cmd/experiments -scale quick
