// Passive service demo: after installing CloudSkulk, the attacker records
// every packet the victim's users send — including the credentials inside
// an SSH login and the contents of outgoing mail — without the victim
// observing any change (the paper's §IV-B1). The example also uses the
// attacker-side VMI to locate a sensitive file inside the captured guest.
//
//	go run ./examples/passive-sniffer
package main

import (
	"fmt"
	"os"

	"cloudskulk"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "passive-sniffer:", err)
		os.Exit(1)
	}
}

func run() error {
	cloud, err := cloudskulk.New(7, cloudskulk.WithGuestMemMB(512))
	if err != nil {
		return err
	}
	// A customer database lives in the victim before the attack.
	secretDB := cloudskulk.GenerateFile(cloud, "customers.db", 64)
	if err := cloud.Victim.RAM().LoadFile(secretDB, 4096); err != nil {
		return err
	}

	rk, err := cloud.InstallRootkit(cloudskulk.InstallConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("rootkit in place (%.0fs); attaching sniffer to %q\n",
		rk.Report.TotalTime.Seconds(), rk.RITM.Name())

	sniffer := cloudskulk.NewSniffer()
	if err := rk.AttachTap(sniffer); err != nil {
		return err
	}

	// The victim's owner logs in over the forwarded SSH port, exactly as
	// before the attack.
	if err := cloud.Net.AddEndpoint("laptop"); err != nil {
		return err
	}
	if err := cloud.Net.Listen(cloudskulk.Addr{Endpoint: rk.Victim.Endpoint(), Port: 22},
		func(*cloudskulk.Packet) {}); err != nil {
		return err
	}
	session := []string{
		"SSH-2.0-OpenSSH_9.6",
		"user: alice",
		"password: hunter2",
		"mail to: board@example.com body: quarterly numbers attached",
	}
	for _, line := range session {
		pkt := &cloudskulk.Packet{
			From:    cloudskulk.Addr{Endpoint: "laptop", Port: 50514},
			To:      cloudskulk.Addr{Endpoint: cloud.Host.Name(), Port: 2222},
			Payload: []byte(line),
		}
		if err := cloud.Net.Send(pkt); err != nil {
			return err
		}
	}
	cloud.Eng.Run()

	fmt.Println("attacker's keystroke/traffic log (pre-encryption plaintext):")
	for _, payload := range sniffer.PayloadsTo(22) {
		fmt.Printf("  %s\n", payload)
	}

	// VMI: the attacker inspects the captured guest's memory from the L1
	// hypervisor and locates the database that migrated along with it.
	vmi := rk.VictimVMI()
	at, found := vmi.FindFile(secretDB)
	if !found {
		return fmt.Errorf("customer database not found via VMI")
	}
	fmt.Printf("VMI located customers.db at guest page %d (%d pages)\n", at, secretDB.NumPages())

	// And hosts a parasite OS beside the victim for spam relaying.
	parasite, err := rk.LaunchParasite("spam-relay", 64)
	if err != nil {
		return err
	}
	fmt.Printf("parasite %q running at %v beside the victim\n",
		parasite.Name(), parasite.Level())
	return nil
}
