// Detection sweep: runs the dedup-timing detector across probe-file sizes
// and KSM merge windows, on both a clean and an infected host, and prints
// a verdict matrix — the operational tuning guide for a cloud operator
// deploying the paper's defence.
//
//	go run ./examples/detection-sweep
package main

import (
	"fmt"
	"os"
	"time"

	"cloudskulk"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "detection-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	pageSizes := []int{1, 10, 100, 400}
	waits := []time.Duration{100 * time.Millisecond, time.Second, 15 * time.Second}

	fmt.Println("verdict matrix: rows = probe pages, cols = merge window")
	fmt.Printf("%-12s", "")
	for _, w := range waits {
		fmt.Printf("%-28s", w)
	}
	fmt.Println()

	seed := int64(100)
	for _, infected := range []bool{false, true} {
		label := "clean host"
		if infected {
			label = "infected host"
		}
		fmt.Printf("--- %s ---\n", label)
		for _, pages := range pageSizes {
			fmt.Printf("%-12d", pages)
			for _, wait := range waits {
				seed++
				verdict, err := runOnce(seed, infected, pages, wait)
				if err != nil {
					return err
				}
				fmt.Printf("%-28s", verdict)
			}
			fmt.Println()
		}
	}
	fmt.Println()
	fmt.Println("reading: a sufficient merge window detects the rootkit with a")
	fmt.Println("single probe page; short windows are inconclusive, never wrong.")
	return nil
}

func runOnce(seed int64, infected bool, pages int, wait time.Duration) (cloudskulk.Verdict, error) {
	o := cloudskulk.DefaultExperimentOptions()
	o.Seed = seed
	o.GuestMemMB = 256
	o.DetectPages = pages
	o.KSMWait = wait
	if infected {
		res, err := cloudskulk.Figure6DetectionInfected(o)
		if err != nil {
			return 0, err
		}
		return res.Verdict, nil
	}
	res, err := cloudskulk.Figure5DetectionClean(o)
	if err != nil {
		return 0, err
	}
	return res.Verdict, nil
}
