// Active service demo: the victim runs an online-banking web service; the
// attacker's rootkit-in-the-middle drops selected requests and tampers
// with responses served to the bank's clients (the paper's §IV-B2).
//
//	go run ./examples/active-mitm
package main

import (
	"fmt"
	"os"

	"cloudskulk"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "active-mitm:", err)
		os.Exit(1)
	}
}

func run() error {
	cloud, err := cloudskulk.New(11, cloudskulk.WithGuestMemMB(512))
	if err != nil {
		return err
	}
	// The victim serves HTTP on guest port 80, forwarded from host:8080.
	if err := cloud.Victim.AddHostFwd(cloudskulk.FwdRule{HostPort: 8080, GuestPort: 80}); err != nil {
		return err
	}

	rk, err := cloud.InstallRootkit(cloudskulk.InstallConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("rootkit installed; victim bank server captured at %v\n", rk.Victim.Level())

	// Active rules: suppress audit submissions, rewrite balances.
	filter := cloudskulk.NewActiveFilter(
		cloudskulk.FilterRule{
			Port:   80,
			Match:  []byte("POST /audit"),
			Action: cloudskulk.ActionDrop,
		},
		cloudskulk.FilterRule{
			Port:    80,
			Match:   []byte("balance=1000000"),
			Action:  cloudskulk.ActionReplace,
			Replace: []byte("balance=999"),
		},
	)
	if err := rk.AttachTap(filter); err != nil {
		return err
	}

	// The bank's clients keep using host:8080 as always.
	if err := cloud.Net.AddEndpoint("browser"); err != nil {
		return err
	}
	var served []string
	if err := cloud.Net.Listen(cloudskulk.Addr{Endpoint: rk.Victim.Endpoint(), Port: 80},
		func(p *cloudskulk.Packet) { served = append(served, string(p.Payload)) }); err != nil {
		return err
	}
	requests := []string{
		"GET /account balance=1000000 HTTP/1.1",
		"POST /audit body=quarterly-report",
		"GET /transfer to=alice amount=50",
	}
	for _, r := range requests {
		pkt := &cloudskulk.Packet{
			From:    cloudskulk.Addr{Endpoint: "browser", Port: 49152},
			To:      cloudskulk.Addr{Endpoint: cloud.Host.Name(), Port: 8080},
			Payload: []byte(r),
		}
		if err := cloud.Net.Send(pkt); err != nil {
			fmt.Printf("dropped in transit: %q (%v)\n", r, err)
		}
	}
	cloud.Eng.Run()

	fmt.Println("requests the bank server actually received:")
	for _, s := range served {
		fmt.Printf("  %s\n", s)
	}
	dropped, modified := filter.Stats()
	fmt.Printf("attacker stats: %d dropped, %d tampered\n", dropped, modified)
	return nil
}
