// Quickstart: build a simulated cloud host, install the CloudSkulk
// rootkit against its victim VM, then catch it with the paper's
// memory-deduplication timing detector.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"cloudskulk"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A seeded testbed: one host, one 1 GiB victim VM ("guest0").
	cloud, err := cloudskulk.New(1)
	if err != nil {
		return err
	}
	fmt.Printf("victim %q running at %v\n", cloud.Victim.Name(), cloud.Victim.Level())

	// The attack: recon, RITM VM, nested destination, live migration,
	// identity takeover. Zero-value config = the paper's defaults.
	rk, err := cloud.InstallRootkit(cloudskulk.InstallConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("rootkit installed in %.1fs; victim now at %v inside %q\n",
		rk.Report.TotalTime.Seconds(), rk.Victim.Level(), rk.RITM.Name())

	// The defence: load a probe file into both L0 and the guest, let
	// KSM merge, and compare write timings before/after the guest
	// changes its copy.
	cloud.Host.KSM().Start()
	detector := cloudskulk.NewDedupDetector(cloud.Host)
	agent := cloudskulk.NewGuestAgent(rk.Victim, 2048)
	// The rootkit mirrors pushed files to impersonate the guest — the
	// very behaviour the detector exploits.
	agent.OnLoad = rk.InterceptFilePushes(8192)

	verdict, ev, err := detector.Run(agent)
	if err != nil {
		return err
	}
	fmt.Printf("t0=%v  t1=%v  t2=%v per page write\n",
		ev.T0.Mean(), ev.T1.Mean(), ev.T2.Mean())
	fmt.Printf("verdict: %v\n", verdict)
	if verdict != cloudskulk.VerdictNested {
		return fmt.Errorf("expected the rootkit to be detected, got %v", verdict)
	}
	return nil
}
