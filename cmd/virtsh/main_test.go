package main

import (
	"strings"
	"testing"

	"cloudskulk/internal/virtman"
)

func shell(t *testing.T, args []string, script string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, strings.NewReader(script), &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

// TestSingleHostSessionStillWorks: the classic one-machine session is
// unchanged when -hosts is not given, and fleet commands explain what they
// need instead of panicking.
func TestSingleHostSessionStillWorks(t *testing.T) {
	out := shell(t, nil, `
define {"name":"web","memory_mb":64,"vcpus":1,"kvm":true}
start web
list
hosts
`)
	if !strings.Contains(out, "web") || !strings.Contains(out, "running") {
		t.Fatalf("list output missing running domain:\n%s", out)
	}
	if !strings.Contains(out, "error:") || !strings.Contains(out, "-hosts") {
		t.Fatalf("fleet command without a fleet should point at -hosts:\n%s", out)
	}
}

// TestFleetSessionLinkDownBlocksMigration drives the link down / link up
// cycle: migration over a downed fabric link fails with the link-down
// error, and succeeds once the link is restored.
func TestFleetSessionLinkDownBlocksMigration(t *testing.T) {
	out := shell(t, []string{"-hosts", "4"}, `
hosts
fleet spawn h00 web 64
link down h01
fleet migrate web h01
link up h01
fleet migrate web h01
fleet guests
`)
	if !strings.Contains(out, "h03  free 8192 MB  trusted") {
		t.Fatalf("hosts listing missing trusted tag:\n%s", out)
	}
	if !strings.Contains(out, "spawned web on h00") {
		t.Fatalf("spawn missing:\n%s", out)
	}
	if !strings.Contains(out, "link down: h01") {
		t.Fatalf("link down ack missing:\n%s", out)
	}
	if !strings.Contains(out, "error:") || !strings.Contains(out, "link down") ||
		!strings.Contains(out, "migration failed") {
		t.Fatalf("migration over downed link should surface the typed error:\n%s", out)
	}
	if !strings.Contains(out, "migrated web: h00 -> h01") {
		t.Fatalf("migration after link up should succeed:\n%s", out)
	}
	if !strings.Contains(out, "web  on h01  port 2200") {
		t.Fatalf("guest listing should show the new placement:\n%s", out)
	}
}

// TestFleetCommandArityErrors: malformed fleet commands report themselves
// instead of reaching the domain shell.
func TestFleetCommandArityErrors(t *testing.T) {
	out := shell(t, []string{"-hosts", "2"}, `
fleet spawn h00 web
link sideways h01
`)
	if got := strings.Count(out, "error: unknown fleet command"); got != 2 {
		t.Fatalf("want 2 arity errors, got %d:\n%s", got, out)
	}
}

// TestControlPlaneSession drives the tenant/job surface end to end:
// account creation with a quota, an async deploy that stays queued until
// drained, reads answering synchronously, quota rejection, cancellation,
// and the job listing.
func TestControlPlaneSession(t *testing.T) {
	out := shell(t, []string{"-hosts", "4"}, `
tenant add acme 8 512 8
tenant add acme
cp deploy acme web 64
cp list acme
cp drain
cp list acme
cp deploy acme a 16
cp deploy acme b 16
cp deploy acme c 16
cp deploy acme d 16
cp deploy acme e 16
cp cancel job-00000006
cp cancel job-00000002
cp drain
cp usage acme
cp jobs
tenant list
`)
	if !strings.Contains(out, "tenant acme created") {
		t.Fatalf("tenant creation ack missing:\n%s", out)
	}
	if !strings.Contains(out, "error:") || !strings.Contains(out, "tenant already exists") {
		t.Fatalf("duplicate tenant should surface the typed error:\n%s", out)
	}
	if !strings.Contains(out, "job-00000001 queued (deploy acme web 64)") {
		t.Fatalf("deploy submission ack missing:\n%s", out)
	}
	// Before the drain the VM is still deploying; after, it is placed.
	if !strings.Contains(out, "web  64 MB  deploying") {
		t.Fatalf("pre-drain list should show the reservation:\n%s", out)
	}
	if !strings.Contains(out, "web  64 MB  running  on h") {
		t.Fatalf("post-drain list should show placement:\n%s", out)
	}
	// Job 6 (deploy e) overflowed the 4 slots into the queue: cancellable.
	// Job 2 (deploy a) went straight into a slot: refused.
	if !strings.Contains(out, "job-00000006 cancelled") {
		t.Fatalf("cancel of queued job missing:\n%s", out)
	}
	if !strings.Contains(out, "already dispatched") {
		t.Fatalf("cancel of dispatched job should be refused:\n%s", out)
	}
	if !strings.Contains(out, "job-00000006  cancelled") {
		t.Fatalf("job listing should show the cancelled job:\n%s", out)
	}
	if !strings.Contains(out, "acme  vms 5/8  mem 128/512 MB  jobs 0/8") {
		t.Fatalf("usage after drain wrong:\n%s", out)
	}
}

// TestControlPlaneQuotaRejection: a third deploy against a 2-VM quota is
// shed with the typed quota error before ever becoming a job.
func TestControlPlaneQuotaRejection(t *testing.T) {
	out := shell(t, []string{"-hosts", "2"}, `
tenant add acme 2 128 4
cp deploy acme a 16
cp deploy acme b 16
cp deploy acme c 16
`)
	if !strings.Contains(out, "vm quota exceeded") {
		t.Fatalf("third deploy should hit the VM quota:\n%s", out)
	}
}

// TestControlPlaneNeedsFleet: cp/tenant commands in a single-host session
// point at -hosts instead of panicking.
func TestControlPlaneNeedsFleet(t *testing.T) {
	out := shell(t, nil, "tenant add acme\ncp list acme\n")
	if got := strings.Count(out, "needs a fleet session"); got != 2 {
		t.Fatalf("want 2 fleet-session errors, got %d:\n%s", got, out)
	}
}

// TestScenarioCommands drives the arms-race surface from a plain session:
// strategy generation honours the count and the session seed, the roster
// listing names every detector, the matrix runs on the session's backend
// only, and malformed forms report themselves.
func TestScenarioCommands(t *testing.T) {
	if out := shell(t, []string{"-seed", "7"}, "scenario strategies 3\n"); strings.Count(out, "kind=") != 3 {
		t.Fatalf("want 3 strategy wire lines:\n%s", out)
	}
	out := shell(t, []string{"-seed", "7", "-backend", "xen-haswell"}, `
scenario detectors
scenario matrix
scenario strategies zero
scenario bogus
`)
	for _, det := range []string{"dedup-timing", "invariant-checksum", "exit-skew"} {
		if !strings.Contains(out, det) {
			t.Errorf("detector %q missing from roster/matrix output:\n%s", det, out)
		}
	}
	if !strings.Contains(out, "seed=7") || !strings.Contains(out, "xen-haswell") {
		t.Errorf("matrix should run on the session seed and backend:\n%s", out)
	}
	if strings.Contains(out, "kvm-i7-4790") {
		t.Errorf("matrix leaked a backend beyond the session's:\n%s", out)
	}
	if !strings.Contains(out, "must be a positive integer") {
		t.Errorf("bad strategy count should report itself:\n%s", out)
	}
	if !strings.Contains(out, "unknown scenario command") {
		t.Errorf("unknown subcommand should report itself:\n%s", out)
	}
}

// TestScenarioStrategiesSeedBound: the generated strategy list is a pure
// function of -seed — same seed, same wire lines; different seed, a
// different list.
func TestScenarioStrategiesSeedBound(t *testing.T) {
	a := shell(t, []string{"-seed", "3"}, "scenario strategies 6\n")
	b := shell(t, []string{"-seed", "3"}, "scenario strategies 6\n")
	c := shell(t, []string{"-seed", "4"}, "scenario strategies 6\n")
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == c {
		t.Fatalf("different seeds produced identical strategies:\n%s", a)
	}
}

// TestHelpListsEveryCommand: the `help` output covers every command the
// session actually dispatches — all of virtman's domain commands plus the
// session-level ones — so help cannot drift from the command set.
func TestHelpListsEveryCommand(t *testing.T) {
	out := shell(t, nil, "help\n")
	for _, name := range virtman.Commands() {
		if !strings.Contains(out, name) {
			t.Errorf("domain command %q missing from help:\n%s", name, out)
		}
	}
	for _, c := range sessionCommands {
		if !strings.Contains(out, c.usage) {
			t.Errorf("session command %q missing from help:\n%s", c.usage, out)
		}
	}
	// And quit/exit, handled before dispatch, are documented too.
	if !strings.Contains(out, "quit") || !strings.Contains(out, "exit") {
		t.Errorf("session terminators missing from help:\n%s", out)
	}
}

// TestStatsAndTraceCommands: a fleet session exposes the telemetry wired
// through the stack — `stats` shows migration counters after a migration
// and `trace` renders it as a span tree; before any migration `trace`
// explains itself instead of printing nothing.
func TestStatsAndTraceCommands(t *testing.T) {
	out := shell(t, []string{"-hosts", "2"}, "trace\n")
	if !strings.Contains(out, "No spans recorded yet.") {
		t.Fatalf("idle session should explain empty trace:\n%s", out)
	}

	out = shell(t, []string{"-hosts", "2"}, `
fleet spawn h00 web 64
fleet migrate web h01
stats
trace
`)
	for _, want := range []string{
		"# TYPE migrate_completed_total counter",
		"migrate_completed_total 1",
		"fleet_migrations_total 1",
		"migrate",
		"outcome=completed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in stats/trace output:\n%s", want, out)
		}
	}
	// The span tree nests the stream and downtime phases under migrate.
	if !strings.Contains(out, "stream") || !strings.Contains(out, "downtime") {
		t.Errorf("span tree missing migration phases:\n%s", out)
	}
}

// TestSingleHostStatsCommand: the one-machine session wires its own
// registry; domain activity shows up in `stats`.
func TestSingleHostStatsCommand(t *testing.T) {
	out := shell(t, nil, `
define {"name":"web","memory_mb":64,"vcpus":1,"kvm":true}
start web
stats
`)
	if !strings.Contains(out, "kvm_vms_created_total 1") ||
		!strings.Contains(out, "kvm_vms_launched_total") {
		t.Fatalf("stats missing kvm counters:\n%s", out)
	}
}
