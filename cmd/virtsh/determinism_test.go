package main

import (
	"fmt"
	"strings"
	"testing"

	"cloudskulk/internal/runner"
)

// fleetScript is a full fleet session touching every externally visible
// surface: placement, fabric faults, migration, the Prometheus-style
// stats export, and the span-tree trace renderer.
const fleetScript = `
hosts
fleet spawn h00 web 64
fleet spawn h01 db 128
link down h01
fleet migrate web h01
link up h01
fleet migrate web h01
fleet guests
tenant add acme 4 256 2
cp deploy acme app 32
cp deploy acme worker 32
cp drain
cp list acme
cp usage acme
cp jobs
scenario strategies 4
scenario detectors
shard info
shard spawn 32
shard megastorm
stats
trace
`

// sessionOutput runs one complete virtsh fleet session and returns
// everything it printed.
func sessionOutput(seed int64) (string, error) {
	var out strings.Builder
	args := []string{"-seed", fmt.Sprint(seed), "-hosts", "4"}
	if err := run(args, strings.NewReader(fleetScript), &out); err != nil {
		return "", err
	}
	return out.String(), nil
}

// TestCrossWorkerDeterminism pins the repo's core invariant at the
// outermost layer: a session's output is a pure function of its seed.
// The same four seeded sessions run through runner.Map once on a single
// worker and once on eight; any scheduling leak — a shared rand, a map
// iteration reaching the output, wall-clock anywhere in the pipeline —
// shows up as a byte diff between the two runs.
func TestCrossWorkerDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cell := func(i int) (string, error) {
				return sessionOutput(seed + 100*int64(i))
			}
			serial, err := runner.Map(4, runner.Options{Workers: 1}, cell)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			parallel, err := runner.Map(4, runner.Options{Workers: 8}, cell)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Errorf("cell %d (seed %d): output differs between 1 and 8 workers\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
						i, seed+100*int64(i), serial[i], parallel[i])
				}
				// A session that silently printed nothing would pass the
				// comparison vacuously.
				if !strings.Contains(serial[i], "migrated web: h00 -> h01") {
					t.Errorf("cell %d output is missing the migration line:\n%s", i, serial[i])
				}
			}
		})
	}
}
