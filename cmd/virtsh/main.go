// Command virtsh is a virsh-like shell over a simulated host: it reads
// management commands from stdin (or a script via -f) and executes them
// against one fresh simulation, printing each result. Because the host is
// simulated and in-memory, a session *is* the lifetime of the world —
// great for scripting demos and reproducing management-plane flows.
//
// Example session:
//
//	define {"name":"web","memory_mb":1024,"vcpus":1,"kvm":true}
//	start web
//	list
//	reboot web
//	destroy web
//
// Usage:
//
//	virtsh [-seed N] [-f script]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cloudskulk/internal/kvm"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/virtman"
	"cloudskulk/internal/vnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "virtsh:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("virtsh", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	script := fs.String("f", "", "script file (default: stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng := sim.NewEngine(*seed)
	network := vnet.New(eng)
	host, err := kvm.NewHost(eng, network, "host")
	if err != nil {
		return err
	}
	host.SetMigrationService(migrate.NewEngine(eng, network))
	mgr := virtman.NewManager(host)

	input := stdin
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		input = f
	}

	sc := bufio.NewScanner(input)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		out, err := virtman.Execute(mgr, line)
		if err != nil {
			fmt.Fprintf(stdout, "error: %v\n", err)
			continue
		}
		if out != "" {
			fmt.Fprint(stdout, out)
		}
	}
	return sc.Err()
}
