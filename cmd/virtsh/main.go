// Command virtsh is a virsh-like shell over a simulated host: it reads
// management commands from stdin (or a script via -f) and executes them
// against one fresh simulation, printing each result. Because the host is
// simulated and in-memory, a session *is* the lifetime of the world —
// great for scripting demos and reproducing management-plane flows.
//
// Example session:
//
//	define {"name":"web","memory_mb":1024,"vcpus":1,"kvm":true}
//	start web
//	list
//	reboot web
//	destroy web
//
// With -hosts N the session runs against an N-host fleet instead of a
// single machine, and fleet-level commands become available alongside the
// usual domain commands (which then operate on the first host, h00):
//
//	hosts                          list hosts, trust tags, free memory
//	link down <host>               take every fabric link of <host> down
//	link up <host>                 bring them back
//	fleet spawn <host> <guest> <memMB>
//	fleet migrate <guest> <host>   cross-host live migration
//	fleet guests                   list guests and their placement
//
// A fleet session also carries a control plane — the tenant-facing
// management API. `tenant add`/`tenant list` manage accounts; `cp`
// submits API requests in the canonical wire form (mutations become
// async jobs, reads answer immediately); `cp jobs`, `cp cancel`, and
// `cp drain` watch and settle the job queue:
//
//	tenant add acme 4 256 2        quota: 4 VMs, 256 MB, 2 jobs
//	cp deploy acme web 64          -> job-00000001 queued
//	cp drain                       run the clock until jobs settle
//	cp list acme                   web  64 MB  running  on h02
//
// The adversarial scenario engine is reachable from any session:
// `scenario strategies [n]` prints seeded attacker strategies in their
// wire form, `scenario detectors` the detector roster, and
// `scenario matrix` runs the full strategies-times-detectors coverage
// matrix on the session's backend — all pure functions of -seed and
// -backend.
//
// Every session carries a telemetry registry wired through the whole
// stack; `stats` snapshots it (Prometheus text format) and `trace` renders
// completed migrations as span trees. `help` lists everything.
//
// Usage:
//
//	virtsh [-seed N] [-hosts N] [-backend name] [-f script]
//
// -backend builds the session's host(s) on the named hypervisor cost
// profile (default: the paper's kvm-i7-4790); `backends` lists the
// registry and shows each host's assignment.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"cloudskulk/internal/controlplane"
	"cloudskulk/internal/experiments"
	"cloudskulk/internal/fleet"
	"cloudskulk/internal/hv"
	"cloudskulk/internal/kvm"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/scenario"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
	"cloudskulk/internal/virtman"
	"cloudskulk/internal/vnet"

	_ "cloudskulk/internal/hv/backends"
)

// sessionCommands are the shell-level commands layered over virtman's
// domain commands. The `help` output and the dispatch below both follow
// this table (TestHelpListsEveryCommand pins the coverage).
var sessionCommands = []struct{ usage, desc string }{
	{"stats", "telemetry snapshot (Prometheus text format)"},
	{"trace", "completed migrations as span trees"},
	{"backends", "list registered hypervisor backends and host assignments"},
	{"hosts", "list hosts, trust tags, free memory (fleet)"},
	{"link down <host>", "take every fabric link of <host> down (fleet)"},
	{"link up <host>", "bring them back (fleet)"},
	{"fleet spawn <host> <guest> <memMB>", "place and boot a guest (fleet)"},
	{"fleet migrate <guest> <host>", "cross-host live migration (fleet)"},
	{"fleet guests", "list guests and their placement (fleet)"},
	{"tenant add <name> [vms memMB jobs]", "create a tenant account, optionally quota-bounded (fleet)"},
	{"tenant list", "list tenants and their usage against quota (fleet)"},
	{"cp <request>", "control-plane API call: deploy/stop/migrate/snapshot/list/usage (fleet)"},
	{"cp jobs", "list control-plane jobs and their states (fleet)"},
	{"cp cancel <job>", "cancel a still-queued job (fleet)"},
	{"cp drain", "run the clock until every job reaches a terminal state (fleet)"},
	{"scenario strategies [n]", "generate n seeded attacker strategies in wire form (default 5)"},
	{"scenario detectors", "list the detector roster the arms-race matrix runs"},
	{"scenario matrix", "strategies x detectors coverage matrix on this session's backend"},
	{"shard info", "sharded-world sizes and synchronization parameters"},
	{"shard spawn <memMB>", "fork a guest from a golden image and show the COW bookkeeping"},
	{"shard megastorm", "quick sharded-cloud run: provision, churn, migrate, audit"},
	{"quit", "end the session (also: exit)"},
}

// sessionHelp renders virtman's domain commands followed by the
// session-level ones.
func sessionHelp() string {
	var b strings.Builder
	b.WriteString("Domain commands:\n")
	b.WriteString(virtman.Help())
	b.WriteString("\nSession commands:\n")
	width := 0
	for _, c := range sessionCommands {
		if len(c.usage) > width {
			width = len(c.usage)
		}
	}
	for _, c := range sessionCommands {
		fmt.Fprintf(&b, "%-*s  %s\n", width, c.usage, c.desc)
	}
	return b.String()
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "virtsh:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("virtsh", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	hosts := fs.Int("hosts", 0, "run against an N-host fleet instead of one machine")
	script := fs.String("f", "", "script file (default: stdin)")
	backendName := fs.String("backend", "",
		"hypervisor backend (cost profile): "+strings.Join(hv.Names(), ", ")+
			"; default "+hv.DefaultName)
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, err := hv.Lookup(*backendName)
	if err != nil {
		return err
	}

	var (
		host  *kvm.Host
		fl    *fleet.Fleet
		plane *controlplane.Plane
		reg   *telemetry.Registry
		spans *telemetry.SpanTracer
	)
	if *hosts > 0 {
		fl, err = fleet.New(*seed, fleet.WithHosts(*hosts), fleet.WithBackend(*backendName))
		if err != nil {
			return err
		}
		if host, err = fl.Host(fl.HostNames()[0]); err != nil {
			return err
		}
		plane = controlplane.New(fl, controlplane.Config{})
		reg, spans = fl.Telemetry(), fl.Spans()
	} else {
		eng := sim.NewEngine(*seed)
		network := vnet.New(eng)
		if host, err = kvm.NewHostWithBackend(eng, network, "host", backend); err != nil {
			return err
		}
		me := migrate.NewEngine(eng, network)
		host.SetMigrationService(me)
		reg = telemetry.NewRegistry()
		spans = telemetry.NewSpanTracer(eng)
		host.SetTelemetry(reg)
		network.SetTelemetry(reg)
		me.SetTelemetry(reg)
		me.SetSpans(spans)
	}
	mgr := virtman.NewManager(host)

	input := stdin
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		input = f
	}

	sc := bufio.NewScanner(input)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		var (
			out     string
			handled bool
			err     error
		)
		switch line {
		case "help":
			out, handled = sessionHelp(), true
		case "stats":
			out, handled = reg.PromText(), true
			if out == "" {
				out = "No statistics recorded yet.\n"
			}
		case "trace":
			out, handled = spans.Tree(), true
			if out == "" {
				out = "No spans recorded yet.\n"
			}
		case "backends":
			out, handled = backendsList(fl, host), true
		default:
			out, handled, err = scenarioExecute(*seed, backend.Name, line)
			if !handled {
				out, handled, err = shardExecute(*seed, backend.Name, line)
			}
			if !handled {
				out, handled, err = fleetExecute(fl, line)
			}
			if !handled {
				out, handled, err = planeExecute(plane, line)
			}
		}
		if !handled {
			out, err = virtman.Execute(mgr, line)
		}
		if err != nil {
			fmt.Fprintf(stdout, "error: %v\n", err)
			continue
		}
		if out != "" {
			fmt.Fprint(stdout, out)
		}
	}
	return sc.Err()
}

// backendsList renders the backend registry (default starred) followed by
// the session's host-to-backend assignments.
func backendsList(fl *fleet.Fleet, host *kvm.Host) string {
	var b strings.Builder
	b.WriteString("Registered backends:\n")
	width := 0
	for _, be := range hv.All() {
		if len(be.Name) > width {
			width = len(be.Name)
		}
	}
	for _, be := range hv.All() {
		marker := " "
		if be.Name == hv.DefaultName {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s %-*s  %s\n", marker, width, be.Name, be.Description)
	}
	b.WriteString("Host assignments:\n")
	if fl != nil {
		for _, name := range fl.HostNames() {
			h, err := fl.Host(name)
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "  %s  %s\n", name, h.Backend().Name)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "  %s  %s\n", host.Name(), host.Backend().Name)
	return b.String()
}

// scenarioExecute intercepts `scenario ...` commands — the attacker/detector
// arms-race surface. Strategies and the coverage matrix derive from the
// session seed and backend alone, so they replay byte-identically; the
// matrix builds its own per-cell worlds and leaves the session's host
// untouched.
func scenarioExecute(seed int64, backend, line string) (out string, handled bool, err error) {
	f := strings.Fields(line)
	if f[0] != "scenario" {
		return "", false, nil
	}
	switch {
	case (len(f) == 2 || len(f) == 3) && f[1] == "strategies":
		n := 5
		if len(f) == 3 {
			n, err = strconv.Atoi(f[2])
			if err != nil || n <= 0 {
				return "", true, fmt.Errorf("scenario strategies: count must be a positive integer, got %q", f[2])
			}
		}
		return scenario.RenderSpecs(scenario.Generate(seed, n)) + "\n", true, nil
	case len(f) == 2 && f[1] == "detectors":
		var b strings.Builder
		for _, name := range scenario.RosterNames() {
			fmt.Fprintf(&b, "%s\n", name)
		}
		return b.String(), true, nil
	case len(f) == 2 && f[1] == "matrix":
		r, err := scenario.RunMatrix(scenario.MatrixConfig{
			Seed:     seed,
			Backends: []string{backend},
			Workers:  1,
		})
		if err != nil {
			return "", true, err
		}
		return r.Render(), true, nil
	}
	return "", true, fmt.Errorf("unknown scenario command %q", line)
}

// shardExecute intercepts `shard ...` commands — the sharded-world and
// copy-on-write golden-image surface. Everything here is a pure function
// of the session seed and backend: `info` prints the grid sizes, `spawn`
// demonstrates the COW fork bookkeeping on a golden image, and
// `megastorm` runs the quick-scale sharded cloud end to end.
func shardExecute(seed int64, backend, line string) (out string, handled bool, err error) {
	f := strings.Fields(line)
	if f[0] != "shard" {
		return "", false, nil
	}
	switch {
	case len(f) == 2 && f[1] == "info":
		var b strings.Builder
		render := func(label string, c experiments.MegaStormConfig) {
			fmt.Fprintf(&b, "%s: %d shards x %d hosts x %d guests = %d guests on %d hosts, %d MB golden image\n",
				label, c.Shards, c.HostsPerShard, c.GuestsPerHost,
				c.Shards*c.HostsPerShard*c.GuestsPerHost, c.Shards*c.HostsPerShard, c.GuestMemMB)
		}
		render("quick", experiments.QuickMegaStormConfig())
		render("full ", experiments.DefaultMegaStormConfig())
		b.WriteString("sync: conservative rounds, lookahead = inter-shard link latency (2ms),\n")
		b.WriteString("      exchange order (At, From, Seq) — artefacts byte-identical at any worker count\n")
		return b.String(), true, nil
	case len(f) == 3 && f[1] == "spawn":
		memMB, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil || memMB <= 0 || memMB > 4096 {
			return "", true, fmt.Errorf("shard spawn: memMB must be in 1..4096, got %q", f[2])
		}
		golden := mem.NewSpace("golden", memMB<<20)
		golden.FillRandom(rand.New(rand.NewSource(seed)), 0.25)
		tmpl := mem.Freeze("golden", golden)
		fork := mem.SpawnFrom("guest", tmpl)
		var b strings.Builder
		fmt.Fprintf(&b, "template: %d pages, hash %016x\n", tmpl.NumPages(), tmpl.ContentHash())
		fmt.Fprintf(&b, "fork:     shares all pages, hash %016x, materialized chunks %d\n",
			fork.ContentHash(), fork.MaterializedChunks())
		if _, err := fork.Write(0, 0xC0FFEE); err != nil {
			return "", true, err
		}
		copies := fork.ForkStats()
		fmt.Fprintf(&b, "write(0): hash %016x, materialized chunks %d (copied %d)\n",
			fork.ContentHash(), fork.MaterializedChunks(), copies)
		fmt.Fprintf(&b, "template: untouched, hash %016x, %d spawns\n", tmpl.ContentHash(), tmpl.Spawns())
		return b.String(), true, nil
	case len(f) == 2 && f[1] == "megastorm":
		r, err := experiments.MegaStorm(experiments.Options{Seed: seed, Backend: backend, Workers: 1},
			experiments.QuickMegaStormConfig())
		if err != nil {
			return "", true, err
		}
		return r.Render(), true, nil
	}
	return "", true, fmt.Errorf("unknown shard command %q", line)
}

// planeExecute intercepts control-plane session commands (`tenant ...`
// and `cp ...`); everything else falls through. Mutations submit async
// jobs that sit queued until `cp drain` (or any other engine activity)
// advances the virtual clock — the asynchrony is the point.
func planeExecute(p *controlplane.Plane, line string) (out string, handled bool, err error) {
	f := strings.Fields(line)
	if f[0] != "tenant" && f[0] != "cp" {
		return "", false, nil
	}
	if p == nil {
		return "", true, fmt.Errorf("%q needs a fleet session (run with -hosts N)", f[0])
	}
	var b strings.Builder
	switch {
	case f[0] == "tenant" && (len(f) == 3 || len(f) == 6) && f[1] == "add":
		q := controlplane.Quota{}
		if len(f) == 6 {
			vms, err1 := strconv.Atoi(f[3])
			mem, err2 := strconv.ParseInt(f[4], 10, 64)
			jobs, err3 := strconv.Atoi(f[5])
			if err1 != nil || err2 != nil || err3 != nil {
				return "", true, fmt.Errorf("tenant add: quota must be three integers (vms memMB jobs)")
			}
			q = controlplane.Quota{MaxVMs: vms, MaxMemMB: mem, MaxJobs: jobs}
		}
		if err := p.CreateTenant(f[2], q); err != nil {
			return "", true, err
		}
		return fmt.Sprintf("tenant %s created\n", f[2]), true, nil
	case f[0] == "tenant" && len(f) == 2 && f[1] == "list":
		for _, name := range p.Tenants() {
			u, err := p.TenantUsage(name)
			if err != nil {
				return "", true, err
			}
			fmt.Fprintf(&b, "%s  vms %d/%d  mem %d/%d MB  jobs %d/%d\n",
				name, u.VMs, u.Quota.MaxVMs, u.MemMB, u.Quota.MaxMemMB, u.ActiveJobs, u.Quota.MaxJobs)
		}
		return b.String(), true, nil
	case f[0] == "cp" && len(f) == 2 && f[1] == "jobs":
		for _, j := range p.Jobs() {
			fmt.Fprintf(&b, "%s  %-9s  %s", j.ID, j.State, j.Request.Render())
			if j.Host != "" {
				fmt.Fprintf(&b, "  -> %s", j.Host)
			}
			if j.Retries > 0 {
				fmt.Fprintf(&b, "  (%d retries)", j.Retries)
			}
			if j.Err != nil {
				fmt.Fprintf(&b, "  [%v]", j.Err)
			}
			b.WriteString("\n")
		}
		return b.String(), true, nil
	case f[0] == "cp" && len(f) == 3 && f[1] == "cancel":
		if err := p.CancelJob(f[2]); err != nil {
			return "", true, err
		}
		return fmt.Sprintf("%s cancelled\n", f[2]), true, nil
	case f[0] == "cp" && len(f) == 2 && f[1] == "drain":
		before := p.Outstanding()
		p.Drain()
		return fmt.Sprintf("drained: %d job(s) settled\n", before), true, nil
	case f[0] == "cp" && len(f) >= 2:
		req, err := controlplane.ParseRequest(strings.Join(f[1:], " "))
		if err != nil {
			return "", true, err
		}
		if !req.Op.Mutation() {
			switch req.Op {
			case controlplane.OpList:
				vms, err := p.ListVMs(req.Tenant)
				if err != nil {
					return "", true, err
				}
				for _, v := range vms {
					fmt.Fprintf(&b, "%s  %d MB  %s", v.Name, v.MemMB, v.State)
					if v.Host != "" {
						fmt.Fprintf(&b, "  on %s", v.Host)
					}
					b.WriteString("\n")
				}
			case controlplane.OpUsage:
				u, err := p.TenantUsage(req.Tenant)
				if err != nil {
					return "", true, err
				}
				fmt.Fprintf(&b, "%s  vms %d/%d  mem %d/%d MB  jobs %d/%d\n",
					u.Tenant, u.VMs, u.Quota.MaxVMs, u.MemMB, u.Quota.MaxMemMB, u.ActiveJobs, u.Quota.MaxJobs)
			}
			return b.String(), true, nil
		}
		j, err := p.Submit(req)
		if err != nil {
			return "", true, err
		}
		return fmt.Sprintf("%s %s (%s)\n", j.ID, j.State, j.Request.Render()), true, nil
	}
	return "", true, fmt.Errorf("unknown %s command %q", f[0], line)
}

// fleetExecute intercepts fleet-level commands; everything else falls
// through to the per-host virtman shell. handled is true when the line was
// a fleet command (even one that failed), so domain-command errors stay
// virtman's.
func fleetExecute(fl *fleet.Fleet, line string) (out string, handled bool, err error) {
	f := strings.Fields(line)
	switch {
	case f[0] == "hosts", f[0] == "link", f[0] == "fleet":
	default:
		return "", false, nil
	}
	if fl == nil {
		return "", true, fmt.Errorf("%q needs a fleet session (run with -hosts N)", f[0])
	}
	var b strings.Builder
	switch {
	case f[0] == "hosts" && len(f) == 1:
		for _, h := range fl.HostNames() {
			tag := ""
			if fl.Trusted(h) {
				tag = "  trusted"
			}
			fmt.Fprintf(&b, "%s  free %d MB%s\n", h, fl.FreeMemMB(h), tag)
		}
		return b.String(), true, nil
	case f[0] == "link" && len(f) == 3 && (f[1] == "down" || f[1] == "up"):
		if err := fl.SetHostLink(f[2], f[1] == "down"); err != nil {
			return "", true, err
		}
		return fmt.Sprintf("link %s: %s\n", f[1], f[2]), true, nil
	case f[0] == "fleet" && len(f) == 5 && f[1] == "spawn":
		memMB, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return "", true, fmt.Errorf("fleet spawn: bad memory size %q", f[4])
		}
		if _, err := fl.StartGuest(f[2], f[3], memMB); err != nil {
			return "", true, err
		}
		return fmt.Sprintf("spawned %s on %s\n", f[3], f[2]), true, nil
	case f[0] == "fleet" && len(f) == 4 && f[1] == "migrate":
		rep, err := fl.MigrateVM(f[2], f[3])
		if err != nil {
			return "", true, err
		}
		fmt.Fprintf(&b, "migrated %s: %s -> %s in %s", rep.Guest, rep.From, rep.To, rep.Duration)
		if rep.Retries > 0 {
			fmt.Fprintf(&b, " (%d retries)", rep.Retries)
		}
		b.WriteString("\n")
		return b.String(), true, nil
	case f[0] == "fleet" && len(f) == 2 && f[1] == "guests":
		for _, g := range fl.GuestNames() {
			info, err := fl.Lookup(g)
			if err != nil {
				return "", true, err
			}
			fmt.Fprintf(&b, "%s  on %s  port %d\n", g, info.Host, info.ServicePort)
		}
		return b.String(), true, nil
	}
	return "", true, fmt.Errorf("unknown fleet command %q", line)
}
