// Command skulkdetect runs the paper's memory-deduplication timing
// detector against two simulated hosts — one clean, one with a CloudSkulk
// rootkit installed — and prints the t0/t1/t2 evidence and verdicts
// (the paper's Figs. 5 and 6).
//
// Usage:
//
//	skulkdetect [-seed N] [-mem MB] [-pages N] [-wait D]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudskulk"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skulkdetect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("skulkdetect", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	memMB := fs.Int64("mem", 1024, "victim VM memory (MB)")
	pages := fs.Int("pages", 100, "probe file size in pages (File-A)")
	wait := fs.Duration("wait", 15*time.Second, "KSM merge window")
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := cloudskulk.DefaultExperimentOptions()
	o.Seed = *seed
	o.GuestMemMB = *memMB
	o.DetectPages = *pages
	o.KSMWait = *wait

	clean, err := cloudskulk.Figure5DetectionClean(o)
	if err != nil {
		return err
	}
	fmt.Println(clean.Render())

	infected, err := cloudskulk.Figure6DetectionInfected(o)
	if err != nil {
		return err
	}
	fmt.Println(infected.Render())

	fmt.Printf("clean host verdict:    %v\n", clean.Verdict)
	fmt.Printf("infected host verdict: %v\n", infected.Verdict)
	if infected.Verdict != cloudskulk.VerdictNested {
		return fmt.Errorf("detector failed to flag the infected host")
	}
	return nil
}
