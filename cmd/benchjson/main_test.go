package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: cloudskulk
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure5DetectNoNested 	       3	 565833912 ns/op	         0.9080 t0-us	        27.96 t1-us	20718797 B/op	   22528 allocs/op
BenchmarkFleetMigrationStorm-8   	       3	9304055008 ns/op	         1.000 coverage	328280840 B/op	   45814 allocs/op
PASS
ok  	cloudskulk	48.233s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "cloudskulk" {
		t.Fatalf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkFigure5DetectNoNested" || b.Iterations != 3 {
		t.Fatalf("bench[0] = %+v", b)
	}
	if b.NsPerOp != 565833912 || b.BytesPerOp != 20718797 || b.AllocsPerOp != 22528 {
		t.Fatalf("bench[0] numbers = %+v", b)
	}
	if b.Metrics["t0-us"] != 0.908 || b.Metrics["t1-us"] != 27.96 {
		t.Fatalf("bench[0] custom metrics = %v", b.Metrics)
	}
	// The -8 GOMAXPROCS suffix is stripped for stable cross-machine names.
	if rep.Benchmarks[1].Name != "BenchmarkFleetMigrationStorm" {
		t.Fatalf("bench[1] name = %q", rep.Benchmarks[1].Name)
	}
}

func TestCompareComputesSpeedup(t *testing.T) {
	before := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 3000, BytesPerOp: 500},
		{Name: "BenchmarkGone", NsPerOp: 1},
	}
	after := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 100},
		{Name: "BenchmarkNew", NsPerOp: 42},
	}
	cmp := compare(before, after)
	if len(cmp) != 1 {
		t.Fatalf("got %d comparisons, want 1 (only benchmarks in both)", len(cmp))
	}
	c := cmp[0]
	if c.Name != "BenchmarkA" || c.Speedup != 3 || c.BytesDelta != -400 {
		t.Fatalf("comparison = %+v", c)
	}
}

func TestCheckFlagsRegressions(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
	}}
	current := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1050}, // +5%: fine at 10%
		{Name: "BenchmarkB", NsPerOp: 1200}, // +20%: regression
		{Name: "BenchmarkC", NsPerOp: 9999}, // not in baseline: ignored
	}
	fails := check(base, current, 10)
	if len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkB") {
		t.Fatalf("check = %v, want one BenchmarkB regression", fails)
	}
	if fails := check(base, current, 25); len(fails) != 0 {
		t.Fatalf("check at 25%% = %v, want none", fails)
	}
}

// TestRunEndToEnd drives the whole pipeline: parse → baseline report →
// second run with -baseline embedding → -check gate both passing and
// failing.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()

	var before bytes.Buffer
	if code := run(strings.NewReader(sampleBench), &before, os.Stderr, "", "", 10); code != 0 {
		t.Fatalf("plain run exit = %d", code)
	}
	basePath := filepath.Join(dir, "before.json")
	if err := os.WriteFile(basePath, before.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// A faster "after" run.
	faster := strings.ReplaceAll(sampleBench, "565833912 ns/op", "200000000 ns/op")
	var out bytes.Buffer
	if code := run(strings.NewReader(faster), &out, os.Stderr, basePath, "", 10); code != 0 {
		t.Fatalf("baseline run exit = %d", code)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Comparisons) != 2 || len(rep.Baseline) != 2 {
		t.Fatalf("report has %d comparisons / %d baseline rows, want 2/2",
			len(rep.Comparisons), len(rep.Baseline))
	}
	if s := rep.Comparisons[0].Speedup; s < 2.8 || s > 2.9 {
		t.Fatalf("speedup = %v, want ~2.83", s)
	}

	// Gate: the fast run against the slow baseline passes; the slow run
	// against a fast baseline fails.
	var sink bytes.Buffer
	if code := run(strings.NewReader(faster), &sink, &sink, "", basePath, 10); code != 0 {
		t.Fatalf("check of faster run exit = %d, want 0 (output: %s)", code, sink.String())
	}
	fastBase := filepath.Join(dir, "fast.json")
	var fastRep bytes.Buffer
	if code := run(strings.NewReader(faster), &fastRep, os.Stderr, "", "", 10); code != 0 {
		t.Fatal("building fast baseline failed")
	}
	if err := os.WriteFile(fastBase, fastRep.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	sink.Reset()
	if code := run(strings.NewReader(sampleBench), &sink, &sink, "", fastBase, 10); code != 1 {
		t.Fatalf("check of regressed run exit = %d, want 1 (output: %s)", code, sink.String())
	}
	if !strings.Contains(sink.String(), "REGRESSION") {
		t.Fatalf("regression output missing marker: %s", sink.String())
	}
}
