// Command benchjson converts `go test -bench` output into structured JSON,
// so benchmark results can be committed (BENCH_*.json), diffed across PRs,
// and gated in CI.
//
// Modes:
//
//	go test -bench . -benchmem . | benchjson                  # parse to JSON
//	... | benchjson -baseline before.json -out BENCH_PR4.json # embed before/after + speedups
//	... | benchjson -check BENCH_PR4.json -threshold 10       # exit 1 on >10% ns/op regression
//
// -check compares the freshly parsed run against the "after" numbers of the
// committed baseline, using only benchmarks present in both, so adding or
// removing benchmarks never breaks the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Comparison pairs a benchmark with its baseline counterpart. Speedup is
// before/after in ns/op: > 1 means the new code is faster.
type Comparison struct {
	Name       string  `json:"name"`
	NsBefore   float64 `json:"ns_per_op_before"`
	NsAfter    float64 `json:"ns_per_op_after"`
	Speedup    float64 `json:"speedup"`
	BytesDelta float64 `json:"bytes_per_op_delta,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos        string       `json:"goos,omitempty"`
	Goarch      string       `json:"goarch,omitempty"`
	CPU         string       `json:"cpu,omitempty"`
	Pkg         string       `json:"pkg,omitempty"`
	Benchmarks  []Benchmark  `json:"benchmarks"`
	Baseline    []Benchmark  `json:"baseline,omitempty"`
	Comparisons []Comparison `json:"comparisons,omitempty"`
}

// parse reads `go test -bench` output. Lines it does not recognise (test
// chatter, PASS/ok trailers) are ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine decodes one result line:
//
//	BenchmarkName-8   3   9304055008 ns/op   236.3 max-migration-s   328280840 B/op   45814 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names stay stable across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The rest is (value, unit) pairs. ParseFloat accepts NaN and ±Inf,
	// which no real bench run emits and json.Marshal refuses; reject the
	// line rather than producing an unencodable report.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	if b.NsPerOp == 0 && b.Metrics == nil && b.BytesPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func byName(bs []Benchmark) map[string]Benchmark {
	m := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		m[b.Name] = b
	}
	return m
}

// compare builds before/after rows for benchmarks present in both runs,
// preserving the current run's order.
func compare(baseline, current []Benchmark) []Comparison {
	base := byName(baseline)
	var out []Comparison
	for _, b := range current {
		prev, ok := base[b.Name]
		if !ok || prev.NsPerOp == 0 || b.NsPerOp == 0 {
			continue
		}
		out = append(out, Comparison{
			Name:       b.Name,
			NsBefore:   prev.NsPerOp,
			NsAfter:    b.NsPerOp,
			Speedup:    prev.NsPerOp / b.NsPerOp,
			BytesDelta: b.BytesPerOp - prev.BytesPerOp,
		})
	}
	return out
}

// check reports benchmarks whose ns/op regressed more than threshold
// percent against the baseline's after-numbers.
func check(baseline *Report, current []Benchmark, thresholdPct float64) []string {
	ref := baseline.Benchmarks
	base := byName(ref)
	var failures []string
	for _, b := range current {
		prev, ok := base[b.Name]
		if !ok || prev.NsPerOp == 0 {
			continue
		}
		pct := (b.NsPerOp - prev.NsPerOp) / prev.NsPerOp * 100
		if pct > thresholdPct {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%% > %.1f%%)",
				b.Name, b.NsPerOp, prev.NsPerOp, pct, thresholdPct))
		}
	}
	return failures
}

func run(in io.Reader, out io.Writer, errw io.Writer, baselinePath, checkPath string, threshold float64) int {
	rep, err := parse(in)
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 2
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(errw, "benchjson: no benchmark lines found in input")
		return 2
	}
	if checkPath != "" {
		base, err := loadReport(checkPath)
		if err != nil {
			fmt.Fprintln(errw, "benchjson:", err)
			return 2
		}
		failures := check(base, rep.Benchmarks, threshold)
		for _, f := range failures {
			fmt.Fprintln(errw, "REGRESSION", f)
		}
		if len(failures) > 0 {
			return 1
		}
		fmt.Fprintf(errw, "benchjson: %d benchmark(s) within %.1f%% of %s\n",
			len(rep.Benchmarks), threshold, checkPath)
		return 0
	}
	if baselinePath != "" {
		base, err := loadReport(baselinePath)
		if err != nil {
			fmt.Fprintln(errw, "benchjson:", err)
			return 2
		}
		rep.Baseline = base.Benchmarks
		rep.Comparisons = compare(base.Benchmarks, rep.Benchmarks)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 2
	}
	enc = append(enc, '\n')
	if _, err := out.Write(enc); err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 2
	}
	return 0
}

func main() {
	inPath := flag.String("in", "-", "bench output to parse (- for stdin)")
	outPath := flag.String("out", "-", "where to write the JSON report (- for stdout)")
	baseline := flag.String("baseline", "", "prior benchjson report; embeds before/after comparisons")
	checkPath := flag.String("check", "", "benchjson report to gate against; exits 1 on regression")
	threshold := flag.Float64("threshold", 10, "max allowed ns/op regression percent for -check")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		defer f.Close()
		out = f
	}
	os.Exit(run(in, out, os.Stderr, *baseline, *checkPath, *threshold))
}
