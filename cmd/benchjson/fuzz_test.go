package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzBenchJSONParse feeds arbitrary bytes to the bench-output parser.
// benchjson sits in CI between `go test -bench` and the regression
// gate, so garbage input (a crashed bench run, interleaved test chatter)
// must come back as a clean report or error — never a panic — and
// whatever parses must survive the downstream compare/check/marshal
// paths.
func FuzzBenchJSONParse(f *testing.F) {
	f.Add([]byte(sampleBench))
	f.Add([]byte("BenchmarkX-8 3 100 ns/op 5 B/op 1 allocs/op\n"))
	f.Add([]byte("BenchmarkFleetMigrationStorm-8 3 9304055008 ns/op 1.000 coverage 328280840 B/op\n"))
	f.Add([]byte("BenchmarkTrailingValue 1 42\n"))
	f.Add([]byte("BenchmarkNaN 1 NaN ns/op\n"))
	f.Add([]byte("Benchmark -1 1 ns/op\ngoos: linux\npkg:\ncpu:   \n"))
	f.Add([]byte("BenchmarkHuge 9223372036854775807 1e308 ns/op\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := parse(bytes.NewReader(data))
		if err != nil {
			// Scanner-level failures (oversized lines) are legal; a nil
			// report alongside them is the contract.
			if rep != nil {
				t.Fatalf("parse returned both a report and error %v", err)
			}
			return
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("parsed report does not marshal: %v", err)
		}
		var back Report
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("marshalled report does not round-trip: %v", err)
		}
		// Downstream consumers must take any parsed report unflinching.
		_ = compare(rep.Benchmarks, rep.Benchmarks)
		_ = check(rep, rep.Benchmarks, 10)
		for _, b := range rep.Benchmarks {
			if b.Name == "" {
				t.Fatalf("parser admitted a nameless benchmark: %+v", b)
			}
		}
	})
}
