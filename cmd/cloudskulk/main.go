// Command cloudskulk demonstrates the attack end to end on a simulated
// cloud host, printing the four-step timeline the paper's demo video
// walks through: recon, launching the rootkit-in-the-middle VM, nesting
// the destination, live-migrating the victim into it, and taking over the
// victim's identity.
//
// Usage:
//
//	cloudskulk [-seed N] [-mem MB] [-hide-vmcs] [-post-copy]
package main

import (
	"flag"
	"fmt"
	"os"

	"cloudskulk"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudskulk:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cloudskulk", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	memMB := fs.Int64("mem", 1024, "victim VM memory (MB)")
	hideVMCS := fs.Bool("hide-vmcs", false, "run the nested hypervisor without VT-x (evades VMCS scanners)")
	postCopy := fs.Bool("post-copy", false, "use post-copy migration instead of pre-copy")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cloud, err := cloudskulk.New(*seed, cloudskulk.WithGuestMemMB(*memMB))
	if err != nil {
		return err
	}
	if *postCopy {
		cloud.Migration.Tunables.Mode = cloudskulk.PostCopy
	}

	fmt.Printf("[*] cloud host %q up; victim %q running at %v (pid %d, ssh on host:2222, monitor on :5555)\n",
		cloud.Host.Name(), cloud.Victim.Name(), cloud.Victim.Level(), cloud.Victim.PID())

	// Show the recon surfaces the attacker reads.
	fmt.Println("[*] recon: ps -ef | grep qemu")
	for _, p := range cloud.Host.OS().FindByCommand("qemu-system") {
		fmt.Printf("    pid %d: %s\n", p.PID, p.Command)
	}

	icfg := cloudskulk.DefaultInstallConfig()
	icfg.TargetName = cloud.Victim.Name()
	icfg.HideVMCS = *hideVMCS
	rk, err := cloud.InstallRootkit(icfg)
	if err != nil {
		return err
	}
	rep := rk.Report

	fmt.Printf("[*] target locked: %q via %s\n", rep.TargetName, rep.ReconMethod)
	for _, s := range rep.Steps {
		fmt.Printf("    step %-28s %8.2fs\n", s.Name, s.Took.Seconds())
	}
	fmt.Printf("[*] migration: %v, %d iterations, %.1f MB on wire, downtime %v\n",
		rep.Migration.Mode, rep.Migration.Iterations,
		float64(rep.Migration.BytesOnWire)/(1<<20), rep.Migration.Downtime)
	fmt.Printf("[*] install complete in %.2fs (simulated)\n", rep.TotalTime.Seconds())
	fmt.Printf("[*] victim now runs nested at %v inside %q; pid preserved: %v\n",
		rk.Victim.Level(), rk.RITM.Name(), rep.PIDPreserved)

	// Show what the admin sees afterwards.
	fmt.Println("[*] post-attack: ps -ef | grep qemu (admin view)")
	for _, p := range cloud.Host.OS().FindByCommand("qemu-system") {
		fmt.Printf("    pid %d: %s\n", p.PID, p.Command)
	}
	return nil
}
