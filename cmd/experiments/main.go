// Command experiments regenerates every table and figure of the CloudSkulk
// paper's evaluation, printing each as ASCII.
//
// Usage:
//
//	experiments [-scale full|quick] [-seed N] [-only artefact] [-workers N]
//	            [-backend name]
//
// Artefacts: table1, fig2, fig3, fig4, table2, table3, table4, fig5, fig6,
// baselines, armsrace-matrix, fleetstorm, cloudload, megastorm,
// ablations. Default runs all of them.
//
// -backend selects the hypervisor cost profile every testbed is built on
// (default: the paper's kvm-i7-4790 calibration); every artefact runs
// unchanged on any registered backend.
//
// Sweeps shard their cells across -workers goroutines (default GOMAXPROCS);
// the rendered artefacts are byte-identical for any worker count. Live
// progress (cells done/total, cells/sec, ETA) goes to stderr so stdout
// stays clean for the artefacts themselves.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudskulk"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// progressPrinter returns a sweep-progress callback that redraws one
// stderr status line for the named artefact. Progress goes to stderr so
// stdout carries only the artefacts and stays byte-identical across
// worker counts.
func progressPrinter(name string) func(cloudskulk.SweepProgress) {
	return func(p cloudskulk.SweepProgress) {
		fmt.Fprintf(os.Stderr, "\r\033[K%s: %d/%d cells, %.1f cells/s, ETA %s",
			name, p.Done, p.Total, p.CellsPerSec, p.ETA.Round(time.Second))
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scale := fs.String("scale", "full", "experiment scale: full (paper) or quick")
	seed := fs.Int64("seed", 1, "simulation seed")
	only := fs.String("only", "", "run a single artefact (table1, fig2, ..., ablations)")
	workers := fs.Int("workers", 0, "parallel sweep workers (default GOMAXPROCS)")
	progress := fs.Bool("progress", true, "print live sweep progress to stderr")
	telemetryPath := fs.String("telemetry", "", "write accumulated metrics as JSON lines to this file")
	backend := fs.String("backend", "",
		"hypervisor backend (cost profile): "+strings.Join(cloudskulk.Backends(), ", ")+
			"; default "+cloudskulk.DefaultBackend)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := cloudskulk.LookupBackend(*backend); err != nil {
		return err
	}

	var o cloudskulk.ExperimentOptions
	switch *scale {
	case "full":
		o = cloudskulk.DefaultExperimentOptions()
	case "quick":
		o = cloudskulk.QuickExperimentOptions()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	o.Seed = *seed
	o.Workers = *workers
	o.Backend = *backend
	if *telemetryPath != "" {
		o.Telemetry = cloudskulk.NewTelemetryRegistry()
	}

	artefacts := []struct {
		name string
		run  func() (string, error)
	}{
		{"table1", func() (string, error) {
			return cloudskulk.Table1CVE().Render(), nil
		}},
		{"table1full", func() (string, error) {
			return cloudskulk.Table1CVE().RenderFull(), nil
		}},
		{"fig2", func() (string, error) {
			r, err := cloudskulk.Figure2KernelCompile(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig3", func() (string, error) {
			r, err := cloudskulk.Figure3Netperf(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig4", func() (string, error) {
			r, err := cloudskulk.Figure4Migration(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"table2", func() (string, error) {
			return cloudskulk.Table2Arithmetic(o).Render(), nil
		}},
		{"table3", func() (string, error) {
			return cloudskulk.Table3Processes(o).Render(), nil
		}},
		{"table4", func() (string, error) {
			return cloudskulk.Table4FileOps(o).Render(), nil
		}},
		{"fig5", func() (string, error) {
			r, err := cloudskulk.Figure5DetectionClean(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig6", func() (string, error) {
			r, err := cloudskulk.Figure6DetectionInfected(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"baselines", func() (string, error) {
			r, err := cloudskulk.BaselineComparison(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"armsrace", func() (string, error) {
			r, err := cloudskulk.ArmsRaceSyncCountermeasure(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"armsrace-matrix", func() (string, error) {
			r, err := cloudskulk.ArmsRaceMatrix(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"survey", func() (string, error) {
			r, err := cloudskulk.MultiTenantSurvey(o, 3, 1)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"remediation", func() (string, error) {
			r, err := cloudskulk.RemediationDrill(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"watchdog", func() (string, error) {
			r, err := cloudskulk.TimeToDetect(o, 10*time.Minute)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fleetstorm", func() (string, error) {
			r, err := cloudskulk.FleetMigrationStorm(o, []int{2, 4, 8}, []int{1, 2, 4}, []float64{0.25})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"cloudload", func() (string, error) {
			cfg := cloudskulk.DefaultCloudLoadConfig()
			if *scale == "quick" {
				cfg = cloudskulk.QuickCloudLoadConfig()
			}
			r, err := cloudskulk.CloudLoad(o, cfg)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"megastorm", func() (string, error) {
			cfg := cloudskulk.DefaultMegaStormConfig()
			if *scale == "quick" {
				cfg = cloudskulk.QuickMegaStormConfig()
			}
			r, err := cloudskulk.MegaStorm(o, cfg)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"ablations", func() (string, error) {
			var b strings.Builder
			em := cloudskulk.AblationExitMultiplier(o, []int{1, 4, 9, 18, 36, 72})
			b.WriteString(em.Render() + "\n")
			dr, err := cloudskulk.AblationDirtyRate(o, []float64{100, 2000, 4000, 6000, 7000, 7500, 7900})
			if err != nil {
				return "", err
			}
			b.WriteString(dr.Render() + "\n")
			pp, err := cloudskulk.AblationPrePostCopy(o)
			if err != nil {
				return "", err
			}
			b.WriteString(pp.Render() + "\n")
			ps, err := cloudskulk.AblationProbeSize(o, []int{1, 10, 100, 400})
			if err != nil {
				return "", err
			}
			b.WriteString(ps.Render() + "\n")
			kw, err := cloudskulk.AblationKSMWait(o, []time.Duration{
				10 * time.Millisecond, 100 * time.Millisecond, time.Second, 15 * time.Second,
			})
			if err != nil {
				return "", err
			}
			b.WriteString(kw.Render() + "\n")
			tg, err := cloudskulk.AblationTimingGap(o, []float64{31, 10, 4, 1})
			if err != nil {
				return "", err
			}
			b.WriteString(tg.Render() + "\n")
			mf, err := cloudskulk.AblationMigrationFeatures(o)
			if err != nil {
				return "", err
			}
			b.WriteString(mf.Render())
			return b.String(), nil
		}},
	}

	ran := 0
	for _, a := range artefacts {
		if *only != "" && a.name != *only {
			continue
		}
		if *progress {
			// The artefact closures read o, so installing a fresh
			// callback here labels each artefact's sweep output.
			o.OnProgress = progressPrinter(a.name)
		}
		out, err := a.run()
		if *progress {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		fmt.Printf("=== %s ===\n%s\n", a.name, out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown artefact %q", *only)
	}
	if o.Telemetry != nil {
		f, err := os.Create(*telemetryPath)
		if err != nil {
			return err
		}
		if err := o.Telemetry.WriteJSONLines(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote metrics to %s\n", *telemetryPath)
	}
	return nil
}
