package main

import (
	"go/ast"
	"go/token"
	"strconv"
)

// goroutineAnalyzer forbids scheduler-dependent concurrency — go
// statements, channel operations, select, and the sync package —
// outside the two packages built for it (internal/runner's worker pool,
// internal/qemu's connection serving; see concurrencyExempt). Goroutine
// interleaving is the one source of nondeterminism the seed cannot
// reach, so sim code must stay single-threaded per cell.
//
// The `sync` import is reported once per file (the import is the
// gateway; annotating every mu.Lock would drown the signal), and
// sync/atomic is deliberately legal: commutative atomic counters reach
// the same totals under any interleaving, which is exactly the
// contract telemetry's determinism rests on.
var goroutineAnalyzer = &Analyzer{
	Name: "goroutine",
	Doc:  "forbid go statements, channels, select, and sync outside the runner/qemu plumbing",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "sync" {
					p.report(imp.Pos(), "goroutine",
						`import "sync" brings lock-order-dependent concurrency into sim code`)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					p.report(n.Pos(), "goroutine",
						"go statement launches scheduler-ordered work in sim code")
				case *ast.SelectStmt:
					p.report(n.Pos(), "goroutine",
						"select races channel readiness; sim code must be single-threaded")
				case *ast.SendStmt:
					p.report(n.Pos(), "goroutine",
						"channel send in sim code; events belong on the engine queue")
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						p.report(n.Pos(), "goroutine",
							"channel receive in sim code; events belong on the engine queue")
					}
				case *ast.ChanType:
					p.report(n.Pos(), "goroutine",
						"channel type in sim code; events belong on the engine queue")
				}
				return true
			})
		}
	},
}
