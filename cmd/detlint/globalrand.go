package main

import (
	"go/ast"
	"go/types"
)

// globalrandConstructors are the math/rand package-level functions that
// build an explicitly seeded generator rather than drawing from the
// process-global source.
var globalrandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes the *Rand it draws from
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// globalrandAnalyzer forbids the package-level math/rand functions
// (rand.Int, rand.Intn, rand.Seed, rand.Shuffle, ...) module-wide. The
// global source is shared process state: a draw anywhere perturbs every
// later draw, so two sweeps interleaved differently produce different
// numbers. Methods on a seeded *rand.Rand threaded from the engine are
// the only legal randomness.
var globalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand functions; thread seeded *rand.Rand values",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				path := p.pkgPathOf(sel.X)
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				// Only functions draw from the global source; selecting
				// a type (rand.Rand, rand.Source) is fine.
				if _, isFunc := p.objectOf(sel.Sel).(*types.Func); !isFunc {
					return true
				}
				if !globalrandConstructors[sel.Sel.Name] {
					p.report(sel.Pos(), "globalrand",
						"rand."+sel.Sel.Name+" draws from the process-global source; use a seeded *rand.Rand from the engine")
				}
				return true
			})
		}
	},
}
