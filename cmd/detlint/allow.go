package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces an escape-hatch directive:
//
//	//detlint:allow <rule>[,<rule>] — <one-line justification>
//
// placed on, or on the line immediately above, the violating line. The
// justification is mandatory: an exemption whose reason is not written
// down decays into a mystery the next reader cannot audit. The em dash
// separator may also be spelled "--" or "-".
const allowPrefix = "//detlint:allow"

// allowDirective is one parsed escape hatch.
type allowDirective struct {
	Rules []string
	Pos   token.Position
	Used  bool
}

// collectDirectives parses every allow directive in the package's
// files. Malformed directives (no justification, unknown rule) come
// back as findings — a broken escape hatch must fail loudly, not
// silently stop suppressing.
func collectDirectives(fset *token.FileSet, files []*ast.File) ([]*allowDirective, []Finding) {
	var out []*allowDirective
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				d, err := parseDirective(c.Text)
				if err != nil {
					bad = append(bad, Finding{Pos: pos, Rule: "detlint", Msg: err.Error()})
					continue
				}
				d.Pos = pos
				out = append(out, d)
			}
		}
	}
	return out, bad
}

// parseDirective validates one directive's rule list and justification.
func parseDirective(text string) (*allowDirective, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, fmt.Errorf("allow directive names no rule: want %s <rule> — <justification>", allowPrefix)
	}
	rules := strings.Split(fields[0], ",")
	for _, r := range rules {
		if analyzerByName(r) == nil {
			return nil, fmt.Errorf("allow directive names unknown rule %q (have %s)",
				r, strings.Join(ruleNames(), ", "))
		}
	}
	just := strings.Join(fields[1:], " ")
	just = strings.TrimSpace(strings.TrimLeft(just, "—–- "))
	if just == "" {
		return nil, fmt.Errorf("allow directive for %q has no justification: want %s %s — <why this is sound>",
			fields[0], allowPrefix, fields[0])
	}
	return &allowDirective{Rules: rules}, nil
}

// matchDirective finds a directive covering the finding: same file,
// same line or the line above, rule listed.
func matchDirective(directives []*allowDirective, f Finding) *allowDirective {
	for _, d := range directives {
		if d.Pos.Filename != f.Pos.Filename {
			continue
		}
		if d.Pos.Line != f.Pos.Line && d.Pos.Line != f.Pos.Line-1 {
			continue
		}
		for _, r := range d.Rules {
			if r == f.Rule {
				return d
			}
		}
	}
	return nil
}
