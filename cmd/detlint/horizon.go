package main

// horizonAnalyzer is the DESIGN.md §16 "handlers must never Advance"
// contract in static form. A shard event handler — a callback registered
// through shard.Shard.OnDeliver, or scheduled on an engine from inside
// internal/shard — runs while its shard holds a bounded synchronization
// grant [now, horizon). Calling a sim.Engine clock-control primitive
// (Advance, Run, RunUntil, RunBefore, RunFor, Step) from inside one
// moves the shard past its grant mid-round, desynchronizing the world in
// a way only a seed-dependent golden mismatch would later reveal.
//
// The rule is pure call-graph analysis: it has no per-package pass, and
// it follows chains through any module package (handler work fans out
// into fleet, controlplane, qemu, ...). A statically-reachable primitive
// behind a dynamic guard — the golden-image boot path that returns
// before Advance is the canonical example — is still reported; the
// justified-allow directive at the handler's call site is exactly where
// that guard's soundness argument belongs.
var horizonAnalyzer = &Analyzer{
	Name:      "horizon",
	Doc:       "forbid sim.Engine clock control reachable from shard event handlers",
	RunModule: horizonModulePass,
}
