package main

import (
	"go/ast"
	"go/types"
	"sort"
)

// fmtEmit are the fmt functions that move bytes toward an artefact
// (a writer or stdout). fmt.Sprint* are pure and judged only by where
// their result goes.
var fmtEmit = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// fmtFormat are all the fmt functions whose default verbs render a map
// in fmt's own key ordering.
var fmtFormat = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Errorf": true,
}

// maporderAnalyzer forbids map iteration order from reaching an
// artefact. Go randomizes map range order per run on purpose; the
// moment a range-over-map body emits (fmt.Fprint*/Print*, a
// strings.Builder or bytes.Buffer write) or collects into a slice that
// is never sorted, the artefact bytes depend on that randomization and
// the golden hashes break intermittently — the worst kind of break.
// The collect-keys-then-sort idiom stays legal: an append inside the
// range is fine when the slice is sorted later in the same function.
// Formatting a whole map with fmt (%v and friends) is banned outright:
// fmt's own key ordering is an implementation detail no artefact may
// depend on.
var maporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "forbid unsorted map iteration from feeding artefact/export sinks",
	Run: func(p *Pass) {
		p.checkMapFormatting()
		p.eachFunc(p.checkMapRanges)
	},
}

// checkMapFormatting flags map-typed arguments to fmt's formatting and
// printing functions.
func (p *Pass) checkMapFormatting() {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || p.pkgPathOf(sel.X) != "fmt" || !fmtFormat[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				if isMapType(p.typeOf(arg)) {
					p.report(arg.Pos(), "maporder",
						"fmt."+sel.Sel.Name+" renders a map in fmt's own key order; render sorted keys explicitly")
				}
			}
			return true
		})
	}
}

// checkMapRanges analyzes one function body: every range over a map
// whose body emits directly, or collects into a slice that the rest of
// the function never sorts, is a violation.
func (p *Pass) checkMapRanges(body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(p.typeOf(rng.X)) {
			return true
		}
		appended := map[types.Object]ast.Node{}
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if p.pkgPathOf(sel.X) == "fmt" && fmtEmit[sel.Sel.Name] {
						p.report(n.Pos(), "maporder",
							"map iteration order reaches output through fmt."+sel.Sel.Name+"; iterate sorted keys instead")
					} else if p.isBufferWrite(sel) {
						p.report(n.Pos(), "maporder",
							"map iteration order reaches output through "+sel.Sel.Name+"; iterate sorted keys instead")
					}
				}
			case *ast.AssignStmt:
				if obj, site := p.appendTarget(n); obj != nil {
					appended[obj] = site
				}
			}
			return true
		})
		for _, obj := range sortedObjects(appended) {
			if !p.sortedAfter(body, rng, obj) {
				p.report(appended[obj].Pos(), "maporder",
					"slice "+obj.Name()+" collects map keys/values but is never sorted in this function; sort it before it escapes")
			}
		}
		return true
	})
}

// sortedObjects returns the map's keys ordered by position, so findings
// come out deterministically (the linter obeys its own rule).
func sortedObjects(m map[types.Object]ast.Node) []types.Object {
	out := make([]types.Object, 0, len(m))
	for obj := range m {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return m[out[i]].Pos() < m[out[j]].Pos() })
	return out
}

// isBufferWrite reports whether sel is a Write* method on a
// strings.Builder or bytes.Buffer — the append-only accumulators every
// renderer in this repo builds artefacts with.
func (p *Pass) isBufferWrite(sel *ast.SelectorExpr) bool {
	name := sel.Sel.Name
	if name != "Write" && name != "WriteString" && name != "WriteByte" && name != "WriteRune" {
		return false
	}
	t := p.typeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, typ := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && typ == "Builder") || (pkg == "bytes" && typ == "Buffer")
}

// appendTarget matches `x = append(x, ...)` (and := / other spellings
// with an identifier target) and returns x's object.
func (p *Pass) appendTarget(as *ast.AssignStmt) (types.Object, ast.Node) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	if _, builtin := p.objectOf(fn).(*types.Builtin); !builtin || fn.Name != "append" {
		return nil, nil
	}
	return p.objectOf(lhs), as
}

// sortedAfter reports whether obj is passed to a sort/slices function
// somewhere in body after the range statement ends.
func (p *Pass) sortedAfter(body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := p.pkgPathOf(sel.X); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && p.objectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
