package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module static call graph the v2 rules walk.
//
// Nodes are package-level functions and methods (plus synthetic nodes for
// event-handler closures), keyed by types.Func.FullName() — a string
// identity that is stable across the separate type-checker instances each
// package is checked with, so an edge recorded in internal/shard resolves
// to the node built while analyzing internal/fleet. Edges are static call
// sites. Two module passes run over the graph:
//
//   - wallclock (transitive): a function in a sim-facing package that
//     calls a helper in a non-sim package which — possibly through more
//     helpers — reads the host clock. The per-package wallclock pass
//     cannot see this; the graph pass reports it with the full chain.
//   - horizon: a shard event handler (a callback registered through
//     Shard.OnDeliver, or scheduled on an engine from inside
//     internal/shard) that reaches a sim.Engine clock-control primitive
//     (Advance, Run, RunUntil, RunBefore, RunFor, Step). A handler runs
//     inside a granted synchronization window; moving the clock from
//     within one desynchronizes the world (DESIGN.md §16).
//
// Known limitations, by design: calls through interface methods and
// func-typed fields/variables dead-end (no body to follow), and a
// dynamically-guarded path (a branch that returns before the primitive)
// is still statically reachable — that is what justified allow
// directives are for.

// cgEdge is one static call site.
type cgEdge struct {
	callee        string // callee node ID (types.Func FullName)
	calleeDisplay string // human-readable callee name
	pos           token.Position
	horizonBanned bool // callee is a sim.Engine clock-control primitive
}

// cgPrim is one direct use of a rule primitive (a time.Now-class call)
// inside a node's body.
type cgPrim struct {
	label string // e.g. "time.Now"
	pos   token.Position
}

// cgNode is one function in the call graph.
type cgNode struct {
	id          string
	display     string
	pkgRel      string // module-relative package dir the body lives in
	edges       []cgEdge
	wallclock   []cgPrim
	handlerRoot bool // registered as a shard event handler
}

// callGraph is the merged module graph.
type callGraph struct {
	nodes map[string]*cgNode
	// rootRefs are IDs of named functions passed by reference to a
	// handler-registering call; resolved into handlerRoot flags after
	// the merge (the referenced function may live in another package).
	rootRefs []string
}

// moduleCtx is what a module-level pass sees: the merged graph, the
// scope configuration, and a report sink that attributes findings back
// to packages for directive matching.
type moduleCtx struct {
	graph  *callGraph
	scopes *scopes
	report func(pos token.Position, rule, msg string, chain []string)
	// relPos rewrites a position's filename to its module-relative form,
	// so chain messages stay host-independent (and byte-identical across
	// checkouts).
	relPos func(token.Position) token.Position
}

// mergeGraph combines per-package node sets in deterministic package
// order and resolves handler root references.
func mergeGraph(perPkg [][]*cgNode, refs [][]string) *callGraph {
	g := &callGraph{nodes: map[string]*cgNode{}}
	for _, nodes := range perPkg {
		for _, n := range nodes {
			g.nodes[n.id] = n
		}
	}
	for _, rs := range refs {
		g.rootRefs = append(g.rootRefs, rs...)
	}
	for _, id := range g.rootRefs {
		if n := g.nodes[id]; n != nil {
			n.handlerRoot = true
		}
	}
	return g
}

// sortedNodeIDs returns the graph's node IDs in lexical order, so module
// passes iterate deterministically (the linter obeys its own maporder
// rule).
func (g *callGraph) sortedNodeIDs() []string {
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// graphBuilder walks one package's functions, collecting nodes, edges,
// primitive uses, and handler registrations.
type graphBuilder struct {
	pass  *Pass
	rel   string
	nodes []*cgNode
	refs  []string
	// handlerLits marks function literals consumed as handler
	// registrations, so the generic walk skips them (Inspect visits a
	// call before its arguments, so the mark lands first).
	handlerLits map[*ast.FuncLit]bool
}

// buildGraphNodes constructs the call-graph nodes for one package.
func buildGraphNodes(fset *token.FileSet, pkg *Package) ([]*cgNode, []string) {
	b := &graphBuilder{
		pass: &Pass{Fset: fset, Files: pkg.Files, Info: pkg.Info},
		rel:  pkg.Rel,
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := b.pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &cgNode{id: fn.FullName(), display: displayName(fn), pkgRel: pkg.Rel}
			b.nodes = append(b.nodes, node)
			b.walkBody(node, fd.Body)
		}
	}
	return b.nodes, b.refs
}

// walkBody attributes calls and primitive uses in body to node. Nested
// function literals belong to the enclosing node — their statements run
// (at most) when the enclosing function arranges it, and attributing
// them upward keeps the analysis conservative — except literals passed
// to a handler-registering call, which become handler-root nodes of
// their own.
func (b *graphBuilder) walkBody(node *cgNode, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Visited explicitly below when it is a handler argument;
			// otherwise fold its body into the enclosing node.
			if b.handlerLits[n] {
				return false
			}
			return true
		case *ast.CallExpr:
			b.recordCall(node, n)
		case *ast.SelectorExpr:
			if b.pass.pkgPathOf(n.X) == "time" && wallclockBanned[n.Sel.Name] {
				node.wallclock = append(node.wallclock, cgPrim{
					label: "time." + n.Sel.Name,
					pos:   b.pass.Fset.Position(n.Pos()),
				})
			}
		}
		return true
	})
}

// recordCall resolves one call expression into an edge, and recognizes
// handler registrations.
func (b *graphBuilder) recordCall(node *cgNode, call *ast.CallExpr) {
	fn := b.calleeFunc(call)
	if fn == nil {
		return
	}
	if idx, ok := handlerArgIndex(fn, b.rel); ok && idx < len(call.Args) {
		b.registerHandler(node, call.Args[idx])
	}
	b.addEdge(node, fn, call.Pos())
}

// addEdge appends a call edge from node to fn.
func (b *graphBuilder) addEdge(node *cgNode, fn *types.Func, pos token.Pos) {
	node.edges = append(node.edges, cgEdge{
		callee:        fn.FullName(),
		calleeDisplay: displayName(fn),
		pos:           b.pass.Fset.Position(pos),
		horizonBanned: isHorizonBanned(fn),
	})
}

// registerHandler processes the handler argument of a registration call:
// a function literal becomes a synthetic root node; a reference to a
// named function marks that function as a root.
func (b *graphBuilder) registerHandler(parent *cgNode, arg ast.Expr) {
	switch arg := arg.(type) {
	case *ast.FuncLit:
		if b.handlerLits == nil {
			b.handlerLits = map[*ast.FuncLit]bool{}
		}
		b.handlerLits[arg] = true
		pos := b.pass.Fset.Position(arg.Pos())
		syn := &cgNode{
			id:          fmt.Sprintf("%s$handler@%d", parent.id, pos.Line),
			display:     fmt.Sprintf("%s(handler@%d)", parent.display, pos.Line),
			pkgRel:      parent.pkgRel,
			handlerRoot: true,
		}
		b.nodes = append(b.nodes, syn)
		b.walkBody(syn, arg.Body)
	case *ast.Ident:
		if fn, ok := b.pass.objectOf(arg).(*types.Func); ok {
			b.refs = append(b.refs, fn.FullName())
		}
	case *ast.SelectorExpr:
		if fn, ok := b.pass.objectOf(arg.Sel).(*types.Func); ok {
			b.refs = append(b.refs, fn.FullName())
		}
	}
}

// calleeFunc resolves a call expression's target to a *types.Func, or
// nil for builtins, conversions, and calls through func values.
func (b *graphBuilder) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := b.pass.objectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := b.pass.objectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// funcHome reports the defining package path and receiver type name
// ("" for plain functions) of fn.
func funcHome(fn *types.Func) (pkgPath, recv string) {
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkgPath, ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		recv = named.Obj().Name()
	}
	return pkgPath, recv
}

// pkgSuffix reports whether path is, or ends with, the given
// module-relative suffix — "internal/sim" matches both the real module's
// cloudskulk/internal/sim and a fixture module's xmod/internal/sim, so
// the graph rules are testable against a miniature module.
func pkgSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// horizonBannedMethods are the sim.Engine methods that move the virtual
// clock or pump the event loop. None of them may run inside a shard
// event handler: the handler's shard holds only a bounded advance grant.
var horizonBannedMethods = map[string]bool{
	"Advance": true, "Run": true, "RunUntil": true,
	"RunBefore": true, "RunFor": true, "Step": true,
}

// isHorizonBanned reports whether fn is a sim.Engine clock-control
// primitive.
func isHorizonBanned(fn *types.Func) bool {
	if !horizonBannedMethods[fn.Name()] {
		return false
	}
	pkg, recv := funcHome(fn)
	return recv == "Engine" && pkgSuffix(pkg, "internal/sim")
}

// handlerArgIndex reports whether fn is a handler-registering call and
// which argument carries the handler. Two shapes count:
//
//   - (*shard.Shard).OnDeliver(fn): the cross-shard delivery handler.
//   - (*sim.Engine).Schedule/ScheduleAt(..., fn) called from inside
//     internal/shard: the exchange/migration machinery scheduling work
//     that will run inside a future synchronization window.
func handlerArgIndex(fn *types.Func, callerRel string) (int, bool) {
	pkg, recv := funcHome(fn)
	if fn.Name() == "OnDeliver" && recv == "Shard" && pkgSuffix(pkg, "internal/shard") {
		return 0, true
	}
	if recv == "Engine" && pkgSuffix(pkg, "internal/sim") && pkgSuffix(callerRel, "internal/shard") {
		switch fn.Name() {
		case "Schedule", "ScheduleAt":
			return 2, true
		}
	}
	return 0, false
}

// displayName renders fn compactly for chain messages: the defining
// package's last path element plus receiver, e.g. "(*fleet.Fleet).StartGuest"
// or "stats.Mean".
func displayName(fn *types.Func) string {
	pkg, _ := funcHome(fn)
	short := pkg
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		short = pkg[i+1:]
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		star := ""
		if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
			star = "*"
		}
		t := sig.Recv().Type()
		if ptr, okp := t.(*types.Pointer); okp {
			t = ptr.Elem()
		}
		recv := "?"
		if named, okn := t.(*types.Named); okn {
			recv = named.Obj().Name()
		}
		return fmt.Sprintf("(%s%s.%s).%s", star, short, recv, fn.Name())
	}
	if short == "" {
		return fn.Name()
	}
	return short + "." + fn.Name()
}

// --- module passes ---

// chainStep is one hop of a reconstructed path.
type chainStep struct {
	display string
	pos     token.Position
}

// searchFrom runs a BFS beginning at the edge first (already taken from
// a root), expanding only through module functions admitted by expand,
// until goal reports an edge or node terminal. It returns the chain of
// displays (first edge's callee first), or nil.
func (g *callGraph) searchFrom(first cgEdge, expand func(*cgNode) bool, goal func(*cgNode, cgEdge) (string, token.Position, bool)) []chainStep {
	type qent struct {
		id   string
		path []chainStep
	}
	// The root's own edge may already be the goal (a handler calling a
	// banned primitive directly).
	if label, pos, ok := goal(nil, first); ok {
		return []chainStep{{display: label, pos: pos}}
	}
	start := g.nodes[first.callee]
	firstStep := chainStep{display: first.calleeDisplay, pos: first.pos}
	if start == nil {
		return nil
	}
	// A terminal condition on the starting node itself (e.g. it holds a
	// direct wallclock primitive).
	if label, pos, ok := goal(start, cgEdge{}); ok {
		return []chainStep{firstStep, {display: label, pos: pos}}
	}
	if !expand(start) {
		return nil
	}
	visited := map[string]bool{start.id: true}
	queue := []qent{{id: start.id, path: []chainStep{firstStep}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := g.nodes[cur.id]
		for _, e := range node.edges {
			if label, pos, ok := goal(nil, e); ok {
				return append(append([]chainStep(nil), cur.path...),
					chainStep{display: label, pos: pos})
			}
			next := g.nodes[e.callee]
			if next == nil || visited[next.id] {
				continue
			}
			visited[next.id] = true
			step := chainStep{display: e.calleeDisplay, pos: e.pos}
			path := append(append([]chainStep(nil), cur.path...), step)
			if label, pos, ok := goal(next, cgEdge{}); ok {
				return append(path, chainStep{display: label, pos: pos})
			}
			if expand(next) {
				queue = append(queue, qent{id: next.id, path: path})
			}
		}
	}
	return nil
}

// renderChain formats a chain for a finding message and returns the
// display list for machine output.
func renderChain(rootDisplay string, chain []chainStep) (string, []string) {
	parts := []string{rootDisplay}
	displays := []string{rootDisplay}
	for i, s := range chain {
		part := s.display
		if i == len(chain)-1 && s.pos.IsValid() {
			part = fmt.Sprintf("%s (%s:%d)", s.display, s.pos.Filename, s.pos.Line)
		}
		parts = append(parts, part)
		displays = append(displays, s.display)
	}
	return strings.Join(parts, " → "), displays
}

// wallclockModulePass reports sim-facing functions that reach a
// host-clock read through helper packages outside the sim-facing scope.
// Direct reads (and reads through sim-facing helpers) are the
// per-package pass's findings; this pass covers exactly the chains that
// leave the scope, so every violation is reported once, at the call site
// that exits it.
func wallclockModulePass(mc *moduleCtx) {
	g := mc.graph
	inScope := func(rel string) bool { return contains(mc.scopes.simFacing, rel) }
	expand := func(n *cgNode) bool { return !inScope(n.pkgRel) }
	goal := func(n *cgNode, _ cgEdge) (string, token.Position, bool) {
		if n != nil && len(n.wallclock) > 0 {
			return n.wallclock[0].label, n.wallclock[0].pos, true
		}
		return "", token.Position{}, false
	}
	for _, id := range g.sortedNodeIDs() {
		root := g.nodes[id]
		if !inScope(root.pkgRel) {
			continue
		}
		for _, e := range root.edges {
			callee := g.nodes[e.callee]
			if callee == nil || inScope(callee.pkgRel) {
				continue
			}
			chain := g.searchFrom(e, expand, goal)
			if chain == nil {
				continue
			}
			chain[len(chain)-1].pos = mc.relPos(chain[len(chain)-1].pos)
			msg, displays := renderChain(root.display, chain)
			mc.report(e.pos, "wallclock",
				"transitively reads the host clock: "+msg+"; sim code must take time from the engine",
				displays)
		}
	}
}

// horizonModulePass reports shard event handlers that can reach a
// sim.Engine clock-control primitive. Handlers run inside a granted
// synchronization window; advancing or pumping the clock from one moves
// a shard past its horizon and desynchronizes the world.
func horizonModulePass(mc *moduleCtx) {
	g := mc.graph
	expand := func(*cgNode) bool { return true }
	goal := func(_ *cgNode, e cgEdge) (string, token.Position, bool) {
		if e.horizonBanned {
			return e.calleeDisplay, e.pos, true
		}
		return "", token.Position{}, false
	}
	for _, id := range g.sortedNodeIDs() {
		root := g.nodes[id]
		if !root.handlerRoot {
			continue
		}
		for _, e := range root.edges {
			chain := g.searchFrom(e, expand, goal)
			if chain == nil {
				continue
			}
			chain[len(chain)-1].pos = mc.relPos(chain[len(chain)-1].pos)
			msg, displays := renderChain(root.display, chain)
			mc.report(e.pos, "horizon",
				"shard event handler reaches engine clock control: "+msg+
					"; handlers run inside a granted window and must never advance the clock (DESIGN.md §16)",
				displays)
		}
	}
}
