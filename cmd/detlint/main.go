// Command detlint is this repository's determinism linter: a static-
// analysis pass over the whole module that enforces, structurally, the
// invariant every experiment artefact depends on — simulation code is a
// pure function of the seed. The golden-hash tests catch a determinism
// break after the fact; detlint rejects the code shapes that cause one
// before it is ever run.
//
// Nine rules (see DESIGN.md §12 and §17 for the failure mode behind
// each):
//
//	wallclock  — no time.Now/Since/Sleep/... in sim-facing packages —
//	             not even transitively through helper packages (the
//	             cross-package call graph reports the full chain);
//	             virtual time comes from the engine.
//	globalrand — no package-level math/rand functions anywhere; only
//	             seeded *rand.Rand values threaded from the engine.
//	maporder   — no map iteration that feeds an artefact/export sink
//	             (fmt.Fprint*, strings.Builder/bytes.Buffer writes, or a
//	             returned slice) without an intervening sort, and no map
//	             arguments to fmt formatting verbs.
//	goroutine  — no go statements, channels, select, or `sync` imports
//	             outside internal/runner and internal/qemu (the worker
//	             pool and the monitor connection plumbing). sync/atomic
//	             is permitted: commutative counters are order-blind.
//	floatsum   — no float accumulation across map iteration in the
//	             telemetry/report export packages.
//	horizon    — no sim.Engine clock control (Advance/Run/RunUntil/
//	             RunBefore/RunFor/Step) reachable, through the call
//	             graph, from a shard event handler: handlers run inside
//	             a granted synchronization window (DESIGN.md §16).
//	seedflow   — every RNG seed in sim-facing code must visibly derive
//	             from the root seed (a seed-named identifier,
//	             runner.CellSeed, or a draw from a seeded generator);
//	             literal and wallclock seeds are reported.
//	hotpath    — functions annotated //detlint:hotpath (the PR-4
//	             zero-alloc contract) must not contain allocating code
//	             shapes: closures, &T{...}, map/slice literals,
//	             make/new, or appends to freshly-allocated slices.
//	errwrap    — in internal/ packages, error causes survive: %w (not
//	             %v) in fmt.Errorf, errors.Is (not ==) for comparison,
//	             and no decisions on err.Error() text.
//
// A violation that is legitimate is annotated, never silently exempt:
//
//	//detlint:allow <rule>[,<rule>] — <one-line justification>
//
// on (or immediately above) the offending line. A directive without a
// justification, with an unknown rule name, or that suppresses nothing
// is itself an error, so the annotation inventory stays honest.
//
// Usage:
//
//	detlint [-tests] [-rules wallclock,maporder] [-workers N]
//	        [-format text|json|sarif] [-out FILE]
//	        [-baseline FILE] [-write-baseline] [./...]
//
// detlint always lints every package of the enclosing module; package
// patterns are accepted for go-vet familiarity but only select the
// module via their directory part. Analysis fans out per package over
// internal/runner's deterministic pool; output is byte-identical at
// any -workers value. Findings carry stable DL-<fnv64a> IDs (hashed
// from rule, file, and the violating line's text, so unrelated edits
// do not churn them); IDs present in the committed
// .detlint-baseline.json are reported but not fatal. Exit status:
// 0 clean (or all findings baselined), 1 new findings, 2 load/usage
// error.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cloudskulk/internal/runner"
)

// scopes binds each scoped rule to the module-relative package paths it
// is in force for. The defaults describe this repository; fixture tests
// reuse the same values because the fixture module mirrors the real
// tree's internal/ layout.
type scopes struct {
	// simFacing lists the packages whose code must never read the host
	// clock or seed randomness outside the root-seed flow: everything
	// that runs inside a simulation, plus internal/runner — the sweep
	// pool all experiments route through, whose one legitimate
	// wall-clock use (progress reporting to a human) carries an allow
	// directive rather than a blanket exemption.
	simFacing []string
	// concurrencyExempt lists the only packages allowed to spawn
	// goroutines or use sync/channels: the parallel sweep runner (whose
	// whole job is deterministic fan-out) and qemu's monitor connection
	// plumbing.
	concurrencyExempt []string
	// floatsumScope lists the export-path packages where float
	// accumulation order turns into artefact bytes.
	floatsumScope []string
}

var defaultScopes = &scopes{
	simFacing: []string{
		"internal/sim", "internal/cpu", "internal/kvm", "internal/ksm",
		"internal/mem", "internal/migrate", "internal/vnet", "internal/qemu",
		"internal/fleet", "internal/telemetry", "internal/experiments",
		"internal/detect", "internal/workload", "internal/runner",
		"internal/hv", "internal/hv/backends",
		"internal/controlplane", "internal/loadgen", "internal/scenario",
		"internal/shard",
	},
	concurrencyExempt: []string{"internal/runner", "internal/qemu"},
	floatsumScope:     []string{"internal/telemetry", "internal/report"},
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// applies reports whether a rule's per-package pass is in force for the
// package at the given module-relative path. horizon has no per-package
// pass (it is pure call-graph analysis), so it never appears here.
func (s *scopes) applies(rule, rel string) bool {
	switch rule {
	case "wallclock", "seedflow":
		return contains(s.simFacing, rel)
	case "goroutine":
		return !contains(s.concurrencyExempt, rel)
	case "floatsum":
		return contains(s.floatsumScope, rel)
	case "errwrap":
		return rel == "internal" || strings.HasPrefix(rel, "internal/")
	default: // globalrand, maporder, hotpath: module-wide
		return true
	}
}

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

func runMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also lint _test.go files")
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	workers := fs.Int("workers", 0, "parallel analysis workers (0 = GOMAXPROCS); output is byte-identical at any count")
	format := fs.String("format", "text", "report format: text, json, or sarif")
	outPath := fs.String("out", "", "also write a machine-readable report (json unless -format says otherwise) to this file")
	baselinePath := fs.String("baseline", "", "baseline file of grandfathered finding IDs (default: <module>/"+baselineName+")")
	writeBase := fs.Bool("write-baseline", false, "record current findings as the new baseline and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(stderr, "detlint: unknown -format %q (have text, json, sarif)\n", *format)
		return 2
	}

	enabled, err := selectRules(*rulesFlag)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	allRules := len(enabled) == len(analyzers)

	start := "."
	if fs.NArg() > 0 {
		start = strings.TrimSuffix(fs.Arg(0), "...")
		start = strings.TrimSuffix(start, string(filepath.Separator))
		if start == "" || start == "."+string(filepath.Separator) {
			start = "."
		}
	}
	mod, err := loadModule(start, *tests)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	if len(mod.Errs) > 0 {
		for _, e := range mod.Errs {
			fmt.Fprintln(stderr, "detlint:", e)
		}
		return 2
	}

	findings, err := lintModule(mod, defaultScopes, enabled, allRules, *workers)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}

	if *writeBase {
		path := *baselinePath
		if path == "" {
			path = filepath.Join(mod.Root, baselineName)
		}
		if err := writeBaseline(path, findings); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "detlint: wrote %d finding(s) to %s\n", len(findings), path)
		return 0
	}

	basePath := *baselinePath
	if basePath == "" {
		basePath = filepath.Join(mod.Root, baselineName)
	}
	baseIDs, err := loadBaseline(basePath)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	fresh := markBaselined(findings, baseIDs)

	if *format == "text" {
		for _, f := range findings {
			suffix := ""
			if f.Baselined {
				suffix = " [baselined]"
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s%s\n", f.File, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg, suffix)
		}
	} else {
		if err := writeReport(stdout, *format, mod.Name, enabled, findings); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
	}
	if *outPath != "" {
		reportFormat := *format
		if reportFormat == "text" {
			reportFormat = "json"
		}
		var buf strings.Builder
		if err := writeReport(&buf, reportFormat, mod.Name, enabled, findings); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
		if err := os.WriteFile(*outPath, []byte(buf.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
	}
	if fresh > 0 {
		fmt.Fprintf(stderr, "detlint: %d finding(s) (%d baselined) in %d package(s)\n",
			len(findings), len(findings)-fresh, len(mod.Pkgs))
		return 1
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "detlint: all %d finding(s) baselined; run -write-baseline after fixing to shrink the grandfather list\n",
			len(findings))
	}
	return 0
}

// lintModule is the v2 pipeline: per-package rule passes and call-graph
// node construction fan out across the runner pool (each cell owns one
// package, so cells share no mutable state), then the module passes walk
// the merged graph serially, then directives are matched per package.
// Output is byte-identical at any worker count: cells are collected in
// package order and every module pass iterates the graph in sorted
// order.
func lintModule(mod *Module, sc *scopes, enabled []*Analyzer, checkUnused bool, workers int) ([]Finding, error) {
	type cell struct {
		findings []Finding
		nodes    []*cgNode
		refs     []string
	}
	cells, err := runner.Map(len(mod.Pkgs), runner.Options{Workers: workers},
		func(i int) (cell, error) {
			pkg := mod.Pkgs[i]
			var c cell
			c.findings = runIntraRules(mod.Fset, pkg, sc, enabled)
			c.nodes, c.refs = buildGraphNodes(mod.Fset, pkg)
			return c, nil
		})
	if err != nil {
		return nil, err
	}

	perPkg := make([][]*cgNode, len(cells))
	refs := make([][]string, len(cells))
	raw := make([][]Finding, len(cells))
	fileToPkg := map[string]int{}
	for i, c := range cells {
		perPkg[i], refs[i], raw[i] = c.nodes, c.refs, c.findings
		for _, f := range mod.Pkgs[i].Files {
			fileToPkg[mod.Fset.Position(f.Package).Filename] = i
		}
	}

	graph := mergeGraph(perPkg, refs)
	relativize := func(pos token.Position) token.Position {
		if rel, err := filepath.Rel(mod.Root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = filepath.ToSlash(rel)
		}
		return pos
	}
	mc := &moduleCtx{
		graph:  graph,
		scopes: sc,
		relPos: relativize,
		report: func(pos token.Position, rule, msg string, chain []string) {
			i, ok := fileToPkg[pos.Filename]
			if !ok {
				return
			}
			raw[i] = append(raw[i], Finding{Pos: pos, Rule: rule, Msg: msg, Chain: chain})
		},
	}
	for _, a := range enabled {
		if a.RunModule != nil {
			a.RunModule(mc)
		}
	}

	var findings []Finding
	for i, pkg := range mod.Pkgs {
		findings = append(findings, applyDirectives(mod.Fset, pkg, raw[i], checkUnused)...)
	}
	for i := range findings {
		findings[i].File = relativize(findings[i].Pos).Filename
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	assignFindingIDs(findings, mod.Root)
	return findings, nil
}

// selectRules resolves the -rules flag to a set of analyzers.
func selectRules(spec string) ([]*Analyzer, error) {
	if spec == "" {
		return analyzers, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a := analyzerByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (have %s)", name, strings.Join(ruleNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// runIntraRules runs the per-package passes of the enabled analyzers
// that are in force for pkg's module-relative path, returning raw
// findings (directives not yet applied).
func runIntraRules(fset *token.FileSet, pkg *Package, sc *scopes, enabled []*Analyzer) []Finding {
	var raw []Finding
	pass := &Pass{
		Fset:  fset,
		Files: pkg.Files,
		Info:  pkg.Info,
		report: func(pos token.Pos, rule, msg string) {
			raw = append(raw, Finding{Pos: fset.Position(pos), Rule: rule, Msg: msg})
		},
	}
	for _, a := range enabled {
		if a.Run != nil && sc.applies(a.Name, pkg.Rel) {
			a.Run(pass)
		}
	}
	return raw
}

// applyDirectives matches a package's allow directives against its raw
// findings (both per-package and module-pass findings attributed to it)
// and reports directive hygiene problems. checkUnused is false when only
// a subset of rules ran — a directive for a disabled rule is not
// "unused", it just was not exercised.
func applyDirectives(fset *token.FileSet, pkg *Package, raw []Finding, checkUnused bool) []Finding {
	directives, bad := collectDirectives(fset, pkg.Files)
	out := bad
	for _, f := range raw {
		if d := matchDirective(directives, f); d != nil {
			d.Used = true
			continue
		}
		out = append(out, f)
	}
	if checkUnused {
		for _, d := range directives {
			if !d.Used {
				out = append(out, Finding{
					Pos:  d.Pos,
					Rule: "detlint",
					Msg: fmt.Sprintf("unused //detlint:allow %s — nothing to suppress here",
						strings.Join(d.Rules, ",")),
				})
			}
		}
	}
	return out
}

// lintPackage is the single-package pipeline the fixture tests drive:
// intra rules under the default scopes, then directive matching. Module
// (call-graph) passes need lintModule.
func lintPackage(fset *token.FileSet, pkg *Package, enabled []*Analyzer, checkUnused bool) []Finding {
	return applyDirectives(fset, pkg, runIntraRules(fset, pkg, defaultScopes, enabled), checkUnused)
}
