// Command detlint is this repository's determinism linter: a static-
// analysis pass over the whole module that enforces, structurally, the
// invariant every experiment artefact depends on — simulation code is a
// pure function of the seed. The golden-hash tests catch a determinism
// break after the fact; detlint rejects the code shapes that cause one
// before it is ever run.
//
// Five rules (see DESIGN.md §12 for the failure mode behind each):
//
//	wallclock  — no time.Now/Since/Sleep/... in sim-facing packages;
//	             virtual time comes from the engine.
//	globalrand — no package-level math/rand functions anywhere; only
//	             seeded *rand.Rand values threaded from the engine.
//	maporder   — no map iteration that feeds an artefact/export sink
//	             (fmt.Fprint*, strings.Builder/bytes.Buffer writes, or a
//	             returned slice) without an intervening sort, and no map
//	             arguments to fmt formatting verbs.
//	goroutine  — no go statements, channels, select, or `sync` imports
//	             outside internal/runner and internal/qemu (the worker
//	             pool and the monitor connection plumbing). sync/atomic
//	             is permitted: commutative counters are order-blind.
//	floatsum   — no float accumulation across map iteration in the
//	             telemetry/report export packages.
//
// A violation that is legitimate is annotated, never silently exempt:
//
//	//detlint:allow <rule>[,<rule>] — <one-line justification>
//
// on (or immediately above) the offending line. A directive without a
// justification, with an unknown rule name, or that suppresses nothing
// is itself an error, so the annotation inventory stays honest.
//
// Usage:
//
//	detlint [-tests] [-rules wallclock,maporder] [./...]
//
// detlint always lints every package of the enclosing module; package
// patterns are accepted for go-vet familiarity but only select the
// module via their directory part. Exit status: 0 clean, 1 findings,
// 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// simFacing lists the packages (module-relative) whose code must never
// read the host clock: everything that runs inside a simulation, plus
// internal/runner — the sweep pool all experiments route through, whose
// one legitimate wall-clock use (progress reporting to a human) carries
// an allow directive rather than a blanket exemption.
var simFacing = []string{
	"internal/sim", "internal/cpu", "internal/kvm", "internal/ksm",
	"internal/mem", "internal/migrate", "internal/vnet", "internal/qemu",
	"internal/fleet", "internal/telemetry", "internal/experiments",
	"internal/detect", "internal/workload", "internal/runner",
	"internal/hv", "internal/hv/backends",
	"internal/controlplane", "internal/loadgen", "internal/scenario",
	"internal/shard",
}

// concurrencyExempt lists the only packages allowed to spawn goroutines
// or use sync/channels: the parallel sweep runner (whose whole job is
// deterministic fan-out) and qemu's monitor connection plumbing.
var concurrencyExempt = []string{"internal/runner", "internal/qemu"}

// floatsumScope lists the export-path packages where float accumulation
// order turns into artefact bytes.
var floatsumScope = []string{"internal/telemetry", "internal/report"}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// ruleApplies reports whether a rule is in force for the package at the
// given module-relative path.
func ruleApplies(rule, rel string) bool {
	switch rule {
	case "wallclock":
		return contains(simFacing, rel)
	case "goroutine":
		return !contains(concurrencyExempt, rel)
	case "floatsum":
		return contains(floatsumScope, rel)
	default: // globalrand, maporder: module-wide
		return true
	}
}

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

func runMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also lint _test.go files")
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	enabled, err := selectRules(*rulesFlag)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	allRules := len(enabled) == len(analyzers)

	start := "."
	if fs.NArg() > 0 {
		start = strings.TrimSuffix(fs.Arg(0), "...")
		start = strings.TrimSuffix(start, string(filepath.Separator))
		if start == "" || start == "."+string(filepath.Separator) {
			start = "."
		}
	}
	mod, err := loadModule(start, *tests)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	if len(mod.Errs) > 0 {
		for _, e := range mod.Errs {
			fmt.Fprintln(stderr, "detlint:", e)
		}
		return 2
	}

	var findings []Finding
	for _, pkg := range mod.Pkgs {
		findings = append(findings, lintPackage(mod.Fset, pkg, enabled, allRules)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(".", name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", name, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "detlint: %d finding(s) in %d package(s)\n", len(findings), len(mod.Pkgs))
		return 1
	}
	return 0
}

// selectRules resolves the -rules flag to a set of analyzers.
func selectRules(spec string) ([]*Analyzer, error) {
	if spec == "" {
		return analyzers, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a := analyzerByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (have %s)", name, strings.Join(ruleNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// lintPackage runs the enabled analyzers over one package, applies its
// allow directives, and reports directive hygiene problems. checkUnused
// is false when only a subset of rules ran — a directive for a disabled
// rule is not "unused", it just was not exercised.
func lintPackage(fset *token.FileSet, pkg *Package, enabled []*Analyzer, checkUnused bool) []Finding {
	var raw []Finding
	pass := &Pass{
		Fset:  fset,
		Files: pkg.Files,
		Info:  pkg.Info,
		report: func(pos token.Pos, rule, msg string) {
			raw = append(raw, Finding{Pos: fset.Position(pos), Rule: rule, Msg: msg})
		},
	}
	for _, a := range enabled {
		if ruleApplies(a.Name, pkg.Rel) {
			a.Run(pass)
		}
	}

	directives, bad := collectDirectives(fset, pkg.Files)
	out := bad
	for _, f := range raw {
		if d := matchDirective(directives, f); d != nil {
			d.Used = true
			continue
		}
		out = append(out, f)
	}
	if checkUnused {
		for _, d := range directives {
			if !d.Used {
				out = append(out, Finding{
					Pos:  d.Pos,
					Rule: "detlint",
					Msg: fmt.Sprintf("unused //detlint:allow %s — nothing to suppress here",
						strings.Join(d.Rules, ",")),
				})
			}
		}
	}
	return out
}
