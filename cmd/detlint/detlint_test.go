package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks testdata/fixture as one package and tags it
// with a Rel that puts every rule in force (internal/telemetry is in
// the wallclock scope, the floatsum scope, and not concurrency-exempt).
func loadFixture(t *testing.T) (*token.FileSet, *Package) {
	t.Helper()
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	dir := filepath.Join("testdata", "fixture")
	groups, err := parseDir(fset, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("fixture parsed into %d packages, want 1", len(groups))
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	imp := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	conf := types.Config{Importer: importerFrom{imp, dir}, Error: func(error) {}}
	if _, err := conf.Check("fixture", fset, groups[0], info); err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return fset, &Package{ImportPath: "fixture", Rel: "internal/telemetry", Files: groups[0], Info: info}
}

// wantMarkers reads the fixture's expectations: every comment holding
// "WANT <rule>..." names the rules that must fire on its line.
func wantMarkers(t *testing.T, fset *token.FileSet, files []*ast.File) map[string]int {
	t.Helper()
	want := map[string]int{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, tail, ok := strings.Cut(c.Text, "WANT ")
				if !ok {
					continue
				}
				tail = strings.TrimSuffix(strings.TrimSpace(tail), "*/")
				line := fset.Position(c.Pos()).Line
				for _, rule := range strings.Fields(tail) {
					if rule != "detlint" && analyzerByName(rule) == nil {
						t.Fatalf("%s:%d: marker names unknown rule %q", f.Name.Name, line, rule)
					}
					want[fmt.Sprintf("%s:%d:%s", filepath.Base(fset.Position(c.Pos()).Filename), line, rule)]++
				}
			}
		}
	}
	return want
}

// TestFixtureFindings runs all five analyzers plus the directive layer
// over the fixture package and demands an exact match with the WANT
// markers: every expected finding fires, nothing extra fires, allowed
// lines stay silent, and directive hygiene problems surface.
func TestFixtureFindings(t *testing.T) {
	fset, pkg := loadFixture(t)
	got := map[string]int{}
	for _, f := range lintPackage(fset, pkg, analyzers, true) {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)]++
	}
	want := wantMarkers(t, fset, pkg.Files)
	for k, n := range want {
		if got[k] != n {
			t.Errorf("expected %d finding(s) at %s, got %d", n, k, got[k])
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("unexpected finding at %s (x%d)", k, n)
		}
	}
}

// loadXmod loads the miniature two-layer module under testdata/xmod —
// a second module whose internal/ layout mirrors the real tree, so the
// call-graph rules (which match package paths by module-relative
// suffix) run their real logic against it.
func loadXmod(t *testing.T) *Module {
	t.Helper()
	mod, err := loadModule(filepath.Join("testdata", "xmod"), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range mod.Errs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}
	return mod
}

// xmodFindings runs the full v2 pipeline over the xmod module.
func xmodFindings(t *testing.T, workers int) []Finding {
	t.Helper()
	findings, err := lintModule(loadXmod(t), defaultScopes, analyzers, true, workers)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestXmodGraphFindings proves the call graph propagates across package
// boundaries: the transitive-wallclock chain and both horizon shapes
// (named-method handler and literal handler) fire exactly where the
// WANT markers say, and nowhere else.
func TestXmodGraphFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a second module")
	}
	mod := loadXmod(t)
	findings, err := lintModule(mod, defaultScopes, analyzers, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)]++
	}
	want := map[string]int{}
	for _, pkg := range mod.Pkgs {
		for k, n := range wantMarkers(t, mod.Fset, pkg.Files) {
			want[k] += n
		}
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("expected %d finding(s) at %s, got %d", n, k, got[k])
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("unexpected finding at %s (x%d)", k, n)
		}
	}
	// The transitive chain must be recorded on the finding for machine
	// output, and its last hop must name the clock primitive.
	for _, f := range findings {
		if f.Rule == "wallclock" {
			if len(f.Chain) < 3 || f.Chain[len(f.Chain)-1] != "time.Now" {
				t.Errorf("wallclock chain = %v, want root → helper → time.Now", f.Chain)
			}
		}
	}
}

// TestWorkersByteIdentical pins the parallel-analysis determinism
// contract: the rendered report is byte-identical at any worker count.
func TestWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a second module")
	}
	render := func(findings []Finding) string {
		var sb strings.Builder
		if err := writeReport(&sb, "json", "xmod", analyzers, findings); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	one := render(xmodFindings(t, 1))
	eight := render(xmodFindings(t, 8))
	if one != eight {
		t.Fatalf("report differs between workers=1 and workers=8:\n%s\n---\n%s", one, eight)
	}
}

// TestEveryRuleFiresInFixture guards the fixtures themselves: a rule
// whose demonstration rotted away would otherwise pass vacuously. The
// single-package fixture covers the intra-package rules; the xmod
// module covers the call-graph rules (horizon fires nowhere in a single
// package by construction).
func TestEveryRuleFiresInFixture(t *testing.T) {
	fset, pkg := loadFixture(t)
	fired := map[string]bool{}
	for _, f := range lintPackage(fset, pkg, analyzers, true) {
		fired[f.Rule] = true
	}
	if !testing.Short() {
		for _, f := range xmodFindings(t, 1) {
			fired[f.Rule] = true
		}
	}
	for _, a := range analyzers {
		if a.Name == "horizon" && testing.Short() {
			continue // only demonstrable cross-package; covered by xmod
		}
		if !fired[a.Name] {
			t.Errorf("rule %s fires nowhere in the fixtures", a.Name)
		}
	}
	if !fired["detlint"] {
		t.Error("directive hygiene (rule detlint) fires nowhere in the fixture")
	}
}

// TestRealTreeIsClean is the standing gate in test form: the module
// this linter lives in must lint clean, so `go test ./...` fails on a
// determinism violation even when make lint is skipped.
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var stdout, stderr strings.Builder
	if code := runMain([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("detlint over the real tree exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}

func TestSelectRules(t *testing.T) {
	if _, err := selectRules("wallclock,bogus"); err == nil {
		t.Error("unknown rule accepted")
	}
	rules, err := selectRules("maporder, floatsum")
	if err != nil || len(rules) != 2 || rules[0].Name != "maporder" || rules[1].Name != "floatsum" {
		t.Errorf("selectRules = %v, %v", rules, err)
	}
	all, err := selectRules("")
	if err != nil || len(all) != len(analyzers) {
		t.Errorf("empty spec should select all rules, got %d", len(all))
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		ok   bool
	}{
		{"//detlint:allow wallclock — progress timer is host-facing", true},
		{"//detlint:allow wallclock,goroutine -- two rules, ascii dashes", true},
		{"//detlint:allow wallclock", false},         // no justification
		{"//detlint:allow", false},                   // no rule
		{"//detlint:allow flibber — no such", false}, // unknown rule
	}
	for _, c := range cases {
		d, err := parseDirective(c.text)
		if (err == nil) != c.ok {
			t.Errorf("parseDirective(%q) err = %v, want ok=%v", c.text, err, c.ok)
		}
		if c.ok && len(d.Rules) == 0 {
			t.Errorf("parseDirective(%q) lost its rules", c.text)
		}
	}
}

func TestRunMainBadFlags(t *testing.T) {
	var out, errw strings.Builder
	if code := runMain([]string{"-rules", "bogus"}, &out, &errw); code != 2 {
		t.Fatalf("unknown rule should exit 2, got %d", code)
	}
	if !strings.Contains(errw.String(), "unknown rule") {
		t.Fatalf("stderr = %q", errw.String())
	}
}
