package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"
)

// sampleFindings builds a small sorted finding set against real fixture
// files, so assignFindingIDs can read the violating source lines.
func sampleFindings() []Finding {
	return []Finding{
		{
			File: "testdata/fixture/wallclock.go", Rule: "wallclock",
			Pos: token.Position{Filename: "testdata/fixture/wallclock.go", Line: 8, Column: 9},
			Msg: "sample",
		},
		{
			File: "testdata/fixture/errwrap.go", Rule: "errwrap",
			Pos:   token.Position{Filename: "testdata/fixture/errwrap.go", Line: 12, Column: 5},
			Msg:   "sample",
			Chain: []string{"a", "b"},
		},
	}
}

// TestFindingIDStability pins the fingerprint contract: IDs depend on
// rule, file, and line *text* — not line number — so a finding keeps its
// baseline identity when unrelated lines are added above it, and loses
// it when the violating line itself changes.
func TestFindingIDStability(t *testing.T) {
	root := t.TempDir()
	write := func(content string) {
		if err := os.WriteFile(filepath.Join(root, "v.go"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	id := func(line int) string {
		fs := []Finding{{
			File: "v.go", Rule: "wallclock", Msg: "m",
			Pos: token.Position{Filename: "v.go", Line: line, Column: 1},
		}}
		assignFindingIDs(fs, root)
		if !strings.HasPrefix(fs[0].ID, "DL-") || len(fs[0].ID) != len("DL-")+16 {
			t.Fatalf("ID %q not in DL-%%016x form", fs[0].ID)
		}
		return fs[0].ID
	}

	write("package v\n\nvar t = now()\n")
	orig := id(3)
	write("package v\n\n// a comment pushed the line down\n\nvar t = now()\n")
	if moved := id(5); moved != orig {
		t.Errorf("ID churned on an unrelated edit: %s vs %s", moved, orig)
	}
	write("package v\n\nvar t = nowUTC()\n")
	if edited := id(3); edited == orig {
		t.Error("ID survived the violating line being rewritten")
	}

	// Different rule on the same line must get a different ID.
	write("package v\n\nvar t = now()\n")
	fs := []Finding{{
		File: "v.go", Rule: "seedflow", Msg: "m",
		Pos: token.Position{Filename: "v.go", Line: 3, Column: 1},
	}}
	assignFindingIDs(fs, root)
	if fs[0].ID == orig {
		t.Error("distinct rules share a finding ID")
	}
}

// TestBaselineRoundTrip drives the grandfather workflow end to end:
// write a baseline, load it back, and verify exactly the recorded
// findings are marked baselined.
func TestBaselineRoundTrip(t *testing.T) {
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	fs := sampleFindings()
	assignFindingIDs(fs, root)

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeBaseline(path, fs[:1]); err != nil {
		t.Fatal(err)
	}
	ids, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh := markBaselined(fs, ids)
	if fresh != 1 || !fs[0].Baselined || fs[1].Baselined {
		t.Fatalf("fresh=%d baselined=%v,%v; want 1, true, false", fresh, fs[0].Baselined, fs[1].Baselined)
	}

	// A missing baseline is an empty baseline.
	none, err := loadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || len(none) != 0 {
		t.Fatalf("missing baseline: ids=%v err=%v", none, err)
	}
}

// TestSARIFShape validates the GitHub code-scanning essentials of the
// SARIF encoding: schema and version, a rule-table entry for every
// result's ruleIndex, %SRCROOT%-relative artifact locations, the stable
// fingerprint, and an external suppression on baselined findings.
func TestSARIFShape(t *testing.T) {
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	fs := sampleFindings()
	assignFindingIDs(fs, root)
	fs[1].Baselined = true

	var sb strings.Builder
	if err := writeReport(&sb, "sarif", "cloudskulk", analyzers, fs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
				Suppressions        []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != "2.1.0" || !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Fatalf("version=%q schema=%q", doc.Version, doc.Schema)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Tool.Driver.Name != "detlint" {
		t.Fatal("expected one run driven by detlint")
	}
	run := doc.Runs[0]
	if len(run.Tool.Driver.Rules) != len(analyzers)+1 {
		t.Fatalf("rule table has %d entries, want %d (all rules + detlint)", len(run.Tool.Driver.Rules), len(analyzers)+1)
	}
	if len(run.Results) != len(fs) {
		t.Fatalf("results=%d, want %d", len(run.Results), len(fs))
	}
	for i, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %d: ruleIndex %d does not resolve to %q", i, r.RuleIndex, r.RuleID)
		}
		if r.Level != "error" {
			t.Errorf("result %d: level %q", i, r.Level)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" || strings.HasPrefix(loc.ArtifactLocation.URI, "/") {
			t.Errorf("result %d: artifact %q base %q not repo-relative", i, loc.ArtifactLocation.URI, loc.ArtifactLocation.URIBaseID)
		}
		if r.PartialFingerprints["detlintFindingId/v1"] != fs[i].ID {
			t.Errorf("result %d: fingerprint %q, want %q", i, r.PartialFingerprints["detlintFindingId/v1"], fs[i].ID)
		}
	}
	if len(run.Results[1].Suppressions) != 1 || run.Results[1].Suppressions[0].Kind != "external" {
		t.Error("baselined finding missing external suppression")
	}
	if len(run.Results[0].Suppressions) != 0 {
		t.Error("fresh finding wrongly suppressed")
	}
}

// FuzzAllowDirective hardens the directive parser: arbitrary comment
// text must never panic, and an accepted directive must have at least
// one known rule and a non-empty justification.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//detlint:allow wallclock — progress timer is host-facing")
	f.Add("//detlint:allow wallclock,goroutine -- two rules")
	f.Add("//detlint:allow")
	f.Add("//detlint:allow  ,, — ")
	f.Add("//detlint:allowwallclock — glued")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := parseDirective(text)
		if err != nil {
			return
		}
		if len(d.Rules) == 0 {
			t.Fatalf("accepted directive %q with no rules", text)
		}
		for _, r := range d.Rules {
			if analyzerByName(r) == nil {
				t.Fatalf("accepted directive %q with unknown rule %q", text, r)
			}
		}
	})
}

// FuzzDetlintFindingJSON checks the machine-report encoding round-trips
// any finding content (paths with quotes, chain arrows, control bytes).
func FuzzDetlintFindingJSON(f *testing.F) {
	f.Add("internal/sim/engine.go", "wallclock", "reads the host clock", 10, 4)
	f.Add("a\"b\\c.go", "horizon", "chain → with → arrows", -1, 0)
	f.Fuzz(func(t *testing.T, file, rule, msg string, line, col int) {
		in := Finding{
			File: file, Rule: rule, Msg: msg, ID: "DL-0000000000000000",
			Pos:   token.Position{Filename: file, Line: line, Column: col},
			Chain: []string{msg, rule},
		}
		data, err := json.Marshal(toJSONFinding(in))
		if err != nil {
			t.Fatal(err)
		}
		var out jsonFinding
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("round-trip failed for %q: %v", data, err)
		}
		if !utf8.ValidString(file) || !utf8.ValidString(rule) || !utf8.ValidString(msg) {
			return // encoding/json coerces invalid UTF-8 to U+FFFD; real findings are UTF-8
		}
		if out.File != file || out.Rule != rule || out.Message != msg || out.Line != line || out.Col != col {
			t.Fatalf("round-trip mutated finding: %+v -> %+v", in, out)
		}
	})
}

// BenchmarkDetlintFullTree measures the v2 pipeline (intra rules, graph
// build, module passes, IDs) over the real module; loading and
// type-checking are done once outside the loop.
func BenchmarkDetlintFullTree(b *testing.B) {
	mod, err := loadModule(".", false)
	if err != nil {
		b.Fatal(err)
	}
	if len(mod.Errs) > 0 {
		b.Fatal(mod.Errs[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings, err := lintModule(mod, defaultScopes, analyzers, true, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("real tree not clean: %d findings", len(findings))
		}
	}
}
