package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Machine-readable reporting: stable finding IDs, JSON and SARIF 2.1.0
// encodings, and the committed baseline that lets a new rule land with
// grandfathered findings still visible but no longer fatal.

// assignFindingIDs computes each finding's stable fingerprint: FNV-1a of
// rule, module-relative file, the violating source line's trimmed text,
// and an occurrence ordinal (distinguishing repeated identical findings
// in one file). Line *content* rather than line *number* keys the hash,
// so edits elsewhere in a file do not churn a grandfathered ID; editing
// the violating line itself re-opens the finding, which is the audit
// property a baseline needs. Findings must already be sorted.
func assignFindingIDs(findings []Finding, root string) {
	lines := map[string][]string{}
	seen := map[string]int{}
	for i := range findings {
		f := &findings[i]
		text := sourceLine(lines, root, f.File, f.Pos.Line)
		base := f.Rule + "|" + f.File + "|" + text
		n := seen[base]
		seen[base] = n + 1
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%d", base, n)
		f.ID = fmt.Sprintf("DL-%016x", h.Sum64())
	}
}

// sourceLine fetches (and caches) one trimmed line of a module file.
func sourceLine(cache map[string][]string, root, rel string, line int) string {
	ls, ok := cache[rel]
	if !ok {
		data, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(rel)))
		if err == nil {
			ls = strings.Split(string(data), "\n")
		}
		cache[rel] = ls
	}
	if line < 1 || line > len(ls) {
		return ""
	}
	return strings.TrimSpace(ls[line-1])
}

// --- baseline ---

// baselineEntry records one grandfathered finding with enough context to
// audit it without re-running the linter.
type baselineEntry struct {
	ID   string `json:"id"`
	Rule string `json:"rule"`
	File string `json:"file"`
	Note string `json:"note"`
}

// baselineFile is the committed grandfather list.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

// baselineName is the default baseline location at the module root.
const baselineName = ".detlint-baseline.json"

// loadBaseline reads the baseline at path; a missing file is an empty
// baseline (explicit paths still fail loudly on other errors).
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if bf.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported baseline version %d", path, bf.Version)
	}
	ids := make(map[string]bool, len(bf.Findings))
	for _, e := range bf.Findings {
		ids[e.ID] = true
	}
	return ids, nil
}

// writeBaseline records the given findings (sorted by ID) as the new
// grandfather list.
func writeBaseline(path string, findings []Finding) error {
	bf := baselineFile{Version: 1, Findings: []baselineEntry{}}
	for _, f := range findings {
		bf.Findings = append(bf.Findings, baselineEntry{
			ID: f.ID, Rule: f.Rule, File: f.File, Note: f.Msg,
		})
	}
	sort.Slice(bf.Findings, func(i, j int) bool { return bf.Findings[i].ID < bf.Findings[j].ID })
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// markBaselined flags findings whose ID is grandfathered and returns how
// many new (non-baselined) findings remain.
func markBaselined(findings []Finding, ids map[string]bool) int {
	fresh := 0
	for i := range findings {
		if ids[findings[i].ID] {
			findings[i].Baselined = true
		} else {
			fresh++
		}
	}
	return fresh
}

// --- JSON report ---

// jsonFinding is the wire form of one finding.
type jsonFinding struct {
	ID        string   `json:"id"`
	Rule      string   `json:"rule"`
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Col       int      `json:"col"`
	Message   string   `json:"message"`
	Chain     []string `json:"chain,omitempty"`
	Baselined bool     `json:"baselined,omitempty"`
}

// jsonReport is the -format json document.
type jsonReport struct {
	Module   string        `json:"module"`
	Rules    []string      `json:"rules"`
	Findings []jsonFinding `json:"findings"`
}

// toJSONFinding converts a Finding.
func toJSONFinding(f Finding) jsonFinding {
	return jsonFinding{
		ID: f.ID, Rule: f.Rule, File: f.File,
		Line: f.Pos.Line, Col: f.Pos.Column,
		Message: f.Msg, Chain: f.Chain, Baselined: f.Baselined,
	}
}

// writeJSON emits the JSON report (sorted input order preserved).
func writeJSON(w io.Writer, module string, enabled []*Analyzer, findings []Finding) error {
	rep := jsonReport{Module: module, Findings: []jsonFinding{}}
	for _, a := range enabled {
		rep.Rules = append(rep.Rules, a.Name)
	}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, toJSONFinding(f))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// --- SARIF 2.1.0 report ---

// The minimal shape GitHub code scanning ingests: one run, one driver,
// a rule table, results with physical locations and partialFingerprints
// carrying the stable detlint ID. Baselined findings carry an external
// suppression, which code scanning renders as "suppressed" rather than
// failing the check.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string             `json:"ruleId"`
	RuleIndex           int                `json:"ruleIndex"`
	Level               string             `json:"level"`
	Message             sarifText          `json:"message"`
	Locations           []sarifLocation    `json:"locations"`
	PartialFingerprints map[string]string  `json:"partialFingerprints"`
	Suppressions        []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF emits the SARIF report. The directive-hygiene pseudo-rule
// "detlint" gets a rule-table entry too, so every result's ruleIndex
// resolves.
func writeSARIF(w io.Writer, enabled []*Analyzer, findings []Finding) error {
	driver := sarifDriver{
		Name:           "detlint",
		InformationURI: "https://example.invalid/cloudskulk/cmd/detlint", // module-local tool; DESIGN.md §12/§17 are the docs
	}
	index := map[string]int{}
	for _, a := range enabled {
		index[a.Name] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{
			ID: a.Name, ShortDescription: sarifText{Text: a.Doc},
		})
	}
	index["detlint"] = len(driver.Rules)
	driver.Rules = append(driver.Rules, sarifRule{
		ID: "detlint", ShortDescription: sarifText{Text: "allow-directive hygiene"},
	})

	results := []sarifResult{}
	for _, f := range findings {
		idx, ok := index[f.Rule]
		if !ok {
			idx = index["detlint"]
		}
		res := sarifResult{
			RuleID:    f.Rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifText{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{"detlintFindingId/v1": f.ID},
		}
		if f.Baselined {
			res.Suppressions = []sarifSuppression{{
				Kind: "external", Justification: "grandfathered in " + baselineName,
			}}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// writeReport dispatches on format ("json" or "sarif").
func writeReport(w io.Writer, format, module string, enabled []*Analyzer, findings []Finding) error {
	switch format {
	case "json":
		return writeJSON(w, module, enabled, findings)
	case "sarif":
		return writeSARIF(w, enabled, findings)
	default:
		return fmt.Errorf("unknown report format %q (have text, json, sarif)", format)
	}
}
