package main

import (
	"go/ast"
	"go/token"
)

// floatsumAnalyzer forbids accumulating floats across map iteration in
// the export packages (telemetry, report). Float addition is not
// associative: summing the same values in two different map orders can
// differ in the last ulp, and an export path turns that ulp into a
// byte difference between artefacts that golden tests then chase for a
// day. Accumulate integers (the telemetry histogram contract) or
// iterate sorted keys.
var floatsumAnalyzer = &Analyzer{
	Name: "floatsum",
	Doc:  "forbid float accumulation across map iteration in export packages",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(p.typeOf(rng.X)) {
					return true
				}
				inspectShallow(rng.Body, func(n ast.Node) bool {
					as, ok := n.(*ast.AssignStmt)
					if !ok {
						return true
					}
					if acc := p.floatAccumulation(as); acc != "" {
						p.report(as.Pos(), "floatsum",
							"float accumulation of "+acc+" across map iteration is order-sensitive; sum integers or sort keys first")
					}
					return true
				})
				return true
			})
		}
	},
}

// floatAccumulation reports the accumulated variable's name when the
// assignment grows a float across iterations: x += v, x -= v, x *= v,
// or x = x + v (any arithmetic with x on both sides).
func (p *Pass) floatAccumulation(as *ast.AssignStmt) string {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return ""
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok || !isFloatType(p.typeOf(lhs)) {
		return ""
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return lhs.Name
	case token.ASSIGN:
		target := p.objectOf(lhs)
		if target == nil {
			return ""
		}
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok {
			return ""
		}
		found := false
		ast.Inspect(bin, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.objectOf(id) == target {
				found = true
			}
			return true
		})
		if found {
			return lhs.Name
		}
	}
	return ""
}
