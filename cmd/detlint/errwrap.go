package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// errwrapAnalyzer protects the typed-error taxonomy every internal/
// package leans on (runner.ErrCellFailed, fleet.ErrMigrationFailed, the
// controlplane quota/admission rejects, hv.ErrUnknownBackend, ...).
// Those sentinels only work if causes stay reachable through the wrap
// chain and comparisons go through errors.Is:
//
//   - fmt.Errorf("...: %v", err) flattens the cause into text — every
//     errors.Is upstream silently starts returning false. Error-typed
//     arguments must be wrapped with %w.
//   - err1 == err2 compares one link of the chain, not the chain;
//     errors.Is is the comparison the taxonomy is built for. (The
//     x.Is(target) method implementations errors.Is itself calls are the
//     one place identity comparison is the point, and stay legal.)
//   - matching on err.Error() text couples callers to message wording —
//     string comparisons and strings.Contains/HasPrefix/HasSuffix on an
//     error's text are reported. Rendering an error into a message stays
//     legal; deciding on the rendered text does not.
//
// Scoped to internal/: command front-ends print errors for humans, the
// library layers route them for machines.
var errwrapAnalyzer = &Analyzer{
	Name: "errwrap",
	Doc:  "require %w wrapping and errors.Is for sentinel errors in internal/ packages",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if isErrorsIsMethod(p, n) {
						return false // identity comparison is this method's job
					}
				case *ast.CallExpr:
					p.checkErrorfWrap(n)
					p.checkErrorTextMatch(n)
				case *ast.BinaryExpr:
					p.checkErrorCompare(n)
				}
				return true
			})
		}
	},
}

// isErrorsIsMethod matches the conventional Is(error) bool method that
// errors.Is dispatches to.
func isErrorsIsMethod(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Is" || fd.Recv == nil || fd.Type.Params.NumFields() != 1 {
		return false
	}
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 1 && isErrorType(sig.Params().At(0).Type()) &&
		sig.Results().Len() == 1
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error value to a
// verb other than %w.
func (p *Pass) checkErrorfWrap(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || p.pkgPathOf(sel.X) != "fmt" || sel.Sel.Name != "Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := constStringVal(p, call.Args[0])
	if !ok || strings.Contains(format, "%[") {
		return // dynamic or indexed format: out of this rule's depth
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if !isErrorType(p.typeOf(arg)) || i >= len(verbs) {
			continue
		}
		if verbs[i] != 'w' {
			p.report(arg.Pos(), "errwrap",
				"error wrapped with %"+string(verbs[i])+" loses the cause chain; use %w so errors.Is keeps working")
		}
	}
}

// checkErrorCompare flags ==/!= between two error values (nil excluded).
func (p *Pass) checkErrorCompare(bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	if isNilExpr(p, bin.X) || isNilExpr(p, bin.Y) {
		return
	}
	if isErrorType(p.typeOf(bin.X)) && isErrorType(p.typeOf(bin.Y)) {
		p.report(bin.OpPos, "errwrap",
			"direct error comparison misses wrapped causes; compare with errors.Is")
		return
	}
	// err.Error() == "..." (either side): matching on rendered text.
	if isErrorTextCall(p, bin.X) || isErrorTextCall(p, bin.Y) {
		p.report(bin.OpPos, "errwrap",
			"comparing err.Error() text couples the caller to message wording; compare sentinels with errors.Is")
	}
}

// errTextMatchers are the strings functions that turn error text into a
// control-flow decision.
var errTextMatchers = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true, "EqualFold": true, "Index": true,
}

// checkErrorTextMatch flags strings.Contains/HasPrefix/... applied to an
// error's rendered text.
func (p *Pass) checkErrorTextMatch(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || p.pkgPathOf(sel.X) != "strings" || !errTextMatchers[sel.Sel.Name] {
		return
	}
	for _, arg := range call.Args {
		if isErrorTextCall(p, arg) {
			p.report(arg.Pos(), "errwrap",
				"strings."+sel.Sel.Name+" on err.Error() matches message wording; compare sentinels with errors.Is")
			return
		}
	}
}

// isErrorTextCall matches x.Error() where x is an error.
func isErrorTextCall(p *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorType(p.typeOf(sel.X))
}

// isErrorType reports whether t implements the error interface. Nil
// types and the untyped nil are not errors.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorIface)
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(p *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.objectOf(id).(*types.Nil)
	return isNil
}

// constStringVal extracts a compile-time constant string.
func constStringVal(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb letter consumed by each successive
// argument of a Printf-style format. Flags, width, and precision are
// skipped; "%%" consumes no argument; "*" (dynamic width) consumes one.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // %%: literal percent
			}
			if c == '*' {
				verbs = append(verbs, '*') // width argument
				i++
				continue
			}
			if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' ||
				c == ' ' || c == '#' {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}
