// Package experiments holds the violations only whole-module analysis
// catches: a wallclock read hidden behind a helper package, and engine
// clock control reachable from shard event handlers.
package experiments

import (
	"xmod/internal/shard"
	"xmod/internal/sim"
	"xmod/internal/stats"
)

// StampResult looks innocent package-locally; the helper it calls reads
// the host clock.
func StampResult() int64 {
	return stats.HostStamp() // WANT wallclock
}

// MeanOf exercises a benign cross-package call: no finding.
func MeanOf(xs []float64) float64 {
	return stats.Mean(xs)
}

type Cell struct {
	eng *sim.Engine
}

// Attach registers a named method as the delivery handler; the banned
// primitive is two hops away from it.
func (c *Cell) Attach(s *shard.Shard) {
	s.OnDeliver(c.onDeliver)
}

func (c *Cell) onDeliver(m shard.Message) {
	_ = m
	c.catchUp() // WANT horizon
}

func (c *Cell) catchUp() {
	c.eng.Advance(10)
}

// AttachLit registers a literal handler that calls the banned primitive
// directly.
func (c *Cell) AttachLit(s *shard.Shard) {
	s.OnDeliver(func(m shard.Message) {
		_ = m
		c.eng.Advance(5) // WANT horizon
	})
}
