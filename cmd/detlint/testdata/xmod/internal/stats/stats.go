// Package stats sits deliberately outside the sim-facing scope: the
// transitive-wallclock fixture reaches the host clock through it, which
// only the call-graph pass can see.
package stats

import "time"

func HostStamp() int64 {
	return time.Now().UnixNano()
}

func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
