// Package sim is a miniature stand-in for the real engine: just enough
// surface (the clock-control methods and the scheduling entry points)
// for the call-graph rules to resolve against a second module layout.
package sim

import "time"

type Engine struct {
	now time.Duration
}

func (e *Engine) Now() time.Duration { return e.now }

func (e *Engine) Advance(d time.Duration) { e.now += d }

func (e *Engine) Run() {}

func (e *Engine) Schedule(delay time.Duration, name string, fn func()) {
	_, _, _ = delay, name, fn
}

func (e *Engine) ScheduleAt(at time.Duration, name string, fn func()) {
	_, _, _ = at, name, fn
}
