// Package shard mirrors the real shard surface the horizon rule keys
// on: OnDeliver registrations make handler roots.
package shard

import "xmod/internal/sim"

type Message struct {
	Kind string
}

type Shard struct {
	eng     *sim.Engine
	deliver func(Message)
}

func New(eng *sim.Engine) *Shard { return &Shard{eng: eng} }

func (s *Shard) Engine() *sim.Engine { return s.eng }

func (s *Shard) OnDeliver(fn func(Message)) { s.deliver = fn }
