package fixture

import (
	"math/rand"
	"time"
)

type sweepCfg struct {
	Seed int64
}

func seedflowViolations(n int64) {
	_ = rand.New(rand.NewSource(42))                    // WANT seedflow
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // WANT seedflow wallclock
	_ = rand.New(rand.NewSource(n))                     // WANT seedflow
	rand.New(rand.NewSource(1)).Seed(7)                 // WANT seedflow seedflow
}

func seedflowLegal(cfg sweepCfg, baseSeed int64, rng *rand.Rand) {
	_ = rand.New(rand.NewSource(cfg.Seed))
	_ = rand.New(rand.NewSource(baseSeed ^ 0x9e3779b9))
	_ = rand.New(rand.NewSource(rng.Int63())) // a draw from a seeded generator inherits provenance
}
