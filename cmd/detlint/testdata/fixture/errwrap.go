package fixture

import (
	"errors"
	"fmt"
	"strings"
)

var errFixtureSentinel = errors.New("fixture sentinel")

func errwrapViolations(err error) error {
	if err == errFixtureSentinel { // WANT errwrap
		return nil
	}
	if err.Error() == "boom" { // WANT errwrap
		return nil
	}
	if strings.Contains(err.Error(), "boom") { // WANT errwrap
		return nil
	}
	return fmt.Errorf("stage failed: %v", err) // WANT errwrap
}

func errwrapLegal(err error) error {
	if err == nil { // nil comparison: legal
		return nil
	}
	if errors.Is(err, errFixtureSentinel) {
		return fmt.Errorf("sentinel path: %w", err)
	}
	msg := err.Error() // rendering text is legal; deciding on it is not
	return fmt.Errorf("%s: %w", msg, err)
}

type causeError struct {
	cause error
}

func (c *causeError) Error() string { return "cause: " + c.cause.Error() }

// Is is the method errors.Is dispatches to; identity comparison is its
// job and stays legal.
func (c *causeError) Is(target error) bool {
	return target == errFixtureSentinel
}
