package fixture

type pool struct {
	buf  []int
	free []*pool
}

type handle struct {
	id, gen int
}

//detlint:hotpath
func hotpathViolations(n int) {
	f := func() int { return n } // WANT hotpath
	_ = f()
	_ = &pool{}           // WANT hotpath
	_ = map[string]int{}  // WANT hotpath
	_ = []int{1, 2, 3}    // WANT hotpath
	_ = make(map[int]int) // WANT hotpath
	_ = make([]int, 0, n) // WANT hotpath
	_ = new(pool)         // WANT hotpath
}

//detlint:hotpath
func hotpathAppendFresh(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // WANT hotpath
	}
	return out
}

//detlint:hotpath
func hotpathReuse(p *pool, xs []int) handle {
	buf := p.buf[:0]
	for _, x := range xs {
		buf = append(buf, x) // re-sliced from a field: the reuse idiom, legal
	}
	p.buf = buf
	return handle{id: len(buf), gen: 1} // value struct composite: stack, legal
}

//detlint:hotpath
func hotpathParamAppend(buf []int, x int) []int {
	buf = append(buf, x) // parameter-owned storage, legal
	return buf
}

// Unannotated: every shape above is legal here.
func coldpathAllocates(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
