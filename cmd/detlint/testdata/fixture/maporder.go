package fixture

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func maporderEmit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // WANT maporder
	}
}

func maporderBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // WANT maporder
	}
	return b.String()
}

func maporderUnsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // WANT maporder
	}
	return keys
}

func maporderSortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // legal: sorted before escaping
	}
	sort.Strings(keys)
	return keys
}

func maporderFmtMap(m map[string]int) string {
	return fmt.Sprintf("%v", m) // WANT maporder
}

func maporderSortedRender(m map[string]int) string {
	var b strings.Builder
	for _, k := range maporderSortedCollect(m) { // slice range: legal
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}
