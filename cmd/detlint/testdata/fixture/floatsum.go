package fixture

func floatsumViolations(m map[string]float64) (float64, float64, int64) {
	var sum float64
	prod := 1.0
	var n int64
	for _, v := range m {
		sum += v        // WANT floatsum
		prod = prod * v // WANT floatsum
		n += int64(v)   // integer accumulation: exact, legal
	}
	return sum, prod, n
}

func floatsumOverSlice(vs []float64) float64 {
	var sum float64
	for _, v := range vs { // slice order is the program's own: legal
		sum += v
	}
	return sum
}
