package fixture

import "time"

// Directive hygiene: a malformed or useless escape hatch is itself a
// finding (rule "detlint"), so annotations cannot rot silently.

func allowMissingJustification() time.Time {
	/* WANT detlint */ //detlint:allow wallclock
	return time.Now()  // WANT wallclock
}

func allowUnknownRule() time.Time {
	/* WANT detlint */ //detlint:allow flibber — no such rule
	return time.Now()  // WANT wallclock
}

/* WANT detlint */ //detlint:allow maporder — fixture: nothing on the next line violates maporder, so this is unused
func allowUnused() {}
