package fixture

import "sync" // WANT goroutine

func goroutineViolations() {
	ch := make(chan int, 1) // WANT goroutine
	go close(ch)            // WANT goroutine
	ch <- 1                 // WANT goroutine
	<-ch                    // WANT goroutine
	var mu sync.Mutex       // usage is not re-flagged; the import is the gateway
	mu.Lock()
	mu.Unlock()
	select {} // WANT goroutine
}
