package fixture

import "math/rand"

func globalrandViolations() int {
	rand.Seed(42)                    // WANT globalrand
	n := rand.Intn(10)               // WANT globalrand
	f := rand.Float64()              // WANT globalrand
	rand.Shuffle(3, func(i, j int) { // WANT globalrand
	})
	shuffler := rand.Perm // WANT globalrand
	_ = shuffler
	_, _ = n, f
	return n
}

func globalrandSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // threaded seed: legal for globalrand and seedflow
	var src rand.Source                 // type reference: legal
	_ = src
	return r.Intn(10) // method on a seeded *rand.Rand: legal
}
