package fixture

import "time"

// Host-clock reads: each flagged line carries a marker comment naming
// the rule the test expects to fire there.
func wallclockViolations() time.Duration {
	t0 := time.Now()             // WANT wallclock
	time.Sleep(time.Millisecond) // WANT wallclock
	d := time.Since(t0)          // WANT wallclock
	_ = time.After(d)            // WANT wallclock
	_ = time.Unix(0, 0)          // pure constructor: legal
	_ = d.String()               // rendering a duration: legal
	return d
}

func wallclockAllowed() time.Duration {
	//detlint:allow wallclock — fixture: a justified directive suppresses the line below
	t0 := time.Now()
	//detlint:allow wallclock — fixture: and a same-line directive works too
	return time.Since(t0)
}
