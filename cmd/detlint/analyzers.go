package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Finding is one rule violation at a position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string

	// File is the module-relative (slash-separated) path of Pos.Filename,
	// filled by the pipeline once the module root is known. It is what
	// machine-readable reports and stable IDs are keyed on: absolute
	// paths would make the baseline host-specific.
	File string
	// ID is the stable fingerprint of the finding (rule + file + source
	// line text + occurrence ordinal), independent of line numbers so
	// unrelated edits above a grandfathered finding do not churn the
	// baseline. Filled by assignFindingIDs.
	ID string
	// Chain is the call chain for call-graph findings (caller first,
	// primitive last); empty for single-function findings.
	Chain []string
	// Baselined marks a finding whose ID is grandfathered in the
	// committed baseline: reported in machine output, excluded from the
	// exit-status decision.
	Baselined bool
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Info   *types.Info
	report func(pos token.Pos, rule, msg string)
}

// Analyzer is one determinism rule. A rule can have a per-package pass
// (Run), a whole-module call-graph pass (RunModule), or both: wallclock
// flags direct host-clock reads package by package and then walks the
// call graph for sim-facing code that reaches the clock through helper
// packages a single-package scan cannot see.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(p *Pass)
	RunModule func(mc *moduleCtx)
}

// analyzers lists every rule, in the order findings are attributed.
var analyzers = []*Analyzer{
	wallclockAnalyzer,
	globalrandAnalyzer,
	maporderAnalyzer,
	goroutineAnalyzer,
	floatsumAnalyzer,
	horizonAnalyzer,
	seedflowAnalyzer,
	hotpathAnalyzer,
	errwrapAnalyzer,
}

func analyzerByName(name string) *Analyzer {
	for _, a := range analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

func ruleNames() []string {
	out := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		out = append(out, a.Name)
	}
	return out
}

// pkgPathOf returns the import path of the package a selector base
// references ("time" in time.Now), or "" when the expression is not a
// package qualifier.
func (p *Pass) pkgPathOf(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// typeOf is Info.TypeOf, nil-safe on expressions the checker skipped.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloatType reports whether t's underlying type is a float.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// objectOf resolves an identifier to its object via Uses then Defs.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// eachFunc visits every function body in the package exactly once,
// innermost-function ownership: statements of a nested FuncLit belong
// to the FuncLit's visit, not its enclosing function's.
func (p *Pass) eachFunc(fn func(body *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}

// inspectShallow walks n without descending into nested function
// literals, so statement-level analyses stay scoped to one function.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
