package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// seedflowAnalyzer is a taint-style provenance check on RNG seeds in
// sim-facing packages. Every artefact in this repository is a pure
// function of the root seed, which holds only if every generator in the
// tree is seeded from it: one rand.NewSource(42) buried in a helper
// makes two "different-seed" sweeps share a random stream, and a
// wallclock-derived seed makes the same sweep differ run to run.
//
// The rule examines the seed argument of every generator constructor
// (rand.NewSource, rand.NewPCG, rand.NewChaCha8, and the (*rand.Rand).Seed
// method) and demands visible derivation:
//
//   - a constant seed is reported outright (fixtures and tests are out
//     of scope by default, so a literal in lint scope is a real hazard);
//   - a seed expression containing a wallclock read is reported (the
//     wallclock rule fires on the read too; the seedflow finding names
//     the consequence);
//   - otherwise the expression must mention an approved source: an
//     identifier or field whose name contains "seed" (the root seed and
//     everything threaded from it follow the naming convention this rule
//     now pins), a call to runner.CellSeed, a draw from an existing
//     *rand.Rand, or the engine's RNG. An expression with no approved
//     source is reported as underived.
var seedflowAnalyzer = &Analyzer{
	Name: "seedflow",
	Doc:  "require RNG seeds in sim-facing code to derive from the root seed or runner.CellSeed",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, arg := range seedArgs(p, call) {
					p.checkSeedExpr(arg)
				}
				return true
			})
		}
	},
}

// seedConstructors maps math/rand{,/v2} constructor names to how many
// leading arguments carry seed material.
var seedConstructors = map[string]int{
	"NewSource":  1,
	"NewPCG":     2,
	"NewChaCha8": 1,
}

// seedArgs returns the seed-carrying arguments of call, or nil when call
// is not a generator-seeding operation.
func seedArgs(p *Pass, call *ast.CallExpr) []ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if path := p.pkgPathOf(sel.X); path == "math/rand" || path == "math/rand/v2" {
		if n, ok := seedConstructors[sel.Sel.Name]; ok && len(call.Args) >= n {
			return call.Args[:n]
		}
		return nil
	}
	// (*rand.Rand).Seed(v): re-seeding an existing generator.
	if sel.Sel.Name == "Seed" && len(call.Args) == 1 && isRandRand(p.typeOf(sel.X)) {
		return call.Args[:1]
	}
	return nil
}

// checkSeedExpr classifies one seed expression.
func (p *Pass) checkSeedExpr(arg ast.Expr) {
	if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil {
		p.report(arg.Pos(), "seedflow",
			"literal RNG seed; derive seeds from the root seed (runner.CellSeed or a threaded Seed field)")
		return
	}
	wallclock, approved := p.scanSeedSources(arg)
	switch {
	case wallclock != "":
		p.report(arg.Pos(), "seedflow",
			"RNG seed derived from "+wallclock+"; a wallclock seed changes every run — derive from the root seed")
	case !approved:
		p.report(arg.Pos(), "seedflow",
			"RNG seed does not visibly derive from the root seed; thread it from runner.CellSeed or a Seed field/parameter")
	}
}

// scanSeedSources walks a seed expression, reporting the first wallclock
// source it contains and whether any approved seed source appears.
func (p *Pass) scanSeedSources(arg ast.Expr) (wallclock string, approved bool) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if p.pkgPathOf(n.X) == "time" && wallclockBanned[n.Sel.Name] {
				wallclock = "time." + n.Sel.Name
				return true
			}
			if seedishName(n.Sel.Name) {
				approved = true
			}
			// A draw from an existing seeded generator, or the engine's
			// own RNG, inherits its provenance.
			if isRandRand(p.typeOf(n.X)) {
				approved = true
			}
			if fn, ok := p.objectOf(n.Sel).(*types.Func); ok && isApprovedSeedFunc(fn) {
				approved = true
			}
		case *ast.Ident:
			if seedishName(n.Name) {
				approved = true
			}
		}
		return true
	})
	return wallclock, approved
}

// seedishName reports whether an identifier visibly carries seed
// material by the repository's naming convention.
func seedishName(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// isApprovedSeedFunc recognizes the two blessed seed-deriving calls:
// runner.CellSeed (the per-cell derivation rule every sweep uses) and
// sim.Engine.RNG (a draw from the engine's root-seeded stream).
func isApprovedSeedFunc(fn *types.Func) bool {
	pkg, recv := funcHome(fn)
	if fn.Name() == "CellSeed" && recv == "" && pkgSuffix(pkg, "internal/runner") {
		return true
	}
	if fn.Name() == "RNG" && recv == "Engine" && pkgSuffix(pkg, "internal/sim") {
		return true
	}
	return false
}

// isRandRand reports whether t is *math/rand.Rand (or rand/v2's types).
func isRandRand(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return false
	}
	switch named.Obj().Name() {
	case "Rand", "PCG", "ChaCha8":
		return true
	}
	return false
}
