package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under lint.
type Package struct {
	ImportPath string
	Rel        string // module-relative dir ("" for the module root)
	Dir        string
	Files      []*ast.File
	Info       *types.Info
}

// Module is the loaded lint target: every package of one Go module,
// parsed and type-checked against a shared FileSet.
type Module struct {
	Name string
	Root string
	Fset *token.FileSet
	Pkgs []*Package
	Errs []error
}

// loadModule locates the module enclosing start, parses every package
// under its root (skipping testdata/vendor/hidden dirs), and
// type-checks them with the stdlib source importer, so analyzers get
// full types.Info without any dependency outside the standard library.
func loadModule(start string, includeTests bool) (*Module, error) {
	root, name, err := findModule(start)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	// The source importer type-checks dependencies (stdlib and intra-
	// module alike) from source. Disabling cgo selects the pure-Go
	// variants of stdlib packages like net, which is all the type
	// information the analyzers need. Module-path imports resolve through
	// `go list`, which go/build runs in ctxt.Dir — pin it to the module
	// root so a module other than the process's working module (the
	// fixture module under testdata) resolves its own packages.
	build.Default.CgoEnabled = false
	build.Default.Dir = root
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)

	mod := &Module{Name: name, Root: root, Fset: fset}
	for _, dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		if rel == "." {
			rel = ""
		}
		rel = filepath.ToSlash(rel)
		groups, err := parseDir(fset, dir, includeTests)
		if err != nil {
			mod.Errs = append(mod.Errs, err)
			continue
		}
		for _, g := range groups {
			info := &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
			}
			importPath := name
			if rel != "" {
				importPath = name + "/" + rel
			}
			conf := types.Config{
				Importer: importerFrom{imp, dir},
				Error:    func(error) {}, // collect via the returned error below
			}
			if _, err := conf.Check(importPath, fset, g, info); err != nil {
				mod.Errs = append(mod.Errs, fmt.Errorf("%s: %w", importPath, err))
				continue
			}
			mod.Pkgs = append(mod.Pkgs, &Package{
				ImportPath: importPath,
				Rel:        rel,
				Dir:        dir,
				Files:      g,
				Info:       info,
			})
		}
	}
	return mod, nil
}

// importerFrom pins the srcDir used for import resolution to the
// importing package's directory, so module-path imports resolve no
// matter where detlint is invoked from.
type importerFrom struct {
	imp types.ImporterFrom
	dir string
}

func (i importerFrom) Import(path string) (*types.Package, error) {
	return i.imp.ImportFrom(path, i.dir, 0)
}

// findModule walks up from start to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(start string) (root, name string, err error) {
	dir, err := filepath.Abs(start)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if after, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(after), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", start)
		}
		dir = parent
	}
}

// packageDirs returns every directory under root that holds .go files,
// skipping testdata, vendor, and hidden/underscore directories — the
// same exclusions the go tool applies.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := filepath.Base(path)
			if path != root && (base == "testdata" || base == "vendor" ||
				strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses one directory's files and groups them by package
// clause, so an external foo_test package type-checks separately from
// foo. Groups come back in deterministic (package name) order.
func parseDir(fset *token.FileSet, dir string, includeTests bool) ([][]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string][]*ast.File{}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg := f.Name.Name
		if _, seen := byName[pkg]; !seen {
			names = append(names, pkg)
		}
		byName[pkg] = append(byName[pkg], f)
	}
	sort.Strings(names)
	var groups [][]*ast.File
	for _, n := range names {
		groups = append(groups, byName[n])
	}
	return groups, nil
}
