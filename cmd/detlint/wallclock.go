package main

import (
	"go/ast"
)

// wallclockBanned are the time-package functions that read or wait on
// the host clock. Pure constructors/formatters (time.Duration,
// time.Unix, d.String) stay legal: sim code renders virtual durations
// constantly.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// wallclockAnalyzer forbids host-clock reads in sim-facing packages.
// Any value they contribute (timestamps, elapsed times, timer firings)
// differs run to run, so it breaks the seed→artefact function the
// moment it reaches an artefact — and there is no legitimate reason for
// sim code to look at the host clock: virtual time lives on the engine.
//
// The per-package pass catches direct reads; the module pass
// (wallclockModulePass) walks the call graph for sim-facing code that
// reaches the clock through helper packages outside the scope.
var wallclockAnalyzer = &Analyzer{
	Name:      "wallclock",
	Doc:       "forbid time.Now/Since/Sleep/... in sim-facing packages, directly or transitively",
	RunModule: wallclockModulePass,
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if p.pkgPathOf(sel.X) == "time" && wallclockBanned[sel.Sel.Name] {
					p.report(sel.Pos(), "wallclock",
						"time."+sel.Sel.Name+" reads the host clock; sim code must take time from the engine")
				}
				return true
			})
		}
	},
}
