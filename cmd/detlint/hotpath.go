package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathPrefix annotates a function as allocation-free by contract:
//
//	//detlint:hotpath
//
// in (or immediately above) the function's doc comment. The PR-4
// overhaul made the sim kernel, the dirty-bitmap harvest, and the shard
// exchange steady-state zero-alloc, and the benchmark gate only notices
// a regression when someone re-runs it; this rule rejects the code
// shapes that allocate, at lint time, in exactly the functions the
// contract covers.
const hotpathPrefix = "//detlint:hotpath"

// hotpathAnalyzer enforces the annotation: an annotated function must
// not contain
//
//   - function literals (every closure is a heap allocation once it
//     captures, and these functions run millions of times per sweep);
//   - map literals, make(map/chan), or new(T);
//   - make([]T, ...) or slice/map composite literals (fresh backing
//     arrays), or &T{...} (escapes via the pointer in almost every use
//     this repo has);
//   - append to a slice the function itself freshly allocated — growing
//     a new backing array per call. Appending to a parameter, a struct
//     field, a package variable, or a local re-sliced from one of those
//     (buf := x.buf[:0]) is the reuse idiom the hot paths are built on
//     and stays legal.
//
// Value-typed struct composites (Handle{...}, Message{...}) stay legal:
// they live on the stack. The rule is an approximation of escape
// analysis, deliberately conservative in what it bans — a justified
// allow directive marks the exceptions, as everywhere else in detlint.
var hotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating code shapes in //detlint:hotpath-annotated functions",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHotpathAnnotated(fd) {
					continue
				}
				p.checkHotpathBody(fd)
				p.checkHotpathAppends(fd)
			}
		}
	},
}

// isHotpathAnnotated reports whether the function carries the hotpath
// contract annotation in its doc comment.
func isHotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathPrefix) {
			return true
		}
	}
	return false
}

// checkHotpathBody reports every allocating shape in one annotated
// function.
func (p *Pass) checkHotpathBody(fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.report(n.Pos(), "hotpath",
				"closure in hotpath "+name+" allocates; pre-bind it once outside the hot loop")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.report(n.Pos(), "hotpath",
						"&composite literal in hotpath "+name+" escapes to the heap; reuse a pooled object")
				}
			}
		case *ast.CompositeLit:
			t := p.typeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.report(n.Pos(), "hotpath",
					"map literal in hotpath "+name+" allocates; hoist the map out of the hot path")
			case *types.Slice:
				p.report(n.Pos(), "hotpath",
					"slice literal in hotpath "+name+" allocates a backing array; reuse a buffer")
			}
		case *ast.CallExpr:
			p.checkHotpathCall(name, n)
		}
		return true
	})
}

// checkHotpathCall flags make/new allocations and appends to
// freshly-allocated slices.
func (p *Pass) checkHotpathCall(name string, call *ast.CallExpr) {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	if _, builtin := p.objectOf(fn).(*types.Builtin); !builtin {
		return
	}
	switch fn.Name {
	case "make":
		what := "make"
		if len(call.Args) > 0 {
			if t := p.typeOf(call.Args[0]); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					what = "make(map)"
				case *types.Slice:
					what = "make([])"
				case *types.Chan:
					what = "make(chan)"
				}
			}
		}
		p.report(call.Pos(), "hotpath",
			what+" in hotpath "+name+" allocates; hoist the allocation out of the hot path")
	case "new":
		p.report(call.Pos(), "hotpath",
			"new(T) in hotpath "+name+" allocates; reuse a pooled object")
	}
}

// checkHotpathAppends flags appends that grow storage the function
// itself freshly allocated.
func (p *Pass) checkHotpathAppends(fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		obj, site := p.appendTarget(as)
		if obj == nil {
			return true
		}
		if p.isFreshLocalSlice(fd, obj) {
			p.report(site.Pos(), "hotpath",
				"append to freshly-allocated slice "+obj.Name()+" in hotpath "+name+
					" grows a new backing array per call; append to a reused buffer (field, parameter, or buf[:0])")
		}
		return true
	})
}

// isFreshLocalSlice reports whether obj is a slice variable declared
// inside fd whose initializer freshly allocates (make, a literal, or no
// initializer at all). A local initialized by re-slicing something that
// already exists — buf := e.buf[:0] — is the reuse idiom and not fresh;
// so is one initialized from a call or a parameter.
func (p *Pass) isFreshLocalSlice(fd *ast.FuncDecl, obj types.Object) bool {
	if obj == nil || obj.Pos() < fd.Body.Pos() || obj.Pos() > fd.Body.End() {
		return false // parameter, field, or package-level: reused storage
	}
	fresh := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || p.objectOf(id) != obj || i >= len(n.Rhs) {
					continue
				}
				fresh = freshAllocExpr(n.Rhs[i])
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nm := range vs.Names {
					if p.objectOf(nm) != obj {
						continue
					}
					if len(vs.Values) == 0 {
						fresh = true // var x []T — nil slice, first append allocates
					} else if i < len(vs.Values) {
						fresh = freshAllocExpr(vs.Values[i])
					}
				}
			}
		}
		return true
	})
	return fresh
}

// freshAllocExpr reports whether an initializer expression freshly
// allocates slice storage.
func freshAllocExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
			return true
		}
		return false // x := f(): storage owned elsewhere
	case *ast.SliceExpr:
		return false // x := buf[:0]: the reuse idiom
	default:
		return false
	}
}
