package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almost(got, tt.want) {
				t.Fatalf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 2.1380899352993947) {
		t.Fatalf("Stddev = %v", got)
	}
	if Stddev(nil) != 0 || Stddev([]float64{5}) != 0 {
		t.Fatal("Stddev of <2 samples should be 0")
	}
}

func TestRelStddev(t *testing.T) {
	xs := []float64{90, 100, 110}
	want := Stddev(xs) / 100
	if got := RelStddev(xs); !almost(got, want) {
		t.Fatalf("RelStddev = %v, want %v", got, want)
	}
	if RelStddev([]float64{0, 0}) != 0 {
		t.Fatal("RelStddev with zero mean should be 0")
	}
}

func TestPercentChange(t *testing.T) {
	tests := []struct {
		from, to, want float64
	}{
		{100, 125.7, 25.7},
		{100, 100, 0},
		{200, 100, -50},
		{0, 5, 0}, // guarded division
	}
	for _, tt := range tests {
		if got := PercentChange(tt.from, tt.to); !almost(got, tt.want) {
			t.Fatalf("PercentChange(%v,%v) = %v, want %v", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); !almost(got, 2) {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almost(got, 2.5) {
		t.Fatalf("even median = %v, want 2.5", got)
	}
	if Median(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated its input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{5, -2, 9, 0}
	if got := Min(xs); got != -2 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 9 {
		t.Fatalf("Max = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max should be 0")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	_, err := Summarize(nil)
	if !errors.Is(err, ErrEmpty) {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || !almost(s.Mean, 2.5) || !almost(s.Median, 2.5) ||
		s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestDurationConversions(t *testing.T) {
	ds := []time.Duration{time.Second, 500 * time.Millisecond}
	if got := Durations(ds); !almost(got[0], 1) || !almost(got[1], 0.5) {
		t.Fatalf("Durations = %v", got)
	}
	us := []time.Duration{3 * time.Microsecond}
	if got := DurationsMicros(us); !almost(got[0], 3) {
		t.Fatalf("DurationsMicros = %v", got)
	}
	ns := []time.Duration{26 * time.Nanosecond}
	if got := DurationsNanos(ns); !almost(got[0], 26) {
		t.Fatalf("DurationsNanos = %v", got)
	}
}

// Property: mean lies within [min, max], stddev is non-negative, and
// shifting all samples by a constant shifts the mean by that constant while
// leaving the stddev unchanged.
func TestMeanStddevProperties(t *testing.T) {
	f := func(raw []int16, shift int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			shifted[i] = float64(v) + float64(shift)
		}
		m, sd := Mean(xs), Stddev(xs)
		if sd < 0 {
			return false
		}
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			return false
		}
		if math.Abs(Mean(shifted)-(m+float64(shift))) > 1e-6 {
			return false
		}
		return math.Abs(Stddev(shifted)-sd) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
