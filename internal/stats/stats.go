// Package stats provides the small set of descriptive statistics the
// paper's evaluation reports: means, standard deviations, relative standard
// deviations, and percentage deltas between configurations.
package stats

import (
	"errors"
	"math"
	"sort"
	"time"
)

// ErrEmpty is returned by summaries of empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation (n-1 denominator) of xs.
// Samples with fewer than two elements have zero deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// RelStddev returns the standard deviation as a fraction of the mean
// (the "relative standard deviation" bars in the paper's figures).
// It returns 0 when the mean is zero.
func RelStddev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Stddev(xs) / m
}

// PercentChange returns 100*(to-from)/from: the "+25.7%" style labels used
// throughout the paper's figures. It returns 0 when from is zero.
func PercentChange(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return 100 * (to - from) / from
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the statistics the experiment harness reports per series.
type Summary struct {
	N         int
	Mean      float64
	Stddev    float64
	RelStddev float64
	Min       float64
	Max       float64
	Median    float64
}

// Summarize computes a Summary over xs. It returns ErrEmpty for an empty
// sample so callers cannot silently report a zero-valued series.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	return Summary{
		N:         len(xs),
		Mean:      Mean(xs),
		Stddev:    Stddev(xs),
		RelStddev: RelStddev(xs),
		Min:       Min(xs),
		Max:       Max(xs),
		Median:    Median(xs),
	}, nil
}

// Durations converts a slice of time.Duration to float64 seconds, the unit
// the migration and compile-time figures report.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// DurationsMicros converts durations to float64 microseconds, the unit the
// lmbench process table and the detection figures report.
func DurationsMicros(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d.Nanoseconds()) / 1e3
	}
	return out
}

// DurationsNanos converts durations to float64 nanoseconds, the unit the
// lmbench arithmetic table reports.
func DurationsNanos(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d.Nanoseconds())
	}
	return out
}
