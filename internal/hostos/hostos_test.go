package hostos

import (
	"errors"
	"testing"

	"cloudskulk/internal/sim"
)

func newSys(t *testing.T) *System {
	t.Helper()
	return New(sim.NewEngine(1), "cloud-host-1")
}

func TestSpawnAssignsFreshPIDs(t *testing.T) {
	s := newSys(t)
	a := s.Spawn("root", "qemu-system-x86_64 -m 1024 guest0.img")
	b := s.Spawn("root", "sshd")
	if a.PID == b.PID {
		t.Fatal("duplicate PIDs")
	}
	if a.PID <= 1000 {
		t.Fatalf("pid = %d, want > 1000", a.PID)
	}
	if s.NumProcesses() != 2 {
		t.Fatalf("nprocs = %d", s.NumProcesses())
	}
	if s.Hostname() != "cloud-host-1" {
		t.Fatalf("hostname = %q", s.Hostname())
	}
}

func TestKill(t *testing.T) {
	s := newSys(t)
	p := s.Spawn("root", "qemu")
	if err := s.Kill(p.PID); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Process(p.PID); ok {
		t.Fatal("killed process still visible")
	}
	if err := s.Kill(p.PID); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("double kill err = %v", err)
	}
}

func TestPSSortedByPID(t *testing.T) {
	s := newSys(t)
	for i := 0; i < 10; i++ {
		s.Spawn("root", "proc")
	}
	ps := s.PS()
	if len(ps) != 10 {
		t.Fatalf("ps len = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].PID <= ps[i-1].PID {
			t.Fatal("ps not sorted by PID")
		}
	}
}

func TestFindByCommand(t *testing.T) {
	s := newSys(t)
	s.Spawn("root", "qemu-system-x86_64 -m 1024 -hda guest0.img")
	s.Spawn("root", "sshd -D")
	s.Spawn("alice", "qemu-system-x86_64 -m 2048 -hda web.img")
	got := s.FindByCommand("qemu-system")
	if len(got) != 2 {
		t.Fatalf("found %d, want 2", len(got))
	}
	if len(s.FindByCommand("xen")) != 0 {
		t.Fatal("false positive")
	}
}

func TestSwapPID(t *testing.T) {
	s := newSys(t)
	victim := s.Spawn("root", "qemu victim")
	ritm := s.Spawn("root", "qemu ritm")
	origPID := victim.PID
	// The attack sequence: kill the original, take its PID.
	if err := s.Kill(victim.PID); err != nil {
		t.Fatal(err)
	}
	if err := s.SwapPID(ritm.PID, origPID); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Process(origPID)
	if !ok {
		t.Fatal("swapped process missing")
	}
	if got.Command != "qemu ritm" {
		t.Fatalf("command = %q", got.Command)
	}
	if got.PID != origPID {
		t.Fatalf("struct PID = %d, want %d", got.PID, origPID)
	}
	if _, ok := s.Process(ritm.PID); ok && ritm.PID != origPID {
		t.Fatal("old PID still mapped")
	}
}

func TestSwapPIDErrors(t *testing.T) {
	s := newSys(t)
	a := s.Spawn("root", "a")
	b := s.Spawn("root", "b")
	if err := s.SwapPID(a.PID, b.PID); !errors.Is(err, ErrPIDInUse) {
		t.Fatalf("swap onto live pid err = %v", err)
	}
	if err := s.SwapPID(99999, 1); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("swap from dead pid err = %v", err)
	}
	if err := s.SwapPID(a.PID, a.PID); err != nil {
		t.Fatalf("self swap err = %v", err)
	}
}

func TestHistory(t *testing.T) {
	s := newSys(t)
	s.AppendHistory("qemu-system-x86_64 -m 1024 -hda guest0.img -netdev user,hostfwd=tcp::2222-:22")
	s.AppendHistory("ls -la")
	h := s.History()
	if len(h) != 2 {
		t.Fatalf("history len = %d", len(h))
	}
	// Mutating the copy must not change the original.
	h[0] = "tampered"
	if s.History()[0] == "tampered" {
		t.Fatal("History returned a live reference")
	}
	m := s.HistoryMatching("qemu")
	if len(m) != 1 {
		t.Fatalf("matching = %v", m)
	}
	s.ClearHistory()
	if len(s.History()) != 0 {
		t.Fatal("ClearHistory failed")
	}
}

func TestRemoveHistoryMatching(t *testing.T) {
	s := newSys(t)
	s.AppendHistory("qemu-system -name guest0")
	s.AppendHistory("qemu-system -name guestX")
	s.AppendHistory("ls")
	s.AppendHistory("qemu-system -name guestX -incoming tcp")
	if got := s.RemoveHistoryMatching("guestX"); got != 2 {
		t.Fatalf("removed = %d", got)
	}
	h := s.History()
	if len(h) != 2 || h[0] != "qemu-system -name guest0" || h[1] != "ls" {
		t.Fatalf("history = %v", h)
	}
	if got := s.RemoveHistoryMatching("guestX"); got != 0 {
		t.Fatalf("second removal = %d", got)
	}
}

func TestAnnotationsInvisibleInCommand(t *testing.T) {
	s := newSys(t)
	p := s.Spawn("root", "qemu guest")
	p.Annotations["vm"] = "guest0"
	if got, _ := s.Process(p.PID); got.Annotations["vm"] != "guest0" {
		t.Fatal("annotation lost")
	}
}
