// Package hostos models the slice of a host operating system the CloudSkulk
// attack interacts with: a process table with PIDs and command lines (the
// `ps -ef` recon surface), shell history (the `history` recon surface), and
// the PID manipulation the paper describes the attacker performing after
// migration ("changing the PID of GuestX to the original PID used by
// Guest0 is a trivial task").
package hostos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudskulk/internal/sim"
)

// Errors callers match on.
var (
	ErrNoSuchProcess = errors.New("hostos: no such process")
	ErrPIDInUse      = errors.New("hostos: pid already in use")
)

// Process is one entry in the process table.
type Process struct {
	PID     int
	Owner   string
	Command string
	Started time.Duration
	// Annotations carry simulator-level metadata (e.g. which qemu.VM a
	// QEMU process backs). They are invisible to `ps` — a defender only
	// sees PID, owner, and command line, which is exactly why the PID
	// swap defeats PID-based monitoring.
	Annotations map[string]string
}

// System is one host machine's OS view.
type System struct {
	eng      *sim.Engine
	hostname string
	nextPID  int
	procs    map[int]*Process
	history  []string
}

// New returns a host OS with an empty process table. PIDs start above the
// init range to look plausible in traces.
func New(eng *sim.Engine, hostname string) *System {
	return &System{
		eng:      eng,
		hostname: hostname,
		nextPID:  1000,
		procs:    make(map[int]*Process),
	}
}

// Hostname returns the host's name.
func (s *System) Hostname() string { return s.hostname }

// Spawn creates a process with a fresh PID and returns it.
func (s *System) Spawn(owner, command string) *Process {
	s.nextPID++
	p := &Process{
		PID:         s.nextPID,
		Owner:       owner,
		Command:     command,
		Started:     s.eng.Now(),
		Annotations: make(map[string]string),
	}
	s.procs[p.PID] = p
	return p
}

// Kill removes a process from the table.
func (s *System) Kill(pid int) error {
	if _, ok := s.procs[pid]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchProcess, pid)
	}
	delete(s.procs, pid)
	return nil
}

// Process looks up a PID.
func (s *System) Process(pid int) (*Process, bool) {
	p, ok := s.procs[pid]
	return p, ok
}

// NumProcesses returns the process-table size.
func (s *System) NumProcesses() int { return len(s.procs) }

// PS returns the process table sorted by PID — the `ps -ef` view.
func (s *System) PS() []*Process {
	out := make([]*Process, 0, len(s.procs))
	for _, p := range s.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// FindByCommand returns processes whose command line contains substr,
// sorted by PID — how the attacker locates the target QEMU process.
func (s *System) FindByCommand(substr string) []*Process {
	var out []*Process
	for _, p := range s.PS() {
		if strings.Contains(p.Command, substr) {
			out = append(out, p)
		}
	}
	return out
}

// SwapPID re-labels process fromPID as toPID. toPID must be free — which it
// is right after the original VM is killed, the exact window the attacker
// uses. The process keeps its start time and command line.
func (s *System) SwapPID(fromPID, toPID int) error {
	p, ok := s.procs[fromPID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchProcess, fromPID)
	}
	if fromPID == toPID {
		return nil
	}
	if _, taken := s.procs[toPID]; taken {
		return fmt.Errorf("%w: %d", ErrPIDInUse, toPID)
	}
	delete(s.procs, fromPID)
	p.PID = toPID
	s.procs[toPID] = p
	return nil
}

// AppendHistory records a shell command in the host's history file.
func (s *System) AppendHistory(cmd string) {
	s.history = append(s.history, cmd)
}

// History returns a copy of the shell history, oldest first.
func (s *System) History() []string {
	return append([]string(nil), s.history...)
}

// HistoryMatching returns history lines containing substr, oldest first —
// the attacker's `history | grep qemu` recon step.
func (s *System) HistoryMatching(substr string) []string {
	var out []string
	for _, h := range s.history {
		if strings.Contains(h, substr) {
			out = append(out, h)
		}
	}
	return out
}

// ClearHistory truncates the history (defensive hygiene; also what a
// careful attacker does after installing).
func (s *System) ClearHistory() {
	s.history = nil
}

// RemoveHistoryMatching deletes history lines containing substr and
// returns how many were removed — the attacker's selective hygiene
// (wiping the whole history would itself be suspicious).
func (s *System) RemoveHistoryMatching(substr string) int {
	kept := s.history[:0]
	removed := 0
	for _, h := range s.history {
		if strings.Contains(h, substr) {
			removed++
			continue
		}
		kept = append(kept, h)
	}
	s.history = kept
	return removed
}
