package qemu_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"cloudskulk/internal/fleet"
	"cloudskulk/internal/qemu"
)

// migrateView is the slice of migration state both protocols must agree
// on: status string and transferred RAM.
type migrateView struct {
	Status        string
	TransferredMB string
}

// hmpMigrateView probes `info migrate` over the human monitor protocol.
// ok is false while no migration has started yet.
func hmpMigrateView(t *testing.T, vm *qemu.VM) (migrateView, bool) {
	t.Helper()
	out, err := vm.Monitor().Execute("info migrate")
	if err != nil {
		t.Fatalf("info migrate: %v", err)
	}
	var v migrateView
	for _, line := range strings.Split(out, "\n") {
		if s, ok := strings.CutPrefix(line, "Migration status: "); ok {
			v.Status = s
		}
		if s, ok := strings.CutPrefix(line, "transferred ram: "); ok {
			v.TransferredMB = strings.TrimSuffix(s, " MB")
		}
	}
	return v, v.Status != ""
}

// qmpMigrateView probes `query-migrate` over QMP.
func qmpMigrateView(t *testing.T, vm *qemu.VM) migrateView {
	t.Helper()
	q := vm.QMP()
	if resp := q.Execute(qemu.QMPCommand{Execute: "qmp_capabilities"}); resp.Error != nil {
		t.Fatalf("qmp negotiation: %+v", resp.Error)
	}
	resp := q.Execute(qemu.QMPCommand{Execute: "query-migrate"})
	if resp.Error != nil {
		t.Fatalf("query-migrate: %+v", resp.Error)
	}
	var ret struct {
		Status string `json:"status"`
		RAM    struct {
			Transferred int64 `json:"transferred"`
		} `json:"ram"`
	}
	if err := json.Unmarshal(resp.Return, &ret); err != nil {
		t.Fatal(err)
	}
	return migrateView{
		Status:        ret.Status,
		TransferredMB: fmt.Sprintf("%.0f", float64(ret.RAM.Transferred)/(1<<20)),
	}
}

// TestHMPQMPMigrateParity: for an in-flight cross-host migration, the HMP
// `info migrate` and QMP `query-migrate` views of the source VM report the
// same status and transferred-bytes figure — both render the one
// MigrationInfo snapshot, never divergent copies.
func TestHMPQMPMigrateParity(t *testing.T) {
	f, err := fleet.New(3, fleet.WithHosts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h00", "web", 256); err != nil {
		t.Fatal(err)
	}
	info, err := f.Lookup("web")
	if err != nil {
		t.Fatal(err)
	}
	src := info.Outer

	// The probe rides the shared virtual clock: it fires inside
	// MigrateVM's event rounds. Migration start isn't instant (the
	// destination clone boots first), so keep probing until the active
	// phase is caught, then track it second by second.
	probes := 0
	var probe func()
	probe = func() {
		hmp, started := hmpMigrateView(t, src)
		if started {
			qmp := qmpMigrateView(t, src)
			if hmp.Status != qmp.Status || hmp.TransferredMB != qmp.TransferredMB {
				t.Errorf("protocols diverge mid-flight: HMP %+v, QMP %+v", hmp, qmp)
			}
			if hmp.Status == "active" {
				probes++
			}
		}
		if !started || hmp.Status == "active" {
			f.Engine().Schedule(time.Second, "parity.probe", probe)
		}
	}
	f.Engine().Schedule(time.Second, "parity.probe", probe)

	if _, err := f.MigrateVM("web", "h01"); err != nil {
		t.Fatal(err)
	}
	if probes == 0 {
		t.Fatal("no probe observed an active migration")
	}

	// After completion the retired source still answers both protocols
	// with the final state.
	hmp, ok := hmpMigrateView(t, src)
	qmp := qmpMigrateView(t, src)
	if !ok || hmp.Status != "completed" || qmp.Status != "completed" {
		t.Fatalf("final status: HMP %+v, QMP %+v", hmp, qmp)
	}
	if hmp.TransferredMB != qmp.TransferredMB {
		t.Fatalf("final transferred diverges: HMP %+v, QMP %+v", hmp, qmp)
	}
}
