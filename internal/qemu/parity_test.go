package qemu_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/fleet"
	"cloudskulk/internal/qemu"
)

// migrateView is the slice of migration state both protocols must agree
// on: status string and transferred RAM.
type migrateView struct {
	Status        string
	TransferredMB string
}

// hmpMigrateView probes `info migrate` over the human monitor protocol.
// ok is false while no migration has started yet.
func hmpMigrateView(t *testing.T, vm *qemu.VM) (migrateView, bool) {
	t.Helper()
	out, err := vm.Monitor().Execute("info migrate")
	if err != nil {
		t.Fatalf("info migrate: %v", err)
	}
	var v migrateView
	for _, line := range strings.Split(out, "\n") {
		if s, ok := strings.CutPrefix(line, "Migration status: "); ok {
			v.Status = s
		}
		if s, ok := strings.CutPrefix(line, "transferred ram: "); ok {
			v.TransferredMB = strings.TrimSuffix(s, " MB")
		}
	}
	return v, v.Status != ""
}

// qmpMigrateView probes `query-migrate` over QMP.
func qmpMigrateView(t *testing.T, vm *qemu.VM) migrateView {
	t.Helper()
	q := vm.QMP()
	if resp := q.Execute(qemu.QMPCommand{Execute: "qmp_capabilities"}); resp.Error != nil {
		t.Fatalf("qmp negotiation: %+v", resp.Error)
	}
	resp := q.Execute(qemu.QMPCommand{Execute: "query-migrate"})
	if resp.Error != nil {
		t.Fatalf("query-migrate: %+v", resp.Error)
	}
	var ret struct {
		Status string `json:"status"`
		RAM    struct {
			Transferred int64 `json:"transferred"`
		} `json:"ram"`
	}
	if err := json.Unmarshal(resp.Return, &ret); err != nil {
		t.Fatal(err)
	}
	return migrateView{
		Status:        ret.Status,
		TransferredMB: fmt.Sprintf("%.0f", float64(ret.RAM.Transferred)/(1<<20)),
	}
}

// TestHMPQMPMigrateParity: for an in-flight cross-host migration, the HMP
// `info migrate` and QMP `query-migrate` views of the source VM report the
// same status and transferred-bytes figure — both render the one
// MigrationInfo snapshot, never divergent copies.
func TestHMPQMPMigrateParity(t *testing.T) {
	f, err := fleet.New(3, fleet.WithHosts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h00", "web", 256); err != nil {
		t.Fatal(err)
	}
	info, err := f.Lookup("web")
	if err != nil {
		t.Fatal(err)
	}
	src := info.Outer

	// The probe rides the shared virtual clock: it fires inside
	// MigrateVM's event rounds. Migration start isn't instant (the
	// destination clone boots first), so keep probing until the active
	// phase is caught, then track it second by second.
	probes := 0
	var probe func()
	probe = func() {
		hmp, started := hmpMigrateView(t, src)
		if started {
			qmp := qmpMigrateView(t, src)
			if hmp.Status != qmp.Status || hmp.TransferredMB != qmp.TransferredMB {
				t.Errorf("protocols diverge mid-flight: HMP %+v, QMP %+v", hmp, qmp)
			}
			if hmp.Status == "active" {
				probes++
			}
		}
		if !started || hmp.Status == "active" {
			f.Engine().Schedule(time.Second, "parity.probe", probe)
		}
	}
	f.Engine().Schedule(time.Second, "parity.probe", probe)

	if _, err := f.MigrateVM("web", "h01"); err != nil {
		t.Fatal(err)
	}
	if probes == 0 {
		t.Fatal("no probe observed an active migration")
	}

	// After completion the retired source still answers both protocols
	// with the final state.
	hmp, ok := hmpMigrateView(t, src)
	qmp := qmpMigrateView(t, src)
	if !ok || hmp.Status != "completed" || qmp.Status != "completed" {
		t.Fatalf("final status: HMP %+v, QMP %+v", hmp, qmp)
	}
	if hmp.TransferredMB != qmp.TransferredMB {
		t.Fatalf("final transferred diverges: HMP %+v, QMP %+v", hmp, qmp)
	}
}

// TestHMPQMPStatsParity: `info stats` and `query-stats` are two renderings
// of one semantic handler over the VM's telemetry registry. After real
// activity (guest exits, KSM scanning, a cross-host migration) both
// protocols must report the same metric names and values, and the cpu-exit,
// ksm, and migration families must all be visible through the monitor.
func TestHMPQMPStatsParity(t *testing.T) {
	f, err := fleet.New(7, fleet.WithHosts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h00", "web", 256); err != nil {
		t.Fatal(err)
	}
	info, err := f.Lookup("web")
	if err != nil {
		t.Fatal(err)
	}
	// Guest activity: I/O-heavy work generates VM exits at L1.
	info.Inner.VCPU().Exec(cpu.IOOp("disk write", cpu.Micros(12), 1), 500)
	// Host activity: a KSM scan window.
	host, err := f.Host("h00")
	if err != nil {
		t.Fatal(err)
	}
	host.KSM().Start()
	f.Engine().RunFor(200 * time.Millisecond)
	host.KSM().Stop()
	// Fleet activity: one completed migration.
	if _, err := f.MigrateVM("web", "h01"); err != nil {
		t.Fatal(err)
	}
	info, err = f.Lookup("web")
	if err != nil {
		t.Fatal(err)
	}
	vm := info.Outer

	// HMP view: "name: value" / "name: count=N sum=S" lines.
	hmpOut, err := vm.Monitor().Execute("info stats")
	if err != nil {
		t.Fatalf("info stats: %v", err)
	}
	hmp := map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(hmpOut, "\n"), "\n") {
		name, val, ok := strings.Cut(line, ": ")
		if !ok {
			t.Fatalf("unparseable info stats line %q", line)
		}
		hmp[name] = val
	}

	// QMP view.
	q := vm.QMP()
	if resp := q.Execute(qemu.QMPCommand{Execute: "qmp_capabilities"}); resp.Error != nil {
		t.Fatalf("qmp negotiation: %+v", resp.Error)
	}
	resp := q.Execute(qemu.QMPCommand{Execute: "query-stats"})
	if resp.Error != nil {
		t.Fatalf("query-stats: %+v", resp.Error)
	}
	var entries []struct {
		Name  string `json:"name"`
		Type  string `json:"type"`
		Value int64  `json:"value"`
		Count uint64 `json:"count"`
		Sum   int64  `json:"sum"`
	}
	if err := json.Unmarshal(resp.Return, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(hmp) {
		t.Fatalf("metric count diverges: HMP %d, QMP %d", len(hmp), len(entries))
	}
	for _, e := range entries {
		want := fmt.Sprintf("%d", e.Value)
		if e.Type == "histogram" {
			want = fmt.Sprintf("count=%d sum=%d", e.Count, e.Sum)
		}
		if got, ok := hmp[e.Name]; !ok || got != want {
			t.Errorf("metric %q: HMP %q, QMP %q", e.Name, hmp[e.Name], want)
		}
	}

	// The three families the detection story observes must be present.
	for _, family := range []string{
		`cpu_exits_total{class="io",level="L1"}`,
		"ksm_pages_scanned_total",
		"migrate_completed_total",
	} {
		if _, ok := hmp[family]; !ok {
			t.Errorf("family %q missing from monitor stats:\n%s", family, hmpOut)
		}
	}
}
