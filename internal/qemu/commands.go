package qemu

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"cloudskulk/internal/telemetry"
)

// This file is the single source of truth for monitor command semantics.
// Both consoles — the human monitor (HMP) and the machine protocol (QMP) —
// dispatch through the same registry, so `info`/`migrate`/`stop` behaviour
// cannot drift between protocols: a command's effect lives in one `run`
// function, and each protocol contributes only a thin argument parser and
// a result renderer.

// command is one monitor command: shared semantics plus per-protocol
// adapters.
type command struct {
	// hmp is the HMP spelling ("migrate", "info status"); "" = QMP-only.
	hmp string
	// aliases are extra HMP spellings dispatching to the same command.
	aliases []string
	// qmp is the QMP execute name; "" = HMP-only.
	qmp string
	// help is the HMP help line; "" omits the command from `help`.
	help string

	// parseHMP maps the HMP argument fields (everything after the verb)
	// to the handler's argument value. nil = the command ignores
	// arguments. Errors should wrap ErrUnknownCommand.
	parseHMP func(fields []string) (any, error)
	// parseQMP maps the QMP arguments payload likewise. nil = ignore.
	parseQMP func(raw json.RawMessage) (any, error)

	// run executes the command against the monitor's VM. The *Monitor is
	// the VM's singleton console state (migration speed cap), shared by
	// both protocols.
	run func(m *Monitor, args any) (any, error)

	// renderHMP converts run's result to console text; nil prints nothing.
	renderHMP func(res any) string
	// renderQMP converts run's result to the QMP return payload; nil
	// returns an empty object, QMP's "success, nothing to report".
	renderQMP func(res any) any
}

// vmStatus is the shared result of the status command.
type vmStatus struct {
	State   State
	Running bool
}

// driveInfo is the shared result of the block-device commands.
type driveInfo struct {
	Device string
	File   string
	Format string
	SizeMB int64
	Stats  BlockStats
}

func collectDrives(vm *VM) []driveInfo {
	cfg := vm.Config()
	out := make([]driveInfo, 0, len(cfg.Drives))
	for i, d := range cfg.Drives {
		st, _ := vm.BlockStatsFor(i)
		out = append(out, driveInfo{
			Device: fmt.Sprintf("drive%d", i),
			File:   d.File,
			Format: d.Format,
			SizeMB: d.SizeMB,
			Stats:  st,
		})
	}
	return out
}

// oneField insists on exactly one HMP argument.
func oneField(name string, usage string) func([]string) (any, error) {
	return func(fields []string) (any, error) {
		if len(fields) != 1 {
			return nil, fmt.Errorf("%w: %s requires %s", ErrUnknownCommand, name, usage)
		}
		return fields[0], nil
	}
}

// registry lists every monitor command in `help` order.
var registry = []*command{
	{
		hmp: "info status", qmp: "query-status",
		help: "info status -- show VM run state",
		run: func(m *Monitor, _ any) (any, error) {
			return vmStatus{State: m.vm.State(), Running: m.vm.Running()}, nil
		},
		renderHMP: func(res any) string {
			return fmt.Sprintf("VM status: %s\n", res.(vmStatus).State)
		},
		renderQMP: func(res any) any {
			st := res.(vmStatus)
			return map[string]any{"status": st.State.String(), "running": st.Running}
		},
	},
	{
		hmp: "info name", qmp: "query-name",
		help: "info name -- show VM name",
		run: func(m *Monitor, _ any) (any, error) {
			return m.vm.Name(), nil
		},
		renderHMP: func(res any) string { return res.(string) + "\n" },
		renderQMP: func(res any) any { return map[string]any{"name": res.(string)} },
	},
	{
		hmp:  "info qtree",
		help: "info qtree -- show device tree",
		run: func(m *Monitor, _ any) (any, error) {
			return renderQtree(m.vm.Config()), nil
		},
		renderHMP: func(res any) string { return res.(string) },
	},
	{
		hmp:  "info mtree",
		help: "info mtree -- show memory map",
		run: func(m *Monitor, _ any) (any, error) {
			return renderMtree(m.vm.Config()), nil
		},
		renderHMP: func(res any) string { return res.(string) },
	},
	{
		hmp:  "info mem",
		help: "info mem -- show memory summary",
		run: func(m *Monitor, _ any) (any, error) {
			return renderMem(m.vm), nil
		},
		renderHMP: func(res any) string { return res.(string) },
	},
	{
		hmp: "info blockstats", qmp: "query-blockstats",
		help: "info blockstats -- show block device statistics",
		run: func(m *Monitor, _ any) (any, error) {
			return collectDrives(m.vm), nil
		},
		renderHMP: func(res any) string {
			var b strings.Builder
			for _, d := range res.([]driveInfo) {
				fmt.Fprintf(&b,
					"%s: rd_bytes=%d wr_bytes=%d rd_operations=%d wr_operations=%d\n",
					d.Device, d.Stats.RdBytes, d.Stats.WrBytes, d.Stats.RdOps, d.Stats.WrOps)
			}
			return b.String()
		},
		renderQMP: func(res any) any {
			type stats struct {
				Device string `json:"device"`
				RdB    uint64 `json:"rd_bytes"`
				WrB    uint64 `json:"wr_bytes"`
				RdOps  uint64 `json:"rd_operations"`
				WrOps  uint64 `json:"wr_operations"`
			}
			drives := res.([]driveInfo)
			out := make([]stats, 0, len(drives))
			for _, d := range drives {
				out = append(out, stats{
					Device: d.Device,
					RdB:    d.Stats.RdBytes, WrB: d.Stats.WrBytes,
					RdOps: d.Stats.RdOps, WrOps: d.Stats.WrOps,
				})
			}
			return out
		},
	},
	{
		qmp: "query-block",
		run: func(m *Monitor, _ any) (any, error) {
			return collectDrives(m.vm), nil
		},
		renderQMP: func(res any) any {
			type blockInfo struct {
				Device string `json:"device"`
				File   string `json:"file"`
				Format string `json:"driver"`
				SizeMB int64  `json:"size_mb"`
			}
			drives := res.([]driveInfo)
			out := make([]blockInfo, 0, len(drives))
			for _, d := range drives {
				out = append(out, blockInfo{
					Device: d.Device, File: d.File, Format: d.Format, SizeMB: d.SizeMB,
				})
			}
			return out
		},
	},
	{
		hmp:  "info network",
		help: "info network -- show network devices and host forwarding",
		run: func(m *Monitor, _ any) (any, error) {
			return renderNetwork(m.vm.Config()), nil
		},
		renderHMP: func(res any) string { return res.(string) },
	},
	{
		hmp: "info migrate", qmp: "query-migrate",
		help: "info migrate -- show migration status",
		run: func(m *Monitor, _ any) (any, error) {
			return m.vm.MigrationStatus(), nil
		},
		renderHMP: func(res any) string { return renderMigrate(res.(MigrationInfo)) },
		renderQMP: func(res any) any {
			mi := res.(MigrationInfo)
			status := mi.Status
			if status == "" {
				status = "none"
			}
			return map[string]any{
				"status": status,
				"ram": map[string]any{
					"transferred": int64(mi.TransferredMB * (1 << 20)),
					"remaining":   int64(mi.RemainingMB * (1 << 20)),
					"total":       int64(mi.TotalMB * (1 << 20)),
				},
				"downtime":   mi.Downtime.Milliseconds(),
				"total-time": mi.TotalTime.Milliseconds(),
			}
		},
	},
	{
		hmp: "info stats", qmp: "query-stats",
		help: "info stats -- show telemetry metrics (counters, gauges, histograms)",
		run: func(m *Monitor, _ any) (any, error) {
			// A VM with no registry attached reports no statistics,
			// mirroring QEMU's behaviour when no stats provider exists.
			return m.vm.Telemetry().Snapshot(), nil
		},
		renderHMP: func(res any) string {
			snaps := res.([]telemetry.MetricSnapshot)
			if len(snaps) == 0 {
				return "No statistics available.\n"
			}
			var b strings.Builder
			for _, s := range snaps {
				switch s.Type {
				case "histogram":
					fmt.Fprintf(&b, "%s: count=%d sum=%d\n", s.Name, s.Count, s.Sum)
				default:
					fmt.Fprintf(&b, "%s: %d\n", s.Name, s.Value)
				}
			}
			return b.String()
		},
		renderQMP: func(res any) any {
			snaps := res.([]telemetry.MetricSnapshot)
			out := make([]any, 0, len(snaps))
			for _, s := range snaps {
				entry := map[string]any{"name": s.Name, "type": s.Type}
				if s.Type == "histogram" {
					entry["count"] = s.Count
					entry["sum"] = s.Sum
					buckets := make([]any, 0, len(s.Buckets))
					for _, bk := range s.Buckets {
						le := any(bk.UpperBound)
						if bk.Inf {
							le = "+Inf"
						}
						buckets = append(buckets, map[string]any{"le": le, "count": bk.Count})
					}
					entry["buckets"] = buckets
				} else {
					entry["value"] = s.Value
				}
				out = append(out, entry)
			}
			return out
		},
	},
	{
		qmp: "query-memory-size-summary",
		run: func(m *Monitor, _ any) (any, error) {
			return m.vm.Config().MemoryMB << 20, nil
		},
		renderQMP: func(res any) any {
			return map[string]any{"base-memory": res.(int64)}
		},
	},
	{
		hmp:  "info snapshots",
		help: "info snapshots -- list checkpoints",
		run: func(m *Monitor, _ any) (any, error) {
			return m.vm.Snapshots(), nil
		},
		renderHMP: func(res any) string {
			snaps := res.([]*Snapshot)
			if len(snaps) == 0 {
				return "There is no snapshot available.\n"
			}
			var b strings.Builder
			b.WriteString("ID  TAG          VM CLOCK\n")
			for i, s := range snaps {
				fmt.Fprintf(&b, "%-3d %-12s %s\n", i+1, s.Name, s.TakenAt)
			}
			return b.String()
		},
	},
	{
		hmp: "stop", qmp: "stop",
		help: "stop -- pause the VM",
		run: func(m *Monitor, _ any) (any, error) {
			return nil, m.vm.Pause()
		},
	},
	{
		hmp: "cont", qmp: "cont",
		help: "cont -- resume the VM",
		run: func(m *Monitor, _ any) (any, error) {
			return nil, m.vm.Resume()
		},
	},
	{
		hmp: "migrate", qmp: "migrate",
		help: "migrate [-d] uri -- migrate the VM to uri (e.g. tcp:127.0.0.1:4444)",
		parseHMP: func(fields []string) (any, error) {
			// Accept and ignore -d (detach); the simulated migration
			// engine drives virtual time itself.
			var uri string
			for _, a := range fields {
				if strings.HasPrefix(a, "-") {
					continue
				}
				uri = a
			}
			if uri == "" {
				return nil, fmt.Errorf("%w: migrate requires a destination uri", ErrUnknownCommand)
			}
			return uri, nil
		},
		parseQMP: func(raw json.RawMessage) (any, error) {
			var args struct {
				URI string `json:"uri"`
			}
			if err := json.Unmarshal(raw, &args); err != nil || args.URI == "" {
				return nil, errors.New("migrate requires a uri argument")
			}
			return args.URI, nil
		},
		run: func(m *Monitor, args any) (any, error) {
			if m.vm.migrator == nil {
				return nil, ErrNoMigrator
			}
			return nil, m.vm.migrator.Migrate(m.vm, args.(string))
		},
	},
	{
		hmp: "migrate_set_speed", qmp: "migrate_set_speed",
		help: "migrate_set_speed value -- set maximum migration speed (e.g. 1g)",
		parseHMP: func(fields []string) (any, error) {
			if len(fields) != 1 {
				return nil, fmt.Errorf("%w: migrate_set_speed requires a value", ErrUnknownCommand)
			}
			return parseSize(fields[0])
		},
		parseQMP: func(raw json.RawMessage) (any, error) {
			var args struct {
				Value int64 `json:"value"`
			}
			if err := json.Unmarshal(raw, &args); err != nil || args.Value <= 0 {
				return nil, errors.New("migrate_set_speed requires a positive value")
			}
			return args.Value, nil
		},
		run: func(m *Monitor, args any) (any, error) {
			m.speedLimit = args.(int64)
			return nil, nil
		},
	},
	{
		hmp: "migrate_cancel", qmp: "migrate_cancel",
		help: "migrate_cancel -- abort the current migration",
		run: func(m *Monitor, _ any) (any, error) {
			c, ok := m.vm.migrator.(MigrationCanceller)
			if !ok {
				return nil, ErrNoMigrator
			}
			return nil, c.CancelMigration(m.vm)
		},
	},
	{
		hmp:  "migrate_set_capability",
		help: "migrate_set_capability name on|off -- toggle xbzrle / auto-converge",
		parseHMP: func(fields []string) (any, error) {
			if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
				return nil, fmt.Errorf("%w: migrate_set_capability <name> on|off", ErrUnknownCommand)
			}
			return fields, nil
		},
		run: func(m *Monitor, args any) (any, error) {
			c, ok := m.vm.migrator.(CapabilitySetter)
			if !ok {
				return nil, ErrNoMigrator
			}
			fields := args.([]string)
			return nil, c.SetMigrationCapability(m.vm, fields[0], fields[1] == "on")
		},
	},
	{
		hmp:  "hostfwd_add",
		help: "hostfwd_add tcp::H-:G -- forward host port H to guest port G",
		parseHMP: func(fields []string) (any, error) {
			return parseFwdField("hostfwd_add", fields)
		},
		run: func(m *Monitor, args any) (any, error) {
			return nil, m.vm.AddHostFwd(args.(FwdRule))
		},
	},
	{
		hmp:  "hostfwd_remove",
		help: "hostfwd_remove tcp::H-:G -- remove a host forward",
		parseHMP: func(fields []string) (any, error) {
			return parseFwdField("hostfwd_remove", fields)
		},
		run: func(m *Monitor, args any) (any, error) {
			return nil, m.vm.RemoveHostFwd(args.(FwdRule))
		},
	},
	{
		hmp:      "savevm",
		help:     "savevm name -- checkpoint the VM",
		parseHMP: oneField("savevm", "a name"),
		run: func(m *Monitor, args any) (any, error) {
			return nil, m.vm.SaveSnapshot(args.(string))
		},
	},
	{
		hmp:      "loadvm",
		help:     "loadvm name -- restore a checkpoint",
		parseHMP: oneField("loadvm", "a name"),
		run: func(m *Monitor, args any) (any, error) {
			return nil, m.vm.LoadSnapshot(args.(string))
		},
	},
	{
		hmp:      "delvm",
		help:     "delvm name -- delete a checkpoint",
		parseHMP: oneField("delvm", "a name"),
		run: func(m *Monitor, args any) (any, error) {
			return nil, m.vm.DeleteSnapshot(args.(string))
		},
	},
	{
		hmp:  "system_powerdown",
		help: "system_powerdown -- power down the VM",
		run: func(m *Monitor, _ any) (any, error) {
			return nil, m.vm.Shutdown()
		},
	},
	{
		hmp: "quit", aliases: []string{"q"}, qmp: "quit",
		help: "quit -- terminate QEMU",
		run: func(m *Monitor, _ any) (any, error) {
			return nil, m.vm.Shutdown()
		},
	},
	{
		hmp:  "help",
		help: "help -- show this text",
		run: func(m *Monitor, _ any) (any, error) {
			return helpListing, nil
		},
		renderHMP: func(res any) string { return res.(string) },
	},
}

// helpListing is the rendered `help` output, built from the registry once
// at init (a plain function would form an initialization cycle).
var helpListing string

// parseFwdField parses the single tcp::H-:G argument of the hostfwd
// commands.
func parseFwdField(name string, fields []string) (any, error) {
	if len(fields) != 1 {
		return nil, fmt.Errorf("%w: %s requires tcp::HOST-:GUEST", ErrUnknownCommand, name)
	}
	rules, err := parseHostFwds("hostfwd=" + fields[0])
	if err != nil || len(rules) != 1 {
		return nil, fmt.Errorf("%w: bad hostfwd spec %q", ErrUnknownCommand, fields[0])
	}
	return rules[0], nil
}

// hmpIndex and qmpIndex are the per-protocol dispatch tables, built from
// the registry once at init.
var (
	hmpIndex = map[string]*command{}
	qmpIndex = map[string]*command{}
)

func init() {
	for _, c := range registry {
		if c.hmp != "" {
			hmpIndex[c.hmp] = c
		}
		for _, a := range c.aliases {
			hmpIndex[a] = c
		}
		if c.qmp != "" {
			qmpIndex[c.qmp] = c
		}
	}
	var b strings.Builder
	for _, c := range registry {
		if c.help != "" {
			b.WriteString(c.help)
			b.WriteByte('\n')
		}
	}
	helpListing = b.String()
}

// dispatchHMP runs one parsed HMP command line against the monitor.
func dispatchHMP(m *Monitor, verb string, fields []string) (string, error) {
	c, ok := hmpIndex[verb]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownCommand, verb)
	}
	var args any
	if c.parseHMP != nil {
		var err error
		if args, err = c.parseHMP(fields); err != nil {
			return "", err
		}
	}
	res, err := c.run(m, args)
	if err != nil {
		return "", err
	}
	if c.renderHMP == nil {
		return "", nil
	}
	return c.renderHMP(res), nil
}

// dispatchQMP runs one QMP command against the monitor and renders the
// QMP-shaped response payload. Failures come back as *QMPError.
func dispatchQMP(m *Monitor, name string, raw json.RawMessage) (any, *QMPError) {
	c, ok := qmpIndex[name]
	if !ok {
		return nil, &QMPError{
			Class: "CommandNotFound",
			Desc:  fmt.Sprintf("The command %s has not been found", name),
		}
	}
	var args any
	if c.parseQMP != nil {
		var err error
		if args, err = c.parseQMP(raw); err != nil {
			return nil, &QMPError{Class: "GenericError", Desc: err.Error()}
		}
	}
	res, err := c.run(m, args)
	if err != nil {
		return nil, &QMPError{Class: "GenericError", Desc: err.Error()}
	}
	if c.renderQMP == nil {
		return map[string]any{}, nil
	}
	return c.renderQMP(res), nil
}
