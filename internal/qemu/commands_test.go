package qemu

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestRegistryShape: every registry entry is reachable from at least one
// protocol, exposes a handler, and the per-protocol indexes agree with the
// declared names.
func TestRegistryShape(t *testing.T) {
	for _, c := range registry {
		if c.hmp == "" && c.qmp == "" {
			t.Fatalf("registry entry %+v reachable from no protocol", c)
		}
		if c.run == nil {
			t.Fatalf("command %q/%q has no handler", c.hmp, c.qmp)
		}
		if c.hmp != "" && hmpIndex[c.hmp] != c {
			t.Fatalf("hmp index missing %q", c.hmp)
		}
		if c.qmp != "" && qmpIndex[c.qmp] != c {
			t.Fatalf("qmp index missing %q", c.qmp)
		}
		for _, a := range c.aliases {
			if hmpIndex[a] != c {
				t.Fatalf("alias %q of %q not indexed", a, c.hmp)
			}
		}
	}
}

// TestProtocolsShareSemantics: state changed over one protocol is
// observed over the other, because both dispatch into the same registry.
func TestProtocolsShareSemantics(t *testing.T) {
	vm := runningVM(t)
	q := vm.QMP()
	negotiate(t, q)

	// Pause over QMP, observe over HMP.
	if resp := qmpExec(t, q, "stop", ""); resp.Error != nil {
		t.Fatalf("qmp stop: %+v", resp.Error)
	}
	out, err := vm.Monitor().Execute("info status")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "paused") {
		t.Fatalf("HMP does not see QMP's pause: %q", out)
	}

	// Resume over HMP, observe over QMP.
	if _, err := vm.Monitor().Execute("cont"); err != nil {
		t.Fatal(err)
	}
	var status struct {
		Running bool `json:"running"`
	}
	resp := qmpExec(t, q, "query-status", "")
	if err := json.Unmarshal(resp.Return, &status); err != nil {
		t.Fatal(err)
	}
	if !status.Running {
		t.Fatal("QMP does not see HMP's cont")
	}

	// Speed cap set over QMP is the cap HMP reports, and vice versa: the
	// monitor singleton is the shared command state.
	if resp := qmpExec(t, q, "migrate_set_speed", `{"value":2097152}`); resp.Error != nil {
		t.Fatalf("qmp set speed: %+v", resp.Error)
	}
	if vm.Monitor().SpeedLimit() != 2<<20 {
		t.Fatalf("speed = %d", vm.Monitor().SpeedLimit())
	}
	if _, err := vm.Monitor().Execute("migrate_set_speed 1g"); err != nil {
		t.Fatal(err)
	}
	if vm.Monitor().SpeedLimit() != 1<<30 {
		t.Fatalf("speed = %d", vm.Monitor().SpeedLimit())
	}
}

// TestQMPMigrateCancel: migrate_cancel is exposed over QMP through the
// same handler HMP uses.
func TestQMPMigrateCancel(t *testing.T) {
	vm := runningVM(t)
	q := vm.QMP()
	negotiate(t, q)
	// No migrator attached: the shared handler's ErrNoMigrator surfaces
	// as a GenericError payload.
	resp := qmpExec(t, q, "migrate_cancel", "")
	if resp.Error == nil || resp.Error.Desc != ErrNoMigrator.Error() {
		t.Fatalf("resp = %+v", resp)
	}
}

// TestHMPErrorsWrapSentinels: every HMP failure mode is errors.Is-matchable
// against the package sentinels.
func TestHMPErrorsWrapSentinels(t *testing.T) {
	vm := runningVM(t)
	m := vm.Monitor()
	unknown := []string{
		"bogus",
		"info",
		"info bogus",
		"migrate",
		"migrate -d",
		"migrate_set_speed",
		"migrate_set_capability xbzrle maybe",
		"hostfwd_add",
		"hostfwd_add nonsense",
		"savevm",
	}
	for _, cmd := range unknown {
		if _, err := m.Execute(cmd); !errors.Is(err, ErrUnknownCommand) {
			t.Fatalf("%q err = %v, want ErrUnknownCommand", cmd, err)
		}
	}
	noMigrator := []string{
		"migrate tcp:127.0.0.1:4444",
		"migrate_cancel",
		"migrate_set_capability xbzrle on",
	}
	for _, cmd := range noMigrator {
		if _, err := m.Execute(cmd); !errors.Is(err, ErrNoMigrator) {
			t.Fatalf("%q err = %v, want ErrNoMigrator", cmd, err)
		}
	}
}

// TestQMPNegotiationEdgeCases: commands (known and unknown) before
// qmp_capabilities are rejected with the negotiation error; renegotiation
// is idempotent; the id is echoed on both success and failure.
func TestQMPNegotiationEdgeCases(t *testing.T) {
	vm := runningVM(t)
	q := vm.QMP()
	for _, name := range []string{"query-status", "stop", "device_add"} {
		resp := q.Execute(QMPCommand{Execute: name, ID: float64(9)})
		if resp.Error == nil || resp.Error.Class != "CommandNotFound" {
			t.Fatalf("pre-negotiation %q: %+v", name, resp)
		}
		if resp.Error.Desc != ErrQMPNegotiation.Error() {
			t.Fatalf("pre-negotiation %q desc = %q", name, resp.Error.Desc)
		}
		if resp.ID != float64(9) {
			t.Fatalf("pre-negotiation %q id = %v", name, resp.ID)
		}
	}
	negotiate(t, q)
	// Negotiating twice is fine (real QEMU allows it mid-session too).
	if resp := qmpExec(t, q, "qmp_capabilities", ""); resp.Error != nil {
		t.Fatalf("renegotiation: %+v", resp.Error)
	}
	// id echo on a failing command.
	resp := q.Execute(QMPCommand{Execute: "no-such-command", ID: "id-1"})
	if resp.Error == nil || resp.ID != "id-1" {
		t.Fatalf("failing command id echo: %+v", resp)
	}
	// Malformed arguments payload: a registry-parsed command rejects it
	// without panicking and echoes the id.
	resp = q.Execute(QMPCommand{
		Execute:   "migrate",
		Arguments: json.RawMessage(`{"uri": 42`),
		ID:        "id-2",
	})
	if resp.Error == nil || resp.Error.Class != "GenericError" || resp.ID != "id-2" {
		t.Fatalf("malformed arguments: %+v", resp)
	}
}

// TestHelpListsEveryDocumentedCommand: `help` is generated from the
// registry, so each documented command shows up.
func TestHelpListsEveryDocumentedCommand(t *testing.T) {
	vm := runningVM(t)
	out, err := vm.Monitor().Execute("help")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range registry {
		if c.help != "" && !strings.Contains(out, c.help) {
			t.Fatalf("help output missing %q", c.help)
		}
	}
	if !strings.Contains(out, "migrate_cancel") || !strings.Contains(out, "info qtree") {
		t.Fatalf("help = %q", out)
	}
}

// TestQMPQueryBlockSharesDriveData: query-block and info blockstats render
// the same underlying drive collection.
func TestQMPQueryBlockSharesDriveData(t *testing.T) {
	vm := runningVM(t)
	vm.RecordBlockIO(0, 512, 1024, 1, 1)
	q := vm.QMP()
	negotiate(t, q)

	var blocks []struct {
		Device string `json:"device"`
		File   string `json:"file"`
	}
	resp := qmpExec(t, q, "query-block", "")
	if err := json.Unmarshal(resp.Return, &blocks); err != nil {
		t.Fatal(err)
	}
	out, err := vm.Monitor().Execute("info blockstats")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if !strings.Contains(out, b.Device+":") {
			t.Fatalf("HMP blockstats missing device %q:\n%s", b.Device, out)
		}
	}
	if !strings.Contains(out, "rd_bytes=512") {
		t.Fatalf("blockstats = %q", out)
	}
}
