// Package qemu models the user-space VM monitor the attack manipulates: VM
// configuration and command lines (the recon surface), VM lifecycle
// including `-incoming` migration targets, an emulated device tree, block
// and network device state, and the QEMU Monitor text protocol
// (`info qtree`, `info blockstats`, `migrate`, ...).
package qemu

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cloudskulk/internal/mem"
)

// Errors callers match on.
var (
	ErrBadCommandLine = errors.New("qemu: cannot parse command line")
	ErrBadState       = errors.New("qemu: operation invalid in current state")
)

// FwdRule is one user-mode networking hostfwd entry: host port -> guest
// port.
type FwdRule struct {
	HostPort  int
	GuestPort int
}

// NetDev describes one emulated NIC.
type NetDev struct {
	Model    string // e.g. "virtio-net-pci", "e1000"
	HostFwds []FwdRule
}

// Drive describes one emulated block device.
type Drive struct {
	File   string // image path
	Format string // "qcow2", "raw"
	SizeMB int64
}

// Config is everything needed to launch a VM — and everything live
// migration requires to match between source and destination.
type Config struct {
	Name      string
	Machine   string // e.g. "pc-i440fx-2.9"
	MemoryMB  int64
	CPUs      int
	EnableKVM bool
	Drives    []Drive
	NetDevs   []NetDev
	// MonitorPort exposes the QEMU monitor on a host telnet port
	// (0 = monitor on stdio only, unreachable remotely).
	MonitorPort int
	// QMPPort exposes the JSON machine protocol on a host TCP port
	// (0 = disabled). Management stacks use this; so can an attacker.
	QMPPort int
	// Incoming, when non-empty, launches the VM paused, listening for
	// migration data at the given URI (e.g. "tcp:0.0.0.0:4444").
	Incoming string
	// MemTemplate, when set, backs guest RAM with a frozen golden image:
	// the VM forks the template copy-on-write (mem.SpawnFrom) instead of
	// allocating and populating pages, so creation is O(1) in guest size.
	// The template's size must equal MemoryMB. It models `-loadvm` from a
	// shared snapshot and is deliberately invisible to CommandLine — the
	// recon surface shows the same flags either way.
	MemTemplate *mem.Template
}

// DefaultConfig returns the paper's guest configuration: 1 GiB of RAM, one
// vCPU, KVM enabled, one qcow2 disk and one user-mode NIC.
func DefaultConfig(name string) Config {
	return Config{
		Name:      name,
		Machine:   "pc-i440fx-2.9",
		MemoryMB:  1024,
		CPUs:      1,
		EnableKVM: true,
		Drives: []Drive{{
			File:   name + ".qcow2",
			Format: "qcow2",
			SizeMB: 20 * 1024,
		}},
		NetDevs: []NetDev{{
			Model: "virtio-net-pci",
		}},
	}
}

// Clone deep-copies the config.
func (c Config) Clone() Config {
	out := c
	out.Drives = append([]Drive(nil), c.Drives...)
	out.NetDevs = make([]NetDev, len(c.NetDevs))
	for i, nd := range c.NetDevs {
		out.NetDevs[i] = NetDev{
			Model:    nd.Model,
			HostFwds: append([]FwdRule(nil), nd.HostFwds...),
		}
	}
	return out
}

// MatchesForMigration reports whether dst is a valid live-migration
// destination for src: machine type, memory size, CPU count, and device
// complement must all match, or the destination will reject the stream.
// Names, image paths, ports, and -incoming naturally differ.
func (c Config) MatchesForMigration(dst Config) error {
	if c.Machine != dst.Machine {
		return fmt.Errorf("qemu: machine mismatch %q vs %q", c.Machine, dst.Machine)
	}
	if c.MemoryMB != dst.MemoryMB {
		return fmt.Errorf("qemu: memory mismatch %d vs %d MB", c.MemoryMB, dst.MemoryMB)
	}
	if c.CPUs != dst.CPUs {
		return fmt.Errorf("qemu: cpu mismatch %d vs %d", c.CPUs, dst.CPUs)
	}
	if len(c.Drives) != len(dst.Drives) {
		return fmt.Errorf("qemu: drive count mismatch %d vs %d", len(c.Drives), len(dst.Drives))
	}
	for i := range c.Drives {
		if c.Drives[i].Format != dst.Drives[i].Format {
			return fmt.Errorf("qemu: drive %d format mismatch %q vs %q",
				i, c.Drives[i].Format, dst.Drives[i].Format)
		}
	}
	if len(c.NetDevs) != len(dst.NetDevs) {
		return fmt.Errorf("qemu: netdev count mismatch %d vs %d", len(c.NetDevs), len(dst.NetDevs))
	}
	for i := range c.NetDevs {
		if c.NetDevs[i].Model != dst.NetDevs[i].Model {
			return fmt.Errorf("qemu: netdev %d model mismatch %q vs %q",
				i, c.NetDevs[i].Model, dst.NetDevs[i].Model)
		}
	}
	return nil
}

// CommandLine renders the config as the qemu-system command the host's
// process table and shell history would show — the attacker's primary
// recon input.
func (c Config) CommandLine() string {
	var b strings.Builder
	b.WriteString("qemu-system-x86_64")
	if c.EnableKVM {
		b.WriteString(" -enable-kvm")
	}
	fmt.Fprintf(&b, " -name %s", c.Name)
	fmt.Fprintf(&b, " -machine %s", c.Machine)
	fmt.Fprintf(&b, " -m %d", c.MemoryMB)
	fmt.Fprintf(&b, " -smp %d", c.CPUs)
	for _, d := range c.Drives {
		fmt.Fprintf(&b, " -drive file=%s,format=%s,size=%d", d.File, d.Format, d.SizeMB)
	}
	for i, nd := range c.NetDevs {
		fmt.Fprintf(&b, " -device %s,netdev=net%d", nd.Model, i)
		fmt.Fprintf(&b, " -netdev user,id=net%d", i)
		// Sort for deterministic rendering.
		fwds := append([]FwdRule(nil), nd.HostFwds...)
		sort.Slice(fwds, func(a, z int) bool { return fwds[a].HostPort < fwds[z].HostPort })
		for _, f := range fwds {
			fmt.Fprintf(&b, ",hostfwd=tcp::%d-:%d", f.HostPort, f.GuestPort)
		}
	}
	if c.MonitorPort != 0 {
		fmt.Fprintf(&b, " -monitor telnet:127.0.0.1:%d,server,nowait", c.MonitorPort)
	}
	if c.QMPPort != 0 {
		fmt.Fprintf(&b, " -qmp tcp:127.0.0.1:%d,server,nowait", c.QMPPort)
	}
	if c.Incoming != "" {
		fmt.Fprintf(&b, " -incoming %s", c.Incoming)
	}
	return b.String()
}

// ParseCommandLine reconstructs a Config from a qemu-system command line —
// the attacker's `ps -ef` / `history` recon step. It accepts exactly the
// dialect CommandLine produces plus tolerant ordering.
func ParseCommandLine(line string) (Config, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || !strings.HasPrefix(fields[0], "qemu-system") {
		return Config{}, fmt.Errorf("%w: not a qemu command: %q", ErrBadCommandLine, line)
	}
	var c Config
	netIdx := -1
	for i := 1; i < len(fields); i++ {
		switch fields[i] {
		case "-enable-kvm":
			c.EnableKVM = true
		case "-name":
			i++
			if i >= len(fields) {
				return Config{}, fmt.Errorf("%w: -name missing value", ErrBadCommandLine)
			}
			c.Name = fields[i]
		case "-machine":
			i++
			if i >= len(fields) {
				return Config{}, fmt.Errorf("%w: -machine missing value", ErrBadCommandLine)
			}
			c.Machine = fields[i]
		case "-m":
			i++
			if i >= len(fields) {
				return Config{}, fmt.Errorf("%w: -m missing value", ErrBadCommandLine)
			}
			mb, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("%w: -m %q", ErrBadCommandLine, fields[i])
			}
			c.MemoryMB = mb
		case "-smp":
			i++
			if i >= len(fields) {
				return Config{}, fmt.Errorf("%w: -smp missing value", ErrBadCommandLine)
			}
			n, err := strconv.Atoi(fields[i])
			if err != nil {
				return Config{}, fmt.Errorf("%w: -smp %q", ErrBadCommandLine, fields[i])
			}
			c.CPUs = n
		case "-drive":
			i++
			if i >= len(fields) {
				return Config{}, fmt.Errorf("%w: -drive missing value", ErrBadCommandLine)
			}
			d, err := parseDrive(fields[i])
			if err != nil {
				return Config{}, err
			}
			c.Drives = append(c.Drives, d)
		case "-device":
			i++
			if i >= len(fields) {
				return Config{}, fmt.Errorf("%w: -device missing value", ErrBadCommandLine)
			}
			model, _, _ := strings.Cut(fields[i], ",")
			c.NetDevs = append(c.NetDevs, NetDev{Model: model})
			netIdx = len(c.NetDevs) - 1
		case "-netdev":
			i++
			if i >= len(fields) {
				return Config{}, fmt.Errorf("%w: -netdev missing value", ErrBadCommandLine)
			}
			if netIdx < 0 {
				return Config{}, fmt.Errorf("%w: -netdev before -device", ErrBadCommandLine)
			}
			fwds, err := parseHostFwds(fields[i])
			if err != nil {
				return Config{}, err
			}
			c.NetDevs[netIdx].HostFwds = fwds
		case "-monitor":
			i++
			if i >= len(fields) {
				return Config{}, fmt.Errorf("%w: -monitor missing value", ErrBadCommandLine)
			}
			port, err := parseMonitorPort(fields[i])
			if err != nil {
				return Config{}, err
			}
			c.MonitorPort = port
		case "-qmp":
			i++
			if i >= len(fields) {
				return Config{}, fmt.Errorf("%w: -qmp missing value", ErrBadCommandLine)
			}
			port, err := parseQMPPort(fields[i])
			if err != nil {
				return Config{}, err
			}
			c.QMPPort = port
		case "-incoming":
			i++
			if i >= len(fields) {
				return Config{}, fmt.Errorf("%w: -incoming missing value", ErrBadCommandLine)
			}
			c.Incoming = fields[i]
		default:
			// Unknown flags are skipped (real command lines carry many).
		}
	}
	if c.MemoryMB == 0 {
		c.MemoryMB = 128 // qemu's historical default
	}
	if c.CPUs == 0 {
		c.CPUs = 1
	}
	return c, nil
}

func parseDrive(spec string) (Drive, error) {
	var d Drive
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "file":
			d.File = v
		case "format":
			d.Format = v
		case "size":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Drive{}, fmt.Errorf("%w: drive size %q", ErrBadCommandLine, v)
			}
			d.SizeMB = n
		}
	}
	if d.File == "" {
		return Drive{}, fmt.Errorf("%w: drive without file=", ErrBadCommandLine)
	}
	return d, nil
}

func parseHostFwds(spec string) ([]FwdRule, error) {
	var fwds []FwdRule
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k != "hostfwd" {
			continue
		}
		// tcp::HOST-:GUEST
		v = strings.TrimPrefix(v, "tcp::")
		hostStr, guestStr, ok := strings.Cut(v, "-:")
		if !ok {
			return nil, fmt.Errorf("%w: hostfwd %q", ErrBadCommandLine, v)
		}
		hp, err := strconv.Atoi(hostStr)
		if err != nil {
			return nil, fmt.Errorf("%w: hostfwd host port %q", ErrBadCommandLine, hostStr)
		}
		gp, err := strconv.Atoi(guestStr)
		if err != nil {
			return nil, fmt.Errorf("%w: hostfwd guest port %q", ErrBadCommandLine, guestStr)
		}
		fwds = append(fwds, FwdRule{HostPort: hp, GuestPort: gp})
	}
	return fwds, nil
}

func parseMonitorPort(spec string) (int, error) {
	// telnet:127.0.0.1:PORT,server,nowait
	rest := strings.TrimPrefix(spec, "telnet:")
	hostport, _, _ := strings.Cut(rest, ",")
	_, portStr, ok := strings.Cut(hostport, ":")
	if !ok {
		return 0, fmt.Errorf("%w: monitor spec %q", ErrBadCommandLine, spec)
	}
	p, err := strconv.Atoi(portStr)
	if err != nil {
		return 0, fmt.Errorf("%w: monitor port %q", ErrBadCommandLine, portStr)
	}
	return p, nil
}

func parseQMPPort(spec string) (int, error) {
	// tcp:127.0.0.1:PORT,server,nowait
	rest := strings.TrimPrefix(spec, "tcp:")
	hostport, _, _ := strings.Cut(rest, ",")
	idx := strings.LastIndex(hostport, ":")
	if idx < 0 {
		return 0, fmt.Errorf("%w: qmp spec %q", ErrBadCommandLine, spec)
	}
	p, err := strconv.Atoi(hostport[idx+1:])
	if err != nil {
		return 0, fmt.Errorf("%w: qmp port %q", ErrBadCommandLine, hostport[idx+1:])
	}
	return p, nil
}

// ParseIncomingPort extracts the TCP port from an -incoming URI like
// "tcp:0.0.0.0:4444".
func ParseIncomingPort(uri string) (int, error) {
	parts := strings.Split(uri, ":")
	if len(parts) < 2 || parts[0] != "tcp" {
		return 0, fmt.Errorf("%w: incoming uri %q", ErrBadCommandLine, uri)
	}
	p, err := strconv.Atoi(parts[len(parts)-1])
	if err != nil {
		return 0, fmt.Errorf("%w: incoming port in %q", ErrBadCommandLine, uri)
	}
	return p, nil
}
