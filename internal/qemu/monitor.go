package qemu

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// Monitor errors.
var (
	ErrUnknownCommand = errors.New("qemu: unknown monitor command")
	ErrNoMigrator     = errors.New("qemu: no migration engine attached")
)

// MigrationCanceller is implemented by migration engines that support
// aborting an in-flight migration (the monitor's migrate_cancel).
type MigrationCanceller interface {
	CancelMigration(vm *VM) error
}

// CapabilitySetter is implemented by migration engines that support
// QEMU-style migration capabilities (xbzrle, auto-converge).
type CapabilitySetter interface {
	SetMigrationCapability(vm *VM, name string, on bool) error
}

// Monitor is the QEMU human monitor ("HMP"): the text console the paper's
// attacker drives for recon (`info qtree`, `info blockstats`, ...) and for
// the attack itself (`migrate`). It can be used programmatically through
// Execute or served over any net.Conn (e.g. a telnet port) via Serve.
//
// Command semantics live in the shared registry (commands.go); Monitor is
// only the HMP front-end: line splitting, dispatch, and text output.
type Monitor struct {
	vm *VM
	// speedLimit is the migration bandwidth cap set by
	// migrate_set_speed. QEMU 2.9's default was 32 MiB/s, which is what
	// makes the paper's idle 1 GiB migration take ~26 seconds.
	speedLimit int64
}

// DefaultMigrationSpeed is QEMU 2.9's default migration bandwidth cap
// (32 MiB/s).
const DefaultMigrationSpeed int64 = 32 << 20

func newMonitor(vm *VM) *Monitor {
	return &Monitor{
		vm:         vm,
		speedLimit: DefaultMigrationSpeed,
	}
}

// VM returns the monitored VM.
func (m *Monitor) VM() *VM { return m.vm }

// SpeedLimit returns the current migration bandwidth cap in bytes/second.
func (m *Monitor) SpeedLimit() int64 { return m.speedLimit }

// Execute runs one monitor command line and returns its output. Command
// errors are returned as errors (wrapping ErrUnknownCommand,
// ErrNoMigrator, or the operation's own failure); the output (possibly
// empty) is what the console would print on success.
func (m *Monitor) Execute(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	verb, args := fields[0], fields[1:]
	if verb == "info" {
		if len(args) == 0 {
			return "", fmt.Errorf("%w: info requires a subcommand", ErrUnknownCommand)
		}
		if _, ok := hmpIndex["info "+args[0]]; !ok {
			return "", fmt.Errorf("%w: info %q", ErrUnknownCommand, args[0])
		}
		verb, args = "info "+args[0], args[1:]
	}
	return dispatchHMP(m, verb, args)
}

// parseSize parses QEMU-style sizes: plain bytes or a k/m/g suffix.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	lower := strings.ToLower(s)
	switch {
	case strings.HasSuffix(lower, "g"):
		mult, lower = 1<<30, strings.TrimSuffix(lower, "g")
	case strings.HasSuffix(lower, "m"):
		mult, lower = 1<<20, strings.TrimSuffix(lower, "m")
	case strings.HasSuffix(lower, "k"):
		mult, lower = 1<<10, strings.TrimSuffix(lower, "k")
	}
	n, err := strconv.ParseInt(lower, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("qemu: bad size %q", s)
	}
	return n * mult, nil
}

// Serve runs a monitor session over conn: greeting, "(qemu) " prompts,
// line dispatch, until EOF or `quit`. Errors are printed to the session the
// way HMP does, not returned, so a bad command doesn't kill the console.
func (m *Monitor) Serve(conn net.Conn) error {
	defer func() { _ = conn.Close() }()
	w := bufio.NewWriter(conn)
	fmt.Fprintf(w, "QEMU 2.9.50 monitor - type 'help' for more information\n")
	if err := prompt(w); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		out, err := m.Execute(line)
		if err != nil {
			fmt.Fprintf(w, "%s\n", err)
		} else if out != "" {
			_, _ = w.WriteString(out)
		}
		if strings.HasPrefix(line, "quit") || strings.HasPrefix(line, "q ") || line == "q" {
			return w.Flush()
		}
		if err := prompt(w); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.ErrClosedPipe) {
		return err
	}
	return nil
}

func prompt(w *bufio.Writer) error {
	if _, err := w.WriteString("(qemu) "); err != nil {
		return err
	}
	return w.Flush()
}
