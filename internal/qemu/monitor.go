package qemu

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// Monitor errors.
var (
	ErrUnknownCommand = errors.New("qemu: unknown monitor command")
	ErrNoMigrator     = errors.New("qemu: no migration engine attached")
)

// MigrationCanceller is implemented by migration engines that support
// aborting an in-flight migration (the monitor's migrate_cancel).
type MigrationCanceller interface {
	CancelMigration(vm *VM) error
}

// CapabilitySetter is implemented by migration engines that support
// QEMU-style migration capabilities (xbzrle, auto-converge).
type CapabilitySetter interface {
	SetMigrationCapability(vm *VM, name string, on bool) error
}

// Monitor is the QEMU human monitor ("HMP"): the text console the paper's
// attacker drives for recon (`info qtree`, `info blockstats`, ...) and for
// the attack itself (`migrate`). It can be used programmatically through
// Execute or served over any net.Conn (e.g. a telnet port) via Serve.
type Monitor struct {
	vm *VM
	// speedLimit is the migration bandwidth cap set by
	// migrate_set_speed. QEMU 2.9's default was 32 MiB/s, which is what
	// makes the paper's idle 1 GiB migration take ~26 seconds.
	speedLimit int64
}

// DefaultMigrationSpeed is QEMU 2.9's default migration bandwidth cap
// (32 MiB/s).
const DefaultMigrationSpeed int64 = 32 << 20

func newMonitor(vm *VM) *Monitor {
	return &Monitor{
		vm:         vm,
		speedLimit: DefaultMigrationSpeed,
	}
}

// VM returns the monitored VM.
func (m *Monitor) VM() *VM { return m.vm }

// SpeedLimit returns the current migration bandwidth cap in bytes/second.
func (m *Monitor) SpeedLimit() int64 { return m.speedLimit }

// Execute runs one monitor command line and returns its output. Command
// errors are returned as errors; the output (possibly empty) is what the
// console would print on success.
func (m *Monitor) Execute(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	switch fields[0] {
	case "help":
		return _helpText, nil
	case "info":
		if len(fields) < 2 {
			return "", fmt.Errorf("%w: info requires a subcommand", ErrUnknownCommand)
		}
		return m.info(fields[1])
	case "stop":
		if err := m.vm.Pause(); err != nil {
			return "", err
		}
		return "", nil
	case "cont":
		if err := m.vm.Resume(); err != nil {
			return "", err
		}
		return "", nil
	case "quit", "q":
		if err := m.vm.Shutdown(); err != nil {
			return "", err
		}
		return "", nil
	case "system_powerdown":
		if err := m.vm.Shutdown(); err != nil {
			return "", err
		}
		return "", nil
	case "migrate":
		return m.migrate(fields[1:])
	case "hostfwd_add", "hostfwd_remove":
		if len(fields) != 2 {
			return "", fmt.Errorf("%w: %s requires tcp::HOST-:GUEST", ErrUnknownCommand, fields[0])
		}
		rules, err := parseHostFwds("hostfwd=" + fields[1])
		if err != nil || len(rules) != 1 {
			return "", fmt.Errorf("%w: bad hostfwd spec %q", ErrUnknownCommand, fields[1])
		}
		if fields[0] == "hostfwd_add" {
			return "", m.vm.AddHostFwd(rules[0])
		}
		return "", m.vm.RemoveHostFwd(rules[0])
	case "migrate_set_speed":
		if len(fields) != 2 {
			return "", fmt.Errorf("%w: migrate_set_speed requires a value", ErrUnknownCommand)
		}
		n, err := parseSize(fields[1])
		if err != nil {
			return "", err
		}
		m.speedLimit = n
		return "", nil
	case "savevm":
		if len(fields) != 2 {
			return "", fmt.Errorf("%w: savevm requires a name", ErrUnknownCommand)
		}
		return "", m.vm.SaveSnapshot(fields[1])
	case "loadvm":
		if len(fields) != 2 {
			return "", fmt.Errorf("%w: loadvm requires a name", ErrUnknownCommand)
		}
		return "", m.vm.LoadSnapshot(fields[1])
	case "delvm":
		if len(fields) != 2 {
			return "", fmt.Errorf("%w: delvm requires a name", ErrUnknownCommand)
		}
		return "", m.vm.DeleteSnapshot(fields[1])
	case "migrate_cancel":
		c, ok := m.vm.migrator.(MigrationCanceller)
		if !ok {
			return "", ErrNoMigrator
		}
		return "", c.CancelMigration(m.vm)
	case "migrate_set_capability":
		if len(fields) != 3 || (fields[2] != "on" && fields[2] != "off") {
			return "", fmt.Errorf("%w: migrate_set_capability <name> on|off", ErrUnknownCommand)
		}
		c, ok := m.vm.migrator.(CapabilitySetter)
		if !ok {
			return "", ErrNoMigrator
		}
		return "", c.SetMigrationCapability(m.vm, fields[1], fields[2] == "on")
	default:
		return "", fmt.Errorf("%w: %q", ErrUnknownCommand, fields[0])
	}
}

func (m *Monitor) info(what string) (string, error) {
	switch what {
	case "status":
		return fmt.Sprintf("VM status: %s\n", m.vm.State()), nil
	case "name":
		return m.vm.Name() + "\n", nil
	case "qtree":
		return renderQtree(m.vm.Config()), nil
	case "mtree":
		return renderMtree(m.vm.Config()), nil
	case "mem":
		return renderMem(m.vm), nil
	case "blockstats":
		return renderBlockstats(m.vm), nil
	case "network":
		return renderNetwork(m.vm.Config()), nil
	case "migrate":
		return renderMigrate(m.vm), nil
	case "snapshots":
		snaps := m.vm.Snapshots()
		if len(snaps) == 0 {
			return "There is no snapshot available.\n", nil
		}
		var b strings.Builder
		b.WriteString("ID  TAG          VM CLOCK\n")
		for i, s := range snaps {
			fmt.Fprintf(&b, "%-3d %-12s %s\n", i+1, s.Name, s.TakenAt)
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("%w: info %q", ErrUnknownCommand, what)
	}
}

func (m *Monitor) migrate(args []string) (string, error) {
	// Accept and ignore -d (detach); the simulated migration engine
	// drives virtual time itself.
	var uri string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		uri = a
	}
	if uri == "" {
		return "", fmt.Errorf("%w: migrate requires a destination uri", ErrUnknownCommand)
	}
	if m.vm.migrator == nil {
		return "", ErrNoMigrator
	}
	if err := m.vm.migrator.Migrate(m.vm, uri); err != nil {
		return "", err
	}
	return "", nil
}

// parseSize parses QEMU-style sizes: plain bytes or a k/m/g suffix.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	lower := strings.ToLower(s)
	switch {
	case strings.HasSuffix(lower, "g"):
		mult, lower = 1<<30, strings.TrimSuffix(lower, "g")
	case strings.HasSuffix(lower, "m"):
		mult, lower = 1<<20, strings.TrimSuffix(lower, "m")
	case strings.HasSuffix(lower, "k"):
		mult, lower = 1<<10, strings.TrimSuffix(lower, "k")
	}
	n, err := strconv.ParseInt(lower, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("qemu: bad size %q", s)
	}
	return n * mult, nil
}

// Serve runs a monitor session over conn: greeting, "(qemu) " prompts,
// line dispatch, until EOF or `quit`. Errors are printed to the session the
// way HMP does, not returned, so a bad command doesn't kill the console.
func (m *Monitor) Serve(conn net.Conn) error {
	defer func() { _ = conn.Close() }()
	w := bufio.NewWriter(conn)
	fmt.Fprintf(w, "QEMU 2.9.50 monitor - type 'help' for more information\n")
	if err := prompt(w); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		out, err := m.Execute(line)
		if err != nil {
			fmt.Fprintf(w, "%s\n", err)
		} else if out != "" {
			_, _ = w.WriteString(out)
		}
		if strings.HasPrefix(line, "quit") || strings.HasPrefix(line, "q ") || line == "q" {
			return w.Flush()
		}
		if err := prompt(w); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.ErrClosedPipe) {
		return err
	}
	return nil
}

func prompt(w *bufio.Writer) error {
	if _, err := w.WriteString("(qemu) "); err != nil {
		return err
	}
	return w.Flush()
}

const _helpText = `info status -- show VM run state
info name -- show VM name
info qtree -- show device tree
info mtree -- show memory map
info mem -- show memory summary
info blockstats -- show block device statistics
info network -- show network devices and host forwarding
info migrate -- show migration status
stop -- pause the VM
cont -- resume the VM
migrate [-d] uri -- migrate the VM to uri (e.g. tcp:127.0.0.1:4444)
migrate_set_speed value -- set maximum migration speed (e.g. 1g)
migrate_cancel -- abort the current migration
migrate_set_capability name on|off -- toggle xbzrle / auto-converge
hostfwd_add tcp::H-:G -- forward host port H to guest port G
hostfwd_remove tcp::H-:G -- remove a host forward
savevm name -- checkpoint the VM
loadvm name -- restore a checkpoint
delvm name -- delete a checkpoint
info snapshots -- list checkpoints
system_powerdown -- power down the VM
quit -- terminate QEMU
`
