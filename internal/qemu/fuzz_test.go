package qemu

import (
	"encoding/json"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/sim"
)

// fuzzVM builds a fresh booted VM per input, so state left behind by
// one command line (a quit, a savevm) never bleeds into the next case.
func fuzzVM() (*VM, error) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig("guest0")
	cfg.MemoryMB = 8
	cfg.NetDevs[0].HostFwds = []FwdRule{{2222, 22}}
	vm := NewVM(eng, cfg, cpu.DefaultModel(), cpu.L1, "guest0.nic")
	if err := vm.Boot(time.Second, rand.New(rand.NewSource(1)), 0.3); err != nil {
		return nil, err
	}
	return vm, nil
}

// FuzzMonitorDispatch drives arbitrary console input through both
// protocol front-ends of the unified command registry. The monitor is
// the attacker-reachable parser surface of this stack (the paper's
// `telnet 127.0.0.1 5555`), so the contract is strict: HMP may reject a
// line but must never panic, and QMP must answer every decodable
// command with well-formed JSON carrying exactly a return or an error.
func FuzzMonitorDispatch(f *testing.F) {
	for _, seed := range []string{
		// HMP spellings from the monitor tests.
		"info status", "info qtree", "info mtree", "info mem",
		"info blockstats", "info network", "info name", "info migrate",
		"info stats", "info snapshots", "help", "stop", "cont",
		"migrate -d tcp:127.0.0.1:4444", "migrate_set_speed 1g",
		"migrate_set_capability xbzrle on", "migrate_cancel",
		"hostfwd_add tcp::8080-:80", "hostfwd_remove tcp::2222-:22",
		"savevm snap1", "loadvm snap1", "delvm snap1",
		"system_powerdown", "quit", "q", "info", "",
		// QMP lines from the qmp tests.
		`{"execute":"qmp_capabilities"}`,
		`{"execute":"query-status","id":7}`,
		`{"execute":"query-blockstats"}`,
		`{"execute":"query-stats"}`,
		`{"execute":"migrate","arguments":{"uri":"tcp:127.0.0.1:4444"}}`,
		`{"execute":"migrate_set_speed","arguments":{"value":1048576}}`,
		`{"execute":"quit","id":{"nested":[1,2,3]}}`,
		`{"execute":"migrate","arguments":{"uri":""}}`,
		// Parser edge shapes.
		"migrate_set_speed 99999999999999999999g",
		"info \x00status", "savevm \xff", `{"execute":12}`, "{",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		// Hang detector: a dispatch that loops forever would otherwise
		// stall the fuzzer silently (hanging inputs are never saved to
		// the corpus). Crashing with the input in hand makes it
		// reproducible. Normal inputs finish in well under a millisecond.
		watchdog := time.AfterFunc(2*time.Second, func() {
			panic("slow fuzz input: " + strconv.Quote(line))
		})
		defer watchdog.Stop()
		vm, err := fuzzVM()
		if err != nil {
			t.Fatalf("building fuzz VM: %v", err)
		}

		// HMP: any input may error, none may panic.
		if _, err := vm.Monitor().Execute(line); err != nil && line == "info status" {
			t.Fatalf("known-good command failed: %v", err)
		}

		// QMP before negotiation: must reject, not obey.
		q := vm.QMP()
		if resp := q.Execute(QMPCommand{Execute: "query-status"}); resp.Error == nil {
			t.Fatal("command before qmp_capabilities was accepted")
		}
		if resp := q.Execute(QMPCommand{Execute: "qmp_capabilities"}); resp.Error != nil {
			t.Fatalf("negotiation failed: %v", resp.Error)
		}

		checkQMP := func(resp QMPResponse) {
			t.Helper()
			raw, err := json.Marshal(resp)
			if err != nil {
				t.Fatalf("QMP response does not marshal: %v", err)
			}
			if !json.Valid(raw) {
				t.Fatalf("QMP response is not valid JSON: %q", raw)
			}
			if (resp.Return == nil) == (resp.Error == nil) {
				t.Fatalf("QMP response must carry exactly one of return/error: %s", raw)
			}
		}

		// The raw input as a QMP wire line, when it decodes at all.
		var cmd QMPCommand
		if err := json.Unmarshal([]byte(line), &cmd); err == nil {
			checkQMP(q.Execute(cmd))
		}
		// And the raw input as a bare execute name.
		checkQMP(q.Execute(QMPCommand{Execute: line}))
	})
}
