package qemu

import (
	"fmt"
	"math/rand"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
)

// State is a VM lifecycle state.
type State int

// VM lifecycle states.
const (
	// StateCreated: process exists, guest not started.
	StateCreated State = iota + 1
	// StateRunning: guest executing.
	StateRunning
	// StatePaused: guest stopped (monitor `stop`).
	StatePaused
	// StateIncoming: paused, listening for live-migration data
	// (launched with -incoming).
	StateIncoming
	// StateShutOff: terminated.
	StateShutOff
)

// String names the state the way `info status` does.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateIncoming:
		return "paused (inmigrate)"
	case StateShutOff:
		return "shut off"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BlockStats carries per-drive I/O counters, the `info blockstats` view.
type BlockStats struct {
	RdBytes uint64
	WrBytes uint64
	RdOps   uint64
	WrOps   uint64
}

// MigrationInfo is the `info migrate` view, updated by the migration
// engine while a migration involving this VM runs.
type MigrationInfo struct {
	Status        string // "", "active", "completed", "failed", "cancelled"
	TransferredMB float64
	RemainingMB   float64
	TotalMB       float64
	Downtime      time.Duration
	TotalTime     time.Duration
	Iterations    int
}

// Migrator starts a live migration of vm toward uri. The QEMU monitor's
// `migrate` command delegates here; the implementation lives in the
// migrate package and is injected to keep this package free of a cycle.
type Migrator interface {
	Migrate(vm *VM, uri string) error
}

// PortForwarder installs user-mode-networking host forwards at runtime —
// the monitor's `hostfwd_add` command. The hypervisor layer injects an
// implementation wired to the virtual network.
type PortForwarder interface {
	AddHostFwd(vm *VM, rule FwdRule) error
	RemoveHostFwd(vm *VM, rule FwdRule) error
}

// VM is one QEMU process's guest.
type VM struct {
	eng      *sim.Engine
	cfg      Config
	state    State
	ram      *mem.Space
	vcpu     *cpu.VCPU
	level    cpu.Level
	endpoint string
	pid      int

	blocks    []BlockStats
	migInfo   MigrationInfo
	migrator  Migrator
	portFwd   PortForwarder
	monitor   *Monitor
	snapshots map[string]*Snapshot
	bootedAt  time.Duration
	stoppedAt time.Duration
	tele      *telemetry.Registry
}

// NewVM builds a VM in StateCreated. The endpoint names this VM's NIC on
// the virtual network; level is the virtualization level the guest's code
// executes at (L1 for a VM on the bare-metal host, L2 nested).
func NewVM(eng *sim.Engine, cfg Config, model cpu.Model, level cpu.Level, endpoint string) *VM {
	var ram *mem.Space
	if cfg.MemTemplate != nil {
		// Golden-image boot: fork the template copy-on-write instead of
		// allocating pages — O(1) regardless of guest memory size. The
		// cold-path NewSpace must not run even transiently: its page
		// table alone is ~1.3 MB at a 128 MB image, which at 100k
		// template guests is ~130 GB of allocator churn.
		ram = mem.SpawnFrom(cfg.Name+".ram", cfg.MemTemplate)
	} else {
		ram = mem.NewSpace(cfg.Name+".ram", cfg.MemoryMB<<20)
	}
	vm := &VM{
		eng:      eng,
		cfg:      cfg.Clone(),
		state:    StateCreated,
		ram:      ram,
		vcpu:     cpu.NewVCPU(eng, model, level),
		level:    level,
		endpoint: endpoint,
		blocks:   make([]BlockStats, len(cfg.Drives)),
	}
	return vm
}

// Name returns the VM's configured name.
func (v *VM) Name() string { return v.cfg.Name }

// Config returns a copy of the VM's configuration.
func (v *VM) Config() Config { return v.cfg.Clone() }

// State returns the lifecycle state.
func (v *VM) State() State { return v.state }

// RAM exposes the guest-physical memory.
func (v *VM) RAM() *mem.Space { return v.ram }

// VCPU returns the guest's virtual CPU.
func (v *VM) VCPU() *cpu.VCPU { return v.vcpu }

// Level returns the virtualization level guest code runs at.
func (v *VM) Level() cpu.Level { return v.level }

// Endpoint returns the VM's network endpoint name.
func (v *VM) Endpoint() string { return v.endpoint }

// Engine returns the simulation engine.
func (v *VM) Engine() *sim.Engine { return v.eng }

// PID returns the host process id backing this VM (0 until assigned).
func (v *VM) PID() int { return v.pid }

// SetPID records the host process id backing this VM.
func (v *VM) SetPID(pid int) { v.pid = pid }

// Boot transitions Created -> Running (or -> Incoming when the config has
// -incoming), advancing virtual time by bootTime and populating guest RAM
// with plausible contents: zeroFrac of pages free (zero), the rest unique.
// An incoming VM skips RAM population — its memory arrives via migration.
// A golden-image boot (MemTemplate fork) charges no boot time: it models
// `-loadvm` from an already-warm shared snapshot, an instant restore — and
// that instantaneity is load-bearing for the sharded world, where a boot
// inside an event handler must never advance the clock past the shard's
// granted synchronization window.
func (v *VM) Boot(bootTime time.Duration, rng *rand.Rand, zeroFrac float64) error {
	if v.state != StateCreated {
		return fmt.Errorf("%w: boot from %v", ErrBadState, v.state)
	}
	if v.cfg.MemTemplate != nil && v.ram.Forked() {
		// Golden-image boot: RAM already is the template contents, shared
		// copy-on-write with every sibling guest. No boot-time advance, no
		// page population, and — deliberately — no RNG draw, so template
		// boots leave the engine's clock and random stream exactly where
		// they were. After a Reset the fork is gone and the normal cold
		// path below runs.
		v.bootedAt = v.eng.Now()
		v.state = StateRunning
		return nil
	}
	v.eng.Advance(bootTime)
	v.bootedAt = v.eng.Now()
	if v.cfg.Incoming != "" {
		v.state = StateIncoming
		return nil
	}
	v.ram.FillRandom(rng, zeroFrac)
	v.state = StateRunning
	return nil
}

// Pause stops guest execution (monitor `stop`).
func (v *VM) Pause() error {
	if v.state != StateRunning {
		return fmt.Errorf("%w: stop from %v", ErrBadState, v.state)
	}
	v.state = StatePaused
	v.stoppedAt = v.eng.Now()
	return nil
}

// Resume restarts a paused or incoming-complete guest (monitor `cont`).
func (v *VM) Resume() error {
	if v.state != StatePaused && v.state != StateIncoming {
		return fmt.Errorf("%w: cont from %v", ErrBadState, v.state)
	}
	v.state = StateRunning
	return nil
}

// Reset returns a running or paused guest to the pre-boot state — the
// guest OS rebooting (or the admin hitting system_reset). RAM is cleared:
// a fresh boot repopulates it. The QEMU process itself survives, which is
// exactly why a rootkit *around* the guest survives the guest's reboot.
func (v *VM) Reset() error {
	if v.state != StateRunning && v.state != StatePaused {
		return fmt.Errorf("%w: reset from %v", ErrBadState, v.state)
	}
	v.ram.Reset()
	v.state = StateCreated
	return nil
}

// Shutdown terminates the guest. Terminating an already shut-off VM is an
// error so tests catch double-kill bugs.
func (v *VM) Shutdown() error {
	if v.state == StateShutOff {
		return fmt.Errorf("%w: quit from %v", ErrBadState, v.state)
	}
	v.state = StateShutOff
	return nil
}

// Running reports whether the guest is executing.
func (v *VM) Running() bool { return v.state == StateRunning }

// RecordBlockIO accumulates device I/O counters for `info blockstats`.
// Unknown drive indices are ignored (defensive: workloads probe drive 0).
func (v *VM) RecordBlockIO(drive int, rdBytes, wrBytes, rdOps, wrOps uint64) {
	if drive < 0 || drive >= len(v.blocks) {
		return
	}
	b := &v.blocks[drive]
	b.RdBytes += rdBytes
	b.WrBytes += wrBytes
	b.RdOps += rdOps
	b.WrOps += wrOps
}

// BlockStatsFor returns drive i's counters.
func (v *VM) BlockStatsFor(i int) (BlockStats, bool) {
	if i < 0 || i >= len(v.blocks) {
		return BlockStats{}, false
	}
	return v.blocks[i], true
}

// SetTelemetry attaches the metrics registry the monitor's query-stats /
// info stats serve from. The hypervisor wires this at CreateVM time.
func (v *VM) SetTelemetry(reg *telemetry.Registry) { v.tele = reg }

// Telemetry returns the VM's registry (nil when unset).
func (v *VM) Telemetry() *telemetry.Registry { return v.tele }

// SetMigrator injects the live-migration engine used by the monitor's
// `migrate` command.
func (v *VM) SetMigrator(m Migrator) { v.migrator = m }

// SetPortForwarder injects the runtime hostfwd implementation used by the
// monitor's `hostfwd_add` / `hostfwd_remove` commands.
func (v *VM) SetPortForwarder(pf PortForwarder) { v.portFwd = pf }

// AddHostFwd installs a runtime host forward for this VM. It also records
// the rule in the VM's config so recon and `info network` see it.
func (v *VM) AddHostFwd(rule FwdRule) error {
	if v.portFwd == nil {
		return fmt.Errorf("%w: no port forwarder attached", ErrBadState)
	}
	if err := v.portFwd.AddHostFwd(v, rule); err != nil {
		return err
	}
	if len(v.cfg.NetDevs) > 0 {
		v.cfg.NetDevs[0].HostFwds = append(v.cfg.NetDevs[0].HostFwds, rule)
	}
	return nil
}

// RemoveHostFwd removes a runtime host forward for this VM.
func (v *VM) RemoveHostFwd(rule FwdRule) error {
	if v.portFwd == nil {
		return fmt.Errorf("%w: no port forwarder attached", ErrBadState)
	}
	if err := v.portFwd.RemoveHostFwd(v, rule); err != nil {
		return err
	}
	if len(v.cfg.NetDevs) > 0 {
		fwds := v.cfg.NetDevs[0].HostFwds
		for i, f := range fwds {
			if f == rule {
				v.cfg.NetDevs[0].HostFwds = append(fwds[:i], fwds[i+1:]...)
				break
			}
		}
	}
	return nil
}

// SetMigrationInfo updates the `info migrate` view.
func (v *VM) SetMigrationInfo(info MigrationInfo) { v.migInfo = info }

// MigrationStatus returns the current `info migrate` view.
func (v *VM) MigrationStatus() MigrationInfo { return v.migInfo }

// Monitor returns the VM's QEMU monitor, creating it on first use.
func (v *VM) Monitor() *Monitor {
	if v.monitor == nil {
		v.monitor = newMonitor(v)
	}
	return v.monitor
}

// FinishIncoming transitions an incoming VM to paused-after-migration;
// the migration engine calls it at stream end, and `cont` (or the engine's
// auto-resume) then starts the guest.
func (v *VM) FinishIncoming() error {
	if v.state != StateIncoming {
		return fmt.Errorf("%w: finish incoming from %v", ErrBadState, v.state)
	}
	v.state = StatePaused
	// -incoming applied to this one launch; a later in-process reboot
	// boots normally.
	v.cfg.Incoming = ""
	return nil
}
