package qemu

import (
	"errors"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	vm := runningVM(t)
	if _, err := vm.RAM().Write(10, 0x1111); err != nil {
		t.Fatal(err)
	}
	if err := vm.SaveSnapshot("clean"); err != nil {
		t.Fatal(err)
	}
	// Diverge.
	if _, err := vm.RAM().Write(10, 0x2222); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.RAM().Write(11, 0x3333); err != nil {
		t.Fatal(err)
	}
	if err := vm.LoadSnapshot("clean"); err != nil {
		t.Fatal(err)
	}
	if got := vm.RAM().MustRead(10); got != 0x1111 {
		t.Fatalf("page 10 = %#x", got)
	}
	if got := vm.RAM().MustRead(11); got == 0x3333 {
		t.Fatal("post-snapshot write survived restore")
	}
	if !vm.Running() {
		t.Fatalf("state after loadvm = %v", vm.State())
	}
	if vm.RAM().DirtyCount() != 0 {
		t.Fatal("restore left dirty log set")
	}
}

func TestSnapshotRestoresRunState(t *testing.T) {
	vm := runningVM(t)
	if err := vm.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := vm.SaveSnapshot("paused-snap"); err != nil {
		t.Fatal(err)
	}
	if err := vm.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := vm.LoadSnapshot("paused-snap"); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StatePaused {
		t.Fatalf("state = %v", vm.State())
	}
}

func TestSnapshotErrors(t *testing.T) {
	vm := runningVM(t)
	if err := vm.LoadSnapshot("ghost"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v", err)
	}
	if err := vm.DeleteSnapshot("ghost"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v", err)
	}
	if err := vm.SaveSnapshot(""); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v", err)
	}
	if err := vm.SaveSnapshot("a"); err != nil {
		t.Fatal(err)
	}
	if err := vm.SaveSnapshot("a"); !errors.Is(err, ErrSnapshotDup) {
		t.Fatalf("err = %v", err)
	}
	if err := vm.DeleteSnapshot("a"); err != nil {
		t.Fatal(err)
	}
	if err := vm.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := vm.SaveSnapshot("b"); !errors.Is(err, ErrBadState) {
		t.Fatalf("err = %v", err)
	}
	if err := vm.LoadSnapshot("a"); !errors.Is(err, ErrBadState) {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotMonitorCommands(t *testing.T) {
	vm := runningVM(t)
	m := vm.Monitor()
	out, err := m.Execute("info snapshots")
	if err != nil || !strings.Contains(out, "no snapshot") {
		t.Fatalf("empty list: %q %v", out, err)
	}
	if _, err := m.Execute("savevm pre-audit"); err != nil {
		t.Fatal(err)
	}
	out, err = m.Execute("info snapshots")
	if err != nil || !strings.Contains(out, "pre-audit") {
		t.Fatalf("list: %q %v", out, err)
	}
	if _, err := vm.RAM().Write(0, 0xAA); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Execute("loadvm pre-audit"); err != nil {
		t.Fatal(err)
	}
	if vm.RAM().MustRead(0) == 0xAA {
		t.Fatal("loadvm did not restore")
	}
	if _, err := m.Execute("delvm pre-audit"); err != nil {
		t.Fatal(err)
	}
	if len(vm.Snapshots()) != 0 {
		t.Fatal("delvm left snapshot")
	}
	for _, bad := range []string{"savevm", "loadvm", "delvm"} {
		if _, err := m.Execute(bad); !errors.Is(err, ErrUnknownCommand) {
			t.Fatalf("%q err = %v", bad, err)
		}
	}
}

func TestSnapshotDetachesSharing(t *testing.T) {
	// Restoring over a KSM-merged page must break sharing correctly.
	vm := runningVM(t)
	if err := vm.SaveSnapshot("s"); err != nil {
		t.Fatal(err)
	}
	// Sharing-specific behaviour is covered by mem tests; here we only
	// assert the write-through path is used: contents match the snapshot
	// after a divergence.
	if _, err := vm.RAM().Write(3, 0x7); err != nil {
		t.Fatal(err)
	}
	if err := vm.LoadSnapshot("s"); err != nil {
		t.Fatal(err)
	}
	snaps := vm.Snapshots()
	if len(snaps) != 1 || snaps[0].Name != "s" {
		t.Fatalf("snapshots = %v", snaps)
	}
}
