package qemu

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/sim"
)

func newVM(t *testing.T, name string) (*sim.Engine, *VM) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig(name)
	cfg.MemoryMB = 8 // keep test RAM small
	return eng, NewVM(eng, cfg, cpu.DefaultModel(), cpu.L1, name+".nic")
}

func bootVM(t *testing.T, eng *sim.Engine, vm *VM) {
	t.Helper()
	if err := vm.Boot(10*time.Second, rand.New(rand.NewSource(1)), 0.3); err != nil {
		t.Fatal(err)
	}
}

func TestVMLifecycle(t *testing.T) {
	eng, vm := newVM(t, "guest0")
	if vm.State() != StateCreated {
		t.Fatalf("state = %v", vm.State())
	}
	bootVM(t, eng, vm)
	if !vm.Running() {
		t.Fatalf("state after boot = %v", vm.State())
	}
	if eng.Now() != 10*time.Second {
		t.Fatalf("boot took %v", eng.Now())
	}
	if err := vm.Pause(); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StatePaused {
		t.Fatalf("state = %v", vm.State())
	}
	if err := vm.Resume(); err != nil {
		t.Fatal(err)
	}
	if !vm.Running() {
		t.Fatal("not running after resume")
	}
	if err := vm.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateShutOff {
		t.Fatalf("state = %v", vm.State())
	}
	if err := vm.Shutdown(); !errors.Is(err, ErrBadState) {
		t.Fatalf("double shutdown err = %v", err)
	}
}

func TestVMStateErrors(t *testing.T) {
	eng, vm := newVM(t, "g")
	if err := vm.Pause(); !errors.Is(err, ErrBadState) {
		t.Fatalf("pause before boot err = %v", err)
	}
	if err := vm.Resume(); !errors.Is(err, ErrBadState) {
		t.Fatalf("resume before boot err = %v", err)
	}
	bootVM(t, eng, vm)
	if err := vm.Boot(time.Second, rand.New(rand.NewSource(1)), 0.3); !errors.Is(err, ErrBadState) {
		t.Fatalf("double boot err = %v", err)
	}
	if err := vm.FinishIncoming(); !errors.Is(err, ErrBadState) {
		t.Fatalf("FinishIncoming on running err = %v", err)
	}
}

func TestIncomingVMBootsPausedAndEmpty(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig("dst")
	cfg.MemoryMB = 8
	cfg.Incoming = "tcp:0.0.0.0:4444"
	vm := NewVM(eng, cfg, cpu.DefaultModel(), cpu.L1, "dst.nic")
	bootVM(t, eng, vm)
	if vm.State() != StateIncoming {
		t.Fatalf("state = %v", vm.State())
	}
	// RAM must not be populated: it arrives via migration.
	for p := 0; p < vm.RAM().NumPages(); p++ {
		if vm.RAM().MustRead(p) != 0 {
			t.Fatal("incoming VM has populated RAM")
		}
	}
	if err := vm.FinishIncoming(); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StatePaused {
		t.Fatalf("state after finish = %v", vm.State())
	}
	if err := vm.Resume(); err != nil {
		t.Fatal(err)
	}
	if !vm.Running() {
		t.Fatal("not running")
	}
}

func TestBootPopulatesRAM(t *testing.T) {
	eng, vm := newVM(t, "g")
	bootVM(t, eng, vm)
	nonzero := 0
	for p := 0; p < vm.RAM().NumPages(); p++ {
		if vm.RAM().MustRead(p) != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("boot left RAM all zero")
	}
	if vm.RAM().DirtyCount() != 0 {
		t.Fatal("boot left dirty log set")
	}
}

func TestBlockStats(t *testing.T) {
	_, vm := newVM(t, "g")
	vm.RecordBlockIO(0, 100, 200, 1, 2)
	vm.RecordBlockIO(0, 10, 20, 1, 1)
	st, ok := vm.BlockStatsFor(0)
	if !ok {
		t.Fatal("drive 0 missing")
	}
	if st.RdBytes != 110 || st.WrBytes != 220 || st.RdOps != 2 || st.WrOps != 3 {
		t.Fatalf("stats = %+v", st)
	}
	vm.RecordBlockIO(5, 1, 1, 1, 1) // ignored
	if _, ok := vm.BlockStatsFor(5); ok {
		t.Fatal("phantom drive")
	}
}

func TestAccessors(t *testing.T) {
	eng, vm := newVM(t, "guest0")
	if vm.Name() != "guest0" || vm.Endpoint() != "guest0.nic" {
		t.Fatalf("name/endpoint = %q/%q", vm.Name(), vm.Endpoint())
	}
	if vm.Level() != cpu.L1 {
		t.Fatalf("level = %v", vm.Level())
	}
	if vm.Engine() != eng {
		t.Fatal("engine mismatch")
	}
	vm.SetPID(4242)
	if vm.PID() != 4242 {
		t.Fatalf("pid = %d", vm.PID())
	}
	// Config is a copy.
	c := vm.Config()
	c.MemoryMB = 9999
	if vm.Config().MemoryMB == 9999 {
		t.Fatal("Config returned live reference")
	}
	if vm.RAM().SizeBytes() != 8<<20 {
		t.Fatalf("ram size = %d", vm.RAM().SizeBytes())
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateCreated:  "created",
		StateRunning:  "running",
		StatePaused:   "paused",
		StateIncoming: "paused (inmigrate)",
		StateShutOff:  "shut off",
		State(99):     "state(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("State(%d) = %q, want %q", int(s), got, want)
		}
	}
}
