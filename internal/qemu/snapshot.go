package qemu

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"cloudskulk/internal/mem"
)

// Snapshot errors.
var (
	ErrNoSnapshot  = errors.New("qemu: no such snapshot")
	ErrSnapshotDup = errors.New("qemu: snapshot already exists")
)

// Snapshot is a savevm checkpoint: full RAM contents plus run state.
type Snapshot struct {
	Name    string
	TakenAt time.Duration
	state   State
	ram     []mem.Content
}

// SaveSnapshot checkpoints a running or paused guest under the given name
// (the monitor's savevm).
func (v *VM) SaveSnapshot(name string) error {
	if v.state != StateRunning && v.state != StatePaused {
		return fmt.Errorf("%w: savevm from %v", ErrBadState, v.state)
	}
	if name == "" {
		return fmt.Errorf("%w: empty snapshot name", ErrNoSnapshot)
	}
	if _, dup := v.snapshots[name]; dup {
		return fmt.Errorf("%w: %q", ErrSnapshotDup, name)
	}
	if v.snapshots == nil {
		v.snapshots = make(map[string]*Snapshot)
	}
	v.snapshots[name] = &Snapshot{
		Name:    name,
		TakenAt: v.eng.Now(),
		state:   v.state,
		ram:     v.ram.Snapshot(),
	}
	return nil
}

// LoadSnapshot restores a checkpoint (the monitor's loadvm): RAM contents
// and run state return to the snapshot's. Restoration writes through the
// memory layer, so KSM sharing detaches correctly.
func (v *VM) LoadSnapshot(name string) error {
	if v.state != StateRunning && v.state != StatePaused {
		return fmt.Errorf("%w: loadvm from %v", ErrBadState, v.state)
	}
	snap, ok := v.snapshots[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSnapshot, name)
	}
	for p, c := range snap.ram {
		if _, err := v.ram.Write(p, c); err != nil {
			return err
		}
	}
	v.ram.ClearDirty()
	v.state = snap.state
	return nil
}

// DeleteSnapshot removes a checkpoint (the monitor's delvm).
func (v *VM) DeleteSnapshot(name string) error {
	if _, ok := v.snapshots[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSnapshot, name)
	}
	delete(v.snapshots, name)
	return nil
}

// Snapshots lists checkpoints sorted by name.
func (v *VM) Snapshots() []*Snapshot {
	out := make([]*Snapshot, 0, len(v.snapshots))
	for _, s := range v.snapshots {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
