package qemu

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"cloudskulk/internal/mem"
)

// Snapshot errors.
var (
	ErrNoSnapshot  = errors.New("qemu: no such snapshot")
	ErrSnapshotDup = errors.New("qemu: snapshot already exists")
)

// Snapshot is a savevm checkpoint: full RAM contents plus run state.
type Snapshot struct {
	Name    string
	TakenAt time.Duration
	state   State
	ram     []mem.Content
	// hash is the RAM's content hash at save time, so a later restore can
	// decide "nothing changed" in O(1) instead of diffing page contents.
	hash uint64
}

// equalRAM reports whether the space's logical contents still match the
// checkpoint, without allocating a second snapshot to compare against.
func (s *Snapshot) equalRAM(ram *mem.Space) bool {
	if ram.NumPages() != len(s.ram) {
		return false
	}
	for p, c := range s.ram {
		if ram.MustRead(p) != c {
			return false
		}
	}
	return true
}

// SaveSnapshot checkpoints a running or paused guest under the given name
// (the monitor's savevm).
func (v *VM) SaveSnapshot(name string) error {
	if v.state != StateRunning && v.state != StatePaused {
		return fmt.Errorf("%w: savevm from %v", ErrBadState, v.state)
	}
	if name == "" {
		return fmt.Errorf("%w: empty snapshot name", ErrNoSnapshot)
	}
	if _, dup := v.snapshots[name]; dup {
		return fmt.Errorf("%w: %q", ErrSnapshotDup, name)
	}
	if v.snapshots == nil {
		v.snapshots = make(map[string]*Snapshot)
	}
	v.snapshots[name] = &Snapshot{
		Name:    name,
		TakenAt: v.eng.Now(),
		state:   v.state,
		ram:     v.ram.Snapshot(),
		hash:    v.ram.ContentHash(),
	}
	return nil
}

// LoadSnapshot restores a checkpoint (the monitor's loadvm): RAM contents
// and run state return to the snapshot's. Restoration writes through the
// memory layer, so KSM sharing detaches correctly.
func (v *VM) LoadSnapshot(name string) error {
	if v.state != StateRunning && v.state != StatePaused {
		return fmt.Errorf("%w: loadvm from %v", ErrBadState, v.state)
	}
	snap, ok := v.snapshots[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSnapshot, name)
	}
	// Equality gate: when RAM still matches the checkpoint (O(1) hash
	// reject for the common "something changed" case, read-only verify on
	// a hash match) there is nothing to write back, so the restore skips
	// the page-store loop and its COW breaks entirely.
	if v.ram.ContentHash() != snap.hash || !snap.equalRAM(v.ram) {
		for p, c := range snap.ram {
			if _, err := v.ram.Write(p, c); err != nil {
				return err
			}
		}
	}
	v.ram.ClearDirty()
	v.state = snap.state
	return nil
}

// DeleteSnapshot removes a checkpoint (the monitor's delvm).
func (v *VM) DeleteSnapshot(name string) error {
	if _, ok := v.snapshots[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSnapshot, name)
	}
	delete(v.snapshots, name)
	return nil
}

// Snapshots lists checkpoints sorted by name.
func (v *VM) Snapshots() []*Snapshot {
	out := make([]*Snapshot, 0, len(v.snapshots))
	for _, s := range v.snapshots {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
