package qemu

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/sim"
)

func runningVM(t *testing.T) *VM {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := DefaultConfig("guest0")
	cfg.MemoryMB = 8
	cfg.NetDevs[0].HostFwds = []FwdRule{{2222, 22}}
	vm := NewVM(eng, cfg, cpu.DefaultModel(), cpu.L1, "guest0.nic")
	if err := vm.Boot(time.Second, rand.New(rand.NewSource(1)), 0.3); err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestMonitorInfoStatus(t *testing.T) {
	vm := runningVM(t)
	m := vm.Monitor()
	out, err := m.Execute("info status")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "running") {
		t.Fatalf("status = %q", out)
	}
	if _, err := m.Execute("stop"); err != nil {
		t.Fatal(err)
	}
	out, _ = m.Execute("info status")
	if !strings.Contains(out, "paused") {
		t.Fatalf("status = %q", out)
	}
	if _, err := m.Execute("cont"); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorReconCommands(t *testing.T) {
	vm := runningVM(t)
	m := vm.Monitor()
	tests := []struct {
		cmd  string
		want []string
	}{
		{"info qtree", []string{"virtio-net-pci", "virtio-blk-pci", "guest0.qcow2", "pci.0"}},
		{"info mtree", []string{"pc.ram", "pc.bios"}},
		{"info mem", []string{"total pages: 2048", "8 MB"}},
		{"info blockstats", []string{"drive0:", "rd_bytes=0"}},
		{"info network", []string{"virtio-net-pci", "tcp::2222 -> :22"}},
		{"info name", []string{"guest0"}},
		{"info migrate", []string{"no migration in progress"}},
		{"help", []string{"migrate", "info qtree"}},
	}
	for _, tt := range tests {
		out, err := m.Execute(tt.cmd)
		if err != nil {
			t.Fatalf("%s: %v", tt.cmd, err)
		}
		for _, w := range tt.want {
			if !strings.Contains(out, w) {
				t.Fatalf("%s output missing %q:\n%s", tt.cmd, w, out)
			}
		}
	}
}

func TestMonitorBlockstatsReflectIO(t *testing.T) {
	vm := runningVM(t)
	vm.RecordBlockIO(0, 4096, 8192, 1, 2)
	out, err := vm.Monitor().Execute("info blockstats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rd_bytes=4096") || !strings.Contains(out, "wr_bytes=8192") {
		t.Fatalf("blockstats = %q", out)
	}
}

func TestMonitorUnknownCommands(t *testing.T) {
	vm := runningVM(t)
	m := vm.Monitor()
	for _, cmd := range []string{"bogus", "info bogus", "info", "migrate_set_speed"} {
		if _, err := m.Execute(cmd); !errors.Is(err, ErrUnknownCommand) {
			t.Fatalf("%q err = %v, want ErrUnknownCommand", cmd, err)
		}
	}
	if out, err := m.Execute(""); err != nil || out != "" {
		t.Fatalf("empty line: out=%q err=%v", out, err)
	}
}

func TestMonitorMigrateSetSpeed(t *testing.T) {
	vm := runningVM(t)
	m := vm.Monitor()
	if m.SpeedLimit() != DefaultMigrationSpeed {
		t.Fatalf("default speed = %d", m.SpeedLimit())
	}
	cases := []struct {
		arg  string
		want int64
	}{
		{"1g", 1 << 30},
		{"32m", 32 << 20},
		{"512k", 512 << 10},
		{"1048576", 1 << 20},
		{"2G", 2 << 30},
	}
	for _, tt := range cases {
		if _, err := m.Execute("migrate_set_speed " + tt.arg); err != nil {
			t.Fatal(err)
		}
		if m.SpeedLimit() != tt.want {
			t.Fatalf("speed after %q = %d, want %d", tt.arg, m.SpeedLimit(), tt.want)
		}
	}
	if _, err := m.Execute("migrate_set_speed lots"); err == nil {
		t.Fatal("bad size accepted")
	}
}

type fakeMigrator struct {
	vm  *VM
	uri string
	err error
}

func (f *fakeMigrator) Migrate(vm *VM, uri string) error {
	f.vm, f.uri = vm, uri
	return f.err
}

func TestMonitorMigrateDispatch(t *testing.T) {
	vm := runningVM(t)
	m := vm.Monitor()
	if _, err := m.Execute("migrate tcp:127.0.0.1:4444"); !errors.Is(err, ErrNoMigrator) {
		t.Fatalf("no-migrator err = %v", err)
	}
	fm := &fakeMigrator{}
	vm.SetMigrator(fm)
	if _, err := m.Execute("migrate -d tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	if fm.vm != vm || fm.uri != "tcp:127.0.0.1:4444" {
		t.Fatalf("migrator got vm=%v uri=%q", fm.vm, fm.uri)
	}
	if _, err := m.Execute("migrate -d"); !errors.Is(err, ErrUnknownCommand) {
		t.Fatalf("missing uri err = %v", err)
	}
	fm.err = errors.New("boom")
	if _, err := m.Execute("migrate tcp:x"); err == nil {
		t.Fatal("migrator error swallowed")
	}
}

func TestMonitorQuitShutsDown(t *testing.T) {
	vm := runningVM(t)
	if _, err := vm.Monitor().Execute("quit"); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateShutOff {
		t.Fatalf("state = %v", vm.State())
	}
}

func TestMonitorSystemPowerdown(t *testing.T) {
	vm := runningVM(t)
	if _, err := vm.Monitor().Execute("system_powerdown"); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateShutOff {
		t.Fatalf("state = %v", vm.State())
	}
}

func TestMonitorIsSingleton(t *testing.T) {
	vm := runningVM(t)
	if vm.Monitor() != vm.Monitor() {
		t.Fatal("Monitor() returned different instances")
	}
	if vm.Monitor().VM() != vm {
		t.Fatal("monitor VM mismatch")
	}
}

// TestMonitorServe drives a full telnet-style session over a net.Pipe, the
// way the attacker opens the victim's multiplexed monitor.
func TestMonitorServe(t *testing.T) {
	vm := runningVM(t)
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- vm.Monitor().Serve(server) }()

	r := bufio.NewReader(client)
	readTo := func(marker string) string {
		var b strings.Builder
		buf := make([]byte, 1)
		for !strings.HasSuffix(b.String(), marker) {
			if _, err := r.Read(buf); err != nil {
				t.Fatalf("read: %v (so far %q)", err, b.String())
			}
			b.Write(buf)
		}
		return b.String()
	}

	greeting := readTo("(qemu) ")
	if !strings.Contains(greeting, "QEMU 2.9.50 monitor") {
		t.Fatalf("greeting = %q", greeting)
	}
	fmt.Fprintf(client, "info status\n")
	out := readTo("(qemu) ")
	if !strings.Contains(out, "VM status: running") {
		t.Fatalf("info status over pipe = %q", out)
	}
	fmt.Fprintf(client, "not-a-command\n")
	out = readTo("(qemu) ")
	if !strings.Contains(out, "unknown monitor command") {
		t.Fatalf("error not reported to session: %q", out)
	}
	fmt.Fprintf(client, "quit\n")
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if vm.State() != StateShutOff {
		t.Fatalf("state after quit = %v", vm.State())
	}
	_ = client.Close()
}
