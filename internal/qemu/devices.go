package qemu

import (
	"fmt"
	"strings"
)

// renderQtree produces the `info qtree` view: the emulated device tree an
// attacker reads to learn what devices the destination VM must replicate.
func renderQtree(cfg Config) string {
	var b strings.Builder
	b.WriteString("bus: main-system-bus\n")
	b.WriteString("  type System\n")
	fmt.Fprintf(&b, "  dev: i440FX-pcihost, id \"\"\n")
	b.WriteString("    bus: pci.0\n")
	b.WriteString("      type PCI\n")
	for i, nd := range cfg.NetDevs {
		fmt.Fprintf(&b, "      dev: %s, id \"net%d\"\n", nd.Model, i)
		fmt.Fprintf(&b, "        mac = \"52:54:00:12:34:%02x\"\n", 0x56+i)
		fmt.Fprintf(&b, "        netdev = \"net%d\"\n", i)
	}
	for i, d := range cfg.Drives {
		fmt.Fprintf(&b, "      dev: virtio-blk-pci, id \"drive%d\"\n", i)
		fmt.Fprintf(&b, "        drive = \"%s\"\n", d.File)
		fmt.Fprintf(&b, "        logical_block_size = 512\n")
	}
	return b.String()
}

// renderMtree produces the `info mtree` view: the guest-physical memory
// map, which reveals the VM's RAM size.
func renderMtree(cfg Config) string {
	var b strings.Builder
	ramBytes := cfg.MemoryMB << 20
	b.WriteString("memory\n")
	fmt.Fprintf(&b, "  0000000000000000-%016x (prio 0, ram): pc.ram\n", ramBytes-1)
	b.WriteString("  00000000fffc0000-00000000ffffffff (prio 0, rom): pc.bios\n")
	return b.String()
}

// renderMem produces the `info mem` view: a summary of active mappings.
func renderMem(vm *VM) string {
	var b strings.Builder
	total := vm.RAM().NumPages()
	dirty := vm.RAM().DirtyCount()
	fmt.Fprintf(&b, "total pages: %d (%d MB)\n", total, vm.Config().MemoryMB)
	fmt.Fprintf(&b, "dirty pages: %d\n", dirty)
	return b.String()
}

// renderNetwork produces the `info network` view, exposing device models
// and host-forwarding rules.
func renderNetwork(cfg Config) string {
	var b strings.Builder
	for i, nd := range cfg.NetDevs {
		fmt.Fprintf(&b, "net%d: model=%s\n", i, nd.Model)
		for _, f := range nd.HostFwds {
			fmt.Fprintf(&b, "  hostfwd: tcp::%d -> :%d\n", f.HostPort, f.GuestPort)
		}
	}
	return b.String()
}

// renderMigrate produces the `info migrate` view.
func renderMigrate(mi MigrationInfo) string {
	if mi.Status == "" {
		return "no migration in progress\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Migration status: %s\n", mi.Status)
	fmt.Fprintf(&b, "transferred ram: %.0f MB\n", mi.TransferredMB)
	fmt.Fprintf(&b, "remaining ram: %.0f MB\n", mi.RemainingMB)
	fmt.Fprintf(&b, "total ram: %.0f MB\n", mi.TotalMB)
	fmt.Fprintf(&b, "iterations: %d\n", mi.Iterations)
	fmt.Fprintf(&b, "downtime: %d ms\n", mi.Downtime.Milliseconds())
	fmt.Fprintf(&b, "total time: %d ms\n", mi.TotalTime.Milliseconds())
	return b.String()
}
