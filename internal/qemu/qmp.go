package qemu

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
)

// QMP is the QEMU Machine Protocol: the JSON-RPC-style counterpart of the
// human monitor. Management stacks (libvirt) use QMP rather than HMP, so a
// realistic cloud host exposes both; the attacker's recon works over
// either.
//
// Protocol shape (as in real QEMU):
//
//	S: {"QMP": {"version": {...}, "capabilities": []}}
//	C: {"execute": "qmp_capabilities"}
//	S: {"return": {}}
//	C: {"execute": "query-status"}
//	S: {"return": {"status": "running", "running": true}}
//
// Commands before capability negotiation are rejected, as in real QEMU.

// ErrQMPNegotiation is returned when a command arrives before
// qmp_capabilities.
var ErrQMPNegotiation = errors.New("qemu: qmp capabilities not negotiated")

// QMPCommand is a client request.
type QMPCommand struct {
	Execute   string          `json:"execute"`
	Arguments json.RawMessage `json:"arguments,omitempty"`
	ID        any             `json:"id,omitempty"`
}

// QMPError is the error payload of a failed command.
type QMPError struct {
	Class string `json:"class"`
	Desc  string `json:"desc"`
}

// QMPResponse is a server reply.
type QMPResponse struct {
	Return json.RawMessage `json:"return,omitempty"`
	Error  *QMPError       `json:"error,omitempty"`
	ID     any             `json:"id,omitempty"`
}

// QMPGreeting is the banner sent on connect.
type QMPGreeting struct {
	QMP struct {
		Version struct {
			Qemu struct {
				Major int `json:"major"`
				Minor int `json:"minor"`
				Micro int `json:"micro"`
			} `json:"qemu"`
			Package string `json:"package"`
		} `json:"version"`
		Capabilities []string `json:"capabilities"`
	} `json:"QMP"`
}

// QMPServer serves the machine protocol for one VM.
type QMPServer struct {
	vm         *VM
	negotiated bool
}

// QMP returns a fresh protocol server bound to the VM. Each connection
// gets its own server (negotiation state is per-session).
func (v *VM) QMP() *QMPServer {
	return &QMPServer{vm: v}
}

// Greeting returns the connect banner.
func (q *QMPServer) Greeting() QMPGreeting {
	var g QMPGreeting
	g.QMP.Version.Qemu.Major = 2
	g.QMP.Version.Qemu.Minor = 9
	g.QMP.Version.Qemu.Micro = 50
	g.QMP.Version.Package = "v2.9.0-989-g43771d5"
	g.QMP.Capabilities = []string{}
	return g
}

// Execute runs one QMP command and returns the response. It never returns
// a Go error for protocol-level failures — those become QMPError payloads,
// matching the wire behaviour.
func (q *QMPServer) Execute(cmd QMPCommand) QMPResponse {
	resp := QMPResponse{ID: cmd.ID}
	fail := func(desc string) QMPResponse {
		resp.Error = &QMPError{Class: "GenericError", Desc: desc}
		return resp
	}
	ok := func(v any) QMPResponse {
		raw, err := json.Marshal(v)
		if err != nil {
			return fail(err.Error())
		}
		resp.Return = raw
		return resp
	}

	if cmd.Execute != "qmp_capabilities" && !q.negotiated {
		resp.Error = &QMPError{Class: "CommandNotFound", Desc: ErrQMPNegotiation.Error()}
		return resp
	}

	switch cmd.Execute {
	case "qmp_capabilities":
		q.negotiated = true
		return ok(map[string]any{})
	case "query-status":
		return ok(map[string]any{
			"status":  q.vm.State().String(),
			"running": q.vm.Running(),
		})
	case "query-name":
		return ok(map[string]any{"name": q.vm.Name()})
	case "query-block":
		type blockInfo struct {
			Device string `json:"device"`
			File   string `json:"file"`
			Format string `json:"driver"`
			SizeMB int64  `json:"size_mb"`
		}
		cfg := q.vm.Config()
		out := make([]blockInfo, 0, len(cfg.Drives))
		for i, d := range cfg.Drives {
			out = append(out, blockInfo{
				Device: fmt.Sprintf("drive%d", i),
				File:   d.File,
				Format: d.Format,
				SizeMB: d.SizeMB,
			})
		}
		return ok(out)
	case "query-blockstats":
		type stats struct {
			Device string `json:"device"`
			RdB    uint64 `json:"rd_bytes"`
			WrB    uint64 `json:"wr_bytes"`
			RdOps  uint64 `json:"rd_operations"`
			WrOps  uint64 `json:"wr_operations"`
		}
		cfg := q.vm.Config()
		out := make([]stats, 0, len(cfg.Drives))
		for i := range cfg.Drives {
			st, _ := q.vm.BlockStatsFor(i)
			out = append(out, stats{
				Device: fmt.Sprintf("drive%d", i),
				RdB:    st.RdBytes, WrB: st.WrBytes,
				RdOps: st.RdOps, WrOps: st.WrOps,
			})
		}
		return ok(out)
	case "query-memory-size-summary":
		return ok(map[string]any{
			"base-memory": q.vm.Config().MemoryMB << 20,
		})
	case "query-migrate":
		mi := q.vm.MigrationStatus()
		status := mi.Status
		if status == "" {
			status = "none"
		}
		return ok(map[string]any{
			"status": status,
			"ram": map[string]any{
				"transferred": int64(mi.TransferredMB * (1 << 20)),
				"remaining":   int64(mi.RemainingMB * (1 << 20)),
				"total":       int64(mi.TotalMB * (1 << 20)),
			},
			"downtime":   mi.Downtime.Milliseconds(),
			"total-time": mi.TotalTime.Milliseconds(),
		})
	case "stop":
		if err := q.vm.Pause(); err != nil {
			return fail(err.Error())
		}
		return ok(map[string]any{})
	case "cont":
		if err := q.vm.Resume(); err != nil {
			return fail(err.Error())
		}
		return ok(map[string]any{})
	case "quit":
		if err := q.vm.Shutdown(); err != nil {
			return fail(err.Error())
		}
		return ok(map[string]any{})
	case "migrate":
		var args struct {
			URI string `json:"uri"`
		}
		if err := json.Unmarshal(cmd.Arguments, &args); err != nil || args.URI == "" {
			return fail("migrate requires a uri argument")
		}
		if q.vm.migrator == nil {
			return fail(ErrNoMigrator.Error())
		}
		if err := q.vm.migrator.Migrate(q.vm, args.URI); err != nil {
			return fail(err.Error())
		}
		return ok(map[string]any{})
	case "migrate_set_speed":
		var args struct {
			Value int64 `json:"value"`
		}
		if err := json.Unmarshal(cmd.Arguments, &args); err != nil || args.Value <= 0 {
			return fail("migrate_set_speed requires a positive value")
		}
		q.vm.Monitor().speedLimit = args.Value
		return ok(map[string]any{})
	default:
		resp.Error = &QMPError{
			Class: "CommandNotFound",
			Desc:  fmt.Sprintf("The command %s has not been found", cmd.Execute),
		}
		return resp
	}
}

// Serve runs a QMP session over conn: banner, then line-delimited JSON
// commands until EOF or quit.
func (q *QMPServer) Serve(conn net.Conn) error {
	defer func() { _ = conn.Close() }()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(q.Greeting()); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var cmd QMPCommand
		if err := json.Unmarshal(line, &cmd); err != nil {
			if err := enc.Encode(QMPResponse{Error: &QMPError{
				Class: "GenericError",
				Desc:  "invalid JSON: " + err.Error(),
			}}); err != nil {
				return err
			}
			continue
		}
		resp := q.Execute(cmd)
		if err := enc.Encode(resp); err != nil {
			return err
		}
		if cmd.Execute == "quit" && resp.Error == nil {
			return nil
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.ErrClosedPipe) {
		return err
	}
	return nil
}
