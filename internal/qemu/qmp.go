package qemu

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
)

// QMP is the QEMU Machine Protocol: the JSON-RPC-style counterpart of the
// human monitor. Management stacks (libvirt) use QMP rather than HMP, so a
// realistic cloud host exposes both; the attacker's recon works over
// either.
//
// Protocol shape (as in real QEMU):
//
//	S: {"QMP": {"version": {...}, "capabilities": []}}
//	C: {"execute": "qmp_capabilities"}
//	S: {"return": {}}
//	C: {"execute": "query-status"}
//	S: {"return": {"status": "running", "running": true}}
//
// Commands before capability negotiation are rejected, as in real QEMU.
//
// Command semantics live in the shared registry (commands.go); QMPServer
// is only the QMP front-end: JSON framing, capability negotiation, id
// echo, and error payloads.

// ErrQMPNegotiation is returned when a command arrives before
// qmp_capabilities.
var ErrQMPNegotiation = errors.New("qemu: qmp capabilities not negotiated")

// QMPCommand is a client request.
type QMPCommand struct {
	Execute   string          `json:"execute"`
	Arguments json.RawMessage `json:"arguments,omitempty"`
	ID        any             `json:"id,omitempty"`
}

// QMPError is the error payload of a failed command.
type QMPError struct {
	Class string `json:"class"`
	Desc  string `json:"desc"`
}

// QMPResponse is a server reply.
type QMPResponse struct {
	Return json.RawMessage `json:"return,omitempty"`
	Error  *QMPError       `json:"error,omitempty"`
	ID     any             `json:"id,omitempty"`
}

// QMPGreeting is the banner sent on connect.
type QMPGreeting struct {
	QMP struct {
		Version struct {
			Qemu struct {
				Major int `json:"major"`
				Minor int `json:"minor"`
				Micro int `json:"micro"`
			} `json:"qemu"`
			Package string `json:"package"`
		} `json:"version"`
		Capabilities []string `json:"capabilities"`
	} `json:"QMP"`
}

// QMPServer serves the machine protocol for one VM.
type QMPServer struct {
	vm         *VM
	negotiated bool
}

// QMP returns a fresh protocol server bound to the VM. Each connection
// gets its own server (negotiation state is per-session).
func (v *VM) QMP() *QMPServer {
	return &QMPServer{vm: v}
}

// Greeting returns the connect banner.
func (q *QMPServer) Greeting() QMPGreeting {
	var g QMPGreeting
	g.QMP.Version.Qemu.Major = 2
	g.QMP.Version.Qemu.Minor = 9
	g.QMP.Version.Qemu.Micro = 50
	g.QMP.Version.Package = "v2.9.0-989-g43771d5"
	g.QMP.Capabilities = []string{}
	return g
}

// Execute runs one QMP command and returns the response. It never returns
// a Go error for protocol-level failures — those become QMPError payloads,
// matching the wire behaviour.
func (q *QMPServer) Execute(cmd QMPCommand) QMPResponse {
	resp := QMPResponse{ID: cmd.ID}
	fail := func(e *QMPError) QMPResponse {
		resp.Error = e
		return resp
	}

	// Capability negotiation is session state, not command semantics, so
	// it is handled here rather than in the registry.
	if cmd.Execute == "qmp_capabilities" {
		q.negotiated = true
		resp.Return = json.RawMessage(`{}`)
		return resp
	}
	if !q.negotiated {
		return fail(&QMPError{Class: "CommandNotFound", Desc: ErrQMPNegotiation.Error()})
	}

	payload, qerr := dispatchQMP(q.vm.Monitor(), cmd.Execute, cmd.Arguments)
	if qerr != nil {
		return fail(qerr)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fail(&QMPError{Class: "GenericError", Desc: err.Error()})
	}
	resp.Return = raw
	return resp
}

// Serve runs a QMP session over conn: banner, then line-delimited JSON
// commands until EOF or quit.
func (q *QMPServer) Serve(conn net.Conn) error {
	defer func() { _ = conn.Close() }()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(q.Greeting()); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var cmd QMPCommand
		if err := json.Unmarshal(line, &cmd); err != nil {
			if err := enc.Encode(QMPResponse{Error: &QMPError{
				Class: "GenericError",
				Desc:  "invalid JSON: " + err.Error(),
			}}); err != nil {
				return err
			}
			continue
		}
		resp := q.Execute(cmd)
		if err := enc.Encode(resp); err != nil {
			return err
		}
		if cmd.Execute == "quit" && resp.Error == nil {
			return nil
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.ErrClosedPipe) {
		return err
	}
	return nil
}
