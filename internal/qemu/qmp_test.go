package qemu

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
)

func qmpExec(t *testing.T, q *QMPServer, execute string, args string) QMPResponse {
	t.Helper()
	cmd := QMPCommand{Execute: execute}
	if args != "" {
		cmd.Arguments = json.RawMessage(args)
	}
	return q.Execute(cmd)
}

func negotiate(t *testing.T, q *QMPServer) {
	t.Helper()
	if resp := qmpExec(t, q, "qmp_capabilities", ""); resp.Error != nil {
		t.Fatalf("negotiation failed: %+v", resp.Error)
	}
}

func TestQMPRequiresNegotiation(t *testing.T) {
	vm := runningVM(t)
	q := vm.QMP()
	resp := qmpExec(t, q, "query-status", "")
	if resp.Error == nil || resp.Error.Class != "CommandNotFound" {
		t.Fatalf("pre-negotiation command: %+v", resp)
	}
	negotiate(t, q)
	if resp := qmpExec(t, q, "query-status", ""); resp.Error != nil {
		t.Fatalf("post-negotiation command: %+v", resp.Error)
	}
}

func TestQMPQueryCommands(t *testing.T) {
	vm := runningVM(t)
	vm.RecordBlockIO(0, 111, 222, 3, 4)
	q := vm.QMP()
	negotiate(t, q)

	var status struct {
		Status  string `json:"status"`
		Running bool   `json:"running"`
	}
	resp := qmpExec(t, q, "query-status", "")
	if err := json.Unmarshal(resp.Return, &status); err != nil {
		t.Fatal(err)
	}
	if !status.Running || status.Status != "running" {
		t.Fatalf("status = %+v", status)
	}

	var name struct {
		Name string `json:"name"`
	}
	resp = qmpExec(t, q, "query-name", "")
	if err := json.Unmarshal(resp.Return, &name); err != nil {
		t.Fatal(err)
	}
	if name.Name != "guest0" {
		t.Fatalf("name = %+v", name)
	}

	var blocks []struct {
		Device string `json:"device"`
		File   string `json:"file"`
		Driver string `json:"driver"`
	}
	resp = qmpExec(t, q, "query-block", "")
	if err := json.Unmarshal(resp.Return, &blocks); err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0].File != "guest0.qcow2" || blocks[0].Driver != "qcow2" {
		t.Fatalf("blocks = %+v", blocks)
	}

	var bstats []struct {
		RdB uint64 `json:"rd_bytes"`
		WrB uint64 `json:"wr_bytes"`
	}
	resp = qmpExec(t, q, "query-blockstats", "")
	if err := json.Unmarshal(resp.Return, &bstats); err != nil {
		t.Fatal(err)
	}
	if bstats[0].RdB != 111 || bstats[0].WrB != 222 {
		t.Fatalf("blockstats = %+v", bstats)
	}

	var memory struct {
		Base int64 `json:"base-memory"`
	}
	resp = qmpExec(t, q, "query-memory-size-summary", "")
	if err := json.Unmarshal(resp.Return, &memory); err != nil {
		t.Fatal(err)
	}
	if memory.Base != 8<<20 {
		t.Fatalf("memory = %+v", memory)
	}

	var mig struct {
		Status string `json:"status"`
	}
	resp = qmpExec(t, q, "query-migrate", "")
	if err := json.Unmarshal(resp.Return, &mig); err != nil {
		t.Fatal(err)
	}
	if mig.Status != "none" {
		t.Fatalf("migrate = %+v", mig)
	}
}

func TestQMPLifecycleCommands(t *testing.T) {
	vm := runningVM(t)
	q := vm.QMP()
	negotiate(t, q)
	if resp := qmpExec(t, q, "stop", ""); resp.Error != nil {
		t.Fatalf("stop: %+v", resp.Error)
	}
	if vm.State() != StatePaused {
		t.Fatalf("state = %v", vm.State())
	}
	// Double stop fails with a GenericError, not a panic.
	if resp := qmpExec(t, q, "stop", ""); resp.Error == nil {
		t.Fatal("double stop succeeded")
	}
	if resp := qmpExec(t, q, "cont", ""); resp.Error != nil {
		t.Fatalf("cont: %+v", resp.Error)
	}
	if resp := qmpExec(t, q, "quit", ""); resp.Error != nil {
		t.Fatalf("quit: %+v", resp.Error)
	}
	if vm.State() != StateShutOff {
		t.Fatalf("state = %v", vm.State())
	}
}

func TestQMPMigrate(t *testing.T) {
	vm := runningVM(t)
	fm := &fakeMigrator{}
	vm.SetMigrator(fm)
	q := vm.QMP()
	negotiate(t, q)
	if resp := qmpExec(t, q, "migrate", `{"uri":"tcp:127.0.0.1:4444"}`); resp.Error != nil {
		t.Fatalf("migrate: %+v", resp.Error)
	}
	if fm.uri != "tcp:127.0.0.1:4444" {
		t.Fatalf("migrator uri = %q", fm.uri)
	}
	if resp := qmpExec(t, q, "migrate", `{}`); resp.Error == nil {
		t.Fatal("migrate without uri succeeded")
	}
	if resp := qmpExec(t, q, "migrate_set_speed", `{"value":1073741824}`); resp.Error != nil {
		t.Fatalf("set speed: %+v", resp.Error)
	}
	if vm.Monitor().SpeedLimit() != 1<<30 {
		t.Fatalf("speed = %d", vm.Monitor().SpeedLimit())
	}
	if resp := qmpExec(t, q, "migrate_set_speed", `{"value":-1}`); resp.Error == nil {
		t.Fatal("negative speed accepted")
	}
}

func TestQMPUnknownCommand(t *testing.T) {
	vm := runningVM(t)
	q := vm.QMP()
	negotiate(t, q)
	resp := qmpExec(t, q, "device_add", "")
	if resp.Error == nil || resp.Error.Class != "CommandNotFound" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestQMPIDEcho(t *testing.T) {
	vm := runningVM(t)
	q := vm.QMP()
	resp := q.Execute(QMPCommand{Execute: "qmp_capabilities", ID: "req-7"})
	if resp.ID != "req-7" {
		t.Fatalf("id = %v", resp.ID)
	}
}

func TestQMPServeSession(t *testing.T) {
	vm := runningVM(t)
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- vm.QMP().Serve(server) }()

	r := bufio.NewReader(client)
	readResp := func() QMPResponse {
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		var resp QMPResponse
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatalf("unmarshal %q: %v", line, err)
		}
		return resp
	}
	greetLine, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var greeting QMPGreeting
	if err := json.Unmarshal(greetLine, &greeting); err != nil {
		t.Fatal(err)
	}
	if greeting.QMP.Version.Qemu.Major != 2 || greeting.QMP.Version.Qemu.Minor != 9 {
		t.Fatalf("greeting = %+v", greeting)
	}

	send := func(s string) {
		if _, err := fmt.Fprintln(client, s); err != nil {
			t.Fatal(err)
		}
	}
	send(`{"execute":"qmp_capabilities"}`)
	if resp := readResp(); resp.Error != nil {
		t.Fatalf("caps: %+v", resp.Error)
	}
	send(`{"execute":"query-name"}`)
	if resp := readResp(); !strings.Contains(string(resp.Return), "guest0") {
		t.Fatalf("query-name = %s", resp.Return)
	}
	send(`not json at all`)
	if resp := readResp(); resp.Error == nil || !strings.Contains(resp.Error.Desc, "invalid JSON") {
		t.Fatalf("bad json resp = %+v", resp)
	}
	send(`{"execute":"quit"}`)
	if resp := readResp(); resp.Error != nil {
		t.Fatalf("quit: %+v", resp.Error)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if vm.State() != StateShutOff {
		t.Fatalf("state = %v", vm.State())
	}
	_ = client.Close()
}

func TestQMPPerSessionNegotiation(t *testing.T) {
	vm := runningVM(t)
	a, b := vm.QMP(), vm.QMP()
	negotiate(t, a)
	// Session b is independent and still un-negotiated.
	if resp := qmpExec(t, b, "query-status", ""); resp.Error == nil {
		t.Fatal("negotiation leaked across sessions")
	}
}
