package qemu

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig("guest0")
	if c.Name != "guest0" || c.MemoryMB != 1024 || c.CPUs != 1 || !c.EnableKVM {
		t.Fatalf("default = %+v", c)
	}
	if len(c.Drives) != 1 || len(c.NetDevs) != 1 {
		t.Fatalf("devices = %+v", c)
	}
}

func TestCommandLineRendering(t *testing.T) {
	c := DefaultConfig("guest0")
	c.NetDevs[0].HostFwds = []FwdRule{{HostPort: 2222, GuestPort: 22}}
	c.MonitorPort = 5555
	line := c.CommandLine()
	for _, want := range []string{
		"qemu-system-x86_64",
		"-enable-kvm",
		"-name guest0",
		"-m 1024",
		"-smp 1",
		"file=guest0.qcow2,format=qcow2",
		"hostfwd=tcp::2222-:22",
		"-monitor telnet:127.0.0.1:5555,server,nowait",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("command line missing %q:\n%s", want, line)
		}
	}
	if strings.Contains(line, "-incoming") {
		t.Fatal("unexpected -incoming")
	}
	c.Incoming = "tcp:0.0.0.0:4444"
	if !strings.Contains(c.CommandLine(), "-incoming tcp:0.0.0.0:4444") {
		t.Fatal("missing -incoming")
	}
}

func TestParseCommandLineRoundTrip(t *testing.T) {
	c := DefaultConfig("victim")
	c.NetDevs[0].HostFwds = []FwdRule{{2222, 22}, {8080, 80}}
	c.MonitorPort = 5555
	c.Incoming = "tcp:0.0.0.0:4444"
	got, err := ParseCommandLine(c.CommandLine())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name || got.Machine != c.Machine || got.MemoryMB != c.MemoryMB ||
		got.CPUs != c.CPUs || got.EnableKVM != c.EnableKVM ||
		got.MonitorPort != c.MonitorPort || got.Incoming != c.Incoming {
		t.Fatalf("round trip = %+v, want %+v", got, c)
	}
	if len(got.Drives) != 1 || got.Drives[0] != c.Drives[0] {
		t.Fatalf("drives = %+v", got.Drives)
	}
	if len(got.NetDevs) != 1 || len(got.NetDevs[0].HostFwds) != 2 {
		t.Fatalf("netdevs = %+v", got.NetDevs)
	}
	if got.NetDevs[0].HostFwds[0] != (FwdRule{2222, 22}) {
		t.Fatalf("fwd = %+v", got.NetDevs[0].HostFwds)
	}
}

func TestParseCommandLineErrors(t *testing.T) {
	bad := []string{
		"",
		"ls -la",
		"qemu-system-x86_64 -m notanumber",
		"qemu-system-x86_64 -m",
		"qemu-system-x86_64 -smp x",
		"qemu-system-x86_64 -drive format=qcow2", // no file=
		"qemu-system-x86_64 -netdev user,id=net0,hostfwd=tcp::x-:22 -device virtio",
	}
	for _, line := range bad {
		if _, err := ParseCommandLine(line); !errors.Is(err, ErrBadCommandLine) {
			t.Fatalf("ParseCommandLine(%q) err = %v, want ErrBadCommandLine", line, err)
		}
	}
}

func TestParseCommandLineDefaults(t *testing.T) {
	c, err := ParseCommandLine("qemu-system-x86_64 -name tiny")
	if err != nil {
		t.Fatal(err)
	}
	if c.MemoryMB != 128 || c.CPUs != 1 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestParseCommandLineSkipsUnknownFlags(t *testing.T) {
	c, err := ParseCommandLine("qemu-system-x86_64 -nographic -name x -vga std -m 512")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "x" || c.MemoryMB != 512 {
		t.Fatalf("parsed = %+v", c)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := DefaultConfig("a")
	c.NetDevs[0].HostFwds = []FwdRule{{1, 2}}
	d := c.Clone()
	d.Drives[0].File = "other.img"
	d.NetDevs[0].HostFwds[0].HostPort = 99
	if c.Drives[0].File != "a.qcow2" {
		t.Fatal("drive mutation leaked")
	}
	if c.NetDevs[0].HostFwds[0].HostPort != 1 {
		t.Fatal("fwd mutation leaked")
	}
}

func TestMatchesForMigration(t *testing.T) {
	src := DefaultConfig("src")
	dst := DefaultConfig("dst")
	dst.Incoming = "tcp:0.0.0.0:4444"
	if err := src.MatchesForMigration(dst); err != nil {
		t.Fatalf("matching configs rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Machine = "q35" },
		func(c *Config) { c.MemoryMB = 2048 },
		func(c *Config) { c.CPUs = 4 },
		func(c *Config) { c.Drives = nil },
		func(c *Config) { c.Drives[0].Format = "raw" },
		func(c *Config) { c.NetDevs = nil },
		func(c *Config) { c.NetDevs[0].Model = "e1000" },
	}
	for i, mutate := range cases {
		bad := DefaultConfig("dst")
		mutate(&bad)
		if err := src.MatchesForMigration(bad); err == nil {
			t.Fatalf("case %d: mismatch accepted", i)
		}
	}
}

func TestParseIncomingPort(t *testing.T) {
	p, err := ParseIncomingPort("tcp:0.0.0.0:4444")
	if err != nil || p != 4444 {
		t.Fatalf("p=%d err=%v", p, err)
	}
	if _, err := ParseIncomingPort("exec:cat"); !errors.Is(err, ErrBadCommandLine) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseIncomingPort("tcp:0.0.0.0:nope"); !errors.Is(err, ErrBadCommandLine) {
		t.Fatalf("err = %v", err)
	}
}

// Property: any generated config round-trips through
// CommandLine -> ParseCommandLine with migration-relevant fields intact.
func TestCommandLineRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(memMB uint16, cpus uint8, nfwd uint8, kvm bool) bool {
		c := DefaultConfig("g")
		c.MemoryMB = int64(memMB)%8192 + 64
		c.CPUs = int(cpus)%8 + 1
		c.EnableKVM = kvm
		n := int(nfwd) % 4
		for i := 0; i < n; i++ {
			c.NetDevs[0].HostFwds = append(c.NetDevs[0].HostFwds, FwdRule{
				HostPort:  1024 + rng.Intn(60000),
				GuestPort: 1 + rng.Intn(1024),
			})
		}
		got, err := ParseCommandLine(c.CommandLine())
		if err != nil {
			return false
		}
		// hostfwds render sorted by host port; compare as sets.
		if len(got.NetDevs) != 1 || len(got.NetDevs[0].HostFwds) != n {
			return false
		}
		want := map[FwdRule]bool{}
		for _, fr := range c.NetDevs[0].HostFwds {
			want[fr] = true
		}
		for _, fr := range got.NetDevs[0].HostFwds {
			if !want[fr] {
				return false
			}
		}
		return got.MemoryMB == c.MemoryMB && got.CPUs == c.CPUs &&
			got.EnableKVM == c.EnableKVM &&
			got.MatchesForMigration(c) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
