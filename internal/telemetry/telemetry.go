// Package telemetry is the observability layer of the simulation stack:
// a typed metrics registry (counters, gauges, fixed-bucket histograms),
// span-style structured tracing in virtual time, and deterministic
// exporters (JSON lines, Prometheus-style text, monitor snapshots).
//
// Determinism rules, which every instrumentation site must respect:
//
//   - Counters and histograms are pure sums of atomic increments, so a
//     registry shared by parallel sweep cells reaches the same totals for
//     any worker count or interleaving. All hot-path instrumentation goes
//     through them.
//   - Histograms observe integer units (microseconds, pages, rounds) —
//     never floats, whose addition order would leak scheduling into sums.
//   - Gauges are last-write-wins and therefore reserved for values that
//     are identical no matter which cell writes them (model constants
//     like the exit-reflection multiplier). Anything that varies per cell
//     belongs in a counter or histogram.
//   - Exports iterate metrics in sorted name order, so two registries
//     holding the same totals render byte-identically.
//
// The whole API is nil-receiver safe: a component instrumented with a nil
// *Registry (or nil *Counter, *Span, ...) pays a single branch per call.
// That is the uninstrumented fast path the cpu exit-dispatch benchmark
// bounds.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	//detlint:allow goroutine — registry creation lock only; all metric updates are commutative atomics, so totals are interleaving-invariant
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. It is safe for concurrent use: metric
// creation takes a lock, while updates through the returned handles are
// lock-free atomics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Key renders a metric name with label pairs in the given (fixed) order:
// Key("cpu_exits_total", "class", "io", "level", "L2") ==
// `cpu_exits_total{class="io",level="L2"}`. Call sites hard-code label
// order so the same series always renders the same key.
func Key(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing uint64.
type Counter struct{ n atomic.Uint64 }

// Add increments the counter by delta. Safe on a nil receiver.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a settable int64. See the package determinism rules: only
// write values that do not depend on scheduling.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts integer observations into fixed buckets. Bounds are
// inclusive upper limits in ascending order; an implicit +Inf bucket
// catches the rest.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Int64
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Counter returns (creating if needed) the counter named name. A nil
// registry returns a nil handle, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge named name. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram named name with
// the given bucket bounds. The bounds of the first creation win; later
// calls with different bounds get the existing histogram. Nil-safe.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := append([]int64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// DurationBuckets is the shared microsecond bucket layout for virtual-time
// histograms: 100 µs up to 10 min, roughly one bucket per decade half.
var DurationBuckets = []int64{
	100, 1_000, 10_000, 50_000, 100_000, 500_000,
	1_000_000, 5_000_000, 30_000_000, 60_000_000, 600_000_000,
}

// CountBuckets is the shared layout for small-count histograms (migration
// rounds, retries).
var CountBuckets = []int64{1, 2, 3, 5, 10, 20, 50, 100, 500}

// PageBuckets is the shared layout for page-count histograms.
var PageBuckets = []int64{256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576}

// BucketSnapshot is one histogram bucket in a snapshot: its inclusive
// upper bound (Inf true for the overflow bucket) and cumulative count.
type BucketSnapshot struct {
	UpperBound int64  `json:"le"`
	Inf        bool   `json:"inf,omitempty"`
	Count      uint64 `json:"count"`
}

// MetricSnapshot is one metric's frozen state, the unit all exporters and
// the monitor's query-stats consume.
type MetricSnapshot struct {
	Name string `json:"name"`
	Type string `json:"type"` // "counter", "gauge", "histogram"
	// Value carries counter and gauge values (counters as int64: the
	// simulation never overflows 63 bits of events).
	Value int64 `json:"value,omitempty"`
	// Histogram-only fields.
	Count   uint64           `json:"count,omitempty"`
	Sum     int64            `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot freezes every metric, sorted by name. A nil registry snapshots
// to nil.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{Name: name, Type: "counter", Value: int64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{Name: name, Type: "gauge", Value: g.Value()})
	}
	for name, h := range r.histograms {
		snap := MetricSnapshot{Name: name, Type: "histogram", Count: h.Count(), Sum: h.Sum()}
		cum := uint64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			b := BucketSnapshot{Count: cum}
			if i < len(h.bounds) {
				b.UpperBound = h.bounds[i]
			} else {
				b.Inf = true
			}
			snap.Buckets = append(snap.Buckets, b)
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
