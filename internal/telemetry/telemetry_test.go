package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudskulk/internal/sim"
)

func TestKey(t *testing.T) {
	if got := Key("plain"); got != "plain" {
		t.Fatalf("Key plain = %q", got)
	}
	got := Key("cpu_exits_total", "class", "io", "level", "L2")
	want := `cpu_exits_total{class="io",level="L2"}`
	if got != want {
		t.Fatalf("Key = %q, want %q", got, want)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("Counter did not return existing handle")
	}

	g := r.Gauge("g")
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d, want -7", g.Value())
	}

	h := r.Histogram("h", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1026 {
		t.Fatalf("histogram count=%d sum=%d", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	var hs *MetricSnapshot
	for i := range snap {
		if snap[i].Name == "h" {
			hs = &snap[i]
		}
	}
	if hs == nil {
		t.Fatal("histogram missing from snapshot")
	}
	// Cumulative buckets: le=10 → 2 (5,10), le=100 → 3 (+11), +Inf → 4.
	wantCum := []uint64{2, 3, 4}
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d count=%d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !hs.Buckets[2].Inf {
		t.Fatal("last bucket not marked +Inf")
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(10)
	r.Gauge("y").Set(3)
	r.Histogram("z", CountBuckets).Observe(1)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil registry returned non-zero values")
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", got)
	}
	if got := r.PromText(); got != "" {
		t.Fatalf("nil registry PromText = %q, want empty", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONLines(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteJSONLines = %v, %q", err, buf.String())
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("zeta").Add(3)
		r.Counter("alpha").Add(1)
		r.Gauge("mid").Set(2)
		r.Histogram("hist", []int64{1, 2}).Observe(2)
		return r
	}
	a, b := build(), build()
	var ba, bb bytes.Buffer
	if err := a.WriteJSONLines(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSONLines(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("JSON-lines exports differ:\n%s\nvs\n%s", ba.String(), bb.String())
	}
	if a.PromText() != b.PromText() {
		t.Fatal("PromText exports differ for equal registries")
	}
	snap := a.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not strictly sorted: %q >= %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

// Order-independence is what makes a shared registry safe for the
// parallel runner: any interleaving of the same increments must reach the
// same totals.
func TestConcurrentIncrementsDeterministic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", CountBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(2)
				h.Observe(int64(i % 7))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("counter = %d, want 16000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestPromTextHistogramExpansion(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Key("lat_us", "dev", "eth0"), []int64{10}).Observe(5)
	got := r.PromText()
	for _, want := range []string{
		"# TYPE lat_us histogram",
		`lat_us_bucket{dev="eth0",le="10"} 1`,
		`lat_us_bucket{dev="eth0",le="+Inf"} 1`,
		`lat_us_sum{dev="eth0"} 5`,
		`lat_us_count{dev="eth0"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("PromText missing %q in:\n%s", want, got)
		}
	}
}

func TestSpanTreeNesting(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewSpanTracer(eng)

	mig := st.Start("migrate", A("vm", "guest0"))
	eng.Advance(1 * time.Second)
	stream := st.Start("stream")
	for i := 1; i <= 2; i++ {
		round := st.Start("round", A("idx", fmt.Sprint(i)))
		eng.Advance(500 * time.Millisecond)
		round.End()
	}
	stream.End()
	down := st.Start("downtime")
	eng.Advance(100 * time.Millisecond)
	down.End()
	mig.Set("outcome", "completed")
	mig.End()

	roots := st.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("migrate children = %d, want 2 (stream, downtime)", len(roots[0].Children))
	}
	if n := len(roots[0].Children[0].Children); n != 2 {
		t.Fatalf("stream children = %d, want 2 rounds", n)
	}
	if d := roots[0].Duration(); d != 2100*time.Millisecond {
		t.Fatalf("migrate duration = %v, want 2.1s", d)
	}
	tree := st.Tree()
	for _, want := range []string{"migrate vm=guest0 outcome=completed", "stream", "round idx=2", "downtime"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestSpanEndOutOfOrderClosesChildren(t *testing.T) {
	eng := sim.NewEngine(1)
	st := NewSpanTracer(eng)
	outer := st.Start("outer")
	inner := st.Start("inner")
	eng.Advance(time.Second)
	outer.End() // inner never explicitly ended
	if inner.open {
		t.Fatal("inner span left open after parent ended")
	}
	if inner.Stop != eng.Now() || outer.Duration() != time.Second {
		t.Fatalf("timestamps wrong: inner.Stop=%v outer=%v", inner.Stop, outer.Duration())
	}
	// Double-end must be a no-op.
	eng.Advance(time.Second)
	inner.End()
	if inner.Stop == eng.Now() {
		t.Fatal("double End moved the stop timestamp")
	}
}

func TestNilSpanTracerIsNoOp(t *testing.T) {
	var st *SpanTracer
	s := st.Start("x", A("k", "v"))
	s.Set("k2", "v2")
	s.End()
	if s != nil || st.Roots() != nil || st.Tree() != "" {
		t.Fatal("nil span tracer not a no-op")
	}
	st.Reset()
	st.Mirror(nil)
}

func TestSpanMirrorsIntoSimTracer(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := sim.NewTracer(0)
	eng.Observe(tr)
	st := NewSpanTracer(eng)
	st.Mirror(tr)
	s := st.Start("op")
	eng.Advance(time.Millisecond)
	s.End()
	out := tr.String()
	if !strings.Contains(out, "span.start op") || !strings.Contains(out, "span.end op") {
		t.Fatalf("sim tracer missing span markers:\n%s", out)
	}
}
