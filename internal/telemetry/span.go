package telemetry

import (
	"fmt"
	"strings"
	"time"

	"cloudskulk/internal/sim"
)

// Attr is one key=value span attribute. Values are strings; callers
// format numbers themselves so rendering is trivially stable.
type Attr struct {
	Key   string
	Value string
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one timed operation in virtual time. Spans nest: a span started
// while another is open becomes its child, so a cross-host migration
// renders as a tree (migrate → stream → round-N → downtime) rather than
// a flat event list.
type Span struct {
	Name     string
	Start    time.Duration
	Stop     time.Duration
	Attrs    []Attr
	Children []*Span

	tracer *SpanTracer
	open   bool
}

// SpanTracer builds span trees against a sim.Engine clock. Like the
// engine itself it is single-threaded: create one per simulated world and
// never share it across runner workers. A nil tracer (and the nil spans
// it hands out) is a no-op, mirroring the nil-Registry fast path.
type SpanTracer struct {
	eng    *sim.Engine
	roots  []*Span
	stack  []*Span
	mirror *sim.Tracer
}

// NewSpanTracer returns a tracer reading timestamps from eng.
func NewSpanTracer(eng *sim.Engine) *SpanTracer {
	return &SpanTracer{eng: eng}
}

// Mirror additionally records span start/end markers into a sim.Tracer,
// interleaving them with raw event firings. Passing nil stops mirroring.
func (t *SpanTracer) Mirror(tr *sim.Tracer) {
	if t == nil {
		return
	}
	t.mirror = tr
}

// Start opens a span. If another span is open it becomes the parent.
// Nil-safe: a nil tracer returns a nil span whose methods are no-ops.
func (t *SpanTracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		Name:   name,
		Start:  t.eng.Now(),
		Attrs:  append([]Attr(nil), attrs...),
		tracer: t,
		open:   true,
	}
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		parent.Children = append(parent.Children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.stack = append(t.stack, s)
	if t.mirror != nil {
		t.mirror.Record(s.Start, "span.start "+name)
	}
	return s
}

// Set adds (or appends another) attribute to the span. Nil-safe.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// End closes the span at the current virtual time. Ending out of order
// closes every span opened after this one first (they share the end
// timestamp), so an early return inside a child operation cannot corrupt
// the stack. Ending twice, or ending a nil span, is a no-op.
func (s *Span) End() {
	if s == nil || !s.open {
		return
	}
	t := s.tracer
	now := t.eng.Now()
	for i := len(t.stack) - 1; i >= 0; i-- {
		top := t.stack[i]
		t.stack = t.stack[:i]
		top.open = false
		top.Stop = now
		if t.mirror != nil {
			t.mirror.Record(now, "span.end "+top.Name)
		}
		if top == s {
			break
		}
	}
}

// Duration returns Stop-Start for a closed span, and zero for a nil or
// still-open span.
func (s *Span) Duration() time.Duration {
	if s == nil || s.open {
		return 0
	}
	return s.Stop - s.Start
}

// Roots returns the completed and in-flight top-level spans, oldest
// first. Nil for a nil tracer.
func (t *SpanTracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	return t.roots
}

// Reset drops all recorded spans (open spans are abandoned). Nil-safe.
func (t *SpanTracer) Reset() {
	if t == nil {
		return
	}
	t.roots = nil
	t.stack = nil
}

// Tree renders all root spans as an indented tree:
//
//	migrate vm=guest0 dst=hostB                    [1.2s +3.4s]
//	  stream rounds=4                              [1.2s +3.1s]
//	    round idx=1 pages=25600                    [1.2s +1.0s]
//	    ...
//	  downtime                                     [4.4s +0.2s]
//
// Timestamps are virtual, so output is deterministic per seed.
func (t *SpanTracer) Tree() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, s := range t.roots {
		writeSpan(&b, s, 0)
	}
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	if s.open {
		fmt.Fprintf(b, "  [%s ..open)", s.Start)
	} else {
		fmt.Fprintf(b, "  [%s +%s]", s.Start, s.Stop-s.Start)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeSpan(b, c, depth+1)
	}
}
