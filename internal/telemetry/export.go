package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSONLines writes one JSON object per metric, sorted by name, so
// two registries with equal totals produce byte-identical files. A nil
// registry writes nothing.
func (r *Registry) WriteJSONLines(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, m := range r.Snapshot() {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return nil
}

// baseName strips the {label="..."} suffix from a metric key, giving the
// family name used for Prometheus TYPE comments.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// PromText renders a Prometheus-style text snapshot: a # TYPE comment per
// metric family followed by its series, all in sorted order. Histograms
// expand into cumulative _bucket series plus _sum and _count. A nil
// registry renders to "".
func (r *Registry) PromText() string {
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.Snapshot() {
		family := baseName(m.Name)
		if family != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", family, m.Type)
			lastFamily = family
		}
		switch m.Type {
		case "histogram":
			for _, bk := range m.Buckets {
				le := "+Inf"
				if !bk.Inf {
					le = fmt.Sprintf("%d", bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s %d\n", histogramSeries(m.Name, "_bucket", `le="`+le+`"`), bk.Count)
			}
			fmt.Fprintf(&b, "%s %d\n", histogramSeries(m.Name, "_sum", ""), m.Sum)
			fmt.Fprintf(&b, "%s %d\n", histogramSeries(m.Name, "_count", ""), m.Count)
		default:
			fmt.Fprintf(&b, "%s %d\n", m.Name, m.Value)
		}
	}
	return b.String()
}

// histogramSeries splices a suffix (and optionally an extra label) into a
// possibly-labelled metric key: ("h{a="b"}", "_bucket", `le="5"`) gives
// `h_bucket{a="b",le="5"}`.
func histogramSeries(name, suffix, extraLabel string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
		labels = name[i+1 : len(name)-1]
	}
	switch {
	case labels == "" && extraLabel == "":
		return base + suffix
	case labels == "":
		return base + suffix + "{" + extraLabel + "}"
	case extraLabel == "":
		return base + suffix + "{" + labels + "}"
	default:
		return base + suffix + "{" + labels + "," + extraLabel + "}"
	}
}
