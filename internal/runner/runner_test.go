package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestMapOrdering: results land at their cell index regardless of worker
// count and completion order.
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		res, err := Map(100, Options{Workers: workers}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("workers=%d: res[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestMapDeterminism: a seeded per-cell computation yields identical
// output for 1 and 8 workers.
func TestMapDeterminism(t *testing.T) {
	sweep := func(workers int) []uint64 {
		res, err := MapSeeded(42, 64, Options{Workers: workers}, func(i int, seed int64) (uint64, error) {
			rng := rand.New(rand.NewSource(seed))
			var acc uint64
			for j := 0; j < 1000; j++ {
				acc ^= rng.Uint64()
			}
			return acc, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := sweep(1), sweep(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d: serial %x vs parallel %x", i, serial[i], parallel[i])
		}
	}
}

// TestCellSeedStable pins the derivation rule: these values are part of
// the reproducibility contract and must never change.
func TestCellSeedStable(t *testing.T) {
	if CellSeed(1, 0) == CellSeed(1, 1) {
		t.Fatal("adjacent cells share a seed")
	}
	if CellSeed(1, 0) == CellSeed(2, 0) {
		t.Fatal("distinct roots share a seed")
	}
	for _, root := range []int64{-5, 0, 1, 1 << 40} {
		for i := 0; i < 100; i++ {
			s := CellSeed(root, i)
			if s <= 0 {
				t.Fatalf("CellSeed(%d, %d) = %d, want positive", root, i, s)
			}
			if s != CellSeed(root, i) {
				t.Fatalf("CellSeed(%d, %d) not stable", root, i)
			}
		}
	}
}

// TestMapErrorTaxonomy: cell errors wrap ErrCellFailed and the underlying
// cause, carry the cell index, and do not stop sibling cells.
func TestMapErrorTaxonomy(t *testing.T) {
	cause := errors.New("boom")
	var ran atomic.Int32
	res, err := Map(10, Options{Workers: 4}, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, cause
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if !errors.Is(err, ErrCellFailed) {
		t.Fatalf("err = %v, want ErrCellFailed", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want to wrap cause", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 3 {
		t.Fatalf("CellError = %+v", ce)
	}
	if ran.Load() != 10 {
		t.Fatalf("only %d cells ran; failures must not cancel siblings", ran.Load())
	}
	// Healthy cells still delivered their results.
	if res[9] != 9 || res[0] != 0 {
		t.Fatalf("results = %v", res)
	}
}

// TestMapPanicRecovery: a panicking cell becomes a typed error instead of
// killing the sweep.
func TestMapPanicRecovery(t *testing.T) {
	_, err := Map(8, Options{Workers: 4}, func(i int) (int, error) {
		if i == 5 {
			panic("cell exploded")
		}
		return i, nil
	})
	if !errors.Is(err, ErrCellFailed) {
		t.Fatalf("err = %v, want ErrCellFailed", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if fmt.Sprint(pe.Value) != "cell exploded" || len(pe.Stack) == 0 {
		t.Fatalf("panic payload = %+v", pe)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 5 {
		t.Fatalf("CellError = %+v", ce)
	}
}

// TestMapProgress: every completion produces a monotone progress report
// ending at Done == Total.
func TestMapProgress(t *testing.T) {
	var reports []Progress
	_, err := Map(20, Options{Workers: 4, OnProgress: func(p Progress) {
		reports = append(reports, p) // serialized by the runner
	}}, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 20 {
		t.Fatalf("got %d reports", len(reports))
	}
	for i, p := range reports {
		if p.Done != i+1 || p.Total != 20 {
			t.Fatalf("report %d = %+v", i, p)
		}
	}
	last := reports[len(reports)-1]
	if last.ETA != 0 {
		t.Fatalf("final ETA = %v, want 0", last.ETA)
	}
}

// TestMapZeroAndExcessWorkers: degenerate shapes still behave.
func TestMapZeroAndExcessWorkers(t *testing.T) {
	if res, err := Map(0, Options{}, func(i int) (int, error) { return i, nil }); err != nil || len(res) != 0 {
		t.Fatalf("empty sweep: res=%v err=%v", res, err)
	}
	res, err := Map(3, Options{Workers: 100}, func(i int) (int, error) { return i + 1, nil })
	if err != nil || res[2] != 3 {
		t.Fatalf("excess workers: res=%v err=%v", res, err)
	}
}
