package runner

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// cpuCell burns a deterministic amount of CPU, standing in for one
// simulation cell.
func cpuCell(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	var acc uint64
	for i := 0; i < 200_000; i++ {
		acc ^= rng.Uint64()
	}
	return acc
}

// BenchmarkMapWorkers measures sweep wall-clock against worker count; on a
// multi-core machine ns/op should fall near-linearly until the pool covers
// the cores.
func BenchmarkMapWorkers(b *testing.B) {
	const cells = 32
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := MapSeeded(1, cells, Options{Workers: workers},
					func(i int, seed int64) (uint64, error) {
						return cpuCell(seed), nil
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
