// Package runner executes independent simulation cells across a bounded
// goroutine worker pool.
//
// The experiment harness decomposes every sweep into cells — one
// (config × run) simulation each, owning its own sim.Engine — so cells
// share no mutable state and can execute in any order on any number of
// workers. The runner preserves three guarantees the harness depends on:
//
//   - Determinism: a cell's randomness comes only from its seed, derived
//     as CellSeed(rootSeed, cellIndex) (or from the caller's own stable
//     rule). Worker count and scheduling order therefore never change any
//     cell's result.
//   - Ordering: results are collected into a slice indexed by cell, so
//     the assembled output is byte-identical to a serial left-to-right
//     run.
//   - Containment: a panicking cell is recovered into a *CellError
//     (wrapping ErrCellFailed) instead of killing the whole sweep; the
//     remaining cells still run and the joined error reports every
//     failure in cell order.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// ErrCellFailed is the sentinel every per-cell failure wraps; callers can
// errors.Is against it without knowing which cell failed or why.
var ErrCellFailed = errors.New("runner: cell failed")

// CellError records one failed cell: its index and the underlying cause
// (the cell function's error, or a *PanicError if it panicked).
type CellError struct {
	Index int
	Cause error
}

// Error formats the failure with its cell index.
func (e *CellError) Error() string {
	return fmt.Sprintf("runner: cell %d: %v", e.Index, e.Cause)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Cause }

// Is reports ErrCellFailed as a match, making every cell failure
// errors.Is-compatible with the package sentinel.
func (e *CellError) Is(target error) bool { return target == ErrCellFailed }

// PanicError is the cause recorded when a cell panics.
type PanicError struct {
	Value any
	Stack []byte
}

// Error formats the recovered panic value.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Progress is a snapshot of a running sweep, delivered to
// Options.OnProgress after each cell completes.
type Progress struct {
	// Done and Total count cells.
	Done, Total int
	// Elapsed is wall-clock time since the sweep started.
	Elapsed time.Duration
	// CellsPerSec is the observed completion rate.
	CellsPerSec float64
	// ETA estimates the remaining wall-clock time at the current rate.
	ETA time.Duration
}

// Options configures a sweep.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, when non-nil, is invoked (serialized, from worker
	// goroutines) after each cell completes.
	OnProgress func(Progress)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CellSeed derives the per-cell engine seed from the sweep's root seed and
// the cell index: a 64-bit FNV-1a hash of both, folded to a non-negative
// int64. The rule is stable across releases — changing it would change
// every recorded experiment — and collision-resistant enough that
// neighbouring cells never share an RNG stream.
func CellSeed(root int64, index int) int64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(root))
	mix(uint64(index))
	s := int64(h &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}

// Map runs cell(0..n-1) across the worker pool and returns the results in
// cell order. Every cell runs even if others fail; the returned error is
// the join of all *CellError values in cell order (nil if none). A
// panicking cell contributes a CellError wrapping a *PanicError.
func Map[T any](n int, opt Options, cell func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	cellErrs := make([]error, n)
	if n == 0 {
		return results, nil
	}

	workers := opt.workers()
	if workers > n {
		workers = n
	}

	//detlint:allow wallclock — progress reporting to a human terminal; elapsed/ETA never reach a cell or an artefact
	start := time.Now()
	var mu sync.Mutex // serializes OnProgress
	done := 0
	report := func() {
		if opt.OnProgress == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		//detlint:allow wallclock — same progress timer: wall-clock elapsed is display-only
		p := Progress{Done: done, Total: n, Elapsed: time.Since(start)}
		if secs := p.Elapsed.Seconds(); secs > 0 {
			p.CellsPerSec = float64(done) / secs
			p.ETA = time.Duration(float64(n-done) / p.CellsPerSec * float64(time.Second))
		}
		opt.OnProgress(p)
	}

	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				cellErrs[i] = &CellError{Index: i, Cause: &PanicError{Value: r, Stack: debug.Stack()}}
			}
			report()
		}()
		res, err := cell(i)
		if err != nil {
			cellErrs[i] = &CellError{Index: i, Cause: err}
			return
		}
		results[i] = res
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				runCell(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()

	return results, errors.Join(cellErrs...)
}

// MapSeeded is Map with the package's seed-derivation rule applied: cell i
// receives CellSeed(root, i) to build its own engine from.
func MapSeeded[T any](root int64, n int, opt Options, cell func(i int, seed int64) (T, error)) ([]T, error) {
	return Map(n, opt, func(i int) (T, error) {
		return cell(i, CellSeed(root, i))
	})
}
