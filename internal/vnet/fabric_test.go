package vnet

import (
	"errors"
	"testing"
	"time"

	"cloudskulk/internal/sim"
)

func fabric(t *testing.T) *Network {
	t.Helper()
	n := New(sim.NewEngine(1))
	for _, ep := range []string{"hostA", "hostB", "vmA.nic", "vmB.nic"} {
		if err := n.AddEndpoint(ep); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Attach("vmA.nic", "hostA"); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach("vmB.nic", "hostB"); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAttachRootResolution(t *testing.T) {
	n := fabric(t)
	if got := n.RootOf("vmA.nic"); got != "hostA" {
		t.Fatalf("root = %q", got)
	}
	if got := n.RootOf("hostA"); got != "hostA" {
		t.Fatalf("root = %q", got)
	}
	// Chained attachment: a nested NIC rides the enclosing VM's NIC.
	if err := n.AddEndpoint("vmA/inner.nic"); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach("vmA/inner.nic", "vmA.nic"); err != nil {
		t.Fatal(err)
	}
	if got := n.RootOf("vmA/inner.nic"); got != "hostA" {
		t.Fatalf("root = %q", got)
	}
	n.Detach("vmA/inner.nic")
	if got := n.RootOf("vmA/inner.nic"); got != "vmA/inner.nic" {
		t.Fatalf("root after detach = %q", got)
	}
	if err := n.Attach("vmA/inner.nic", "ghost"); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestLinkFallsBackToAttachmentRoots(t *testing.T) {
	n := fabric(t)
	wan := LinkSpec{Bandwidth: 10 << 20, Latency: time.Millisecond}
	n.SetLink("hostA", "hostB", wan)

	// Cross-host VM traffic resolves to the host pair link.
	if got := n.Link("vmA.nic", "vmB.nic"); got != wan {
		t.Fatalf("link = %+v", got)
	}
	if got := n.Link("hostA", "vmB.nic"); got != wan {
		t.Fatalf("link = %+v", got)
	}
	// Intra-host stays on the loopback default.
	if got := n.Link("vmA.nic", "hostA"); got != n.DefaultLink {
		t.Fatalf("link = %+v", got)
	}
	// An explicit pair link beats the root fallback.
	direct := LinkSpec{Bandwidth: 1 << 20, Latency: time.Second}
	n.SetLink("vmA.nic", "vmB.nic", direct)
	if got := n.Link("vmA.nic", "vmB.nic"); got != direct {
		t.Fatalf("link = %+v", got)
	}
}

func TestRemoveEndpointClearsAttachment(t *testing.T) {
	n := fabric(t)
	n.RemoveEndpoint("vmA.nic")
	if err := n.AddEndpoint("vmA.nic"); err != nil {
		t.Fatal(err)
	}
	// Recreated endpoint starts unattached.
	if got := n.RootOf("vmA.nic"); got != "vmA.nic" {
		t.Fatalf("root = %q", got)
	}
}

func TestFlowAccounting(t *testing.T) {
	n := fabric(t)
	if got := n.Flows("vmA.nic", "vmB.nic"); got != 0 {
		t.Fatalf("flows = %d", got)
	}
	r1 := n.AcquireFlow("vmA.nic", "vmB.nic")
	r2 := n.AcquireFlow("hostA", "hostB")
	// Both flows land on the same root pair.
	if got := n.Flows("hostA", "vmB.nic"); got != 2 {
		t.Fatalf("flows = %d", got)
	}
	r1()
	r1() // double release is a no-op
	if got := n.Flows("hostA", "hostB"); got != 1 {
		t.Fatalf("flows = %d", got)
	}
	r2()
	if got := n.Flows("hostA", "hostB"); got != 0 {
		t.Fatalf("flows = %d", got)
	}
	// Intra-host transfers never contend.
	release := n.AcquireFlow("vmA.nic", "hostA")
	if got := n.Flows("vmA.nic", "hostA"); got != 0 {
		t.Fatalf("flows = %d", got)
	}
	release()
}
