package vnet

import (
	"bytes"
	"errors"
	"testing"
)

func TestStreamEndToEnd(t *testing.T) {
	eng, n := newNet(t, "client", "server")
	l, err := n.ListenStream(Addr{"server", 80})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := n.DialStream(Addr{"client", 40000}, Addr{"server", 80})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run() // SYN + ACK fly
	srv, ok := l.Accept()
	if !ok {
		t.Fatal("no accepted connection")
	}
	if _, ok := l.Accept(); ok {
		t.Fatal("phantom second connection")
	}

	// Client -> server.
	if err := conn.Write([]byte("hello server")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := srv.Recv(); string(got) != "hello server" {
		t.Fatalf("server got %q", got)
	}
	if srv.Recv() != nil {
		t.Fatal("Recv did not drain")
	}
	// Server -> client.
	if err := srv.Write([]byte("hello client")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := conn.Recv(); string(got) != "hello client" {
		t.Fatalf("client got %q", got)
	}

	// Close propagates.
	var closed bool
	srv.OnClose = func() { closed = true }
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !closed || !srv.Closed() {
		t.Fatal("FIN not delivered")
	}
	if err := conn.Write([]byte("x")); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("write after close err = %v", err)
	}
	if err := conn.Close(); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("double close err = %v", err)
	}
}

func TestStreamSegmentation(t *testing.T) {
	eng, n := newNet(t, "a", "b")
	l, err := n.ListenStream(Addr{"b", 9})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := n.DialStream(Addr{"a", 1}, Addr{"b", 9})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	srv, _ := l.Accept()

	big := bytes.Repeat([]byte("x"), 4*MSS+100)
	if err := conn.Write(big); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got := srv.Recv()
	if !bytes.Equal(got, big) {
		t.Fatalf("reassembly failed: %d bytes vs %d", len(got), len(big))
	}
	// 5 data segments crossed the wire (plus SYN earlier).
	st, _ := n.EndpointStats("a")
	if st.SentPackets != 6 {
		t.Fatalf("sent packets = %d, want 6", st.SentPackets)
	}
}

func TestStreamThroughForwardChainAndTaps(t *testing.T) {
	eng, n := newNet(t, "client", "host", "ritm", "victim")
	if err := n.AddForward(Addr{"host", 2222}, Addr{"ritm", 2222}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddForward(Addr{"ritm", 2222}, Addr{"victim", 22}); err != nil {
		t.Fatal(err)
	}
	l, err := n.ListenStream(Addr{"victim", 22})
	if err != nil {
		t.Fatal(err)
	}
	// The RITM tampers with stream payloads in flight.
	if err := n.AddTap("ritm", TapFunc(func(p *Packet) Verdict {
		p.Payload = bytes.ReplaceAll(p.Payload, []byte("secret"), []byte("REDACT"))
		return VerdictPass
	})); err != nil {
		t.Fatal(err)
	}
	conn, err := n.DialStream(Addr{"client", 40000}, Addr{"host", 2222})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	srv, ok := l.Accept()
	if !ok {
		t.Fatal("connection did not traverse the chain")
	}
	if err := conn.Write([]byte("the secret handshake")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := srv.Recv(); string(got) != "the REDACT handshake" {
		t.Fatalf("server got %q", got)
	}
	// Replies flow back to the dialing client directly.
	if err := srv.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := conn.Recv(); string(got) != "ok" {
		t.Fatalf("client got %q", got)
	}
}

func TestStreamDroppedSegmentSurfacesError(t *testing.T) {
	eng, n := newNet(t, "a", "b")
	l, err := n.ListenStream(Addr{"b", 9})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := n.DialStream(Addr{"a", 1}, Addr{"b", 9})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, ok := l.Accept(); !ok {
		t.Fatal("no connection")
	}
	if err := n.AddTap("b", TapFunc(func(*Packet) Verdict { return VerdictDrop })); err != nil {
		t.Fatal(err)
	}
	if err := conn.Write([]byte("x")); !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamOnDataCallback(t *testing.T) {
	eng, n := newNet(t, "a", "b")
	l, err := n.ListenStream(Addr{"b", 9})
	if err != nil {
		t.Fatal(err)
	}
	var pushed []byte
	l.OnAccept = func(c *StreamConn) {
		c.OnData = func(data []byte) { pushed = append(pushed, data...) }
	}
	conn, err := n.DialStream(Addr{"a", 1}, Addr{"b", 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Write([]byte("pushed")); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if string(pushed) != "pushed" {
		t.Fatalf("pushed = %q", pushed)
	}
}

func TestStreamDialErrors(t *testing.T) {
	_, n := newNet(t, "a", "b")
	// No listener at the destination.
	if _, err := n.DialStream(Addr{"a", 1}, Addr{"b", 9}); !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("err = %v", err)
	}
	// The failed dial released the local port.
	if n.Listening(Addr{"a", 1}) {
		t.Fatal("failed dial leaked port binding")
	}
	// Local port in use.
	if err := n.Listen(Addr{"a", 1}, func(*Packet) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.DialStream(Addr{"a", 1}, Addr{"b", 9}); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v", err)
	}
}

func TestListenerClose(t *testing.T) {
	_, n := newNet(t, "a", "b")
	l, err := n.ListenStream(Addr{"b", 9})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if n.Listening(Addr{"b", 9}) {
		t.Fatal("listener port still bound")
	}
}

func TestNonStreamTrafficIgnoredByListener(t *testing.T) {
	eng, n := newNet(t, "a", "b")
	l, err := n.ListenStream(Addr{"b", 9})
	if err != nil {
		t.Fatal(err)
	}
	// A raw packet that is not stream-framed must not crash or enqueue.
	if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 9}, Payload: []byte("raw")}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, ok := l.Accept(); ok {
		t.Fatal("raw packet became a connection")
	}
}
