package vnet

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"cloudskulk/internal/sim"
)

func newNet(t *testing.T, names ...string) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(1)
	n := New(eng)
	for _, name := range names {
		if err := n.AddEndpoint(name); err != nil {
			t.Fatal(err)
		}
	}
	return eng, n
}

func TestAddEndpointDuplicate(t *testing.T) {
	_, n := newNet(t, "host")
	if err := n.AddEndpoint("host"); !errors.Is(err, ErrDuplicateEndpoint) {
		t.Fatalf("err = %v", err)
	}
	if !n.HasEndpoint("host") || n.HasEndpoint("ghost") {
		t.Fatal("HasEndpoint wrong")
	}
}

func TestListenConflicts(t *testing.T) {
	_, n := newNet(t, "host")
	h := func(*Packet) {}
	if err := n.Listen(Addr{"host", 22}, h); err != nil {
		t.Fatal(err)
	}
	if err := n.Listen(Addr{"host", 22}, h); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("rebind err = %v", err)
	}
	if err := n.Listen(Addr{"nope", 22}, h); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("unknown ep err = %v", err)
	}
	if !n.Listening(Addr{"host", 22}) {
		t.Fatal("Listening = false")
	}
	n.Unlisten(Addr{"host", 22})
	if n.Listening(Addr{"host", 22}) {
		t.Fatal("Unlisten didn't release")
	}
	n.Unlisten(Addr{"nope", 1}) // no panic
}

func TestSendDeliversAfterLatency(t *testing.T) {
	eng, n := newNet(t, "a", "b")
	var got *Packet
	var at time.Duration
	if err := n.Listen(Addr{"b", 80}, func(p *Packet) {
		got = p
		at = eng.Now()
	}); err != nil {
		t.Fatal(err)
	}
	pkt := &Packet{From: Addr{"a", 1000}, To: Addr{"b", 80}, Payload: []byte("hi")}
	if err := n.Send(pkt); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("delivered synchronously")
	}
	eng.Run()
	if got == nil {
		t.Fatal("not delivered")
	}
	if string(got.Payload) != "hi" {
		t.Fatalf("payload = %q", got.Payload)
	}
	if at != n.DefaultLink.Latency {
		t.Fatalf("delivered at %v, want link latency %v", at, n.DefaultLink.Latency)
	}
}

func TestSendErrors(t *testing.T) {
	_, n := newNet(t, "a", "b")
	pkt := func(from, to Addr) *Packet { return &Packet{From: from, To: to} }
	if err := n.Send(pkt(Addr{"x", 1}, Addr{"b", 80})); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("unknown src err = %v", err)
	}
	if err := n.Send(pkt(Addr{"a", 1}, Addr{"x", 80})); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("unknown dst err = %v", err)
	}
	if err := n.Send(pkt(Addr{"a", 1}, Addr{"b", 80})); !errors.Is(err, ErrNoListener) {
		t.Fatalf("no listener err = %v", err)
	}
}

func TestForwardChain(t *testing.T) {
	eng, n := newNet(t, "host", "ritm", "victim")
	var got *Packet
	if err := n.Listen(Addr{"victim", 22}, func(p *Packet) { got = p }); err != nil {
		t.Fatal(err)
	}
	// host:2222 -> ritm:2222 -> victim:22, the CloudSkulk double hop.
	if err := n.AddForward(Addr{"host", 2222}, Addr{"ritm", 2222}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddForward(Addr{"ritm", 2222}, Addr{"victim", 22}); err != nil {
		t.Fatal(err)
	}
	dst, hops, err := n.ResolveForward(Addr{"host", 2222})
	if err != nil {
		t.Fatal(err)
	}
	if dst != (Addr{"victim", 22}) {
		t.Fatalf("resolved to %v", dst)
	}
	if len(hops) != 2 || hops[0] != "host" || hops[1] != "ritm" {
		t.Fatalf("hops = %v", hops)
	}
	p := &Packet{From: Addr{"client", 0}, To: Addr{"host", 2222}, Payload: []byte("ssh")}
	// "client" must exist to send.
	if err := n.AddEndpoint("client"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(p); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got == nil {
		t.Fatal("not delivered through chain")
	}
	// Route must show the packet traversed the RITM.
	want := []string{"client", "host", "ritm", "victim"}
	if len(got.Route) != len(want) {
		t.Fatalf("route = %v, want %v", got.Route, want)
	}
	for i := range want {
		if got.Route[i] != want[i] {
			t.Fatalf("route = %v, want %v", got.Route, want)
		}
	}
	if got.To != (Addr{"victim", 22}) {
		t.Fatalf("final To = %v", got.To)
	}
}

func TestForwardLoopDetected(t *testing.T) {
	_, n := newNet(t, "a", "b")
	if err := n.AddForward(Addr{"a", 1}, Addr{"b", 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddForward(Addr{"b", 1}, Addr{"a", 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.ResolveForward(Addr{"a", 1}); !errors.Is(err, ErrForwardLoop) {
		t.Fatalf("err = %v", err)
	}
}

func TestForwardToUnknownEndpointFails(t *testing.T) {
	_, n := newNet(t, "a")
	if err := n.AddForward(Addr{"a", 1}, Addr{"gone", 9}); err != nil {
		t.Fatal(err)
	}
	p := &Packet{From: Addr{"a", 5}, To: Addr{"a", 1}}
	if err := n.Send(p); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoveForward(t *testing.T) {
	_, n := newNet(t, "a", "b")
	if err := n.AddForward(Addr{"a", 1}, Addr{"b", 2}); err != nil {
		t.Fatal(err)
	}
	n.RemoveForward(Addr{"a", 1})
	dst, _, err := n.ResolveForward(Addr{"a", 1})
	if err != nil || dst != (Addr{"a", 1}) {
		t.Fatalf("dst=%v err=%v", dst, err)
	}
}

func TestRemoveEndpointCleansRules(t *testing.T) {
	_, n := newNet(t, "a", "b")
	if err := n.AddForward(Addr{"a", 1}, Addr{"b", 2}); err != nil {
		t.Fatal(err)
	}
	n.RemoveEndpoint("a")
	if n.HasEndpoint("a") {
		t.Fatal("endpoint survived removal")
	}
	if _, ok := n.forwards[Addr{"a", 1}]; ok {
		t.Fatal("forward rule survived removal")
	}
}

func TestTapObservesAndModifies(t *testing.T) {
	eng, n := newNet(t, "src", "mid", "dst")
	var got *Packet
	if err := n.Listen(Addr{"dst", 80}, func(p *Packet) { got = p }); err != nil {
		t.Fatal(err)
	}
	if err := n.AddForward(Addr{"mid", 80}, Addr{"dst", 80}); err != nil {
		t.Fatal(err)
	}
	var seen []string
	err := n.AddTap("mid", TapFunc(func(p *Packet) Verdict {
		seen = append(seen, string(p.Payload))
		p.Payload = []byte("tampered")
		return VerdictPass
	}))
	if err != nil {
		t.Fatal(err)
	}
	p := &Packet{From: Addr{"src", 1}, To: Addr{"mid", 80}, Payload: []byte("original")}
	if err := n.Send(p); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(seen) != 1 || seen[0] != "original" {
		t.Fatalf("tap saw %v", seen)
	}
	if got == nil || string(got.Payload) != "tampered" {
		t.Fatalf("delivered payload = %q, want tampered", got.Payload)
	}
}

func TestTapDrops(t *testing.T) {
	_, n := newNet(t, "src", "dst")
	if err := n.Listen(Addr{"dst", 80}, func(*Packet) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddTap("dst", TapFunc(func(*Packet) Verdict { return VerdictDrop })); err != nil {
		t.Fatal(err)
	}
	p := &Packet{From: Addr{"src", 1}, To: Addr{"dst", 80}}
	if err := n.Send(p); !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v", err)
	}
	st, err := n.EndpointStats("dst")
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedPackets != 1 || st.ReceivedPackets != 0 {
		t.Fatalf("stats = %+v", st)
	}
	n.ClearTaps("dst")
	if err := n.Send(p.Clone()); err != nil {
		t.Fatal(err)
	}
}

func TestAddTapUnknownEndpoint(t *testing.T) {
	_, n := newNet(t)
	if err := n.AddTap("nope", TapFunc(func(*Packet) Verdict { return VerdictPass })); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestLinkOverridesAndSymmetry(t *testing.T) {
	_, n := newNet(t, "a", "b")
	spec := LinkSpec{Bandwidth: 1 << 20, Latency: time.Millisecond}
	n.SetLink("b", "a", spec)
	if got := n.Link("a", "b"); got != spec {
		t.Fatalf("link = %+v", got)
	}
	if got := n.Link("a", "c"); got != n.DefaultLink {
		t.Fatalf("default link = %+v", got)
	}
}

func TestTransferDuration(t *testing.T) {
	_, n := newNet(t, "a", "b")
	n.SetLink("a", "b", LinkSpec{Bandwidth: 1 << 20, Latency: time.Millisecond})
	d, err := n.TransferDuration("a", "b", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if d != time.Second+time.Millisecond {
		t.Fatalf("duration = %v, want 1.001s", d)
	}
}

func TestTransferDurationLinkDown(t *testing.T) {
	_, n := newNet(t, "a", "b")
	n.SetLink("a", "b", LinkSpec{Bandwidth: 1 << 20, Down: true})
	if _, err := n.TransferDuration("a", "b", 100); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v", err)
	}
	if err := n.Listen(Addr{"b", 1}, func(*Packet) {}); err != nil {
		t.Fatal(err)
	}
	p := &Packet{From: Addr{"a", 1}, To: Addr{"b", 1}}
	if err := n.Send(p); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send over down link err = %v", err)
	}
}

func TestTransferDurationZeroBandwidth(t *testing.T) {
	_, n := newNet(t, "a", "b")
	n.SetLink("a", "b", LinkSpec{Bandwidth: 0})
	if _, err := n.TransferDuration("a", "b", 100); err == nil {
		t.Fatal("zero-bandwidth transfer succeeded")
	}
}

func TestStatsCounters(t *testing.T) {
	eng, n := newNet(t, "a", "b")
	if err := n.Listen(Addr{"b", 9}, func(*Packet) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p := &Packet{From: Addr{"a", 1}, To: Addr{"b", 9}, Payload: make([]byte, 100)}
		if err := n.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	sa, _ := n.EndpointStats("a")
	sb, _ := n.EndpointStats("b")
	if sa.SentPackets != 3 || sa.SentBytes != 300 {
		t.Fatalf("a stats = %+v", sa)
	}
	if sb.ReceivedPackets != 3 || sb.ReceivedBytes != 300 {
		t.Fatalf("b stats = %+v", sb)
	}
	if _, err := n.EndpointStats("zzz"); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("stats err = %v", err)
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{
		From:    Addr{"a", 1},
		To:      Addr{"b", 2},
		Payload: []byte("x"),
		Route:   []string{"a"},
	}
	c := p.Clone()
	c.Payload[0] = 'y'
	c.Route[0] = "z"
	if p.Payload[0] != 'x' || p.Route[0] != "a" {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestAddrString(t *testing.T) {
	if got := (Addr{"host", 5555}).String(); got != "host:5555" {
		t.Fatalf("Addr.String = %q", got)
	}
}

// Property: transfer duration scales linearly with bytes (modulo the
// constant latency) and is monotone in bytes.
func TestTransferDurationProperty(t *testing.T) {
	_, n := newNet(t, "a", "b")
	n.SetLink("a", "b", LinkSpec{Bandwidth: 32 << 20, Latency: time.Millisecond})
	f := func(kb1, kb2 uint16) bool {
		b1, b2 := int64(kb1)*1024, int64(kb2)*1024
		d1, err1 := n.TransferDuration("a", "b", b1)
		d2, err2 := n.TransferDuration("a", "b", b2)
		if err1 != nil || err2 != nil {
			return false
		}
		if b1 <= b2 {
			return d1 <= d2
		}
		return d2 <= d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
