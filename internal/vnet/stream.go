package vnet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Stream errors.
var (
	ErrConnClosed   = errors.New("vnet: connection closed")
	ErrStreamBroken = errors.New("vnet: stream segment lost")
)

// MSS is the maximum segment size a stream write is chopped into; each
// segment travels the fabric as one Packet, so taps (and the RITM) see —
// and may tamper with — every segment.
const MSS = 1460

// segment framing: 1 type byte + 8 connID bytes + payload.
const (
	segSYN byte = 'S'
	segACK byte = 'A'
	segDAT byte = 'D'
	segFIN byte = 'F'
)

// StreamConn is one end of a reliable, ordered byte stream. The API is
// event-style to fit the single-threaded simulation: writes are
// synchronous sends, reads drain a receive buffer (or arrive through the
// OnData callback).
type StreamConn struct {
	net   *Network
	id    uint64
	local Addr
	// dialTo is the address segments are sent to: the original dialed
	// address on the client side (so forwarding chains re-apply per
	// segment), the handshake's source on the server side.
	dialTo  Addr
	recvBuf []byte
	closed  bool

	// OnData, if set, is invoked for each arriving segment instead of
	// buffering.
	OnData func(data []byte)
	// OnClose, if set, is invoked when the peer closes.
	OnClose func()
}

// StreamListener accepts incoming stream connections on an address.
type StreamListener struct {
	net   *Network
	addr  Addr
	conns map[uint64]*StreamConn
	// backlog of connections not yet Accept()ed.
	backlog []*StreamConn
	// OnAccept, if set, is invoked for each new connection instead of
	// queueing it.
	OnAccept func(c *StreamConn)
}

// ListenStream binds a stream listener to addr.
func (n *Network) ListenStream(addr Addr) (*StreamListener, error) {
	l := &StreamListener{
		net:   n,
		addr:  addr,
		conns: make(map[uint64]*StreamConn),
	}
	if err := n.Listen(addr, l.handle); err != nil {
		return nil, err
	}
	return l, nil
}

// Close releases the listener's port. Existing connections survive.
func (l *StreamListener) Close() {
	l.net.Unlisten(l.addr)
}

// Accept pops a pending connection, if any.
func (l *StreamListener) Accept() (*StreamConn, bool) {
	if len(l.backlog) == 0 {
		return nil, false
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, true
}

func (l *StreamListener) handle(pkt *Packet) {
	typ, id, payload, err := decodeSegment(pkt.Payload)
	if err != nil {
		return // not stream traffic; ignore
	}
	switch typ {
	case segSYN:
		c := &StreamConn{
			net:    l.net,
			id:     id,
			local:  l.addr,
			dialTo: pkt.From,
		}
		l.conns[id] = c
		// Acknowledge so the dialer learns the connection survived
		// the path (and its taps).
		_ = l.net.Send(&Packet{
			From:    l.addr,
			To:      pkt.From,
			Payload: encodeSegment(segACK, id, nil),
		})
		if l.OnAccept != nil {
			l.OnAccept(c)
		} else {
			l.backlog = append(l.backlog, c)
		}
	case segDAT:
		if c, ok := l.conns[id]; ok && !c.closed {
			c.deliver(payload)
		}
	case segFIN:
		if c, ok := l.conns[id]; ok && !c.closed {
			c.closed = true
			if c.OnClose != nil {
				c.OnClose()
			}
		}
	}
}

// DialStream opens a stream from a local address (which must be free to
// bind for return traffic) to a destination, through any forwarding chain
// and its taps. The connection is usable immediately; the ACK event
// confirms path liveness asynchronously.
func (n *Network) DialStream(local, to Addr) (*StreamConn, error) {
	n.seqConn++
	c := &StreamConn{
		net:    n,
		id:     n.seqConn,
		local:  local,
		dialTo: to,
	}
	if err := n.Listen(local, c.clientHandle); err != nil {
		return nil, err
	}
	syn := &Packet{From: local, To: to, Payload: encodeSegment(segSYN, c.id, nil)}
	if err := n.Send(syn); err != nil {
		n.Unlisten(local)
		return nil, fmt.Errorf("%w: %w", ErrStreamBroken, err)
	}
	return c, nil
}

func (c *StreamConn) clientHandle(pkt *Packet) {
	typ, id, payload, err := decodeSegment(pkt.Payload)
	if err != nil || id != c.id {
		return
	}
	switch typ {
	case segACK:
		// Path confirmed; nothing to store in this simplified model.
	case segDAT:
		if !c.closed {
			c.deliver(payload)
		}
	case segFIN:
		if !c.closed {
			c.closed = true
			if c.OnClose != nil {
				c.OnClose()
			}
		}
	}
}

func (c *StreamConn) deliver(data []byte) {
	if c.OnData != nil {
		c.OnData(data)
		return
	}
	c.recvBuf = append(c.recvBuf, data...)
}

// Write sends data as MSS-sized segments. A segment dropped by a tap (or
// a dead path) surfaces as ErrStreamBroken — the connection-reset a
// tampering RITM inflicts.
func (c *StreamConn) Write(data []byte) error {
	if c.closed {
		return ErrConnClosed
	}
	for len(data) > 0 {
		n := len(data)
		if n > MSS {
			n = MSS
		}
		seg := &Packet{
			From:    c.local,
			To:      c.dialTo,
			Payload: encodeSegment(segDAT, c.id, data[:n]),
		}
		if err := c.net.Send(seg); err != nil {
			return fmt.Errorf("%w: %w", ErrStreamBroken, err)
		}
		data = data[n:]
	}
	return nil
}

// Recv drains and returns everything received so far (nil when empty).
func (c *StreamConn) Recv() []byte {
	out := c.recvBuf
	c.recvBuf = nil
	return out
}

// Closed reports whether the connection has been closed by either side.
func (c *StreamConn) Closed() bool { return c.closed }

// Close sends FIN to the peer and releases the client-side port binding.
func (c *StreamConn) Close() error {
	if c.closed {
		return ErrConnClosed
	}
	c.closed = true
	fin := &Packet{From: c.local, To: c.dialTo, Payload: encodeSegment(segFIN, c.id, nil)}
	err := c.net.Send(fin)
	c.net.Unlisten(c.local)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrStreamBroken, err)
	}
	return nil
}

// StreamPayload extracts the application bytes from a packet that carries
// a stream DATA segment. It returns ok=false for non-stream or
// non-data packets — the helper taps and sniffers use to read streams
// without caring about framing.
func StreamPayload(p *Packet) ([]byte, bool) {
	typ, _, payload, err := decodeSegment(p.Payload)
	if err != nil || typ != segDAT {
		return nil, false
	}
	return payload, true
}

// ClassifySegment reports whether a packet carries stream framing and, if
// so, whether it is a data segment.
func ClassifySegment(p *Packet) (data []byte, isStream, isData bool) {
	typ, _, payload, err := decodeSegment(p.Payload)
	if err != nil {
		return nil, false, false
	}
	return payload, true, typ == segDAT
}

func encodeSegment(typ byte, id uint64, payload []byte) []byte {
	out := make([]byte, 9+len(payload))
	out[0] = typ
	binary.BigEndian.PutUint64(out[1:9], id)
	copy(out[9:], payload)
	return out
}

func decodeSegment(raw []byte) (typ byte, id uint64, payload []byte, err error) {
	if len(raw) < 9 {
		return 0, 0, nil, errors.New("vnet: short segment")
	}
	switch raw[0] {
	case segSYN, segACK, segDAT, segFIN:
	default:
		return 0, 0, nil, errors.New("vnet: not a stream segment")
	}
	return raw[0], binary.BigEndian.Uint64(raw[1:9]), raw[9:], nil
}
