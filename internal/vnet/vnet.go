// Package vnet models the network the attack and its evaluation run over:
// named endpoints (hosts and VM NICs), port listeners, QEMU-style host
// port-forwarding chains, per-endpoint packet taps (the rootkit-in-the-
// middle's interception point), and bandwidth/latency-modelled bulk
// transfers (live migration traffic, netperf streams).
package vnet

import (
	"errors"
	"fmt"
	"time"

	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
)

// Errors callers match on.
var (
	ErrDuplicateEndpoint = errors.New("vnet: endpoint already exists")
	ErrUnknownEndpoint   = errors.New("vnet: unknown endpoint")
	ErrPortInUse         = errors.New("vnet: port already bound")
	ErrNoListener        = errors.New("vnet: no listener")
	ErrForwardLoop       = errors.New("vnet: forwarding loop")
	ErrDropped           = errors.New("vnet: packet dropped by tap")
	ErrLinkDown          = errors.New("vnet: link down")
)

// Addr is an (endpoint, port) pair.
type Addr struct {
	Endpoint string
	Port     int
}

// String renders the address as endpoint:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Endpoint, a.Port) }

// Packet is one unit of application traffic. Payload is application-defined
// bytes; taps may inspect and rewrite it.
type Packet struct {
	From    Addr
	To      Addr
	Payload []byte
	// Route records each endpoint the packet traversed, including
	// forwarding hops — useful for asserting the RITM actually sits on
	// the path.
	Route []string
}

// Clone deep-copies the packet (taps that store packets must clone).
func (p *Packet) Clone() *Packet {
	c := *p
	c.Payload = append([]byte(nil), p.Payload...)
	c.Route = append([]string(nil), p.Route...)
	return &c
}

// Verdict is a tap's decision about a packet.
type Verdict int

// Tap verdicts.
const (
	// VerdictPass lets the packet continue (possibly after the tap
	// mutated its payload).
	VerdictPass Verdict = iota + 1
	// VerdictDrop discards the packet.
	VerdictDrop
)

// Tap observes (and may rewrite or drop) every packet traversing an
// endpoint. The CloudSkulk passive services are pass-only taps; active
// services drop or modify.
type Tap interface {
	// Handle inspects pkt. It may mutate pkt.Payload in place before
	// returning VerdictPass, or return VerdictDrop to discard.
	Handle(pkt *Packet) Verdict
}

// TapFunc adapts a function to the Tap interface.
type TapFunc func(pkt *Packet) Verdict

// Handle implements Tap.
func (f TapFunc) Handle(pkt *Packet) Verdict { return f(pkt) }

var _ Tap = TapFunc(nil)

// LinkSpec describes the modelled capacity between two endpoints.
type LinkSpec struct {
	// Bandwidth in bytes per second.
	Bandwidth int64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Down simulates a failed link: transfers and sends error.
	Down bool
}

// Handler receives delivered packets on a bound port.
type Handler func(pkt *Packet)

type endpoint struct {
	name      string
	listeners map[int]Handler
	taps      []Tap

	// counters
	sentPkts, recvPkts, fwdPkts, dropPkts uint64
	sentBytes, recvBytes                  uint64
}

type linkKey struct{ a, b string }

// Stats is a snapshot of an endpoint's traffic counters.
type Stats struct {
	SentPackets      uint64
	ReceivedPackets  uint64
	ForwardedPackets uint64
	DroppedPackets   uint64
	SentBytes        uint64
	ReceivedBytes    uint64
}

// Network is the top-level fabric.
type Network struct {
	eng       *sim.Engine
	endpoints map[string]*endpoint
	forwards  map[Addr]Addr
	links     map[linkKey]LinkSpec

	// attachments maps an endpoint to the endpoint it is physically
	// carried by (a VM NIC rides its host's uplink; a nested NIC rides
	// the enclosing VM's NIC). Link lookup between two endpoints with no
	// explicit pair link falls back to the link between their attachment
	// roots, so one host<->host link governs all traffic between guests
	// of those hosts.
	attachments map[string]string
	// flows counts concurrent bulk transfers per attachment root, so
	// simultaneous migrations sharing a physical uplink (many sources
	// converging on one destination host, or one source fanning out)
	// contend for its bandwidth.
	flows map[string]int

	// DefaultLink is used for endpoint pairs without an explicit link.
	// The default models a host-internal (loopback/bridge) path, which is
	// all the CloudSkulk attack needs — it runs on one physical machine.
	DefaultLink LinkSpec

	// maxForwardHops bounds forwarding-chain resolution.
	maxForwardHops int
	// seqConn numbers stream connections.
	seqConn uint64

	tel        *telemetry.Registry
	telSent    map[string]*telemetry.Counter // per-root sent-bytes, cached
	telDropped *telemetry.Counter
	telFlows   *telemetry.Counter
	telContend *telemetry.Counter
}

// New returns an empty network on the given engine. The default link models
// an intra-host path: high bandwidth, microsecond latency.
func New(eng *sim.Engine) *Network {
	return &Network{
		eng:         eng,
		endpoints:   make(map[string]*endpoint),
		forwards:    make(map[Addr]Addr),
		links:       make(map[linkKey]LinkSpec),
		attachments: make(map[string]string),
		flows:       make(map[string]int),
		DefaultLink: LinkSpec{
			Bandwidth: 2 << 30, // 2 GiB/s intra-host
			Latency:   50 * time.Microsecond,
		},
		maxForwardHops: 16,
	}
}

// SetTelemetry attaches (or with nil detaches) a metrics registry. Sends
// count bytes against the sender's attachment root, tap drops are
// counted, and bulk-flow acquisitions record contention (an acquisition
// whose path already carries another flow).
func (n *Network) SetTelemetry(reg *telemetry.Registry) {
	n.tel = reg
	if reg == nil {
		n.telSent, n.telDropped, n.telFlows, n.telContend = nil, nil, nil, nil
		return
	}
	n.telSent = make(map[string]*telemetry.Counter)
	n.telDropped = reg.Counter("vnet_dropped_packets_total")
	n.telFlows = reg.Counter("vnet_flows_total")
	n.telContend = reg.Counter("vnet_flow_contended_total")
}

// sentCounter returns the cached per-root sent-bytes counter.
func (n *Network) sentCounter(root string) *telemetry.Counter {
	if n.tel == nil {
		return nil
	}
	c, ok := n.telSent[root]
	if !ok {
		c = n.tel.Counter(telemetry.Key("vnet_sent_bytes_total", "root", root))
		n.telSent[root] = c
	}
	return c
}

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// AddEndpoint registers a new named endpoint.
func (n *Network) AddEndpoint(name string) error {
	if _, ok := n.endpoints[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateEndpoint, name)
	}
	n.endpoints[name] = &endpoint{
		name:      name,
		listeners: make(map[int]Handler),
	}
	return nil
}

// RemoveEndpoint deletes an endpoint, its listeners, taps, and any forward
// rules that source from it. Forward rules *targeting* it are left in place
// and will fail at send time, exactly like a dangling hostfwd.
func (n *Network) RemoveEndpoint(name string) {
	delete(n.endpoints, name)
	delete(n.attachments, name)
	for from := range n.forwards {
		if from.Endpoint == name {
			delete(n.forwards, from)
		}
	}
}

// Attach records that child's traffic is physically carried by parent
// (a VM NIC attaches to its host; a nested VM's NIC attaches to the
// enclosing VM's NIC). Both endpoints must exist.
func (n *Network) Attach(child, parent string) error {
	if _, ok := n.endpoints[child]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, child)
	}
	if _, ok := n.endpoints[parent]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, parent)
	}
	n.attachments[child] = parent
	return nil
}

// Detach removes an attachment; the endpoint becomes its own root again.
func (n *Network) Detach(child string) {
	delete(n.attachments, child)
}

// RootOf follows the attachment chain from name to the endpoint that
// physically carries its traffic (name itself when unattached).
func (n *Network) RootOf(name string) string {
	for i := 0; i < n.maxForwardHops; i++ {
		parent, ok := n.attachments[name]
		if !ok {
			return name
		}
		name = parent
	}
	return name
}

// HasEndpoint reports whether name is registered.
func (n *Network) HasEndpoint(name string) bool {
	_, ok := n.endpoints[name]
	return ok
}

// Listen binds handler to addr. It fails if the endpoint does not exist or
// the port is taken.
func (n *Network) Listen(addr Addr, h Handler) error {
	ep, ok := n.endpoints[addr.Endpoint]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, addr.Endpoint)
	}
	if _, taken := ep.listeners[addr.Port]; taken {
		return fmt.Errorf("%w: %s", ErrPortInUse, addr)
	}
	ep.listeners[addr.Port] = h
	return nil
}

// Unlisten releases a port binding. Unknown bindings are a no-op.
func (n *Network) Unlisten(addr Addr) {
	if ep, ok := n.endpoints[addr.Endpoint]; ok {
		delete(ep.listeners, addr.Port)
	}
}

// Listening reports whether addr has a bound handler.
func (n *Network) Listening(addr Addr) bool {
	ep, ok := n.endpoints[addr.Endpoint]
	if !ok {
		return false
	}
	_, bound := ep.listeners[addr.Port]
	return bound
}

// AddForward installs a QEMU-hostfwd-style rule: traffic delivered to
// `from` is redirected to `to`. Rules may chain (host -> rootkit VM ->
// nested VM), which is precisely how CloudSkulk keeps the victim reachable.
func (n *Network) AddForward(from, to Addr) error {
	if _, ok := n.endpoints[from.Endpoint]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, from.Endpoint)
	}
	n.forwards[from] = to
	return nil
}

// RemoveForward deletes a forwarding rule.
func (n *Network) RemoveForward(from Addr) {
	delete(n.forwards, from)
}

// ResolveForward follows the forwarding chain from addr and returns the
// final destination plus the intermediate endpoints traversed. It errors on
// loops.
func (n *Network) ResolveForward(addr Addr) (Addr, []string, error) {
	var hops []string
	cur := addr
	for i := 0; i < n.maxForwardHops; i++ {
		next, ok := n.forwards[cur]
		if !ok {
			return cur, hops, nil
		}
		hops = append(hops, cur.Endpoint)
		cur = next
	}
	return cur, hops, fmt.Errorf("%w: starting at %s", ErrForwardLoop, addr)
}

// SetLink installs a symmetric link spec between endpoints a and b.
func (n *Network) SetLink(a, b string, spec LinkSpec) {
	n.links[n.key(a, b)] = spec
}

// Link returns the link spec between a and b: an explicit pair link if
// one is set, otherwise the link between the endpoints' attachment roots
// (the host<->host path their traffic physically crosses), otherwise the
// default intra-host link.
func (n *Network) Link(a, b string) LinkSpec {
	if spec, ok := n.links[n.key(a, b)]; ok {
		return spec
	}
	if ra, rb := n.RootOf(a), n.RootOf(b); ra != a || rb != b {
		if spec, ok := n.links[n.key(ra, rb)]; ok {
			return spec
		}
	}
	return n.DefaultLink
}

// AcquireFlow registers one bulk transfer between a and b on both
// endpoints' attachment roots and returns a release function. Flow
// counts let concurrent transfers sharing a physical uplink split its
// bandwidth — a storm of migrations converging on one host saturates
// that host's NIC even when every stream comes from a different source.
// Transfers whose endpoints share a root (intra-host) are never counted:
// the loopback path is uncontended.
func (n *Network) AcquireFlow(a, b string) func() {
	ra, rb := n.RootOf(a), n.RootOf(b)
	if ra == rb {
		return func() {}
	}
	n.telFlows.Inc()
	if n.flows[ra] > 0 || n.flows[rb] > 0 {
		n.telContend.Inc()
	}
	n.flows[ra]++
	n.flows[rb]++
	released := false
	return func() {
		if released {
			return
		}
		released = true
		for _, r := range []string{ra, rb} {
			if n.flows[r] > 1 {
				n.flows[r]--
			} else {
				delete(n.flows, r)
			}
		}
	}
}

// Flows reports the number of concurrent bulk transfers a path between
// a and b must share capacity with: the busier of the two attachment
// roots' flow counts.
func (n *Network) Flows(a, b string) int {
	fa, fb := n.flows[n.RootOf(a)], n.flows[n.RootOf(b)]
	if fa > fb {
		return fa
	}
	return fb
}

func (n *Network) key(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// TransferDuration returns how long moving `bytes` from a to b takes at the
// link's modelled bandwidth, plus one propagation latency. It does not
// advance the clock; bulk users (migration) interleave the transfer with
// other event sources via Engine.RunFor.
func (n *Network) TransferDuration(a, b string, bytes int64) (time.Duration, error) {
	spec := n.Link(a, b)
	if spec.Down {
		return 0, fmt.Errorf("%w: %s<->%s", ErrLinkDown, a, b)
	}
	if spec.Bandwidth <= 0 {
		return 0, fmt.Errorf("vnet: link %s<->%s has no bandwidth", a, b)
	}
	sec := float64(bytes) / float64(spec.Bandwidth)
	return time.Duration(sec*float64(time.Second)) + spec.Latency, nil
}

// Send resolves forwarding from pkt.To, runs every traversed endpoint's
// taps (in hop order, destination last), and delivers the packet to the
// final listener after the link latency. The returned error reports
// drops and missing listeners synchronously; delivery itself happens as a
// scheduled event so ordering follows virtual time.
func (n *Network) Send(pkt *Packet) error {
	src, ok := n.endpoints[pkt.From.Endpoint]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, pkt.From.Endpoint)
	}
	dst, hops, err := n.ResolveForward(pkt.To)
	if err != nil {
		return err
	}
	dstEP, ok := n.endpoints[dst.Endpoint]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, dst.Endpoint)
	}
	handler, ok := dstEP.listeners[dst.Port]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoListener, dst)
	}

	src.sentPkts++
	src.sentBytes += uint64(len(pkt.Payload))
	n.sentCounter(n.RootOf(pkt.From.Endpoint)).Add(uint64(len(pkt.Payload)))
	pkt.Route = append(pkt.Route, pkt.From.Endpoint)
	// Forwarding is destination NAT: taps along the path (and the final
	// listener) see the resolved destination.
	pkt.To = dst

	// Taps run on each forwarding hop, then on the destination. This is
	// where a rootkit VM interposed on the path sees the traffic.
	for _, hop := range hops {
		ep, ok := n.endpoints[hop]
		if !ok {
			continue
		}
		ep.fwdPkts++
		pkt.Route = append(pkt.Route, hop)
		if v := runTaps(ep, pkt); v == VerdictDrop {
			ep.dropPkts++
			n.telDropped.Inc()
			return fmt.Errorf("%w: at %s", ErrDropped, hop)
		}
	}
	pkt.Route = append(pkt.Route, dst.Endpoint)
	if v := runTaps(dstEP, pkt); v == VerdictDrop {
		dstEP.dropPkts++
		n.telDropped.Inc()
		return fmt.Errorf("%w: at %s", ErrDropped, dst.Endpoint)
	}

	spec := n.Link(pkt.From.Endpoint, dst.Endpoint)
	if spec.Down {
		return fmt.Errorf("%w: %s<->%s", ErrLinkDown, pkt.From.Endpoint, dst.Endpoint)
	}
	n.eng.Schedule(spec.Latency, "vnet.deliver", func() {
		dstEP.recvPkts++
		dstEP.recvBytes += uint64(len(pkt.Payload))
		handler(pkt)
	})
	return nil
}

func runTaps(ep *endpoint, pkt *Packet) Verdict {
	for _, t := range ep.taps {
		if t.Handle(pkt) == VerdictDrop {
			return VerdictDrop
		}
	}
	return VerdictPass
}

// AddTap attaches a tap to an endpoint; it sees all packets forwarded
// through or delivered to that endpoint.
func (n *Network) AddTap(name string, t Tap) error {
	ep, ok := n.endpoints[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEndpoint, name)
	}
	ep.taps = append(ep.taps, t)
	return nil
}

// ClearTaps removes all taps from an endpoint.
func (n *Network) ClearTaps(name string) {
	if ep, ok := n.endpoints[name]; ok {
		ep.taps = nil
	}
}

// EndpointStats returns a snapshot of an endpoint's counters.
func (n *Network) EndpointStats(name string) (Stats, error) {
	ep, ok := n.endpoints[name]
	if !ok {
		return Stats{}, fmt.Errorf("%w: %q", ErrUnknownEndpoint, name)
	}
	return Stats{
		SentPackets:      ep.sentPkts,
		ReceivedPackets:  ep.recvPkts,
		ForwardedPackets: ep.fwdPkts,
		DroppedPackets:   ep.dropPkts,
		SentBytes:        ep.sentBytes,
		ReceivedBytes:    ep.recvBytes,
	}, nil
}
