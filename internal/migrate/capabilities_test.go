package migrate

import (
	"errors"
	"testing"
	"time"

	"cloudskulk/internal/mem"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/vnet"
)

// dirtier attaches a guest-aware page-dirtying ticker.
func dirtier(tb *testbed, src *qemu.VM, writesPerTick int) *sim.Ticker {
	rng := tb.eng.RNG()
	return sim.NewTicker(tb.eng, 10*time.Millisecond, "dirtier", func() {
		if !src.Running() {
			return
		}
		for i := 0; i < writesPerTick; i++ {
			p := rng.Intn(src.RAM().NumPages())
			_, _ = src.RAM().Write(p, mem.Content(rng.Uint64()|1))
		}
	})
}

func TestXBZRLEReducesWireBytes(t *testing.T) {
	run := func(xbzrle bool) Result {
		tb := newTestbed(t, 1)
		tb.me.Tunables.XBZRLE = xbzrle
		src := tb.vm(t, "src", 32, "")
		tb.vm(t, "dst", 32, "tcp:0.0.0.0:4444")
		tk := dirtier(tb, src, 40)
		defer tk.Stop()
		if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
			t.Fatal(err)
		}
		res, _ := tb.me.LastResult()
		return res
	}
	plain := run(false)
	delta := run(true)
	if plain.Iterations < 2 {
		t.Fatalf("workload produced no resends (%d iterations)", plain.Iterations)
	}
	if delta.BytesOnWire >= plain.BytesOnWire {
		t.Fatalf("xbzrle wire %d >= plain %d", delta.BytesOnWire, plain.BytesOnWire)
	}
	// Memory equality still holds with compression.
	if !delta.Converged {
		t.Fatal("xbzrle run did not converge")
	}
}

func TestXBZRLEViaMonitorCapability(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 16, "")
	if _, err := src.Monitor().Execute("migrate_set_capability xbzrle on"); err != nil {
		t.Fatal(err)
	}
	if !tb.me.Tunables.XBZRLE {
		t.Fatal("capability did not stick")
	}
	if _, err := src.Monitor().Execute("migrate_set_capability xbzrle off"); err != nil {
		t.Fatal(err)
	}
	if tb.me.Tunables.XBZRLE {
		t.Fatal("capability off failed")
	}
	if _, err := src.Monitor().Execute("migrate_set_capability warp-drive on"); err == nil {
		t.Fatal("unknown capability accepted")
	}
	if _, err := src.Monitor().Execute("migrate_set_capability xbzrle maybe"); !errors.Is(err, qemu.ErrUnknownCommand) {
		t.Fatalf("bad toggle err = %v", err)
	}
}

func TestAutoConvergeRescuesHogWorkload(t *testing.T) {
	run := func(autoConverge bool) Result {
		tb := newTestbed(t, 1)
		tb.me.Tunables.AutoConverge = autoConverge
		tb.me.Tunables.MaxIterations = 40
		src := tb.vm(t, "src", 16, "")
		dst := tb.vm(t, "dst", 16, "tcp:0.0.0.0:4444")
		// Dirty every page constantly: hopeless without throttling.
		rng := tb.eng.RNG()
		tk := sim.NewTicker(tb.eng, 5*time.Millisecond, "hog", func() {
			if !src.Running() {
				return
			}
			for p := 0; p < src.RAM().NumPages(); p++ {
				_, _ = src.RAM().Write(p, mem.Content(rng.Uint64()|1))
			}
		})
		defer tk.Stop()
		if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
			t.Fatal(err)
		}
		tk.Stop()
		if !mem.EqualContents(src.RAM(), dst.RAM()) {
			t.Fatal("memory differs at handoff")
		}
		res, _ := tb.me.LastResult()
		return res
	}
	unthrottled := run(false)
	throttled := run(true)
	if unthrottled.Converged {
		t.Fatal("hog converged without auto-converge in 40 rounds")
	}
	if !throttled.Converged {
		t.Fatal("auto-converge failed to rescue the hog")
	}
	if throttled.ThrottleSteps == 0 {
		t.Fatal("no throttle escalations recorded")
	}
}

func TestAutoConvergeViaMonitor(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 16, "")
	if _, err := src.Monitor().Execute("migrate_set_capability auto-converge on"); err != nil {
		t.Fatal(err)
	}
	if !tb.me.Tunables.AutoConverge {
		t.Fatal("auto-converge not enabled")
	}
}

func TestMigrateCancelMidFlight(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 64, "")
	dst := tb.vm(t, "dst", 64, "tcp:0.0.0.0:4444")
	// Keep the migration iterating so cancellation has a window.
	tk := dirtier(tb, src, 60)
	defer tk.Stop()
	// The admin (or attacker) cancels one virtual second in.
	tb.eng.Schedule(time.Second, "cancel", func() {
		if err := tb.me.CancelMigration(src); err != nil {
			t.Errorf("cancel: %v", err)
		}
	})
	err := tb.me.Migrate(src, "tcp:127.0.0.1:4444")
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	// Source keeps running; destination still waiting.
	if !src.Running() {
		t.Fatalf("source state = %v", src.State())
	}
	if dst.State() != qemu.StateIncoming {
		t.Fatalf("dst state = %v", dst.State())
	}
	if src.MigrationStatus().Status != "cancelled" {
		t.Fatalf("info migrate = %q", src.MigrationStatus().Status)
	}
	// A fresh migration afterwards succeeds.
	tk.Stop()
	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateCancelWithoutMigration(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 16, "")
	if err := tb.me.CancelMigration(src); !errors.Is(err, ErrNotMigrating) {
		t.Fatalf("err = %v", err)
	}
	if _, err := src.Monitor().Execute("migrate_cancel"); !errors.Is(err, ErrNotMigrating) {
		t.Fatalf("monitor err = %v", err)
	}
}

func TestMidMigrationLinkFailureResumesSource(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 64, "")
	tb.vm(t, "dst", 64, "tcp:0.0.0.0:4444")
	tk := dirtier(tb, src, 60)
	defer tk.Stop()
	// The link dies mid-migration.
	tb.eng.Schedule(500*time.Millisecond, "linkfail", func() {
		tb.net.SetLink("host", "dst.nic", vnet.LinkSpec{Bandwidth: 1, Down: true})
	})
	err := tb.me.Migrate(src, "tcp:127.0.0.1:4444")
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if !src.Running() {
		t.Fatalf("source not handed back: %v", src.State())
	}
	if src.MigrationStatus().Status != "failed" {
		t.Fatalf("info migrate = %q", src.MigrationStatus().Status)
	}
}
