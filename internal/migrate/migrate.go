// Package migrate implements QEMU-style live migration over the virtual
// network: the pre-copy algorithm the paper uses (iterative dirty-page
// rounds, a downtime-bounded stop-and-copy, zero-page compression, and the
// 32 MiB/s default bandwidth cap that dominates the paper's timings) plus
// post-copy as the alternative the paper notes the attack also works with.
package migrate

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
	"cloudskulk/internal/vnet"
)

// Errors callers match on.
var (
	ErrNoIncoming     = errors.New("migrate: no incoming VM at destination")
	ErrSourceState    = errors.New("migrate: source not migratable")
	ErrConfigMismatch = errors.New("migrate: destination config mismatch")
	ErrUnknownVM      = errors.New("migrate: vm not registered with engine")
	ErrInProgress     = errors.New("migrate: migration already in progress")
	ErrAborted        = errors.New("migrate: migration aborted")
	ErrCancelled      = errors.New("migrate: migration cancelled")
	ErrNotMigrating   = errors.New("migrate: no migration in progress")
)

// Mode selects the migration algorithm.
type Mode int

// Migration modes.
const (
	// PreCopy iteratively copies dirty pages while the guest runs, then
	// stops it for a short final pass (the paper's configuration).
	PreCopy Mode = iota + 1
	// PostCopy stops the guest immediately, resumes it at the
	// destination, and pulls pages on demand.
	PostCopy
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case PreCopy:
		return "pre-copy"
	case PostCopy:
		return "post-copy"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Tunables mirror QEMU's migration parameters.
type Tunables struct {
	Mode Mode
	// BandwidthLimit caps the transfer rate in bytes/second; the
	// effective rate is also bounded by the network link. QEMU 2.9's
	// default is 32 MiB/s — the reason the paper's 1 GiB idle guest
	// takes ~26 s to steal.
	BandwidthLimit int64
	// DowntimeLimit is the maximum tolerated stop-and-copy pause;
	// pre-copy iterates until the remaining dirty set fits.
	DowntimeLimit time.Duration
	// MaxIterations force-stops pre-copy that is not converging
	// (workload dirtying faster than the link drains).
	MaxIterations int
	// ZeroPageBytes is the on-wire cost of a compressed zero page.
	ZeroPageBytes int64
	// NestedReceiveOverhead is the fractional throughput loss when the
	// destination is a nested (L2) guest: every received page is written
	// through the L1 hypervisor's emulated EPT, costing exits.
	NestedReceiveOverhead float64

	// XBZRLE enables delta compression for pages that are re-sent after
	// changing (QEMU's xbzrle capability): instead of a full page, only
	// the encoded delta crosses the wire.
	XBZRLE bool
	// XBZRLEBytes is the modelled on-wire size of one delta-compressed
	// page.
	XBZRLEBytes int64
	// AutoConverge enables QEMU's auto-converge capability: when
	// pre-copy is losing to the guest's dirty rate, the guest's vCPU is
	// throttled in escalating steps until the migration can finish.
	AutoConverge bool
	// AutoConvergeInitial is the first throttle fraction, and
	// AutoConvergeIncrement is added at each escalation (QEMU defaults:
	// 20% + 10% steps, capped at 99%).
	AutoConvergeInitial   float64
	AutoConvergeIncrement float64
}

// DefaultTunables match QEMU 2.9 defaults on the paper's testbed.
func DefaultTunables() Tunables {
	return Tunables{
		Mode:                  PreCopy,
		BandwidthLimit:        qemu.DefaultMigrationSpeed,
		DowntimeLimit:         300 * time.Millisecond,
		MaxIterations:         1000,
		ZeroPageBytes:         9,
		NestedReceiveOverhead: 0.15,
		XBZRLEBytes:           1024,
		AutoConvergeInitial:   0.20,
		AutoConvergeIncrement: 0.10,
	}
}

// Result summarizes one completed migration.
type Result struct {
	Mode             Mode
	TotalTime        time.Duration
	Downtime         time.Duration
	Iterations       int
	PagesTransferred int64
	BytesOnWire      int64
	Converged        bool
	// ThrottleSteps counts auto-converge escalations (0 when the
	// capability is off or never needed).
	ThrottleSteps int
	Source        string
	Destination   string
}

// Engine is the migration service: it tracks where VMs live on the network
// and which VMs are listening for incoming streams, and executes
// migrations in virtual time.
type Engine struct {
	eng *sim.Engine
	net *vnet.Network

	Tunables Tunables

	hostOf    map[*qemu.VM]string
	incoming  map[vnet.Addr]*qemu.VM
	active    map[*qemu.VM]bool
	cancelled map[*qemu.VM]bool
	results   []Result

	telStarted   *telemetry.Counter
	telCompleted *telemetry.Counter
	telAborted   *telemetry.Counter
	telCancelled *telemetry.Counter
	telBytes     *telemetry.Counter
	telRounds    *telemetry.Histogram
	telDowntime  *telemetry.Histogram
	telPages     *telemetry.Histogram
	spans        *telemetry.SpanTracer
}

// NewEngine returns a migration engine with default tunables.
func NewEngine(eng *sim.Engine, network *vnet.Network) *Engine {
	return &Engine{
		eng:       eng,
		net:       network,
		Tunables:  DefaultTunables(),
		hostOf:    make(map[*qemu.VM]string),
		incoming:  make(map[vnet.Addr]*qemu.VM),
		active:    make(map[*qemu.VM]bool),
		cancelled: make(map[*qemu.VM]bool),
	}
}

// SetTelemetry attaches (or with nil detaches) a metrics registry:
// outcome counters plus rounds / downtime / transferred-pages histograms.
func (e *Engine) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		e.telStarted, e.telCompleted, e.telAborted, e.telCancelled = nil, nil, nil, nil
		e.telBytes, e.telRounds, e.telDowntime, e.telPages = nil, nil, nil, nil
		return
	}
	e.telStarted = reg.Counter("migrate_started_total")
	e.telCompleted = reg.Counter("migrate_completed_total")
	e.telAborted = reg.Counter("migrate_aborted_total")
	e.telCancelled = reg.Counter("migrate_cancelled_total")
	e.telBytes = reg.Counter("migrate_wire_bytes_total")
	e.telRounds = reg.Histogram("migrate_rounds", telemetry.CountBuckets)
	e.telDowntime = reg.Histogram("migrate_downtime_us", telemetry.DurationBuckets)
	e.telPages = reg.Histogram("migrate_pages", telemetry.PageBuckets)
}

// SetSpans attaches a span tracer; each migration then records a span
// tree (migrate -> stream -> round-N, downtime). The tracer, like the
// sim engine, must not be shared across worker goroutines.
func (e *Engine) SetSpans(st *telemetry.SpanTracer) { e.spans = st }

// CancelMigration flags an in-flight migration of vm for cancellation; the
// engine aborts it at the next round boundary and resumes the source —
// the monitor's migrate_cancel.
func (e *Engine) CancelMigration(vm *qemu.VM) error {
	if !e.active[vm] {
		return fmt.Errorf("%w: %q", ErrNotMigrating, vm.Name())
	}
	e.cancelled[vm] = true
	return nil
}

var (
	_ qemu.MigrationCanceller = (*Engine)(nil)
	_ qemu.CapabilitySetter   = (*Engine)(nil)
)

// SetMigrationCapability toggles a QEMU-style migration capability. The
// engine's tunables are shared across migrations it runs, mirroring a
// management stack configuring the host's migration defaults.
func (e *Engine) SetMigrationCapability(_ *qemu.VM, name string, on bool) error {
	switch name {
	case "xbzrle":
		e.Tunables.XBZRLE = on
	case "auto-converge":
		e.Tunables.AutoConverge = on
	default:
		return fmt.Errorf("migrate: unknown capability %q", name)
	}
	return nil
}

// RegisterVM records the network endpoint hosting the VM's QEMU process.
func (e *Engine) RegisterVM(vm *qemu.VM, hostEndpoint string) {
	e.hostOf[vm] = hostEndpoint
}

// RegisterIncoming announces an -incoming listener.
func (e *Engine) RegisterIncoming(vm *qemu.VM, addr vnet.Addr) error {
	if cur, dup := e.incoming[addr]; dup && cur != vm {
		return fmt.Errorf("migrate: incoming address %s already registered", addr)
	}
	e.incoming[addr] = vm
	return nil
}

// UnregisterIncoming removes a listener.
func (e *Engine) UnregisterIncoming(addr vnet.Addr) {
	delete(e.incoming, addr)
}

// Results returns all completed migration results, oldest first.
func (e *Engine) Results() []Result {
	return append([]Result(nil), e.results...)
}

// LastResult returns the most recent result, if any.
func (e *Engine) LastResult() (Result, bool) {
	if len(e.results) == 0 {
		return Result{}, false
	}
	return e.results[len(e.results)-1], true
}

// Migrate implements qemu.Migrator: the monitor's `migrate tcp:host:port`.
// The URI's host part is interpreted from the source QEMU process's
// vantage point: its hosting endpoint (127.0.0.1 on the host is the host
// itself). Forwarding chains are then resolved exactly like real
// connections, which is how the double port-forward reaches the nested VM.
func (e *Engine) Migrate(vm *qemu.VM, uri string) error {
	port, err := qemu.ParseIncomingPort(uri)
	if err != nil {
		return err
	}
	srcHost, ok := e.hostOf[vm]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVM, vm.Name())
	}
	return e.MigrateTo(vm, vnet.Addr{Endpoint: srcHost, Port: port})
}

// MigrateTo migrates vm to the incoming VM reachable at target (after
// forward-chain resolution). It runs the whole migration in virtual time
// and returns when the destination has taken over.
func (e *Engine) MigrateTo(vm *qemu.VM, target vnet.Addr) error {
	if e.active[vm] {
		return fmt.Errorf("%w: %q", ErrInProgress, vm.Name())
	}
	if vm.State() != qemu.StateRunning && vm.State() != qemu.StatePaused {
		return fmt.Errorf("%w: %q is %v", ErrSourceState, vm.Name(), vm.State())
	}
	final, _, err := e.net.ResolveForward(target)
	if err != nil {
		return err
	}
	dst, ok := e.incoming[final]
	if !ok {
		return fmt.Errorf("%w: %s (resolved from %s)", ErrNoIncoming, final, target)
	}
	if dst.State() != qemu.StateIncoming {
		return fmt.Errorf("%w: destination %q is %v", ErrNoIncoming, dst.Name(), dst.State())
	}
	if err := vm.Config().MatchesForMigration(dst.Config()); err != nil {
		vm.SetMigrationInfo(qemu.MigrationInfo{Status: "failed"})
		return fmt.Errorf("%w: %w", ErrConfigMismatch, err)
	}

	e.active[vm] = true
	e.telStarted.Inc()
	span := e.spans.Start("migrate",
		telemetry.A("vm", vm.Name()),
		telemetry.A("dst", dst.Name()),
		telemetry.A("mode", e.Tunables.Mode.String()))
	// Hold a flow on the source-host<->destination-host link for the whole
	// migration so concurrent migrations sharing that link contend.
	release := e.net.AcquireFlow(e.hostOf[vm], dst.Endpoint())
	defer func() {
		release()
		delete(e.active, vm)
		delete(e.cancelled, vm)
	}()

	wasRunning := vm.State() == qemu.StateRunning
	var res Result
	switch e.Tunables.Mode {
	case PostCopy:
		res, err = e.runPostCopy(vm, dst)
	default:
		res, err = e.runPreCopy(vm, dst)
	}
	if err != nil {
		status := "failed"
		if errors.Is(err, ErrCancelled) {
			status = "cancelled"
			e.telCancelled.Inc()
		} else {
			e.telAborted.Inc()
		}
		span.Set("outcome", status)
		span.End()
		vm.SetMigrationInfo(qemu.MigrationInfo{Status: status})
		// An aborted migration hands the guest back: if we paused it
		// for stop-and-copy or throttling, it resumes.
		if wasRunning && vm.State() == qemu.StatePaused {
			if rerr := vm.Resume(); rerr != nil {
				return fmt.Errorf("%w (and resume failed: %w)", err, rerr)
			}
		}
		return err
	}
	res.Source = vm.Name()
	res.Destination = dst.Name()
	e.results = append(e.results, res)
	span.Set("outcome", "completed")
	span.End()
	e.telCompleted.Inc()
	e.telBytes.Add(uint64(res.BytesOnWire))
	e.telRounds.Observe(int64(res.Iterations))
	e.telDowntime.Observe(res.Downtime.Microseconds())
	e.telPages.Observe(res.PagesTransferred)
	return nil
}

// effectiveBandwidth computes the modelled transfer rate between source
// host and destination endpoint, honoring the speed cap, the link (an
// explicit pair link, or the link between the endpoints' attachment
// roots — the host<->host path for cross-host migrations), contention
// from concurrent transfers sharing the link, and the nested-receive
// penalty. A link that is down aborts the migration with a typed error
// that matches both ErrAborted and vnet.ErrLinkDown.
func (e *Engine) effectiveBandwidth(vm, dst *qemu.VM) (int64, error) {
	srcHost := e.hostOf[vm]
	link := e.net.Link(srcHost, dst.Endpoint())
	if link.Down {
		return 0, fmt.Errorf("%w: %w: %s<->%s", ErrAborted, vnet.ErrLinkDown, srcHost, dst.Endpoint())
	}
	bw := e.Tunables.BandwidthLimit
	if limit := vm.Monitor().SpeedLimit(); limit > 0 && limit < bw {
		bw = limit
	}
	// Concurrent migrations crossing the same physical link split its
	// capacity evenly; the fair share is recomputed at every round
	// boundary, so a storm's rounds slow down as peers join.
	linkBW := link.Bandwidth
	if flows := e.net.Flows(srcHost, dst.Endpoint()); flows > 1 && linkBW > 0 {
		linkBW /= int64(flows)
	}
	if linkBW > 0 && linkBW < bw {
		bw = linkBW
	}
	if dst.Level() >= cpu.L2 {
		bw = int64(float64(bw) / (1 + e.Tunables.NestedReceiveOverhead))
	}
	if bw <= 0 {
		return 0, fmt.Errorf("%w: no bandwidth", ErrAborted)
	}
	return bw, nil
}

// transferPages copies the given source pages to the destination RAM and
// returns the on-wire byte count. Zero pages compress to a header; with
// XBZRLE enabled, pages being *re-sent* (already in the destination from a
// previous round) cost only a delta.
func (e *Engine) transferPages(src, dst *mem.Space, pages []int, sent map[int]bool) (int64, error) {
	var bytes int64
	for _, p := range pages {
		c, err := src.Read(p)
		if err != nil {
			return bytes, err
		}
		resend := sent != nil && sent[p]
		if _, err := dst.Write(p, c); err != nil {
			return bytes, err
		}
		switch {
		case c == mem.ZeroPage:
			bytes += e.Tunables.ZeroPageBytes
		case e.Tunables.XBZRLE && resend:
			bytes += e.Tunables.XBZRLEBytes
		default:
			bytes += mem.PageSize
		}
		if sent != nil {
			sent[p] = true
		}
	}
	return bytes, nil
}

func (e *Engine) runPreCopy(vm, dst *qemu.VM) (Result, error) {
	start := e.eng.Now()
	src := vm.RAM()
	dram := dst.RAM()
	res := Result{Mode: PreCopy}

	totalMB := float64(vm.Config().MemoryMB)
	// Round 1 transfers all of RAM.
	src.MarkAllDirty()
	// Publish the active state up front: monitor queries fired while a
	// round is streaming (the engine keeps running events during RunFor)
	// must see an in-flight migration, not a stale pre-start view.
	vm.SetMigrationInfo(qemu.MigrationInfo{
		Status:      "active",
		RemainingMB: totalMB,
		TotalMB:     totalMB,
	})

	var sent map[int]bool
	if e.Tunables.XBZRLE {
		sent = make(map[int]bool, src.NumPages())
	}
	// One harvest buffer for the whole migration: every round (and the
	// final stop-and-copy) drains into it, so iterating costs no per-round
	// allocation. Local on purpose — fleet storms nest migrations inside
	// each other's RunFor, so the buffer cannot live on the Engine.
	buf := make([]int, 0, src.NumPages())
	throttle := 0.0
	converged := false
	stream := e.spans.Start("stream")
	for res.Iterations < e.Tunables.MaxIterations {
		if e.cancelled[vm] {
			return res, fmt.Errorf("%w: %q", ErrCancelled, vm.Name())
		}
		bw, err := e.effectiveBandwidth(vm, dst)
		if err != nil {
			return res, err
		}
		pages := src.DrainDirtyInto(buf[:0], 0)
		if len(pages) == 0 {
			converged = true
			break
		}
		buf = pages[:0]
		res.Iterations++
		round := e.spans.Start("round",
			telemetry.A("idx", strconv.Itoa(res.Iterations)),
			telemetry.A("pages", strconv.Itoa(len(pages))))
		wire, err := e.transferPages(src, dram, pages, sent)
		if err != nil {
			return res, err
		}
		res.PagesTransferred += int64(len(pages))
		res.BytesOnWire += wire
		dur := time.Duration(float64(wire) / float64(bw) * float64(time.Second))
		// The guest (and everything else on the engine) keeps running
		// while the round streams; its writes re-dirty pages. Under
		// auto-converge throttling the guest is stalled for part of
		// each round, suppressing its dirty rate.
		if throttle > 0 && vm.State() == qemu.StateRunning {
			stall := time.Duration(float64(dur) * throttle)
			if err := vm.Pause(); err != nil {
				return res, err
			}
			e.eng.RunFor(stall)
			if err := vm.Resume(); err != nil {
				return res, err
			}
			e.eng.RunFor(dur - stall)
		} else {
			e.eng.RunFor(dur)
		}

		round.End()
		vm.SetMigrationInfo(qemu.MigrationInfo{
			Status:        "active",
			TransferredMB: float64(res.BytesOnWire) / (1 << 20),
			RemainingMB:   float64(src.DirtyCount()) * mem.PageSize / (1 << 20),
			TotalMB:       totalMB,
			Iterations:    res.Iterations,
			TotalTime:     e.eng.Now() - start,
		})

		// Converged when the remaining dirty set fits in the downtime
		// budget.
		remaining := int64(src.DirtyCount()) * mem.PageSize
		if time.Duration(float64(remaining)/float64(bw)*float64(time.Second)) <= e.Tunables.DowntimeLimit {
			converged = true
			break
		}
		// Auto-converge: if this round re-dirtied at least as much as
		// it transferred, escalate the throttle. At maximum throttle
		// the guest is effectively stopped, so the migration proceeds
		// straight to stop-and-copy (trading downtime for completion,
		// exactly the capability's contract).
		if e.Tunables.AutoConverge && src.DirtyCount() >= len(pages)*9/10 {
			if throttle == 0 {
				throttle = e.Tunables.AutoConvergeInitial
			} else {
				throttle += e.Tunables.AutoConvergeIncrement
			}
			res.ThrottleSteps++
			if throttle >= 0.99 {
				converged = true
				break
			}
		}
	}

	stream.End()

	// Stop-and-copy: pause the source, transfer the remaining dirty
	// pages, hand off.
	if vm.State() == qemu.StateRunning {
		if err := vm.Pause(); err != nil {
			return res, err
		}
	}
	downStart := e.eng.Now()
	down := e.spans.Start("downtime")
	bw, err := e.effectiveBandwidth(vm, dst)
	if err != nil {
		return res, err
	}
	pages := src.DrainDirtyInto(buf[:0], 0)
	wire, err := e.transferPages(src, dram, pages, sent)
	if err != nil {
		return res, err
	}
	if len(pages) > 0 {
		res.Iterations++
	}
	res.PagesTransferred += int64(len(pages))
	res.BytesOnWire += wire
	e.eng.RunFor(time.Duration(float64(wire) / float64(bw) * float64(time.Second)))

	if err := e.handoff(vm, dst); err != nil {
		return res, err
	}
	down.End()
	res.Downtime = e.eng.Now() - downStart
	res.TotalTime = e.eng.Now() - start
	res.Converged = converged
	e.finishInfo(vm, dst, res, totalMB)
	return res, nil
}

func (e *Engine) runPostCopy(vm, dst *qemu.VM) (Result, error) {
	start := e.eng.Now()
	src := vm.RAM()
	dram := dst.RAM()
	res := Result{Mode: PostCopy}
	totalMB := float64(vm.Config().MemoryMB)

	// Stop the source immediately: downtime is just the device-state
	// switch.
	if vm.State() == qemu.StateRunning {
		if err := vm.Pause(); err != nil {
			return res, err
		}
	}
	downStart := e.eng.Now()
	down := e.spans.Start("downtime")
	if err := e.handoff(vm, dst); err != nil {
		return res, err
	}
	down.End()
	res.Downtime = e.eng.Now() - downStart

	// Background + demand-paged pull of all of RAM. Demand faults make
	// the effective rate worse than a sequential stream.
	bw, err := e.effectiveBandwidth(vm, dst)
	if err != nil {
		return res, err
	}
	bw = int64(float64(bw) * 0.9) // fault round trips steal ~10%
	src.MarkAllDirty()
	pages := src.DrainDirty(0)
	// Post-copy sends each page exactly once; XBZRLE has nothing to do.
	wire, terr := e.transferPages(src, dram, pages, nil)
	if terr != nil {
		return res, terr
	}
	res.Iterations = 1
	res.PagesTransferred = int64(len(pages))
	res.BytesOnWire = wire
	pull := e.spans.Start("pull", telemetry.A("pages", strconv.Itoa(len(pages))))
	e.eng.RunFor(time.Duration(float64(wire) / float64(bw) * float64(time.Second)))
	pull.End()

	res.TotalTime = e.eng.Now() - start
	res.Converged = true
	e.finishInfo(vm, dst, res, totalMB)
	return res, nil
}

// handoff flips execution from source to destination: the destination
// leaves incoming state and starts running; the source stays paused (the
// attacker kills it moments later; a legitimate migration does the same).
func (e *Engine) handoff(vm, dst *qemu.VM) error {
	// Device-state transfer: a few milliseconds.
	e.eng.RunFor(5 * time.Millisecond)
	if err := dst.FinishIncoming(); err != nil {
		return err
	}
	if err := dst.Resume(); err != nil {
		return err
	}
	// The destination now owns the incoming address no longer.
	for addr, v := range e.incoming {
		if v == dst {
			delete(e.incoming, addr)
		}
	}
	return nil
}

func (e *Engine) finishInfo(vm, dst *qemu.VM, res Result, totalMB float64) {
	info := qemu.MigrationInfo{
		Status:        "completed",
		TransferredMB: float64(res.BytesOnWire) / (1 << 20),
		RemainingMB:   0,
		TotalMB:       totalMB,
		Downtime:      res.Downtime,
		TotalTime:     res.TotalTime,
		Iterations:    res.Iterations,
	}
	vm.SetMigrationInfo(info)
	dst.SetMigrationInfo(info)
}
