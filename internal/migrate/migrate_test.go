package migrate

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"cloudskulk/internal/kvm"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/vnet"
)

// testbed wires a host with a migration engine.
type testbed struct {
	eng *sim.Engine
	net *vnet.Network
	h   *kvm.Host
	me  *Engine
}

func newTestbed(t *testing.T, seed int64) *testbed {
	t.Helper()
	eng := sim.NewEngine(seed)
	network := vnet.New(eng)
	h, err := kvm.NewHost(eng, network, "host")
	if err != nil {
		t.Fatal(err)
	}
	me := NewEngine(eng, network)
	h.SetMigrationService(me)
	return &testbed{eng: eng, net: network, h: h, me: me}
}

func (tb *testbed) vm(t *testing.T, name string, memMB int64, incoming string) *qemu.VM {
	t.Helper()
	cfg := qemu.DefaultConfig(name)
	cfg.MemoryMB = memMB
	cfg.Incoming = incoming
	vm, err := tb.h.Hypervisor().CreateVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.h.Hypervisor().Launch(name); err != nil {
		t.Fatal(err)
	}
	return vm
}

var _ kvm.MigrationService = (*Engine)(nil)

func TestModeString(t *testing.T) {
	if PreCopy.String() != "pre-copy" || PostCopy.String() != "post-copy" {
		t.Fatal("mode names")
	}
	if Mode(9).String() != "mode(9)" {
		t.Fatal("unknown mode name")
	}
}

func TestPreCopyIdleMigration(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 64, "")
	dst := tb.vm(t, "dst", 64, "tcp:0.0.0.0:4444")

	before := src.RAM().Snapshot()
	if _, err := src.Monitor().Execute("migrate tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	res, ok := tb.me.LastResult()
	if !ok {
		t.Fatal("no result")
	}
	if !res.Converged {
		t.Fatal("idle migration did not converge")
	}
	if res.Iterations < 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	// Memory-equality invariant at handoff.
	after := dst.RAM().Snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("page %d differs after migration", i)
		}
	}
	// Source paused, destination running.
	if src.State() != qemu.StatePaused {
		t.Fatalf("src state = %v", src.State())
	}
	if !dst.Running() {
		t.Fatalf("dst state = %v", dst.State())
	}
	// 64 MiB at 32 MiB/s: ~2s with zero-page compression making it less.
	if res.TotalTime <= 0 || res.TotalTime > 5*time.Second {
		t.Fatalf("total time = %v", res.TotalTime)
	}
	if res.Downtime > tb.me.Tunables.DowntimeLimit+100*time.Millisecond {
		t.Fatalf("downtime = %v over budget", res.Downtime)
	}
	if res.Source != "src" || res.Destination != "dst" {
		t.Fatalf("result routing = %+v", res)
	}
	// info migrate reflects completion on both sides.
	for _, vm := range []*qemu.VM{src, dst} {
		if got := vm.MigrationStatus().Status; got != "completed" {
			t.Fatalf("%s info migrate status = %q", vm.Name(), got)
		}
	}
}

func TestZeroPageCompressionShortensIdleMigration(t *testing.T) {
	// An idle guest with many zero pages must migrate faster than
	// raw-size/bandwidth.
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 64, "")
	tb.vm(t, "dst", 64, "tcp:0.0.0.0:4444")
	start := tb.eng.Now()
	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	elapsed := tb.eng.Now() - start
	rawTime := time.Duration(float64(64<<20) / float64(32<<20) * float64(time.Second))
	if elapsed >= rawTime {
		t.Fatalf("elapsed %v >= raw %v; zero pages not compressed", elapsed, rawTime)
	}
}

func TestPreCopyWithDirtyingWorkloadIterates(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 32, "")
	dst := tb.vm(t, "dst", 32, "tcp:0.0.0.0:4444")

	// A workload dirtying pages during migration: 30 random writes per
	// 10ms tick. Like a real guest, it stops writing when paused.
	rng := tb.eng.RNG()
	ticker := sim.NewTicker(tb.eng, 10*time.Millisecond, "dirtier", func() {
		if !src.Running() {
			return
		}
		for i := 0; i < 30; i++ {
			p := rng.Intn(src.RAM().NumPages())
			if _, err := src.RAM().Write(p, mem.Content(rng.Uint64()|1)); err != nil {
				t.Errorf("dirty write: %v", err)
			}
		}
	})
	defer ticker.Stop()

	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	ticker.Stop()
	res, _ := tb.me.LastResult()
	if res.Iterations < 2 {
		t.Fatalf("iterations = %d, want multiple rounds under dirtying", res.Iterations)
	}
	if !res.Converged {
		t.Fatal("moderate dirty rate should converge")
	}
	// Invariant: destination equals source at handoff (source is paused
	// now, ticker events after pause don't run because Migrate returned).
	if !mem.EqualContents(src.RAM(), dst.RAM()) {
		t.Fatal("memory differs after migration under load")
	}
}

func TestPreCopyNonConvergenceForcedStop(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 32, "")
	tb.vm(t, "dst", 32, "tcp:0.0.0.0:4444")

	tb.me.Tunables.MaxIterations = 5
	// Dirty faster than the link drains: whole RAM each tick.
	rng := tb.eng.RNG()
	ticker := sim.NewTicker(tb.eng, 5*time.Millisecond, "hogger", func() {
		if !src.Running() {
			return
		}
		for p := 0; p < src.RAM().NumPages(); p += 2 {
			if _, err := src.RAM().Write(p, mem.Content(rng.Uint64()|1)); err != nil {
				t.Errorf("write: %v", err)
			}
		}
	})
	defer ticker.Stop()

	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	res, _ := tb.me.LastResult()
	if res.Converged {
		t.Fatal("hog workload converged within 5 iterations?")
	}
	if res.Iterations < 5 {
		t.Fatalf("iterations = %d, want cap", res.Iterations)
	}
}

func TestMigrationErrors(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 16, "")

	// No incoming listener anywhere.
	if err := tb.me.Migrate(src, "tcp:127.0.0.1:9999"); !errors.Is(err, ErrNoIncoming) {
		t.Fatalf("err = %v", err)
	}
	// Bad URI.
	if err := tb.me.Migrate(src, "fd:3"); !errors.Is(err, qemu.ErrBadCommandLine) {
		t.Fatalf("err = %v", err)
	}
	// Config mismatch.
	tb.vm(t, "small", 8, "tcp:0.0.0.0:4444")
	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("err = %v", err)
	}
	if src.MigrationStatus().Status != "failed" {
		t.Fatalf("info migrate after failure = %q", src.MigrationStatus().Status)
	}
	// Unregistered VM.
	other := qemu.NewVM(tb.eng, qemu.DefaultConfig("x"), tb.h.Model, 1, "x.nic")
	if err := tb.me.Migrate(other, "tcp:127.0.0.1:4444"); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("err = %v", err)
	}
	// Shut-off source.
	if err := src.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); !errors.Is(err, ErrSourceState) {
		t.Fatalf("err = %v", err)
	}
}

func TestDestinationNotInIncomingState(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 16, "")
	dst := tb.vm(t, "dst", 16, "tcp:0.0.0.0:4444")
	// Complete one migration; the listener is consumed.
	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	// A second attempt must fail: dst is running now.
	src2 := tb.vm(t, "src2", 16, "")
	if err := tb.me.Migrate(src2, "tcp:127.0.0.1:4444"); !errors.Is(err, ErrNoIncoming) {
		t.Fatalf("err = %v", err)
	}
	_ = dst
}

func TestMigrationOverDownLinkFails(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 16, "")
	tb.vm(t, "dst", 16, "tcp:0.0.0.0:4444")
	tb.net.SetLink("host", "dst.nic", vnet.LinkSpec{Bandwidth: 1 << 20, Down: true})
	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
}

func TestMonitorSpeedLimitRespected(t *testing.T) {
	run := func(speed string) time.Duration {
		tb := newTestbed(t, 1)
		src := tb.vm(t, "src", 32, "")
		tb.vm(t, "dst", 32, "tcp:0.0.0.0:4444")
		if speed != "" {
			if _, err := src.Monitor().Execute("migrate_set_speed " + speed); err != nil {
				t.Fatal(err)
			}
		}
		start := tb.eng.Now()
		if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
			t.Fatal(err)
		}
		return tb.eng.Now() - start
	}
	fast := run("") // default 32m
	slow := run("8m")
	if slow <= fast {
		t.Fatalf("8m (%v) not slower than 32m (%v)", slow, fast)
	}
	ratio := float64(slow) / float64(fast)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("slowdown ratio = %.2f, want ~4", ratio)
	}
}

func TestNestedDestinationIsSlower(t *testing.T) {
	// L0-L0 vs L0-L1 (Fig 4's two series): same guest, destination on the
	// host vs nested inside another guest.
	elapsed := func(nested bool) time.Duration {
		tb := newTestbed(t, 1)
		src := tb.vm(t, "src", 32, "")
		if nested {
			tb.vm(t, "ritm", 64, "")
			inner, err := tb.h.Hypervisor().EnableNesting("ritm")
			if err != nil {
				t.Fatal(err)
			}
			cfg := qemu.DefaultConfig("nested")
			cfg.MemoryMB = 32
			cfg.Incoming = "tcp:0.0.0.0:4444"
			if _, err := inner.CreateVM(cfg); err != nil {
				t.Fatal(err)
			}
			if err := inner.Launch("nested"); err != nil {
				t.Fatal(err)
			}
			// The nested QEMU binds ritm.nic:4444 (its "host" is the
			// RITM guest); forward the physical host's port into it —
			// the paper's HOST PORT AAAA -> ROOTKIT PORT BBBB hop.
			if err := tb.net.AddForward(
				vnet.Addr{Endpoint: "host", Port: 4444},
				vnet.Addr{Endpoint: "ritm.nic", Port: 4444}); err != nil {
				t.Fatal(err)
			}
		} else {
			tb.vm(t, "dst", 32, "tcp:0.0.0.0:4444")
		}
		start := tb.eng.Now()
		if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
			t.Fatal(err)
		}
		return tb.eng.Now() - start
	}
	flat := elapsed(false)
	nested := elapsed(true)
	if nested <= flat {
		t.Fatalf("nested migration (%v) not slower than flat (%v)", nested, flat)
	}
	ratio := float64(nested) / float64(flat)
	if ratio < 1.05 || ratio > 1.4 {
		t.Fatalf("nested overhead ratio = %.2f, want ~1.15", ratio)
	}
}

func TestPostCopy(t *testing.T) {
	tb := newTestbed(t, 1)
	tb.me.Tunables.Mode = PostCopy
	src := tb.vm(t, "src", 32, "")
	dst := tb.vm(t, "dst", 32, "tcp:0.0.0.0:4444")
	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	res, _ := tb.me.LastResult()
	if res.Mode != PostCopy {
		t.Fatalf("mode = %v", res.Mode)
	}
	// Post-copy downtime is tiny (device state only).
	if res.Downtime > 50*time.Millisecond {
		t.Fatalf("post-copy downtime = %v", res.Downtime)
	}
	if !dst.Running() || src.State() != qemu.StatePaused {
		t.Fatal("handoff states wrong")
	}
	if !mem.EqualContents(src.RAM(), dst.RAM()) {
		t.Fatal("memory differs after post-copy")
	}
}

func TestReentrantMigrationRejected(t *testing.T) {
	tb := newTestbed(t, 1)
	src := tb.vm(t, "src", 16, "")
	tb.vm(t, "dst", 16, "tcp:0.0.0.0:4444")
	// Trigger a second Migrate from inside the first via a scheduled
	// event that fires during a transfer round.
	var innerErr error
	tb.eng.Schedule(time.Millisecond, "reenter", func() {
		innerErr = tb.me.Migrate(src, "tcp:127.0.0.1:4444")
	})
	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(innerErr, ErrInProgress) {
		t.Fatalf("reentrant err = %v", innerErr)
	}
}

func TestRegisterIncomingConflict(t *testing.T) {
	tb := newTestbed(t, 1)
	a := tb.vm(t, "a", 16, "")
	b := tb.vm(t, "b", 16, "")
	addr := vnet.Addr{Endpoint: "x", Port: 1}
	if err := tb.me.RegisterIncoming(a, addr); err != nil {
		t.Fatal(err)
	}
	if err := tb.me.RegisterIncoming(a, addr); err != nil {
		t.Fatal("re-register same vm failed")
	}
	if err := tb.me.RegisterIncoming(b, addr); err == nil {
		t.Fatal("conflicting registration accepted")
	}
	tb.me.UnregisterIncoming(addr)
	if err := tb.me.RegisterIncoming(b, addr); err != nil {
		t.Fatal(err)
	}
}

func TestResultsAccumulate(t *testing.T) {
	tb := newTestbed(t, 1)
	if _, ok := tb.me.LastResult(); ok {
		t.Fatal("phantom result")
	}
	src := tb.vm(t, "src", 16, "")
	tb.vm(t, "dst", 16, "tcp:0.0.0.0:4444")
	if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	if got := tb.me.Results(); len(got) != 1 {
		t.Fatalf("results = %d", len(got))
	}
}

// Property: for any seed and modest dirty rate, pre-copy preserves memory
// equality at handoff and ends with the destination running.
func TestMigrationInvariantProperty(t *testing.T) {
	f := func(seed int64, rate uint8) bool {
		tb := newTestbed(t, seed)
		src := tb.vm(t, "src", 8, "")
		dst := tb.vm(t, "dst", 8, "tcp:0.0.0.0:4444")
		rng := tb.eng.RNG()
		writes := int(rate) // 0..255 writes per tick
		tk := sim.NewTicker(tb.eng, 10*time.Millisecond, "w", func() {
			if !src.Running() {
				return
			}
			for i := 0; i < writes; i++ {
				p := rng.Intn(src.RAM().NumPages())
				if _, err := src.RAM().Write(p, mem.Content(rng.Uint64()|1)); err != nil {
					return
				}
			}
		})
		defer tk.Stop()
		if err := tb.me.Migrate(src, "tcp:127.0.0.1:4444"); err != nil {
			return false
		}
		tk.Stop()
		return dst.Running() && mem.EqualContents(src.RAM(), dst.RAM())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
