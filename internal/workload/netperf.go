package workload

import (
	"cloudskulk/internal/cpu"
)

// Netperf models the TCP_STREAM bulk-transfer test the paper runs for
// Fig. 3: unidirectional TCP throughput between the guest and the host.
//
// The modelled bottleneck is bulk data movement (copy + checksum), which
// is ALU-class work: with virtio + vhost the per-segment exit cost is
// amortized over large (GSO) segments, so virtualization level barely
// moves the mean — exactly the paper's finding that all three levels
// "perform nearly the same", with run-to-run variance (their reported
// relative standard deviations: L0 1.11%, L1 10.32%, L2 3.96%) larger
// than the level effect.
type Netperf struct {
	// SegmentBytes is the GSO segment size the stream moves per
	// operation.
	SegmentBytes int64
	// Seconds is the nominal measurement length (netperf default 10s).
	Seconds float64
}

// DefaultNetperf mirrors `netperf -t TCP_STREAM`.
func DefaultNetperf() Netperf {
	return Netperf{
		SegmentBytes: 256 << 10,
		Seconds:      10,
	}
}

// _opSegment is the per-256KiB-segment cost: copy, checksum, TCP/IP stack.
var _opSegment = cpu.ALUOp("tcp segment copy+csum", cpu.Micros(132))

// RelStddevs returns the per-level measurement noise the paper reports for
// netperf (as fractions of the mean).
func RelStddevs() map[cpu.Level]float64 {
	return map[cpu.Level]float64{
		cpu.L0: 0.0111,
		cpu.L1: 0.1032,
		cpu.L2: 0.0396,
	}
}

// Run measures one netperf pass in ctx and returns throughput in Mbit/s.
// linkBandwidth is the path capacity in bytes/second; the result is the
// smaller of the link and the CPU's segment-processing capacity, with
// per-level measurement noise applied.
func (n Netperf) Run(ctx *Context, linkBandwidth int64) float64 {
	seg := n.SegmentBytes
	if seg <= 0 {
		seg = 256 << 10
	}
	perSeg := ctx.VCPU.CostOf(_opSegment)
	capacity := float64(seg) / perSeg.Microseconds() * 1e6 // bytes/sec
	mean := capacity
	if linkBandwidth > 0 && float64(linkBandwidth) < mean {
		mean = float64(linkBandwidth)
	}
	noise := RelStddevs()[ctx.Level()]
	measured := ctx.Eng.Gauss(mean, noise)

	// Charge the measurement's virtual time: the stream runs for the
	// nominal duration regardless of achieved rate.
	segments := int(measured * n.Seconds / float64(seg))
	ctx.VCPU.Exec(_opSegment, segments)

	return measured * 8 / 1e6 // bytes/s -> Mbit/s
}
