package workload

import (
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/mem"
)

// KernelCompile models `make` of Linux 4.0.5 with the paper's shared
// .config: a stream of compilation units, each consisting of process
// spawns, heavy user-mode compute, and intense page-table/memory churn.
//
// The per-unit operation mix is calibrated so the three mechanisms in the
// cpu package reproduce Fig. 2's shape:
//
//   - compute drifts ~3.4% at L2 (cache/TLB interference);
//   - memory churn costs exits at L1 and multiplied exits plus shadow-EPT
//     faults at L2, producing the +25.7% L2-over-L1 gap;
//   - ccache (enabled only on L0 in the paper — their footnote 1) turns
//     most units into cheap cache hits, producing the large L0-to-L1 gap
//     the paper attributes to it.
type KernelCompile struct {
	// Units is the number of compilation units (source files).
	Units int
	// Ccache enables the compiler cache (the paper had it working on L0
	// only).
	Ccache bool
	// CcacheHitRate is the fraction of units served from cache.
	CcacheHitRate float64
}

// DefaultKernelCompile matches the paper's build.
func DefaultKernelCompile(ccache bool) KernelCompile {
	return KernelCompile{
		Units:         2000,
		Ccache:        ccache,
		CcacheHitRate: 0.75,
	}
}

// Per-unit operations (see DESIGN.md for the calibration arithmetic).
var (
	_opCompileCPU = cpu.ALUOp("cc1 compute", cpu.Micros(185_000))
	_opMemChurn   = cpu.SyscallOp("mmap/page churn", cpu.Micros(40_000), 2500, 2200)
	_opForkExec   = cpu.SyscallOp("fork+execve toolchain", cpu.Micros(245.8), 12, 47)
	_opCcacheHit  = cpu.SyscallOp("ccache hit", cpu.Micros(7_000), 20, 30)
)

// Run executes the compile in ctx and returns its wall-clock (virtual)
// duration. The guest's RAM is dirtied as the compile streams through its
// working set, so a concurrent migration sees realistic dirty pressure.
func (k KernelCompile) Run(ctx *Context) (time.Duration, error) {
	if ctx.RAM == nil {
		return 0, ErrNoRAM
	}
	units := k.Units
	if units <= 0 {
		units = 2000
	}
	start := ctx.Eng.Now()
	ws := ctx.RAM.NumPages() / 2
	if ws < 1 {
		ws = 1
	}
	cursor := 0
	dirtyPerUnit := 24 // pages of object/temporary output per unit
	for i := 0; i < units; i++ {
		if k.Ccache && ctx.Rng.Float64() < k.CcacheHitRate {
			ctx.VCPU.Exec(_opCcacheHit, 1)
		} else {
			ctx.VCPU.Exec(_opForkExec, 2)
			ctx.VCPU.Exec(_opCompileCPU, 1)
			ctx.VCPU.Exec(_opMemChurn, 1)
		}
		for d := 0; d < dirtyPerUnit; d++ {
			page := cursor % ws
			cursor++
			if _, err := ctx.RAM.Write(page, mem.Content(ctx.Rng.Uint64()|1)); err != nil {
				return 0, err
			}
		}
		if ctx.VM != nil {
			ctx.VM.RecordBlockIO(0, 64<<10, 96<<10, 16, 24)
		}
	}
	return ctx.Eng.Now() - start, nil
}
