package workload

import (
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/mem"
)

// Filebench models a fileserver-style I/O personality: a loop of create,
// write, read, and delete operations against the guest's filesystem. The
// paper uses it as the I/O-intensive live-migration workload in Fig. 4;
// this type provides the measured-run form (the background dirtying form
// is FilebenchProfile).
type Filebench struct {
	// Ops is the number of whole-file operations to perform.
	Ops int
	// FileKB is the file size each operation handles.
	FileKB int
}

// DefaultFilebench mirrors the fileserver personality at small scale.
func DefaultFilebench() Filebench {
	return Filebench{Ops: 5000, FileKB: 16}
}

// Per-file-op costs: page-cache create/write/read/delete plus a periodic
// writeback that does hit the virtual disk (one exit per flush when
// virtualized).
var (
	_opFileCreate = cpu.SyscallOp("fb create+write", cpu.Micros(55), 0, 1)
	_opFileRead   = cpu.SyscallOp("fb read", cpu.Micros(18), 0, 0)
	_opFileDelete = cpu.SyscallOp("fb delete", cpu.Micros(9), 0, 0)
	_opWriteback  = cpu.IOOp("fb writeback", cpu.Micros(210), 2)
)

// Run executes the benchmark and returns achieved operations per second
// (an "operation" is one create+write+read+delete cycle).
func (f Filebench) Run(ctx *Context) (float64, error) {
	if ctx.RAM == nil {
		return 0, ErrNoRAM
	}
	ops := f.Ops
	if ops <= 0 {
		ops = 5000
	}
	fileKB := f.FileKB
	if fileKB <= 0 {
		fileKB = 16
	}
	pagesPerFile := (fileKB*1024 + mem.PageSize - 1) / mem.PageSize
	region := ctx.RAM.NumPages() / 10
	if region < 1 {
		region = 1
	}
	start := ctx.Eng.Now()
	cursor := 0
	for i := 0; i < ops; i++ {
		ctx.VCPU.Exec(_opFileCreate, 1)
		ctx.VCPU.Exec(_opFileRead, 1)
		ctx.VCPU.Exec(_opFileDelete, 1)
		if i%32 == 31 {
			ctx.VCPU.Exec(_opWriteback, 1)
		}
		// Page-cache writes dirty guest memory in the file region.
		for p := 0; p < pagesPerFile; p++ {
			page := cursor % region
			cursor++
			if _, err := ctx.RAM.Write(page, mem.Content(ctx.Rng.Uint64()|1)); err != nil {
				return 0, err
			}
		}
		if ctx.VM != nil {
			ctx.VM.RecordBlockIO(0, uint64(fileKB)<<10, uint64(fileKB)<<10, 1, 1)
		}
	}
	elapsed := ctx.Eng.Now() - start
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(ops) / elapsed.Seconds(), nil
}
