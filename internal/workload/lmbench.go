package workload

import (
	"cloudskulk/internal/cpu"
)

// This file is the lmbench 3.0-a9 catalogue: every micro-operation the
// paper's Tables II-IV measure, with native costs taken from the paper's
// own L0 column (an i7-4790) and exit profiles calibrated so the model
// reproduces the L1/L2 columns. See DESIGN.md §3 for the calibration.

// ArithmeticOps returns the Table II operations (times in nanoseconds at
// L0). Pure ALU/FPU work: no exits at any level, only the L2 cache drift —
// and sub-nanosecond ops don't even show that.
func ArithmeticOps() []cpu.Op {
	return []cpu.Op{
		cpu.ALUOp("integer bit", cpu.Nanos(0.26)),
		cpu.ALUOp("integer add", cpu.Nanos(0.13)),
		cpu.ALUOp("integer div", cpu.Nanos(5.94)),
		cpu.ALUOp("integer mod", cpu.Nanos(6.37)),
		cpu.ALUOp("float add", cpu.Nanos(0.75)),
		cpu.ALUOp("float mul", cpu.Nanos(1.25)),
		cpu.ALUOp("float div", cpu.Nanos(3.31)),
		cpu.ALUOp("double add", cpu.Nanos(0.75)),
		cpu.ALUOp("double mul", cpu.Nanos(1.25)),
		cpu.ALUOp("double div", cpu.Nanos(5.06)),
	}
}

// ProcessOps returns the Table III operations (times in microseconds at
// L0). Exit counts and nested-fault counts are the calibrated mechanism
// parameters:
//
//   - signal handling and protection faults stay in the guest kernel: no
//     exits, only the per-layer cache pad;
//   - pipe and AF_UNIX round trips raise IPIs/reschedules: a few exits,
//     multiplied at L2;
//   - fork is exit-free under EPT at L1 but page-table-heavy, so at L2 it
//     pays shadow-EPT nested faults;
//   - execve and /bin/sh add device/file I/O exits on top.
func ProcessOps() []cpu.Op {
	return []cpu.Op{
		cpu.SyscallOp("signal handler installation", cpu.Micros(0.075), 0, 0),
		cpu.SyscallOp("signal handler overhead", cpu.Micros(0.50), 0, 0),
		cpu.SyscallOp("protection fault", cpu.Micros(0.27), 0, 0),
		cpu.SyscallOp("pipe latency", cpu.Micros(3.49), 3, 0),
		cpu.SyscallOp("AF_UNIX sock stream latency", cpu.Micros(3.58), 2, 0),
		cpu.SyscallOp("fork+ exit", cpu.Micros(74.6), 0, 80),
		cpu.SyscallOp("fork+ execve", cpu.Micros(245.8), 12, 47),
		cpu.SyscallOp("fork+ /bin/sh -c", cpu.Micros(918.7), 44, 7),
	}
}

// FileOp is one Table IV row cell: creating or deleting files of a given
// size, measured in operations per second.
type FileOp struct {
	SizeKB int
	Create bool
	Op     cpu.Op
}

// FileOps returns the Table IV catalogue. File create/delete run entirely
// in the guest kernel's page cache (no device exits on the benchmark's
// scale), which is why the paper finds L1 and L2 "match the baseline".
// Native per-op costs derive from the paper's L0 ops/sec column.
func FileOps() []FileOp {
	perSec := func(ops float64) cpu.Cost {
		return cpu.Micros(1e6 / ops) // ops/second -> µs per op
	}
	return []FileOp{
		{SizeKB: 0, Create: true, Op: cpu.SyscallOp("file create 0K", perSec(126418), 0, 0)},
		{SizeKB: 0, Create: false, Op: cpu.SyscallOp("file delete 0K", perSec(379158), 0, 0)},
		{SizeKB: 1, Create: true, Op: cpu.SyscallOp("file create 1K", perSec(99112), 0, 0)},
		{SizeKB: 1, Create: false, Op: cpu.SyscallOp("file delete 1K", perSec(280884), 0, 0)},
		{SizeKB: 4, Create: true, Op: cpu.SyscallOp("file create 4K", perSec(99627), 0, 0)},
		{SizeKB: 4, Create: false, Op: cpu.SyscallOp("file delete 4K", perSec(279893), 0, 0)},
		{SizeKB: 10, Create: true, Op: cpu.SyscallOp("file create 10K", perSec(79869), 0, 0)},
		{SizeKB: 10, Create: false, Op: cpu.SyscallOp("file delete 10K", perSec(214767), 0, 0)},
	}
}

// LmbenchResult is one measured cell: the operation and its mean latency.
type LmbenchResult struct {
	Op   cpu.Op
	Mean cpu.Cost
}

// RunLmbench measures each op's mean latency over reps executions in the
// given context, the way lmbench loops and averages.
func RunLmbench(ctx *Context, ops []cpu.Op, reps int) []LmbenchResult {
	out := make([]LmbenchResult, 0, len(ops))
	for _, op := range ops {
		out = append(out, LmbenchResult{
			Op:   op,
			Mean: ctx.VCPU.MeasureMean(op, reps),
		})
	}
	return out
}

// FileOpResult is one Table IV cell in the paper's unit.
type FileOpResult struct {
	FileOp FileOp
	PerSec float64
}

// RunFileOps measures the file-op catalogue and reports ops/second.
func RunFileOps(ctx *Context, reps int) []FileOpResult {
	out := make([]FileOpResult, 0, 8)
	for _, f := range FileOps() {
		mean := ctx.VCPU.MeasureMean(f.Op, reps)
		persec := 0.0
		if mean > 0 {
			persec = 1e12 / float64(mean) // ps -> ops/s
		}
		out = append(out, FileOpResult{FileOp: f, PerSec: persec})
	}
	return out
}
