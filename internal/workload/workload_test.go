package workload

import (
	"errors"
	"math"
	"testing"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/kvm"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/vnet"
)

func hostCtx(t *testing.T, seed int64, level cpu.Level) *Context {
	t.Helper()
	eng := sim.NewEngine(seed)
	ctx := HostContext(eng, cpu.DefaultModel(), 64<<20)
	if level != cpu.L0 {
		ctx.VCPU = cpu.NewVCPU(eng, cpu.DefaultModel(), level)
	}
	return ctx
}

func vmCtx(t *testing.T, seed int64, memMB int64) (*kvm.Host, *Context) {
	t.Helper()
	eng := sim.NewEngine(seed)
	network := vnet.New(eng)
	h, err := kvm.NewHost(eng, network, "host")
	if err != nil {
		t.Fatal(err)
	}
	cfg := qemu.DefaultConfig("g")
	cfg.MemoryMB = memMB
	if _, err := h.Hypervisor().CreateVM(cfg); err != nil {
		t.Fatal(err)
	}
	if err := h.Hypervisor().Launch("g"); err != nil {
		t.Fatal(err)
	}
	vm, _ := h.Hypervisor().VM("g")
	return h, VMContext(vm)
}

func TestContextLevels(t *testing.T) {
	ctx := hostCtx(t, 1, cpu.L0)
	if ctx.Level() != cpu.L0 || !ctx.running() {
		t.Fatal("host context wrong")
	}
	_, vctx := vmCtx(t, 1, 8)
	if vctx.Level() != cpu.L1 {
		t.Fatalf("vm context level = %v", vctx.Level())
	}
	if !vctx.running() {
		t.Fatal("running VM context not running")
	}
	if err := vctx.VM.Pause(); err != nil {
		t.Fatal(err)
	}
	if vctx.running() {
		t.Fatal("paused VM context still running")
	}
}

func TestBackgroundDirtiesAtRate(t *testing.T) {
	_, ctx := vmCtx(t, 1, 64)
	p := Profile{
		Name:               "test",
		DirtyPagesPerSec:   1000,
		WorkingSetFraction: 0.5,
	}
	ctx.RAM.ClearDirty()
	b := StartBackground(ctx, p)
	ctx.Eng.RunFor(2 * time.Second)
	b.Stop()
	got := float64(b.PagesDirtied())
	if math.Abs(got-2000) > 100 {
		t.Fatalf("dirtied %v pages in 2s at 1000/s", got)
	}
	// Working-set bound: every dirtied page lies in the first half of RAM.
	ws := ctx.RAM.NumPages() / 2
	for _, pnum := range ctx.RAM.DrainDirty(0) {
		if pnum >= ws {
			t.Fatalf("page %d outside working set dirtied", pnum)
		}
	}
}

func TestBackgroundStopsWhenVMPaused(t *testing.T) {
	_, ctx := vmCtx(t, 1, 16)
	b := StartBackground(ctx, Profile{Name: "x", DirtyPagesPerSec: 1000, WorkingSetFraction: 1})
	ctx.Eng.RunFor(time.Second)
	atPause := b.PagesDirtied()
	if atPause == 0 {
		t.Fatal("no dirtying before pause")
	}
	if err := ctx.VM.Pause(); err != nil {
		t.Fatal(err)
	}
	ctx.Eng.RunFor(time.Second)
	if b.PagesDirtied() != atPause {
		t.Fatal("background dirtied a paused guest")
	}
	if err := ctx.VM.Resume(); err != nil {
		t.Fatal(err)
	}
	ctx.Eng.RunFor(time.Second)
	if b.PagesDirtied() == atPause {
		t.Fatal("background did not resume with the guest")
	}
	b.Stop()
}

func TestBackgroundUpdatesBlockStats(t *testing.T) {
	_, ctx := vmCtx(t, 1, 16)
	b := StartBackground(ctx, FilebenchProfile())
	ctx.Eng.RunFor(time.Second)
	b.Stop()
	st, _ := ctx.VM.BlockStatsFor(0)
	if st.WrBytes == 0 || st.WrOps == 0 {
		t.Fatalf("blockstats = %+v", st)
	}
}

func TestProfiles(t *testing.T) {
	idle := IdleProfile()
	kc := KernelCompileProfile()
	fb := FilebenchProfile()
	if !(idle.DirtyPagesPerSec < fb.DirtyPagesPerSec && fb.DirtyPagesPerSec < kc.DirtyPagesPerSec) {
		t.Fatal("profile dirty-rate ordering wrong")
	}
	// The compile rate must sit just below the 32 MiB/s default migration
	// bandwidth (8192 pages/s) — the barely-converging regime.
	if kc.DirtyPagesPerSec >= 8192 || kc.DirtyPagesPerSec < 8192*0.8 {
		t.Fatalf("compile dirty rate %v outside the knee", kc.DirtyPagesPerSec)
	}
}

func TestKernelCompileLevelShape(t *testing.T) {
	// Fig. 2: L1/L0 large with ccache on L0 only; L2/L1 ~ +25.7%.
	run := func(level cpu.Level, ccache bool) time.Duration {
		ctx := hostCtx(t, 42, level)
		k := DefaultKernelCompile(ccache)
		k.Units = 200 // scaled down 10x for test speed
		d, err := k.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	l0cc := run(cpu.L0, true)
	l1 := run(cpu.L1, false)
	l2 := run(cpu.L2, false)

	r10 := float64(l1) / float64(l0cc)
	if r10 < 2.8 || r10 > 4.8 {
		t.Fatalf("L1/L0(ccache) = %.2f, want ~3.8 (+280%%)", r10)
	}
	r21 := float64(l2) / float64(l1)
	if r21 < 1.20 || r21 > 1.32 {
		t.Fatalf("L2/L1 = %.3f, want ~1.257", r21)
	}
}

func TestKernelCompileErrors(t *testing.T) {
	ctx := hostCtx(t, 1, cpu.L0)
	ctx.RAM = nil
	if _, err := DefaultKernelCompile(false).Run(ctx); !errors.Is(err, ErrNoRAM) {
		t.Fatalf("err = %v", err)
	}
}

func TestKernelCompileDirtiesRAM(t *testing.T) {
	_, ctx := vmCtx(t, 1, 16)
	ctx.RAM.ClearDirty()
	k := KernelCompile{Units: 50}
	if _, err := k.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.RAM.DirtyCount() == 0 {
		t.Fatal("compile did not dirty memory")
	}
	st, _ := ctx.VM.BlockStatsFor(0)
	if st.WrBytes == 0 {
		t.Fatal("compile did not write the disk")
	}
}

func TestNetperfLevelsNearlySame(t *testing.T) {
	// Fig. 3: all three levels within each other's noise.
	link := int64(2) << 30
	mean := func(level cpu.Level) float64 {
		var sum float64
		for seed := int64(0); seed < 10; seed++ {
			ctx := hostCtx(t, 100+seed, level)
			sum += DefaultNetperf().Run(ctx, link)
		}
		return sum / 10
	}
	l0, l1, l2 := mean(cpu.L0), mean(cpu.L1), mean(cpu.L2)
	for _, m := range []float64{l0, l1, l2} {
		if m < 1000 {
			t.Fatalf("throughput %v Mbps implausibly low", m)
		}
	}
	// Within 12% of each other (paper: stddev up to 10.32%).
	if d := math.Abs(l1-l0) / l0; d > 0.12 {
		t.Fatalf("L1 deviates %.1f%% from L0", d*100)
	}
	if d := math.Abs(l2-l1) / l1; d > 0.12 {
		t.Fatalf("L2 deviates %.1f%% from L1", d*100)
	}
}

func TestNetperfLinkBound(t *testing.T) {
	ctx := hostCtx(t, 1, cpu.L0)
	slow := DefaultNetperf().Run(ctx, 10<<20) // 10 MiB/s link
	// 10 MiB/s = ~84 Mbps; noise 1.11%.
	if slow < 75 || slow > 95 {
		t.Fatalf("link-bound throughput = %v Mbps", slow)
	}
}

func TestNetperfChargesTime(t *testing.T) {
	ctx := hostCtx(t, 1, cpu.L0)
	before := ctx.Eng.Now()
	DefaultNetperf().Run(ctx, 2<<30)
	elapsed := ctx.Eng.Now() - before
	// A 10-second stream should cost ~10s of virtual time.
	if elapsed < 5*time.Second || elapsed > 20*time.Second {
		t.Fatalf("netperf charged %v", elapsed)
	}
}

func TestFilebenchRuns(t *testing.T) {
	_, ctx := vmCtx(t, 1, 64)
	ops, err := DefaultFilebench().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ops < 1000 {
		t.Fatalf("filebench = %v ops/s, implausibly low", ops)
	}
	st, _ := ctx.VM.BlockStatsFor(0)
	if st.RdBytes == 0 || st.WrBytes == 0 {
		t.Fatalf("blockstats = %+v", st)
	}
	if ctx.RAM.DirtyCount() == 0 {
		t.Fatal("filebench did not dirty page cache")
	}
}

func TestFilebenchSlowerWhenNested(t *testing.T) {
	opsAt := func(level cpu.Level) float64 {
		ctx := hostCtx(t, 7, level)
		ops, err := Filebench{Ops: 2000, FileKB: 4}.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return ops
	}
	l0, l2 := opsAt(cpu.L0), opsAt(cpu.L2)
	if l2 >= l0 {
		t.Fatalf("nested filebench (%v) not slower than native (%v)", l2, l0)
	}
}

func TestFilebenchNoRAM(t *testing.T) {
	ctx := hostCtx(t, 1, cpu.L0)
	ctx.RAM = nil
	if _, err := DefaultFilebench().Run(ctx); !errors.Is(err, ErrNoRAM) {
		t.Fatalf("err = %v", err)
	}
}
