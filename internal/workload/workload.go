// Package workload implements the guest activity the paper's evaluation
// exercises: the Linux-kernel-compile CPU/memory workload (Fig. 2), the
// Netperf TCP stream (Fig. 3), Filebench-style I/O, the lmbench 3.0
// micro-benchmark catalogue (Tables II-IV), and the background page-dirtying
// profiles that drive live-migration timing (Fig. 4).
package workload

import (
	"errors"
	"math/rand"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
)

// ErrNoRAM is returned by workloads that need guest memory when the
// context has none.
var ErrNoRAM = errors.New("workload: context has no RAM")

// Context is the execution environment a workload runs in: a vCPU (which
// fixes the virtualization level and cost model), memory, and optionally
// the VM it belongs to.
type Context struct {
	Eng  *sim.Engine
	VCPU *cpu.VCPU
	RAM  *mem.Space
	// VM is nil when running directly on the host (the L0 rows of the
	// paper's figures).
	VM  *qemu.VM
	Rng *rand.Rand
}

// HostContext builds a context for running directly on the host (L0), with
// a private process address space of memBytes.
func HostContext(eng *sim.Engine, model cpu.Model, memBytes int64) *Context {
	return &Context{
		Eng:  eng,
		VCPU: cpu.NewVCPU(eng, model, cpu.L0),
		RAM:  mem.NewSpace("host.proc", memBytes),
		Rng:  eng.RNG(),
	}
}

// VMContext builds a context for running inside a VM.
func VMContext(vm *qemu.VM) *Context {
	return &Context{
		Eng:  vm.Engine(),
		VCPU: vm.VCPU(),
		RAM:  vm.RAM(),
		VM:   vm,
		Rng:  vm.Engine().RNG(),
	}
}

// Level returns the virtualization level the context executes at.
func (c *Context) Level() cpu.Level { return c.VCPU.Level() }

// running reports whether the context's guest is executing (the host
// always is).
func (c *Context) running() bool {
	return c.VM == nil || c.VM.Running()
}

// Profile describes a background activity pattern used while a VM is being
// migrated: how fast it dirties memory and how it touches its disk. These
// are the three bars of the paper's Fig. 4.
type Profile struct {
	Name string
	// DirtyPagesPerSec is the page-dirtying rate. Compile-like loads
	// dirty just below the migration bandwidth, which is what makes
	// their migrations take minutes.
	DirtyPagesPerSec float64
	// WorkingSetFraction bounds the region of RAM the dirtying cycles
	// through sequentially (compilers stream through allocations; they
	// do not write uniformly random pages).
	WorkingSetFraction float64
	// DirtyRateJitter is the relative stddev applied to each tick's
	// dirty count.
	DirtyRateJitter float64
	// BlockWriteBytesPerSec drives `info blockstats` while running.
	BlockWriteBytesPerSec int64
}

// The paper's three migration workloads.
func IdleProfile() Profile {
	return Profile{
		Name:               "idle",
		DirtyPagesPerSec:   30, // background daemons only
		WorkingSetFraction: 1.0,
		DirtyRateJitter:    0.2,
	}
}

// KernelCompileProfile dirties pages at just under the default migration
// bandwidth (32 MiB/s = 8192 pages/s), the regime where pre-copy barely
// converges — the source of the paper's ~820 s compile-workload migration.
func KernelCompileProfile() Profile {
	return Profile{
		Name:                  "kernel-compile",
		DirtyPagesPerSec:      6950,
		WorkingSetFraction:    0.5,
		DirtyRateJitter:       0.02,
		BlockWriteBytesPerSec: 4 << 20,
	}
}

// FilebenchProfile models an I/O-intensive load: page-cache writes at a
// moderate rate.
func FilebenchProfile() Profile {
	return Profile{
		Name:                  "filebench",
		DirtyPagesPerSec:      1100,
		WorkingSetFraction:    0.1,
		DirtyRateJitter:       0.05,
		BlockWriteBytesPerSec: 24 << 20,
	}
}

// Background is a running background activity generator attached to a VM.
type Background struct {
	ticker *sim.Ticker
	pages  uint64
}

// tickPeriod is the background generator's resolution.
const tickPeriod = 20 * time.Millisecond

// StartBackground begins dirtying ctx's RAM according to the profile. Like
// a real guest, it goes quiet whenever the VM is not running (paused for
// stop-and-copy, shut off). Stop it when done.
func StartBackground(ctx *Context, p Profile) *Background {
	b := &Background{}
	wsPages := int(float64(ctx.RAM.NumPages()) * p.WorkingSetFraction)
	if wsPages < 1 {
		wsPages = 1
	}
	perTick := p.DirtyPagesPerSec * tickPeriod.Seconds()
	var cursor int
	var carry float64
	b.ticker = sim.NewTicker(ctx.Eng, tickPeriod, "workload."+p.Name, func() {
		if !ctx.running() {
			return
		}
		n := perTick
		if p.DirtyRateJitter > 0 {
			n = ctx.Eng.Gauss(perTick, p.DirtyRateJitter)
		}
		n += carry
		count := int(n)
		carry = n - float64(count)
		for i := 0; i < count; i++ {
			page := cursor % wsPages
			cursor++
			if _, err := ctx.RAM.Write(page, mem.Content(ctx.Rng.Uint64()|1)); err != nil {
				return
			}
			b.pages++
		}
		if ctx.VM != nil && p.BlockWriteBytesPerSec > 0 {
			bytes := uint64(float64(p.BlockWriteBytesPerSec) * tickPeriod.Seconds())
			ctx.VM.RecordBlockIO(0, 0, bytes, 0, bytes/4096+1)
		}
	})
	return b
}

// PagesDirtied returns how many page writes the generator has issued.
func (b *Background) PagesDirtied() uint64 { return b.pages }

// Stop halts the generator.
func (b *Background) Stop() { b.ticker.Stop() }
