package workload

import (
	"math"
	"testing"

	"cloudskulk/internal/cpu"
)

// paper values for Tables II and III, used as calibration targets.
type paperRow struct {
	name       string
	l0, l1, l2 float64
}

func within(got, want, tolFrac float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/want <= tolFrac
}

func measure(t *testing.T, ops []cpu.Op, level cpu.Level) map[string]cpu.Cost {
	t.Helper()
	ctx := hostCtx(t, 1, level)
	out := make(map[string]cpu.Cost, len(ops))
	for _, r := range RunLmbench(ctx, ops, 10000) {
		out[r.Op.Name] = r.Mean
	}
	return out
}

// TestTable2Calibration checks every arithmetic cell against the paper
// within 4% (Table II values are exact model inputs at L0, drifted at L2).
func TestTable2Calibration(t *testing.T) {
	rows := []paperRow{
		{"integer bit", 0.26, 0.25, 0.26},
		{"integer add", 0.13, 0.13, 0.13},
		{"integer div", 5.94, 5.96, 6.14},
		{"integer mod", 6.37, 6.39, 6.59},
		{"float add", 0.75, 0.75, 0.78},
		{"float mul", 1.25, 1.26, 1.30},
		{"float div", 3.31, 3.32, 3.43},
		{"double add", 0.75, 0.75, 0.78},
		{"double mul", 1.25, 1.26, 1.30},
		{"double div", 5.06, 5.07, 5.23},
	}
	got := map[cpu.Level]map[string]cpu.Cost{
		cpu.L0: measure(t, ArithmeticOps(), cpu.L0),
		cpu.L1: measure(t, ArithmeticOps(), cpu.L1),
		cpu.L2: measure(t, ArithmeticOps(), cpu.L2),
	}
	for _, row := range rows {
		checks := []struct {
			level cpu.Level
			want  float64
		}{{cpu.L0, row.l0}, {cpu.L1, row.l1}, {cpu.L2, row.l2}}
		for _, c := range checks {
			cell, ok := got[c.level][row.name]
			if !ok {
				t.Fatalf("op %q missing", row.name)
			}
			// 5% tolerance: the paper's own cells carry rounding and
			// run-to-run noise (integer bit is *faster* at L1 there).
			if !within(cell.Nanoseconds(), c.want, 0.05) {
				t.Errorf("%s %v = %.3fns, paper %.2fns",
					row.name, c.level, cell.Nanoseconds(), c.want)
			}
		}
	}
}

// TestTable3Calibration checks the process-op cells against the paper.
// Tolerances are looser (10%) because some cells carry the paper's own
// measurement noise (e.g. fork+exit got *faster* L0->L1).
func TestTable3Calibration(t *testing.T) {
	rows := []paperRow{
		{"signal handler installation", 0.075, 0.096, 0.10},
		{"signal handler overhead", 0.50, 0.58, 0.60},
		{"protection fault", 0.27, 0.29, 0.32},
		{"pipe latency", 3.49, 6.75, 65.49},
		{"AF_UNIX sock stream latency", 3.58, 5.37, 43.98},
		{"fork+ exit", 74.6, 73.65, 242.19},
		{"fork+ execve", 245.8, 275.05, 588.50},
		{"fork+ /bin/sh -c", 918.7, 966.67, 1826.00},
	}
	got := map[cpu.Level]map[string]cpu.Cost{
		cpu.L0: measure(t, ProcessOps(), cpu.L0),
		cpu.L1: measure(t, ProcessOps(), cpu.L1),
		cpu.L2: measure(t, ProcessOps(), cpu.L2),
	}
	tolAt := func(level cpu.Level, want float64) float64 {
		// Sub-microsecond cells and the L1 column carry the most
		// paper-side noise.
		if want < 1 || level == cpu.L1 {
			return 0.30
		}
		return 0.10
	}
	for _, row := range rows {
		checks := []struct {
			level cpu.Level
			want  float64
		}{{cpu.L0, row.l0}, {cpu.L1, row.l1}, {cpu.L2, row.l2}}
		for _, c := range checks {
			cell, ok := got[c.level][row.name]
			if !ok {
				t.Fatalf("op %q missing", row.name)
			}
			if !within(cell.Microseconds(), c.want, tolAt(c.level, c.want)) {
				t.Errorf("%s %v = %.2fµs, paper %.2fµs",
					row.name, c.level, cell.Microseconds(), c.want)
			}
		}
	}
}

// TestTable3Shape asserts the qualitative claims the paper draws from
// Table III, independent of exact calibration.
func TestTable3Shape(t *testing.T) {
	l0 := measure(t, ProcessOps(), cpu.L0)
	l1 := measure(t, ProcessOps(), cpu.L1)
	l2 := measure(t, ProcessOps(), cpu.L2)

	// fork barely changes L0->L1 but blows up at L2.
	forkRatio01 := float64(l1["fork+ exit"]) / float64(l0["fork+ exit"])
	forkRatio12 := float64(l2["fork+ exit"]) / float64(l1["fork+ exit"])
	if forkRatio01 > 1.1 {
		t.Fatalf("fork L1/L0 = %.2f, want ~1", forkRatio01)
	}
	if forkRatio12 < 2.5 {
		t.Fatalf("fork L2/L1 = %.2f, want ~3.3", forkRatio12)
	}
	// pipe latency is an order of magnitude worse at L2.
	pipeRatio := float64(l2["pipe latency"]) / float64(l0["pipe latency"])
	if pipeRatio < 10 {
		t.Fatalf("pipe L2/L0 = %.2f, want ~19", pipeRatio)
	}
}

// TestTable4FileOpsMatchBaseline asserts the paper's Table IV conclusion:
// "for file creation and deletion operations, both L2 performance and L1
// performance match the baseline".
func TestTable4FileOpsMatchBaseline(t *testing.T) {
	at := func(level cpu.Level) []FileOpResult {
		ctx := hostCtx(t, 1, level)
		return RunFileOps(ctx, 5000)
	}
	l0, l1, l2 := at(cpu.L0), at(cpu.L1), at(cpu.L2)
	if len(l0) != 8 {
		t.Fatalf("file ops = %d", len(l0))
	}
	for i := range l0 {
		if l0[i].PerSec <= 0 {
			t.Fatalf("zero rate for %v", l0[i].FileOp.Op.Name)
		}
		d1 := math.Abs(l1[i].PerSec-l0[i].PerSec) / l0[i].PerSec
		d2 := math.Abs(l2[i].PerSec-l0[i].PerSec) / l0[i].PerSec
		if d1 > 0.05 || d2 > 0.05 {
			t.Fatalf("%s deviates L1 %.1f%% L2 %.1f%% from baseline",
				l0[i].FileOp.Op.Name, d1*100, d2*100)
		}
	}
}

func TestFileOpsCatalogueSizes(t *testing.T) {
	sizes := map[int]int{}
	creates := 0
	for _, f := range FileOps() {
		sizes[f.SizeKB]++
		if f.Create {
			creates++
		}
	}
	if len(sizes) != 4 || creates != 4 {
		t.Fatalf("catalogue = %v sizes, %d creates", len(sizes), creates)
	}
	for _, k := range []int{0, 1, 4, 10} {
		if sizes[k] != 2 {
			t.Fatalf("size %dK has %d entries", k, sizes[k])
		}
	}
}

func TestRunLmbenchEmptyOps(t *testing.T) {
	ctx := hostCtx(t, 1, cpu.L0)
	if got := RunLmbench(ctx, nil, 100); len(got) != 0 {
		t.Fatalf("got %d results for no ops", len(got))
	}
}
