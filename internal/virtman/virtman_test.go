package virtman

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"cloudskulk/internal/kvm"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/vnet"
)

func newManager(t *testing.T) (*Manager, *kvm.Host) {
	t.Helper()
	eng := sim.NewEngine(1)
	network := vnet.New(eng)
	h, err := kvm.NewHost(eng, network, "host")
	if err != nil {
		t.Fatal(err)
	}
	me := migrate.NewEngine(eng, network)
	h.SetMigrationService(me)
	return NewManager(h), h
}

func sampleDef(name string) DomainDef {
	return DomainDef{
		Name:     name,
		MemoryMB: 16,
		VCPUs:    1,
		KVM:      true,
		Interfaces: []IfaceDef{{
			Model:    "virtio-net-pci",
			Forwards: []PortPair{{Host: 2222, Guest: 22}},
		}},
	}
}

func TestDefineStartDestroyLifecycle(t *testing.T) {
	m, h := newManager(t)
	d, err := m.Define(sampleDef("web"))
	if err != nil {
		t.Fatal(err)
	}
	if d.State() != StateDefined || d.Active() {
		t.Fatalf("fresh state = %v", d.State())
	}
	if err := m.Start("web"); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateRunning || d.VM() == nil {
		t.Fatalf("state = %v", d.State())
	}
	// Forward materialized on the network.
	dst, _, err := h.Network().ResolveForward(vnet.Addr{Endpoint: "host", Port: 2222})
	if err != nil || dst.Endpoint != "web.nic" {
		t.Fatalf("forward = %v %v", dst, err)
	}
	if err := m.Suspend("web"); err != nil {
		t.Fatal(err)
	}
	if d.State() != StatePaused {
		t.Fatalf("state = %v", d.State())
	}
	if err := m.Resume("web"); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot("web"); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateRunning {
		t.Fatalf("state after reboot = %v", d.State())
	}
	if err := m.Destroy("web"); err != nil {
		t.Fatal(err)
	}
	if d.Active() || d.State() != StateDefined {
		t.Fatalf("state after destroy = %v", d.State())
	}
	// The definition persists; it can start again.
	if err := m.Start("web"); err != nil {
		t.Fatal(err)
	}
	if err := m.Destroy("web"); err != nil {
		t.Fatal(err)
	}
	if err := m.Undefine("web"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Domain("web"); ok {
		t.Fatal("domain survived undefine")
	}
}

func TestLifecycleErrors(t *testing.T) {
	m, _ := newManager(t)
	if _, err := m.Define(sampleDef("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Define(sampleDef("a")); !errors.Is(err, ErrDomainExists) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Start("ghost"); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Destroy("a"); !errors.Is(err, ErrDomainNotActive) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Start("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("a"); !errors.Is(err, ErrDomainActive) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Undefine("a"); !errors.Is(err, ErrDomainActive) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Reboot("ghost"); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Suspend("ghost"); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Resume("ghost"); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Migrate("ghost", "tcp:x:1"); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []DomainDef{
		{},
		{Name: "x"},
		{Name: "x", MemoryMB: 16},
		{Name: "x", MemoryMB: 16, VCPUs: 1,
			Interfaces: []IfaceDef{{Forwards: []PortPair{{Host: -1, Guest: 22}}}}},
	}
	for i, def := range bad {
		if err := def.Validate(); !errors.Is(err, ErrBadDefinition) {
			t.Fatalf("case %d err = %v", i, err)
		}
	}
}

func TestConfigRoundTrip(t *testing.T) {
	def := sampleDef("rt")
	def.MonitorPort = 5555
	def.QMPPort = 7777
	def.Disks = []DiskDef{{File: "rt.qcow2", Format: "qcow2", SizeMB: 1024}}
	cfg := def.ToConfig()
	back := DefFromConfig(cfg)
	if back.Name != def.Name || back.MemoryMB != def.MemoryMB ||
		back.MonitorPort != 5555 || back.QMPPort != 7777 {
		t.Fatalf("round trip = %+v", back)
	}
	if len(back.Interfaces) != 1 || len(back.Interfaces[0].Forwards) != 1 ||
		back.Interfaces[0].Forwards[0] != (PortPair{Host: 2222, Guest: 22}) {
		t.Fatalf("interfaces = %+v", back.Interfaces)
	}
	if len(back.Disks) != 1 || back.Disks[0] != def.Disks[0] {
		t.Fatalf("disks = %+v", back.Disks)
	}
}

func TestToConfigDefaults(t *testing.T) {
	def := DomainDef{Name: "min", MemoryMB: 8, VCPUs: 1}
	cfg := def.ToConfig()
	if cfg.Machine == "" || len(cfg.Drives) != 1 || len(cfg.NetDevs) != 1 {
		t.Fatalf("defaults missing: %+v", cfg)
	}
}

func TestDefineJSONAndDump(t *testing.T) {
	m, _ := newManager(t)
	raw := `{"name":"fromjson","memory_mb":16,"vcpus":1,"kvm":true,"autostart":true}`
	d, err := m.DefineJSON([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Def.Autostart {
		t.Fatal("autostart lost")
	}
	dump, err := m.DumpJSON("fromjson")
	if err != nil {
		t.Fatal(err)
	}
	var back DomainDef
	if err := json.Unmarshal(dump, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "fromjson" || back.MemoryMB != 16 {
		t.Fatalf("dump round trip = %+v", back)
	}
	if _, err := m.DefineJSON([]byte("{nope")); !errors.Is(err, ErrBadDefinition) {
		t.Fatalf("bad json err = %v", err)
	}
	if _, err := m.DumpJSON("ghost"); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("err = %v", err)
	}
}

func TestAutostartAll(t *testing.T) {
	m, _ := newManager(t)
	a := sampleDef("auto-a")
	a.Autostart = true
	a.Interfaces = nil
	b := sampleDef("manual-b")
	b.Interfaces = nil
	c := sampleDef("auto-c")
	c.Autostart = true
	c.Interfaces = nil
	for _, def := range []DomainDef{a, b, c} {
		if _, err := m.Define(def); err != nil {
			t.Fatal(err)
		}
	}
	started, err := m.AutostartAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 2 || started[0] != "auto-a" || started[1] != "auto-c" {
		t.Fatalf("started = %v", started)
	}
	if d, _ := m.Domain("manual-b"); d.Active() {
		t.Fatal("manual domain autostarted")
	}
	// Idempotent: nothing more to start.
	started, err = m.AutostartAll()
	if err != nil || len(started) != 0 {
		t.Fatalf("second pass = %v %v", started, err)
	}
}

func TestManagedMigration(t *testing.T) {
	m, _ := newManager(t)
	src := sampleDef("src")
	src.Interfaces = nil
	dst := sampleDef("dst")
	dst.Interfaces = nil
	dst.Incoming = "tcp:0.0.0.0:4444"
	for _, def := range []DomainDef{src, dst} {
		if _, err := m.Define(def); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(def.Name); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Migrate("src", "tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	d, _ := m.Domain("dst")
	if d.State() != StateRunning {
		t.Fatalf("dst state = %v", d.State())
	}
	s, _ := m.Domain("src")
	if s.State() != StatePaused {
		t.Fatalf("src state = %v", s.State())
	}
}

func TestShellCommands(t *testing.T) {
	m, _ := newManager(t)
	run := func(line string) string {
		t.Helper()
		out, err := Execute(m, line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		return out
	}
	out := run(`define {"name":"web","memory_mb":16,"vcpus":1,"kvm":true}`)
	if !strings.Contains(out, "Domain web defined") {
		t.Fatalf("define out = %q", out)
	}
	out = run("list --all")
	if !strings.Contains(out, "web") || !strings.Contains(out, "shut off") {
		t.Fatalf("list out:\n%s", out)
	}
	run("start web")
	out = run("list")
	if !strings.Contains(out, "running") {
		t.Fatalf("list after start:\n%s", out)
	}
	out = run("dumpjson web")
	if !strings.Contains(out, `"memory_mb": 16`) {
		t.Fatalf("dumpjson:\n%s", out)
	}
	run("suspend web")
	run("resume web")
	run("reboot web")
	run("destroy web")
	run("undefine web")
	if out := run("list --all"); strings.Contains(out, "web") {
		t.Fatalf("web survived:\n%s", out)
	}
	if out := run(""); out != "" {
		t.Fatalf("empty line out = %q", out)
	}
	// Error paths surface as errors.
	for _, bad := range []string{
		"frobnicate", "start", "define", "start ghost", "list --all --extra",
	} {
		if _, err := Execute(m, bad); err == nil && bad != "list --all --extra" {
			t.Fatalf("%q accepted", bad)
		}
	}
}
