package virtman

import (
	"fmt"
	"strings"

	"cloudskulk/internal/report"
)

// commandSet is the single source of truth for what Execute understands:
// the dispatch switch below and the `help` listing both follow it, so the
// two cannot drift apart (TestHelpListsEveryCommand pins this).
var commandSet = []struct{ name, usage, desc string }{
	{"list", "list [--all]", "active (or all) domains"},
	{"define", "define <json>", "define a domain from inline JSON"},
	{"undefine", "undefine <name>", "remove an inactive definition"},
	{"start", "start <name>", "create and boot"},
	{"destroy", "destroy <name>", "hard stop"},
	{"reboot", "reboot <name>", "guest reboot"},
	{"suspend", "suspend <name>", "pause"},
	{"resume", "resume <name>", "unpause"},
	{"migrate", "migrate <name> <uri>", "live migrate"},
	{"dumpjson", "dumpjson <name>", "print the definition"},
	{"autostart-all", "autostart-all", "start all autostart domains"},
	{"help", "help", "this listing"},
}

// Commands returns the name of every command Execute dispatches.
func Commands() []string {
	names := make([]string, len(commandSet))
	for i, c := range commandSet {
		names[i] = c.name
	}
	return names
}

// Help renders the command listing, one aligned line per command.
func Help() string {
	width := 0
	for _, c := range commandSet {
		if len(c.usage) > width {
			width = len(c.usage)
		}
	}
	var b strings.Builder
	for _, c := range commandSet {
		fmt.Fprintf(&b, "%-*s  %s\n", width, c.usage, c.desc)
	}
	return b.String()
}

// Execute runs one virsh-style command line against the manager and
// returns its output; `help` lists the supported commands.
func Execute(m *Manager, line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	cmd, args := fields[0], fields[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("virtman: %s expects %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "list":
		all := len(args) == 1 && args[0] == "--all"
		t := report.Table{Headers: []string{"Name", "State"}}
		for _, d := range m.List() {
			if !all && !d.Active() {
				continue
			}
			t.AddRow(d.Def.Name, string(d.State()))
		}
		return t.Render(), nil
	case "define":
		// The JSON is everything after the verb.
		raw := strings.TrimSpace(strings.TrimPrefix(line, "define"))
		if raw == "" {
			return "", fmt.Errorf("virtman: define expects a JSON definition")
		}
		d, err := m.DefineJSON([]byte(raw))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("Domain %s defined\n", d.Def.Name), nil
	case "undefine":
		if err := need(1); err != nil {
			return "", err
		}
		if err := m.Undefine(args[0]); err != nil {
			return "", err
		}
		return fmt.Sprintf("Domain %s has been undefined\n", args[0]), nil
	case "start":
		if err := need(1); err != nil {
			return "", err
		}
		if err := m.Start(args[0]); err != nil {
			return "", err
		}
		return fmt.Sprintf("Domain %s started\n", args[0]), nil
	case "destroy":
		if err := need(1); err != nil {
			return "", err
		}
		if err := m.Destroy(args[0]); err != nil {
			return "", err
		}
		return fmt.Sprintf("Domain %s destroyed\n", args[0]), nil
	case "reboot":
		if err := need(1); err != nil {
			return "", err
		}
		if err := m.Reboot(args[0]); err != nil {
			return "", err
		}
		return fmt.Sprintf("Domain %s is being rebooted\n", args[0]), nil
	case "suspend":
		if err := need(1); err != nil {
			return "", err
		}
		if err := m.Suspend(args[0]); err != nil {
			return "", err
		}
		return fmt.Sprintf("Domain %s suspended\n", args[0]), nil
	case "resume":
		if err := need(1); err != nil {
			return "", err
		}
		if err := m.Resume(args[0]); err != nil {
			return "", err
		}
		return fmt.Sprintf("Domain %s resumed\n", args[0]), nil
	case "migrate":
		if err := need(2); err != nil {
			return "", err
		}
		if err := m.Migrate(args[0], args[1]); err != nil {
			return "", err
		}
		return fmt.Sprintf("Migration of %s completed\n", args[0]), nil
	case "dumpjson":
		if err := need(1); err != nil {
			return "", err
		}
		raw, err := m.DumpJSON(args[0])
		if err != nil {
			return "", err
		}
		return string(raw) + "\n", nil
	case "autostart-all":
		started, err := m.AutostartAll()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("Started: %s\n", strings.Join(started, ", ")), nil
	case "help":
		return Help(), nil
	default:
		return "", fmt.Errorf("virtman: unknown command %q", cmd)
	}
}
