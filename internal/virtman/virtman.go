// Package virtman is a libvirt-style management layer over the kvm
// substrate: JSON domain definitions, define/start/destroy lifecycle,
// autostart, and migration — the orchestration surface a cloud control
// plane (or the paper's attacker, with stolen credentials) drives.
package virtman

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"cloudskulk/internal/kvm"
	"cloudskulk/internal/qemu"
)

// Errors callers match on.
var (
	ErrDomainExists    = errors.New("virtman: domain already defined")
	ErrNoSuchDomain    = errors.New("virtman: no such domain")
	ErrDomainActive    = errors.New("virtman: domain is active")
	ErrDomainNotActive = errors.New("virtman: domain is not active")
	ErrBadDefinition   = errors.New("virtman: invalid domain definition")
)

// PortPair is one forwarded port in a domain definition.
type PortPair struct {
	Host  int `json:"host"`
	Guest int `json:"guest"`
}

// DiskDef defines one disk.
type DiskDef struct {
	File   string `json:"file"`
	Format string `json:"format"`
	SizeMB int64  `json:"size_mb"`
}

// IfaceDef defines one network interface.
type IfaceDef struct {
	Model    string     `json:"model"`
	Forwards []PortPair `json:"forwards,omitempty"`
}

// DomainDef is the persistent definition of a domain — the moral
// equivalent of libvirt's domain XML, in JSON.
type DomainDef struct {
	Name        string     `json:"name"`
	MemoryMB    int64      `json:"memory_mb"`
	VCPUs       int        `json:"vcpus"`
	Machine     string     `json:"machine,omitempty"`
	KVM         bool       `json:"kvm"`
	Disks       []DiskDef  `json:"disks,omitempty"`
	Interfaces  []IfaceDef `json:"interfaces,omitempty"`
	MonitorPort int        `json:"monitor_port,omitempty"`
	QMPPort     int        `json:"qmp_port,omitempty"`
	Incoming    string     `json:"incoming,omitempty"`
	Autostart   bool       `json:"autostart,omitempty"`
}

// Validate checks the definition for the errors libvirt would reject.
func (d DomainDef) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("%w: missing name", ErrBadDefinition)
	}
	if d.MemoryMB <= 0 {
		return fmt.Errorf("%w: memory_mb must be positive", ErrBadDefinition)
	}
	if d.VCPUs <= 0 {
		return fmt.Errorf("%w: vcpus must be positive", ErrBadDefinition)
	}
	for _, iface := range d.Interfaces {
		for _, f := range iface.Forwards {
			if f.Host <= 0 || f.Guest <= 0 {
				return fmt.Errorf("%w: forward ports must be positive", ErrBadDefinition)
			}
		}
	}
	return nil
}

// ToConfig lowers the definition to a QEMU launch configuration.
func (d DomainDef) ToConfig() qemu.Config {
	cfg := qemu.Config{
		Name:        d.Name,
		Machine:     d.Machine,
		MemoryMB:    d.MemoryMB,
		CPUs:        d.VCPUs,
		EnableKVM:   d.KVM,
		MonitorPort: d.MonitorPort,
		QMPPort:     d.QMPPort,
		Incoming:    d.Incoming,
	}
	if cfg.Machine == "" {
		cfg.Machine = "pc-i440fx-2.9"
	}
	for _, disk := range d.Disks {
		cfg.Drives = append(cfg.Drives, qemu.Drive{
			File:   disk.File,
			Format: disk.Format,
			SizeMB: disk.SizeMB,
		})
	}
	for _, iface := range d.Interfaces {
		nd := qemu.NetDev{Model: iface.Model}
		for _, f := range iface.Forwards {
			nd.HostFwds = append(nd.HostFwds, qemu.FwdRule{HostPort: f.Host, GuestPort: f.Guest})
		}
		cfg.NetDevs = append(cfg.NetDevs, nd)
	}
	if len(cfg.Drives) == 0 {
		cfg.Drives = []qemu.Drive{{File: d.Name + ".qcow2", Format: "qcow2", SizeMB: 20 * 1024}}
	}
	if len(cfg.NetDevs) == 0 {
		cfg.NetDevs = []qemu.NetDev{{Model: "virtio-net-pci"}}
	}
	return cfg
}

// DefFromConfig lifts a QEMU configuration back into a definition.
func DefFromConfig(cfg qemu.Config) DomainDef {
	d := DomainDef{
		Name:        cfg.Name,
		MemoryMB:    cfg.MemoryMB,
		VCPUs:       cfg.CPUs,
		Machine:     cfg.Machine,
		KVM:         cfg.EnableKVM,
		MonitorPort: cfg.MonitorPort,
		QMPPort:     cfg.QMPPort,
		Incoming:    cfg.Incoming,
	}
	for _, drive := range cfg.Drives {
		d.Disks = append(d.Disks, DiskDef{File: drive.File, Format: drive.Format, SizeMB: drive.SizeMB})
	}
	for _, nd := range cfg.NetDevs {
		iface := IfaceDef{Model: nd.Model}
		for _, f := range nd.HostFwds {
			iface.Forwards = append(iface.Forwards, PortPair{Host: f.HostPort, Guest: f.GuestPort})
		}
		d.Interfaces = append(d.Interfaces, iface)
	}
	return d
}

// DomainState is a domain's lifecycle state in the manager's view.
type DomainState string

// Domain states (virsh vocabulary).
const (
	StateDefined DomainState = "shut off"
	StateRunning DomainState = "running"
	StatePaused  DomainState = "paused"
)

// Domain is one managed definition plus its runtime handle.
type Domain struct {
	Def DomainDef
	vm  *qemu.VM
}

// Active reports whether the domain has a live VM.
func (d *Domain) Active() bool {
	return d.vm != nil && d.vm.State() != qemu.StateShutOff
}

// State returns the virsh-style state.
func (d *Domain) State() DomainState {
	if d.vm == nil {
		return StateDefined
	}
	switch d.vm.State() {
	case qemu.StateRunning:
		return StateRunning
	case qemu.StatePaused, qemu.StateIncoming:
		return StatePaused
	default:
		return StateDefined
	}
}

// VM returns the live VM handle, or nil when shut off.
func (d *Domain) VM() *qemu.VM { return d.vm }

// Manager is the per-host management daemon (libvirtd).
type Manager struct {
	host    *kvm.Host
	domains map[string]*Domain
}

// NewManager returns a manager over the host.
func NewManager(host *kvm.Host) *Manager {
	return &Manager{
		host:    host,
		domains: make(map[string]*Domain),
	}
}

// Define registers a definition without starting it.
func (m *Manager) Define(def DomainDef) (*Domain, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	if _, exists := m.domains[def.Name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDomainExists, def.Name)
	}
	d := &Domain{Def: def}
	m.domains[def.Name] = d
	return d, nil
}

// DefineJSON registers a definition given as JSON.
func (m *Manager) DefineJSON(data []byte) (*Domain, error) {
	var def DomainDef
	if err := json.Unmarshal(data, &def); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadDefinition, err)
	}
	return m.Define(def)
}

// Undefine removes an inactive definition.
func (m *Manager) Undefine(name string) error {
	d, ok := m.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDomain, name)
	}
	if d.Active() {
		return fmt.Errorf("%w: %q", ErrDomainActive, name)
	}
	delete(m.domains, name)
	return nil
}

// Start creates and boots a defined domain.
func (m *Manager) Start(name string) error {
	d, ok := m.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDomain, name)
	}
	if d.Active() {
		return fmt.Errorf("%w: %q", ErrDomainActive, name)
	}
	vm, err := m.host.Hypervisor().CreateVM(d.Def.ToConfig())
	if err != nil {
		return err
	}
	if err := m.host.Hypervisor().Launch(name); err != nil {
		return err
	}
	d.vm = vm
	return nil
}

// Destroy hard-stops an active domain (virsh destroy), keeping the
// definition.
func (m *Manager) Destroy(name string) error {
	d, ok := m.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDomain, name)
	}
	if !d.Active() {
		return fmt.Errorf("%w: %q", ErrDomainNotActive, name)
	}
	if err := m.host.Hypervisor().Kill(name); err != nil {
		return err
	}
	d.vm = nil
	return nil
}

// Reboot restarts an active domain's guest.
func (m *Manager) Reboot(name string) error {
	d, ok := m.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDomain, name)
	}
	if !d.Active() {
		return fmt.Errorf("%w: %q", ErrDomainNotActive, name)
	}
	return m.host.Hypervisor().Reboot(name)
}

// Suspend pauses an active domain (virsh suspend).
func (m *Manager) Suspend(name string) error {
	d, ok := m.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDomain, name)
	}
	if !d.Active() {
		return fmt.Errorf("%w: %q", ErrDomainNotActive, name)
	}
	return d.vm.Pause()
}

// Resume unpauses a suspended domain (virsh resume).
func (m *Manager) Resume(name string) error {
	d, ok := m.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDomain, name)
	}
	if d.vm == nil {
		return fmt.Errorf("%w: %q", ErrDomainNotActive, name)
	}
	return d.vm.Resume()
}

// Migrate live-migrates an active domain to a destination URI.
func (m *Manager) Migrate(name, uri string) error {
	d, ok := m.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDomain, name)
	}
	if !d.Active() {
		return fmt.Errorf("%w: %q", ErrDomainNotActive, name)
	}
	_, err := d.vm.Monitor().Execute("migrate -d " + uri)
	return err
}

// Domain looks up a managed domain.
func (m *Manager) Domain(name string) (*Domain, bool) {
	d, ok := m.domains[name]
	return d, ok
}

// List returns all domains sorted by name.
func (m *Manager) List() []*Domain {
	out := make([]*Domain, 0, len(m.domains))
	for _, d := range m.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Def.Name < out[j].Def.Name })
	return out
}

// AutostartAll starts every autostart-flagged inactive domain, returning
// the names started. Errors abort (the daemon would log and continue; we
// surface them).
func (m *Manager) AutostartAll() ([]string, error) {
	var started []string
	for _, d := range m.List() {
		if !d.Def.Autostart || d.Active() {
			continue
		}
		if err := m.Start(d.Def.Name); err != nil {
			return started, err
		}
		started = append(started, d.Def.Name)
	}
	return started, nil
}

// DumpJSON serializes a domain's definition (virsh dumpxml, in JSON).
func (m *Manager) DumpJSON(name string) ([]byte, error) {
	d, ok := m.domains[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDomain, name)
	}
	return json.MarshalIndent(d.Def, "", "  ")
}
