// Package shard partitions a simulated fleet into independent per-shard
// sim.Engine instances joined by deterministic conservative event exchange
// — the substrate that scales the CloudSkulk testbed from one engine's
// worth of hosts to a thousand-host, hundred-thousand-guest cloud.
//
// The synchronization contract (DESIGN.md §16):
//
//   - Lookahead rule. Every cross-shard interaction (a migration stream, a
//     forwarded control-plane job) takes at least the inter-shard link
//     latency to arrive, so a shard at virtual time T cannot be affected
//     by any other shard before T + lookahead. Each round the world finds
//     the minimum next-event time t_min across all shards and grants every
//     shard the window [now, t_min+lookahead): shards advance through it
//     independently — in parallel, on separate engines — without ever
//     seeing an effect out of order. Send enforces the rule: a cross-shard
//     message with delay < lookahead panics rather than desynchronize.
//
//   - Canonical exchange order. Messages generated during a round are
//     collected per source shard, concatenated in shard-ID order, and
//     sorted by (At, From, Seq) — a total order none of which depends on
//     worker scheduling — before delivery. Artefacts are therefore
//     byte-identical at any worker count, which the megastorm golden
//     matrix (workers 1 vs 8 × seeds 1/7) pins.
//
//   - Horizon exclusivity. A shard granted the window up to horizon H
//     fires only events strictly before H (sim.Engine.RunBefore): an event
//     at exactly H might race a message arriving at H, so it waits for the
//     next round, after that message has been exchanged.
package shard

import (
	"fmt"
	"time"

	"cloudskulk/internal/runner"
	"cloudskulk/internal/sim"
)

// Message is one cross-shard interaction, delivered to the destination
// shard's handler at virtual time At on the destination's own engine.
type Message struct {
	// At is the virtual delivery time; Send computes it as the sender's
	// now plus the transfer delay.
	At time.Duration
	// From and To are shard IDs.
	From, To int
	// Seq is the per-source-shard send counter; (At, From, Seq) is the
	// canonical total order messages are exchanged in.
	Seq uint64
	// Kind labels the interaction for handlers and traces.
	Kind string
	// Data is the payload, owned by the receiver once delivered.
	Data any
}

// Shard is one partition: a private engine plus the world's exchange port.
// All simulation state of the partition (its fleet, control plane, guests)
// must be driven solely by this shard's engine — that is what makes the
// parallel advance race-free.
type Shard struct {
	id      int
	eng     *sim.Engine
	w       *World
	outbox  []Message
	deliver func(Message)
	sent    uint64
}

// ID returns the shard's index in the world.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's private simulation engine.
func (s *Shard) Engine() *sim.Engine { return s.eng }

// OnDeliver installs the handler invoked (at the message's At, on this
// shard's engine) for each message addressed to this shard.
func (s *Shard) OnDeliver(fn func(Message)) { s.deliver = fn }

// Send queues a message to another shard, arriving delay after the
// sender's current virtual time. The delay must be at least the world's
// lookahead — the conservative-synchronization contract; a shorter delay
// is a modelling bug (an interaction faster than the inter-shard link)
// and panics. Sending to the own shard is equally a bug: local effects
// belong on the local engine.
//
//detlint:hotpath
func (s *Shard) Send(to int, delay time.Duration, kind string, data any) {
	if delay < s.w.lookahead {
		panic(fmt.Sprintf("shard %d: send %q delay %v violates lookahead %v",
			s.id, kind, delay, s.w.lookahead))
	}
	if to == s.id || to < 0 || to >= len(s.w.shards) {
		panic(fmt.Sprintf("shard %d: send %q to invalid shard %d", s.id, kind, to))
	}
	s.sent++
	s.outbox = append(s.outbox, Message{
		At:   s.eng.Now() + delay,
		From: s.id,
		To:   to,
		Seq:  s.sent,
		Kind: kind,
		Data: data,
	})
}

// World is a set of shards advancing under conservative synchronization.
type World struct {
	shards    []*Shard
	lookahead time.Duration
	workers   int

	exchange  []Message // reusable canonical-sort buffer
	rounds    uint64
	delivered uint64
}

// Options tunes a world.
type Options struct {
	// Lookahead is the guaranteed minimum cross-shard interaction delay —
	// in a gridded fleet, the inter-shard link latency. Must be > 0.
	Lookahead time.Duration
	// Workers bounds the parallel advance pool; <= 1 runs shards
	// serially on the calling goroutine (the allocation-free path).
	// The artefact is byte-identical either way.
	Workers int
}

// NewWorld builds n shards. Each shard's engine is seeded deterministically
// from (seed, shard ID), so a world is a pure function of its seed at any
// worker count.
func NewWorld(n int, seed int64, opts Options) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: world needs at least one shard, got %d", n)
	}
	if opts.Lookahead <= 0 {
		return nil, fmt.Errorf("shard: lookahead must be positive, got %v", opts.Lookahead)
	}
	w := &World{
		lookahead: opts.Lookahead,
		workers:   opts.Workers,
		shards:    make([]*Shard, n),
	}
	for i := range w.shards {
		w.shards[i] = &Shard{
			id:  i,
			eng: sim.NewEngine(runner.CellSeed(seed, i)),
			w:   w,
		}
	}
	return w, nil
}

// NumShards returns the shard count.
func (w *World) NumShards() int { return len(w.shards) }

// Shard returns shard i.
func (w *World) Shard(i int) *Shard { return w.shards[i] }

// Lookahead returns the synchronization window.
func (w *World) Lookahead() time.Duration { return w.lookahead }

// Rounds returns how many synchronization rounds have run.
func (w *World) Rounds() uint64 { return w.rounds }

// Delivered returns how many cross-shard messages have been exchanged.
func (w *World) Delivered() uint64 { return w.delivered }

// RunUntil advances every shard to virtual time t, firing all events with
// timestamps <= t in conservative rounds. On return every shard's clock
// reads exactly t and all cross-shard messages generated on the way —
// including those arriving beyond t — have been scheduled on their
// destination engines.
func (w *World) RunUntil(t time.Duration) error {
	for {
		tmin, any := w.minNextEvent()
		if !any || tmin > t {
			// Nothing left at or before t anywhere: park all clocks at t.
			for _, s := range w.shards {
				s.eng.RunUntil(t)
			}
			return nil
		}
		horizon := tmin + w.lookahead
		if err := w.advance(horizon, t); err != nil {
			return err
		}
		w.exchangeRound()
		w.rounds++
	}
}

// minNextEvent finds the earliest pending event time across all shards.
func (w *World) minNextEvent() (time.Duration, bool) {
	var tmin time.Duration
	any := false
	for _, s := range w.shards {
		if at, ok := s.eng.NextEventAt(); ok && (!any || at < tmin) {
			tmin, any = at, true
		}
	}
	return tmin, any
}

// advance runs every shard through the granted window. With Workers > 1
// the shards advance on the runner pool — safe because each shard's state
// is driven only by its own engine and outboxes are per-shard; the serial
// path is a plain loop, allocation-free in the steady state.
func (w *World) advance(horizon, t time.Duration) error {
	if w.workers <= 1 {
		for _, s := range w.shards {
			stepShard(s, horizon, t)
		}
		return nil
	}
	_, err := runner.Map(len(w.shards), runner.Options{Workers: w.workers},
		func(i int) (struct{}, error) {
			stepShard(w.shards[i], horizon, t)
			return struct{}{}, nil
		})
	return err
}

// stepShard advances one shard through the window: strictly below the
// horizon, except that a horizon beyond the run target t degenerates to
// the inclusive RunUntil(t) — every event <= t is then strictly inside the
// window, and the clock must land exactly on t.
func stepShard(s *Shard, horizon, t time.Duration) {
	if horizon > t {
		s.eng.RunUntil(t)
		return
	}
	s.eng.RunBefore(horizon)
}

// exchangeRound gathers every shard's outbox, sorts the batch into the
// canonical (At, From, Seq) order, and schedules each message's delivery
// on its destination engine. Destination clocks are at or before every
// At (the lookahead rule), so no message lands in a shard's past.
//
//detlint:hotpath
func (w *World) exchangeRound() {
	batch := w.exchange[:0]
	for _, s := range w.shards {
		batch = append(batch, s.outbox...)
		s.outbox = s.outbox[:0]
	}
	if len(batch) == 0 {
		w.exchange = batch
		return
	}
	// Insertion sort: rounds carry few messages, and this keeps the
	// exchange path free of sort.Slice's closure allocation.
	for i := 1; i < len(batch); i++ {
		m := batch[i]
		j := i - 1
		for j >= 0 && messageAfter(batch[j], m) {
			batch[j+1] = batch[j]
			j--
		}
		batch[j+1] = m
	}
	for _, m := range batch {
		m := m
		dst := w.shards[m.To]
		//detlint:allow hotpath — one closure per cross-shard message is the delivery contract; rounds carry few messages by the lookahead design
		dst.eng.ScheduleAt(m.At, m.Kind, func() {
			if dst.deliver != nil {
				dst.deliver(m)
			}
		})
		w.delivered++
	}
	w.exchange = batch
}

// messageAfter reports a > b in the canonical exchange order.
func messageAfter(a, b Message) bool {
	if a.At != b.At {
		return a.At > b.At
	}
	if a.From != b.From {
		return a.From > b.From
	}
	return a.Seq > b.Seq
}
