package shard

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"cloudskulk/internal/mem"
	"cloudskulk/internal/vnet"
)

func testGridConfig(seed int64, workers int) GridConfig {
	return GridConfig{
		Shards:        2,
		HostsPerShard: 2,
		GuestsPerHost: 3,
		GuestMemMB:    4, // 1024 pages — small enough for a fast test
		Seed:          seed,
		Workers:       workers,
		InterShard: vnet.LinkSpec{
			Bandwidth: 125 << 20, // 125 MiB/s
			Latency:   2 * time.Millisecond,
		},
		KernelPages: 16,
	}
}

// runGridScenario provisions a 2-shard grid, runs a deterministic churn
// phase (user-page write bursts, one kernel tamper, one cross-shard
// migration in each direction), audits, and renders everything
// observable into one artefact string.
func runGridScenario(t *testing.T, seed int64, workers int) string {
	t.Helper()
	g, err := NewGrid(testGridConfig(seed, workers))
	if err != nil {
		t.Fatal(err)
	}
	base, err := g.Provision("acme")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumCells(); i++ {
		i := i
		cell := g.Cell(i)
		eng := cell.Shard.Engine()
		// A write burst in the user region of guest 0 — pages the audit
		// must ignore.
		eng.ScheduleAt(base+5*time.Millisecond, "burst", func() {
			info, err := cell.Fleet.Lookup("acme." + GuestVMName(i, 0))
			if err != nil {
				t.Errorf("burst lookup: %v", err)
				return
			}
			for p := 100; p < 110; p++ {
				if _, err := info.Outer.RAM().Write(p, mem.Content(0xb0b0+uint64(p))); err != nil {
					t.Errorf("burst write: %v", err)
					return
				}
			}
		})
		// Migrate guest 0 to the other shard after its burst.
		g.ScheduleMigration(i, (i+1)%g.NumCells(), "acme."+GuestVMName(i, 0),
			base+10*time.Millisecond)
	}
	// Tamper with guest 1 on shard 0: one kernel-region page flips.
	tamperCell := g.Cell(0)
	tamperCell.Shard.Engine().ScheduleAt(base+7*time.Millisecond, "tamper", func() {
		info, err := tamperCell.Fleet.Lookup("acme." + GuestVMName(0, 1))
		if err != nil {
			t.Errorf("tamper lookup: %v", err)
			return
		}
		if _, err := info.Outer.RAM().Write(3, 0xdead); err != nil {
			t.Errorf("tamper write: %v", err)
		}
	})
	if err := g.Run(base + 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	tampered, err := g.AuditKernels()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "stats=%+v\n", g.Stats())
	fmt.Fprintf(&b, "tampered=%v\n", tampered)
	for i := 0; i < g.NumCells(); i++ {
		cell := g.Cell(i)
		names := cell.Fleet.GuestNames()
		sort.Strings(names)
		fmt.Fprintf(&b, "cell %d guests:\n", i)
		for _, gname := range names {
			info, err := cell.Fleet.Lookup(gname)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "  %s host=%s hash=%016x\n",
				gname, info.Host, info.Outer.RAM().ContentHash())
		}
	}
	return b.String()
}

// TestGridMigrationMovesGuestIntact pins the delta-migration semantics:
// the guest disappears from the source fleet, appears in the destination
// fleet, and its memory contents equal "template + its writes" exactly.
func TestGridMigrationMovesGuestIntact(t *testing.T) {
	g, err := NewGrid(testGridConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	base, err := g.Provision("acme")
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if want := 2 * 2 * 3; st.Deployed != want || st.Guests != want {
		t.Fatalf("provisioned %d/%d guests, want %d", st.Deployed, st.Guests, want)
	}
	if st.ForkSpawns != uint64(st.Deployed) {
		t.Fatalf("only %d of %d deploys forked the template", st.ForkSpawns, st.Deployed)
	}
	mover := "acme." + GuestVMName(0, 2)
	src := g.Cell(0)
	src.Shard.Engine().ScheduleAt(base+time.Millisecond, "write", func() {
		info, err := src.Fleet.Lookup(mover)
		if err != nil {
			t.Errorf("lookup: %v", err)
			return
		}
		for p := 200; p < 220; p++ {
			if _, err := info.Outer.RAM().Write(p, mem.Content(uint64(p)*7)); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	})
	g.ScheduleMigration(0, 1, mover, base+5*time.Millisecond)
	if err := g.Run(base + 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Fleet.Lookup(mover); err == nil {
		t.Fatal("guest still resolvable in source fleet after migration")
	}
	info, err := g.Cell(1).Fleet.Lookup(mover)
	if err != nil {
		t.Fatalf("guest not in destination fleet: %v", err)
	}
	// Expected contents: a fresh fork with the same writes applied.
	want := mem.SpawnFrom("want", g.Cell(1).Template)
	for p := 200; p < 220; p++ {
		if _, err := want.Write(p, mem.Content(uint64(p)*7)); err != nil {
			t.Fatal(err)
		}
	}
	if got := info.Outer.RAM().ContentHash(); got != want.ContentHash() {
		t.Fatalf("migrated contents hash %016x, want %016x", got, want.ContentHash())
	}
	st = g.Stats()
	if st.MigrationsOut != 1 || st.MigrationsIn != 1 {
		t.Fatalf("migration counters %d/%d, want 1/1", st.MigrationsOut, st.MigrationsIn)
	}
	if st.DeltaPages == 0 || st.DeltaPages > 40 {
		t.Fatalf("delta shipped %d pages, want a small nonzero count", st.DeltaPages)
	}
	if st.Guests != 12 {
		t.Fatalf("guest population %d after migration, want 12", st.Guests)
	}
}

// TestGridAuditFindsExactlyTheTamperedGuest: the kernel integrity sweep
// flags the tampered guest and nothing else — user-page bursts and
// migrations leave the kernel region bit-identical.
func TestGridAuditFindsExactlyTheTamperedGuest(t *testing.T) {
	got := runGridScenario(t, 5, 1)
	want := "tampered=[acme." + GuestVMName(0, 1) + "]"
	if !strings.Contains(got, want+"\n") {
		t.Fatalf("artefact missing %q:\n%s", want, got)
	}
}

// TestGridWorkerInvariance: the full grid artefact — stats, audit
// verdicts, guest placement, every guest's memory hash — is byte-identical
// at any worker count, and a different seed produces a different world.
func TestGridWorkerInvariance(t *testing.T) {
	base := runGridScenario(t, 7, 1)
	for _, workers := range []int{2, 8} {
		if got := runGridScenario(t, 7, workers); got != base {
			t.Fatalf("workers=%d artefact differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, base, workers, got)
		}
	}
	if again := runGridScenario(t, 7, 1); again != base {
		t.Fatal("same seed replays a different artefact")
	}
	if other := runGridScenario(t, 11, 1); other == base {
		t.Fatal("different seeds produce identical artefacts")
	}
}
