package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"cloudskulk/internal/controlplane"
	"cloudskulk/internal/fleet"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/runner"
	"cloudskulk/internal/vnet"
)

// GridConfig sizes a sharded cloud: Shards independent fleets, each with
// its own control plane and a frozen golden memory image every deploy
// forks copy-on-write.
type GridConfig struct {
	// Shards is the number of partitions (one fleet + plane per shard).
	Shards int
	// HostsPerShard and GuestsPerHost size each partition's fleet.
	HostsPerShard int
	GuestsPerHost int
	// GuestMemMB is the golden template (and therefore every guest) size.
	GuestMemMB int64
	// Seed drives everything: engines, template contents, churn jitter.
	Seed int64
	// Workers bounds the parallel advance pool (<= 1 = serial).
	Workers int
	// InterShard is the link between shards; its latency is the world's
	// lookahead and its bandwidth prices migration streams.
	InterShard vnet.LinkSpec
	// HostLink overrides the intra-shard host link (fleet default if zero).
	HostLink vnet.LinkSpec
	// Backend selects the hypervisor backend for every host ("" = default).
	Backend string
	// PlaneSlots bounds each plane's concurrently executing jobs
	// (default 8).
	PlaneSlots int
	// KernelPages is the size of the audited kernel text region at the
	// front of every guest's memory (default 32 pages).
	KernelPages int
}

func (c GridConfig) guestsPerShard() int { return c.HostsPerShard * c.GuestsPerHost }

// migStream is the cross-shard migration payload: the guest's identity
// plus its delta against the golden template — the only pages worth
// moving when both sides hold the same frozen image.
type migStream struct {
	name  string
	pages []int
	data  []mem.Content
}

// Cell is one shard's slice of the cloud: a fleet, its control plane,
// the shared golden template, and migration scratch state. All of it is
// driven solely by the cell's shard engine.
type Cell struct {
	Shard    *Shard
	Fleet    *fleet.Fleet
	Plane    *controlplane.Plane
	Template *mem.Template

	grid    *Grid
	snapBuf []mem.Content // reused across outgoing migrations (SnapshotInto)

	deployed   int
	migOut     int
	migIn      int
	deltaPages int
	err        error // first event-handler failure, surfaced by Run
}

// fail records the first asynchronous failure inside an event handler;
// Grid.Run reports it after the virtual-time run completes.
func (c *Cell) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Grid is a sharded cloud: a conservative-synchronization World whose
// shards each carry a full fleet + control-plane stack.
type Grid struct {
	cfg   GridConfig
	world *World
	cells []*Cell

	// cleanKernelHash is RangeHash(0, KernelPages) of a pristine fork of
	// the golden template — identical for every cell, the baseline the
	// integrity audit compares guests against.
	cleanKernelHash uint64
}

// NewGrid builds the sharded cloud. Every shard gets an identical golden
// template (frozen from the same template seed), so cross-shard
// migrations can ship deltas instead of full images.
func NewGrid(cfg GridConfig) (*Grid, error) {
	if cfg.Shards <= 0 || cfg.HostsPerShard <= 0 || cfg.GuestsPerHost <= 0 {
		return nil, fmt.Errorf("shard: grid needs positive shards/hosts/guests, got %d/%d/%d",
			cfg.Shards, cfg.HostsPerShard, cfg.GuestsPerHost)
	}
	if cfg.GuestMemMB <= 0 {
		return nil, fmt.Errorf("shard: grid needs positive guest memory, got %d MB", cfg.GuestMemMB)
	}
	if cfg.InterShard.Latency <= 0 || cfg.InterShard.Bandwidth <= 0 {
		return nil, fmt.Errorf("shard: inter-shard link needs latency and bandwidth, got %+v", cfg.InterShard)
	}
	if cfg.PlaneSlots <= 0 {
		cfg.PlaneSlots = 8
	}
	if cfg.KernelPages <= 0 {
		cfg.KernelPages = 32
	}
	world, err := NewWorld(cfg.Shards, cfg.Seed, Options{
		Lookahead: cfg.InterShard.Latency,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	g := &Grid{cfg: cfg, world: world, cells: make([]*Cell, cfg.Shards)}
	guests := cfg.guestsPerShard()
	for i := 0; i < cfg.Shards; i++ {
		cell, err := g.buildCell(i, guests)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		g.cells[i] = cell
	}
	// The audit baseline comes from a private frozen copy of the golden
	// image so probing never skews the cells' template spawn counters.
	probe := mem.SpawnFrom("audit-probe", goldenTemplate(cfg, "golden-audit"))
	g.cleanKernelHash = probe.RangeHash(0, cfg.KernelPages)
	return g, nil
}

// goldenTemplate freezes the grid's golden image: a pure function of the
// grid seed, so every call (and every shard) yields byte-identical pages.
func goldenTemplate(cfg GridConfig, name string) *mem.Template {
	golden := mem.NewSpace("golden", cfg.GuestMemMB<<20)
	golden.FillRandom(rand.New(rand.NewSource(cfg.Seed^0x601de)), 0.25)
	return mem.Freeze(name, golden)
}

// buildCell assembles one shard's fleet + plane + template. Templates use
// the grid seed directly (not the per-shard seed): every cell freezes the
// byte-identical golden image, the invariant delta migration relies on.
func (g *Grid) buildCell(i, guests int) (*Cell, error) {
	cfg := g.cfg
	tmpl := goldenTemplate(cfg, fmt.Sprintf("golden-s%02d", i))

	specs := make([]fleet.HostSpec, cfg.HostsPerShard)
	for j := range specs {
		specs[j] = fleet.HostSpec{
			Name: fmt.Sprintf("s%02dh%02d", i, j),
			// Room for the shard's own guests plus migration imbalance.
			MemMB: 2 * int64(cfg.GuestsPerHost) * cfg.GuestMemMB,
		}
	}
	opts := []fleet.Option{
		fleet.WithEngine(g.world.Shard(i).Engine()),
		fleet.WithHostSpecs(specs...),
	}
	if cfg.HostLink != (vnet.LinkSpec{}) {
		opts = append(opts, fleet.WithHostLink(cfg.HostLink))
	}
	if cfg.Backend != "" {
		opts = append(opts, fleet.WithBackend(cfg.Backend))
	}
	f, err := fleet.New(runner.CellSeed(cfg.Seed, i), opts...)
	if err != nil {
		return nil, err
	}
	plane := controlplane.New(f, controlplane.Config{
		MaxQueue: guests + 16,
		Slots:    cfg.PlaneSlots,
		Template: tmpl,
	})
	cell := &Cell{
		Shard:    g.world.Shard(i),
		Fleet:    f,
		Plane:    plane,
		Template: tmpl,
		grid:     g,
	}
	cell.Shard.OnDeliver(cell.onDeliver)
	return cell, nil
}

// World returns the underlying synchronization world.
func (g *Grid) World() *World { return g.world }

// NumCells returns the shard count.
func (g *Grid) NumCells() int { return len(g.cells) }

// Cell returns shard i's stack.
func (g *Grid) Cell(i int) *Cell { return g.cells[i] }

// CleanKernelHash is the pristine-template kernel-region hash the
// integrity audit compares against.
func (g *Grid) CleanKernelHash() uint64 { return g.cleanKernelHash }

// GuestVMName is the canonical tenant-local VM name for guest k of shard
// i — shard-qualified so migrated guests never collide in the
// destination fleet's namespace.
func GuestVMName(shard, k int) string { return fmt.Sprintf("vm-s%02d-%04d", shard, k) }

// Provision creates the tenant on every plane and deploys the full guest
// complement through the async job queue — every deploy a copy-on-write
// fork of the golden template. Cells provision in parallel (no
// cross-shard traffic is possible yet), which diverges the shard clocks;
// AlignClocks parks them back on a common time before returning.
func (g *Grid) Provision(tenantName string) (time.Duration, error) {
	guests := g.cfg.guestsPerShard()
	quota := controlplane.Quota{
		MaxVMs:   guests + 16,
		MaxMemMB: int64(guests+16) * g.cfg.GuestMemMB,
		MaxJobs:  guests + 16,
	}
	_, err := runner.Map(len(g.cells), runner.Options{Workers: g.cfg.Workers},
		func(i int) (struct{}, error) {
			cell := g.cells[i]
			if err := cell.Plane.CreateTenant(tenantName, quota); err != nil {
				return struct{}{}, err
			}
			for k := 0; k < guests; k++ {
				_, err := cell.Plane.Submit(controlplane.Request{
					Op:     controlplane.OpDeploy,
					Tenant: tenantName,
					VM:     GuestVMName(i, k),
					MemMB:  g.cfg.GuestMemMB,
				})
				if err != nil {
					return struct{}{}, fmt.Errorf("deploy %d: %w", k, err)
				}
			}
			cell.Plane.Drain()
			cell.deployed = guests
			return struct{}{}, nil
		})
	if err != nil {
		return 0, err
	}
	return g.AlignClocks(), nil
}

// AlignClocks advances every shard to the maximum shard clock and returns
// it. Cross-shard sends are only safe while clocks run inside a common
// synchronization window, so callers must re-align after any phase (like
// Provision) that advances engines independently.
func (g *Grid) AlignClocks() time.Duration {
	var t time.Duration
	for _, cell := range g.cells {
		if now := cell.Shard.Engine().Now(); now > t {
			t = now
		}
	}
	for _, cell := range g.cells {
		cell.Shard.Engine().RunUntil(t)
	}
	return t
}

// Run advances the whole grid to virtual time t and surfaces the first
// failure recorded by any cell's event handlers.
func (g *Grid) Run(t time.Duration) error {
	if err := g.world.RunUntil(t); err != nil {
		return err
	}
	var errs []error
	for i, cell := range g.cells {
		if cell.err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, cell.err))
		}
	}
	return errors.Join(errs...)
}

// ScheduleMigration arranges for guest gname to leave shard src at
// virtual time at and arrive on shard dst after the inter-shard transfer
// delay. The stream carries only the guest's delta against the golden
// template; the destination re-forks the template and replays the delta.
func (g *Grid) ScheduleMigration(src, dst int, gname string, at time.Duration) {
	cell := g.cells[src]
	cell.Shard.Engine().ScheduleAt(at, "xmigrate", func() {
		cell.migrateOut(dst, gname)
	})
}

// migrateOut snapshots the guest, diffs it against the template, stops it
// locally, and ships the delta. The snapshot reuses the cell's buffer —
// steady-state migrations do not grow the heap.
func (c *Cell) migrateOut(dst int, gname string) {
	info, err := c.Fleet.Lookup(gname)
	if err != nil {
		c.fail(fmt.Errorf("migrate out %s: %w", gname, err))
		return
	}
	ram := info.Outer.RAM()
	c.snapBuf = ram.SnapshotInto(c.snapBuf)
	stream := &migStream{name: gname}
	for p, content := range c.snapBuf {
		want, err := c.Template.Read(p)
		if err != nil {
			c.fail(fmt.Errorf("migrate out %s: %w", gname, err))
			return
		}
		if content != want {
			stream.pages = append(stream.pages, p)
			stream.data = append(stream.data, content)
		}
	}
	if err := c.Fleet.StopGuest(gname); err != nil {
		c.fail(fmt.Errorf("migrate out %s: %w", gname, err))
		return
	}
	c.migOut++
	c.deltaPages += len(stream.pages)
	// Price the stream like vnet does: latency plus bytes over bandwidth.
	// The wire carries the delta pages plus a one-page manifest.
	bytes := int64(len(stream.pages)+1) * mem.PageSize
	link := c.grid.cfg.InterShard
	sec := float64(bytes) / float64(link.Bandwidth)
	delay := link.Latency + time.Duration(sec*float64(time.Second))
	c.Shard.Send(dst, delay, "xmigrate", stream)
}

// onDeliver handles an arriving migration stream: place the guest, fork
// the local (identical) template, replay the delta.
func (c *Cell) onDeliver(m Message) {
	stream, ok := m.Data.(*migStream)
	if !ok {
		c.fail(fmt.Errorf("shard %d: unexpected %q payload %T", c.Shard.ID(), m.Kind, m.Data))
		return
	}
	host, err := c.Fleet.PickHostFor(c.Template.SizeBytes()>>20, fleet.Policy{})
	if err != nil {
		c.fail(fmt.Errorf("migrate in %s: %w", stream.name, err))
		return
	}
	// StartGuestFrom statically reaches VM.Boot → Engine.Advance, but a
	// template fork takes the golden-image fast path, which returns
	// before the Advance: the clock never moves inside this handler.
	//detlint:allow horizon — template forks take the golden-image fast path in VM.Boot and return before Engine.Advance
	vm, err := c.Fleet.StartGuestFrom(host, stream.name, c.Template)
	if err != nil {
		c.fail(fmt.Errorf("migrate in %s: %w", stream.name, err))
		return
	}
	ram := vm.RAM()
	for idx, p := range stream.pages {
		if _, err := ram.Write(p, stream.data[idx]); err != nil {
			c.fail(fmt.Errorf("migrate in %s: %w", stream.name, err))
			return
		}
	}
	c.migIn++
}

// AuditKernels walks every guest of every cell and compares its kernel
// region hash against the pristine template's. It returns the
// shard-ID-ordered list of tampered guest names — the CloudSkulk-style
// integrity sweep the sharding exists to make affordable at scale.
func (g *Grid) AuditKernels() ([]string, error) {
	var tampered []string
	for _, cell := range g.cells {
		for _, gname := range cell.Fleet.GuestNames() {
			info, err := cell.Fleet.Lookup(gname)
			if err != nil {
				return nil, fmt.Errorf("audit %s: %w", gname, err)
			}
			if info.Outer.RAM().RangeHash(0, g.cfg.KernelPages) != g.cleanKernelHash {
				tampered = append(tampered, gname)
			}
		}
	}
	return tampered, nil
}

// GridStats aggregates the deterministic counters an experiment artefact
// renders.
type GridStats struct {
	Guests        int    // currently running guests across all fleets
	Deployed      int    // guests provisioned through the planes
	ForkSpawns    uint64 // template forks (deploys + migration arrivals)
	MigrationsOut int
	MigrationsIn  int
	DeltaPages    int // pages shipped across shards (sum of stream sizes)
	Rounds        uint64
	Delivered     uint64
}

// Stats sums per-cell counters with the world's synchronization counters.
func (g *Grid) Stats() GridStats {
	st := GridStats{Rounds: g.world.Rounds(), Delivered: g.world.Delivered()}
	for _, cell := range g.cells {
		st.Guests += len(cell.Fleet.GuestNames())
		st.Deployed += cell.deployed
		st.ForkSpawns += cell.Template.Spawns()
		st.MigrationsOut += cell.migOut
		st.MigrationsIn += cell.migIn
		st.DeltaPages += cell.deltaPages
	}
	return st
}
