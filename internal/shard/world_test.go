package shard

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// pingWorld builds an n-shard world where every shard runs a local ticker
// and a cross-shard ping ring, recording a trace of everything it sees.
// The trace is the determinism artefact the tests compare.
func pingWorld(t *testing.T, n, workers int, seed int64) (*World, []*strings.Builder) {
	t.Helper()
	la := 2 * time.Millisecond
	w, err := NewWorld(n, seed, Options{Lookahead: la, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]*strings.Builder, n)
	for i := 0; i < n; i++ {
		i := i
		s := w.Shard(i)
		tb := &strings.Builder{}
		traces[i] = tb
		s.OnDeliver(func(m Message) {
			fmt.Fprintf(tb, "recv %s from=%d at=%v data=%v\n", m.Kind, m.From, s.Engine().Now(), m.Data)
			// Bounce the ping onward with a jittered (but deterministic)
			// legal delay.
			hops := m.Data.(int)
			if hops > 0 {
				d := la + time.Duration(s.Engine().RNG().Intn(5))*time.Millisecond
				s.Send((i+1)%n, d, "ping", hops-1)
			}
		})
		// A local ticker: every shard has dense local work between syncs.
		var tick func()
		tick = func() {
			fmt.Fprintf(tb, "tick at=%v\n", s.Engine().Now())
			if s.Engine().Now() < 80*time.Millisecond {
				s.Engine().Schedule(time.Duration(1+s.Engine().RNG().Intn(3))*time.Millisecond, "tick", tick)
			}
		}
		s.Engine().Schedule(time.Duration(i)*time.Millisecond, "tick", tick)
		// Seed the ring.
		s.Engine().Schedule(3*time.Millisecond, "kick", func() {
			s.Send((i+1)%n, la, "ping", 6)
		})
	}
	return w, traces
}

func runPing(t *testing.T, workers int, seed int64) (string, *World) {
	t.Helper()
	w, traces := pingWorld(t, 4, workers, seed)
	if err := w.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for i, tb := range traces {
		fmt.Fprintf(&all, "== shard %d ==\n%s", i, tb.String())
	}
	return all.String(), w
}

// TestWorldWorkerInvariance: the full event trace of every shard is
// byte-identical whether shards advance serially or on 8 workers, and
// across repeated runs.
func TestWorldWorkerInvariance(t *testing.T) {
	base, w1 := runPing(t, 1, 11)
	if w1.Delivered() == 0 {
		t.Fatal("ping ring exchanged no messages — test is vacuous")
	}
	for _, workers := range []int{2, 8} {
		got, wN := runPing(t, workers, 11)
		if got != base {
			t.Fatalf("workers=%d trace differs from serial trace", workers)
		}
		if wN.Delivered() != w1.Delivered() || wN.Rounds() != w1.Rounds() {
			t.Fatalf("workers=%d counters (%d,%d) != serial (%d,%d)",
				workers, wN.Delivered(), wN.Rounds(), w1.Delivered(), w1.Rounds())
		}
	}
	again, _ := runPing(t, 1, 11)
	if again != base {
		t.Fatal("same seed replays a different trace")
	}
	other, _ := runPing(t, 1, 13)
	if other == base {
		t.Fatal("different seeds replay the same trace")
	}
}

// TestWorldClocksLandExactly: after RunUntil(t) every shard reads exactly
// t, and a second RunUntil continues the same simulation.
func TestWorldClocksLandExactly(t *testing.T) {
	w, _ := pingWorld(t, 3, 1, 5)
	if err := w.RunUntil(40 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.NumShards(); i++ {
		if now := w.Shard(i).Engine().Now(); now != 40*time.Millisecond {
			t.Fatalf("shard %d clock %v, want 40ms", i, now)
		}
	}
	before := w.Rounds()
	if err := w.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if w.Rounds() == before {
		t.Fatal("continuation ran no further rounds")
	}
	for i := 0; i < w.NumShards(); i++ {
		if now := w.Shard(i).Engine().Now(); now != 100*time.Millisecond {
			t.Fatalf("shard %d clock %v, want 100ms", i, now)
		}
	}
}

// TestWorldSplitRunMatchesOneShot: RunUntil(T) in two halves produces the
// same end state as one call — horizons never leak effects across t.
func TestWorldSplitRunMatchesOneShot(t *testing.T) {
	one, wOne := runPing(t, 1, 7)
	w, traces := pingWorld(t, 4, 1, 7)
	if err := w.RunUntil(53 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := w.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for i, tb := range traces {
		fmt.Fprintf(&all, "== shard %d ==\n%s", i, tb.String())
	}
	if all.String() != one {
		t.Fatal("split run diverged from one-shot run")
	}
	if w.Delivered() != wOne.Delivered() {
		t.Fatalf("split run delivered %d, one-shot %d", w.Delivered(), wOne.Delivered())
	}
}

// TestSendEnforcesLookahead: a cross-shard send faster than the lookahead
// is a synchronization bug and must panic, as must a send to a bogus shard.
func TestSendEnforcesLookahead(t *testing.T) {
	w, err := NewWorld(2, 1, Options{Lookahead: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	s := w.Shard(0)
	expectPanic("short delay", func() { s.Send(1, time.Microsecond, "x", nil) })
	expectPanic("self send", func() { s.Send(0, time.Millisecond, "x", nil) })
	expectPanic("bad target", func() { s.Send(9, time.Millisecond, "x", nil) })
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, 1, Options{Lookahead: time.Millisecond}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewWorld(2, 1, Options{}); err == nil {
		t.Fatal("zero lookahead accepted")
	}
}

// TestSteadyShardStepZeroAlloc pins the satellite claim: a synchronization
// round with local-only work (the overwhelmingly common case) allocates
// nothing on the serial path — peek, advance, and the empty exchange are
// all allocation-free.
func TestSteadyShardStepZeroAlloc(t *testing.T) {
	w, err := NewWorld(4, 3, Options{Lookahead: time.Millisecond, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Self-rescheduling tickers keep every shard's queue non-empty forever.
	for i := 0; i < w.NumShards(); i++ {
		s := w.Shard(i)
		var tick func()
		tick = func() { s.Engine().Schedule(time.Millisecond, "tick", tick) }
		s.Engine().Schedule(time.Millisecond, "tick", tick)
	}
	// Warm up the engines' event pools and the world's exchange buffer.
	if err := w.RunUntil(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	next := 50 * time.Millisecond
	allocs := testing.AllocsPerRun(200, func() {
		next += 5 * time.Millisecond
		if err := w.RunUntil(next); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady shard round allocates %v objects/op, want 0", allocs)
	}
}
