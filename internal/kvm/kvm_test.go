package kvm

import (
	"bufio"
	"errors"
	"fmt"
	"strings"
	"testing"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/vnet"
)

func newHost(t *testing.T) *Host {
	t.Helper()
	eng := sim.NewEngine(1)
	network := vnet.New(eng)
	h, err := NewHost(eng, network, "host")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func smallCfg(name string) qemu.Config {
	cfg := qemu.DefaultConfig(name)
	cfg.MemoryMB = 4
	return cfg
}

func TestNewHostRegistersEndpoint(t *testing.T) {
	h := newHost(t)
	if !h.Network().HasEndpoint("host") {
		t.Fatal("host endpoint missing")
	}
	if h.Name() != "host" || h.OS() == nil || h.KSM() == nil || h.Engine() == nil {
		t.Fatal("host accessors broken")
	}
	// Duplicate host name fails.
	if _, err := NewHost(h.Engine(), h.Network(), "host"); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestCreateAndLaunchVM(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	cfg := smallCfg("guest0")
	cfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: 2222, GuestPort: 22}}
	vm, err := hv.CreateVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vm.State() != qemu.StateCreated {
		t.Fatalf("state = %v", vm.State())
	}
	if vm.Level() != cpu.L1 {
		t.Fatalf("level = %v, want L1", vm.Level())
	}
	// Process visible, history recorded, endpoint present, fwd installed.
	procs := h.OS().FindByCommand("qemu-system")
	if len(procs) != 1 || procs[0].PID != vm.PID() {
		t.Fatalf("procs = %v", procs)
	}
	if len(h.OS().HistoryMatching("qemu-system")) != 1 {
		t.Fatal("history not recorded")
	}
	if !h.Network().HasEndpoint("guest0.nic") {
		t.Fatal("vm endpoint missing")
	}
	dst, _, err := h.Network().ResolveForward(vnet.Addr{Endpoint: "host", Port: 2222})
	if err != nil || dst != (vnet.Addr{Endpoint: "guest0.nic", Port: 22}) {
		t.Fatalf("forward resolve = %v, %v", dst, err)
	}
	if h.KSM().NumRegions() != 1 {
		t.Fatalf("ksm regions = %d", h.KSM().NumRegions())
	}
	if err := hv.Launch("guest0"); err != nil {
		t.Fatal(err)
	}
	if !vm.Running() {
		t.Fatalf("state after launch = %v", vm.State())
	}
	if h.Engine().Now() != h.BootTime {
		t.Fatalf("boot charged %v, want %v", h.Engine().Now(), h.BootTime)
	}
}

func TestCreateVMDuplicateName(t *testing.T) {
	h := newHost(t)
	if _, err := h.Hypervisor().CreateVM(smallCfg("g")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Hypervisor().CreateVM(smallCfg("g")); !errors.Is(err, ErrVMExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateVMConflictingHostPort(t *testing.T) {
	h := newHost(t)
	a := smallCfg("a")
	a.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: 2222, GuestPort: 22}}
	if _, err := h.Hypervisor().CreateVM(a); err != nil {
		t.Fatal(err)
	}
	b := smallCfg("b")
	b.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: 2222, GuestPort: 22}}
	if _, err := h.Hypervisor().CreateVM(b); err == nil {
		t.Fatal("conflicting host port accepted")
	}
	// Failed create must not leak the endpoint.
	if h.Network().HasEndpoint("b.nic") {
		t.Fatal("endpoint leaked from failed create")
	}
}

func TestLaunchUnknownVM(t *testing.T) {
	h := newHost(t)
	if err := h.Hypervisor().Launch("ghost"); !errors.Is(err, ErrNoSuchVM) {
		t.Fatalf("err = %v", err)
	}
}

func TestKillTearsEverythingDown(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	cfg := smallCfg("guest0")
	cfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: 2222, GuestPort: 22}}
	vm, err := hv.CreateVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := hv.Launch("guest0"); err != nil {
		t.Fatal(err)
	}
	pid := vm.PID()
	if err := hv.Kill("guest0"); err != nil {
		t.Fatal(err)
	}
	if vm.State() != qemu.StateShutOff {
		t.Fatalf("state = %v", vm.State())
	}
	if _, ok := h.OS().Process(pid); ok {
		t.Fatal("process survived kill")
	}
	if h.Network().HasEndpoint("guest0.nic") {
		t.Fatal("endpoint survived kill")
	}
	if _, _, err := h.Network().ResolveForward(vnet.Addr{Endpoint: "host", Port: 2222}); err != nil {
		t.Fatal(err)
	}
	if dst, _, _ := h.Network().ResolveForward(vnet.Addr{Endpoint: "host", Port: 2222}); dst != (vnet.Addr{Endpoint: "host", Port: 2222}) {
		t.Fatal("forward survived kill")
	}
	if h.KSM().NumRegions() != 0 {
		t.Fatal("ksm region survived kill")
	}
	if err := hv.Kill("guest0"); !errors.Is(err, ErrNoSuchVM) {
		t.Fatalf("double kill err = %v", err)
	}
}

func TestEnableNesting(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	if _, err := hv.CreateVM(smallCfg("guestX")); err != nil {
		t.Fatal(err)
	}
	// Not running yet.
	if _, err := hv.EnableNesting("guestX"); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("err = %v", err)
	}
	if err := hv.Launch("guestX"); err != nil {
		t.Fatal(err)
	}
	inner, err := hv.EnableNesting("guestX")
	if err != nil {
		t.Fatal(err)
	}
	if inner.RunLevel() != cpu.L1 || inner.GuestLevel() != cpu.L2 {
		t.Fatalf("levels = %v/%v", inner.RunLevel(), inner.GuestLevel())
	}
	if inner.InsideVM() == nil || inner.InsideVM().Name() != "guestX" {
		t.Fatal("insideVM wrong")
	}
	// Idempotent.
	again, err := hv.EnableNesting("guestX")
	if err != nil || again != inner {
		t.Fatalf("re-enable = %v, %v", again, err)
	}
	if got, ok := hv.Nested("guestX"); !ok || got != inner {
		t.Fatal("Nested lookup failed")
	}

	// Nested VM runs at L2, with forwards bound to guestX's endpoint.
	cfg := smallCfg("nested0")
	cfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: 4444, GuestPort: 4444}}
	nvm, err := inner.CreateVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nvm.Level() != cpu.L2 {
		t.Fatalf("nested level = %v", nvm.Level())
	}
	dst, _, err := h.Network().ResolveForward(vnet.Addr{Endpoint: "guestX.nic", Port: 4444})
	if err != nil || dst != (vnet.Addr{Endpoint: "guestX/nested0.nic", Port: 4444}) {
		t.Fatalf("nested fwd = %v, %v", dst, err)
	}
	// Nested RAM is physically on the host: KSM sees both.
	if h.KSM().NumRegions() != 2 {
		t.Fatalf("ksm regions = %d", h.KSM().NumRegions())
	}
	// The nested guest's process lives in guestX's OS, not the host's.
	if len(h.OS().FindByCommand("nested0")) != 0 {
		t.Fatal("nested process visible on host OS")
	}
	if len(inner.OS().FindByCommand("nested0")) != 1 {
		t.Fatal("nested process missing from guest OS")
	}
}

func TestEnableNestingRequiresKVM(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	cfg := smallCfg("noaccel")
	cfg.EnableKVM = false
	if _, err := hv.CreateVM(cfg); err != nil {
		t.Fatal(err)
	}
	if err := hv.Launch("noaccel"); err != nil {
		t.Fatal(err)
	}
	if _, err := hv.EnableNesting("noaccel"); !errors.Is(err, ErrNoKVM) {
		t.Fatalf("err = %v", err)
	}
	if _, err := hv.EnableNesting("ghost"); !errors.Is(err, ErrNoSuchVM) {
		t.Fatalf("err = %v", err)
	}
}

func TestNestingDepthLimit(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	if _, err := hv.CreateVM(smallCfg("l1")); err != nil {
		t.Fatal(err)
	}
	if err := hv.Launch("l1"); err != nil {
		t.Fatal(err)
	}
	inner, err := hv.EnableNesting("l1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inner.CreateVM(smallCfg("l2")); err != nil {
		t.Fatal(err)
	}
	if err := inner.Launch("l2"); err != nil {
		t.Fatal(err)
	}
	// L2 guests may host one more level (the deeper-nesting strategy)...
	inner2, err := inner.EnableNesting("l2")
	if err != nil {
		t.Fatal(err)
	}
	if got := inner2.GuestLevel(); got != cpu.L3 {
		t.Fatalf("inner2 guest level = %v, want L3", got)
	}
	if _, err := inner2.CreateVM(smallCfg("l3")); err != nil {
		t.Fatal(err)
	}
	if err := inner2.Launch("l3"); err != nil {
		t.Fatal(err)
	}
	// ...but the stack stops at L3.
	if _, err := inner2.EnableNesting("l3"); !errors.Is(err, ErrNestingDepth) {
		t.Fatalf("err = %v", err)
	}
}

func TestKillGuestDestroysNestedGuests(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	if _, err := hv.CreateVM(smallCfg("guestX")); err != nil {
		t.Fatal(err)
	}
	if err := hv.Launch("guestX"); err != nil {
		t.Fatal(err)
	}
	inner, err := hv.EnableNesting("guestX")
	if err != nil {
		t.Fatal(err)
	}
	nvm, err := inner.CreateVM(smallCfg("nested0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := inner.Launch("nested0"); err != nil {
		t.Fatal(err)
	}
	if err := hv.Kill("guestX"); err != nil {
		t.Fatal(err)
	}
	if nvm.State() != qemu.StateShutOff {
		t.Fatalf("nested state = %v", nvm.State())
	}
	if h.Network().HasEndpoint("guestX/nested0.nic") {
		t.Fatal("nested endpoint survived")
	}
	if h.KSM().NumRegions() != 0 {
		t.Fatalf("ksm regions = %d", h.KSM().NumRegions())
	}
}

type stubMigration struct {
	incoming map[vnet.Addr]*qemu.VM
	hosts    map[*qemu.VM]string
	migrated []string
}

func newStubMigration() *stubMigration {
	return &stubMigration{
		incoming: make(map[vnet.Addr]*qemu.VM),
		hosts:    make(map[*qemu.VM]string),
	}
}

func (s *stubMigration) RegisterVM(vm *qemu.VM, hostEndpoint string) {
	s.hosts[vm] = hostEndpoint
}

func (s *stubMigration) Migrate(vm *qemu.VM, uri string) error {
	s.migrated = append(s.migrated, vm.Name()+"->"+uri)
	return nil
}

func (s *stubMigration) RegisterIncoming(vm *qemu.VM, addr vnet.Addr) error {
	if _, dup := s.incoming[addr]; dup {
		return fmt.Errorf("dup %v", addr)
	}
	s.incoming[addr] = vm
	return nil
}

func (s *stubMigration) UnregisterIncoming(addr vnet.Addr) {
	delete(s.incoming, addr)
}

func TestMigrationServiceWiring(t *testing.T) {
	h := newHost(t)
	svc := newStubMigration()
	h.SetMigrationService(svc)
	hv := h.Hypervisor()

	cfg := smallCfg("dst")
	cfg.Incoming = "tcp:0.0.0.0:4444"
	vm, err := hv.CreateVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := vnet.Addr{Endpoint: "host", Port: 4444}
	if svc.incoming[want] != vm {
		t.Fatalf("incoming registry = %v", svc.incoming)
	}
	if svc.hosts[vm] != "host" {
		t.Fatalf("host endpoint registry = %v", svc.hosts)
	}
	if err := hv.Launch("dst"); err != nil {
		t.Fatal(err)
	}
	if vm.State() != qemu.StateIncoming {
		t.Fatalf("state = %v", vm.State())
	}
	// Monitor migrate dispatches into the service.
	src, err := hv.CreateVM(smallCfg("src"))
	if err != nil {
		t.Fatal(err)
	}
	if err := hv.Launch("src"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Monitor().Execute("migrate tcp:127.0.0.1:4444"); err != nil {
		t.Fatal(err)
	}
	if len(svc.migrated) != 1 || svc.migrated[0] != "src->tcp:127.0.0.1:4444" {
		t.Fatalf("migrated = %v", svc.migrated)
	}
	// Kill unregisters the incoming listener.
	if err := hv.Kill("dst"); err != nil {
		t.Fatal(err)
	}
	if len(svc.incoming) != 0 {
		t.Fatalf("incoming after kill = %v", svc.incoming)
	}
}

func TestHostfwdAddViaMonitor(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	vm, err := hv.CreateVM(smallCfg("g"))
	if err != nil {
		t.Fatal(err)
	}
	if err := hv.Launch("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Monitor().Execute("hostfwd_add tcp::2222-:22"); err != nil {
		t.Fatal(err)
	}
	dst, _, err := h.Network().ResolveForward(vnet.Addr{Endpoint: "host", Port: 2222})
	if err != nil || dst != (vnet.Addr{Endpoint: "g.nic", Port: 22}) {
		t.Fatalf("fwd = %v, %v", dst, err)
	}
	// Config view updated too.
	if got := vm.Config().NetDevs[0].HostFwds; len(got) != 1 || got[0] != (qemu.FwdRule{HostPort: 2222, GuestPort: 22}) {
		t.Fatalf("config fwds = %v", got)
	}
	if _, err := vm.Monitor().Execute("hostfwd_remove tcp::2222-:22"); err != nil {
		t.Fatal(err)
	}
	if dst, _, _ := h.Network().ResolveForward(vnet.Addr{Endpoint: "host", Port: 2222}); dst.Endpoint != "host" {
		t.Fatal("fwd survived removal")
	}
	if got := vm.Config().NetDevs[0].HostFwds; len(got) != 0 {
		t.Fatalf("config fwds after remove = %v", got)
	}
}

func TestOpenMonitorByPort(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	cfg := smallCfg("victim")
	cfg.MonitorPort = 5555
	if _, err := hv.CreateVM(cfg); err != nil {
		t.Fatal(err)
	}
	if err := hv.Launch("victim"); err != nil {
		t.Fatal(err)
	}
	conn, err := h.OpenMonitor(5555)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	r := bufio.NewReader(conn)
	// net.Pipe is synchronous: drain the greeting + prompt before writing.
	readTo := func(marker string) string {
		var b strings.Builder
		buf := make([]byte, 1)
		for !strings.HasSuffix(b.String(), marker) {
			if _, err := r.Read(buf); err != nil {
				t.Fatalf("read: %v (so far %q)", err, b.String())
			}
			b.Write(buf)
		}
		return b.String()
	}
	readTo("(qemu) ")
	fmt.Fprintf(conn, "info name\n")
	out := readTo("(qemu) ")
	if !strings.Contains(out, "victim") {
		t.Fatalf("monitor session did not answer info name: %q", out)
	}
	fmt.Fprintf(conn, "quit\n")
	if _, err := h.OpenMonitor(9999); !errors.Is(err, ErrNoMonitorPort) {
		t.Fatalf("err = %v", err)
	}
}

func TestVMsListing(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	for _, n := range []string{"a", "b", "c"} {
		if _, err := hv.CreateVM(smallCfg(n)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(hv.VMs()); got != 3 {
		t.Fatalf("VMs = %d", got)
	}
	if _, ok := hv.VM("b"); !ok {
		t.Fatal("VM lookup failed")
	}
	if _, ok := hv.VM("zzz"); ok {
		t.Fatal("phantom VM")
	}
}
