// Package kvm models the hypervisor layer: a physical Host running a
// bare-metal (L0) hypervisor, VM creation/launch/kill wired into the host
// OS process table, the virtual network and the KSM daemon, plus nested
// virtualization — turning a running guest into an L1 hypervisor that
// hosts L2 VMs, exactly the capability CloudSkulk abuses.
package kvm

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/hostos"
	"cloudskulk/internal/hv"
	"cloudskulk/internal/ksm"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
	"cloudskulk/internal/vnet"
)

// Errors callers match on.
var (
	ErrVMExists      = errors.New("kvm: vm already exists")
	ErrNoSuchVM      = errors.New("kvm: no such vm")
	ErrNotRunning    = errors.New("kvm: vm not running")
	ErrNoKVM         = errors.New("kvm: guest launched without -enable-kvm")
	ErrNestingDepth  = errors.New("kvm: nesting beyond L3 not supported")
	ErrNoMonitorPort = errors.New("kvm: no vm exposes that monitor port")
)

// MigrationService is what a live-migration engine must provide for the
// hypervisor to wire VMs up: the monitor's `migrate` dispatch plus a
// registry of `-incoming` listeners.
type MigrationService interface {
	qemu.Migrator
	// RegisterVM tells the engine which network endpoint hosts the VM's
	// QEMU process — the vantage point outbound migration connections
	// originate from (the physical host for L1 guests, the enclosing
	// VM's NIC for nested guests).
	RegisterVM(vm *qemu.VM, hostEndpoint string)
	// RegisterIncoming announces that vm listens for migration data at
	// addr on the virtual network.
	RegisterIncoming(vm *qemu.VM, addr vnet.Addr) error
	// UnregisterIncoming removes a listener (VM killed before any
	// migration arrived).
	UnregisterIncoming(addr vnet.Addr)
}

// Host is one physical machine: OS, network presence, KSM daemon, and the
// L0 hypervisor.
type Host struct {
	name string
	eng  *sim.Engine
	net  *vnet.Network
	os   *hostos.System
	ksmd *ksm.Daemon
	hv   *Hypervisor

	// BootTime is charged per VM launch (BIOS + kernel + userspace).
	BootTime time.Duration
	// ZeroFraction of a freshly booted guest's pages remain zero.
	ZeroFraction float64
	// Model is the CPU cost model all vCPUs on this machine share.
	Model cpu.Model

	backend   hv.Backend
	migration MigrationService
	tel       *telemetry.Registry
}

// NewHost builds a physical machine with the given name on the default
// backend (the paper's kvm-i7-4790 calibration), registering its network
// endpoint. The KSM daemon is created but not started; call
// Host.KSM().Start() to enable deduplication scanning.
func NewHost(eng *sim.Engine, network *vnet.Network, name string) (*Host, error) {
	return NewHostWithBackend(eng, network, name, hv.Baseline())
}

// NewHostWithBackend builds a physical machine running the given
// hypervisor backend: the backend's cost profile calibrates the host's
// CPU model, KSM write timing, boot time, boot-page zero fraction, and
// guest-vCPU measurement noise.
func NewHostWithBackend(eng *sim.Engine, network *vnet.Network, name string, backend hv.Backend) (*Host, error) {
	if err := network.AddEndpoint(name); err != nil {
		return nil, fmt.Errorf("kvm: new host: %w", err)
	}
	prof := backend.Profile
	h := &Host{
		name:         name,
		eng:          eng,
		net:          network,
		os:           hostos.New(eng, name),
		ksmd:         ksm.New(eng, ksm.DefaultConfig(), prof.KSM),
		BootTime:     prof.BootTime,
		ZeroFraction: prof.ZeroFraction,
		Model:        prof.CPU,
		backend:      backend,
	}
	h.hv = &Hypervisor{
		host:     h,
		os:       h.os,
		runLevel: cpu.L0,
		vms:      make(map[string]*qemu.VM),
		nested:   make(map[string]*Hypervisor),
		fwds:     make(map[string][]vnet.Addr),
	}
	return h, nil
}

// Name returns the host's name (also its network endpoint).
func (h *Host) Name() string { return h.name }

// Engine returns the simulation engine.
func (h *Host) Engine() *sim.Engine { return h.eng }

// Network returns the virtual network fabric.
func (h *Host) Network() *vnet.Network { return h.net }

// OS returns the host operating system view.
func (h *Host) OS() *hostos.System { return h.os }

// KSM returns the host's samepage-merging daemon.
func (h *Host) KSM() *ksm.Daemon { return h.ksmd }

// Hypervisor returns the bare-metal (L0) hypervisor.
func (h *Host) Hypervisor() *Hypervisor { return h.hv }

// Backend returns the hypervisor backend this machine runs.
func (h *Host) Backend() hv.Backend { return h.backend }

// SetMigrationService wires a live-migration engine into the host; VMs
// created afterwards get it as their monitor `migrate` backend.
func (h *Host) SetMigrationService(m MigrationService) { h.migration = m }

// SetTelemetry attaches a metrics registry to the host: the KSM daemon
// reports scan progress, every VM created afterwards carries the
// registry (its monitor serves query-stats, its vCPU counts exits), and
// the model's exit-reflection multiplier is published as a gauge. The
// gauge is world-constant per model, so sharing one registry across
// hosts or sweep cells stays deterministic.
func (h *Host) SetTelemetry(reg *telemetry.Registry) {
	h.tel = reg
	h.ksmd.SetTelemetry(reg)
	if reg != nil {
		reg.Gauge("kvm_exit_multiplier").Set(int64(h.Model.ExitMultiplier))
	}
}

// Telemetry returns the host's registry (nil when unset).
func (h *Host) Telemetry() *telemetry.Registry { return h.tel }

// OpenMonitor connects to the QEMU monitor a VM exposes on the given host
// telnet port, searching all virtualization levels — the attacker's
// `telnet 127.0.0.1 5555`. The returned conn speaks the HMP protocol.
func (h *Host) OpenMonitor(port int) (net.Conn, error) {
	vm := h.hv.findByPort(port, func(cfg qemu.Config) int { return cfg.MonitorPort })
	if vm == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoMonitorPort, port)
	}
	client, server := net.Pipe()
	//detlint:allow goroutine — monitor connection plumbing: Serve blocks on the interactive client's pipe; command dispatch itself stays synchronous per line
	go func() { _ = vm.Monitor().Serve(server) }()
	return client, nil
}

// OpenQMP connects to the JSON machine protocol a VM exposes on the given
// host TCP port. Each call is an independent session.
func (h *Host) OpenQMP(port int) (net.Conn, error) {
	vm := h.hv.findByPort(port, func(cfg qemu.Config) int { return cfg.QMPPort })
	if vm == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoMonitorPort, port)
	}
	client, server := net.Pipe()
	//detlint:allow goroutine — QMP connection plumbing, same shape as OpenMonitor above
	go func() { _ = vm.QMP().Serve(server) }()
	return client, nil
}

// Hypervisor hosts VMs at one virtualization level. The L0 instance lives
// on a Host; nested instances live inside a running guest.
type Hypervisor struct {
	host     *Host
	insideVM *qemu.VM // nil at L0
	os       *hostos.System
	runLevel cpu.Level
	vms      map[string]*qemu.VM

	// SoftwareMMU runs this hypervisor without VT-x (qemu tcg): slower,
	// but it keeps no VMCS structures in memory, which blinds
	// memory-forensic VMCS scanners. CloudSkulk's evasion knob.
	SoftwareMMU bool
	// nested maps guest name -> the hypervisor running inside it.
	nested map[string]*Hypervisor
	// fwds tracks the vnet forward sources installed per VM so Kill can
	// remove them.
	fwds map[string][]vnet.Addr
}

var (
	_ qemu.PortForwarder = (*Hypervisor)(nil)
	_ hv.Hypervisor      = (*Hypervisor)(nil)
)

// RunLevel returns the level this hypervisor's own code runs at (L0 on
// bare metal, L1 inside a guest).
func (hv *Hypervisor) RunLevel() cpu.Level { return hv.runLevel }

// GuestLevel returns the level guests of this hypervisor execute at.
func (hv *Hypervisor) GuestLevel() cpu.Level { return hv.runLevel + 1 }

// OS returns the operating system this hypervisor runs in (the host OS at
// L0, the guest OS of the enclosing VM when nested).
func (hv *Hypervisor) OS() *hostos.System { return hv.os }

// Host returns the physical machine this hypervisor ultimately runs on.
func (hv *Hypervisor) Host() *Host { return hv.host }

// InsideVM returns the VM this hypervisor runs inside, or nil at L0.
func (hv *Hypervisor) InsideVM() *qemu.VM { return hv.insideVM }

// hostEndpoint is the network endpoint host forwards bind to: the physical
// host at L0, the enclosing VM's NIC when nested.
func (hv *Hypervisor) hostEndpoint() string {
	if hv.insideVM != nil {
		return hv.insideVM.Endpoint()
	}
	return hv.host.name
}

// CreateVM defines a VM from cfg: allocates its RAM, registers its network
// endpoint, installs its configured host forwards, spawns its backing
// process in this hypervisor's OS, registers its RAM with the physical
// host's KSM daemon (all guest RAM — nested included — physically lives in
// some L0 process), and records the command in shell history. The VM is
// returned in StateCreated; call Launch to boot it.
func (hv *Hypervisor) CreateVM(cfg qemu.Config) (*qemu.VM, error) {
	if _, exists := hv.vms[cfg.Name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrVMExists, cfg.Name)
	}
	if cfg.MemTemplate != nil && cfg.MemTemplate.SizeBytes() != cfg.MemoryMB<<20 {
		return nil, fmt.Errorf("kvm: create vm %q: template %q holds %d MB, config wants %d MB",
			cfg.Name, cfg.MemTemplate.Name(), cfg.MemTemplate.SizeBytes()>>20, cfg.MemoryMB)
	}
	// Nested guests live in their host guest's network namespace, so
	// their endpoints are scoped by it. This is also what lets the
	// attacker give the nested VM the *same name* as the victim.
	endpoint := cfg.Name + ".nic"
	if hv.insideVM != nil {
		endpoint = hv.insideVM.Name() + "/" + endpoint
	}
	if err := hv.host.net.AddEndpoint(endpoint); err != nil {
		return nil, fmt.Errorf("kvm: create vm %q: %w", cfg.Name, err)
	}
	// The NIC's traffic is physically carried by whatever machine runs the
	// QEMU process, so cross-host links govern cross-host guest traffic.
	if err := hv.host.net.Attach(endpoint, hv.hostEndpoint()); err != nil {
		hv.host.net.RemoveEndpoint(endpoint)
		return nil, fmt.Errorf("kvm: create vm %q: %w", cfg.Name, err)
	}
	vm := qemu.NewVM(hv.host.eng, cfg, hv.host.Model, hv.GuestLevel(), endpoint)
	vm.VCPU().Noise = hv.host.backend.Profile.VCPUNoise
	if hv.host.tel != nil {
		vm.SetTelemetry(hv.host.tel)
		vm.VCPU().SetTelemetry(hv.host.tel)
		hv.host.tel.Counter("kvm_vms_created_total").Inc()
	}

	// Configured host forwards.
	for _, nd := range cfg.NetDevs {
		for _, rule := range nd.HostFwds {
			if err := hv.installFwd(vm, rule); err != nil {
				hv.host.net.RemoveEndpoint(endpoint)
				return nil, err
			}
		}
	}

	// Backing process in the hosting OS, visible to `ps -ef`.
	proc := hv.os.Spawn("root", cfg.CommandLine())
	proc.Annotations["vm"] = cfg.Name
	vm.SetPID(proc.PID)
	hv.os.AppendHistory(cfg.CommandLine())

	// Physical residence: register with the L0 host's KSM scanner.
	hv.host.ksmd.Register(vm.RAM())

	if hv.host.migration != nil {
		vm.SetMigrator(hv.host.migration)
		hv.host.migration.RegisterVM(vm, hv.hostEndpoint())
		if cfg.Incoming != "" {
			port, err := qemu.ParseIncomingPort(cfg.Incoming)
			if err != nil {
				return nil, err
			}
			// The QEMU process binds the port on whatever machine it
			// runs on: the physical host for L1 guests, the enclosing
			// VM for nested guests ("ROOTKIT PORT BBBB" in the paper).
			addr := vnet.Addr{Endpoint: hv.hostEndpoint(), Port: port}
			if err := hv.host.migration.RegisterIncoming(vm, addr); err != nil {
				return nil, err
			}
			if err := hv.host.net.Listen(addr, func(*vnet.Packet) {}); err != nil {
				return nil, fmt.Errorf("kvm: incoming listener: %w", err)
			}
		}
	}
	vm.SetPortForwarder(hv)

	hv.vms[cfg.Name] = vm
	return vm, nil
}

func (hv *Hypervisor) installFwd(vm *qemu.VM, rule qemu.FwdRule) error {
	from := vnet.Addr{Endpoint: hv.hostEndpoint(), Port: rule.HostPort}
	to := vnet.Addr{Endpoint: vm.Endpoint(), Port: rule.GuestPort}
	if _, hops, err := hv.host.net.ResolveForward(from); err != nil || len(hops) > 0 {
		if err == nil {
			err = fmt.Errorf("kvm: host port %d already forwarded", rule.HostPort)
		}
		return err
	}
	if err := hv.host.net.AddForward(from, to); err != nil {
		return err
	}
	hv.fwds[vm.Name()] = append(hv.fwds[vm.Name()], from)
	return nil
}

// AddHostFwd implements qemu.PortForwarder (the monitor's hostfwd_add).
func (hv *Hypervisor) AddHostFwd(vm *qemu.VM, rule qemu.FwdRule) error {
	return hv.installFwd(vm, rule)
}

// RemoveHostFwd implements qemu.PortForwarder.
func (hv *Hypervisor) RemoveHostFwd(vm *qemu.VM, rule qemu.FwdRule) error {
	from := vnet.Addr{Endpoint: hv.hostEndpoint(), Port: rule.HostPort}
	hv.host.net.RemoveForward(from)
	sources := hv.fwds[vm.Name()]
	for i, a := range sources {
		if a == from {
			hv.fwds[vm.Name()] = append(sources[:i], sources[i+1:]...)
			break
		}
	}
	return nil
}

// Launch boots a created VM, charging the host's boot time. When a nested
// hypervisor launches a guest with hardware assist, its VMCS becomes
// resident in the enclosing VM's RAM — the trace VMCS-scanning forensics
// look for.
func (hv *Hypervisor) Launch(name string) error {
	vm, ok := hv.vms[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchVM, name)
	}
	if err := vm.Boot(hv.host.BootTime, hv.host.eng.RNG(), hv.host.ZeroFraction); err != nil {
		return err
	}
	hv.host.tel.Counter(telemetry.Key("kvm_vms_launched_total", "level", hv.GuestLevel().String())).Inc()
	if hv.insideVM != nil && !hv.SoftwareMMU {
		rng := hv.host.eng.RNG()
		ram := hv.insideVM.RAM()
		page := rng.Intn(ram.NumPages())
		if _, err := ram.Write(page, mem.VMCSContent(rng.Uint32())); err != nil {
			return fmt.Errorf("kvm: place vmcs: %w", err)
		}
		// VMCS pages churn constantly; KSM skips them.
		if err := ram.MarkVolatile(page, true); err != nil {
			return fmt.Errorf("kvm: mark vmcs volatile: %w", err)
		}
	}
	return nil
}

// Reboot resets and re-boots a running guest. The backing QEMU process,
// its network identity, forwards, and — crucially for CloudSkulk — any
// hypervisor *around* it are untouched: a rootkit hosting this guest
// survives the guest's reboot (the paper's §VII-A contrast with
// SubVirt/BluePill).
func (hv *Hypervisor) Reboot(name string) error {
	vm, ok := hv.vms[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchVM, name)
	}
	if err := vm.Reset(); err != nil {
		return err
	}
	return hv.Launch(name)
}

// Kill terminates a VM and tears down everything CreateVM set up: process,
// endpoint, forwards, KSM registration, incoming listener. This is the
// "minor clean-up" step of the attack — and also how a migration source is
// destroyed afterwards.
func (hv *Hypervisor) Kill(name string) error {
	vm, ok := hv.vms[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchVM, name)
	}
	if vm.State() != qemu.StateShutOff {
		if err := vm.Shutdown(); err != nil {
			return err
		}
	}
	// Killing a guest that hosts a nested hypervisor destroys the nested
	// guests with it — their RAM lived inside this process.
	if inner, ok := hv.nested[name]; ok {
		for _, nestedVM := range inner.VMs() {
			if err := inner.Kill(nestedVM.Name()); err != nil {
				return fmt.Errorf("kvm: kill nested %q: %w", nestedVM.Name(), err)
			}
		}
		delete(hv.nested, name)
	}
	for _, from := range hv.fwds[name] {
		hv.host.net.RemoveForward(from)
	}
	delete(hv.fwds, name)
	if cfg := vm.Config(); cfg.Incoming != "" && hv.host.migration != nil {
		if port, err := qemu.ParseIncomingPort(cfg.Incoming); err == nil {
			addr := vnet.Addr{Endpoint: hv.hostEndpoint(), Port: port}
			hv.host.migration.UnregisterIncoming(addr)
			hv.host.net.Unlisten(addr)
		}
	}
	hv.host.tel.Counter("kvm_vms_killed_total").Inc()
	hv.host.ksmd.Unregister(vm.RAM())
	hv.host.net.RemoveEndpoint(vm.Endpoint())
	if vm.PID() != 0 {
		// The process may already have been re-labelled via SwapPID;
		// tolerate a missing PID.
		_ = hv.os.Kill(vm.PID())
	}
	delete(hv.vms, name)
	return nil
}

// VM looks a guest up by name.
func (hv *Hypervisor) VM(name string) (*qemu.VM, bool) {
	vm, ok := hv.vms[name]
	return vm, ok
}

// VMs returns all guests of this hypervisor, sorted by name so that
// callers iterating them (detection sweeps, remediation kills) touch
// guests in the same order every run.
func (hv *Hypervisor) VMs() []*qemu.VM {
	out := make([]*qemu.VM, 0, len(hv.vms))
	for _, vm := range hv.vms {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// EnableNesting turns a running guest into a nested hypervisor host: the
// returned Hypervisor creates VMs that run at the next level. The guest
// must be running and have KVM enabled (nested virtualization requires the
// kvm module inside the guest). Guests up to L3 are supported — the paper
// (and Linux of that era, practically) stopped at L2; the extra level is
// the deeper-nesting attacker strategy, paying compounded exit
// multiplication for the extra indirection.
func (hv *Hypervisor) EnableNesting(name string) (*Hypervisor, error) {
	vm, ok := hv.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchVM, name)
	}
	if !vm.Running() {
		return nil, fmt.Errorf("%w: %q is %v", ErrNotRunning, name, vm.State())
	}
	if !vm.Config().EnableKVM {
		return nil, fmt.Errorf("%w: %q", ErrNoKVM, name)
	}
	if hv.GuestLevel() >= cpu.L3 {
		return nil, fmt.Errorf("%w: guest of %v", ErrNestingDepth, hv.GuestLevel())
	}
	if inner, ok := hv.nested[name]; ok {
		return inner, nil
	}
	inner := &Hypervisor{
		host:     hv.host,
		insideVM: vm,
		os:       hostos.New(hv.host.eng, name),
		runLevel: hv.GuestLevel(),
		vms:      make(map[string]*qemu.VM),
		nested:   make(map[string]*Hypervisor),
		fwds:     make(map[string][]vnet.Addr),
	}
	hv.nested[name] = inner
	hv.host.tel.Counter("kvm_nesting_enabled_total").Inc()
	return inner, nil
}

// Nested returns the hypervisor running inside the named guest, if any.
func (hv *Hypervisor) Nested(name string) (*Hypervisor, bool) {
	inner, ok := hv.nested[name]
	return inner, ok
}

// FindByEndpoint searches this hypervisor's guests and their nested
// guests for the VM owning a network endpoint — how an operator maps "the
// machine answering on this port" back to a VM, forwarding chains and all.
func (hv *Hypervisor) FindByEndpoint(endpoint string) (*qemu.VM, bool) {
	for name, vm := range hv.vms {
		if vm.Endpoint() == endpoint {
			return vm, true
		}
		if inner, ok := hv.nested[name]; ok {
			if found, ok := inner.FindByEndpoint(endpoint); ok {
				return found, true
			}
		}
	}
	return nil, false
}

// findByPort searches this hypervisor's guests and their nested guests for
// a VM whose config exposes the given port under the selector.
func (hv *Hypervisor) findByPort(port int, sel func(qemu.Config) int) *qemu.VM {
	if port == 0 {
		return nil
	}
	for name, vm := range hv.vms {
		if sel(vm.Config()) == port {
			return vm
		}
		if inner, ok := hv.nested[name]; ok {
			if found := inner.findByPort(port, sel); found != nil {
				return found
			}
		}
	}
	return nil
}
