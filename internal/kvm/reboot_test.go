package kvm

import (
	"errors"
	"testing"

	"cloudskulk/internal/qemu"
)

func TestRebootRestoresRunningGuest(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	if _, err := hv.CreateVM(smallCfg("g")); err != nil {
		t.Fatal(err)
	}
	if err := hv.Launch("g"); err != nil {
		t.Fatal(err)
	}
	vm, _ := hv.VM("g")
	if _, err := vm.RAM().Write(5, 0xfeed); err != nil {
		t.Fatal(err)
	}
	before := h.Engine().Now()
	if err := hv.Reboot("g"); err != nil {
		t.Fatal(err)
	}
	if !vm.Running() {
		t.Fatalf("state = %v", vm.State())
	}
	// Reboot costs a boot time and wipes the old contents.
	if h.Engine().Now()-before != h.BootTime {
		t.Fatalf("reboot took %v", h.Engine().Now()-before)
	}
	if c := vm.RAM().MustRead(5); c == 0xfeed {
		t.Fatal("pre-reboot memory survived")
	}
	// Same process, same endpoint.
	if _, ok := h.OS().Process(vm.PID()); !ok {
		t.Fatal("qemu process lost across guest reboot")
	}
	if !h.Network().HasEndpoint("g.nic") {
		t.Fatal("endpoint lost across reboot")
	}
}

func TestRebootErrors(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	if err := hv.Reboot("ghost"); !errors.Is(err, ErrNoSuchVM) {
		t.Fatalf("err = %v", err)
	}
	if _, err := hv.CreateVM(smallCfg("g")); err != nil {
		t.Fatal(err)
	}
	// Created (never booted) cannot reboot.
	if err := hv.Reboot("g"); !errors.Is(err, qemu.ErrBadState) {
		t.Fatalf("err = %v", err)
	}
}

func TestRebootDetachesKSMSharing(t *testing.T) {
	h := newHost(t)
	hv := h.Hypervisor()
	for _, n := range []string{"a", "b"} {
		if _, err := hv.CreateVM(smallCfg(n)); err != nil {
			t.Fatal(err)
		}
		if err := hv.Launch(n); err != nil {
			t.Fatal(err)
		}
	}
	va, _ := hv.VM("a")
	vb, _ := hv.VM("b")
	if _, err := va.RAM().Write(0, 0x77); err != nil {
		t.Fatal(err)
	}
	if _, err := vb.RAM().Write(0, 0x77); err != nil {
		t.Fatal(err)
	}
	h.KSM().FullPass()
	h.KSM().FullPass()
	g, shared := va.RAM().Shared(0)
	if !shared || g.Refs != 2 {
		t.Fatalf("merge precondition failed: %v %v", shared, g)
	}
	if err := hv.Reboot("a"); err != nil {
		t.Fatal(err)
	}
	if g.Refs != 1 {
		t.Fatalf("refs after reboot = %d, want 1", g.Refs)
	}
	if _, shared := va.RAM().Shared(0); shared {
		t.Fatal("rebooted RAM still shared")
	}
}
