package ksm

import (
	"testing"

	"cloudskulk/internal/mem"
)

// TestFirstVisitNotGated: freshly registered regions (the detection
// protocol's probe spaces) merge on the usual two-pass schedule — the
// checksum gate never fires on a page's first visit.
func TestFirstVisitNotGated(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize*2)
	b := mem.NewSpace("b", mem.PageSize*2)
	mustWrite(t, a, 0, 0x7777)
	mustWrite(t, b, 0, 0x7777)
	d.Register(a)
	d.Register(b)
	if got := d.FullPass(); got == 0 {
		t.Fatal("first pass over fresh regions merged nothing")
	}
	if _, shared := a.Shared(0); !shared {
		t.Fatal("a[0] not merged on the fresh-region schedule")
	}
	if d.ChecksumSkips() != 0 {
		t.Fatalf("checksum gate fired %d times on first visits", d.ChecksumSkips())
	}
}

// TestSingleChangeNotGated: a page that changed once since its previous
// visit still enters the unstable tree on that same visit — one-shot
// writes (migration fills, the detector's file pushes) merge on the exact
// schedule the ungated scanner had.
func TestSingleChangeNotGated(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize)
	b := mem.NewSpace("b", mem.PageSize)
	mustWrite(t, a, 0, 0x7777)
	mustWrite(t, b, 0, 0x2)
	d.Register(a)
	d.Register(b)
	d.FullPass() // a[0] becomes the 0x7777 candidate; checksums recorded

	mustWrite(t, b, 0, 0x7777)
	if merged := d.FullPass(); merged == 0 {
		t.Fatal("once-changed page did not merge on its next visit")
	}
	if _, shared := b.Shared(0); !shared {
		t.Fatal("b[0] not merged")
	}
	if d.ChecksumSkips() != 0 {
		t.Fatalf("ChecksumSkips = %d, want 0 for a single change", d.ChecksumSkips())
	}
}

// TestSustainedChurnGated: pages whose content changed on two consecutive
// visits are kept out of the unstable tree until they hold still for a
// full cycle — ksmd's oldchecksum heuristic applied to sustained churn.
func TestSustainedChurnGated(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize)
	b := mem.NewSpace("b", mem.PageSize)
	mustWrite(t, a, 0, 0x1)
	mustWrite(t, b, 0, 0x2)
	d.Register(a)
	d.Register(b)
	d.FullPass() // checksums recorded

	mustWrite(t, a, 0, 0x10)
	mustWrite(t, b, 0, 0x20)
	d.FullPass() // first change: strike recorded, still inserted

	// Second consecutive change — both land on the same content, but the
	// gate holds them out of the tree this visit.
	mustWrite(t, a, 0, 0xABCD)
	mustWrite(t, b, 0, 0xABCD)
	if merged := d.FullPass(); merged != 0 {
		t.Fatalf("churning pages merged on the gated pass (merged=%d)", merged)
	}
	if d.ChecksumSkips() != 2 {
		t.Fatalf("ChecksumSkips = %d after gated pass, want 2", d.ChecksumSkips())
	}
	if merged := d.FullPass(); merged == 0 {
		t.Fatal("pages that held still for a full cycle did not merge")
	}
	if _, shared := a.Shared(0); !shared {
		t.Fatal("a[0] not merged after settling")
	}
}

// TestStableTreeNotGated: joining an existing stable group happens even on
// the visit right after the page changed — ksmd checks the stable tree
// before the checksum heuristic.
func TestStableTreeNotGated(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize*2)
	late := mem.NewSpace("late", mem.PageSize)
	mustWrite(t, a, 0, 0x5555)
	mustWrite(t, a, 1, 0x5555)
	mustWrite(t, late, 0, 0x1)
	d.Register(a)
	d.Register(late)
	d.FullPass()
	d.FullPass()
	if _, shared := a.Shared(1); !shared {
		t.Fatal("setup: stable group not formed")
	}
	// late[0] churns (one change already on record) and then takes on the
	// stable content. The volatility gate would hold it out of the
	// unstable tree — but the stable lookup happens first, so it attaches
	// on this very visit.
	mustWrite(t, late, 0, 0x2)
	d.FullPass()
	mustWrite(t, late, 0, 0x5555)
	d.FullPass()
	if _, shared := late.Shared(0); !shared {
		t.Fatal("changed page did not join the stable tree (stable lookup must not be gated)")
	}
	if d.ChecksumSkips() != 0 {
		t.Fatalf("ChecksumSkips = %d; stable-tree attach must pre-empt the gate", d.ChecksumSkips())
	}
}

// TestSteadyScanWakeZeroAlloc: a scan wake over settled regions — every
// page either merged or its own unchanged candidate — allocates nothing.
func TestSteadyScanWakeZeroAlloc(t *testing.T) {
	_, d := newDaemon(t)
	s := mem.NewSpace("g", 256*mem.PageSize)
	for p := 0; p < 256; p++ {
		// Half unique pages, half mergeable duplicates.
		c := mem.Content(0x1000 + p)
		if p%2 == 0 {
			c = 0x42
		}
		mustWrite(t, s, p, c)
	}
	d.Register(s)
	d.FullPass()
	d.FullPass() // settle: merges done, candidates recorded
	allocs := testing.AllocsPerRun(100, func() {
		d.ScanN(256)
	})
	if allocs != 0 {
		t.Fatalf("steady-state scan wake allocates %v objects/op, want 0", allocs)
	}
}

// TestChurnStreakGatedUntilStill: a page rewritten before every pass trips
// the gate from its second consecutive change onward; once it holds still
// for one pass the streak resets and it is re-admitted.
func TestChurnStreakGatedUntilStill(t *testing.T) {
	_, d := newDaemon(t)
	s := mem.NewSpace("g", mem.PageSize)
	mustWrite(t, s, 0, 0x1)
	d.Register(s)
	d.FullPass()
	for i := 0; i < 5; i++ {
		mustWrite(t, s, 0, mem.Content(0x100+i))
		d.FullPass()
	}
	// The first change (0x100) inserted on the legacy schedule; the four
	// after it were consecutive changes and got gated.
	if d.ChecksumSkips() != 4 {
		t.Fatalf("ChecksumSkips = %d, want 4", d.ChecksumSkips())
	}
	for i := 1; i < 5; i++ {
		if _, ok := d.candidate[mem.Content(0x100+i)]; ok {
			t.Fatalf("churned content %#x entered the unstable tree", 0x100+i)
		}
	}
	// One quiet pass resets the streak and admits the settled content.
	d.FullPass()
	if _, ok := d.candidate[mem.Content(0x104)]; !ok {
		t.Fatal("settled page was not re-admitted to the unstable tree")
	}
}
