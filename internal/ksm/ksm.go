// Package ksm implements the kernel samepage merging daemon the detection
// approach builds on.
//
// The model follows Linux's ksmd: registered memory regions are scanned a
// fixed number of pages per wakeup; a page whose content matches an
// already-merged (stable) page joins its shared group; two not-yet-merged
// pages with equal content get merged into a new group. Writes to merged
// pages break copy-on-write (handled in the mem package) and cost far more
// than regular writes — the timing signal the CloudSkulk detector measures.
package ksm

import (
	"time"

	"cloudskulk/internal/mem"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
)

// Config mirrors ksmd's sysfs tunables.
type Config struct {
	// ScanInterval is the daemon's wake period (sleep_millisecs).
	ScanInterval time.Duration
	// PagesPerScan is how many pages each wake examines (pages_to_scan).
	PagesPerScan int
}

// DefaultConfig matches a tuned-for-dedup host (cloud hosts running KSM
// typically raise pages_to_scan well above the kernel default of 100).
func DefaultConfig() Config {
	return Config{
		ScanInterval: 20 * time.Millisecond,
		PagesPerScan: 5000,
	}
}

// CostModel gives the write-latency consequences of deduplication, used by
// everything that measures page-write timing (the detection protocol).
type CostModel struct {
	// RegularWrite is a write to an exclusive page.
	RegularWrite time.Duration
	// CowBreakWrite is a write that must first break a merged page:
	// fault, allocate, copy 4 KiB, fix mappings, TLB shootdown.
	CowBreakWrite time.Duration
}

// DefaultCostModel is calibrated to the gap prior memory-dedup side-channel
// work measured (the paper cites Xiao et al. and Suzuki et al.: an order of
// magnitude or more).
func DefaultCostModel() CostModel {
	return CostModel{
		RegularWrite:  900 * time.Nanosecond,
		CowBreakWrite: 28 * time.Microsecond,
	}
}

// WriteCost returns the time one write took, given what it did.
func (c CostModel) WriteCost(res mem.WriteResult) time.Duration {
	if res.CowBroken {
		return c.CowBreakWrite
	}
	return c.RegularWrite
}

// Per-page scan flags, ksmd's oldchecksum bookkeeping in miniature.
const (
	// flagHasSum marks that sums[page] holds the content seen at the
	// page's last scan; a first visit is always processed in full.
	flagHasSum uint8 = 1 << 0
	// flagSelfCand marks that this page is its own entry in the unstable
	// tree. While it stays unchanged and unshared, re-examining it is a
	// provable no-op, so the scan skips the tree lookups entirely.
	flagSelfCand uint8 = 1 << 1
	// flagChanged marks that the page's content had changed at its
	// previous visit; a second consecutive change trips the volatility
	// gate.
	flagChanged uint8 = 1 << 2
)

type region struct {
	space *mem.Space
	next  int // scan cursor within the region

	// sums[i] is page i's content at its previous scan visit — the
	// model's stand-in for ksmd's per-rmap_item checksum. Allocated
	// lazily on the first scan visit, so registering a space — which
	// kvm does for every guest at CreateVM — stays O(1): a fleet of
	// 100k template-forked guests costs nothing here until ksmd
	// actually walks their pages.
	sums  []mem.Content
	flags []uint8
}

// ensure allocates the per-page scan bookkeeping on first use.
func (r *region) ensure() {
	if r.sums == nil {
		r.sums = make([]mem.Content, r.space.NumPages())
		r.flags = make([]uint8, r.space.NumPages())
	}
}

// Daemon is the samepage-merging scanner.
type Daemon struct {
	eng    *sim.Engine
	cfg    Config
	costs  CostModel
	ticker *sim.Ticker

	regions []*region
	cursor  int // index into regions of the region being scanned

	// stable maps page content to its shared group — the stable tree.
	stable map[mem.Content]*mem.SharedGroup
	// candidate holds the first-seen location of an unmerged content —
	// the unstable tree. A second page with the same content triggers a
	// merge.
	candidate map[mem.Content]candidateRef

	merges        uint64
	pagesScan     uint64
	checksumSkips uint64

	telScanned *telemetry.Counter
	telMerges  *telemetry.Counter
	telGap     *telemetry.Histogram
	lastWake   time.Duration
	hasWake    bool
}

type candidateRef struct {
	space *mem.Space
	page  int
}

// New returns a stopped daemon with the given config and cost model.
func New(eng *sim.Engine, cfg Config, costs CostModel) *Daemon {
	if cfg.PagesPerScan <= 0 {
		cfg.PagesPerScan = DefaultConfig().PagesPerScan
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = DefaultConfig().ScanInterval
	}
	return &Daemon{
		eng:       eng,
		cfg:       cfg,
		costs:     costs,
		stable:    make(map[mem.Content]*mem.SharedGroup),
		candidate: make(map[mem.Content]candidateRef),
	}
}

// SetTelemetry attaches (or with nil detaches) a metrics registry:
// pages scanned and merges become counters, and the virtual-time gap
// between scan wakeups feeds the pass-duration histogram (ScanN itself
// advances no time; the ticker cadence is the observable pass timing).
func (d *Daemon) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		d.telScanned, d.telMerges, d.telGap = nil, nil, nil
		return
	}
	d.telScanned = reg.Counter("ksm_pages_scanned_total")
	d.telMerges = reg.Counter("ksm_merges_total")
	d.telGap = reg.Histogram("ksm_scan_gap_us", telemetry.DurationBuckets)
}

// Costs returns the daemon's write cost model.
func (d *Daemon) Costs() CostModel { return d.costs }

// Config returns the daemon's tunables.
func (d *Daemon) Config() Config { return d.cfg }

// Register adds a space to the scan set — the moral equivalent of
// madvise(MADV_MERGEABLE) over a QEMU process's guest RAM. Registering the
// same space twice is a no-op.
func (d *Daemon) Register(s *mem.Space) {
	for _, r := range d.regions {
		if r.space == s {
			return
		}
	}
	d.regions = append(d.regions, &region{space: s})
}

// Unregister removes a space from the scan set (the space's pages keep any
// sharing they already have until written) and forgets any unstable-tree
// candidates pointing into it — an unregistered region's pages are going
// away (process exit, VM kill) and must not seed future merges.
func (d *Daemon) Unregister(s *mem.Space) {
	for c, ref := range d.candidate {
		if ref.space == s {
			delete(d.candidate, c)
		}
	}
	for i, r := range d.regions {
		if r.space == s {
			d.regions = append(d.regions[:i], d.regions[i+1:]...)
			if d.cursor >= len(d.regions) {
				d.cursor = 0
			}
			return
		}
	}
}

// NumRegions returns how many spaces are registered.
func (d *Daemon) NumRegions() int { return len(d.regions) }

// Start begins periodic scanning on the engine. Starting twice is a no-op.
func (d *Daemon) Start() {
	if d.ticker != nil && !d.ticker.Stopped() {
		return
	}
	d.hasWake = false
	d.ticker = sim.NewTicker(d.eng, d.cfg.ScanInterval, "ksmd.scan", func() {
		now := d.eng.Now()
		if d.hasWake {
			d.telGap.Observe((now - d.lastWake).Microseconds())
		}
		d.lastWake, d.hasWake = now, true
		d.ScanN(d.cfg.PagesPerScan)
	})
}

// Stop halts periodic scanning.
func (d *Daemon) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
	}
}

// Running reports whether the daemon is actively scanning.
func (d *Daemon) Running() bool {
	return d.ticker != nil && !d.ticker.Stopped()
}

// ScanN examines up to n pages, advancing round-robin across regions, and
// merges what it finds. It returns how many merges happened.
//
// The loop is batched region-by-region: instead of re-discovering the
// cursor position per page, it runs straight through the current region's
// raw page storage until the region is exhausted or the budget spent. Page
// visit order — and therefore every merge decision — is identical to the
// one-page-at-a-time loop it replaced.
func (d *Daemon) ScanN(n int) int {
	if len(d.regions) == 0 {
		return 0
	}
	merged := 0
	for left := n; left > 0; {
		r := d.regions[d.cursor]
		if r.next >= r.space.NumPages() {
			// Current region exhausted: reset its cursor and take the
			// next region with pages. A full lap finding nothing means
			// every region is empty — the old loop burned its remaining
			// budget discovering that; stopping here is observably the
			// same (no pages scanned, cursor back where it started).
			r.next = 0
			d.cursor = (d.cursor + 1) % len(d.regions)
			for lap := 1; lap < len(d.regions); lap++ {
				nr := d.regions[d.cursor]
				if nr.next < nr.space.NumPages() {
					break
				}
				nr.next = 0
				d.cursor = (d.cursor + 1) % len(d.regions)
			}
			r = d.regions[d.cursor]
			if r.next >= r.space.NumPages() {
				return merged
			}
		}
		end := r.next + left
		if np := r.space.NumPages(); end > np {
			end = np
		}
		for page := r.next; page < end; page++ {
			if d.examine(r, page) {
				merged++
			}
		}
		d.pagesScan += uint64(end - r.next)
		left -= end - r.next
		r.next = end
	}
	return merged
}

// FullPass scans every registered page exactly once (two consecutive full
// passes guarantee every mergeable pair has met the candidate table).
func (d *Daemon) FullPass() int {
	total := 0
	for _, r := range d.regions {
		total += r.space.NumPages()
	}
	return d.ScanN(total)
}

// regionOf finds the region backing a space. Only cold paths (rare merge
// bookkeeping) use it; the scan loop itself never searches.
func (d *Daemon) regionOf(s *mem.Space) *region {
	for _, r := range d.regions {
		if r.space == s {
			return r
		}
	}
	return nil
}

// clearSelfCand drops a page's self-candidate mark once it stops being the
// unstable tree's entry for its content (merged, or entry deleted).
func (d *Daemon) clearSelfCand(s *mem.Space, page int) {
	if r := d.regionOf(s); r != nil && page < len(r.flags) {
		r.flags[page] &^= flagSelfCand
	}
}

// examine applies the merge rules to one page. Returns true if a merge
// (attach) happened.
//
// Like ksmd, the stable tree is consulted unconditionally, but the
// unstable tree is checksum-gated: a page whose content changed on two
// consecutive visits only has its checksum refreshed — it is not inserted
// as a merge candidate until it holds still for a full scan cycle. A
// single change (a migration fill, the detector's file push) still
// inserts immediately, so one-shot writes keep the exact merge timing the
// ungated scanner had; only sustained churn is kept out of the tree.
// Pages that are already their own candidate and unchanged skip the tree
// lookups outright (nothing about their entry can have changed without a
// merge or a write, both of which clear the mark).
func (d *Daemon) examine(r *region, page int) bool {
	r.ensure()
	s := r.space
	content, shared, volatile := s.PageInfo(page)
	if volatile {
		return false
	}
	if shared {
		return false // already merged
	}

	// Stable tree hit: join the existing group.
	if g, ok := d.stable[content]; ok {
		if g.Refs == 0 || g.Content != content {
			// Group died (all members wrote) — drop the stale entry
			// and fall through to candidate handling.
			delete(d.stable, content)
		} else {
			if err := s.AttachShared(page, g); err != nil {
				return false
			}
			r.flags[page] &^= flagSelfCand
			d.merges++
			return true
		}
	}

	// Checksum gate (ksmd's oldchecksum heuristic): pages churning across
	// consecutive visits stay out of the unstable tree.
	switch {
	case r.flags[page]&flagHasSum == 0:
		// First visit: record and proceed, so freshly registered regions
		// (the detector's probe spaces) behave exactly as before.
		r.sums[page] = content
		r.flags[page] |= flagHasSum
	case r.sums[page] != content:
		r.sums[page] = content
		r.flags[page] &^= flagSelfCand
		if r.flags[page]&flagChanged != 0 {
			// Changed last visit too: sustained churn — skip.
			d.checksumSkips++
			return false
		}
		r.flags[page] |= flagChanged
	case r.flags[page]&flagSelfCand != 0:
		// Unchanged, unshared, and already our own candidate: the entry
		// cannot have been replaced (replacement requires the holder's
		// content to have changed) nor consumed (a merge would have
		// attached this page). Nothing to do.
		r.flags[page] &^= flagChanged
		return false
	default:
		r.flags[page] &^= flagChanged
	}

	// Unstable tree: look for a waiting partner.
	if cand, ok := d.candidate[content]; ok {
		if cand.space == s && cand.page == page {
			r.flags[page] |= flagSelfCand
			return false
		}
		// The partner must still hold the same content (it may have
		// been written since we recorded it).
		if pc, err := cand.space.Read(cand.page); err != nil || pc != content {
			d.candidate[content] = candidateRef{space: s, page: page}
			r.flags[page] |= flagSelfCand
			return false
		}
		if _, partnerShared := cand.space.Shared(cand.page); partnerShared {
			// Partner got merged through another route; retry via
			// stable tree next scan.
			delete(d.candidate, content)
			d.clearSelfCand(cand.space, cand.page)
			return false
		}
		g := &mem.SharedGroup{Content: content}
		if err := cand.space.AttachShared(cand.page, g); err != nil {
			return false
		}
		if err := s.AttachShared(page, g); err != nil {
			return false
		}
		d.stable[content] = g
		delete(d.candidate, content)
		d.clearSelfCand(cand.space, cand.page)
		r.flags[page] &^= flagSelfCand
		d.merges++
		d.telMerges.Inc()
		return true
	}

	d.candidate[content] = candidateRef{space: s, page: page}
	r.flags[page] |= flagSelfCand
	return false
}

// Merges returns the lifetime count of successful merges (attaches).
func (d *Daemon) Merges() uint64 { return d.merges }

// PagesScanned returns the lifetime count of pages examined.
func (d *Daemon) PagesScanned() uint64 { return d.pagesScan }

// ChecksumSkips returns how many page visits the volatility gate cut
// short: pages whose content changed on two consecutive scans and were
// therefore kept out of the unstable tree for that visit.
func (d *Daemon) ChecksumSkips() uint64 { return d.checksumSkips }

// GatedPages reports how many pages of the given registered space are
// currently marked as having changed at their previous scan visit — the
// population the volatility gate holds out of (or is about to hold out of)
// the unstable tree. An attacker churning shared-candidate pages to dodge
// dedup shows up here: evasion evidence the coverage matrix renders.
// Returns 0 for an unregistered space.
func (d *Daemon) GatedPages(s *mem.Space) int {
	r := d.regionOf(s)
	if r == nil {
		return 0
	}
	n := 0
	for _, f := range r.flags {
		if f&flagChanged != 0 {
			n++
		}
	}
	return n
}

// SharedGroups returns the number of live (ref > 0) stable groups.
func (d *Daemon) SharedGroups() int {
	n := 0
	for _, g := range d.stable {
		if g.Refs > 0 {
			n++
		}
	}
	return n
}
