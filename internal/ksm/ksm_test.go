package ksm

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cloudskulk/internal/mem"
	"cloudskulk/internal/sim"
)

func newDaemon(t *testing.T) (*sim.Engine, *Daemon) {
	t.Helper()
	eng := sim.NewEngine(1)
	return eng, New(eng, DefaultConfig(), DefaultCostModel())
}

func mustWrite(t *testing.T, s *mem.Space, p int, c mem.Content) {
	t.Helper()
	if _, err := s.Write(p, c); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, Config{}, DefaultCostModel())
	if d.Config().PagesPerScan <= 0 || d.Config().ScanInterval <= 0 {
		t.Fatalf("defaults not applied: %+v", d.Config())
	}
}

func TestMergeTwoIdenticalPages(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize*4)
	b := mem.NewSpace("b", mem.PageSize*4)
	mustWrite(t, a, 0, 0x1111)
	mustWrite(t, b, 2, 0x1111)
	d.Register(a)
	d.Register(b)
	// One full pass records candidates and merges pairs that meet.
	d.FullPass()
	d.FullPass()
	if _, shared := a.Shared(0); !shared {
		t.Fatal("a[0] not merged")
	}
	if _, shared := b.Shared(2); !shared {
		t.Fatal("b[2] not merged")
	}
	ga, _ := a.Shared(0)
	gb, _ := b.Shared(2)
	if ga != gb {
		t.Fatal("pages merged into different groups")
	}
	if ga.Refs != 2 {
		t.Fatalf("refs = %d", ga.Refs)
	}
	// At least the two 0x1111 attaches; the remaining zero pages of both
	// spaces also merge with each other, which is realistic KSM behaviour.
	if d.Merges() < 2 {
		t.Fatalf("merges = %d, want >= 2 attaches", d.Merges())
	}
}

func TestThirdPageJoinsStableGroup(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize*3)
	for p := 0; p < 3; p++ {
		mustWrite(t, a, p, 0xbeef)
	}
	d.Register(a)
	d.FullPass()
	d.FullPass()
	g, shared := a.Shared(2)
	if !shared {
		t.Fatal("third page not merged")
	}
	if g.Refs != 3 {
		t.Fatalf("refs = %d, want 3", g.Refs)
	}
	if d.SharedGroups() != 1 {
		t.Fatalf("groups = %d", d.SharedGroups())
	}
}

func TestDistinctContentNeverMerges(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize*8)
	for p := 0; p < 8; p++ {
		mustWrite(t, a, p, mem.Content(0x100+p))
	}
	d.Register(a)
	d.FullPass()
	d.FullPass()
	if d.Merges() != 0 {
		t.Fatalf("merges = %d, want 0", d.Merges())
	}
	for p := 0; p < 8; p++ {
		if _, shared := a.Shared(p); shared {
			t.Fatalf("page %d merged despite unique content", p)
		}
	}
}

func TestVolatilePagesSkipped(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize*2)
	mustWrite(t, a, 0, 0x7)
	mustWrite(t, a, 1, 0x7)
	if err := a.MarkVolatile(0, true); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkVolatile(1, true); err != nil {
		t.Fatal(err)
	}
	d.Register(a)
	d.FullPass()
	d.FullPass()
	if d.Merges() != 0 {
		t.Fatal("volatile pages merged")
	}
}

func TestWriteAfterMergeBreaksCOWAndRemerges(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize)
	b := mem.NewSpace("b", mem.PageSize)
	mustWrite(t, a, 0, 0x42)
	mustWrite(t, b, 0, 0x42)
	d.Register(a)
	d.Register(b)
	d.FullPass()
	d.FullPass()
	if _, shared := a.Shared(0); !shared {
		t.Fatal("not merged")
	}
	res, err := a.Write(0, 0x42) // same content, still COW-breaks
	if err != nil {
		t.Fatal(err)
	}
	if !res.CowBroken {
		t.Fatal("write did not break COW")
	}
	if _, shared := a.Shared(0); shared {
		t.Fatal("still shared after write")
	}
	// b keeps the group; a re-merges on later scans via the stable tree.
	d.FullPass()
	d.FullPass()
	if _, shared := a.Shared(0); !shared {
		t.Fatal("page did not re-merge")
	}
}

func TestStaleCandidatePartnerChanged(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize)
	b := mem.NewSpace("b", mem.PageSize)
	mustWrite(t, a, 0, 0x5)
	d.Register(a)
	d.Register(b)
	// First pass records a[0] as candidate for 0x5 (b[0] is zero and
	// becomes candidate for zero).
	d.FullPass()
	// Now a's page changes before a partner shows up.
	mustWrite(t, a, 0, 0x6)
	mustWrite(t, b, 0, 0x5)
	d.FullPass()
	d.FullPass()
	if _, shared := b.Shared(0); shared {
		t.Fatal("merged with stale candidate")
	}
}

func TestScanNWithNoRegions(t *testing.T) {
	_, d := newDaemon(t)
	if got := d.ScanN(100); got != 0 {
		t.Fatalf("ScanN on empty = %d", got)
	}
}

func TestRegisterIdempotentAndUnregister(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize)
	d.Register(a)
	d.Register(a)
	if d.NumRegions() != 1 {
		t.Fatalf("regions = %d", d.NumRegions())
	}
	d.Unregister(a)
	if d.NumRegions() != 0 {
		t.Fatalf("regions after unregister = %d", d.NumRegions())
	}
	d.Unregister(a) // no-op
}

func TestDaemonTickerScans(t *testing.T) {
	eng, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize*2)
	b := mem.NewSpace("b", mem.PageSize*2)
	mustWrite(t, a, 1, 0x77)
	mustWrite(t, b, 1, 0x77)
	d.Register(a)
	d.Register(b)
	d.Start()
	d.Start() // idempotent
	if !d.Running() {
		t.Fatal("not running after Start")
	}
	eng.RunFor(time.Second)
	d.Stop()
	if d.Running() {
		t.Fatal("running after Stop")
	}
	if _, shared := a.Shared(1); !shared {
		t.Fatal("daemon never merged")
	}
	if d.PagesScanned() == 0 {
		t.Fatal("no pages scanned")
	}
}

func TestDeadGroupEvictedFromStableTree(t *testing.T) {
	_, d := newDaemon(t)
	a := mem.NewSpace("a", mem.PageSize)
	b := mem.NewSpace("b", mem.PageSize)
	mustWrite(t, a, 0, 0x9)
	mustWrite(t, b, 0, 0x9)
	d.Register(a)
	d.Register(b)
	d.FullPass()
	d.FullPass()
	// Kill the group entirely.
	mustWrite(t, a, 0, 0xA)
	mustWrite(t, b, 0, 0xB)
	if d.SharedGroups() != 0 {
		t.Fatalf("live groups = %d", d.SharedGroups())
	}
	// New pair with the old content must still merge (stale stable entry
	// must not poison it).
	mustWrite(t, a, 0, 0x9)
	mustWrite(t, b, 0, 0x9)
	d.FullPass()
	d.FullPass()
	d.FullPass()
	if _, shared := a.Shared(0); !shared {
		t.Fatal("remerge after group death failed")
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCostModel()
	if c.WriteCost(mem.WriteResult{CowBroken: true}) != c.CowBreakWrite {
		t.Fatal("cow write cost wrong")
	}
	if c.WriteCost(mem.WriteResult{}) != c.RegularWrite {
		t.Fatal("regular write cost wrong")
	}
	if c.CowBreakWrite < 10*c.RegularWrite {
		t.Fatal("cost model lost the order-of-magnitude dedup gap")
	}
}

// Property: after two full passes over any pair of spaces, every pair of
// merged pages is content-equal (soundness: KSM never merges different
// pages), and contents observed by readers never change due to merging.
func TestMergeSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine(seed)
		d := New(eng, DefaultConfig(), DefaultCostModel())
		a := mem.NewSpace("a", mem.PageSize*64)
		b := mem.NewSpace("b", mem.PageSize*64)
		// Draw from a tiny content alphabet to force many duplicates.
		for p := 0; p < 64; p++ {
			if _, err := a.Write(p, mem.Content(rng.Intn(8))); err != nil {
				return false
			}
			if _, err := b.Write(p, mem.Content(rng.Intn(8))); err != nil {
				return false
			}
		}
		before := append(a.Snapshot(), b.Snapshot()...)
		d.Register(a)
		d.Register(b)
		d.FullPass()
		d.FullPass()
		after := append(a.Snapshot(), b.Snapshot()...)
		for i := range before {
			if before[i] != after[i] {
				return false // merging changed observable contents
			}
		}
		for _, s := range []*mem.Space{a, b} {
			for p := 0; p < 64; p++ {
				if g, shared := s.Shared(p); shared {
					if g.Content != s.MustRead(p) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
