package fleet_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/fleet"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/vnet"
)

func TestMigrateVMCleanGuest(t *testing.T) {
	f, err := fleet.New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h00", "g0", 32); err != nil {
		t.Fatal(err)
	}
	rep, err := f.MigrateVM("g0", "h02")
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != "h00" || rep.To != "h02" || rep.Attempts != 1 || rep.Retries != 0 {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.Result.BytesOnWire == 0 || rep.Duration <= 0 {
		t.Fatalf("rep = %+v", rep)
	}
	info, err := f.Lookup("g0")
	if err != nil {
		t.Fatal(err)
	}
	if info.Host != "h02" || !info.Inner.Running() || info.Inner != info.Outer {
		t.Fatalf("info = %+v", info)
	}
	// The source instance is gone: nothing left on h00.
	h0, _ := f.Host("h00")
	if vms := h0.Hypervisor().VMs(); len(vms) != 0 {
		t.Fatalf("source leftovers: %v", vms)
	}
	if free := f.FreeMemMB("h00"); free != fleet.DefaultHostMemMB {
		t.Fatalf("free on source = %d", free)
	}
	if _, err := f.MigrateVM("g0", "h02"); !errors.Is(err, fleet.ErrSameHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestMigrateVMInfectedGuestMovesNestedStack(t *testing.T) {
	f, err := fleet.New(1, WithTestHosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h00", "g0", 32); err != nil {
		t.Fatal(err)
	}
	rk := install(t, f, "h00", "g0")

	before, err := f.Lookup("g0")
	if err != nil {
		t.Fatal(err)
	}
	if before.Outer == before.Inner {
		t.Fatal("install did not interpose an outer VM")
	}
	if before.Outer != rk.RITM || before.Inner != rk.Victim {
		t.Fatal("lookup does not see the rootkit stack")
	}

	rep, err := f.MigrateVM("g0", "h01")
	if err != nil {
		t.Fatal(err)
	}
	after, err := f.Lookup("g0")
	if err != nil {
		t.Fatal(err)
	}
	if after.Host != "h01" || after.Outer == after.Inner {
		t.Fatalf("after = %+v", after)
	}
	if !after.Inner.Running() || !after.Outer.Running() {
		t.Fatalf("states: outer %v inner %v", after.Outer.State(), after.Inner.State())
	}
	// The nested guest kept the victim's name; the outer instance is a
	// fresh generation.
	if after.Inner.Name() != "g0" {
		t.Fatalf("inner name = %q", after.Inner.Name())
	}
	if after.Outer.Name() == before.Outer.Name() {
		t.Fatalf("outer instance not renamed: %q", after.Outer.Name())
	}
	// Source host fully vacated.
	h0, _ := f.Host("h00")
	if vms := h0.Hypervisor().VMs(); len(vms) != 0 {
		t.Fatalf("source leftovers: %v", vms)
	}
	_ = rep
}

func TestMigrateLinkFailureRetriedToCompletion(t *testing.T) {
	f, err := fleet.New(1, fleet.WithRetry(4, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h00", "g0", 32); err != nil {
		t.Fatal(err)
	}
	// The link to the destination dies as soon as the migration starts
	// streaming and recovers a while later; the retry loop must carry
	// the guest through.
	f.Engine().Schedule(time.Millisecond, "chaos.down", func() {
		if err := f.SetHostLink("h01", true); err != nil {
			t.Error(err)
		}
	})
	f.Engine().Schedule(20*time.Second, "chaos.up", func() {
		if err := f.SetHostLink("h01", false); err != nil {
			t.Error(err)
		}
	})
	rep, err := f.MigrateVM("g0", "h01")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts < 2 || rep.Retries < 1 {
		t.Fatalf("rep = %+v", rep)
	}
	info, err := f.Lookup("g0")
	if err != nil {
		t.Fatal(err)
	}
	if info.Host != "h01" || !info.Inner.Running() {
		t.Fatalf("info = %+v", info)
	}
}

func TestMigrateRetriesExhaustedKeepsGuestAlive(t *testing.T) {
	f, err := fleet.New(1, fleet.WithRetry(2, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	vm, err := f.StartGuest("h00", "g0", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetHostLink("h01", true); err != nil {
		t.Fatal(err)
	}
	rep, err := f.MigrateVM("g0", "h01")
	// The failure is typed all the way down: fleet, migrate, and vnet
	// sentinel errors all match.
	if !errors.Is(err, fleet.ErrMigrationFailed) {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, migrate.ErrAborted) || !errors.Is(err, vnet.ErrLinkDown) {
		t.Fatalf("err = %v", err)
	}
	if rep.Attempts != 2 || rep.Retries != 1 {
		t.Fatalf("rep = %+v", rep)
	}
	// No lost VM: the guest still runs at the source, and the aborted
	// incoming instance was discarded at the destination.
	info, err := f.Lookup("g0")
	if err != nil {
		t.Fatal(err)
	}
	if info.Host != "h00" || info.Inner != vm || !vm.Running() {
		t.Fatalf("info = %+v, state = %v", info, vm.State())
	}
	h1, _ := f.Host("h01")
	if vms := h1.Hypervisor().VMs(); len(vms) != 0 {
		t.Fatalf("destination leftovers: %v", vms)
	}
	// The link recovers; a fresh attempt completes.
	if err := f.SetHostLink("h01", false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.MigrateVM("g0", "h01"); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateToTrustedAndSkip(t *testing.T) {
	f, err := fleet.New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h00", "g0", 32); err != nil {
		t.Fatal(err)
	}
	rep, err := f.MigrateToTrusted("g0")
	if err != nil {
		t.Fatal(err)
	}
	if rep.To != "h03" || rep.Skipped {
		t.Fatalf("rep = %+v", rep)
	}
	// Already trusted: no-op.
	rep, err = f.MigrateToTrusted("g0")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Skipped || rep.From != "h03" || rep.To != "h03" {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestEvacuateHost(t *testing.T) {
	f, err := fleet.New(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.StartGuest("h00", fmt.Sprintf("g%d", i), 32); err != nil {
			t.Fatal(err)
		}
	}
	reports, err := f.EvacuateHost("h00", fleet.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %+v", reports)
	}
	if got := f.GuestsOn("h00"); len(got) != 0 {
		t.Fatalf("still on h00: %v", got)
	}
	for _, name := range f.GuestNames() {
		info, err := f.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Inner.Running() {
			t.Fatalf("%s: %v", name, info.Inner.State())
		}
	}
}

// WithTestHosts shrinks the default fleet to three hosts (h02 trusted).
func WithTestHosts() fleet.Option {
	return fleet.WithHostSpecs(
		fleet.HostSpec{Name: "h00"},
		fleet.HostSpec{Name: "h01"},
		fleet.HostSpec{Name: "h02", Trusted: true},
	)
}

// install runs the CloudSkulk installer against a fleet guest.
func install(t *testing.T, f *fleet.Fleet, hostName, guestName string) *core.Rootkit {
	t.Helper()
	host, err := f.Host(hostName)
	if err != nil {
		t.Fatal(err)
	}
	icfg := core.DefaultInstallConfig()
	icfg.TargetName = guestName
	icfg.RITMName = guestName + "-x"
	rk, err := core.Installer{Host: host, Migration: f.Migration()}.Install(icfg)
	if err != nil {
		t.Fatal(err)
	}
	return rk
}
