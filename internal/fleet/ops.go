package fleet

import (
	"errors"
	"fmt"
	"time"

	"cloudskulk/internal/migrate"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/telemetry"
	"cloudskulk/internal/vnet"
)

// MoveReport summarizes one fleet-level guest move.
type MoveReport struct {
	Guest string
	From  string
	To    string
	// Skipped is set when the move was already satisfied (e.g.
	// MigrateToTrusted of a guest already on a trusted host).
	Skipped bool
	// Attempts counts outer-migration attempts (1 = clean first try).
	Attempts int
	// Retries counts aborted-and-retried migration attempts across the
	// whole move (outer and nested streams).
	Retries int
	// Duration is the move's total virtual time, including backoff.
	Duration time.Duration
	// Result is the outer VM's migration result.
	Result migrate.Result
}

// migrateWithRetry drives one migration stream to target, retrying
// network aborts (link down, no bandwidth) with exponential backoff in
// virtual time. Aborts hand the source back running, so no VM is lost
// between attempts; each retry restarts the stream from a full dirty
// set. Non-abort errors (config mismatch, cancellation) fail fast.
func (f *Fleet) migrateWithRetry(vm *qemu.VM, target vnet.Addr) (attempts, retries int, err error) {
	for attempts = 1; ; attempts++ {
		err = f.mig.MigrateTo(vm, target)
		if err == nil {
			return attempts, retries, nil
		}
		if !errors.Is(err, migrate.ErrAborted) || attempts >= f.retry.Attempts {
			return attempts, retries, fmt.Errorf("%w: %q after %d attempts: %w",
				ErrMigrationFailed, vm.Name(), attempts, err)
		}
		f.eng.RunFor(f.retry.Delay(retries))
		retries++
	}
}

// MigrateVM live-migrates a guest to another host: it stands up an
// incoming QEMU instance on the destination, streams the guest's outer VM
// over the host<->host link (contending with concurrent migrations,
// retrying link failures with backoff), reconstitutes any nested stack
// riding inside it — a CloudSkulk RITM's hidden L2 guest moves with it —
// rewires the service forward chain on the destination, and retires the
// source instance. On failure the typed error is surfaced and the guest
// keeps running at the source.
func (f *Fleet) MigrateVM(guestName, dstName string) (rep MoveReport, err error) {
	g, ok := f.guests[guestName]
	if !ok {
		return MoveReport{}, fmt.Errorf("%w: %q", ErrUnknownGuest, guestName)
	}
	rep = MoveReport{Guest: guestName, From: g.host, To: dstName}
	span := f.spans.Start("fleet.migrate",
		telemetry.A("guest", guestName),
		telemetry.A("from", g.host),
		telemetry.A("to", dstName))
	defer func() {
		outcome := "completed"
		if err != nil {
			outcome = "failed"
			f.tele.Counter("fleet_migrations_failed_total").Inc()
		} else {
			f.tele.Counter("fleet_migrations_total").Inc()
		}
		f.tele.Counter("fleet_migration_retries_total").Add(uint64(rep.Retries))
		span.Set("outcome", outcome)
		span.End()
	}()
	dstHost, herr := f.Host(dstName)
	if herr != nil {
		return rep, herr
	}
	if dstName == g.host {
		return rep, fmt.Errorf("%w: %q on %q", ErrSameHost, guestName, dstName)
	}
	if f.FreeMemMB(dstName) < g.memMB {
		return rep, fmt.Errorf("%w: %q to %q", ErrInsufficientMemory, guestName, dstName)
	}
	info, err := f.Lookup(guestName)
	if err != nil {
		return rep, err
	}

	srcHV := f.hosts[g.host].Hypervisor()
	dstHV := dstHost.Hypervisor()
	start := f.eng.Now()

	// The destination instance needs a globally fresh name (VM NIC
	// endpoints share one namespace) and a fresh incoming port.
	f.gen++
	instName := fmt.Sprintf("%s-g%d", guestName, f.gen)
	inPort := migrationBasePort + f.gen
	ocfg := info.Outer.Config().Clone()
	ocfg.Name = instName
	ocfg.Incoming = fmt.Sprintf("tcp:0.0.0.0:%d", inPort)
	// Forwards are host-scoped runtime state, not guest state: the
	// service chain is reinstalled on the destination after handoff.
	for i := range ocfg.NetDevs {
		ocfg.NetDevs[i].HostFwds = nil
	}
	dstOuter, err := dstHV.CreateVM(ocfg)
	if err != nil {
		return rep, err
	}
	// Booting with -incoming parks the instance in StateIncoming.
	if err := dstHV.Launch(instName); err != nil {
		_ = dstHV.Kill(instName)
		return rep, err
	}

	attempts, retries, err := f.migrateWithRetry(info.Outer, vnet.Addr{Endpoint: dstName, Port: inPort})
	rep.Attempts, rep.Retries = attempts, retries
	if err != nil {
		// Discard the incoming shell; the source was handed back running.
		_ = dstHV.Kill(instName)
		return rep, err
	}
	if res, ok := f.mig.LastResult(); ok {
		rep.Result = res
	}

	if _, nested := srcHV.Nested(info.Outer.Name()); nested && info.Inner != info.Outer {
		// The outer VM hosts a nested hypervisor: re-create the L2 guest
		// behind the migrated instance and stream it over. Its config
		// still carries the victim's original -incoming port and service
		// forward, so the inner half of the double-forward chain
		// reassembles itself at CreateVM time.
		dstInnerHV, err := dstHV.EnableNesting(instName)
		if err != nil {
			return rep, err
		}
		ncfg := info.Inner.Config().Clone()
		if ncfg.Incoming == "" {
			ncfg.Incoming = fmt.Sprintf("tcp:0.0.0.0:%d", inPort)
		}
		if _, err := dstInnerHV.CreateVM(ncfg); err != nil {
			return rep, err
		}
		if err := dstInnerHV.Launch(ncfg.Name); err != nil {
			return rep, err
		}
		nPort, err := qemu.ParseIncomingPort(ncfg.Incoming)
		if err != nil {
			return rep, err
		}
		_, nRetries, err := f.migrateWithRetry(info.Inner, vnet.Addr{Endpoint: dstOuter.Endpoint(), Port: nPort})
		rep.Retries += nRetries
		if err != nil {
			return rep, err
		}
		// Outer half of the chain: host service port into the RITM.
		err = dstHV.AddHostFwd(dstOuter, qemu.FwdRule{HostPort: g.servicePort, GuestPort: g.servicePort})
		if err != nil {
			return rep, err
		}
	} else {
		if err := dstHV.AddHostFwd(dstOuter, qemu.FwdRule{HostPort: g.servicePort, GuestPort: 22}); err != nil {
			return rep, err
		}
	}

	// Retire the source stack: kills any nested guests with it and tears
	// down its forwards, KSM registration, and endpoint.
	if err := srcHV.Kill(info.Outer.Name()); err != nil {
		return rep, err
	}
	f.usedMB[g.host] -= g.memMB
	g.host = dstName
	f.usedMB[g.host] += g.memMB
	rep.Duration = f.eng.Now() - start
	return rep, nil
}

// MigrateToTrusted moves a guest onto a trusted host chosen by the
// placement scheduler. A guest already on a trusted host is a no-op
// (Skipped report).
func (f *Fleet) MigrateToTrusted(guestName string) (MoveReport, error) {
	g, ok := f.guests[guestName]
	if !ok {
		return MoveReport{}, fmt.Errorf("%w: %q", ErrUnknownGuest, guestName)
	}
	if f.specs[g.host].Trusted {
		return MoveReport{Guest: guestName, From: g.host, To: g.host, Skipped: true}, nil
	}
	dst, err := f.PickHost(guestName, Policy{RequireTrusted: true})
	if err != nil {
		return MoveReport{Guest: guestName, From: g.host}, err
	}
	return f.MigrateVM(guestName, dst)
}

// EvacuateHost migrates every guest off the named host, placing each via
// the scheduler under pol (guests are processed in name order). It
// returns the reports for the moves completed, stopping at the first
// failure.
func (f *Fleet) EvacuateHost(hostName string, pol Policy) ([]MoveReport, error) {
	if _, ok := f.hosts[hostName]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, hostName)
	}
	f.tele.Counter("fleet_evacuations_total").Inc()
	span := f.spans.Start("fleet.evacuate", telemetry.A("host", hostName))
	defer span.End()
	var reports []MoveReport
	for _, guestName := range f.GuestsOn(hostName) {
		dst, err := f.PickHost(guestName, pol)
		if err != nil {
			return reports, err
		}
		rep, err := f.MigrateVM(guestName, dst)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
