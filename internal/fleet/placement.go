package fleet

import "fmt"

// Policy constrains destination choice for a placement decision.
type Policy struct {
	// RequireTrusted restricts candidates to hosts carrying the trusted
	// tag — the "move it to a clean machine first" step of the paper's
	// operational defence.
	RequireTrusted bool
	// AvoidGuests lists guests the moved guest must not share a host
	// with (anti-affinity).
	AvoidGuests []string
	// MinFreeMB requires the destination to keep at least this much
	// budget free after placing the guest.
	MinFreeMB int64
}

// PickHost deterministically chooses a destination for the named guest:
// candidates are filtered (source host excluded, trust tag, free memory,
// anti-affinity) and ranked by most free memory, ties broken by name.
// Determinism matters: sweeps re-run placement under different worker
// counts and must produce identical fleets.
func (f *Fleet) PickHost(guestName string, pol Policy) (string, error) {
	g, ok := f.guests[guestName]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownGuest, guestName)
	}
	avoid := make(map[string]bool, len(pol.AvoidGuests))
	for _, other := range pol.AvoidGuests {
		if o, ok := f.guests[other]; ok && other != guestName {
			avoid[o.host] = true
		}
	}
	best, bestFree := "", int64(0)
	for _, host := range f.order {
		if host == g.host || avoid[host] {
			continue
		}
		if pol.RequireTrusted && !f.specs[host].Trusted {
			continue
		}
		free := f.FreeMemMB(host)
		if free < g.memMB+pol.MinFreeMB {
			continue
		}
		if best == "" || free > bestFree {
			best, bestFree = host, free
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: for %q", ErrNoPlacement, guestName)
	}
	return best, nil
}
