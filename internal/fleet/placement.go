package fleet

import "fmt"

// Policy constrains destination choice for a placement decision.
type Policy struct {
	// RequireTrusted restricts candidates to hosts carrying the trusted
	// tag — the "move it to a clean machine first" step of the paper's
	// operational defence.
	RequireTrusted bool
	// AvoidGuests lists guests the moved guest must not share a host
	// with (anti-affinity).
	AvoidGuests []string
	// MinFreeMB requires the destination to keep at least this much
	// budget free after placing the guest.
	MinFreeMB int64
	// ExcludeHosts removes named hosts from the candidate set outright
	// (a migration's source host, a host in maintenance).
	ExcludeHosts []string
}

// PickHostFor deterministically chooses a host with room for a new
// memMB-sized guest under pol: candidates are filtered (excluded hosts,
// trust tag, free memory, anti-affinity) and ranked by most free memory,
// ties broken by name. This is the deploy-time half of the scheduler —
// the control plane places fresh guests through it.
func (f *Fleet) PickHostFor(memMB int64, pol Policy) (string, error) {
	avoid := make(map[string]bool, len(pol.AvoidGuests))
	for _, other := range pol.AvoidGuests {
		if o, ok := f.guests[other]; ok {
			avoid[o.host] = true
		}
	}
	excl := make(map[string]bool, len(pol.ExcludeHosts))
	for _, h := range pol.ExcludeHosts {
		excl[h] = true
	}
	best, bestFree := "", int64(0)
	for _, host := range f.order {
		if excl[host] || avoid[host] {
			continue
		}
		if pol.RequireTrusted && !f.specs[host].Trusted {
			continue
		}
		free := f.FreeMemMB(host)
		if free < memMB+pol.MinFreeMB {
			continue
		}
		if best == "" || free > bestFree {
			best, bestFree = host, free
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: for %d MB", ErrNoPlacement, memMB)
	}
	return best, nil
}

// PickHost deterministically chooses a destination for the named guest:
// the guest's current host is excluded, the guest itself never counts
// against its own anti-affinity, and the ranking is PickHostFor's
// (most free memory, ties broken by name). Determinism matters: sweeps
// re-run placement under different worker counts and must produce
// identical fleets.
func (f *Fleet) PickHost(guestName string, pol Policy) (string, error) {
	g, ok := f.guests[guestName]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownGuest, guestName)
	}
	avoid := make([]string, 0, len(pol.AvoidGuests))
	for _, other := range pol.AvoidGuests {
		if other != guestName {
			avoid = append(avoid, other)
		}
	}
	pol.AvoidGuests = avoid
	pol.ExcludeHosts = append(append([]string(nil), pol.ExcludeHosts...), g.host)
	host, err := f.PickHostFor(g.memMB, pol)
	if err != nil {
		return "", fmt.Errorf("%w: for %q", ErrNoPlacement, guestName)
	}
	return host, nil
}
