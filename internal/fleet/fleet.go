// Package fleet scales the single-machine CloudSkulk testbed to a
// datacenter: N simulated hosts share one sim.Engine and one vnet fabric
// with explicit host<->host links (bandwidth, latency, failable), guests
// are tracked in a registry by logical name, and live migration moves
// them between hosts — the operational setting where the paper's defence
// actually runs (migrate a suspect guest to a trusted host, run the KSM
// timing protocol there, evacuate around failures).
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"cloudskulk/internal/hv"
	"cloudskulk/internal/kvm"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/migrate"

	// Make every built-in backend resolvable through WithBackend /
	// WithHostBackend without each caller importing the registry.
	_ "cloudskulk/internal/hv/backends"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
	"cloudskulk/internal/vnet"
)

// Errors callers match on.
var (
	ErrUnknownHost        = errors.New("fleet: unknown host")
	ErrUnknownGuest       = errors.New("fleet: unknown guest")
	ErrDuplicateGuest     = errors.New("fleet: guest already exists")
	ErrSameHost           = errors.New("fleet: guest already on that host")
	ErrInsufficientMemory = errors.New("fleet: destination lacks free memory")
	ErrNoPlacement        = errors.New("fleet: no host satisfies placement policy")
	ErrMigrationFailed    = errors.New("fleet: migration failed")
)

// Port layout: each guest gets a fleet-unique service/monitor/QMP port so
// migrations can land it on any host without colliding with residents,
// and every cross-host migration gets a fresh incoming port.
const (
	serviceBasePort   = 2200
	monitorBasePort   = 5600
	qmpBasePort       = 5900
	migrationBasePort = 41000
)

// DefaultHostMemMB is the guest-memory budget of a host without an
// explicit capacity.
const DefaultHostMemMB = 8192

// RetryPolicy is the fleet's bounded-exponential-backoff discipline:
// Attempts tries total, the k-th retry delayed by Backoff·2^k of virtual
// time. Migration retries use it directly; the control plane's job queue
// reuses the same policy for transient job failures, so operator-facing
// retry behaviour is uniform across layers.
type RetryPolicy struct {
	// Attempts is the total number of tries (1 = no retries).
	Attempts int
	// Backoff is the delay before the first retry; each further retry
	// doubles it.
	Backoff time.Duration
}

// Delay returns the virtual-time backoff before retry number retry
// (0-based): Backoff << retry.
func (rp RetryPolicy) Delay(retry int) time.Duration {
	return rp.Backoff << retry
}

// HostSpec describes one physical machine of the fleet.
type HostSpec struct {
	Name string
	// MemMB is the host's guest-memory budget (DefaultHostMemMB if 0).
	MemMB int64
	// Trusted marks the host as a clean-room machine the operator
	// migrates suspect guests onto before running detection.
	Trusted bool
}

// config is the option state New builds from.
type config struct {
	hosts        []HostSpec
	hostLink     vnet.LinkSpec
	retries      int
	backoff      time.Duration
	backend      string
	hostBackends map[string]string
	tele         *telemetry.Registry
	teleSet      bool
	eng          *sim.Engine
}

// Option configures New.
type Option func(*config)

// WithHosts sizes the fleet to n uniformly-specced hosts named h00..hNN;
// the last max(1, n/4) are trusted.
func WithHosts(n int) Option {
	return func(c *config) {
		c.hosts = c.hosts[:0]
		trustedFrom := n - maxInt(1, n/4)
		for i := 0; i < n; i++ {
			c.hosts = append(c.hosts, HostSpec{
				Name:    fmt.Sprintf("h%02d", i),
				Trusted: i >= trustedFrom,
			})
		}
	}
}

// WithHostSpecs replaces the host list with an explicit set of specs.
func WithHostSpecs(specs ...HostSpec) Option {
	return func(c *config) { c.hosts = append(c.hosts[:0], specs...) }
}

// WithHostLink sets the link spec installed between every host pair
// (default: a 1 GbE-class 125 MiB/s, 200 µs datacenter link).
func WithHostLink(spec vnet.LinkSpec) Option {
	return func(c *config) { c.hostLink = spec }
}

// WithRetry sets how often a migration aborted by the network is retried
// and the initial backoff between attempts (doubling per retry). Defaults:
// 3 attempts, 2 s.
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(c *config) { c.retries, c.backoff = attempts, backoff }
}

// WithBackend selects the hypervisor backend every fleet host runs
// (default: the paper's kvm-i7-4790 profile). Unknown names surface as
// hv.ErrUnknownBackend from New, listing the registered backends.
func WithBackend(name string) Option {
	return func(c *config) { c.backend = name }
}

// WithHostBackend overrides the backend for one named host — the
// heterogeneous-fleet knob: mixed hardware generations on one fabric.
// The host must appear in the fleet's host list when New runs.
func WithHostBackend(host, name string) Option {
	return func(c *config) {
		if c.hostBackends == nil {
			c.hostBackends = make(map[string]string)
		}
		c.hostBackends[host] = name
	}
}

// WithEngine runs the fleet on a caller-owned simulation engine instead of
// a freshly seeded private one (the seed argument to New is then unused).
// The shard layer uses this to give every shard's fleet that shard's
// engine, so one engine drives exactly one shard's virtual clock.
func WithEngine(eng *sim.Engine) Option {
	return func(c *config) { c.eng = eng }
}

// WithTelemetry injects a metrics registry — typically one shared across
// an experiment sweep's cells, whose counter sums stay deterministic for
// any worker count. Passing nil disables metrics entirely. Without this
// option every fleet gets its own private registry.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) { c.tele, c.teleSet = reg, true }
}

// guest is one registry entry. The qemu.VM instances backing a guest
// change across migrations (and infections), so the record stores only
// stable facts; Lookup resolves the current instances through the
// host-side forward chain, exactly like an operator would.
type guest struct {
	name        string
	host        string
	memMB       int64
	servicePort int
}

// Fleet is a set of simulated hosts sharing one engine, one network
// fabric, and one migration engine.
type Fleet struct {
	eng   *sim.Engine
	net   *vnet.Network
	mig   *migrate.Engine
	hosts map[string]*kvm.Host
	specs map[string]HostSpec
	order []string // host names, sorted

	guests  map[string]*guest
	usedMB  map[string]int64 // per-host placed-guest memory (FreeMemMB in O(1))
	nextIdx int              // fleet-wide guest counter (port layout)
	gen     int              // migration generation counter (instance names, ports)

	retry RetryPolicy

	tele  *telemetry.Registry
	spans *telemetry.SpanTracer
}

// New builds a fleet on a fresh seeded engine. Without options it has 4
// hosts (h00..h03, h03 trusted) joined by a full mesh of default
// datacenter links.
func New(seed int64, opts ...Option) (*Fleet, error) {
	c := config{
		hostLink: vnet.LinkSpec{Bandwidth: 125 << 20, Latency: 200 * time.Microsecond},
		retries:  3,
		backoff:  2 * time.Second,
	}
	WithHosts(4)(&c)
	for _, opt := range opts {
		opt(&c)
	}
	if len(c.hosts) == 0 {
		return nil, errors.New("fleet: no hosts")
	}
	if c.retries < 1 {
		c.retries = 1
	}

	// Resolve every backend up front so a typo fails the constructor
	// with hv.ErrUnknownBackend instead of surfacing mid-simulation.
	fleetBackend, err := hv.Lookup(c.backend)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	backends := make(map[string]hv.Backend, len(c.hosts))
	matched := 0
	for _, spec := range c.hosts {
		b := fleetBackend
		if name, ok := c.hostBackends[spec.Name]; ok {
			matched++
			if b, err = hv.Lookup(name); err != nil {
				return nil, fmt.Errorf("fleet: host %q: %w", spec.Name, err)
			}
		}
		backends[spec.Name] = b
	}
	if matched != len(c.hostBackends) {
		overrides := make([]string, 0, len(c.hostBackends))
		for host := range c.hostBackends {
			overrides = append(overrides, host)
		}
		sort.Strings(overrides)
		for _, host := range overrides {
			if _, ok := backends[host]; !ok {
				return nil, fmt.Errorf("%w: %q (WithHostBackend)", ErrUnknownHost, host)
			}
		}
	}

	eng := c.eng
	if eng == nil {
		eng = sim.NewEngine(seed)
	}
	network := vnet.New(eng)
	mig := migrate.NewEngine(eng, network)
	tele := c.tele
	if !c.teleSet {
		tele = telemetry.NewRegistry()
	}
	spans := telemetry.NewSpanTracer(eng)
	network.SetTelemetry(tele)
	mig.SetTelemetry(tele)
	mig.SetSpans(spans)

	f := &Fleet{
		eng:    eng,
		net:    network,
		mig:    mig,
		hosts:  make(map[string]*kvm.Host, len(c.hosts)),
		specs:  make(map[string]HostSpec, len(c.hosts)),
		guests: make(map[string]*guest),
		usedMB: make(map[string]int64, len(c.hosts)),
		retry:  RetryPolicy{Attempts: c.retries, Backoff: c.backoff},
		tele:   tele,
		spans:  spans,
	}
	for _, spec := range c.hosts {
		if spec.MemMB <= 0 {
			spec.MemMB = DefaultHostMemMB
		}
		if _, dup := f.hosts[spec.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate host %q", spec.Name)
		}
		h, err := kvm.NewHostWithBackend(eng, network, spec.Name, backends[spec.Name])
		if err != nil {
			return nil, err
		}
		h.SetMigrationService(mig)
		h.SetTelemetry(tele)
		f.hosts[spec.Name] = h
		f.specs[spec.Name] = spec
		f.order = append(f.order, spec.Name)
	}
	sort.Strings(f.order)
	// Full mesh of explicit host-pair links. Guest NICs attach to their
	// host (kvm.CreateVM), so these links govern all cross-host traffic
	// while intra-host paths keep the fabric's default loopback link.
	for i, a := range f.order {
		for _, b := range f.order[i+1:] {
			network.SetLink(a, b, c.hostLink)
		}
	}
	return f, nil
}

// Engine returns the shared simulation engine.
func (f *Fleet) Engine() *sim.Engine { return f.eng }

// Network returns the shared fabric.
func (f *Fleet) Network() *vnet.Network { return f.net }

// Migration returns the shared live-migration engine.
func (f *Fleet) Migration() *migrate.Engine { return f.mig }

// Telemetry returns the fleet's metrics registry (nil when disabled via
// WithTelemetry(nil)).
func (f *Fleet) Telemetry() *telemetry.Registry { return f.tele }

// Spans returns the fleet's span tracer; fleet-level operations and the
// migration engine record their trees here.
func (f *Fleet) Spans() *telemetry.SpanTracer { return f.spans }

// Retry returns the fleet's configured retry policy (WithRetry), so
// higher layers — the control plane's job queue — can apply the same
// backoff discipline to their own transient failures.
func (f *Fleet) Retry() RetryPolicy { return f.retry }

// Host returns a host by name.
func (f *Fleet) Host(name string) (*kvm.Host, error) {
	h, ok := f.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	return h, nil
}

// HostNames returns all host names, sorted.
func (f *Fleet) HostNames() []string {
	return append([]string(nil), f.order...)
}

// Trusted reports whether the named host carries the trusted tag.
func (f *Fleet) Trusted(name string) bool { return f.specs[name].Trusted }

// TrustedHosts returns the trusted host names, sorted.
func (f *Fleet) TrustedHosts() []string {
	var out []string
	for _, name := range f.order {
		if f.specs[name].Trusted {
			out = append(out, name)
		}
	}
	return out
}

// GuestNames returns all registered guest names, sorted.
func (f *Fleet) GuestNames() []string {
	out := make([]string, 0, len(f.guests))
	for name := range f.guests {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// GuestsOn returns the guests placed on a host, sorted.
func (f *Fleet) GuestsOn(host string) []string {
	var out []string
	for name, g := range f.guests {
		if g.host == host {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// FreeMemMB returns a host's guest-memory budget minus the logical
// footprint of the guests placed on it. The footprint is a running
// per-host counter maintained at placement, stop, and migration — not a
// scan of the registry — because the placement scheduler calls this per
// candidate host per decision, which at megastorm scale (100k deploys)
// made provisioning quadratic in the guest count.
func (f *Fleet) FreeMemMB(host string) int64 {
	return f.specs[host].MemMB - f.usedMB[host]
}

// StartGuest creates and boots a guest on the named host, assigning it a
// fleet-unique service port (SSH forward), monitor port, and QMP port.
// Guest names are fleet-wide: a name already registered — or already
// backing a VM instance on *any* host, including migration clones and
// interposed stacks that never appear in the registry — is rejected with
// ErrDuplicateGuest naming the occupying host, instead of leaking a
// hypervisor- or fabric-level collision from whichever host it happens
// to clash on.
func (f *Fleet) StartGuest(host, name string, memMB int64) (*qemu.VM, error) {
	return f.startGuest(host, name, memMB, nil)
}

// StartGuestFrom creates and boots a guest forked copy-on-write from a
// frozen golden memory image (mem.Freeze). The guest's memory size is the
// template's; creation and boot cost O(1) in that size — the fork shares
// page state with the template until first write. This is the mass-
// provisioning path the megastorm experiment exercises at 100k guests.
func (f *Fleet) StartGuestFrom(host, name string, tmpl *mem.Template) (*qemu.VM, error) {
	if tmpl == nil {
		return nil, fmt.Errorf("fleet: guest %q: nil template", name)
	}
	return f.startGuest(host, name, tmpl.SizeBytes()>>20, tmpl)
}

func (f *Fleet) startGuest(host, name string, memMB int64, tmpl *mem.Template) (*qemu.VM, error) {
	hv, err := f.Host(host)
	if err != nil {
		return nil, err
	}
	if g, dup := f.guests[name]; dup {
		return nil, fmt.Errorf("%w: %q already on host %q", ErrDuplicateGuest, name, g.host)
	}
	for _, other := range f.order {
		if _, exists := f.hosts[other].Hypervisor().VM(name); exists {
			return nil, fmt.Errorf("%w: %q already backed by an instance on host %q",
				ErrDuplicateGuest, name, other)
		}
	}
	if memMB <= 0 {
		return nil, fmt.Errorf("fleet: guest %q needs memory > 0", name)
	}
	if f.FreeMemMB(host) < memMB {
		return nil, fmt.Errorf("%w: %q on %q", ErrInsufficientMemory, name, host)
	}
	idx := f.nextIdx
	cfg := qemu.DefaultConfig(name)
	cfg.MemoryMB = memMB
	cfg.MemTemplate = tmpl
	cfg.MonitorPort = monitorBasePort + idx
	cfg.QMPPort = qmpBasePort + idx
	servicePort := serviceBasePort + idx
	cfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: servicePort, GuestPort: 22}}
	vm, err := hv.Hypervisor().CreateVM(cfg)
	if err != nil {
		return nil, err
	}
	if err := hv.Hypervisor().Launch(name); err != nil {
		return nil, err
	}
	f.nextIdx++
	f.guests[name] = &guest{name: name, host: host, memMB: memMB, servicePort: servicePort}
	f.usedMB[host] += memMB
	f.tele.Counter("fleet_placements_total").Inc()
	return vm, nil
}

// StopGuest terminates a guest and removes it from the registry, freeing
// its memory budget. The currently backing instance is resolved through
// the service chain (so a migrated — or even infected — stack is torn
// down whole: Kill takes any nested guests with it).
func (f *Fleet) StopGuest(name string) error {
	g, ok := f.guests[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownGuest, name)
	}
	info, err := f.Lookup(name)
	if err != nil {
		return err
	}
	if err := f.hosts[g.host].Hypervisor().Kill(info.Outer.Name()); err != nil {
		return err
	}
	delete(f.guests, name)
	f.usedMB[g.host] -= g.memMB
	f.tele.Counter("fleet_stops_total").Inc()
	return nil
}

// GuestInfo is the operator's current view of a guest: where it is and
// which VM instances presently back it. Outer is the L0 QEMU process on
// the host (the rootkit-in-the-middle when the guest is infected); Inner
// is the VM the user's agent actually runs in (== Outer when clean, the
// nested L2 VM when infected).
type GuestInfo struct {
	Name        string
	Host        string
	MemMB       int64
	ServicePort int
	Outer       *qemu.VM
	Inner       *qemu.VM
}

// Lookup resolves a guest by following the host-side service-port
// forward chain — the same vantage an operator has, which keeps the
// registry honest across migrations and even across a CloudSkulk install
// (where the outer VM is silently replaced).
func (f *Fleet) Lookup(name string) (GuestInfo, error) {
	g, ok := f.guests[name]
	if !ok {
		return GuestInfo{}, fmt.Errorf("%w: %q", ErrUnknownGuest, name)
	}
	final, hops, err := f.net.ResolveForward(vnet.Addr{Endpoint: g.host, Port: g.servicePort})
	if err != nil {
		return GuestInfo{}, err
	}
	hv := f.hosts[g.host].Hypervisor()
	inner, ok := hv.FindByEndpoint(final.Endpoint)
	if !ok {
		return GuestInfo{}, fmt.Errorf("%w: %q has no VM behind %s", ErrUnknownGuest, name, final)
	}
	outer := inner
	// hops[0] is the host itself; a second hop means the service chain
	// passes through an interposed L0 VM (the RITM).
	if len(hops) > 1 {
		if vm, ok := hv.FindByEndpoint(hops[1]); ok {
			outer = vm
		}
	}
	return GuestInfo{
		Name:        name,
		Host:        g.host,
		MemMB:       g.memMB,
		ServicePort: g.servicePort,
		Outer:       outer,
		Inner:       inner,
	}, nil
}

// SetHostLink takes every link touching the named host down (or back up)
// — a top-of-rack failure in one call. Transfers crossing a downed link
// abort with an error matching vnet.ErrLinkDown.
func (f *Fleet) SetHostLink(host string, down bool) error {
	if _, ok := f.hosts[host]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	for _, other := range f.order {
		if other == host {
			continue
		}
		spec := f.net.Link(host, other)
		spec.Down = down
		f.net.SetLink(host, other, spec)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
