package fleet_test

import (
	"fmt"
	"testing"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/detect"
	"cloudskulk/internal/fleet"
)

// mirrorPageOffset is where the rootkit mirrors intercepted pushes in
// RITM memory (mirrors the experiments' layout).
const mirrorPageOffset = core.KernelPages + 4096

// TestFleetSweep16Hosts is the acceptance scenario: a 16-host fleet with
// one infected guest. After MigrateToTrusted moves it onto a trusted
// host, the fleet-wide dedup sweep flags exactly that guest as nested.
func TestFleetSweep16Hosts(t *testing.T) {
	f, err := fleet.New(1, fleet.WithHosts(16))
	if err != nil {
		t.Fatal(err)
	}
	// One guest per untrusted host (h00..h11).
	for i := 0; i < 12; i++ {
		host := fmt.Sprintf("h%02d", i)
		if _, err := f.StartGuest(host, fmt.Sprintf("g%02d", i), 32); err != nil {
			t.Fatal(err)
		}
	}
	rk := install(t, f, "h03", "g03")

	rep, err := f.MigrateToTrusted("g03")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Trusted(rep.To) {
		t.Fatalf("moved to untrusted %q", rep.To)
	}
	// The user is still "in their VM": rebind the rootkit's handles (and
	// later the agent) to the migrated instances, like the interposition
	// itself travelling with the stack.
	info, err := f.Lookup("g03")
	if err != nil {
		t.Fatal(err)
	}
	if info.Outer == info.Inner {
		t.Fatal("nested stack lost in migration")
	}
	rk.RITM, rk.Victim = info.Outer, info.Inner

	verdicts, err := f.SweepDetect(fleet.SweepOptions{
		Pages: 50,
		Wait:  10 * time.Second,
		OnAgent: func(guest string, agent *detect.GuestAgent) {
			if guest == "g03" {
				agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 12 {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	for _, v := range verdicts {
		want := detect.VerdictClean
		if v.Guest == "g03" {
			want = detect.VerdictNested
			if !f.Trusted(v.Host) {
				t.Errorf("g03 probed on untrusted %q", v.Host)
			}
		}
		if v.Verdict != want {
			t.Errorf("%s on %s: verdict = %v, want %v", v.Guest, v.Host, v.Verdict, want)
		}
	}
}

// TestSweepDeterministic re-runs an identical fleet scenario and expects
// identical evidence, guest for guest: the sweep shares one seeded
// engine, so there is nothing wall-clock-dependent in it.
func TestSweepDeterministic(t *testing.T) {
	build := func() []fleet.GuestVerdict {
		f, err := fleet.New(7, WithTestHosts())
		if err != nil {
			t.Fatal(err)
		}
		for i, host := range []string{"h00", "h01"} {
			if _, err := f.StartGuest(host, fmt.Sprintf("g%d", i), 32); err != nil {
				t.Fatal(err)
			}
		}
		verdicts, err := f.SweepDetect(fleet.SweepOptions{Pages: 30, Wait: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return verdicts
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Guest != b[i].Guest || a[i].Verdict != b[i].Verdict ||
			a[i].Evidence.T1.MergedFraction != b[i].Evidence.T1.MergedFraction {
			t.Fatalf("run diverged at %s: %+v vs %+v", a[i].Guest, a[i], b[i])
		}
	}
}
