package fleet

import (
	"time"

	"cloudskulk/internal/detect"
	"cloudskulk/internal/runner"
)

// recordSweep counts one sweep verdict; a non-clean verdict is a hit.
func (f *Fleet) recordSweep(v detect.Verdict) {
	f.tele.Counter("fleet_sweep_guests_total").Inc()
	if v != detect.VerdictClean {
		f.tele.Counter("fleet_sweep_hits_total").Inc()
	}
}

// agentPageOffset places the detection probe file in guest memory, clear
// of the kernel image and boot-time content (mirrors the experiments'
// layout).
const agentPageOffset = 2048

// SweepOptions configures a fleet-wide detection sweep.
type SweepOptions struct {
	// Pages is the probe-file size (detector default when 0).
	Pages int
	// Wait is the KSM merge window per probe (detector default when 0).
	Wait time.Duration
	// OnProgress receives live sweep progress as guests complete.
	OnProgress func(runner.Progress)
	// OnAgent, when set, observes each guest's freshly built agent
	// before the detector runs — the hook an experiment uses to wire an
	// installed rootkit's file-push interception to the right guest.
	OnAgent func(guest string, agent *detect.GuestAgent)
}

// GuestVerdict is one guest's sweep outcome.
type GuestVerdict struct {
	Guest    string
	Host     string
	Verdict  detect.Verdict
	Evidence detect.Evidence
}

// SweepDetect runs the dedup-timing detector against every guest of the
// fleet (name order), each probed on whichever host currently carries it.
// Cells go through the internal/runner shard machinery for its progress
// reporting and error/panic taxonomy, but with a single worker: all
// guests share the fleet's one virtual-time engine, so probe windows must
// serialize to stay deterministic.
func (f *Fleet) SweepDetect(o SweepOptions) ([]GuestVerdict, error) {
	names := f.GuestNames()
	return runner.Map(len(names), runner.Options{Workers: 1, OnProgress: o.OnProgress},
		func(i int) (GuestVerdict, error) {
			name := names[i]
			info, err := f.Lookup(name)
			if err != nil {
				return GuestVerdict{}, err
			}
			// The probe needs the carrying host's ksmd scanning. Start it
			// for the probe window and stop it again afterwards unless the
			// operator already had it running — an idle fleet's daemons
			// ticking through every other guest's probe window would
			// dominate the sweep's event count for no modelled effect.
			ksmd := f.hosts[info.Host].KSM()
			if !ksmd.Running() {
				ksmd.Start()
				defer ksmd.Stop()
			}
			det := detect.NewDedupDetector(f.hosts[info.Host])
			if o.Pages > 0 {
				det.Pages = o.Pages
			}
			if o.Wait > 0 {
				det.Wait = o.Wait
			}
			agent := detect.NewGuestAgent(info.Inner, agentPageOffset)
			if o.OnAgent != nil {
				o.OnAgent(name, agent)
			}
			verdict, ev, err := det.Run(agent)
			if err != nil {
				return GuestVerdict{}, err
			}
			f.recordSweep(verdict)
			return GuestVerdict{Guest: name, Host: info.Host, Verdict: verdict, Evidence: ev}, nil
		})
}
