package fleet

import (
	"errors"
	"testing"
	"time"

	"cloudskulk/internal/vnet"
)

func TestNewFleetDefaults(t *testing.T) {
	f, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	hosts := f.HostNames()
	if len(hosts) != 4 {
		t.Fatalf("hosts = %v", hosts)
	}
	if got := f.TrustedHosts(); len(got) != 1 || got[0] != "h03" {
		t.Fatalf("trusted = %v", got)
	}
	// Host pairs carry the explicit datacenter link, not the loopback
	// default.
	link := f.Network().Link("h00", "h03")
	if link.Bandwidth != 125<<20 {
		t.Fatalf("host link = %+v", link)
	}
}

func TestWithHostsTrustedQuarter(t *testing.T) {
	f, err := New(1, WithHosts(16))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.TrustedHosts(); len(got) != 4 || got[0] != "h12" || got[3] != "h15" {
		t.Fatalf("trusted = %v", got)
	}
}

func TestStartGuestRegistersAndResolves(t *testing.T) {
	f, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := f.StartGuest("h00", "alpha", 32)
	if err != nil {
		t.Fatal(err)
	}
	if !vm.Running() {
		t.Fatalf("state = %v", vm.State())
	}
	info, err := f.Lookup("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if info.Host != "h00" || info.Outer != vm || info.Inner != vm {
		t.Fatalf("info = %+v", info)
	}
	// Guest NIC traffic rides the host uplink: cross-host link lookups
	// resolve through the attachment.
	if got := f.Network().Link(vm.Endpoint(), "h01"); got.Bandwidth != 125<<20 {
		t.Fatalf("attached link = %+v", got)
	}
	if _, err := f.StartGuest("h01", "alpha", 32); !errors.Is(err, ErrDuplicateGuest) {
		t.Fatalf("err = %v", err)
	}
}

func TestStartGuestCapacity(t *testing.T) {
	f, err := New(1, WithHostSpecs(
		HostSpec{Name: "a", MemMB: 64},
		HostSpec{Name: "b", MemMB: 64, Trusted: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("a", "g0", 48); err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("a", "g1", 48); !errors.Is(err, ErrInsufficientMemory) {
		t.Fatalf("err = %v", err)
	}
	if free := f.FreeMemMB("a"); free != 16 {
		t.Fatalf("free = %d", free)
	}
}

func TestPickHostPolicy(t *testing.T) {
	f, err := New(1, WithHostSpecs(
		HostSpec{Name: "h0", MemMB: 256},
		HostSpec{Name: "h1", MemMB: 256},
		HostSpec{Name: "h2", MemMB: 512},
		HostSpec{Name: "t0", MemMB: 256, Trusted: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h0", "g0", 32); err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h1", "g1", 32); err != nil {
		t.Fatal(err)
	}

	// Most free memory wins: h2 has twice the budget.
	if dst, err := f.PickHost("g0", Policy{}); err != nil || dst != "h2" {
		t.Fatalf("dst = %q, err = %v", dst, err)
	}
	// Trust restriction.
	if dst, err := f.PickHost("g0", Policy{RequireTrusted: true}); err != nil || dst != "t0" {
		t.Fatalf("dst = %q, err = %v", dst, err)
	}
	// Anti-affinity rules out g1's host.
	if dst, err := f.PickHost("g0", Policy{AvoidGuests: []string{"g1"}}); err != nil || dst == "h1" {
		t.Fatalf("dst = %q, err = %v", dst, err)
	}
	// Impossible demand.
	if _, err := f.PickHost("g0", Policy{MinFreeMB: 1 << 20}); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("err = %v", err)
	}
}

func TestPickHostTieBreaksByName(t *testing.T) {
	f, err := New(1, WithHostSpecs(
		HostSpec{Name: "h0", MemMB: 256},
		HostSpec{Name: "h1", MemMB: 256},
		HostSpec{Name: "h2", MemMB: 256},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h0", "g0", 32); err != nil {
		t.Fatal(err)
	}
	// h1 and h2 are identical: the lexicographically first must win, so
	// sweeps re-running placement are byte-identical.
	for i := 0; i < 3; i++ {
		if dst, err := f.PickHost("g0", Policy{}); err != nil || dst != "h1" {
			t.Fatalf("dst = %q, err = %v", dst, err)
		}
	}
}

func TestSetHostLinkFlipsAllPairs(t *testing.T) {
	f, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetHostLink("h01", true); err != nil {
		t.Fatal(err)
	}
	if !f.Network().Link("h00", "h01").Down || !f.Network().Link("h01", "h03").Down {
		t.Fatal("links not down")
	}
	if f.Network().Link("h00", "h02").Down {
		t.Fatal("unrelated link down")
	}
	if _, err := f.Network().TransferDuration("h00", "h01", 1<<20); !errors.Is(err, vnet.ErrLinkDown) {
		t.Fatalf("err = %v", err)
	}
	if err := f.SetHostLink("h01", false); err != nil {
		t.Fatal(err)
	}
	if f.Network().Link("h00", "h01").Down {
		t.Fatal("link still down")
	}
	if err := f.SetHostLink("nope", true); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestWithRetryAndHostLinkOptions(t *testing.T) {
	spec := vnet.LinkSpec{Bandwidth: 10 << 20, Latency: time.Millisecond}
	f, err := New(1, WithHostLink(spec), WithRetry(5, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Network().Link("h00", "h01"); got != spec {
		t.Fatalf("link = %+v", got)
	}
	if f.Retry() != (RetryPolicy{Attempts: 5, Backoff: time.Second}) {
		t.Fatalf("retry = %+v", f.Retry())
	}
}
