package fleet

import (
	"errors"
	"fmt"
	"testing"

	"cloudskulk/internal/runner"
)

// exhaustionFleet builds a 3-host fleet (h02 trusted) with tight 256 MB
// budgets, so tests can fill hosts to the brim deterministically.
func exhaustionFleet(t *testing.T) *Fleet {
	t.Helper()
	f, err := New(1, WithHostSpecs(
		HostSpec{Name: "h00", MemMB: 256},
		HostSpec{Name: "h01", MemMB: 256},
		HostSpec{Name: "h02", MemMB: 256, Trusted: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestPickHostAllHostsFull: when every candidate host lacks the free
// memory, both the migration-time and deploy-time scheduler entry points
// reject with ErrNoPlacement instead of over-committing a host.
func TestPickHostAllHostsFull(t *testing.T) {
	f := exhaustionFleet(t)
	for i, h := range f.HostNames() {
		if _, err := f.StartGuest(h, fmt.Sprintf("g%d", i), 224); err != nil {
			t.Fatal(err)
		}
	}
	// Every host has 32 MB free; g0 (224 MB) fits nowhere else.
	if _, err := f.PickHost("g0", Policy{}); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("PickHost on full fleet = %v, want ErrNoPlacement", err)
	}
	// A fresh 64 MB deploy fits nowhere either.
	if _, err := f.PickHostFor(64, Policy{}); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("PickHostFor on full fleet = %v, want ErrNoPlacement", err)
	}
	// But a 16 MB deploy still lands — on the first host in name order,
	// since all free budgets tie.
	host, err := f.PickHostFor(16, Policy{})
	if err != nil || host != "h00" {
		t.Fatalf("PickHostFor(16) = %q, %v; want h00", host, err)
	}
	// MinFreeMB headroom pushes the same request back over the edge.
	if _, err := f.PickHostFor(16, Policy{MinFreeMB: 32}); !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("PickHostFor with MinFreeMB = %v, want ErrNoPlacement", err)
	}
}

// TestPickHostAntiAffinityUnsatisfiable: anti-affinity that excludes
// every candidate host surfaces ErrNoPlacement, and relaxing it by one
// guest finds the freed host again.
func TestPickHostAntiAffinityUnsatisfiable(t *testing.T) {
	f := exhaustionFleet(t)
	for i, h := range f.HostNames() {
		if _, err := f.StartGuest(h, fmt.Sprintf("g%d", i), 64); err != nil {
			t.Fatal(err)
		}
	}
	// g0 on h00 must avoid g1 (h01) and g2 (h02): nowhere to go.
	_, err := f.PickHost("g0", Policy{AvoidGuests: []string{"g1", "g2"}})
	if !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("unsatisfiable anti-affinity = %v, want ErrNoPlacement", err)
	}
	// The guest's own name in AvoidGuests must not exclude candidates.
	host, err := f.PickHost("g0", Policy{AvoidGuests: []string{"g0", "g1"}})
	if err != nil || host != "h02" {
		t.Fatalf("self-affinity ignored: got %q, %v; want h02", host, err)
	}
	// Trusted-only plus anti-affinity against the trusted resident: the
	// two constraints together are unsatisfiable.
	_, err = f.PickHost("g0", Policy{RequireTrusted: true, AvoidGuests: []string{"g2"}})
	if !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("trusted+anti-affinity = %v, want ErrNoPlacement", err)
	}
	// Deploy-time placement honours the same anti-affinity filter.
	_, err = f.PickHostFor(16, Policy{AvoidGuests: []string{"g0", "g1", "g2"}})
	if !errors.Is(err, ErrNoPlacement) {
		t.Fatalf("PickHostFor blanket anti-affinity = %v, want ErrNoPlacement", err)
	}
}

// TestPickHostTieBreakDeterministicAcrossWorkers: with every candidate
// free-budget tied, repeated placement decisions replayed through the
// sweep runner at different worker counts produce the identical host
// sequence — the scheduler property all experiment goldens rest on.
func TestPickHostTieBreakDeterministicAcrossWorkers(t *testing.T) {
	decide := func(workers int) []string {
		out, err := runner.Map(8, runner.Options{Workers: workers}, func(i int) (string, error) {
			f, err := New(7, WithHosts(6))
			if err != nil {
				return "", err
			}
			// i guests of equal size spread by the scheduler itself, then
			// one deploy decision and one migration decision recorded.
			for g := 0; g < i; g++ {
				host, err := f.PickHostFor(64, Policy{})
				if err != nil {
					return "", err
				}
				if _, err := f.StartGuest(host, fmt.Sprintf("g%d", g), 64); err != nil {
					return "", err
				}
			}
			dep, err := f.PickHostFor(64, Policy{})
			if err != nil {
				return "", err
			}
			if i == 0 {
				return dep, nil
			}
			mig, err := f.PickHost("g0", Policy{})
			if err != nil {
				return "", err
			}
			return dep + "/" + mig, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := decide(1)
	wide := decide(8)
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("cell %d: serial %q != wide %q", i, serial[i], wide[i])
		}
	}
	// And the equal-budget tie genuinely breaks by name: an empty fleet
	// always places on the lexicographically first host.
	if serial[0] != "h00" {
		t.Fatalf("empty-fleet placement = %q, want h00", serial[0])
	}
}

// TestStartGuestRejectsCrossHostDuplicate (regression): a guest name in
// use on *another* host must be rejected with the fleet's typed
// ErrDuplicateGuest — naming the occupying host — not with whatever
// hypervisor- or fabric-level collision happens to fire first.
func TestStartGuestRejectsCrossHostDuplicate(t *testing.T) {
	f, err := New(1, WithHosts(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartGuest("h00", "web", 64); err != nil {
		t.Fatal(err)
	}
	_, err = f.StartGuest("h01", "web", 64)
	if !errors.Is(err, ErrDuplicateGuest) {
		t.Fatalf("cross-host duplicate = %v, want ErrDuplicateGuest", err)
	}
	if got := err.Error(); !contains(got, "h00") {
		t.Fatalf("duplicate error should name the occupying host: %q", got)
	}

	// Instance names that never enter the registry — migration clones —
	// also collide fleet-wide. Migrate web (clone instance web-g1 lands
	// on h01), then try to start a guest *named like the clone* on a
	// third host.
	if _, err := f.MigrateVM("web", "h01"); err != nil {
		t.Fatal(err)
	}
	_, err = f.StartGuest("h02", "web-g1", 64)
	if !errors.Is(err, ErrDuplicateGuest) {
		t.Fatalf("clone-name collision = %v, want ErrDuplicateGuest", err)
	}
	if got := err.Error(); !contains(got, "h01") {
		t.Fatalf("clone collision should name the occupying host: %q", got)
	}
}

// TestStopGuestFreesBudgetAndName: stopping a guest kills its backing
// instance, frees the host budget, and releases the name for reuse.
func TestStopGuestFreesBudgetAndName(t *testing.T) {
	f, err := New(1, WithHosts(2))
	if err != nil {
		t.Fatal(err)
	}
	free := f.FreeMemMB("h00")
	if _, err := f.StartGuest("h00", "web", 128); err != nil {
		t.Fatal(err)
	}
	if err := f.StopGuest("web"); err != nil {
		t.Fatal(err)
	}
	if got := f.FreeMemMB("h00"); got != free {
		t.Fatalf("budget not freed: %d, want %d", got, free)
	}
	if _, err := f.Lookup("web"); !errors.Is(err, ErrUnknownGuest) {
		t.Fatalf("lookup after stop = %v, want ErrUnknownGuest", err)
	}
	if err := f.StopGuest("web"); !errors.Is(err, ErrUnknownGuest) {
		t.Fatalf("double stop = %v, want ErrUnknownGuest", err)
	}
	// The name is genuinely reusable: the old instance is gone from the
	// hypervisor and the fabric.
	if _, err := f.StartGuest("h01", "web", 64); err != nil {
		t.Fatalf("restart after stop: %v", err)
	}
}

// contains avoids importing strings into a sim-facing test file for one
// helper.
func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
