// Package loadgen replays seeded tenant traffic against a control
// plane: millions of deploy/stop/migrate/snapshot/list/usage calls from
// thousands of tenants, arriving on an exponential clock in virtual
// time. Everything — op choice, tenant choice, arrival gaps, flavors —
// comes from one seeded RNG, so a run is a pure function of (plane
// seed, loadgen seed, options) and replays byte-identically.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"cloudskulk/internal/controlplane"
)

// Mix weighs the op types; weights are relative, not percentages. The
// zero Mix means DefaultMix.
type Mix struct {
	Deploy   int
	Stop     int
	Migrate  int
	Snapshot int
	List     int
	Usage    int
	// Cancel aims CancelJob at a previously accepted job. Most draws race
	// the queue — the job may already be dispatched or terminal, which the
	// plane reports as ErrJobNotCancellable — so a cancel-heavy mix is the
	// job queue's race-path stress test.
	Cancel int
}

// DefaultMix is cloud-shaped traffic: read-dominated, deploys a few
// percent, migrations rare.
var DefaultMix = Mix{Deploy: 5, Stop: 2, Migrate: 1, Snapshot: 2, List: 45, Usage: 45}

// CancelHeavyMix is impatient-tenant traffic: every fourth call yanks a
// submitted job back, racing the dispatcher for whatever is still queued.
var CancelHeavyMix = Mix{Deploy: 20, Stop: 5, Migrate: 3, Snapshot: 5, List: 22, Usage: 20, Cancel: 25}

func (m Mix) total() int {
	return m.Deploy + m.Stop + m.Migrate + m.Snapshot + m.List + m.Usage + m.Cancel
}

// Options shapes one load run.
type Options struct {
	// Tenants is how many tenant accounts Run creates (t00000…).
	Tenants int
	// Ops is the total number of API calls to issue.
	Ops int
	// Seed feeds the generator's private RNG (arrival gaps, op and
	// tenant choice, flavors).
	Seed int64
	// Mix weighs the op types (DefaultMix if zero).
	Mix Mix
	// MeanGap is the mean exponential inter-arrival gap in virtual time
	// (default 2ms).
	MeanGap time.Duration
	// Flavors lists deployable VM sizes in MB (default 4, 8, 16).
	Flavors []int64
	// Quota is applied to every tenant (controlplane.DefaultQuota when
	// zero).
	Quota controlplane.Quota
}

// Stats is a run's deterministic outcome ledger. Submission-side counts
// (Issued through OtherRejects) tally Submit results; job-side counts
// (Succeeded/Failed/Cancelled/Retries) tally terminal job states after
// the plane drains.
type Stats struct {
	Issued           int
	Mutations        int
	Reads            int
	Accepted         int
	QuotaRejects     int
	AdmissionRejects int
	OtherRejects     int

	// CancelAttempts counts CancelJob calls; CancelRaces the attempts
	// that lost the race to the dispatcher (or found nothing to cancel).
	CancelAttempts int
	CancelRaces    int

	Succeeded int
	Failed    int
	Cancelled int
	Retries   int

	// VirtualTime is the engine clock when the run went quiet.
	VirtualTime time.Duration
}

// gen is one run's mutable state.
type gen struct {
	p      *controlplane.Plane
	o      Options
	rng    *rand.Rand
	stats  Stats
	nextVM []int    // per-tenant deploy counter (names never reused)
	snaps  int      // global snapshot-name counter
	jobIDs []string // accepted job IDs, in submission order (cancel targets)
}

// Run creates o.Tenants accounts on p, issues o.Ops API calls on an
// exponential virtual-time clock, drains the plane, and returns the
// ledger. The plane must be fresh enough that tenant names t00000… are
// unclaimed.
func Run(p *controlplane.Plane, o Options) (Stats, error) {
	if o.Tenants <= 0 || o.Ops <= 0 {
		return Stats{}, fmt.Errorf("loadgen: need tenants > 0 and ops > 0, got %d/%d", o.Tenants, o.Ops)
	}
	if o.Mix == (Mix{}) {
		o.Mix = DefaultMix
	}
	if o.Mix.total() <= 0 {
		return Stats{}, fmt.Errorf("loadgen: mix weights sum to %d", o.Mix.total())
	}
	if o.MeanGap <= 0 {
		o.MeanGap = 2 * time.Millisecond
	}
	if len(o.Flavors) == 0 {
		o.Flavors = []int64{4, 8, 16}
	}
	g := &gen{
		p:      p,
		o:      o,
		rng:    rand.New(rand.NewSource(o.Seed)),
		nextVM: make([]int, o.Tenants),
	}
	for i := 0; i < o.Tenants; i++ {
		if err := p.CreateTenant(tenantName(i), o.Quota); err != nil {
			return Stats{}, err
		}
	}
	eng := p.Fleet().Engine()
	// Open-loop arrivals: timestamps accumulate from the RNG alone, so
	// tenants keep hitting the API on their own clock no matter how far
	// execution (whose costs advance the shared engine) falls behind —
	// exactly the property that lets bursts pile onto the job queue and
	// exercise admission control. The chain keeps O(1) events pending;
	// an arrival time already in the past fires at the next step.
	next := eng.Now()
	var arrive func()
	arrive = func() {
		g.issue()
		if g.stats.Issued < o.Ops {
			next += g.gap()
			eng.ScheduleAt(next, "loadgen.arrive", arrive)
		}
	}
	next += g.gap()
	eng.ScheduleAt(next, "loadgen.arrive", arrive)
	for (g.stats.Issued < o.Ops || p.Outstanding() > 0) && eng.Step() {
	}
	for _, j := range p.Jobs() {
		g.stats.Retries += j.Retries
		switch j.State {
		case controlplane.JobSucceeded:
			g.stats.Succeeded++
		case controlplane.JobFailed:
			g.stats.Failed++
		case controlplane.JobCancelled:
			g.stats.Cancelled++
		}
	}
	g.stats.VirtualTime = eng.Now()
	return g.stats, nil
}

func tenantName(i int) string { return fmt.Sprintf("t%05d", i) }

// gap draws the next exponential inter-arrival delay.
func (g *gen) gap() time.Duration {
	return time.Duration(g.rng.ExpFloat64() * float64(g.o.MeanGap))
}

// issue performs one API call: draw a tenant and an op, aim mutations
// at real VMs (a mutation drawn for a tenant with no running VM turns
// into a deploy, keeping pressure on the fleet), and tally the result.
func (g *gen) issue() {
	g.stats.Issued++
	ti := g.rng.Intn(g.o.Tenants)
	ten := tenantName(ti)
	w := g.rng.Intn(g.o.Mix.total())
	m := g.o.Mix
	switch {
	case w < m.Deploy:
		g.deploy(ti, ten)
	case w < m.Deploy+m.Stop:
		g.mutate(ti, ten, controlplane.OpStop)
	case w < m.Deploy+m.Stop+m.Migrate:
		g.mutate(ti, ten, controlplane.OpMigrate)
	case w < m.Deploy+m.Stop+m.Migrate+m.Snapshot:
		g.mutate(ti, ten, controlplane.OpSnapshot)
	case w < m.Deploy+m.Stop+m.Migrate+m.Snapshot+m.List:
		g.stats.Reads++
		_, _ = g.p.ListVMs(ten)
	case w < m.Deploy+m.Stop+m.Migrate+m.Snapshot+m.List+m.Cancel:
		g.cancel()
	default:
		g.stats.Reads++
		_, _ = g.p.TenantUsage(ten)
	}
}

// deploy submits a fresh-named deploy for tenant index ti.
func (g *gen) deploy(ti int, ten string) {
	vm := fmt.Sprintf("v%04d", g.nextVM[ti])
	g.nextVM[ti]++
	flavor := g.o.Flavors[g.rng.Intn(len(g.o.Flavors))]
	g.submit(controlplane.Request{Op: controlplane.OpDeploy, Tenant: ten, VM: vm, MemMB: flavor})
}

// mutate aims op at one of the tenant's running VMs, falling back to a
// deploy when it has none.
func (g *gen) mutate(ti int, ten string, op controlplane.Op) {
	vms, err := g.p.ListVMs(ten)
	if err != nil {
		g.stats.Mutations++
		g.stats.OtherRejects++
		return
	}
	running := vms[:0]
	for _, v := range vms {
		if v.State == "running" {
			running = append(running, v)
		}
	}
	if len(running) == 0 {
		g.deploy(ti, ten)
		return
	}
	req := controlplane.Request{Op: op, Tenant: ten, VM: running[g.rng.Intn(len(running))].Name}
	if op == controlplane.OpSnapshot {
		g.snaps++
		req.Target = fmt.Sprintf("s%08d", g.snaps)
	}
	g.submit(req)
}

// cancel aims CancelJob at a random previously accepted job. The draw
// deliberately spans the job's whole history, so most attempts lose the
// race — already dispatched, already terminal — and only a job still
// sitting in the queue actually dies. Both outcomes are tallied; neither
// is an error.
func (g *gen) cancel() {
	g.stats.CancelAttempts++
	if len(g.jobIDs) == 0 {
		g.stats.CancelRaces++
		return
	}
	id := g.jobIDs[g.rng.Intn(len(g.jobIDs))]
	if err := g.p.CancelJob(id); err != nil {
		g.stats.CancelRaces++
	}
}

// submit issues one mutation and classifies the outcome.
func (g *gen) submit(req controlplane.Request) {
	g.stats.Mutations++
	job, err := g.p.Submit(req)
	switch {
	case err == nil:
		g.stats.Accepted++
		g.jobIDs = append(g.jobIDs, job.ID)
	case errors.Is(err, controlplane.ErrAdmission):
		g.stats.AdmissionRejects++
	case errors.Is(err, controlplane.ErrQuotaVMs),
		errors.Is(err, controlplane.ErrQuotaMemory),
		errors.Is(err, controlplane.ErrQuotaJobs):
		g.stats.QuotaRejects++
	default:
		g.stats.OtherRejects++
	}
}
