package loadgen

import (
	"fmt"
	"testing"
	"time"

	"cloudskulk/internal/controlplane"
	"cloudskulk/internal/fleet"
	"cloudskulk/internal/runner"
)

func newPlane(t *testing.T, seed int64) *controlplane.Plane {
	t.Helper()
	f, err := fleet.New(seed, fleet.WithHosts(4))
	if err != nil {
		t.Fatal(err)
	}
	return controlplane.New(f, controlplane.Config{MaxQueue: 32, Slots: 4})
}

// TestRunLedgerConsistency: a modest run's ledger adds up — every op is
// accounted once, every accepted mutation reaches a terminal state, and
// the fleet ends consistent with the plane's view.
func TestRunLedgerConsistency(t *testing.T) {
	p := newPlane(t, 3)
	stats, err := Run(p, Options{Tenants: 20, Ops: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Issued != 2000 {
		t.Fatalf("issued = %d", stats.Issued)
	}
	if stats.Mutations+stats.Reads+stats.CancelAttempts != stats.Issued {
		t.Fatalf("mutations %d + reads %d + cancels %d != issued %d",
			stats.Mutations, stats.Reads, stats.CancelAttempts, stats.Issued)
	}
	if got := stats.Accepted + stats.QuotaRejects + stats.AdmissionRejects + stats.OtherRejects; got != stats.Mutations {
		t.Fatalf("submit outcomes %d != mutations %d", got, stats.Mutations)
	}
	if stats.Succeeded+stats.Failed+stats.Cancelled != stats.Accepted {
		t.Fatalf("terminal jobs %d+%d+%d != accepted %d",
			stats.Succeeded, stats.Failed, stats.Cancelled, stats.Accepted)
	}
	if stats.Accepted == 0 || stats.Reads == 0 {
		t.Fatalf("degenerate run: %+v", stats)
	}
	if p.Outstanding() != 0 {
		t.Fatalf("plane not drained: %d outstanding", p.Outstanding())
	}
	if stats.VirtualTime <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	// Plane and fleet agree on the surviving population.
	total := 0
	for _, ten := range p.Tenants() {
		vms, err := p.ListVMs(ten)
		if err != nil {
			t.Fatal(err)
		}
		total += len(vms)
	}
	if got := len(p.Fleet().GuestNames()); got != total {
		t.Fatalf("fleet has %d guests, plane records %d VMs", got, total)
	}
}

// TestRunDeterminism: identical (plane seed, loadgen options) replay to
// identical ledgers and identical final fleet population.
func TestRunDeterminism(t *testing.T) {
	run := func() (Stats, string) {
		p := newPlane(t, 11)
		stats, err := Run(p, Options{Tenants: 10, Ops: 800, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		pop := ""
		for _, g := range p.Fleet().GuestNames() {
			info, err := p.Fleet().Lookup(g)
			if err != nil {
				t.Fatal(err)
			}
			pop += fmt.Sprintf("%s@%s ", g, info.Host)
		}
		return stats, pop
	}
	s1, pop1 := run()
	s2, pop2 := run()
	if s1 != s2 {
		t.Fatalf("ledgers diverged:\n%+v\n%+v", s1, s2)
	}
	if pop1 != pop2 {
		t.Fatalf("populations diverged:\n%s\n%s", pop1, pop2)
	}
}

// TestSeedSensitivity: a different loadgen seed produces a different
// (but still internally consistent) run.
func TestSeedSensitivity(t *testing.T) {
	a, err := Run(newPlane(t, 11), Options{Tenants: 10, Ops: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(newPlane(t, 11), Options{Tenants: 10, Ops: 800, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different seeds produced identical ledgers")
	}
}

// TestQuotaPressure: a one-VM quota forces the generator into quota
// rejects rather than unbounded growth.
func TestQuotaPressure(t *testing.T) {
	p := newPlane(t, 2)
	stats, err := Run(p, Options{
		Tenants: 4, Ops: 600, Seed: 9,
		Quota: controlplane.Quota{MaxVMs: 1, MaxMemMB: 16, MaxJobs: 2},
		Mix:   Mix{Deploy: 50, Stop: 10, List: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuotaRejects == 0 {
		t.Fatalf("no quota rejects under a 1-VM quota: %+v", stats)
	}
	for _, ten := range p.Tenants() {
		u, err := p.TenantUsage(ten)
		if err != nil {
			t.Fatal(err)
		}
		if u.VMs > 1 {
			t.Fatalf("%s exceeded quota: %+v", ten, u)
		}
	}
}

// TestAdmissionPressure: a tiny queue and long dispatch latency shed
// load with admission rejects.
func TestAdmissionPressure(t *testing.T) {
	f, err := fleet.New(2, fleet.WithHosts(2))
	if err != nil {
		t.Fatal(err)
	}
	p := controlplane.New(f, controlplane.Config{
		MaxQueue: 2, Slots: 1, DispatchLatency: 50 * time.Millisecond,
	})
	stats, err := Run(p, Options{
		Tenants: 4, Ops: 400, Seed: 1, MeanGap: time.Millisecond,
		Mix: Mix{Deploy: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.AdmissionRejects == 0 {
		t.Fatalf("no admission rejects under a saturating deploy storm: %+v", stats)
	}
}

// TestCancelHeavyLedger: under CancelHeavyMix some queued jobs actually
// die, most cancel draws lose the race to the dispatcher, and the ledger
// still adds up exactly.
func TestCancelHeavyLedger(t *testing.T) {
	f, err := fleet.New(5, fleet.WithHosts(4))
	if err != nil {
		t.Fatal(err)
	}
	p := controlplane.New(f, controlplane.Config{
		MaxQueue: 16, Slots: 2, DispatchLatency: 5 * time.Millisecond,
	})
	stats, err := Run(p, Options{Tenants: 12, Ops: 3000, Seed: 5, Mix: CancelHeavyMix, MeanGap: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CancelAttempts == 0 || stats.Cancelled == 0 {
		t.Fatalf("cancel-heavy mix produced no cancellations: %+v", stats)
	}
	if stats.CancelRaces == 0 {
		t.Fatalf("every cancel draw won the race — the draw is not racing the queue: %+v", stats)
	}
	if stats.Mutations+stats.Reads+stats.CancelAttempts != stats.Issued {
		t.Fatalf("issued %d not fully accounted: %+v", stats.Issued, stats)
	}
	if stats.Succeeded+stats.Failed+stats.Cancelled != stats.Accepted {
		t.Fatalf("terminal jobs %d+%d+%d != accepted %d",
			stats.Succeeded, stats.Failed, stats.Cancelled, stats.Accepted)
	}
}

// TestCancelRacesDeterministicAcrossWorkers: cancel-heavy cells replay
// byte-identically whether the sweep runs serially or on 8 workers — the
// CancelJob race is a virtual-time race, decided by the seed, not by
// host-side scheduling.
func TestCancelRacesDeterministicAcrossWorkers(t *testing.T) {
	sweep := func(workers int) []Stats {
		out, err := runner.Map(6, runner.Options{Workers: workers}, func(i int) (Stats, error) {
			f, err := fleet.New(int64(i+1), fleet.WithHosts(4))
			if err != nil {
				return Stats{}, err
			}
			p := controlplane.New(f, controlplane.Config{
				MaxQueue: 8, Slots: 2, DispatchLatency: 5 * time.Millisecond,
			})
			return Run(p, Options{
				Tenants: 8, Ops: 1200, Seed: int64(100 + i),
				Mix: CancelHeavyMix, MeanGap: time.Millisecond,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, wide := sweep(1), sweep(8)
	cancelled := 0
	for i := range serial {
		if serial[i] != wide[i] {
			t.Errorf("cell %d diverged across worker counts:\nworkers=1: %+v\nworkers=8: %+v",
				i, serial[i], wide[i])
		}
		cancelled += serial[i].Cancelled
	}
	if cancelled == 0 {
		t.Error("no cell cancelled anything — the race path went unexercised")
	}
}

// TestOptionValidation: nonsense options fail fast.
func TestOptionValidation(t *testing.T) {
	p := newPlane(t, 1)
	if _, err := Run(p, Options{Tenants: 0, Ops: 10}); err == nil {
		t.Fatal("zero tenants accepted")
	}
	if _, err := Run(p, Options{Tenants: 1, Ops: 0}); err == nil {
		t.Fatal("zero ops accepted")
	}
	if _, err := Run(p, Options{Tenants: 1, Ops: 1, Mix: Mix{Deploy: -5, Stop: 5}}); err == nil {
		t.Fatal("degenerate mix accepted")
	}
}
