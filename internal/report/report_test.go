package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "TABLE X",
		Headers: []string{"Config", "value"},
	}
	tbl.AddRow("L0", "1.00")
	tbl.AddRow("L1-long-label", "2.00")
	out := tbl.Render()
	if !strings.HasPrefix(out, "TABLE X\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All data lines align: same column start for second column.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[2:] {
		if len(ln) < idx {
			t.Fatalf("short line %q", ln)
		}
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("no separator: %q", lines[2])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := Table{Headers: []string{"a"}}
	tbl.AddRow("1", "2", "3")
	out := tbl.Render()
	if !strings.Contains(out, "3") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
}

func TestBarChartLinear(t *testing.T) {
	c := BarChart{Title: "Fig", Unit: "s", Width: 20}
	c.Add("L0", 10, "")
	c.Add("L1", 20, "+100.0%")
	out := c.Render()
	if !strings.Contains(out, "Fig (s)") {
		t.Fatalf("title:\n%s", out)
	}
	l0bars := strings.Count(strings.Split(out, "\n")[1], "#")
	l1bars := strings.Count(strings.Split(out, "\n")[2], "#")
	if l1bars != 20 || l0bars != 10 {
		t.Fatalf("bars = %d/%d:\n%s", l0bars, l1bars, out)
	}
	if !strings.Contains(out, "[+100.0%]") {
		t.Fatalf("note missing:\n%s", out)
	}
}

func TestBarChartLogCompressesRange(t *testing.T) {
	c := BarChart{Log: true, Width: 40}
	c.Add("small", 1, "")
	c.Add("big", 1000, "")
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	small := strings.Count(lines[0], "#")
	big := strings.Count(lines[1], "#")
	if big != 40 {
		t.Fatalf("max bar = %d", big)
	}
	// On a linear scale 1/1000 would render one char; log gives it a
	// visible fraction.
	if small < 3 {
		t.Fatalf("log scale did not lift small bar: %d", small)
	}
}

func TestBarChartZeroValue(t *testing.T) {
	c := BarChart{Width: 10}
	c.Add("zero", 0, "")
	out := c.Render()
	if strings.Count(out, "#") != 0 {
		t.Fatalf("zero bar rendered:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(25.7); got != "+25.7%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(-8.9); got != "-8.9%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestComma(t *testing.T) {
	cases := map[int64]string{
		0:       "0",
		999:     "999",
		1000:    "1,000",
		126418:  "126,418",
		-280884: "-280,884",
	}
	for n, want := range cases {
		if got := Comma(n); got != want {
			t.Fatalf("Comma(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFloatFormats(t *testing.T) {
	if F2(3.456) != "3.46" || F3(3.4567) != "3.457" {
		t.Fatal("float formats")
	}
}

// TestTableRenderGolden pins the renderer's exact byte output: column
// widths come from the widest cell (header or data), columns are separated
// by exactly two spaces, and the separator row matches each column's
// width. Any formatting change must update this golden deliberately,
// because downstream determinism tests compare rendered artefacts
// byte-for-byte.
func TestTableRenderGolden(t *testing.T) {
	tbl := Table{
		Title:   "TABLE II",
		Headers: []string{"Op", "L0", "L2"},
	}
	tbl.AddRow("syscall", "0.04", "1.22")
	tbl.AddRow("fork+exit", "99.00", "3252.00")
	golden := "" +
		"TABLE II\n" +
		"Op         L0     L2     \n" +
		"---------  -----  -------\n" +
		"syscall    0.04   1.22   \n" +
		"fork+exit  99.00  3252.00\n"
	if got := tbl.Render(); got != golden {
		t.Fatalf("golden mismatch:\n-- got --\n%q\n-- want --\n%q", got, golden)
	}
}

// TestTableAlignmentMultiDigit: when a data cell outgrows its header
// (multi-digit counters vs a short header), every column still starts at
// one fixed offset on every line — the widest value wins the width.
func TestTableAlignmentMultiDigit(t *testing.T) {
	tbl := Table{Headers: []string{"n", "pages"}}
	tbl.AddRow("1", "7")
	tbl.AddRow("10", "4096")
	tbl.AddRow("100000", "1048576")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Column 2 must start at the same offset everywhere: after the
	// widest first cell ("100000", 6 chars) plus the 2-space gap.
	wantIdx := len("100000") + 2
	for i, ln := range lines {
		if len(ln) < wantIdx {
			t.Fatalf("line %d shorter than column offset: %q", i, ln)
		}
		if i >= 2 {
			if cell2 := strings.TrimRight(ln[wantIdx:], " "); cell2 != tbl.Rows[i-2][1] {
				t.Errorf("line %d: second column misaligned, got %q from %q", i, cell2, ln)
			}
		}
	}
	if !strings.HasPrefix(lines[1], strings.Repeat("-", len("100000"))) {
		t.Errorf("separator not sized to widest cell: %q", lines[1])
	}
}
