// Package report renders experiment output as aligned ASCII tables and
// bar charts, the textual analogues of the paper's tables and figures.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	ncols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, ncols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Bar is one bar of a chart.
type Bar struct {
	Label string
	Value float64
	// Note is appended after the value (e.g. "+25.7% vs L1", "rsd 4%").
	Note string
}

// BarChart renders labelled horizontal bars, optionally on a log10 scale —
// the paper's Figs. 2-6 all use log or wide-range axes.
type BarChart struct {
	Title string
	Unit  string
	Log   bool
	Width int // bar column width in characters (default 40)
	Bars  []Bar
}

// Add appends a bar.
func (c *BarChart) Add(label string, value float64, note string) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value, Note: note})
}

// Render returns the chart as text.
func (c *BarChart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s", c.Title)
		if c.Unit != "" {
			fmt.Fprintf(&b, " (%s", c.Unit)
			if c.Log {
				b.WriteString(", log scale")
			}
			b.WriteString(")")
		}
		b.WriteString("\n")
	}
	labelW, maxV, minV := 0, 0.0, math.Inf(1)
	for _, bar := range c.Bars {
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
		if bar.Value > maxV {
			maxV = bar.Value
		}
		if bar.Value < minV && bar.Value > 0 {
			minV = bar.Value
		}
	}
	scale := func(v float64) int {
		if v <= 0 || maxV <= 0 {
			return 0
		}
		if c.Log {
			lo := math.Log10(minV) - 0.5
			hi := math.Log10(maxV)
			if hi <= lo {
				return width
			}
			return int(float64(width) * (math.Log10(v) - lo) / (hi - lo))
		}
		return int(float64(width) * v / maxV)
	}
	for _, bar := range c.Bars {
		n := scale(bar.Value)
		if n < 1 && bar.Value > 0 {
			n = 1
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "%-*s |%-*s| %.4g", labelW, bar.Label, width, strings.Repeat("#", n), bar.Value)
		if c.Unit != "" {
			fmt.Fprintf(&b, " %s", c.Unit)
		}
		if bar.Note != "" {
			fmt.Fprintf(&b, "  [%s]", bar.Note)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Pct formats a percent-change label the way the paper's figures do.
func Pct(v float64) string {
	return fmt.Sprintf("%+.1f%%", v)
}

// F2 formats a float with two decimals (the paper's table style).
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F3 formats a float with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Comma formats an integer with thousands separators, the Table IV style.
func Comma(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
