package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"
)

func sha(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// matrixGoldenHashes pins SHA-256 of the full coverage-matrix artefact
// (every registered backend × 5 generated strategies × 3 detectors) per
// seed. The test also requires the artefact to be byte-identical for any
// worker count, so one hash covers both.
var matrixGoldenHashes = map[string]string{
	"armsrace-matrix/seed=1": "b85dcb0f2f73f815ee3d2ef355f17abddf06df7f2eee7a14bb25db8cf350ebac",
	"armsrace-matrix/seed=7": "b59b7db0d980500fc9bc4af8e4c7e02bc34ff897c85337b009dd453592cb9d54",
}

func testMatrixConfig(seed int64, workers int) MatrixConfig {
	return MatrixConfig{Seed: seed, GuestMemMB: 16, Workers: workers}
}

// TestMatrixGolden: the coverage matrix renders byte-identically at
// workers 1 and 8, hashes to its pinned value per seed, and demonstrates
// the arms race — at least one generated strategy evades the KSM-timing
// detector yet is caught by the invariant-checksum audit.
func TestMatrixGolden(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		serial, err := RunMatrix(testMatrixConfig(seed, 1))
		if err != nil {
			t.Fatal(err)
		}
		wide, err := RunMatrix(testMatrixConfig(seed, 8))
		if err != nil {
			t.Fatal(err)
		}
		art := serial.Render()
		if wideArt := wide.Render(); wideArt != art {
			t.Errorf("seed %d: workers=8 artefact differs from workers=1 (output depends on worker count)", seed)
		}

		name := "armsrace-matrix/seed=" + map[int64]string{1: "1", 7: "7"}[seed]
		h := sha(art)
		want, pinned := matrixGoldenHashes[name]
		switch {
		case !pinned:
			t.Errorf("artefact %q missing from matrixGoldenHashes", name)
		case want == "":
			t.Logf("CAPTURE %q: %q,", name, h)
		case h != want:
			t.Errorf("artefact %s hash = %s, want %s", name, h, want)
		}

		if pairs := serial.EvasionPairs(); pairs < 1 {
			t.Errorf("seed %d: no dedup-evading strategy caught by invariant-checksum\n%s", seed, art)
		}
	}
	for name, want := range matrixGoldenHashes {
		if want == "" {
			t.Errorf("golden hash for %s not captured — run with -v and paste the CAPTURE lines", name)
		}
	}
}

// TestMatrixCoversRegisteredBackends: the default sweep spans every
// registered backend, including the WHP profile, and every cell carries a
// well-formed strategy wire form.
func TestMatrixCoversRegisteredBackends(t *testing.T) {
	res, err := RunMatrix(MatrixConfig{Seed: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	byBackend := map[string]int{}
	for _, c := range res.Cells {
		byBackend[c.Backend]++
		if _, err := Parse(c.Strategy); err != nil {
			t.Fatalf("cell strategy %q does not parse: %v", c.Strategy, err)
		}
	}
	for _, b := range []string{"kvm-i7-4790", "kvm-epyc-7702", "xen-haswell", "hvf-m2", "whp-skylake"} {
		if byBackend[b] != len(res.Specs)*len(res.Detectors) {
			t.Errorf("backend %s has %d cells, want %d", b, byBackend[b], len(res.Specs)*len(res.Detectors))
		}
	}
}

// TestMatrixDetectorBlindSpots: the roster's complementary coverage on the
// default backend — baseline impersonation beats the invariant audit but
// not dedup timing; shared-all churn beats dedup timing but not the
// invariant audit; a quiet shaped install beats exit-skew.
func TestMatrixDetectorBlindSpots(t *testing.T) {
	res, err := RunMatrix(MatrixConfig{Seed: 1, Backends: []string{"kvm-i7-4790"}, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	caught := map[string]map[string]bool{} // kind -> detector -> caught
	for _, c := range res.Cells {
		s, err := Parse(c.Strategy)
		if err != nil {
			t.Fatal(err)
		}
		k := s.Kind.String()
		if caught[k] == nil {
			caught[k] = map[string]bool{}
		}
		if c.Caught {
			caught[k][c.Detector] = true
		}
	}
	if !caught["baseline"][DetDedupTiming] {
		t.Error("dedup timing missed the baseline attack")
	}
	if caught["baseline"][DetInvariantChecksum] {
		t.Error("invariant audit flagged a static impersonation (false positive path)")
	}
	if caught["evade-ksm"][DetDedupTiming] {
		t.Error("dedup timing caught the shared-all churn strategy (evasion failed)")
	}
	if !caught["evade-ksm"][DetInvariantChecksum] {
		t.Error("invariant audit missed the churn strategy")
	}
	if caught["shape-dirty"][DetExitSkew] {
		t.Error("exit-skew flagged a quiet shaped install (below the evidence floor)")
	}
	if !caught["nest-deep"][DetExitSkew] {
		t.Error("exit-skew missed the L3 stack's amplified exits")
	}
}

// TestWorldReplay: one (seed, spec) pair replays to the identical world
// outcome — same attacker writes, same gated-page residue, same verdicts.
func TestWorldReplay(t *testing.T) {
	spec := Spec{Kind: KindEvadeKSM, Install: 250 * time.Millisecond,
		Churn: 40 * time.Millisecond, Scope: ScopeSharedAll, Ops: 4000, Depth: 2}
	run := func() (uint64, int) {
		w, err := newWorld(99, "kvm-i7-4790", 16, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Execute(); err != nil {
			t.Fatal(err)
		}
		w.Cloud.Eng.RunFor(2 * time.Second)
		w.StopChurn()
		return w.AttackWrites(), w.GatedPages()
	}
	w1, g1 := run()
	w2, g2 := run()
	if w1 != w2 || g1 != g2 {
		t.Fatalf("replay diverged: writes %d vs %d, gated %d vs %d", w1, w2, g1, g2)
	}
	if w1 == 0 {
		t.Fatal("churn strategy wrote nothing")
	}
}
