package scenario

import (
	"strings"
	"testing"
)

// FuzzStrategySpec throws arbitrary wire forms at the spec parser. The
// invariants: Parse never panics; anything it accepts re-renders to a
// canonical form that parses back to the identical Spec (replay
// determinism — the wire form IS the strategy); and every accepted spec
// validates.
func FuzzStrategySpec(f *testing.F) {
	for _, s := range Generate(1, 8) {
		f.Add(s.Render())
	}
	f.Add("kind=baseline")
	f.Add("kind=evade-ksm churn=80ms scope=shared-kernel")
	f.Add("kind=nest-deep depth=3 ops=8000")
	f.Add("kind=baseline install=1s install=2s")
	f.Add("kind=\x00 ops=9999999999999999999")
	f.Add(strings.Repeat("kind=baseline ", 100))
	f.Fuzz(func(t *testing.T, wire string) {
		s, err := Parse(wire)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid spec: %v", wire, verr)
		}
		canon := s.Render()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not parse: %v", canon, wire, err)
		}
		if s2 != s {
			t.Fatalf("replay mismatch: %q -> %+v, canonical %q -> %+v", wire, s, canon, s2)
		}
		if s2.Render() != canon {
			t.Fatalf("canonical form not a fixed point: %q vs %q", s2.Render(), canon)
		}
	})
}
