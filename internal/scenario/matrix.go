package scenario

import (
	"fmt"
	"strings"
	"time"

	"cloudskulk/internal/hv"
	"cloudskulk/internal/report"
	"cloudskulk/internal/runner"
)

// MatrixConfig parameterizes one arms-race sweep.
type MatrixConfig struct {
	// Seed drives strategy generation and every cell's testbed.
	Seed int64
	// Strategies is how many specs Generate draws (default 5 — every kind
	// once plus one random redraw).
	Strategies int
	// Backends lists the hypervisor cost profiles to sweep; empty means
	// every registered backend.
	Backends []string
	// GuestMemMB sizes each cell's victim (default 16 — big enough for
	// the full memory layout, small enough to sweep the cross product).
	GuestMemMB int64
	// DetectPages is the dedup probe-file size.
	DetectPages int
	// KSMWait is the dedup protocol's scan wait.
	KSMWait time.Duration
	// AuditEvery / MaxAudits pace the invariant-checksum audit loop.
	AuditEvery time.Duration
	MaxAudits  int
	// SettleTime runs the world between attack and scan, letting churn
	// tickers and ksmd interleave before any detector looks.
	SettleTime time.Duration
	// Workers bounds the cell pool; the artefact is byte-identical for
	// any value.
	Workers int
	// OnProgress, when non-nil, receives per-cell completion updates.
	OnProgress func(runner.Progress)
}

func (c MatrixConfig) withDefaults() MatrixConfig {
	if c.Strategies <= 0 {
		c.Strategies = 5
	}
	if len(c.Backends) == 0 {
		c.Backends = hv.Names()
	}
	if c.GuestMemMB <= 0 {
		c.GuestMemMB = 16
	}
	if c.DetectPages <= 0 {
		c.DetectPages = 24
	}
	if c.KSMWait <= 0 {
		c.KSMWait = 2 * time.Second
	}
	if c.AuditEvery <= 0 {
		c.AuditEvery = time.Second
	}
	if c.MaxAudits <= 0 {
		c.MaxAudits = 4
	}
	if c.SettleTime <= 0 {
		c.SettleTime = 2 * time.Second
	}
	return c
}

// Cell is one strategy × detector × backend outcome.
type Cell struct {
	Backend  string
	Strategy string // the spec's wire form
	Detector string

	Caught       bool
	Detail       string
	TimeToDetect time.Duration
	Overhead     time.Duration

	// AtkWrites is the attacker's page-write cost over the run; GatedPages
	// is how many RITM pages ended behind ksmd's volatility gate — the
	// scanner-side residue of churn evasion.
	AtkWrites  uint64
	GatedPages int
}

// MatrixResult is a full sweep: the generated strategies and every cell,
// in deterministic (backend, strategy, detector) order.
type MatrixResult struct {
	Seed      int64
	Backends  []string
	Specs     []Spec
	Detectors []string
	Cells     []Cell
}

// cellSeed derives a cell's world seed from the sweep seed and the cell
// label, so every cell is independent and stable under roster growth.
func cellSeed(root int64, label string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return root*1_000_003 + int64(h%997)
}

// RunMatrix plays every generated strategy against every roster detector on
// every backend. Cells run on the worker pool; each owns a private seeded
// world, so the result — and its rendered artefact — is byte-identical for
// any worker count.
func RunMatrix(cfg MatrixConfig) (*MatrixResult, error) {
	cfg = cfg.withDefaults()
	specs := Generate(cfg.Seed, cfg.Strategies)
	dets := RosterNames()
	n := len(cfg.Backends) * len(specs) * len(dets)

	cells, err := runner.Map(n, runner.Options{Workers: cfg.Workers, OnProgress: cfg.OnProgress},
		func(i int) (Cell, error) {
			di := i % len(dets)
			si := (i / len(dets)) % len(specs)
			bi := i / (len(dets) * len(specs))
			backend, spec, detName := cfg.Backends[bi], specs[si], dets[di]
			label := fmt.Sprintf("%s/%s/%s", backend, spec.Render(), detName)

			w, err := newWorld(cellSeed(cfg.Seed, label), backend, cfg.GuestMemMB, spec)
			if err != nil {
				return Cell{}, fmt.Errorf("cell %s: %w", label, err)
			}
			det, err := newDetector(detName, cfg)
			if err != nil {
				return Cell{}, err
			}
			if err := det.Arm(w); err != nil {
				return Cell{}, fmt.Errorf("cell %s: arm: %w", label, err)
			}
			if err := w.Execute(); err != nil {
				return Cell{}, fmt.Errorf("cell %s: %w", label, err)
			}
			w.Cloud.Eng.RunFor(cfg.SettleTime)
			out, err := det.Scan(w)
			w.StopChurn()
			if err != nil {
				return Cell{}, fmt.Errorf("cell %s: scan: %w", label, err)
			}
			return Cell{
				Backend:      backend,
				Strategy:     spec.Render(),
				Detector:     detName,
				Caught:       out.Caught,
				Detail:       out.Detail,
				TimeToDetect: out.TimeToDetect,
				Overhead:     out.Overhead,
				AtkWrites:    w.AttackWrites(),
				GatedPages:   w.GatedPages(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &MatrixResult{
		Seed:      cfg.Seed,
		Backends:  cfg.Backends,
		Specs:     specs,
		Detectors: dets,
		Cells:     cells,
	}, nil
}

// cellAt returns the cell for a (backend, spec, detector) index triple.
func (r *MatrixResult) cellAt(bi, si, di int) Cell {
	return r.Cells[(bi*len(r.Specs)+si)*len(r.Detectors)+di]
}

// Render emits the coverage-matrix artefact: the full table, per-detector
// coverage, and the arms-race punchline — which dedup-evading strategies
// the invariant-checksum audit still catches.
func (r *MatrixResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Arms-race coverage matrix (seed=%d)\n", r.Seed)
	fmt.Fprintf(&b, "strategies=%d detectors=%d backends=%d cells=%d\n\n",
		len(r.Specs), len(r.Detectors), len(r.Backends), len(r.Cells))

	for i, s := range r.Specs {
		fmt.Fprintf(&b, "S%d: %s\n", i, s.Render())
	}
	b.WriteString("\n")

	tab := report.Table{
		Title:   "strategy x detector x backend",
		Headers: []string{"backend", "strategy", "detector", "caught", "ttd", "overhead", "atk-writes", "gated"},
	}
	for bi := range r.Backends {
		for si := range r.Specs {
			for di := range r.Detectors {
				c := r.cellAt(bi, si, di)
				caught, ttd := "miss", "-"
				if c.Caught {
					caught, ttd = "CAUGHT", c.TimeToDetect.String()
				}
				tab.AddRow(c.Backend, fmt.Sprintf("S%d:%s", si, r.Specs[si].Kind),
					c.Detector, caught, ttd, c.Overhead.String(),
					report.Comma(int64(c.AtkWrites)), report.Comma(int64(c.GatedPages)))
			}
		}
	}
	b.WriteString(tab.Render())
	b.WriteString("\n")

	b.WriteString("Coverage by detector:\n")
	for di, name := range r.Detectors {
		caught := 0
		for bi := range r.Backends {
			for si := range r.Specs {
				if r.cellAt(bi, si, di).Caught {
					caught++
				}
			}
		}
		total := len(r.Backends) * len(r.Specs)
		fmt.Fprintf(&b, "  %-20s %d/%d\n", name, caught, total)
	}

	b.WriteString("\nDedup-evading strategies caught by invariant-checksum:\n")
	dedupIdx, invIdx := -1, -1
	for di, name := range r.Detectors {
		switch name {
		case DetDedupTiming:
			dedupIdx = di
		case DetInvariantChecksum:
			invIdx = di
		}
	}
	pairs := 0
	for bi, backend := range r.Backends {
		for si := range r.Specs {
			if dedupIdx < 0 || invIdx < 0 {
				continue
			}
			if !r.cellAt(bi, si, dedupIdx).Caught && r.cellAt(bi, si, invIdx).Caught {
				fmt.Fprintf(&b, "  %s S%d: %s\n", backend, si, r.Specs[si].Render())
				pairs++
			}
		}
	}
	if pairs == 0 {
		b.WriteString("  (none)\n")
	}
	return b.String()
}

// EvasionPairs counts (backend, strategy) cells the dedup-timing detector
// missed but the invariant-checksum detector caught — the matrix's
// demonstration that the roster covers each member's blind spot.
func (r *MatrixResult) EvasionPairs() int {
	dedupIdx, invIdx := -1, -1
	for di, name := range r.Detectors {
		switch name {
		case DetDedupTiming:
			dedupIdx = di
		case DetInvariantChecksum:
			invIdx = di
		}
	}
	if dedupIdx < 0 || invIdx < 0 {
		return 0
	}
	n := 0
	for bi := range r.Backends {
		for si := range r.Specs {
			if !r.cellAt(bi, si, dedupIdx).Caught && r.cellAt(bi, si, invIdx).Caught {
				n++
			}
		}
	}
	return n
}
