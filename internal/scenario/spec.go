// Package scenario is the adversarial arms-race engine: generated attacker
// strategies played against a roster of detectors across every hypervisor
// backend, scored into a deterministic coverage matrix.
//
// An attacker strategy is a first-class value (Spec) drawn from a seeded
// strategy space: migration-timed CloudSkulk installs, KSM-aware
// page-content evasion (re-dirtying shared-candidate pages so dedup never
// finds a merge partner), dirty-rate shaping (hiding the install inside
// migration noise while keeping the captive guest quiet), and deeper
// nesting (an L3 stack behind an attacker shell VM). Every strategy is
// replayable from its (seed, spec) pair. Detectors sit behind one Detector
// interface; RunMatrix runs the full strategy × detector × backend cross
// product on the runner worker pool and the resulting artefact is
// byte-identical for any worker count. See DESIGN.md §15.
package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrBadSpec wraps every strategy-spec parse/validation failure.
var ErrBadSpec = errors.New("scenario: bad strategy spec")

// Kind is the strategy archetype.
type Kind int

// Strategy kinds.
const (
	// KindBaseline is the paper's attack as-is: a migration-timed
	// CloudSkulk install with static kernel/image impersonation.
	KindBaseline Kind = iota + 1
	// KindEvadeKSM is baseline plus KSM-aware content evasion: the
	// attacker keeps re-dirtying the RITM's shared-candidate pages
	// (kernel mirror, image mirror, push mirror) so they never hold a
	// stable merge partner for the detector's probe.
	KindEvadeKSM
	// KindShapeDirty is baseline with the install hidden inside migration
	// noise: the attacker drives a benign-looking dirty-page load during
	// the install window and keeps the captive guest's exit-generating
	// work low afterwards.
	KindShapeDirty
	// KindNestDeep is baseline plus one more layer: the attacker re-homes
	// the captive guest behind an attacker shell VM, pushing it to L3.
	KindNestDeep
)

var kindNames = map[Kind]string{
	KindBaseline:   "baseline",
	KindEvadeKSM:   "evade-ksm",
	KindShapeDirty: "shape-dirty",
	KindNestDeep:   "nest-deep",
}

// Kinds lists every strategy kind in generation order.
var Kinds = []Kind{KindBaseline, KindEvadeKSM, KindShapeDirty, KindNestDeep}

var kindByName = map[string]Kind{
	"baseline":    KindBaseline,
	"evade-ksm":   KindEvadeKSM,
	"shape-dirty": KindShapeDirty,
	"nest-deep":   KindNestDeep,
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Scope selects which of the RITM's shared-candidate regions an evasion
// strategy churns.
type Scope int

// Churn scopes.
const (
	// ScopeNone: no churn (every non-evasion strategy).
	ScopeNone Scope = iota
	// ScopeSharedKernel churns the RITM's kernel-image mirror.
	ScopeSharedKernel
	// ScopeSharedImage churns the RITM's vendor-image and push mirrors.
	ScopeSharedImage
	// ScopeSharedAll churns every shared-candidate region.
	ScopeSharedAll
)

var scopeNames = map[Scope]string{
	ScopeNone:         "none",
	ScopeSharedKernel: "shared-kernel",
	ScopeSharedImage:  "shared-image",
	ScopeSharedAll:    "shared-all",
}

var scopeByName = map[string]Scope{
	"none":          ScopeNone,
	"shared-kernel": ScopeSharedKernel,
	"shared-image":  ScopeSharedImage,
	"shared-all":    ScopeSharedAll,
}

// String returns the scope's wire name.
func (s Scope) String() string {
	if n, ok := scopeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scope(%d)", int(s))
}

// Spec is one fully parameterized attacker strategy. It is a comparable
// value: two equal Specs replay to identical attacks under the same seed.
type Spec struct {
	Kind Kind
	// Install is the delay from scenario start to the install attempt —
	// the migration-timing parameter.
	Install time.Duration
	// Churn is the evasion re-dirty interval (KindEvadeKSM only).
	Churn time.Duration
	// Scope selects the churned regions (KindEvadeKSM only).
	Scope Scope
	// DirtyPPS is the page-dirtying rate driven on the victim during the
	// install window (KindShapeDirty only).
	DirtyPPS int
	// Ops scales the captive guest's post-attack workload — the exit
	// telemetry the skew detector feeds on.
	Ops int
	// Depth is the nesting depth of the final stack: 2 for the paper's
	// attack, 3 for KindNestDeep.
	Depth int
}

// Render emits the canonical wire form, e.g.
//
//	kind=evade-ksm install=250ms churn=80ms scope=shared-all dirty=0 ops=4000 depth=2
//
// Parse(Render(s)) == s for every valid spec.
func (s Spec) Render() string {
	return fmt.Sprintf("kind=%s install=%s churn=%s scope=%s dirty=%d ops=%d depth=%d",
		s.Kind, s.Install, s.Churn, s.Scope, s.DirtyPPS, s.Ops, s.Depth)
}

// Validate checks the spec's parameters against the strategy space.
func (s Spec) Validate() error {
	if _, ok := kindNames[s.Kind]; !ok || s.Kind == 0 {
		return fmt.Errorf("%w: unknown kind %d", ErrBadSpec, int(s.Kind))
	}
	if _, ok := scopeNames[s.Scope]; !ok {
		return fmt.Errorf("%w: unknown scope %d", ErrBadSpec, int(s.Scope))
	}
	if s.Install < 0 || s.Install > time.Minute {
		return fmt.Errorf("%w: install delay %s out of [0, 1m]", ErrBadSpec, s.Install)
	}
	if s.Churn < 0 || s.Churn > 10*time.Second {
		return fmt.Errorf("%w: churn interval %s out of [0, 10s]", ErrBadSpec, s.Churn)
	}
	if s.DirtyPPS < 0 || s.DirtyPPS > 100_000 {
		return fmt.Errorf("%w: dirty rate %d out of [0, 100000]", ErrBadSpec, s.DirtyPPS)
	}
	if s.Ops < 0 || s.Ops > 1_000_000 {
		return fmt.Errorf("%w: ops %d out of [0, 1000000]", ErrBadSpec, s.Ops)
	}
	if s.Depth < 2 || s.Depth > 3 {
		return fmt.Errorf("%w: depth %d out of [2, 3]", ErrBadSpec, s.Depth)
	}
	if s.Kind == KindEvadeKSM && (s.Churn <= 0 || s.Scope == ScopeNone) {
		return fmt.Errorf("%w: evade-ksm needs churn > 0 and a scope", ErrBadSpec)
	}
	if s.Kind != KindEvadeKSM && (s.Churn != 0 || s.Scope != ScopeNone) {
		return fmt.Errorf("%w: churn/scope are evade-ksm parameters", ErrBadSpec)
	}
	if s.Kind == KindShapeDirty && s.DirtyPPS <= 0 {
		return fmt.Errorf("%w: shape-dirty needs dirty > 0", ErrBadSpec)
	}
	if s.Kind != KindShapeDirty && s.DirtyPPS != 0 {
		return fmt.Errorf("%w: dirty is a shape-dirty parameter", ErrBadSpec)
	}
	if s.Kind == KindNestDeep != (s.Depth == 3) {
		return fmt.Errorf("%w: depth 3 iff nest-deep", ErrBadSpec)
	}
	return nil
}

// Parse reads a spec from its wire form: whitespace-separated key=value
// fields in any order, each key at most once, kind required, every other
// field defaulting to its zero value (depth to 2). The result is
// validated.
func Parse(wire string) (Spec, error) {
	s := Spec{Depth: 2}
	seen := map[string]bool{}
	for _, field := range strings.Fields(wire) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("%w: field %q is not key=value", ErrBadSpec, field)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("%w: duplicate field %q", ErrBadSpec, key)
		}
		seen[key] = true
		var err error
		switch key {
		case "kind":
			k, ok := kindByName[val]
			if !ok {
				err = fmt.Errorf("unknown kind %q", val)
			}
			s.Kind = k
		case "install":
			s.Install, err = time.ParseDuration(val)
		case "churn":
			s.Churn, err = time.ParseDuration(val)
		case "scope":
			sc, ok := scopeByName[val]
			if !ok {
				err = fmt.Errorf("unknown scope %q", val)
			}
			s.Scope = sc
		case "dirty":
			s.DirtyPPS, err = strconv.Atoi(val)
		case "ops":
			s.Ops, err = strconv.Atoi(val)
		case "depth":
			s.Depth, err = strconv.Atoi(val)
		default:
			err = fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
	}
	if !seen["kind"] {
		return Spec{}, fmt.Errorf("%w: missing kind", ErrBadSpec)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Generation parameter pools. Small discrete sets keep generated strategies
// within the validated space while still exploring it.
var (
	genInstall = []time.Duration{0, 250 * time.Millisecond, 500 * time.Millisecond, time.Second}
	genChurn   = []time.Duration{40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond}
	genScope   = []Scope{ScopeSharedKernel, ScopeSharedImage, ScopeSharedAll}
	genDirty   = []int{400, 800, 1600}
	genOps     = []int{2000, 4000, 8000}
	// genQuietOps keeps shape-dirty's captive guest under every backend's
	// skew evidence floor.
	genQuietOps = []int{100, 200}
)

// Generate draws n strategies from the seeded strategy space. The first
// len(Kinds) entries cover every kind once (the first evade-ksm always
// churns every shared region — the canonical dedup-evading strategy);
// further entries are random draws. Every returned spec validates.
func Generate(seed int64, n int) []Spec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		var kind Kind
		if i < len(Kinds) {
			kind = Kinds[i]
		} else {
			kind = Kinds[rng.Intn(len(Kinds))]
		}
		s := Spec{
			Kind:    kind,
			Install: genInstall[rng.Intn(len(genInstall))],
			Ops:     genOps[rng.Intn(len(genOps))],
			Depth:   2,
		}
		switch kind {
		case KindEvadeKSM:
			s.Churn = genChurn[rng.Intn(len(genChurn))]
			if i < len(Kinds) {
				s.Scope = ScopeSharedAll
			} else {
				s.Scope = genScope[rng.Intn(len(genScope))]
			}
		case KindShapeDirty:
			s.DirtyPPS = genDirty[rng.Intn(len(genDirty))]
			s.Ops = genQuietOps[rng.Intn(len(genQuietOps))]
		case KindNestDeep:
			s.Depth = 3
		}
		if err := s.Validate(); err != nil {
			panic(err) // generation stays inside the validated space
		}
		out = append(out, s)
	}
	return out
}

// RenderSpecs renders a strategy list one wire form per line, sorted — the
// virtsh `scenario strategies` listing.
func RenderSpecs(specs []Spec) string {
	lines := make([]string, 0, len(specs))
	for _, s := range specs {
		lines = append(lines, s.Render())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
