package scenario

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSpecRoundTrip: Parse(Render(s)) == s for hand-built and generated
// specs — the replayability contract.
func TestSpecRoundTrip(t *testing.T) {
	hand := []Spec{
		{Kind: KindBaseline, Ops: 2000, Depth: 2},
		{Kind: KindEvadeKSM, Install: 250 * time.Millisecond, Churn: 80 * time.Millisecond,
			Scope: ScopeSharedAll, Ops: 4000, Depth: 2},
		{Kind: KindShapeDirty, Install: time.Second, DirtyPPS: 800, Ops: 100, Depth: 2},
		{Kind: KindNestDeep, Ops: 8000, Depth: 3},
	}
	specs := append(hand, Generate(42, 20)...)
	for _, s := range specs {
		got, err := Parse(s.Render())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.Render(), err)
		}
		if got != s {
			t.Fatalf("round trip: %q -> %+v, want %+v", s.Render(), got, s)
		}
	}
}

// TestSpecParseDefaults: only kind is required; depth defaults to 2.
func TestSpecParseDefaults(t *testing.T) {
	s, err := Parse("kind=baseline")
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth != 2 || s.Kind != KindBaseline {
		t.Fatalf("got %+v", s)
	}
}

// TestSpecParseRejects: malformed wire forms and out-of-space parameters
// all fail with ErrBadSpec.
func TestSpecParseRejects(t *testing.T) {
	bad := []string{
		"",                                     // missing kind
		"install=1s",                           // missing kind
		"kind=warp-drive",                      // unknown kind
		"kind=baseline frobnicate=1",           // unknown field
		"kind=baseline ops",                    // not key=value
		"kind=baseline kind=baseline",          // duplicate field
		"kind=baseline ops=zebra",              // bad int
		"kind=baseline install=later",          // bad duration
		"kind=baseline install=-5s",            // negative delay
		"kind=baseline install=2m",             // delay beyond space
		"kind=baseline ops=2000000",            // ops beyond space
		"kind=baseline depth=4",                // depth beyond space
		"kind=baseline depth=3",                // depth 3 without nest-deep
		"kind=nest-deep depth=2",               // nest-deep must be depth 3
		"kind=evade-ksm",                       // evasion without churn/scope
		"kind=evade-ksm churn=80ms",            // evasion without scope
		"kind=baseline churn=80ms",             // churn outside evade-ksm
		"kind=baseline scope=shared-all",       // scope outside evade-ksm
		"kind=evade-ksm churn=80ms scope=wide", // unknown scope
		"kind=shape-dirty",                     // shaping without rate
		"kind=baseline dirty=400",              // rate outside shape-dirty
	}
	for _, wire := range bad {
		if _, err := Parse(wire); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Parse(%q) err = %v, want ErrBadSpec", wire, err)
		}
	}
}

// TestGenerateDeterministicAndCovering: the same seed draws the same
// strategies, every draw validates, and the first len(Kinds) entries cover
// every kind with the lead evade-ksm churning all shared regions.
func TestGenerateDeterministicAndCovering(t *testing.T) {
	a, b := Generate(7, 12), Generate(7, 12)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	seen := map[Kind]bool{}
	for i, s := range a {
		if err := s.Validate(); err != nil {
			t.Fatalf("draw %d invalid: %v", i, err)
		}
		if i < len(Kinds) {
			seen[s.Kind] = true
		}
	}
	for _, k := range Kinds {
		if !seen[k] {
			t.Errorf("kind %s missing from the covering prefix", k)
		}
	}
	if a[1].Kind != KindEvadeKSM || a[1].Scope != ScopeSharedAll {
		t.Errorf("lead evade-ksm draw = %+v, want scope=shared-all", a[1])
	}
	if Generate(8, 12)[4] == a[4] && Generate(8, 12)[5] == a[5] {
		t.Error("different seeds drew identical random tails")
	}
}

// TestRenderSpecs: sorted, one wire form per line, parseable back.
func TestRenderSpecs(t *testing.T) {
	out := RenderSpecs(Generate(3, 6))
	lines := strings.Split(out, "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, ln := range lines {
		if i > 0 && lines[i-1] > ln {
			t.Errorf("line %d out of order", i)
		}
		if _, err := Parse(ln); err != nil {
			t.Errorf("line %q does not parse: %v", ln, err)
		}
	}
}
