package scenario

import (
	"fmt"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/cpu"
	"cloudskulk/internal/detect"
	"cloudskulk/internal/experiments"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
	"cloudskulk/internal/workload"
)

// agentPageOffset places the vendor's probe file in guest memory, clear of
// the kernel-image region and the vendor image (matching the experiments
// package's layout).
const agentPageOffset = 2048

// mirrorPageOffset is where the rootkit mirrors intercepted file pushes in
// its own RAM.
const mirrorPageOffset = core.KernelPages + 4096

// ramCopyPageCost is the attacker-side cost of copying one page when
// re-homing the captive guest a level deeper.
const ramCopyPageCost = 500 * time.Nanosecond

// World is one arms-race cell's universe: a private seeded testbed, the
// strategy being played, and the attack state the detectors probe. Each
// cell of the coverage matrix owns exactly one World, so cells are
// independent and the matrix is byte-identical at any worker count.
type World struct {
	Cloud *experiments.Cloud
	Reg   *telemetry.Registry
	Spec  Spec

	rk     *core.Rootkit
	victim *qemu.VM // the VM the user is "in" (moves a level under nest-deep)
	agent  *detect.GuestAgent
	churn  *sim.Ticker

	// atkWrites counts attacker-side page writes (churn, dirty shaping,
	// deep-nest RAM copy) — the strategy's memory-side cost.
	atkWrites uint64
	installed bool

	// snapBuf is reused across re-nesting RAM copies (mem.SnapshotInto),
	// so repeated deep-nest moves do not regrow the heap.
	snapBuf []mem.Content
}

// newWorld builds a cell's testbed: the experiments package's cloud (host,
// migration engine, victim "guest0" with the vendor image provisioned) on
// the given backend, with a cell-private telemetry registry wired through
// the stack. The KSM daemon starts only once the strategy installs — same
// protocol as the paper's infected-host runs.
func newWorld(seed int64, backend string, guestMemMB int64, spec Spec) (*World, error) {
	reg := telemetry.NewRegistry()
	c, err := experiments.NewCloud(seed,
		experiments.WithGuestMemMB(guestMemMB),
		experiments.WithTelemetry(reg),
		experiments.WithBackend(backend))
	if err != nil {
		return nil, err
	}
	return &World{Cloud: c, Reg: reg, Spec: spec, victim: c.Victim}, nil
}

// Victim returns the VM the user's session lives in right now: guest0
// before the attack, the captive nested copy after, the L3 twin under
// nest-deep.
func (w *World) Victim() *qemu.VM { return w.victim }

// Agent returns the vendor-side guest agent, bound to whatever VM the user
// currently occupies. Nil before the strategy executed.
func (w *World) Agent() *detect.GuestAgent { return w.agent }

// AdminSpace returns the RAM of the guest the cloud admin believes they
// are hosting: the L0 hypervisor's view. After a CloudSkulk install this
// is the RITM's memory — which is the whole point.
func (w *World) AdminSpace() *mem.Space {
	hv := w.Cloud.Host.Hypervisor()
	if vm, ok := hv.VM("guest0"); ok {
		return vm.RAM()
	}
	if vms := hv.VMs(); len(vms) > 0 {
		return vms[0].RAM()
	}
	return w.Cloud.Victim.RAM()
}

// AttackWrites returns the attacker's page-write cost so far.
func (w *World) AttackWrites() uint64 { return w.atkWrites }

// GatedPages reports how many of the RITM's pages the KSM volatility gate
// currently holds out of the merge tree — the footprint churn-based
// evasion leaves in the scanner.
func (w *World) GatedPages() int {
	if w.rk == nil {
		return 0
	}
	return w.Cloud.Host.KSM().GatedPages(w.rk.RITM.RAM())
}

// Execute plays the strategy: wait out the install timing, run the
// CloudSkulk installer (shaped by migration noise if the spec says so),
// start KSM, apply the kind's post-install behaviour (content churn,
// deeper nesting), and drive the captive guest's daily workload.
func (w *World) Execute() error {
	eng := w.Cloud.Eng
	if w.Spec.Install > 0 {
		eng.RunFor(w.Spec.Install)
	}

	// Dirty-rate shaping: benign-looking page churn on the victim during
	// the install window, so the install's migration hides in a noisy
	// migration regime. The rate must stay below migration bandwidth or
	// the attacker's own migration never converges.
	var bg *workload.Background
	if w.Spec.Kind == KindShapeDirty {
		bg = workload.StartBackground(workload.VMContext(w.Cloud.Victim), workload.Profile{
			Name:               "scenario.shape",
			DirtyPagesPerSec:   float64(w.Spec.DirtyPPS),
			WorkingSetFraction: 0.1,
			DirtyRateJitter:    0.05,
		})
	}

	icfg := core.DefaultInstallConfig()
	icfg.TargetName = w.Cloud.Victim.Name()
	rk, err := core.Installer{Host: w.Cloud.Host, Migration: w.Cloud.Migration}.Install(icfg)
	if bg != nil {
		bg.Stop()
		w.atkWrites += bg.PagesDirtied()
	}
	if err != nil {
		return fmt.Errorf("scenario: install: %w", err)
	}
	w.rk = rk
	w.victim = rk.Victim
	w.installed = true

	// The detection-side precondition, uniform across strategies: the
	// host's KSM daemon scans from here on.
	w.Cloud.Host.KSM().Start()

	// Impersonation upkeep: mirror the vendor's stock image so the RITM
	// is plausible to image probes, and intercept file pushes like the
	// paper's attacker.
	if err := rk.MirrorRange(w.Cloud.VendorImageAt, w.Cloud.VendorImage.NumPages()); err != nil {
		return fmt.Errorf("scenario: mirror image: %w", err)
	}
	w.agent = detect.NewGuestAgent(rk.Victim, agentPageOffset)
	w.agent.OnLoad = rk.InterceptFilePushes(mirrorPageOffset)

	switch w.Spec.Kind {
	case KindEvadeKSM:
		w.startChurn()
	case KindNestDeep:
		if err := w.nestDeeper(); err != nil {
			return err
		}
	}

	w.runWorkload()
	return nil
}

// StopChurn halts the evasion ticker (matrix teardown).
func (w *World) StopChurn() {
	if w.churn != nil {
		w.churn.Stop()
	}
}

// churnRegions resolves the spec's scope to RITM page ranges.
func (w *World) churnRegions() [][2]int {
	var out [][2]int
	kernel := [2]int{0, core.KernelPages}
	image := [2]int{w.Cloud.VendorImageAt, w.Cloud.VendorImageAt + w.Cloud.VendorImage.NumPages()}
	// The push mirror: where intercepted file pushes land. Churn a probe-
	// file-sized window; the attacker knows their own mirror layout.
	push := [2]int{mirrorPageOffset, mirrorPageOffset + 256}
	switch w.Spec.Scope {
	case ScopeSharedKernel:
		out = append(out, kernel)
	case ScopeSharedImage:
		out = append(out, image, push)
	case ScopeSharedAll:
		out = append(out, kernel, image, push)
	}
	return out
}

// startChurn begins the KSM-aware evasion: every interval, rewrite each
// in-scope RITM page with fresh content. Each rewrite steps an LCG so
// consecutive scanner visits always see a different sum — the pages live
// permanently behind ksmd's volatility gate and never become merge
// partners for an L0 probe.
func (w *World) startChurn() {
	ram := w.rk.RITM.RAM()
	regions := w.churnRegions()
	state := w.Cloud.Eng.RNG().Uint64() | 1
	w.churn = sim.NewTicker(w.Cloud.Eng, w.Spec.Churn, "scenario.churn", func() {
		for _, r := range regions {
			for p := r[0]; p < r[1] && p < ram.NumPages(); p++ {
				state = state*6364136223846793005 + 1442695040888963407
				if _, err := ram.Write(p, mem.Content(state|1)); err != nil {
					return
				}
				w.atkWrites++
			}
		}
	})
}

// nestDeeper re-homes the captive guest one level down: an attacker shell
// VM inside the RITM's hypervisor becomes an L2 hypervisor host, a twin of
// the victim boots at L3, the victim's memory is copied across, and the
// original L2 captive is destroyed. The user's session continues in the
// twin — now two hypervisors away from the hardware.
func (w *World) nestDeeper() error {
	rk := w.rk
	eng := w.Cloud.Eng
	victimName := rk.Victim.Name()

	shellCfg := qemu.DefaultConfig("shell0")
	shellCfg.MemoryMB = rk.Victim.Config().MemoryMB * 2
	if _, err := rk.InnerHV.CreateVM(shellCfg); err != nil {
		return fmt.Errorf("scenario: shell vm: %w", err)
	}
	if err := rk.InnerHV.Launch("shell0"); err != nil {
		return fmt.Errorf("scenario: shell launch: %w", err)
	}
	inner2, err := rk.InnerHV.EnableNesting("shell0")
	if err != nil {
		return fmt.Errorf("scenario: nest shell: %w", err)
	}

	twinCfg := rk.Victim.Config().Clone()
	twinCfg.Incoming = ""
	twin, err := inner2.CreateVM(twinCfg)
	if err != nil {
		return fmt.Errorf("scenario: twin vm: %w", err)
	}
	if err := inner2.Launch(victimName); err != nil {
		return fmt.Errorf("scenario: twin launch: %w", err)
	}

	// Carry the captive guest's state over, page by page, at attacker
	// expense, then retire the L2 copy.
	w.snapBuf = rk.Victim.RAM().SnapshotInto(w.snapBuf)
	snap := w.snapBuf
	for p, c := range snap {
		if _, err := twin.RAM().Write(p, c); err != nil {
			return fmt.Errorf("scenario: twin copy: %w", err)
		}
	}
	twin.RAM().ClearDirty()
	eng.Advance(time.Duration(len(snap)) * ramCopyPageCost)
	w.atkWrites += uint64(len(snap))

	if err := rk.InnerHV.Kill(victimName); err != nil {
		return fmt.Errorf("scenario: retire L2 captive: %w", err)
	}
	w.victim = twin
	w.agent.Rebind(twin)
	return nil
}

// runWorkload drives the captive guest's post-attack daily work: a mix of
// kernel round trips, device I/O, and compute, scaled by the spec. This is
// the exit-class telemetry the skew detector feeds on — and under
// nest-deep it executes at L3, where exit multiplication compounds.
func (w *World) runWorkload() {
	n := w.Spec.Ops
	if n <= 0 {
		return
	}
	v := w.victim.VCPU()
	v.Exec(cpu.SyscallOp("scenario.null-call", cpu.Nanos(150), 1, 0), n)
	v.Exec(cpu.IOOp("scenario.blk-read", cpu.Micros(2), 2), n/4)
	v.Exec(cpu.ALUOp("scenario.mix", cpu.Nanos(5)), n)
}
