package scenario

import (
	"fmt"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/detect"
)

// Outcome is one detector's verdict on one strategy run.
type Outcome struct {
	// Caught reports whether the detector flagged the attack.
	Caught bool
	// Detail is the detector's own account of what it saw.
	Detail string
	// TimeToDetect is the virtual time from scan start to the flag
	// (zero when the attack was missed).
	TimeToDetect time.Duration
	// Overhead is the virtual time the detection pass cost the host.
	Overhead time.Duration
}

// Detector is one roster member. Arm runs before the attack (against the
// clean victim — what the detector can legitimately baseline); Scan runs
// after the strategy executed and settled, and renders the verdict.
// Detectors are per-cell instances: Arm-time state carries into Scan.
type Detector interface {
	Name() string
	Arm(w *World) error
	Scan(w *World) (Outcome, error)
}

// Roster detector names, in matrix column order.
const (
	DetDedupTiming       = "dedup-timing"
	DetInvariantChecksum = "invariant-checksum"
	DetExitSkew          = "exit-skew"
)

// RosterNames lists the detector roster in matrix order.
func RosterNames() []string {
	return []string{DetDedupTiming, DetInvariantChecksum, DetExitSkew}
}

// newDetector builds a fresh roster member for one cell.
func newDetector(name string, cfg MatrixConfig) (Detector, error) {
	switch name {
	case DetDedupTiming:
		return &dedupDetector{pages: cfg.DetectPages, wait: cfg.KSMWait}, nil
	case DetInvariantChecksum:
		return &invariantDetector{every: cfg.AuditEvery, max: cfg.MaxAudits}, nil
	case DetExitSkew:
		return &skewDetector{}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown detector %q", name)
	}
}

// dedupDetector adapts the paper's KSM write-timing protocol (PR2): load a
// probe file via the vendor agent, mutate the guest's copy, and time L0
// writes to decide whether a hidden second copy kept the merge alive.
type dedupDetector struct {
	pages int
	wait  time.Duration
}

func (d *dedupDetector) Name() string { return DetDedupTiming }

func (d *dedupDetector) Arm(w *World) error { return nil }

func (d *dedupDetector) Scan(w *World) (Outcome, error) {
	det := detect.NewDedupDetector(w.Cloud.Host)
	det.Pages = d.pages
	det.Wait = d.wait
	verdict, ev, err := det.Run(w.Agent())
	if err != nil {
		return Outcome{}, err
	}
	o := Outcome{
		Caught:   verdict == detect.VerdictNested,
		Detail:   fmt.Sprintf("verdict=%s", verdict),
		Overhead: ev.Elapsed,
	}
	if o.Caught {
		o.TimeToDetect = ev.Elapsed
	}
	return o, nil
}

// invariantDetector adapts the Hello-rootKitty-style checksum audit: the
// kernel-image range of the provisioned guest is hashed at arm time, and
// after the attack the same invariant keeps being audited against whatever
// L0 now presents as that guest.
type invariantDetector struct {
	every time.Duration
	max   int

	inner *detect.InvariantDetector
}

func (d *invariantDetector) Name() string { return DetInvariantChecksum }

func (d *invariantDetector) Arm(w *World) error {
	d.inner = detect.NewInvariantDetector(w.Cloud.Eng, w.Cloud.Victim.RAM(), 0, core.KernelPages)
	return nil
}

func (d *invariantDetector) Scan(w *World) (Outcome, error) {
	eng := w.Cloud.Eng
	d.inner.Rebind(w.AdminSpace())
	start := eng.Now()
	var o Outcome
	for i := 0; i < d.max; i++ {
		eng.RunFor(d.every)
		if d.inner.Audit() {
			o.Caught = true
			o.TimeToDetect = eng.Now() - start
			break
		}
	}
	o.Overhead = d.inner.Overhead()
	o.Detail = fmt.Sprintf("audits=%d hits=%d", d.inner.Audits(), d.inner.Hits())
	return o, nil
}

// skewDetectorReadCost is what one pass over the host's exit counters
// costs the admin (a perf-counter read, not a memory scan).
const skewDetectorReadCost = time.Millisecond

// skewDetector adapts the exit-class-skew read over PR3's telemetry: real
// exit volume attributed to deeper-than-L1 execution is the nesting
// signature; a floor keeps device-model jitter from flagging.
type skewDetector struct{}

func (d *skewDetector) Name() string { return DetExitSkew }

func (d *skewDetector) Arm(w *World) error { return nil }

func (d *skewDetector) Scan(w *World) (Outcome, error) {
	w.Cloud.Eng.Advance(skewDetectorReadCost)
	flagged, exits, ops := detect.NewSkewDetector(w.Reg).Scan()
	o := Outcome{
		Caught:   flagged,
		Detail:   fmt.Sprintf("deep-exits=%d deep-ops=%d", exits, ops),
		Overhead: skewDetectorReadCost,
	}
	if flagged {
		o.TimeToDetect = skewDetectorReadCost
	}
	return o, nil
}
