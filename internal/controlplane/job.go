package controlplane

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"cloudskulk/internal/fleet"
	"cloudskulk/internal/telemetry"
)

// JobState is a job's position in its lifecycle.
type JobState int

const (
	JobQueued JobState = iota
	JobRunning
	JobSucceeded
	JobFailed
	JobCancelled
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobSucceeded:
		return "succeeded"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Job is one asynchronous mutation moving through the queue. IDs are
// sequential in submission order — deterministic by construction — and
// all timestamps are virtual.
type Job struct {
	ID      string
	Request Request
	State   JobState
	// Err carries the terminal failure (nil unless State == JobFailed).
	Err error
	// Retries counts transient failures absorbed by the backoff loop.
	Retries int
	// Submitted/Started/Finished are virtual timestamps; Started is the
	// first dispatch, Finished the terminal transition.
	Submitted time.Duration
	Started   time.Duration
	Finished  time.Duration
	// Host is the placement outcome of a deploy or migrate.
	Host string
}

// Latency is the job's submit-to-terminal virtual latency (0 while the
// job is still in flight).
func (j *Job) Latency() time.Duration {
	if j.State == JobQueued || j.State == JobRunning {
		return 0
	}
	return j.Finished - j.Submitted
}

// Submit validates a mutation request against tenant state and quota,
// reserves what it will consume, and enqueues a job — or sheds it with
// ErrAdmission when the queue is at its bound. Reads (OpList, OpUsage)
// are rejected here: they have synchronous answers (ListVMs,
// TenantUsage) and never occupy queue slots.
func (p *Plane) Submit(req Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if !req.Op.Mutation() {
		return nil, fmt.Errorf("%w: %s is a read, not a job", ErrInvalidRequest, req.Op)
	}
	t, ok := p.tenants[req.Tenant]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, req.Tenant)
	}
	// Admission control first: a saturated plane sheds load before
	// touching quota, so rejects are cheap under overload.
	if len(p.queue) >= p.maxQueue {
		p.tele.Counter("cp_admission_rejects_total").Inc()
		return nil, fmt.Errorf("%w: %d queued (bound %d)", ErrAdmission, len(p.queue), p.maxQueue)
	}
	if t.quota.MaxJobs > 0 && t.activeJobs >= t.quota.MaxJobs {
		p.tele.Counter("cp_quota_rejects_total").Inc()
		return nil, fmt.Errorf("%w: %q at %d jobs", ErrQuotaJobs, req.Tenant, t.activeJobs)
	}

	switch req.Op {
	case OpDeploy:
		if _, dup := t.vms[req.VM]; dup {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateVM, guestName(req.Tenant, req.VM))
		}
		if t.quota.MaxVMs > 0 && len(t.vms) >= t.quota.MaxVMs {
			p.tele.Counter("cp_quota_rejects_total").Inc()
			return nil, fmt.Errorf("%w: %q at %d VMs", ErrQuotaVMs, req.Tenant, len(t.vms))
		}
		if t.quota.MaxMemMB > 0 && t.usedMemMB+req.MemMB > t.quota.MaxMemMB {
			p.tele.Counter("cp_quota_rejects_total").Inc()
			return nil, fmt.Errorf("%w: %q at %d MB + %d MB requested",
				ErrQuotaMemory, req.Tenant, t.usedMemMB, req.MemMB)
		}
		// Reserve at submit: the record exists from here on, so queued
		// deploys count against quota before they run.
		t.vms[req.VM] = &vmRecord{name: req.VM, memMB: req.MemMB, state: vmDeploying}
		t.usedMemMB += req.MemMB
	case OpStop, OpMigrate, OpSnapshot:
		rec, ok := t.vms[req.VM]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownVM, guestName(req.Tenant, req.VM))
		}
		if rec.state != vmRunning {
			return nil, fmt.Errorf("%w: %s is %s", ErrInvalidRequest,
				guestName(req.Tenant, req.VM), rec.state)
		}
	}

	p.nextJob++
	job := &Job{
		ID:        fmt.Sprintf("job-%08d", p.nextJob),
		Request:   req,
		State:     JobQueued,
		Submitted: p.eng.Now(),
	}
	t.activeJobs++
	p.jobs[job.ID] = job
	p.queue = append(p.queue, job)
	p.tele.Counter("cp_jobs_submitted_total").Inc()
	p.tele.Gauge("cp_queue_depth").Set(int64(len(p.queue)))
	p.pump()
	return job, nil
}

// Job returns a job by ID.
func (p *Plane) Job(id string) (*Job, error) {
	j, ok := p.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs returns every job, in submission (ID) order.
func (p *Plane) Jobs() []*Job {
	ids := make([]string, 0, len(p.jobs))
	for id := range p.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Job, 0, len(ids))
	for _, id := range ids {
		out = append(out, p.jobs[id])
	}
	return out
}

// CancelJob cancels a job still sitting in the queue. Anything past the
// queue — dispatched into a slot or already running — is not
// cancellable: fleet mutations are not interruptible mid-flight,
// matching real planes where in-progress migrations must finish or fail.
func (p *Plane) CancelJob(id string) error {
	j, ok := p.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	// State alone cannot tell a queued job from a dispatched one (both
	// read JobQueued until the dispatch event fires), so membership in
	// the queue is the authority.
	idx := -1
	for i, q := range p.queue {
		if q == j {
			idx = i
			break
		}
	}
	if j.State != JobQueued || idx < 0 {
		if j.State == JobQueued {
			return fmt.Errorf("%w: %q already dispatched", ErrJobNotCancellable, id)
		}
		return fmt.Errorf("%w: %q is %s", ErrJobNotCancellable, id, j.State)
	}
	p.queue = append(p.queue[:idx], p.queue[idx+1:]...)
	j.State = JobCancelled
	j.Finished = p.eng.Now()
	p.rollback(j)
	p.settle(j)
	p.tele.Counter("cp_jobs_cancelled_total").Inc()
	p.tele.Gauge("cp_queue_depth").Set(int64(len(p.queue)))
	return nil
}

// Outstanding counts jobs not yet in a terminal state: queued, running,
// or waiting out a retry backoff.
func (p *Plane) Outstanding() int {
	return len(p.queue) + p.running + p.backoff
}

// Drain pumps the engine until every submitted job reaches a terminal
// state — the experiment's "wait for the plane to go quiet" call.
func (p *Plane) Drain() {
	for p.Outstanding() > 0 && p.eng.Step() {
	}
}

// pump dispatches queued jobs into free execution slots. Each dispatch
// is a scheduled event DispatchLatency in the future: the scheduler's
// own overhead, and the hook that makes execution asynchronous with
// respect to Submit.
func (p *Plane) pump() {
	for p.running < p.slots && len(p.queue) > 0 {
		job := p.queue[0]
		p.queue = p.queue[1:]
		p.running++
		p.tele.Gauge("cp_queue_depth").Set(int64(len(p.queue)))
		p.eng.Schedule(p.dispatch, "cp.dispatch "+job.ID, func() {
			p.execute(job)
		})
	}
}

// execute runs one job to a terminal state, retrying transient fleet
// errors with the shared backoff policy. It runs inside an engine event;
// fleet operations advance virtual time internally (reentrant stepping),
// so concurrent jobs interleave exactly as their costs dictate.
func (p *Plane) execute(job *Job) {
	if job.State == JobQueued {
		job.State = JobRunning
		job.Started = p.eng.Now()
	}
	span := p.spans.Start("cp.job",
		telemetry.A("id", job.ID),
		telemetry.A("op", job.Request.Op.String()),
		telemetry.A("tenant", job.Request.Tenant))
	err := p.perform(job)
	if err != nil && transient(err) && job.Retries < p.retry.Attempts-1 {
		// Back off in virtual time and try again; the slot is released
		// so other jobs run during the backoff window.
		delay := p.retry.Delay(job.Retries)
		job.Retries++
		p.tele.Counter("cp_jobs_retried_total").Inc()
		span.Set("outcome", "retry")
		span.End()
		p.running--
		p.backoff++
		p.eng.Schedule(delay, "cp.retry "+job.ID, func() {
			p.backoff--
			p.running++
			p.execute(job)
		})
		p.pump()
		return
	}
	job.Finished = p.eng.Now()
	if err != nil {
		job.State = JobFailed
		job.Err = err
		p.rollback(job)
		p.tele.Counter("cp_jobs_failed_total").Inc()
		span.Set("outcome", "failed")
	} else {
		job.State = JobSucceeded
		p.commit(job)
		p.tele.Counter("cp_jobs_succeeded_total").Inc()
		span.Set("outcome", "succeeded")
	}
	p.settle(job)
	p.tele.Histogram("cp_job_latency_us", telemetry.DurationBuckets).
		Observe(int64(job.Latency() / time.Microsecond))
	span.End()
	p.running--
	p.pump()
}

// transient reports whether a fleet error is worth retrying: placement
// pressure and migration aborts clear as other jobs release resources,
// while unknown-guest or validation failures never will.
func transient(err error) bool {
	return errors.Is(err, fleet.ErrNoPlacement) ||
		errors.Is(err, fleet.ErrMigrationFailed) ||
		errors.Is(err, fleet.ErrInsufficientMemory)
}

// perform issues the job's fleet mutation.
func (p *Plane) perform(job *Job) error {
	req := job.Request
	gname := guestName(req.Tenant, req.VM)
	switch req.Op {
	case OpDeploy:
		host, err := p.f.PickHostFor(req.MemMB, fleet.Policy{})
		if err != nil {
			return err
		}
		if p.tmpl != nil && p.tmpl.SizeBytes()>>20 == req.MemMB {
			// Golden-image deploy: fork the template copy-on-write.
			if _, err := p.f.StartGuestFrom(host, gname, p.tmpl); err != nil {
				return err
			}
		} else if _, err := p.f.StartGuest(host, gname, req.MemMB); err != nil {
			return err
		}
		job.Host = host
		return nil
	case OpStop:
		return p.f.StopGuest(gname)
	case OpMigrate:
		dst := req.Target
		if dst == "" {
			var err error
			if dst, err = p.f.PickHost(gname, fleet.Policy{}); err != nil {
				return err
			}
		}
		rep, err := p.f.MigrateVM(gname, dst)
		if err != nil {
			return err
		}
		job.Host = rep.To
		return nil
	case OpSnapshot:
		info, err := p.f.Lookup(gname)
		if err != nil {
			return err
		}
		return info.Inner.SaveSnapshot(req.Target)
	}
	return fmt.Errorf("%w: op %s not executable", ErrInvalidRequest, req.Op)
}

// commit applies a succeeded job's bookkeeping.
func (p *Plane) commit(job *Job) {
	t := p.tenants[job.Request.Tenant]
	switch job.Request.Op {
	case OpDeploy:
		t.vms[job.Request.VM].state = vmRunning
	case OpStop:
		rec := t.vms[job.Request.VM]
		t.usedMemMB -= rec.memMB
		delete(t.vms, job.Request.VM)
	}
}

// rollback releases what Submit reserved for a job that failed.
func (p *Plane) rollback(job *Job) {
	t := p.tenants[job.Request.Tenant]
	if job.Request.Op == OpDeploy {
		if rec, ok := t.vms[job.Request.VM]; ok && rec.state == vmDeploying {
			t.usedMemMB -= rec.memMB
			delete(t.vms, job.Request.VM)
		}
	}
}

// settle releases the tenant's job-concurrency slot.
func (p *Plane) settle(job *Job) {
	p.tenants[job.Request.Tenant].activeJobs--
}
