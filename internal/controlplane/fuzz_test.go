package controlplane

import (
	"errors"
	"testing"
)

// FuzzControlPlaneRequest drives arbitrary text through the plane's wire
// parser — the surface external drivers and the virtsh session hit. The
// contract: ParseRequest never panics, every accepted request passes
// Validate, and the canonical form is a fixed point (parse ∘ render ∘
// parse is the identity). Rejections must be the typed ErrInvalidRequest
// so callers can tell bad input from plane failures.
func FuzzControlPlaneRequest(f *testing.F) {
	for _, seed := range []string{
		"deploy acme web 64",
		"deploy acme web 007",
		"stop acme web",
		"migrate acme web",
		"migrate acme web h03",
		"snapshot acme web nightly",
		"list acme",
		"usage acme",
		"  deploy\tacme   web  64  ",
		"deploy acme web 9223372036854775807",
		"deploy acme web -5",
		"deploy acme.evil web 64",
		"migrate acme web ../h00",
		"snapshot acme web ''",
		"usage", "deploy", "", "   ", "quit", "deploy a b c d e",
		"stop acme web extra",
		"list acme acme",
		"deploy \x00 web 64",
		"deploy acme web 64\nstop acme web",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		req, err := ParseRequest(line)
		if err != nil {
			if !errors.Is(err, ErrInvalidRequest) {
				t.Fatalf("rejection is not typed: %v", err)
			}
			return
		}
		if verr := req.Validate(); verr != nil {
			t.Fatalf("accepted request fails Validate: %+v: %v", req, verr)
		}
		wire := req.Render()
		back, err := ParseRequest(wire)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", wire, err)
		}
		if back != req {
			t.Fatalf("round trip diverged: %+v -> %q -> %+v", req, wire, back)
		}
		if again := back.Render(); again != wire {
			t.Fatalf("canonical form is not a fixed point: %q vs %q", wire, again)
		}
	})
}
