package controlplane

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cloudskulk/internal/fleet"
)

// testPlane builds a small plane over a 4-host fleet with tight host
// budgets so quota and placement pressure are easy to trigger.
func testPlane(t *testing.T, cfg Config) *Plane {
	t.Helper()
	f, err := fleet.New(1, fleet.WithHostSpecs(
		fleet.HostSpec{Name: "h00", MemMB: 512},
		fleet.HostSpec{Name: "h01", MemMB: 512},
		fleet.HostSpec{Name: "h02", MemMB: 512},
		fleet.HostSpec{Name: "h03", MemMB: 512, Trusted: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	return New(f, cfg)
}

func mustTenant(t *testing.T, p *Plane, name string, q Quota) {
	t.Helper()
	if err := p.CreateTenant(name, q); err != nil {
		t.Fatal(err)
	}
}

func submit(t *testing.T, p *Plane, line string) *Job {
	t.Helper()
	req, err := ParseRequest(line)
	if err != nil {
		t.Fatalf("parse %q: %v", line, err)
	}
	job, err := p.Submit(req)
	if err != nil {
		t.Fatalf("submit %q: %v", line, err)
	}
	return job
}

// TestDeployLifecycle: a deploy moves queued → running → succeeded, the
// VM lands on a host, and the tenant's usage reflects it throughout.
func TestDeployLifecycle(t *testing.T) {
	p := testPlane(t, Config{})
	mustTenant(t, p, "acme", Quota{})
	job := submit(t, p, "deploy acme web 64")
	if job.State != JobQueued && job.State != JobRunning {
		t.Fatalf("fresh job state = %s", job.State)
	}
	if job.ID != "job-00000001" {
		t.Fatalf("job ID = %q", job.ID)
	}
	// Quota is reserved at submit, before the job runs.
	u, err := p.TenantUsage("acme")
	if err != nil || u.VMs != 1 || u.MemMB != 64 || u.ActiveJobs != 1 {
		t.Fatalf("usage after submit = %+v, %v", u, err)
	}
	p.Drain()
	if job.State != JobSucceeded {
		t.Fatalf("job state = %s, err %v", job.State, job.Err)
	}
	if job.Host == "" {
		t.Fatal("deploy job recorded no host")
	}
	if job.Latency() <= 0 {
		t.Fatal("job latency not positive")
	}
	vms, err := p.ListVMs("acme")
	if err != nil || len(vms) != 1 {
		t.Fatalf("ListVMs = %v, %v", vms, err)
	}
	if vms[0].State != "running" || vms[0].Host != job.Host {
		t.Fatalf("vm row = %+v", vms[0])
	}
	u, _ = p.TenantUsage("acme")
	if u.ActiveJobs != 0 {
		t.Fatalf("active jobs after drain = %d", u.ActiveJobs)
	}
	// The guest is real: the fleet resolves it under the namespaced name.
	if _, err := p.Fleet().Lookup("acme.web"); err != nil {
		t.Fatalf("fleet lookup: %v", err)
	}
}

// TestQuotaRejection: each quota axis rejects with its own typed error,
// and rejected submissions reserve nothing.
func TestQuotaRejection(t *testing.T) {
	p := testPlane(t, Config{})
	mustTenant(t, p, "acme", Quota{MaxVMs: 2, MaxMemMB: 128, MaxJobs: 10})
	submit(t, p, "deploy acme a 64")
	submit(t, p, "deploy acme b 32")
	if _, err := p.Submit(Request{Op: OpDeploy, Tenant: "acme", VM: "c", MemMB: 16}); !errors.Is(err, ErrQuotaVMs) {
		t.Fatalf("vm quota = %v, want ErrQuotaVMs", err)
	}
	p.Drain()
	// Stop b to free the VM slot; memory quota still binds (64 used).
	submit(t, p, "stop acme b")
	p.Drain()
	if _, err := p.Submit(Request{Op: OpDeploy, Tenant: "acme", VM: "c", MemMB: 128}); !errors.Is(err, ErrQuotaMemory) {
		t.Fatalf("memory quota = %v, want ErrQuotaMemory", err)
	}
	u, _ := p.TenantUsage("acme")
	if u.VMs != 1 || u.MemMB != 64 {
		t.Fatalf("rejected submits leaked reservations: %+v", u)
	}
	// Job-concurrency quota.
	mustTenant(t, p, "solo", Quota{MaxVMs: 10, MaxMemMB: 1024, MaxJobs: 1})
	submit(t, p, "deploy solo x 16")
	if _, err := p.Submit(Request{Op: OpDeploy, Tenant: "solo", VM: "y", MemMB: 16}); !errors.Is(err, ErrQuotaJobs) {
		t.Fatalf("job quota = %v, want ErrQuotaJobs", err)
	}
	p.Drain()
	// Duplicate VM names are rejected even while the first is deploying.
	submit(t, p, "deploy solo y 16")
	if _, err := p.Submit(Request{Op: OpDeploy, Tenant: "acme", VM: "a", MemMB: 16}); !errors.Is(err, ErrDuplicateVM) {
		t.Fatalf("duplicate vm = %v, want ErrDuplicateVM", err)
	}
	p.Drain()
}

// TestAdmissionControl: the queue bound sheds load with ErrAdmission,
// and the shed submission reserves nothing.
func TestAdmissionControl(t *testing.T) {
	p := testPlane(t, Config{MaxQueue: 2, Slots: 1, DispatchLatency: time.Hour})
	mustTenant(t, p, "acme", Quota{MaxVMs: 100, MaxMemMB: 100000, MaxJobs: 100})
	// Slot 1 dispatches far in the future, so these stack up queued:
	// first fills the slot, next two fill the queue.
	submit(t, p, "deploy acme a 16")
	submit(t, p, "deploy acme b 16")
	submit(t, p, "deploy acme c 16")
	_, err := p.Submit(Request{Op: OpDeploy, Tenant: "acme", VM: "d", MemMB: 16})
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("over-bound submit = %v, want ErrAdmission", err)
	}
	u, _ := p.TenantUsage("acme")
	if u.VMs != 3 {
		t.Fatalf("shed submit leaked a reservation: %+v", u)
	}
	p.Drain()
	for _, j := range p.Jobs() {
		if j.State != JobSucceeded {
			t.Fatalf("%s = %s (%v)", j.ID, j.State, j.Err)
		}
	}
}

// TestCancelQueuedJob: cancel flips a queued job to cancelled, releases
// its reservation, and refuses to touch running or finished jobs.
func TestCancelQueuedJob(t *testing.T) {
	p := testPlane(t, Config{Slots: 1, DispatchLatency: time.Hour})
	mustTenant(t, p, "acme", Quota{})
	running := submit(t, p, "deploy acme a 64")
	queued := submit(t, p, "deploy acme b 64")
	if err := p.CancelJob(queued.ID); err != nil {
		t.Fatal(err)
	}
	if queued.State != JobCancelled {
		t.Fatalf("state = %s", queued.State)
	}
	u, _ := p.TenantUsage("acme")
	if u.VMs != 1 || u.MemMB != 64 || u.ActiveJobs != 1 {
		t.Fatalf("cancel did not release reservation: %+v", u)
	}
	if err := p.CancelJob(queued.ID); !errors.Is(err, ErrJobNotCancellable) {
		t.Fatalf("double cancel = %v", err)
	}
	if err := p.CancelJob("job-99999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job = %v", err)
	}
	p.Drain()
	if running.State != JobSucceeded {
		t.Fatalf("survivor = %s (%v)", running.State, running.Err)
	}
	if err := p.CancelJob(running.ID); !errors.Is(err, ErrJobNotCancellable) {
		t.Fatalf("cancel finished job = %v", err)
	}
}

// TestCancelDispatchedJobRefused: a job pumped into a slot whose dispatch
// event has not fired yet still reads "queued", but it has left the queue
// and WILL execute — cancelling it must be refused, and it must still run
// to completion. (Regression: CancelJob used to trust the state alone,
// marking such jobs cancelled while the pending dispatch ran them anyway.)
func TestCancelDispatchedJobRefused(t *testing.T) {
	p := testPlane(t, Config{Slots: 1, DispatchLatency: time.Hour})
	mustTenant(t, p, "acme", Quota{})
	dispatched := submit(t, p, "deploy acme a 64")
	if dispatched.State != JobQueued {
		t.Fatalf("pre-dispatch state = %s", dispatched.State)
	}
	if err := p.CancelJob(dispatched.ID); !errors.Is(err, ErrJobNotCancellable) {
		t.Fatalf("cancel dispatched job = %v, want ErrJobNotCancellable", err)
	}
	p.Drain()
	if dispatched.State != JobSucceeded {
		t.Fatalf("dispatched job = %s (%v), want succeeded", dispatched.State, dispatched.Err)
	}
	u, _ := p.TenantUsage("acme")
	if u.VMs != 1 || u.MemMB != 64 {
		t.Fatalf("usage after refused cancel: %+v", u)
	}
}

// TestJobRetryOnPlacementPressure: a deploy that finds no host retries
// on the shared backoff policy and succeeds once a stop frees room.
func TestJobRetryOnPlacementPressure(t *testing.T) {
	f, err := fleet.New(1, fleet.WithHostSpecs(fleet.HostSpec{Name: "h00", MemMB: 128}),
		fleet.WithRetry(4, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	p := New(f, Config{Slots: 2})
	mustTenant(t, p, "acme", Quota{MaxVMs: 10, MaxMemMB: 1024, MaxJobs: 10})
	submit(t, p, "deploy acme a 128")
	p.Drain()
	// The host is full; this deploy must fail placement and back off.
	blocked := submit(t, p, "deploy acme b 128")
	// Free the room while the blocked deploy is in its backoff window.
	f.Engine().Schedule(1500*time.Millisecond, "free", func() {
		req, _ := ParseRequest("stop acme a")
		if _, err := p.Submit(req); err != nil {
			t.Errorf("stop submit: %v", err)
		}
	})
	p.Drain()
	if blocked.State != JobSucceeded {
		t.Fatalf("blocked deploy = %s (%v)", blocked.State, blocked.Err)
	}
	if blocked.Retries == 0 {
		t.Fatal("deploy succeeded without retrying — test lost its pressure")
	}
}

// TestJobFailureRollsBack: a deploy that exhausts its retries fails
// typed and releases the quota reservation.
func TestJobFailureRollsBack(t *testing.T) {
	f, err := fleet.New(1, fleet.WithHostSpecs(fleet.HostSpec{Name: "h00", MemMB: 64}),
		fleet.WithRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	p := New(f, Config{})
	mustTenant(t, p, "acme", Quota{})
	job := submit(t, p, "deploy acme big 512")
	p.Drain()
	if job.State != JobFailed || !errors.Is(job.Err, fleet.ErrNoPlacement) {
		t.Fatalf("job = %s (%v)", job.State, job.Err)
	}
	if job.Retries != 1 {
		t.Fatalf("retries = %d, want 1 (2 attempts)", job.Retries)
	}
	u, _ := p.TenantUsage("acme")
	if u.VMs != 0 || u.MemMB != 0 || u.ActiveJobs != 0 {
		t.Fatalf("failed deploy leaked reservation: %+v", u)
	}
}

// TestMigrateAndSnapshotJobs: the remaining mutations round-trip
// through the queue against real fleet state.
func TestMigrateAndSnapshotJobs(t *testing.T) {
	p := testPlane(t, Config{})
	mustTenant(t, p, "acme", Quota{})
	submit(t, p, "deploy acme web 64")
	p.Drain()
	info, err := p.f.Lookup("acme.web")
	if err != nil {
		t.Fatal(err)
	}
	from := info.Host
	mig := submit(t, p, "migrate acme web")
	p.Drain()
	if mig.State != JobSucceeded {
		t.Fatalf("migrate = %s (%v)", mig.State, mig.Err)
	}
	if mig.Host == from {
		t.Fatalf("migrate stayed on %q", from)
	}
	// Targeted migration to a named host.
	mig2 := submit(t, p, "migrate acme web "+from)
	p.Drain()
	if mig2.State != JobSucceeded || mig2.Host != from {
		t.Fatalf("targeted migrate = %s host %q (%v)", mig2.State, mig2.Host, mig2.Err)
	}
	snap := submit(t, p, "snapshot acme web backup1")
	p.Drain()
	if snap.State != JobSucceeded {
		t.Fatalf("snapshot = %s (%v)", snap.State, snap.Err)
	}
	info, _ = p.f.Lookup("acme.web")
	if n := len(info.Inner.Snapshots()); n != 1 {
		t.Fatalf("snapshots = %d, want 1", n)
	}
	// Mutations against unknown VMs / tenants are typed.
	if _, err := p.Submit(Request{Op: OpStop, Tenant: "acme", VM: "ghost"}); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("unknown vm = %v", err)
	}
	if _, err := p.Submit(Request{Op: OpStop, Tenant: "ghost", VM: "web"}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant = %v", err)
	}
}

// TestPlaneDeterminism: the same submission script replayed on a fresh
// plane with the same seed produces identical job tables, host
// placements, and virtual timestamps.
func TestPlaneDeterminism(t *testing.T) {
	run := func() string {
		p := testPlane(t, Config{Slots: 2})
		mustTenant(t, p, "acme", Quota{MaxVMs: 20, MaxMemMB: 2048, MaxJobs: 20})
		for i := 0; i < 6; i++ {
			submit(t, p, fmt.Sprintf("deploy acme vm%d 64", i))
		}
		p.Drain()
		submit(t, p, "migrate acme vm0")
		submit(t, p, "snapshot acme vm1 s1")
		submit(t, p, "stop acme vm2")
		p.Drain()
		out := ""
		for _, j := range p.Jobs() {
			out += fmt.Sprintf("%s %s %s %s r%d %d/%d/%d\n",
				j.ID, j.Request.Op, j.State, j.Host, j.Retries,
				j.Submitted, j.Started, j.Finished)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestRequestValidation: structural validation catches malformed
// requests before they reach tenant state.
func TestRequestValidation(t *testing.T) {
	bad := []Request{
		{Op: OpDeploy, Tenant: "a"},                      // no VM
		{Op: OpDeploy, Tenant: "a", VM: "v"},             // no mem
		{Op: OpDeploy, Tenant: "a", VM: "v", MemMB: -1},  // negative
		{Op: OpDeploy, Tenant: "a.b", VM: "v", MemMB: 1}, // dot in tenant
		{Op: OpDeploy, Tenant: "a", VM: "v/w", MemMB: 1}, // slash in vm
		{Op: OpSnapshot, Tenant: "a", VM: "v"},           // no snap name
		{Op: OpList, Tenant: "a", VM: "v"},               // read with vm
		{Op: OpUsage, Tenant: ""},                        // no tenant
		{Op: Op(99), Tenant: "a"},                        // bad op
		{Op: OpStop, Tenant: "a", VM: "v", Target: "x"},  // stop w/ target
		{Op: OpMigrate, Tenant: "a", VM: "v", MemMB: 5},  // migrate w/ mem
	}
	for _, r := range bad {
		if err := r.Validate(); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("Validate(%+v) = %v, want ErrInvalidRequest", r, err)
		}
	}
	// Reads cannot be submitted as jobs.
	p := testPlane(t, Config{})
	mustTenant(t, p, "acme", Quota{})
	if _, err := p.Submit(Request{Op: OpList, Tenant: "acme"}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("submit read = %v", err)
	}
}

// TestParseRenderRoundTrip: canonical wire lines survive parse → render
// → parse unchanged.
func TestParseRenderRoundTrip(t *testing.T) {
	lines := []string{
		"deploy acme web 64",
		"stop acme web",
		"migrate acme web",
		"migrate acme web h03",
		"snapshot acme web nightly",
		"list acme",
		"usage acme",
	}
	for _, line := range lines {
		r, err := ParseRequest(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if got := r.Render(); got != line {
			t.Fatalf("render(parse(%q)) = %q", line, got)
		}
	}
	for _, line := range []string{"", "frobnicate a b", "deploy acme web", "deploy acme web x", "usage"} {
		if _, err := ParseRequest(line); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("parse %q = %v, want ErrInvalidRequest", line, err)
		}
	}
}

// TestTelemetryCounters: the plane's counters add up against a known
// script — submissions, quota and admission rejects, terminal states.
func TestTelemetryCounters(t *testing.T) {
	p := testPlane(t, Config{MaxQueue: 1, Slots: 1, DispatchLatency: time.Hour})
	mustTenant(t, p, "acme", Quota{MaxVMs: 2, MaxMemMB: 256, MaxJobs: 5})
	submit(t, p, "deploy acme a 64") // fills the slot
	submit(t, p, "deploy acme b 64") // fills the queue
	if _, err := p.Submit(Request{Op: OpDeploy, Tenant: "acme", VM: "c", MemMB: 64}); !errors.Is(err, ErrAdmission) {
		t.Fatalf("want ErrAdmission, got %v", err)
	}
	p.Drain()
	// Queue is empty now; VM quota (2) binds before admission.
	if _, err := p.Submit(Request{Op: OpDeploy, Tenant: "acme", VM: "c", MemMB: 64}); !errors.Is(err, ErrQuotaVMs) {
		t.Fatalf("want ErrQuotaVMs, got %v", err)
	}
	reg := p.Fleet().Telemetry()
	for name, want := range map[string]uint64{
		"cp_jobs_submitted_total":    2,
		"cp_jobs_succeeded_total":    2,
		"cp_jobs_failed_total":       0,
		"cp_admission_rejects_total": 1,
		"cp_quota_rejects_total":     1,
		"cp_tenants_total":           1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if reg.Histogram("cp_job_latency_us", nil).Count() != 2 {
		t.Error("latency histogram did not observe both jobs")
	}
}
