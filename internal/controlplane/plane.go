// Package controlplane is the deterministic IaaS management layer over
// internal/fleet: the CloudStack-style API a CloudSkulk attacker rides
// and an operator defends. Tenants submit typed requests (deploy, stop,
// migrate, snapshot, list, usage); mutations run through an async job
// queue scheduled on the shared sim.Engine with per-tenant quotas,
// bounded retries, and admission control — all pure functions of the
// engine seed, so million-op load replays byte-identically at any
// worker count.
package controlplane

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"cloudskulk/internal/fleet"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
)

// Errors callers match on. Quota and admission rejections are typed so
// load generators and operators can tell "you asked for too much"
// (quota), "the plane is saturated" (admission), and "that thing does
// not exist" (unknown-*) apart.
var (
	ErrUnknownTenant     = errors.New("controlplane: unknown tenant")
	ErrDuplicateTenant   = errors.New("controlplane: tenant already exists")
	ErrUnknownVM         = errors.New("controlplane: unknown vm")
	ErrDuplicateVM       = errors.New("controlplane: vm already exists")
	ErrUnknownJob        = errors.New("controlplane: unknown job")
	ErrJobNotCancellable = errors.New("controlplane: job not cancellable")
	ErrQuotaVMs          = errors.New("controlplane: tenant vm quota exceeded")
	ErrQuotaMemory       = errors.New("controlplane: tenant memory quota exceeded")
	ErrQuotaJobs         = errors.New("controlplane: tenant concurrent-job quota exceeded")
	ErrAdmission         = errors.New("controlplane: admission control: job queue full")
	ErrInvalidRequest    = errors.New("controlplane: invalid request")
)

// Quota bounds one tenant's footprint. Zero-valued fields are unlimited.
type Quota struct {
	// MaxVMs caps deployed-plus-deploying VMs.
	MaxVMs int
	// MaxMemMB caps the sum of deployed-plus-deploying VM memory.
	MaxMemMB int64
	// MaxJobs caps queued-plus-running jobs (per-tenant concurrency).
	MaxJobs int
}

// DefaultQuota is the quota tenants get when created with a zero Quota:
// a small-shop allowance that load tests can saturate.
var DefaultQuota = Quota{MaxVMs: 8, MaxMemMB: 1024, MaxJobs: 4}

// vmState tracks a tenant VM through its deploy lifecycle.
type vmState int

const (
	vmDeploying vmState = iota // quota reserved, deploy job not finished
	vmRunning
)

func (s vmState) String() string {
	if s == vmDeploying {
		return "deploying"
	}
	return "running"
}

// vmRecord is the plane's view of one tenant VM. Quota is reserved at
// submit time (the record exists from Submit on), so racing deploys in
// the queue cannot oversubscribe a tenant.
type vmRecord struct {
	name  string // tenant-local name
	memMB int64
	state vmState
}

// tenant is one account: quota, VM set, live job count.
type tenant struct {
	name       string
	quota      Quota
	vms        map[string]*vmRecord
	usedMemMB  int64
	activeJobs int // queued + running jobs charged to the tenant
}

// Usage is a tenant's current consumption against quota — the answer to
// a TenantUsage request.
type Usage struct {
	Tenant     string
	VMs        int
	MemMB      int64
	ActiveJobs int
	Quota      Quota
}

// VMInfo is one row of a ListVMs answer.
type VMInfo struct {
	Tenant string
	Name   string
	MemMB  int64
	State  string
	Host   string // empty while deploying
}

// Config tunes the plane's queue machinery.
type Config struct {
	// MaxQueue bounds queued (not yet dispatched) jobs; submissions
	// beyond it are shed with ErrAdmission. Default 64.
	MaxQueue int
	// Slots bounds concurrently executing jobs. Default 4.
	Slots int
	// DispatchLatency is the virtual-time cost of picking a job off the
	// queue — the scheduler's own overhead. Default 500µs.
	DispatchLatency time.Duration
	// Retry overrides the fleet's retry policy for transient job
	// failures. Zero value means "inherit from the fleet".
	Retry fleet.RetryPolicy
	// Template, when set, backs every deploy with a frozen golden memory
	// image: guests whose requested memory matches the template's size
	// fork it copy-on-write (fleet.StartGuestFrom) instead of populating
	// fresh RAM, making deploy cost independent of guest memory size.
	// Differently-sized requests fall back to the cold-boot path.
	Template *mem.Template
}

// Plane is the management API over one fleet. Not safe for concurrent
// use: like everything sim-facing it is single-threaded by design.
type Plane struct {
	f     *fleet.Fleet
	eng   *sim.Engine
	tele  *telemetry.Registry
	spans *telemetry.SpanTracer

	maxQueue int
	slots    int
	dispatch time.Duration
	retry    fleet.RetryPolicy
	tmpl     *mem.Template

	tenants map[string]*tenant

	jobs    map[string]*Job
	queue   []*Job // FIFO of queued jobs
	running int
	backoff int // jobs waiting out a retry delay
	nextJob int
}

// New builds a plane over f. The plane shares the fleet's engine,
// telemetry registry, and span tracer, so one experiment artefact sees
// all layers.
func New(f *fleet.Fleet, cfg Config) *Plane {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 4
	}
	if cfg.DispatchLatency <= 0 {
		cfg.DispatchLatency = 500 * time.Microsecond
	}
	if cfg.Retry == (fleet.RetryPolicy{}) {
		cfg.Retry = f.Retry()
	}
	if cfg.Retry.Attempts < 1 {
		cfg.Retry.Attempts = 1
	}
	return &Plane{
		f:        f,
		eng:      f.Engine(),
		tele:     f.Telemetry(),
		spans:    f.Spans(),
		maxQueue: cfg.MaxQueue,
		slots:    cfg.Slots,
		dispatch: cfg.DispatchLatency,
		retry:    cfg.Retry,
		tmpl:     cfg.Template,
		tenants:  make(map[string]*tenant),
		jobs:     make(map[string]*Job),
	}
}

// Fleet returns the underlying fleet.
func (p *Plane) Fleet() *fleet.Fleet { return p.f }

// CreateTenant registers an account. A zero quota gets DefaultQuota;
// individual zero fields mean unlimited.
func (p *Plane) CreateTenant(name string, q Quota) error {
	if name == "" {
		return fmt.Errorf("%w: empty tenant name", ErrInvalidRequest)
	}
	if _, dup := p.tenants[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateTenant, name)
	}
	if q == (Quota{}) {
		q = DefaultQuota
	}
	p.tenants[name] = &tenant{name: name, quota: q, vms: make(map[string]*vmRecord)}
	p.tele.Counter("cp_tenants_total").Inc()
	return nil
}

// Tenants returns all tenant names, sorted.
func (p *Plane) Tenants() []string {
	out := make([]string, 0, len(p.tenants))
	for name := range p.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TenantUsage answers synchronously: reads never queue.
func (p *Plane) TenantUsage(name string) (Usage, error) {
	t, ok := p.tenants[name]
	if !ok {
		return Usage{}, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return Usage{
		Tenant:     name,
		VMs:        len(t.vms),
		MemMB:      t.usedMemMB,
		ActiveJobs: t.activeJobs,
		Quota:      t.quota,
	}, nil
}

// ListVMs answers synchronously with the tenant's VMs, sorted by name.
func (p *Plane) ListVMs(name string) ([]VMInfo, error) {
	t, ok := p.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	names := make([]string, 0, len(t.vms))
	for vm := range t.vms {
		names = append(names, vm)
	}
	sort.Strings(names)
	out := make([]VMInfo, 0, len(names))
	for _, vm := range names {
		rec := t.vms[vm]
		info := VMInfo{Tenant: name, Name: vm, MemMB: rec.memMB, State: rec.state.String()}
		if rec.state == vmRunning {
			if gi, err := p.f.Lookup(guestName(name, vm)); err == nil {
				info.Host = gi.Host
			}
		}
		out = append(out, info)
	}
	return out, nil
}

// guestName maps a tenant-scoped VM to its fleet-wide guest name. The
// "." separator keeps tenant namespaces from colliding while staying
// out of the fabric's "/"-scoped nested endpoint syntax.
func guestName(tenant, vm string) string { return tenant + "." + vm }
