package controlplane

import (
	"fmt"
	"strconv"
	"strings"
)

// Op enumerates the API's request types. Deploy/Stop/Migrate/Snapshot
// are mutations executed through the job queue; List/Usage are
// synchronous reads.
type Op int

const (
	OpDeploy Op = iota
	OpStop
	OpMigrate
	OpSnapshot
	OpList
	OpUsage
)

var opNames = [...]string{"deploy", "stop", "migrate", "snapshot", "list", "usage"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Mutation reports whether the op goes through the job queue.
func (o Op) Mutation() bool { return o <= OpSnapshot }

// Request is one typed API call. Field use by op:
//
//	deploy   Tenant VM MemMB
//	stop     Tenant VM
//	migrate  Tenant VM [Target host, "" = let the scheduler pick]
//	snapshot Tenant VM Target (snapshot name)
//	list     Tenant
//	usage    Tenant
type Request struct {
	Op     Op
	Tenant string
	VM     string
	MemMB  int64
	Target string
}

// Validate checks structural well-formedness (not tenant existence —
// that is Submit's job, since it depends on plane state).
func (r Request) Validate() error {
	if int(r.Op) >= len(opNames) || r.Op < 0 {
		return fmt.Errorf("%w: bad op %d", ErrInvalidRequest, int(r.Op))
	}
	if r.Tenant == "" || !wellFormedName(r.Tenant) {
		return fmt.Errorf("%w: bad tenant %q", ErrInvalidRequest, r.Tenant)
	}
	switch r.Op {
	case OpList, OpUsage:
		if r.VM != "" || r.MemMB != 0 || r.Target != "" {
			return fmt.Errorf("%w: %s takes only a tenant", ErrInvalidRequest, r.Op)
		}
		return nil
	}
	if r.VM == "" || !wellFormedName(r.VM) {
		return fmt.Errorf("%w: bad vm %q", ErrInvalidRequest, r.VM)
	}
	switch r.Op {
	case OpDeploy:
		if r.MemMB <= 0 {
			return fmt.Errorf("%w: deploy needs memMB > 0, got %d", ErrInvalidRequest, r.MemMB)
		}
		if r.Target != "" {
			return fmt.Errorf("%w: deploy takes no target", ErrInvalidRequest)
		}
	case OpStop:
		if r.MemMB != 0 || r.Target != "" {
			return fmt.Errorf("%w: stop takes tenant and vm only", ErrInvalidRequest)
		}
	case OpMigrate:
		if r.MemMB != 0 {
			return fmt.Errorf("%w: migrate takes no memMB", ErrInvalidRequest)
		}
		if r.Target != "" && !wellFormedName(r.Target) {
			return fmt.Errorf("%w: bad migrate target %q", ErrInvalidRequest, r.Target)
		}
	case OpSnapshot:
		if r.MemMB != 0 {
			return fmt.Errorf("%w: snapshot takes no memMB", ErrInvalidRequest)
		}
		if r.Target == "" || !wellFormedName(r.Target) {
			return fmt.Errorf("%w: bad snapshot name %q", ErrInvalidRequest, r.Target)
		}
	}
	return nil
}

// wellFormedName accepts the conservative identifier set every layer
// below tolerates: letters, digits, dash, underscore. "." is reserved
// as the tenant separator, "/" as the fabric's nesting separator.
func wellFormedName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Render emits the request in canonical wire form — the exact text
// ParseRequest accepts back. Parse∘Render is the identity on valid
// requests; the fuzz target holds the plane to that.
func (r Request) Render() string {
	switch r.Op {
	case OpDeploy:
		return fmt.Sprintf("deploy %s %s %d", r.Tenant, r.VM, r.MemMB)
	case OpStop:
		return fmt.Sprintf("stop %s %s", r.Tenant, r.VM)
	case OpMigrate:
		if r.Target == "" {
			return fmt.Sprintf("migrate %s %s", r.Tenant, r.VM)
		}
		return fmt.Sprintf("migrate %s %s %s", r.Tenant, r.VM, r.Target)
	case OpSnapshot:
		return fmt.Sprintf("snapshot %s %s %s", r.Tenant, r.VM, r.Target)
	case OpList:
		return "list " + r.Tenant
	case OpUsage:
		return "usage " + r.Tenant
	}
	return fmt.Sprintf("op(%d)", int(r.Op))
}

// ParseRequest parses the one-line wire form used by the virtsh session
// and external drivers:
//
//	deploy <tenant> <vm> <memMB>
//	stop <tenant> <vm>
//	migrate <tenant> <vm> [host]
//	snapshot <tenant> <vm> <name>
//	list <tenant>
//	usage <tenant>
//
// The returned request always passes Validate.
func ParseRequest(line string) (Request, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Request{}, fmt.Errorf("%w: empty request", ErrInvalidRequest)
	}
	var r Request
	op := -1
	for i, name := range opNames {
		if fields[0] == name {
			op = i
			break
		}
	}
	if op < 0 {
		return Request{}, fmt.Errorf("%w: unknown op %q", ErrInvalidRequest, fields[0])
	}
	r.Op = Op(op)
	args := fields[1:]
	switch r.Op {
	case OpDeploy:
		if len(args) != 3 {
			return Request{}, fmt.Errorf("%w: deploy <tenant> <vm> <memMB>", ErrInvalidRequest)
		}
		mem, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("%w: bad memMB %q", ErrInvalidRequest, args[2])
		}
		r.Tenant, r.VM, r.MemMB = args[0], args[1], mem
	case OpStop:
		if len(args) != 2 {
			return Request{}, fmt.Errorf("%w: stop <tenant> <vm>", ErrInvalidRequest)
		}
		r.Tenant, r.VM = args[0], args[1]
	case OpMigrate:
		if len(args) != 2 && len(args) != 3 {
			return Request{}, fmt.Errorf("%w: migrate <tenant> <vm> [host]", ErrInvalidRequest)
		}
		r.Tenant, r.VM = args[0], args[1]
		if len(args) == 3 {
			r.Target = args[2]
		}
	case OpSnapshot:
		if len(args) != 3 {
			return Request{}, fmt.Errorf("%w: snapshot <tenant> <vm> <name>", ErrInvalidRequest)
		}
		r.Tenant, r.VM, r.Target = args[0], args[1], args[2]
	case OpList, OpUsage:
		if len(args) != 1 {
			return Request{}, fmt.Errorf("%w: %s <tenant>", ErrInvalidRequest, r.Op)
		}
		r.Tenant = args[0]
	}
	if err := r.Validate(); err != nil {
		return Request{}, err
	}
	return r, nil
}
