// Package mem models guest physical memory at page granularity.
//
// A page's contents are abstracted as a 64-bit Content word: two pages are
// byte-identical in the modelled system if and only if their Content words
// are equal. This keeps a 1 GiB guest at ~2 MiB of simulator state while
// preserving everything KSM, live migration, and the detector care about —
// identity, uniqueness, and change of page contents.
package mem

import (
	"errors"
	"fmt"
	"math/rand"
)

// PageSize is the modelled page size in bytes (x86 small pages).
const PageSize = 4096

// Content abstracts the full byte contents of one page. Equal words model
// byte-identical pages. The zero value models the all-zeroes page, which is
// what freshly allocated guest RAM contains and what KSM merges aggressively.
type Content uint64

// ZeroPage is the content of an untouched page.
const ZeroPage Content = 0

// VMCS signature modelling: a hardware-assisted (VT-x) hypervisor keeps a
// Virtual Machine Control Structure per vCPU in memory, carrying a
// recognizable revision identifier. Memory-forensic scanners (Graziano et
// al., the paper's §VI-E) find nested hypervisors by that signature. A
// software-MMU hypervisor keeps no VMCS, which is the scanner's blind spot.
const (
	// VMCSSignatureMask selects the signature bits of a VMCS page.
	VMCSSignatureMask Content = 0xFFFFFFFF00000000
	// VMCSSignature is the modelled revision-identifier pattern.
	VMCSSignature Content = 0x12AD5EED00000000
)

// VMCSContent builds the content of a VMCS page for the given vCPU id.
func VMCSContent(id uint32) Content {
	return VMCSSignature | Content(id)
}

// IsVMCS reports whether a page content carries the VMCS signature.
func IsVMCS(c Content) bool {
	return c&VMCSSignatureMask == VMCSSignature
}

// ErrOutOfRange is returned for accesses beyond the end of a space.
var ErrOutOfRange = errors.New("mem: page number out of range")

// SharedGroup is one KSM-merged physical page: several (space, page) slots
// all backed by a single read-only frame. Writes to any member must break
// the sharing (copy-on-write).
type SharedGroup struct {
	Content Content
	Refs    int
}

type page struct {
	content Content
	shared  *SharedGroup
	// volatile pages change too often for KSM to bother merging
	// (the ksmd heuristic of skipping pages whose checksum churns).
	volatile bool
}

// WriteResult describes what a page write did, so cost models can charge
// the right amount of virtual time.
type WriteResult struct {
	// CowBroken is true when the write hit a KSM-merged page and had to
	// copy it first — the expensive case the detector's timing probe keys on.
	CowBroken bool
	// Changed is true when the written content differed from the old one.
	Changed bool
}

// Fork-level copy-on-write: a Space spawned from a Template (SpawnFrom)
// holds no page storage of its own at first — reads resolve against the
// template's frozen page array, and the first write to a page privatizes
// just that page's chunk (a fixed-size run of pages). The chunk, not the
// whole space, is the materialization unit: a 100k-guest fleet forked from
// one golden image pays for exactly the chunks its guests actually touch.
const (
	chunkShift = 8 // 256 pages = 1 MiB of modelled memory per chunk
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// Space is one guest-physical (or host-process) address space.
type Space struct {
	name string
	// npages is the authoritative page count. pages (standalone) or
	// tmpl+chunks (forked) provide the backing storage.
	npages int
	// pages is the flat backing array of a standalone space. It is nil for
	// a space spawned from a Template, which starts with zero private
	// storage and materializes chunks on first write.
	pages []page
	// tmpl is the frozen golden image a forked space reads through; nil
	// for standalone spaces.
	tmpl *Template
	// chunks holds the privatized chunk copies of a forked space, indexed
	// by page>>chunkShift; a nil entry means "still reading the template".
	chunks [][]page
	dirty  *Bitmap

	// hash is an incrementally-maintained XOR of pageSig over every
	// (index, logical content) pair, with zero pages contributing nothing —
	// so a fresh or reset space hashes to 0. Every mutation path (Write,
	// LoadFile, FillRandom, Reset) keeps it current; equal logical contents
	// therefore imply equal hashes, making hash inequality an O(1)
	// "definitely different" answer for full-space comparisons.
	hash uint64

	writes    uint64
	cowBreaks uint64
	// forkCopies counts chunks privatized from the template — the
	// fork-level analogue of cowBreaks.
	forkCopies uint64

	// onWrite, when set, observes every completed write — the model's
	// write-protection trap. A hypervisor that write-protects guest
	// pages to track changes (the paper's §VI-D countermeasure) hangs
	// its synchronizer here.
	onWrite func(page int, c Content)
}

// NewSpace returns a space of sizeBytes rounded up to whole pages, with all
// pages zero. The name appears in errors and experiment traces.
func NewSpace(name string, sizeBytes int64) *Space {
	n := int((sizeBytes + PageSize - 1) / PageSize)
	return &Space{
		name:   name,
		npages: n,
		pages:  make([]page, n),
		dirty:  NewBitmap(n),
	}
}

// pageRef returns a read-only view of page p. Callers must have bounds-
// checked p. The returned pointer may alias the shared template; it must
// never be written through — use pageMut for mutation.
func (s *Space) pageRef(p int) *page {
	if s.pages != nil {
		return &s.pages[p]
	}
	if s.chunks != nil {
		if ch := s.chunks[p>>chunkShift]; ch != nil {
			return &ch[p&chunkMask]
		}
	}
	return &s.tmpl.pages[p]
}

// pageMut returns a writable pointer to page p, privatizing the enclosing
// chunk from the template on first touch. Callers must have bounds-checked p.
func (s *Space) pageMut(p int) *page {
	if s.pages != nil {
		return &s.pages[p]
	}
	if s.chunks == nil {
		// First write since the fork: materialize the chunk index. Kept
		// out of SpawnFrom so a fork is O(1) even in its bookkeeping —
		// the index is npages/chunkSize wide, noticeable at 1 GB guests.
		s.chunks = make([][]page, (s.npages+chunkMask)>>chunkShift)
	}
	ci := p >> chunkShift
	ch := s.chunks[ci]
	if ch == nil {
		lo := ci << chunkShift
		hi := lo + chunkSize
		if hi > s.npages {
			hi = s.npages
		}
		ch = make([]page, hi-lo)
		copy(ch, s.tmpl.pages[lo:hi])
		s.chunks[ci] = ch
		s.forkCopies++
	}
	return &ch[p&chunkMask]
}

// decommissionFork detaches a forked space from its template, dropping all
// materialized chunks after releasing their KSM refcounts. Whole-space
// rewrites (Reset, FillRandom) call it before installing a fresh flat
// backing array; template pages never hold shared groups, so only the
// privatized chunks can carry refs.
func (s *Space) decommissionFork() {
	if s.tmpl == nil {
		return
	}
	for _, ch := range s.chunks {
		for i := range ch {
			if ch[i].shared != nil {
				ch[i].shared.Refs--
			}
		}
	}
	s.tmpl = nil
	s.chunks = nil
	s.pages = make([]page, s.npages)
}

// Name returns the space's label.
func (s *Space) Name() string { return s.name }

// NumPages returns the number of pages in the space.
func (s *Space) NumPages() int { return s.npages }

// SizeBytes returns the space's size in bytes.
func (s *Space) SizeBytes() int64 { return int64(s.npages) * PageSize }

// Read returns the content of page p.
func (s *Space) Read(p int) (Content, error) {
	if p < 0 || p >= s.npages {
		return 0, fmt.Errorf("%w: %s page %d of %d", ErrOutOfRange, s.name, p, s.npages)
	}
	pg := s.pageRef(p)
	if pg.shared != nil {
		return pg.shared.Content, nil
	}
	return pg.content, nil
}

// MustRead is Read for callers that have already validated the index
// (tight loops in KSM scans and migration). It panics on out-of-range.
func (s *Space) MustRead(p int) Content {
	c, err := s.Read(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Write stores c into page p, breaking copy-on-write sharing if the page is
// KSM-merged, and marks the page dirty. It reports what happened so callers
// can charge the appropriate write latency.
func (s *Space) Write(p int, c Content) (WriteResult, error) {
	if p < 0 || p >= s.npages {
		return WriteResult{}, fmt.Errorf("%w: %s page %d of %d", ErrOutOfRange, s.name, p, s.npages)
	}
	pg := s.pageMut(p)
	s.writes++
	var res WriteResult
	if pg.shared != nil {
		// Copy-on-write: detach from the shared frame regardless of
		// whether the new content equals the old — the hardware fault
		// and page copy happen before the store is inspected.
		res.CowBroken = true
		res.Changed = pg.shared.Content != c
		s.hash ^= pageSig(p, pg.shared.Content) ^ pageSig(p, c)
		pg.shared.Refs--
		pg.shared = nil
		pg.content = c
		s.cowBreaks++
	} else {
		res.Changed = pg.content != c
		s.hash ^= pageSig(p, pg.content) ^ pageSig(p, c)
		pg.content = c
	}
	s.dirty.Set(p)
	if s.onWrite != nil {
		s.onWrite(p, c)
	}
	return res, nil
}

// SetWriteHook installs (or clears, with nil) the write-trap observer.
// Only one hook is supported — matching the single write-protection
// mechanism the MMU offers.
func (s *Space) SetWriteHook(fn func(page int, c Content)) {
	s.onWrite = fn
}

// HasWriteHook reports whether a write trap is installed — visible to
// anyone inspecting the (simulated) hypervisor, which is the paper's point
// that this countermeasure "could be easily detected".
func (s *Space) HasWriteHook() bool { return s.onWrite != nil }

// MarkVolatile flags page p as too-frequently-changing for KSM to merge.
func (s *Space) MarkVolatile(p int, v bool) error {
	if p < 0 || p >= s.npages {
		return fmt.Errorf("%w: %s page %d", ErrOutOfRange, s.name, p)
	}
	// Skip the no-op case without privatizing a template chunk.
	if s.pageRef(p).volatile == v {
		return nil
	}
	s.pageMut(p).volatile = v
	return nil
}

// Volatile reports whether page p is flagged volatile.
func (s *Space) Volatile(p int) bool {
	if p < 0 || p >= s.npages {
		return false
	}
	return s.pageRef(p).volatile
}

// Shared reports whether page p is currently KSM-merged, and with which
// group.
func (s *Space) Shared(p int) (*SharedGroup, bool) {
	if p < 0 || p >= s.npages {
		return nil, false
	}
	g := s.pageRef(p).shared
	return g, g != nil
}

// AttachShared points page p at an existing shared group. The page's
// current content must equal the group's content; merging non-identical
// pages would corrupt the guest, so this returns an error instead.
// Only the KSM daemon calls this.
func (s *Space) AttachShared(p int, g *SharedGroup) error {
	if p < 0 || p >= s.npages {
		return fmt.Errorf("%w: %s page %d", ErrOutOfRange, s.name, p)
	}
	if s.pageRef(p).shared == g {
		return nil
	}
	// Validate against the read view before privatizing anything.
	cur, _, _ := s.PageInfo(p)
	if cur != g.Content {
		return fmt.Errorf("mem: attach %s page %d: content %#x != group %#x",
			s.name, p, cur, g.Content)
	}
	pg := s.pageMut(p)
	if pg.shared != nil {
		pg.shared.Refs--
	}
	pg.shared = g
	g.Refs++
	return nil
}

// DirtyCount returns the number of pages written since the dirty log was
// last drained.
func (s *Space) DirtyCount() int { return s.dirty.Count() }

// DrainDirty harvests and clears up to max dirty page numbers (max <= 0
// means all). This models KVM's KVM_GET_DIRTY_LOG fetch-and-clear.
func (s *Space) DrainDirty(max int) []int { return s.dirty.Drain(max) }

// DrainDirtyInto is DrainDirty with a caller-owned buffer: harvested page
// numbers are appended to buf and the extended buffer returned, so a loop
// that reuses its buffer drains without allocating. This is the primitive
// migration's pre-copy rounds run on.
func (s *Space) DrainDirtyInto(buf []int, max int) []int {
	return s.dirty.DrainInto(buf, max)
}

// ClearDirty resets the dirty log without reading it.
func (s *Space) ClearDirty() { s.dirty.ClearAll() }

// MarkAllDirty flags every page dirty — how pre-copy migration seeds its
// first round ("transfer everything once").
func (s *Space) MarkAllDirty() { s.dirty.SetAll() }

// Stats reports lifetime write counters.
func (s *Space) Stats() (writes, cowBreaks uint64) {
	return s.writes, s.cowBreaks
}

// Reset returns every page to zero, detaching any KSM sharing with proper
// refcount accounting and clearing volatility flags and the dirty log —
// what a machine reset does to RAM contents. A forked space detaches from
// its template: post-reset contents owe nothing to the golden image.
func (s *Space) Reset() {
	s.decommissionFork()
	for i := range s.pages {
		if s.pages[i].shared != nil {
			s.pages[i].shared.Refs--
			s.pages[i].shared = nil
		}
		s.pages[i].content = ZeroPage
		s.pages[i].volatile = false
	}
	s.hash = 0
	s.dirty.ClearAll()
}

// FillRandom populates the space with guest-like contents: zeroFraction of
// the pages stay zero (free memory), the rest get contents drawn from rng
// that are almost surely unique. The dirty log is cleared afterwards so the
// fill itself doesn't count as guest activity.
func (s *Space) FillRandom(rng *rand.Rand, zeroFraction float64) {
	s.decommissionFork()
	h := uint64(0)
	for i := range s.pages {
		if rng.Float64() < zeroFraction {
			s.pages[i].content = ZeroPage
		} else {
			// Avoid drawing the zero value for a "used" page.
			s.pages[i].content = Content(rng.Uint64() | 1)
			h ^= pageSig(i, s.pages[i].content)
		}
		s.pages[i].shared = nil
	}
	s.hash = h
	s.dirty.ClearAll()
}

// Snapshot copies out the logical contents of every page (resolving shared
// frames). Migration uses it to verify the memory-equality invariant.
// Loops that snapshot repeatedly should hold a buffer and call SnapshotInto.
func (s *Space) Snapshot() []Content {
	return s.SnapshotInto(nil)
}

// SnapshotInto is Snapshot with a caller-owned buffer: dst is resized (and
// reallocated only if its capacity is short) to hold one Content per page,
// filled with the logical contents, and returned. A loop that reuses the
// returned buffer snapshots without allocating.
func (s *Space) SnapshotInto(dst []Content) []Content {
	if cap(dst) < s.npages {
		dst = make([]Content, s.npages)
	}
	dst = dst[:s.npages]
	fill := func(pages []page, base int) {
		for i := range pages {
			if pages[i].shared != nil {
				dst[base+i] = pages[i].shared.Content
			} else {
				dst[base+i] = pages[i].content
			}
		}
	}
	if s.pages != nil {
		fill(s.pages, 0)
		return dst
	}
	if s.chunks == nil {
		fill(s.tmpl.pages, 0)
		return dst
	}
	for ci, ch := range s.chunks {
		lo := ci << chunkShift
		if ch == nil {
			hi := lo + chunkSize
			if hi > s.npages {
				hi = s.npages
			}
			ch = s.tmpl.pages[lo:hi]
		}
		fill(ch, lo)
	}
	return dst
}

// Fingerprint hashes the first n pages of the space (clamped to its size).
// The low pages of guest RAM hold the kernel image, so this models the
// OS fingerprint a VMI tool would derive; both the fingerprint baseline
// detector and the attacker's impersonation use it.
func Fingerprint(s *Space, n int) uint64 {
	if n > s.NumPages() {
		n = s.NumPages()
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for p := 0; p < n; p++ {
		c := uint64(s.MustRead(p))
		for i := 0; i < 8; i++ {
			h ^= c & 0xff
			h *= prime64
			c >>= 8
		}
	}
	return h
}

// pageSig is the per-page contribution to a space's content hash: a
// splitmix64-style mix of (index, logical content). Zero pages contribute
// nothing, so an untouched space hashes to 0 and sparse updates stay cheap.
func pageSig(p int, c Content) uint64 {
	if c == ZeroPage {
		return 0
	}
	x := uint64(p)*0x9E3779B97F4A7C15 + uint64(c)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

// RangeHash digests the logical contents of pages [from, from+n), resolving
// shared frames and clamping the range to the space. It is the primitive an
// invariant-checksum detector audits pinned regions with: equal logical
// contents of the range guarantee equal hashes, and — unlike Fingerprint —
// it composes with the per-page pageSig the full-space ContentHash uses, so
// a range covering the whole space reproduces ContentHash exactly.
func (s *Space) RangeHash(from, n int) uint64 {
	if from < 0 {
		n += from
		from = 0
	}
	if from+n > s.npages {
		n = s.npages - from
	}
	h := uint64(0)
	for p := from; p < from+n; p++ {
		pg := s.pageRef(p)
		c := pg.content
		if pg.shared != nil {
			c = pg.shared.Content
		}
		h ^= pageSig(p, c)
	}
	return h
}

// ContentHash returns the space's incrementally-maintained content digest.
// Equal logical contents guarantee equal hashes; differing hashes guarantee
// differing contents. Hash equality alone does not prove content equality
// (use EqualContents, which verifies), but it makes "definitely changed"
// an O(1) question.
func (s *Space) ContentHash() uint64 { return s.hash }

// PageInfo returns page p's logical content together with its shared and
// volatile flags in one bounds-checked lookup — the batched read the KSM
// scan loop runs on instead of three error-path accessors per page.
// Out-of-range pages read as a zero, unshared, non-volatile page.
func (s *Space) PageInfo(p int) (c Content, shared, volatile bool) {
	if p < 0 || p >= s.npages {
		return ZeroPage, false, false
	}
	pg := s.pageRef(p)
	if pg.shared != nil {
		return pg.shared.Content, true, pg.volatile
	}
	return pg.content, false, pg.volatile
}

// EqualContents reports whether two spaces hold identical logical contents.
// The maintained content hashes reject unequal spaces in O(1); a hash match
// falls back to the page-by-page verify, so a (vanishingly unlikely) hash
// collision can never report false equality.
func EqualContents(a, b *Space) bool {
	if a.NumPages() != b.NumPages() {
		return false
	}
	if a.hash != b.hash {
		return false
	}
	for i := 0; i < a.NumPages(); i++ {
		if a.MustRead(i) != b.MustRead(i) {
			return false
		}
	}
	return true
}
