package mem

import (
	"math/rand"
	"testing"
)

// templateFixture builds a standalone space with guest-like contents —
// random pages, one KSM-shared page, one volatile page — and freezes it.
func templateFixture(t *testing.T) (*Space, *Template) {
	t.Helper()
	src := NewSpace("golden", 4*chunkSize*PageSize)
	src.FillRandom(rand.New(rand.NewSource(42)), 0.3)
	g := &SharedGroup{Content: src.MustRead(7)}
	if err := src.AttachShared(7, g); err != nil {
		t.Fatal(err)
	}
	if err := src.MarkVolatile(9, true); err != nil {
		t.Fatal(err)
	}
	return src, Freeze("golden.img", src)
}

func TestFreezeCapturesLogicalContents(t *testing.T) {
	src, tmpl := templateFixture(t)
	if tmpl.NumPages() != src.NumPages() || tmpl.SizeBytes() != src.SizeBytes() {
		t.Fatalf("template geometry %d/%d != source %d/%d",
			tmpl.NumPages(), tmpl.SizeBytes(), src.NumPages(), src.SizeBytes())
	}
	if tmpl.ContentHash() != src.ContentHash() {
		t.Fatalf("template hash %#x != source hash %#x", tmpl.ContentHash(), src.ContentHash())
	}
	for p := 0; p < src.NumPages(); p++ {
		want := src.MustRead(p)
		got, err := tmpl.Read(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("template page %d = %#x, want %#x", p, got, want)
		}
	}
	// Freezing must not disturb the source's sharing or volatility.
	if _, shared := src.Shared(7); !shared {
		t.Fatal("source page 7 lost its shared group after Freeze")
	}
	if !src.Volatile(9) {
		t.Fatal("source page 9 lost its volatile flag after Freeze")
	}
	if _, err := tmpl.Read(tmpl.NumPages()); err == nil {
		t.Fatal("out-of-range template read did not error")
	}
}

func TestSpawnFromSharesUntilFirstWrite(t *testing.T) {
	src, tmpl := templateFixture(t)
	a := SpawnFrom("guest-a", tmpl)
	b := SpawnFrom("guest-b", tmpl)
	if tmpl.Spawns() != 2 {
		t.Fatalf("template spawns = %d, want 2", tmpl.Spawns())
	}
	if !a.Forked() || a.Template() != tmpl {
		t.Fatal("spawned space does not report its template")
	}
	if a.ContentHash() != tmpl.ContentHash() {
		t.Fatalf("spawn hash %#x != template hash %#x", a.ContentHash(), tmpl.ContentHash())
	}
	if !EqualContents(a, b) || !EqualContents(a, src) {
		t.Fatal("fresh spawns must equal each other and the frozen source")
	}
	if a.MaterializedChunks() != 0 || a.DirtyCount() != 0 {
		t.Fatalf("fresh spawn materialized %d chunks, %d dirty — want 0/0",
			a.MaterializedChunks(), a.DirtyCount())
	}
	// Sharing and volatility do not travel across the fork: the template
	// holds plain contents only.
	if _, shared := a.Shared(7); shared {
		t.Fatal("spawned space inherited a KSM shared group")
	}
	if a.Volatile(9) {
		t.Fatal("spawned space inherited a volatile flag")
	}
}

// TestCOWForkDivergence is the satellite's core scenario: fork a template,
// write on both sides, and check that ContentHash / EqualContents / the
// dirty bitmap / KSM-volatility state all diverge correctly while the
// template and untouched siblings stay pristine.
func TestCOWForkDivergence(t *testing.T) {
	_, tmpl := templateFixture(t)
	a := SpawnFrom("guest-a", tmpl)
	b := SpawnFrom("guest-b", tmpl)
	base := tmpl.ContentHash()

	const p = 5
	orig, err := tmpl.Read(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(p, orig^0x1111); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(p, orig^0x2222); err != nil {
		t.Fatal(err)
	}

	if a.ContentHash() == base || b.ContentHash() == base || a.ContentHash() == b.ContentHash() {
		t.Fatalf("hashes failed to diverge: a=%#x b=%#x base=%#x",
			a.ContentHash(), b.ContentHash(), base)
	}
	if EqualContents(a, b) {
		t.Fatal("diverged forks compare equal")
	}
	if got, _ := tmpl.Read(p); got != orig {
		t.Fatalf("template page changed under fork write: %#x != %#x", got, orig)
	}
	if a.MustRead(p) != orig^0x1111 || b.MustRead(p) != orig^0x2222 {
		t.Fatal("fork reads do not see their own writes")
	}
	// Only the written page is dirty, and only the enclosing chunk is
	// materialized.
	if a.DirtyCount() != 1 || a.MaterializedChunks() != 1 || a.ForkStats() != 1 {
		t.Fatalf("a: dirty=%d chunks=%d copies=%d, want 1/1/1",
			a.DirtyCount(), a.MaterializedChunks(), a.ForkStats())
	}
	if got := a.DrainDirty(0); len(got) != 1 || got[0] != p {
		t.Fatalf("a dirty log = %v, want [%d]", got, p)
	}
	// A neighbouring page in the same chunk reads the copied content, and a
	// page in another chunk still reads straight from the template.
	if a.MustRead(p+1) != mustTmpl(t, tmpl, p+1) || a.MustRead(3*chunkSize) != mustTmpl(t, tmpl, 3*chunkSize) {
		t.Fatal("untouched pages diverged from template")
	}
	// Writing the original content back restores the exact hash — the
	// incremental hash invariant holds across the fork boundary.
	if _, err := a.Write(p, orig); err != nil {
		t.Fatal(err)
	}
	if a.ContentHash() != base {
		t.Fatalf("hash %#x after undo, want %#x", a.ContentHash(), base)
	}
	if !EqualContents(a, SpawnFrom("fresh", tmpl)) {
		t.Fatal("undone fork does not equal a fresh spawn")
	}
	// RangeHash over the whole forked space must reproduce ContentHash.
	if b.RangeHash(0, b.NumPages()) != b.ContentHash() {
		t.Fatal("RangeHash over full forked space != ContentHash")
	}
}

func mustTmpl(t *testing.T, tmpl *Template, p int) Content {
	t.Helper()
	c, err := tmpl.Read(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestForkKSMAndVolatility: KSM state acquired after the fork is private
// to the fork — merging, COW breaks, and volatility flags on one fork leave
// the template and its siblings untouched.
func TestForkKSMAndVolatility(t *testing.T) {
	_, tmpl := templateFixture(t)
	a := SpawnFrom("guest-a", tmpl)
	b := SpawnFrom("guest-b", tmpl)

	const p = 3
	g := &SharedGroup{Content: mustTmpl(t, tmpl, p)}
	if err := a.AttachShared(p, g); err != nil {
		t.Fatal(err)
	}
	if g.Refs != 1 {
		t.Fatalf("group refs = %d, want 1", g.Refs)
	}
	if _, shared := b.Shared(p); shared {
		t.Fatal("sibling fork sees a's KSM merge")
	}
	if a.ContentHash() != tmpl.ContentHash() {
		t.Fatal("attaching an equal-content group changed the hash")
	}
	res, err := a.Write(p, 0xdead)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CowBroken {
		t.Fatal("write to merged fork page did not break COW")
	}
	if g.Refs != 0 {
		t.Fatalf("group refs = %d after COW break, want 0", g.Refs)
	}
	_, cows := a.Stats()
	if cows != 1 {
		t.Fatalf("cowBreaks = %d, want 1", cows)
	}
	if err := a.MarkVolatile(p, true); err != nil {
		t.Fatal(err)
	}
	if b.Volatile(p) {
		t.Fatal("sibling fork sees a's volatile flag")
	}
	// Marking a template-backed page with its existing (false) volatility
	// must not materialize a chunk.
	before := b.MaterializedChunks()
	if err := b.MarkVolatile(2*chunkSize, false); err != nil {
		t.Fatal(err)
	}
	if b.MaterializedChunks() != before {
		t.Fatal("no-op MarkVolatile privatized a chunk")
	}
}

func TestForkResetAndFillRandomDetach(t *testing.T) {
	_, tmpl := templateFixture(t)
	a := SpawnFrom("guest-a", tmpl)
	if _, err := a.Write(0, 0xbeef); err != nil {
		t.Fatal(err)
	}
	a.Reset()
	if a.Forked() || a.ContentHash() != 0 || a.MustRead(0) != ZeroPage {
		t.Fatal("Reset did not fully detach and zero the fork")
	}
	if got := mustTmpl(t, tmpl, 0); got == 0xbeef {
		t.Fatal("fork write leaked into template")
	}

	b := SpawnFrom("guest-b", tmpl)
	b.FillRandom(rand.New(rand.NewSource(7)), 0.5)
	if b.Forked() {
		t.Fatal("FillRandom left the space attached to its template")
	}
	if b.RangeHash(0, b.NumPages()) != b.ContentHash() {
		t.Fatal("detached space hash invariant broken")
	}
}

// TestSpawnFromAllocCeiling is the O(1) proof: forking costs the same small
// constant number of allocations whether the template is 4 MiB or 256 MiB —
// no per-page work happens at spawn time.
func TestSpawnFromAllocCeiling(t *testing.T) {
	allocsFor := func(pages int) float64 {
		src := NewSpace("src", int64(pages)*PageSize)
		src.FillRandom(rand.New(rand.NewSource(1)), 0.2)
		tmpl := Freeze("img", src)
		i := 0
		return testing.AllocsPerRun(100, func() {
			s := SpawnFrom("g", tmpl)
			i += s.NumPages() // keep the spawn observable
		})
	}
	small := allocsFor(1024)  // 4 MiB
	large := allocsFor(65536) // 256 MiB, 64× larger
	const ceiling = 6         // space + chunk index + bitmap + slack
	if small > ceiling || large > ceiling {
		t.Fatalf("SpawnFrom allocates %v (small) / %v (large) objects, ceiling %d",
			small, large, ceiling)
	}
	if small != large {
		t.Fatalf("SpawnFrom alloc count grows with template size: %v -> %v", small, large)
	}
}

// TestSnapshotIntoReuse: the reusable-buffer snapshot path matches
// Snapshot exactly and allocates nothing once the buffer is warm, on both
// standalone and forked spaces.
func TestSnapshotIntoReuse(t *testing.T) {
	src, tmpl := templateFixture(t)
	fork := SpawnFrom("guest", tmpl)
	if _, err := fork.Write(chunkSize+1, 0x777); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Space{src, fork} {
		want := s.Snapshot()
		got := s.SnapshotInto(make([]Content, 0))
		if len(got) != len(want) {
			t.Fatalf("%s: SnapshotInto len %d, want %d", s.Name(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: SnapshotInto[%d] = %#x, want %#x", s.Name(), i, got[i], want[i])
			}
		}
		buf := make([]Content, s.NumPages())
		allocs := testing.AllocsPerRun(100, func() {
			buf = s.SnapshotInto(buf)
		})
		if allocs != 0 {
			t.Fatalf("%s: warm SnapshotInto allocates %v objects/op, want 0", s.Name(), allocs)
		}
	}
}
