package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refHash recomputes a space's content hash from scratch; the maintained
// incremental hash must always agree with it.
func refHash(s *Space) uint64 {
	h := uint64(0)
	for i, c := range s.Snapshot() {
		h ^= pageSig(i, c)
	}
	return h
}

// TestDrainIntoMatchesDrain: DrainInto with a fresh buffer is observably
// identical to the allocating Drain for arbitrary bit patterns and limits.
func TestDrainIntoMatchesDrain(t *testing.T) {
	prop := func(seedBits []uint16, max8 uint8) bool {
		a := NewBitmap(300)
		b := NewBitmap(300)
		for _, s := range seedBits {
			a.Set(int(s) % 300)
			b.Set(int(s) % 300)
		}
		max := int(max8) % 40
		got := b.DrainInto(nil, max)
		want := a.Drain(max)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		if a.Count() != b.Count() {
			return false
		}
		for i := 0; i < 300; i++ {
			if a.Test(i) != b.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDrainIntoAppendsAndClears: drained bits come back ascending, get
// cleared in place, and land after any existing buffer contents.
func TestDrainIntoAppendsAndClears(t *testing.T) {
	b := NewBitmap(200)
	for _, i := range []int{3, 64, 65, 190} {
		b.Set(i)
	}
	buf := make([]int, 0, 8)
	buf = append(buf, -1)
	buf = b.DrainInto(buf, 3)
	want := []int{-1, 3, 64, 65}
	if len(buf) != len(want) {
		t.Fatalf("buf = %v, want %v", buf, want)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("buf = %v, want %v", buf, want)
		}
	}
	if b.Count() != 1 || !b.Test(190) {
		t.Fatalf("after partial drain: count=%d test(190)=%v", b.Count(), b.Test(190))
	}
	buf = b.DrainInto(buf[:0], 0)
	if len(buf) != 1 || buf[0] != 190 || b.Count() != 0 {
		t.Fatalf("final drain buf=%v count=%d", buf, b.Count())
	}
}

// TestNextSetFrom walks a sparse bitmap across word boundaries.
func TestNextSetFrom(t *testing.T) {
	b := NewBitmap(300)
	for _, i := range []int{0, 63, 64, 200} {
		b.Set(i)
	}
	cases := []struct{ from, want int }{
		{-5, 0}, {0, 0}, {1, 63}, {63, 63}, {64, 64}, {65, 200},
		{200, 200}, {201, -1}, {300, -1}, {1000, -1},
	}
	for _, c := range cases {
		if got := b.NextSetFrom(c.from); got != c.want {
			t.Errorf("NextSetFrom(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := NewBitmap(128).NextSetFrom(0); got != -1 {
		t.Errorf("empty NextSetFrom(0) = %d, want -1", got)
	}
}

// TestSetAllTailWord: the word-fill SetAll must not set ghost bits past
// Len — a Drain afterwards yields exactly Len indices.
func TestSetAllTailWord(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		b := NewBitmap(n)
		b.SetAll()
		if b.Count() != n {
			t.Fatalf("n=%d: Count = %d after SetAll", n, b.Count())
		}
		got := b.Drain(0)
		if len(got) != n {
			t.Fatalf("n=%d: drained %d bits", n, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("n=%d: drain[%d] = %d", n, i, v)
			}
		}
	}
}

// TestContentHashTracksMutations: after any interleaving of writes, file
// loads, resets, fills, and shared attach/detach, the incremental hash
// equals a from-scratch recompute.
func TestContentHashTracksMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSpace("g", 64*PageSize)
	check := func(stage string) {
		t.Helper()
		if s.ContentHash() != refHash(s) {
			t.Fatalf("%s: incremental hash %#x != recomputed %#x", stage, s.ContentHash(), refHash(s))
		}
	}
	check("fresh (must be 0)")
	if s.ContentHash() != 0 {
		t.Fatalf("fresh space hash = %#x, want 0", s.ContentHash())
	}

	s.FillRandom(rng, 0.3)
	check("fill-random")

	for i := 0; i < 40; i++ {
		if _, err := s.Write(rng.Intn(64), Content(rng.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	check("writes")

	f := GenerateFile(rng, "file-a", 10)
	if err := s.LoadFile(f, 20); err != nil {
		t.Fatal(err)
	}
	check("load-file")

	// KSM-style merge then COW break: attach leaves content (and hash)
	// alone, the break rewrites through Write.
	c := s.MustRead(5)
	g := &SharedGroup{Content: c}
	if err := s.AttachShared(5, g); err != nil {
		t.Fatal(err)
	}
	check("attach-shared")
	if _, err := s.Write(5, Content(rng.Uint64())); err != nil {
		t.Fatal(err)
	}
	check("cow-break")

	if err := s.LoadFile(f.Mutated(), 18); err != nil {
		t.Fatal(err)
	}
	check("load-file-v2")

	s.Reset()
	check("reset")
	if s.ContentHash() != 0 {
		t.Fatalf("reset space hash = %#x, want 0", s.ContentHash())
	}
}

// TestEqualContentsHashAgreement: EqualContents (now hash-gated) still
// decides exactly by logical contents.
func TestEqualContentsHashAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewSpace("a", 32*PageSize)
	b := NewSpace("b", 32*PageSize)
	for i := 0; i < 32; i++ {
		c := Content(rng.Uint64() | 1)
		if _, err := a.Write(i, c); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Write(i, c); err != nil {
			t.Fatal(err)
		}
	}
	if !EqualContents(a, b) {
		t.Fatal("identically-written spaces not equal")
	}
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("identically-written spaces hash differently")
	}
	old := b.MustRead(9)
	if _, err := b.Write(9, MutateContent(old)); err != nil {
		t.Fatal(err)
	}
	if EqualContents(a, b) {
		t.Fatal("spaces equal after divergent write")
	}
	if _, err := b.Write(9, old); err != nil {
		t.Fatal(err)
	}
	if !EqualContents(a, b) || a.ContentHash() != b.ContentHash() {
		t.Fatal("write-back did not restore equality (hash not reversible?)")
	}
}

// TestPageInfoMatchesAccessors: the batched lookup agrees with the
// single-field accessors on every page, shared or not.
func TestPageInfoMatchesAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSpace("g", 16*PageSize)
	s.FillRandom(rng, 0.25)
	g := &SharedGroup{Content: s.MustRead(4)}
	if err := s.AttachShared(4, g); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkVolatile(7, true); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 16; p++ {
		c, shared, vol := s.PageInfo(p)
		if c != s.MustRead(p) {
			t.Fatalf("page %d: PageInfo content %#x != Read %#x", p, c, s.MustRead(p))
		}
		_, wantShared := s.Shared(p)
		if shared != wantShared || vol != s.Volatile(p) {
			t.Fatalf("page %d: PageInfo flags (%v,%v), want (%v,%v)",
				p, shared, vol, wantShared, s.Volatile(p))
		}
	}
	if c, shared, vol := s.PageInfo(99); c != ZeroPage || shared || vol {
		t.Fatalf("out-of-range PageInfo = (%#x,%v,%v), want zero page", c, shared, vol)
	}
}

// TestSpaceWriteZeroAlloc pins that the write fast path (with the hash
// update) stays allocation-free.
func TestSpaceWriteZeroAlloc(t *testing.T) {
	s := NewSpace("g", 64*PageSize)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := s.Write(i%64, Content(i)|1); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Space.Write allocates %v objects/op, want 0", allocs)
	}
}

// TestDrainDirtyIntoZeroAlloc: the dirty-harvest loop with a reused buffer
// — migration's per-round shape — allocates nothing.
func TestDrainDirtyIntoZeroAlloc(t *testing.T) {
	s := NewSpace("g", 256*PageSize)
	buf := make([]int, 0, s.NumPages())
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		for p := 0; p < 32; p++ {
			if _, err := s.Write((i+p*7)%256, Content(i+p)|1); err != nil {
				t.Fatal(err)
			}
		}
		i++
		buf = s.DrainDirtyInto(buf[:0], 0)
		if len(buf) == 0 {
			t.Fatal("expected dirty pages")
		}
	})
	if allocs != 0 {
		t.Fatalf("dirty-harvest round allocates %v objects/op, want 0", allocs)
	}
}
