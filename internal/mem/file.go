package mem

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// File is an in-memory file image: a named sequence of page contents. The
// detection protocol loads the same file ("File-A", e.g. a random mp3) into
// L0 and into the guest and relies on its pages being globally unique.
type File struct {
	Name  string
	Pages []Content
}

// GenerateFile builds a file of n pages whose contents are derived from the
// name and a nonce drawn from rng, so every page is unique with overwhelming
// probability — the paper's requirement that "no identical pages also exist
// in the memory".
func GenerateFile(rng *rand.Rand, name string, n int) *File {
	nonce := rng.Uint64()
	f := &File{
		Name:  name,
		Pages: make([]Content, n),
	}
	for i := range f.Pages {
		f.Pages[i] = pageContent(name, nonce, i, 0)
	}
	return f
}

// Mutated returns a copy of the file with every page's content slightly
// changed — the paper's "File-A-v2", produced by changing one byte in each
// page. Calling Mutated again on the result yields a further version.
func (f *File) Mutated() *File {
	v2 := &File{
		Name:  f.Name + ".v2",
		Pages: make([]Content, len(f.Pages)),
	}
	for i, c := range f.Pages {
		v2.Pages[i] = MutateContent(c)
	}
	return v2
}

// Slice returns a sub-file view of n pages starting at page `from`
// (clamped to the file). The returned file shares no backing with the
// original.
func (f *File) Slice(from, n int) *File {
	if from < 0 {
		from = 0
	}
	if from > len(f.Pages) {
		from = len(f.Pages)
	}
	if from+n > len(f.Pages) {
		n = len(f.Pages) - from
	}
	out := &File{
		Name:  fmt.Sprintf("%s[%d:%d]", f.Name, from, from+n),
		Pages: append([]Content(nil), f.Pages[from:from+n]...),
	}
	return out
}

// NumPages returns the file's length in pages.
func (f *File) NumPages() int { return len(f.Pages) }

// SizeBytes returns the file's size in bytes.
func (f *File) SizeBytes() int64 { return int64(len(f.Pages)) * PageSize }

// LoadFile writes the file's pages into the space starting at page `at`,
// without recording them in the dirty log (loading a file into the page
// cache is not guest write traffic for migration purposes). It returns an
// error if the file does not fit.
func (s *Space) LoadFile(f *File, at int) error {
	if at < 0 || at+len(f.Pages) > s.npages {
		return fmt.Errorf("%w: load %q (%d pages) at %d into %s (%d pages)",
			ErrOutOfRange, f.Name, len(f.Pages), at, s.name, s.npages)
	}
	for i, c := range f.Pages {
		p := at + i
		pg := s.pageMut(p)
		if pg.shared != nil {
			s.hash ^= pageSig(p, pg.shared.Content)
			pg.shared.Refs--
			pg.shared = nil
		} else {
			s.hash ^= pageSig(p, pg.content)
		}
		pg.content = c
		s.hash ^= pageSig(p, c)
	}
	return nil
}

// FileResident reports how many of the file's pages are present (with
// matching contents) at the given offset in the space.
func (s *Space) FileResident(f *File, at int) int {
	n := 0
	for i, c := range f.Pages {
		p := at + i
		if p < 0 || p >= s.npages {
			continue
		}
		if got, err := s.Read(p); err == nil && got == c {
			n++
		}
	}
	return n
}

func pageContent(name string, nonce uint64, page int, version int) Content {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d/%d", name, nonce, page, version)
	c := Content(h.Sum64())
	if c == ZeroPage {
		c = 1
	}
	return c
}

// MutateContent derives the "one byte changed" version of a page content:
// deterministic, never the identity, never zero, and not involutive
// (mutating twice does not restore the original).
func MutateContent(c Content) Content {
	m := (c ^ 0x9e3779b97f4a7c15) * 0x2545f4914f6cdd1d
	if m == ZeroPage {
		m = 1
	}
	if m == c {
		m++
	}
	return m
}
