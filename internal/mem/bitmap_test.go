package mem

import (
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130) // spans three words
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitmap len=%d count=%d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("count = %d, want 4", b.Count())
	}
	b.Set(63) // idempotent
	if b.Count() != 4 {
		t.Fatalf("double-set changed count to %d", b.Count())
	}
	b.Clear(63)
	if b.Test(63) || b.Count() != 3 {
		t.Fatalf("clear failed: test=%v count=%d", b.Test(63), b.Count())
	}
	b.Clear(63) // idempotent
	if b.Count() != 3 {
		t.Fatalf("double-clear changed count to %d", b.Count())
	}
}

func TestBitmapOutOfRange(t *testing.T) {
	b := NewBitmap(10)
	b.Set(-1)
	b.Set(10)
	b.Clear(-1)
	b.Clear(10)
	if b.Count() != 0 {
		t.Fatalf("out-of-range ops changed count to %d", b.Count())
	}
	if b.Test(-1) || b.Test(10) {
		t.Fatal("out-of-range Test returned true")
	}
}

func TestBitmapNegativeSize(t *testing.T) {
	b := NewBitmap(-5)
	if b.Len() != 0 {
		t.Fatalf("negative-size bitmap len = %d", b.Len())
	}
}

func TestBitmapSetAllClearAll(t *testing.T) {
	b := NewBitmap(100)
	b.SetAll()
	if b.Count() != 100 {
		t.Fatalf("SetAll count = %d", b.Count())
	}
	b.ClearAll()
	if b.Count() != 0 {
		t.Fatalf("ClearAll count = %d", b.Count())
	}
}

func TestBitmapForEachAscending(t *testing.T) {
	b := NewBitmap(200)
	want := []int{3, 64, 65, 127, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestBitmapDrain(t *testing.T) {
	b := NewBitmap(100)
	for i := 0; i < 100; i += 2 {
		b.Set(i)
	}
	first := b.Drain(10)
	if len(first) != 10 {
		t.Fatalf("Drain(10) returned %d", len(first))
	}
	for i, idx := range first {
		if idx != i*2 {
			t.Fatalf("Drain returned %v, want ascending evens", first)
		}
		if b.Test(idx) {
			t.Fatalf("drained bit %d still set", idx)
		}
	}
	if b.Count() != 40 {
		t.Fatalf("count after partial drain = %d, want 40", b.Count())
	}
	rest := b.Drain(0) // no limit
	if len(rest) != 40 || b.Count() != 0 {
		t.Fatalf("Drain(0) returned %d, count %d", len(rest), b.Count())
	}
}

func TestBitmapClone(t *testing.T) {
	b := NewBitmap(64)
	b.Set(5)
	c := b.Clone()
	c.Set(6)
	if b.Test(6) {
		t.Fatal("clone mutation leaked into original")
	}
	if !c.Test(5) {
		t.Fatal("clone lost original bit")
	}
}

// Property: after setting an arbitrary set of indices, Count equals the
// number of distinct in-range indices, and Drain returns exactly those in
// ascending order.
func TestBitmapProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 4096
		b := NewBitmap(n)
		distinct := map[int]bool{}
		for _, r := range raw {
			i := int(r) % n
			b.Set(i)
			distinct[i] = true
		}
		if b.Count() != len(distinct) {
			return false
		}
		drained := b.Drain(0)
		if len(drained) != len(distinct) {
			return false
		}
		for i := 1; i < len(drained); i++ {
			if drained[i] <= drained[i-1] {
				return false
			}
		}
		for _, i := range drained {
			if !distinct[i] {
				return false
			}
		}
		return b.Count() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
