package mem

import "math/bits"

// Bitmap is a fixed-size bitset used for per-page dirty tracking. Live
// migration's pre-copy loop repeatedly harvests and clears it, so the
// operations are kept allocation-free.
type Bitmap struct {
	words []uint64
	n     int
	set   int
}

// NewBitmap returns a bitmap of n bits, all clear.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		n = 0
	}
	return &Bitmap{
		words: make([]uint64, (n+63)/64),
		n:     n,
	}
}

// Len returns the number of bits the bitmap tracks.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.set }

// Test reports whether bit i is set. Out-of-range bits read as clear.
func (b *Bitmap) Test(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Set sets bit i. Out-of-range indices are ignored.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.set++
	}
}

// Clear clears bit i. Out-of-range indices are ignored.
func (b *Bitmap) Clear(i int) {
	if i < 0 || i >= b.n {
		return
	}
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.set--
	}
}

// ClearAll clears every bit.
func (b *Bitmap) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.set = 0
}

// SetAll sets every bit.
func (b *Bitmap) SetAll() {
	for i := 0; i < b.n; i++ {
		b.Set(i)
	}
}

// ForEach invokes fn for every set bit, in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &^= 1 << uint(bit)
		}
	}
}

// Drain harvests up to max set bits (ascending), clearing them as it goes,
// and returns their indices. max <= 0 means no limit. This is the
// "fetch-and-clear the dirty log" primitive pre-copy migration uses.
func (b *Bitmap) Drain(max int) []int {
	if max <= 0 || max > b.set {
		max = b.set
	}
	out := make([]int, 0, max)
	for wi := 0; wi < len(b.words) && len(out) < max; wi++ {
		w := b.words[wi]
		for w != 0 && len(out) < max {
			bit := bits.TrailingZeros64(w)
			idx := wi*64 + bit
			out = append(out, idx)
			w &^= 1 << uint(bit)
		}
	}
	for _, i := range out {
		b.Clear(i)
	}
	return out
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{
		words: append([]uint64(nil), b.words...),
		n:     b.n,
		set:   b.set,
	}
	return c
}
