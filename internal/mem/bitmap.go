package mem

import "math/bits"

// Bitmap is a fixed-size bitset used for per-page dirty tracking. Live
// migration's pre-copy loop repeatedly harvests and clears it, so the
// operations are kept allocation-free.
//
// The word array is allocated lazily on the first Set/SetAll: an all-clear
// bitmap carries no storage, which is what keeps SpawnFrom — whose forked
// spaces start with an empty dirty log — O(1) in both time and bytes
// regardless of how much guest memory the bitmap covers.
type Bitmap struct {
	words []uint64
	n     int
	set   int
}

// NewBitmap returns a bitmap of n bits, all clear. No word storage is
// allocated until a bit is first set.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		n = 0
	}
	return &Bitmap{n: n}
}

// ensure allocates the word array on first use.
func (b *Bitmap) ensure() {
	if b.words == nil && b.n > 0 {
		b.words = make([]uint64, (b.n+63)/64)
	}
}

// Len returns the number of bits the bitmap tracks.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.set }

// Test reports whether bit i is set. Out-of-range bits read as clear.
//
//detlint:hotpath
func (b *Bitmap) Test(i int) bool {
	if i < 0 || i >= b.n || b.words == nil {
		return false
	}
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Set sets bit i. Out-of-range indices are ignored.
//
//detlint:hotpath
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.ensure()
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.set++
	}
}

// Clear clears bit i. Out-of-range indices are ignored.
//
//detlint:hotpath
func (b *Bitmap) Clear(i int) {
	if i < 0 || i >= b.n || b.words == nil {
		return
	}
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.set--
	}
}

// ClearAll clears every bit.
//
//detlint:hotpath
func (b *Bitmap) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.set = 0
}

// SetAll sets every bit, filling whole words at a time.
//
//detlint:hotpath
func (b *Bitmap) SetAll() {
	if b.n == 0 {
		return
	}
	b.ensure()
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if tail := uint(b.n) % 64; tail != 0 {
		b.words[len(b.words)-1] = (uint64(1) << tail) - 1
	}
	b.set = b.n
}

// NextSetFrom returns the index of the first set bit at or after i, or -1
// if none remain. It skips all-zero words, so sparse scans cost O(words)
// rather than O(bits).
//
//detlint:hotpath
func (b *Bitmap) NextSetFrom(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n || b.words == nil {
		return -1
	}
	wi := i / 64
	if w := b.words[wi] >> (uint(i) % 64); w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if w := b.words[wi]; w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// ForEach invokes fn for every set bit, in ascending order.
//
//detlint:hotpath
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &^= 1 << uint(bit)
		}
	}
}

// Drain harvests up to max set bits (ascending), clearing them as it goes,
// and returns their indices in a fresh slice. max <= 0 means no limit.
// This is the "fetch-and-clear the dirty log" primitive pre-copy migration
// uses; hot loops should hold a reusable buffer and call DrainInto instead.
func (b *Bitmap) Drain(max int) []int {
	if max <= 0 || max > b.set {
		max = b.set
	}
	return b.DrainInto(make([]int, 0, max), max)
}

// DrainInto appends up to max set bit indices (ascending) to buf, clearing
// each as it is extracted, and returns the extended buffer. max <= 0 means
// no limit. All-zero words are skipped in one comparison and cleared bits
// are folded back a word at a time, so a drain touches each word at most
// twice and allocates nothing when buf has capacity.
//
//detlint:hotpath
func (b *Bitmap) DrainInto(buf []int, max int) []int {
	if max <= 0 || max > b.set {
		max = b.set
	}
	taken := 0
	for wi := 0; wi < len(b.words) && taken < max; wi++ {
		w := b.words[wi]
		if w == 0 {
			continue
		}
		base := wi * 64
		for w != 0 && taken < max {
			bit := bits.TrailingZeros64(w)
			buf = append(buf, base+bit)
			w &^= 1 << uint(bit)
			taken++
		}
		b.words[wi] = w
	}
	b.set -= taken
	return buf
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{
		words: append([]uint64(nil), b.words...),
		n:     b.n,
		set:   b.set,
	}
	return c
}
