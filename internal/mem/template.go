package mem

import "fmt"

// Template is a frozen golden memory image that spaces fork from. Freezing
// resolves KSM sharing down to plain logical contents and drops volatility
// flags, so the template is immutable, self-contained, and safe to read
// from any number of forked spaces. A template is never written again;
// SpawnFrom spaces privatize chunks away from it on first write.
//
// The content-hash invariant across a fork: the template carries the same
// incrementally-maintained hash a standalone space with its contents would,
// a freshly spawned space inherits it verbatim in O(1), and the ordinary
// Write path keeps it current from there — so ContentHash, EqualContents,
// and RangeHash behave identically on forked and standalone spaces.
type Template struct {
	name   string
	pages  []page
	hash   uint64
	spawns uint64
}

// Freeze captures the space's current logical contents as a Template. The
// source space is unaffected (it keeps its sharing and volatility state);
// the copy is O(pages), paid once per golden image rather than once per
// guest. The template's pages carry no shared groups and no volatile flags.
func Freeze(name string, src *Space) *Template {
	t := &Template{
		name:  name,
		pages: make([]page, src.npages),
		hash:  src.hash,
	}
	for i := 0; i < src.npages; i++ {
		pg := src.pageRef(i)
		c := pg.content
		if pg.shared != nil {
			c = pg.shared.Content
		}
		t.pages[i].content = c
	}
	return t
}

// Name returns the template's label.
func (t *Template) Name() string { return t.name }

// NumPages returns the number of pages in the template image.
func (t *Template) NumPages() int { return len(t.pages) }

// SizeBytes returns the modelled size of the template image.
func (t *Template) SizeBytes() int64 { return int64(len(t.pages)) * PageSize }

// ContentHash returns the template image's content digest — the hash every
// space spawned from it starts with.
func (t *Template) ContentHash() uint64 { return t.hash }

// Read returns the logical content of template page p. Cross-shard
// migration uses it to express a guest's memory as a delta against the
// golden image.
func (t *Template) Read(p int) (Content, error) {
	if p < 0 || p >= len(t.pages) {
		return 0, fmt.Errorf("%w: template %s page %d of %d", ErrOutOfRange, t.name, p, len(t.pages))
	}
	return t.pages[p].content, nil
}

// Spawns returns how many spaces have been forked from this template.
func (t *Template) Spawns() uint64 { return t.spawns }

// SpawnFrom forks a new space from a template in O(1) time and O(chunks)
// index storage — no page contents are copied until the space is written.
// The spawned space reads through the template, inherits its content hash,
// and starts with a clean (and storage-free) dirty log.
func SpawnFrom(name string, t *Template) *Space {
	t.spawns++
	n := len(t.pages)
	// No chunk index, no bitmap words: both materialize on first write,
	// so a spawn's cost is one fixed-size struct regardless of n.
	return &Space{
		name:   name,
		npages: n,
		tmpl:   t,
		dirty:  NewBitmap(n),
		hash:   t.hash,
	}
}

// Forked reports whether the space still reads through a template (it was
// spawned with SpawnFrom and has not been reset or wholly rewritten since).
func (s *Space) Forked() bool { return s.tmpl != nil }

// Template returns the golden image a forked space reads through, or nil
// for a standalone space.
func (s *Space) Template() *Template { return s.tmpl }

// MaterializedChunks returns how many chunks a forked space has privatized
// from its template. Standalone spaces report 0.
func (s *Space) MaterializedChunks() int {
	n := 0
	for _, ch := range s.chunks {
		if ch != nil {
			n++
		}
	}
	return n
}

// ForkStats reports the lifetime count of chunk privatizations — the cost
// actually paid for copy-on-write, which the megastorm experiment surfaces
// as "materialized MiB per guest".
func (s *Space) ForkStats() (chunkCopies uint64) { return s.forkCopies }
