package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpaceRoundsUp(t *testing.T) {
	s := NewSpace("g", PageSize*3+1)
	if s.NumPages() != 4 {
		t.Fatalf("pages = %d, want 4", s.NumPages())
	}
	if s.SizeBytes() != PageSize*4 {
		t.Fatalf("size = %d", s.SizeBytes())
	}
	if s.Name() != "g" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewSpace("g", PageSize*8)
	res, err := s.Write(3, 0xdead)
	if err != nil {
		t.Fatal(err)
	}
	if res.CowBroken || !res.Changed {
		t.Fatalf("write result = %+v", res)
	}
	c, err := s.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0xdead {
		t.Fatalf("read back %#x", c)
	}
	// Rewriting the same value is not a change.
	res, _ = s.Write(3, 0xdead)
	if res.Changed {
		t.Fatal("identical rewrite reported Changed")
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	s := NewSpace("g", PageSize*2)
	if _, err := s.Read(2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Read err = %v", err)
	}
	if _, err := s.Read(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Read(-1) err = %v", err)
	}
	if _, err := s.Write(2, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Write err = %v", err)
	}
	if err := s.MarkVolatile(5, true); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("MarkVolatile err = %v", err)
	}
}

func TestMustReadPanicsOutOfRange(t *testing.T) {
	s := NewSpace("g", PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("MustRead out of range did not panic")
		}
	}()
	s.MustRead(1)
}

func TestDirtyTracking(t *testing.T) {
	s := NewSpace("g", PageSize*10)
	if s.DirtyCount() != 0 {
		t.Fatal("fresh space dirty")
	}
	for _, p := range []int{1, 5, 9} {
		if _, err := s.Write(p, Content(p)); err != nil {
			t.Fatal(err)
		}
	}
	if s.DirtyCount() != 3 {
		t.Fatalf("dirty = %d, want 3", s.DirtyCount())
	}
	got := s.DrainDirty(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("DrainDirty(2) = %v", got)
	}
	if s.DirtyCount() != 1 {
		t.Fatalf("dirty after drain = %d", s.DirtyCount())
	}
	s.ClearDirty()
	if s.DirtyCount() != 0 {
		t.Fatal("ClearDirty left dirt")
	}
	s.MarkAllDirty()
	if s.DirtyCount() != 10 {
		t.Fatalf("MarkAllDirty = %d", s.DirtyCount())
	}
}

func TestSharedGroupAttachAndCOW(t *testing.T) {
	s1 := NewSpace("a", PageSize*2)
	s2 := NewSpace("b", PageSize*2)
	if _, err := s1.Write(0, 0xabc); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Write(0, 0xabc); err != nil {
		t.Fatal(err)
	}
	g := &SharedGroup{Content: 0xabc}
	if err := s1.AttachShared(0, g); err != nil {
		t.Fatal(err)
	}
	if err := s2.AttachShared(0, g); err != nil {
		t.Fatal(err)
	}
	if g.Refs != 2 {
		t.Fatalf("refs = %d, want 2", g.Refs)
	}
	if _, ok := s1.Shared(0); !ok {
		t.Fatal("s1 page 0 not shared")
	}
	// Reads resolve through the group.
	if c, _ := s1.Read(0); c != 0xabc {
		t.Fatalf("shared read = %#x", c)
	}
	// Writing breaks COW and decrements refs.
	res, err := s1.Write(0, 0xdef)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CowBroken || !res.Changed {
		t.Fatalf("cow write result = %+v", res)
	}
	if g.Refs != 1 {
		t.Fatalf("refs after break = %d, want 1", g.Refs)
	}
	if c, _ := s1.Read(0); c != 0xdef {
		t.Fatalf("post-break read = %#x", c)
	}
	if c, _ := s2.Read(0); c != 0xabc {
		t.Fatalf("other member changed: %#x", c)
	}
	_, cows := s1.Stats()
	if cows != 1 {
		t.Fatalf("cowBreaks = %d", cows)
	}
}

func TestCOWBreakOnIdenticalWrite(t *testing.T) {
	// Writing the same value to a merged page still breaks sharing —
	// the fault happens before the value is compared. This is exactly
	// the effect the detector measures.
	s := NewSpace("a", PageSize)
	if _, err := s.Write(0, 7); err != nil {
		t.Fatal(err)
	}
	g := &SharedGroup{Content: 7}
	if err := s.AttachShared(0, g); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Write(0, 7)
	if !res.CowBroken {
		t.Fatal("identical write to merged page did not break COW")
	}
	if res.Changed {
		t.Fatal("identical write reported Changed")
	}
}

func TestAttachSharedContentMismatch(t *testing.T) {
	s := NewSpace("a", PageSize)
	if _, err := s.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	g := &SharedGroup{Content: 2}
	if err := s.AttachShared(0, g); err == nil {
		t.Fatal("attach with mismatched content succeeded")
	}
	if g.Refs != 0 {
		t.Fatalf("failed attach changed refs to %d", g.Refs)
	}
}

func TestAttachSharedIdempotent(t *testing.T) {
	s := NewSpace("a", PageSize)
	g := &SharedGroup{Content: ZeroPage}
	if err := s.AttachShared(0, g); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShared(0, g); err != nil {
		t.Fatal(err)
	}
	if g.Refs != 1 {
		t.Fatalf("re-attach inflated refs to %d", g.Refs)
	}
}

func TestAttachSharedMigratesBetweenGroups(t *testing.T) {
	s := NewSpace("a", PageSize)
	g1 := &SharedGroup{Content: ZeroPage}
	g2 := &SharedGroup{Content: ZeroPage}
	if err := s.AttachShared(0, g1); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShared(0, g2); err != nil {
		t.Fatal(err)
	}
	if g1.Refs != 0 || g2.Refs != 1 {
		t.Fatalf("refs g1=%d g2=%d, want 0/1", g1.Refs, g2.Refs)
	}
}

func TestVolatileFlag(t *testing.T) {
	s := NewSpace("a", PageSize*2)
	if s.Volatile(0) {
		t.Fatal("fresh page volatile")
	}
	if err := s.MarkVolatile(0, true); err != nil {
		t.Fatal(err)
	}
	if !s.Volatile(0) {
		t.Fatal("MarkVolatile didn't stick")
	}
	if s.Volatile(99) {
		t.Fatal("out-of-range Volatile = true")
	}
}

func TestFillRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSpace("g", PageSize*1000)
	s.FillRandom(rng, 0.3)
	if s.DirtyCount() != 0 {
		t.Fatal("FillRandom left dirty log set")
	}
	zeros := 0
	for i := 0; i < s.NumPages(); i++ {
		if s.MustRead(i) == ZeroPage {
			zeros++
		}
	}
	if zeros < 200 || zeros > 400 {
		t.Fatalf("zero pages = %d, want ~300", zeros)
	}
}

func TestSnapshotAndEqualContents(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewSpace("a", PageSize*64)
	a.FillRandom(rng, 0.2)
	b := NewSpace("b", PageSize*64)
	snap := a.Snapshot()
	for i, c := range snap {
		if _, err := b.Write(i, c); err != nil {
			t.Fatal(err)
		}
	}
	if !EqualContents(a, b) {
		t.Fatal("copied spaces not equal")
	}
	if _, err := b.Write(5, 0xffff); err != nil {
		t.Fatal(err)
	}
	if EqualContents(a, b) {
		t.Fatal("diverged spaces reported equal")
	}
	c := NewSpace("c", PageSize*32)
	if EqualContents(a, c) {
		t.Fatal("different-size spaces reported equal")
	}
}

// Property: a write/read round trip always returns the written content, and
// never disturbs neighbouring pages.
func TestWriteReadProperty(t *testing.T) {
	f := func(p uint8, c Content, neighbor uint8) bool {
		s := NewSpace("g", PageSize*256)
		np := int(neighbor)
		if np == int(p) {
			np = (np + 1) % 256
		}
		before := s.MustRead(np)
		if _, err := s.Write(int(p), c); err != nil {
			return false
		}
		return s.MustRead(int(p)) == c && s.MustRead(np) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
