package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateFileUniquePages(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := GenerateFile(rng, "file-a.mp3", 100)
	if f.NumPages() != 100 {
		t.Fatalf("pages = %d", f.NumPages())
	}
	if f.SizeBytes() != 100*PageSize {
		t.Fatalf("size = %d", f.SizeBytes())
	}
	seen := make(map[Content]bool, 100)
	for _, c := range f.Pages {
		if c == ZeroPage {
			t.Fatal("file page with zero content")
		}
		if seen[c] {
			t.Fatalf("duplicate page content %#x", c)
		}
		seen[c] = true
	}
}

func TestTwoFilesDontCollide(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := GenerateFile(rng, "a", 50)
	b := GenerateFile(rng, "b", 50)
	set := map[Content]bool{}
	for _, c := range a.Pages {
		set[c] = true
	}
	for _, c := range b.Pages {
		if set[c] {
			t.Fatalf("cross-file duplicate %#x", c)
		}
	}
}

func TestMutatedChangesEveryPage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := GenerateFile(rng, "file-a", 64)
	v2 := a.Mutated()
	if v2.NumPages() != a.NumPages() {
		t.Fatal("mutated length differs")
	}
	if v2.Name != "file-a.v2" {
		t.Fatalf("mutated name = %q", v2.Name)
	}
	for i := range a.Pages {
		if a.Pages[i] == v2.Pages[i] {
			t.Fatalf("page %d unchanged by mutation", i)
		}
		if v2.Pages[i] == ZeroPage {
			t.Fatalf("page %d mutated to zero", i)
		}
	}
	// Original is untouched.
	b := GenerateFile(rand.New(rand.NewSource(3)), "file-a", 64)
	for i := range a.Pages {
		if a.Pages[i] != b.Pages[i] {
			t.Fatal("Mutated modified the original file")
		}
	}
}

func TestMutatedTwiceDiffersFromBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := GenerateFile(rng, "f", 8)
	v2 := a.Mutated()
	v3 := v2.Mutated()
	for i := range a.Pages {
		if v3.Pages[i] == v2.Pages[i] {
			t.Fatalf("page %d: v3 == v2", i)
		}
		if v3.Pages[i] == a.Pages[i] {
			t.Fatalf("page %d: mutation is involutive", i)
		}
	}
}

func TestFileSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := GenerateFile(rng, "img", 20)
	s := f.Slice(5, 10)
	if s.NumPages() != 10 {
		t.Fatalf("slice pages = %d", s.NumPages())
	}
	for i := 0; i < 10; i++ {
		if s.Pages[i] != f.Pages[5+i] {
			t.Fatalf("slice page %d mismatch", i)
		}
	}
	// No shared backing.
	s.Pages[0] = 0xdead
	if f.Pages[5] == 0xdead {
		t.Fatal("slice shares backing array")
	}
	// Clamping.
	if got := f.Slice(15, 100).NumPages(); got != 5 {
		t.Fatalf("clamped slice = %d", got)
	}
	if got := f.Slice(-3, 2).NumPages(); got != 2 {
		t.Fatalf("negative-from slice = %d", got)
	}
	if got := f.Slice(50, 2).NumPages(); got != 0 {
		t.Fatalf("past-end slice = %d", got)
	}
}

func TestLoadFileAndResidency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := GenerateFile(rng, "probe", 10)
	s := NewSpace("g", PageSize*32)
	if err := s.LoadFile(f, 4); err != nil {
		t.Fatal(err)
	}
	if s.DirtyCount() != 0 {
		t.Fatal("LoadFile marked pages dirty")
	}
	if got := s.FileResident(f, 4); got != 10 {
		t.Fatalf("resident = %d, want 10", got)
	}
	if got := s.FileResident(f, 5); got != 0 {
		t.Fatalf("offset residency = %d, want 0", got)
	}
	// Overwrite one page: residency drops by one.
	if _, err := s.Write(6, 0x1234); err != nil {
		t.Fatal(err)
	}
	if got := s.FileResident(f, 4); got != 9 {
		t.Fatalf("residency after overwrite = %d, want 9", got)
	}
}

func TestLoadFileOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := GenerateFile(rng, "big", 10)
	s := NewSpace("g", PageSize*8)
	if err := s.LoadFile(f, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := s.LoadFile(f, -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestLoadFileDetachesSharedPages(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := GenerateFile(rng, "probe", 2)
	s := NewSpace("g", PageSize*4)
	g := &SharedGroup{Content: ZeroPage}
	if err := s.AttachShared(0, g); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadFile(f, 0); err != nil {
		t.Fatal(err)
	}
	if g.Refs != 0 {
		t.Fatalf("shared refs after load = %d, want 0", g.Refs)
	}
	if _, ok := s.Shared(0); ok {
		t.Fatal("page still shared after LoadFile")
	}
}

func TestFileResidentPartiallyOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := GenerateFile(rng, "probe", 4)
	s := NewSpace("g", PageSize*4)
	if err := s.LoadFile(f, 0); err != nil {
		t.Fatal(err)
	}
	// Offset 2: pages 2,3 match positions 0,1 of... no, they hold f[2],f[3],
	// which differ from f[0],f[1]; and positions 4,5 are out of range.
	if got := s.FileResident(f, 2); got != 0 {
		t.Fatalf("partial out-of-range residency = %d, want 0", got)
	}
}

// Property: mutation is deterministic, never identity, and never zero.
func TestMutateContentProperty(t *testing.T) {
	f := func(c Content) bool {
		m := MutateContent(c)
		return m != c && m != ZeroPage && m == MutateContent(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
