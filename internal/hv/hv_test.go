package hv_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/hv"
	"cloudskulk/internal/ksm"

	_ "cloudskulk/internal/hv/backends"
)

// TestDefaultBackendIsThePaperCalibration: the registry's default resolves
// to exactly the constants the rest of the tree used before the backend
// layer existed — the invariant the experiment goldens rest on.
func TestDefaultBackendIsThePaperCalibration(t *testing.T) {
	b, err := hv.Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != hv.DefaultName {
		t.Fatalf("Lookup(\"\") = %q, want %q", b.Name, hv.DefaultName)
	}
	if b.Profile.CPU != cpu.DefaultModel() {
		t.Errorf("default CPU model diverged from cpu.DefaultModel()")
	}
	if b.Profile.KSM != ksm.DefaultCostModel() {
		t.Errorf("default KSM cost model diverged from ksm.DefaultCostModel()")
	}
	if b.Profile.BootTime != 15*time.Second || b.Profile.ZeroFraction != 0.35 || b.Profile.VCPUNoise != 0.01 {
		t.Errorf("default boot profile diverged: %+v", b.Profile)
	}
}

// TestLookupUnknownBackend: the typed error carries the registered names
// so the caller's message is self-explanatory.
func TestLookupUnknownBackend(t *testing.T) {
	_, err := hv.Lookup("xen-4.1")
	if !errors.Is(err, hv.ErrUnknownBackend) {
		t.Fatalf("err = %v, want ErrUnknownBackend", err)
	}
	for _, name := range hv.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered backend %q", err, name)
		}
	}
}

// TestBuiltinsRegistered: the backends package contributes at least two
// alternates alongside the default, names are sorted, and every profile
// passed registration validation (implied by being present).
func TestBuiltinsRegistered(t *testing.T) {
	names := hv.Names()
	if len(names) < 3 {
		t.Fatalf("want >= 3 registered backends, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	found := false
	for _, n := range names {
		if n == hv.DefaultName {
			found = true
		}
	}
	if !found {
		t.Fatalf("default %q missing from %v", hv.DefaultName, names)
	}
	all := hv.All()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d backends, Names() %d", len(all), len(names))
	}
	for i, b := range all {
		if b.Name != names[i] {
			t.Errorf("All()[%d] = %q, want %q", i, b.Name, names[i])
		}
		if b.Description == "" {
			t.Errorf("backend %q has no description", b.Name)
		}
	}
}

// TestBackendsDifferWhereItMatters: the alternates are genuinely different
// calibrations of the same mechanics, not renames — exit economics differ
// from the paper's testbed while each keeps a detectable KSM timing gap.
func TestBackendsDifferWhereItMatters(t *testing.T) {
	def, _ := hv.Lookup(hv.DefaultName)
	for _, b := range hv.All() {
		if b.Name == hv.DefaultName {
			continue
		}
		if b.Profile.CPU.ExitCost == def.Profile.CPU.ExitCost &&
			b.Profile.CPU.ExitMultiplier == def.Profile.CPU.ExitMultiplier {
			t.Errorf("backend %q has identical exit economics to the default", b.Name)
		}
		gap := float64(b.Profile.KSM.CowBreakWrite) / float64(b.Profile.KSM.RegularWrite)
		if gap < 4 {
			t.Errorf("backend %q KSM gap %.1fx too narrow for the timing detector", b.Name, gap)
		}
	}
}

// TestRegisterRejectsBadProfiles: the registry refuses profiles that would
// silently break the simulation's core invariants.
func TestRegisterRejectsBadProfiles(t *testing.T) {
	ok := hv.Baseline()
	cases := []struct {
		name   string
		mutate func(*hv.Backend)
	}{
		{"empty name", func(b *hv.Backend) { b.Name = "" }},
		{"duplicate", func(b *hv.Backend) {}}, // Baseline already registered
		{"zero exit cost", func(b *hv.Backend) { b.Name = "t0"; b.Profile.CPU.ExitCost = 0 }},
		{"zero multiplier", func(b *hv.Backend) { b.Name = "t1"; b.Profile.CPU.ExitMultiplier = 0 }},
		{"narrow ksm gap", func(b *hv.Backend) {
			b.Name = "t2"
			b.Profile.KSM.CowBreakWrite = b.Profile.KSM.RegularWrite
		}},
		{"zero boot", func(b *hv.Backend) { b.Name = "t3"; b.Profile.BootTime = 0 }},
		{"bad zero fraction", func(b *hv.Backend) { b.Name = "t4"; b.Profile.ZeroFraction = 1.5 }},
	}
	for _, tc := range cases {
		b := ok
		tc.mutate(&b)
		if err := hv.Register(b); err == nil {
			t.Errorf("%s: Register accepted a bad profile", tc.name)
		}
	}
	// None of the rejects leaked into the registry.
	for _, n := range hv.Names() {
		if strings.HasPrefix(n, "t") && len(n) == 2 {
			t.Errorf("rejected backend %q leaked into registry", n)
		}
	}
}
