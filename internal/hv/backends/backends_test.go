package backends_test

import (
	"testing"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/hv"

	_ "cloudskulk/internal/hv/backends"
)

// TestEveryBackendPreservesNestingEconomics: whatever the calibration,
// the phenomena the paper rests on must survive — a trapping operation
// costs more at L1 than L0 and much more at L2 than L1 (exit
// multiplication), and page-table work faults only when nested.
func TestEveryBackendPreservesNestingEconomics(t *testing.T) {
	pipe := cpu.SyscallOp("pipe", cpu.Micros(2.6), 2, 0)
	forkish := cpu.SyscallOp("fork", cpu.Micros(74), 0, 120)
	for _, b := range hv.All() {
		m := b.Profile.CPU
		l0, l1, l2 := m.Cost(pipe, cpu.L0), m.Cost(pipe, cpu.L1), m.Cost(pipe, cpu.L2)
		if !(l0 < l1 && l1 < l2) {
			t.Errorf("%s: pipe costs not monotonic across levels: L0=%v L1=%v L2=%v", b.Name, l0, l1, l2)
		}
		// Exit multiplication: the L2 penalty dwarfs the L1 penalty.
		if (l2 - l0) < 3*(l1-l0) {
			t.Errorf("%s: no visible exit multiplication (L1 +%v, L2 +%v)", b.Name, l1-l0, l2-l0)
		}
		// Shadow-EPT faults appear only at L2.
		if m.Cost(forkish, cpu.L1)-m.Cost(forkish, cpu.L0) > m.SyscallPadL1 {
			t.Errorf("%s: exit-free page-table op pays a penalty at L1", b.Name)
		}
		if m.Cost(forkish, cpu.L2) <= m.Cost(forkish, cpu.L1) {
			t.Errorf("%s: nested faults free at L2", b.Name)
		}
	}
}

// TestAlternatesDivergeFromEachOther: the two non-default built-ins model
// opposite ends of the design space — one collapses the exit multiplier,
// one inflates per-exit cost — so sweeps across backends actually span a
// range instead of sampling the same point three times.
func TestAlternatesDivergeFromEachOther(t *testing.T) {
	epyc, err := hv.Lookup("kvm-epyc-7702")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := hv.Lookup("hvf-m2")
	if err != nil {
		t.Fatal(err)
	}
	def, _ := hv.Lookup(hv.DefaultName)
	if !(epyc.Profile.CPU.ExitMultiplier < def.Profile.CPU.ExitMultiplier) {
		t.Errorf("epyc multiplier %d should undercut the paper's %d (VMCS shadowing)",
			epyc.Profile.CPU.ExitMultiplier, def.Profile.CPU.ExitMultiplier)
	}
	if !(m2.Profile.CPU.ExitCost > def.Profile.CPU.ExitCost) {
		t.Errorf("hvf exit cost %v should exceed KVM's %v (userspace VMM exits)",
			m2.Profile.CPU.ExitCost, def.Profile.CPU.ExitCost)
	}
}

// TestWHPSkylakeCalibration: the Hyper-V/WHP profile sits between the
// design-space extremes — userspace-VMM exits costlier than KVM's
// in-kernel handling but cheaper than HVF's full bounce, and a nested
// multiplier between EPYC's shadowing-era single digits and the paper's
// 18 (Hyper-V nests through Skylake VMCS shadowing, but less aggressively
// than modern KVM).
func TestWHPSkylakeCalibration(t *testing.T) {
	whp, err := hv.Lookup("whp-skylake")
	if err != nil {
		t.Fatal(err)
	}
	def, _ := hv.Lookup(hv.DefaultName)
	epyc, _ := hv.Lookup("kvm-epyc-7702")
	m2, _ := hv.Lookup("hvf-m2")
	if whp.Profile.CPU.ExitCost <= def.Profile.CPU.ExitCost || whp.Profile.CPU.ExitCost >= m2.Profile.CPU.ExitCost {
		t.Errorf("whp exit cost %v should sit between KVM's %v and HVF's %v (partial userspace exit handling)",
			whp.Profile.CPU.ExitCost, def.Profile.CPU.ExitCost, m2.Profile.CPU.ExitCost)
	}
	if whp.Profile.CPU.ExitMultiplier <= epyc.Profile.CPU.ExitMultiplier ||
		whp.Profile.CPU.ExitMultiplier >= def.Profile.CPU.ExitMultiplier {
		t.Errorf("whp multiplier %d should sit between epyc's %d and the paper's %d",
			whp.Profile.CPU.ExitMultiplier, epyc.Profile.CPU.ExitMultiplier, def.Profile.CPU.ExitMultiplier)
	}
}

// TestXenHaswellCalibration: the same-era Xen profile sits where the
// history says it should — single exits in KVM's class (in-hypervisor
// handling, unlike HVF's userspace bounce), but a *worse* exit
// multiplier and nested-fault cost than the paper's KVM (Xen 4.4 nested
// HVM predates any VMCS-shadowing use), so nested economics bracket the
// default from above without inflating per-exit cost.
func TestXenHaswellCalibration(t *testing.T) {
	xen, err := hv.Lookup("xen-haswell")
	if err != nil {
		t.Fatal(err)
	}
	def, _ := hv.Lookup(hv.DefaultName)
	m2, _ := hv.Lookup("hvf-m2")
	if xen.Profile.CPU.ExitCost > def.Profile.CPU.ExitCost || xen.Profile.CPU.ExitCost >= m2.Profile.CPU.ExitCost {
		t.Errorf("xen exit cost %v should be KVM-class (<= %v) and below HVF's %v",
			xen.Profile.CPU.ExitCost, def.Profile.CPU.ExitCost, m2.Profile.CPU.ExitCost)
	}
	if xen.Profile.CPU.ExitMultiplier <= def.Profile.CPU.ExitMultiplier {
		t.Errorf("xen multiplier %d should exceed the paper's %d (no VMCS shadowing in nested Xen 4.4)",
			xen.Profile.CPU.ExitMultiplier, def.Profile.CPU.ExitMultiplier)
	}
	if xen.Profile.CPU.NestedFaultCost <= def.Profile.CPU.NestedFaultCost {
		t.Errorf("xen nested fault %v should exceed KVM's %v (immature EPT-on-EPT)",
			xen.Profile.CPU.NestedFaultCost, def.Profile.CPU.NestedFaultCost)
	}
}
