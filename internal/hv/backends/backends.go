// Package backends registers the built-in alternate hypervisor cost
// profiles. Importing it (usually blank) makes every named backend
// resolvable through hv.Lookup; the default kvm-i7-4790 profile is
// registered by internal/hv itself and is always available.
//
// Each profile keeps the *mechanics* of the simulation — exit
// multiplication, shadow-EPT faults, KSM COW timing — and recalibrates
// the constants to a different substrate, so detector and attacker
// economics can be compared apples-to-apples across hardware
// generations and hypervisor designs.
package backends

import (
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/hv"
	"cloudskulk/internal/ksm"
)

func init() {
	hv.MustRegister(kvmEPYC7702())
	hv.MustRegister(hvfM2())
	hv.MustRegister(xenHaswell())
	hv.MustRegister(whpSkylake())
}

// kvmEPYC7702 models a modern KVM host (AMD EPYC 7702-class, ~2019) with
// the nested-virtualization improvements the paper's 2014-era testbed
// lacked. The headline difference is the exit multiplier: VMCS shadowing
// (and its AMD analogue, virtualized VMSAVE/VMLOAD) lets the L1
// hypervisor read and write guest control state without trapping to L0,
// collapsing the Turtles exit-multiplication factor from ~18 to single
// digits. World switches are also cheaper in absolute terms on newer
// cores, and NPT emulation for the L1 hypervisor matured. The nested
// *penalty* shrinks — which squeezes the lmbench L2 columns — while the
// KSM write-timing gap the detector uses remains wide: COW breaks still
// cost a fault, a 4 KiB copy, and a TLB shootdown.
func kvmEPYC7702() hv.Backend {
	return hv.Backend{
		Name:        "kvm-epyc-7702",
		Description: "modern KVM (AMD EPYC 7702-class): VMCS-shadowing-era nested exits, faster world switches",
		Profile: hv.Profile{
			CPU: cpu.Model{
				ExitCost:        cpu.Nanos(650),
				ReflectCost:     cpu.Nanos(260),
				ExitMultiplier:  6,
				NestedFaultCost: cpu.Nanos(1400),
				ALUDriftL1:      1.002,
				ALUDriftL2:      1.021,
				ALUDriftFloor:   cpu.Picoseconds(500),
				SyscallPadL1:    cpu.Nanos(14),
				SyscallPadL2:    cpu.Nanos(27),
			},
			KSM: ksm.CostModel{
				RegularWrite:  700 * time.Nanosecond,
				CowBreakWrite: 21 * time.Microsecond,
			},
			BootTime:     9 * time.Second,
			ZeroFraction: 0.35,
			VCPUNoise:    0.01,
		},
	}
}

// xenHaswell models Xen 4.4 HVM on a Haswell-EP server (Xeon E5-2600
// v3-class) — the same hardware generation as the paper's i7-4790
// testbed, under the other big open-source hypervisor of the era. A
// single exit is about as cheap as KVM's (both handle exits in ring -1),
// but Xen's nested HVM was experimental in 4.4: the nested state machine
// emulates every L1 VMREAD/VMWRITE without using Haswell's VMCS
// shadowing, so the reflection path is heavier and the exit multiplier
// lands *above* the paper's 18. EPT-on-EPT was likewise young, making
// nested page-table faults the priciest of the built-ins' same-era
// profiles. Xen's memory-sharing subsystem (its KSM analogue) keeps the
// COW break-write gap wide, so the detector carries over unchanged.
func xenHaswell() hv.Backend {
	return hv.Backend{
		Name:        "xen-haswell",
		Description: "Xen 4.4 HVM on Haswell-EP: KVM-class single exits, pre-VMCS-shadowing nested reflection",
		Profile: hv.Profile{
			CPU: cpu.Model{
				ExitCost:        cpu.Nanos(1000),
				ReflectCost:     cpu.Nanos(640),
				ExitMultiplier:  24,
				NestedFaultCost: cpu.Nanos(2900),
				ALUDriftL1:      1.003,
				ALUDriftL2:      1.038,
				ALUDriftFloor:   cpu.Picoseconds(500),
				SyscallPadL1:    cpu.Nanos(22),
				SyscallPadL2:    cpu.Nanos(46),
			},
			KSM: ksm.CostModel{
				RegularWrite:  800 * time.Nanosecond,
				CowBreakWrite: 19 * time.Microsecond,
			},
			BootTime:     13 * time.Second,
			ZeroFraction: 0.32,
			VCPUNoise:    0.011,
		},
	}
}

// whpSkylake models the Windows Hypervisor Platform (Hyper-V root
// partition plus the WHP userspace API, as used by WSL2-era VMMs) on a
// Skylake-SP server. Like HVF, most exits bounce through a userspace VMM
// process, so a single exit costs well above KVM's in-kernel handling —
// but less than HVF's, since Hyper-V keeps the hot paths (hypercalls,
// local APIC) in the hypervisor. Unlike HVF, nested virtualization is a
// first-class Hyper-V feature and Skylake's VMCS shadowing is actually
// used for it, so the exit multiplier lands between EPYC's single digits
// and the paper's 18. Memory economics: Windows' page combining is a
// slower scanner than ksmd but the COW break is the same fault + copy +
// shootdown, keeping the detector's timing gap wide.
func whpSkylake() hv.Backend {
	return hv.Backend{
		Name:        "whp-skylake",
		Description: "Windows Hypervisor Platform on Skylake-SP: userspace-VMM exits, VMCS-shadowing-assisted nesting",
		Profile: hv.Profile{
			CPU: cpu.Model{
				ExitCost:        cpu.Nanos(1900),
				ReflectCost:     cpu.Nanos(540),
				ExitMultiplier:  11,
				NestedFaultCost: cpu.Nanos(2600),
				ALUDriftL1:      1.003,
				ALUDriftL2:      1.029,
				ALUDriftFloor:   cpu.Picoseconds(500),
				SyscallPadL1:    cpu.Nanos(19),
				SyscallPadL2:    cpu.Nanos(38),
			},
			KSM: ksm.CostModel{
				RegularWrite:  750 * time.Nanosecond,
				CowBreakWrite: 23 * time.Microsecond,
			},
			BootTime:     12 * time.Second,
			ZeroFraction: 0.37,
			VCPUNoise:    0.013,
		},
	}
}

// hvfM2 models an Apple-silicon-class machine running a Hypervisor
// Framework VMM. HVF handles far less in the kernel than KVM: most exits
// bounce out to the userspace VMM, so a single exit is markedly more
// expensive, and an L1 hypervisor's control-state accesses have no
// shadowing assist at all — the reflection path multiplies harder than
// the paper's testbed. Raw page writes are fast on the wide cores, but a
// dedup COW break still pays the full fault + copy + unmap path, so the
// detector's timing gap is the widest of the built-ins.
func hvfM2() hv.Backend {
	return hv.Backend{
		Name:        "hvf-m2",
		Description: "Hypervisor.framework on Apple M2-class cores: userspace-VMM exits, no nested shadowing assist",
		Profile: hv.Profile{
			CPU: cpu.Model{
				ExitCost:        cpu.Nanos(2300),
				ReflectCost:     cpu.Nanos(950),
				ExitMultiplier:  26,
				NestedFaultCost: cpu.Nanos(3800),
				ALUDriftL1:      1.004,
				ALUDriftL2:      1.041,
				ALUDriftFloor:   cpu.Picoseconds(500),
				SyscallPadL1:    cpu.Nanos(26),
				SyscallPadL2:    cpu.Nanos(55),
			},
			KSM: ksm.CostModel{
				RegularWrite:  550 * time.Nanosecond,
				CowBreakWrite: 26 * time.Microsecond,
			},
			BootTime:     11 * time.Second,
			ZeroFraction: 0.40,
			VCPUNoise:    0.012,
		},
	}
}
