package hv

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrUnknownBackend is returned by Lookup for a name nobody registered;
// the wrapped message lists every registered name.
var ErrUnknownBackend = errors.New("hv: unknown backend")

// registry maps backend name -> backend. Registration happens in package
// init functions (this package registers Baseline; internal/hv/backends
// registers the alternates), so the contents are fixed before any
// simulation starts and lookups stay deterministic.
var registry = make(map[string]Backend)

func init() {
	MustRegister(Baseline())
}

// Register adds a backend to the registry. The name must be non-empty and
// not yet taken, and the profile must be usable: positive costs and a
// COW-break write detectably slower than a regular write (the invariant
// the paper's detector rests on — a backend violating it would silently
// blind every KSM-timing experiment).
func Register(b Backend) error {
	if b.Name == "" {
		return errors.New("hv: register: empty backend name")
	}
	if _, dup := registry[b.Name]; dup {
		return fmt.Errorf("hv: register: backend %q already registered", b.Name)
	}
	p := b.Profile
	if p.CPU.ExitCost <= 0 || p.CPU.ExitMultiplier < 1 || p.CPU.NestedFaultCost <= 0 {
		return fmt.Errorf("hv: register %q: exit-cost model not calibrated", b.Name)
	}
	if p.KSM.RegularWrite <= 0 || p.KSM.CowBreakWrite < 2*p.KSM.RegularWrite {
		return fmt.Errorf("hv: register %q: KSM write-timing gap too small to detect", b.Name)
	}
	if p.BootTime <= 0 || p.ZeroFraction < 0 || p.ZeroFraction > 1 {
		return fmt.Errorf("hv: register %q: boot profile out of range", b.Name)
	}
	registry[b.Name] = b
	return nil
}

// MustRegister registers a backend and panics on failure — the init-time
// form used for built-ins, where a bad profile is a programming error.
func MustRegister(b Backend) {
	if err := Register(b); err != nil {
		panic(err)
	}
}

// Lookup resolves a backend by name. The empty name resolves to
// DefaultName, so option plumbing can pass a zero value through
// unconditionally. Unknown names return ErrUnknownBackend with the
// registered names listed.
func Lookup(name string) (Backend, error) {
	if name == "" {
		name = DefaultName
	}
	b, ok := registry[name]
	if !ok {
		return Backend{}, fmt.Errorf("%w %q (registered: %s)",
			ErrUnknownBackend, name, strings.Join(Names(), ", "))
	}
	return b, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns the registered backends, sorted by name.
func All() []Backend {
	names := Names()
	out := make([]Backend, 0, len(names))
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}
