// Package hv is the backend-neutral hypervisor layer: the interface
// contract every substrate satisfies (Hypervisor / VirtualMachine /
// VirtualCPU) plus the registered cost profiles that make substrates
// interchangeable.
//
// The paper's results are calibrated to one machine — an Intel i7-4790
// running QEMU 2.9/KVM — but the phenomena it studies (nested-exit
// multiplication, shadow-EPT faults, KSM copy-on-write write timing) are
// properties of *any* hardware-virtualization substrate; only the
// constants differ. This package separates the two: the mechanics live in
// internal/cpu, internal/kvm, and internal/ksm, while the constants are a
// Profile registered here under a backend name. Experiments and fleets
// select a backend by name and run unchanged; artefact goldens are pinned
// per backend.
//
// The interface shapes follow the common hypervisor abstraction layers of
// multi-backend VMMs (KVM / HVF / WHP behind one contract): a Hypervisor
// creates and manages VirtualMachines, each VirtualMachine executes on a
// VirtualCPU whose costs come from the backend's profile.
package hv

import (
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/ksm"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/qemu"
)

// VirtualCPU is the execution contract a backend's vCPU satisfies:
// modelled operations advance virtual time by the backend-calibrated cost
// of running them at the vCPU's virtualization level.
type VirtualCPU interface {
	// Level is the virtualization level the vCPU runs at.
	Level() cpu.Level
	// Model returns the calibrated cost model in use.
	Model() cpu.Model
	// CostOf returns the exact (noise-free) cost of one execution of op.
	CostOf(op cpu.Op) cpu.Cost
	// Exec runs op n times and returns the elapsed virtual time.
	Exec(op cpu.Op, n int) time.Duration
	// MeasureMean runs op reps times and returns the mean per-op cost.
	MeasureMean(op cpu.Op, reps int) cpu.Cost
	// Executed returns how many operations of the class have run.
	Executed(c cpu.Class) uint64
	// Busy returns total virtual time the vCPU has consumed.
	Busy() time.Duration
}

// VirtualMachine is one guest: a configured machine with RAM, a network
// identity, a lifecycle state, and a vCPU executing at some level.
type VirtualMachine interface {
	// Name is the guest's name (unique per hypervisor).
	Name() string
	// Endpoint is the guest NIC's network endpoint.
	Endpoint() string
	// Config returns the launch configuration.
	Config() qemu.Config
	// State returns the lifecycle state.
	State() qemu.State
	// Running reports whether the guest is currently executing.
	Running() bool
	// RAM is the guest's physical memory image.
	RAM() *mem.Space
	// VCPU is the guest's virtual CPU.
	VCPU() *cpu.VCPU
	// Level is the virtualization level the guest executes at.
	Level() cpu.Level
}

// Hypervisor hosts VirtualMachines at one virtualization level and can
// run at any level itself (L0 on bare metal, L1 inside a guest — the
// nesting CloudSkulk abuses).
type Hypervisor interface {
	// RunLevel is the level the hypervisor's own code runs at.
	RunLevel() cpu.Level
	// GuestLevel is the level its guests execute at.
	GuestLevel() cpu.Level
	// CreateVM defines a VM from cfg, in state created.
	CreateVM(cfg qemu.Config) (*qemu.VM, error)
	// Launch boots a created VM.
	Launch(name string) error
	// Reboot resets and re-boots a running guest.
	Reboot(name string) error
	// Kill terminates a VM and tears down everything CreateVM set up.
	Kill(name string) error
	// VM looks a guest up by name.
	VM(name string) (*qemu.VM, bool)
	// VMs returns all guests, sorted by name.
	VMs() []*qemu.VM
}

// The canonical implementations satisfy the contracts. (The Hypervisor
// assertion for *kvm.Hypervisor lives in internal/kvm — this package
// cannot import it.)
var (
	_ VirtualCPU     = (*cpu.VCPU)(nil)
	_ VirtualMachine = (*qemu.VM)(nil)
)

// Profile is a backend's calibrated cost model: every constant the
// simulation charges that depends on the hypervisor substrate rather than
// on the workload. Two backends with different Profiles run the same
// experiments and differ only in these numbers.
type Profile struct {
	// CPU is the exit-cost model: world-switch cost, the Turtles
	// exit-multiplication factor, shadow-EPT fault cost, per-level
	// compute drift and kernel-path padding.
	CPU cpu.Model
	// KSM is the samepage-merging write-cost model — the regular-write
	// vs COW-break-write gap the paper's detector times.
	KSM ksm.CostModel
	// BootTime is charged per VM launch (BIOS + kernel + userspace).
	BootTime time.Duration
	// ZeroFraction of a freshly booted guest's pages remain zero.
	ZeroFraction float64
	// VCPUNoise is the relative stddev applied per guest-vCPU Exec
	// batch, modelling run-to-run measurement variance.
	VCPUNoise float64
}

// Backend names a Profile: one registered hypervisor substrate.
type Backend struct {
	// Name is the registry key ("kvm-i7-4790", ...).
	Name string
	// Description is a one-line calibration note for listings.
	Description string
	// Profile is the backend's calibrated cost model.
	Profile Profile
}

// DefaultName is the backend every constructor uses when none is named:
// the paper's testbed.
const DefaultName = "kvm-i7-4790"

// Baseline returns the default backend — QEMU/KVM on the paper's Intel
// i7-4790 testbed. Its constants are exactly the paper calibration
// (cpu.DefaultModel, ksm.DefaultCostModel, a 15 s boot): artefacts
// produced under this backend are byte-identical to the pre-backend-layer
// tree, which the experiment goldens pin.
func Baseline() Backend {
	return Backend{
		Name:        DefaultName,
		Description: "QEMU 2.9/KVM on Intel i7-4790 — the paper's testbed calibration",
		Profile: Profile{
			CPU:          cpu.DefaultModel(),
			KSM:          ksm.DefaultCostModel(),
			BootTime:     15 * time.Second,
			ZeroFraction: 0.35,
			VCPUNoise:    0.01,
		},
	}
}
