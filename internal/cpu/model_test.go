package cpu

import (
	"testing"
	"testing/quick"
	"time"

	"cloudskulk/internal/sim"
)

func TestCostConversions(t *testing.T) {
	if Nanos(0.13) != 130 {
		t.Fatalf("Nanos(0.13) = %d ps", Nanos(0.13))
	}
	if Micros(3.49) != 3_490_000 {
		t.Fatalf("Micros(3.49) = %d ps", Micros(3.49))
	}
	if DurationCost(time.Microsecond) != 1_000_000 {
		t.Fatalf("DurationCost(1us) = %d", DurationCost(time.Microsecond))
	}
	if got := Picoseconds(1499).Duration(); got != time.Nanosecond {
		t.Fatalf("1499ps rounds to %v, want 1ns", got)
	}
	if got := Picoseconds(1500).Duration(); got != 2*time.Nanosecond {
		t.Fatalf("1500ps rounds to %v, want 2ns", got)
	}
	if got := Picoseconds(-1500).Duration(); got != -2*time.Nanosecond {
		t.Fatalf("-1500ps rounds to %v, want -2ns", got)
	}
	if got := Nanos(5940).Nanoseconds(); got != 5940 {
		t.Fatalf("Nanoseconds = %v", got)
	}
	if got := Micros(65.49).Microseconds(); got < 65.4899 || got > 65.4901 {
		t.Fatalf("Microseconds = %v", got)
	}
}

func TestLevelString(t *testing.T) {
	tests := []struct {
		l    Level
		want string
	}{
		{L0, "L0"}, {L1, "L1"}, {L2, "L2"}, {Level(3), "L3"},
	}
	for _, tt := range tests {
		if got := tt.l.String(); got != tt.want {
			t.Fatalf("Level(%d).String() = %q, want %q", int(tt.l), got, tt.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassALU.String() != "alu" || ClassSyscall.String() != "syscall" ||
		ClassIO.String() != "io" {
		t.Fatal("class names wrong")
	}
	if Class(0).String() != "class(0)" {
		t.Fatalf("unknown class = %q", Class(0).String())
	}
}

func TestALUNativeAtAllLevelsBelowFloor(t *testing.T) {
	m := DefaultModel()
	op := ALUOp("int add", Nanos(0.13)) // below 500ps floor
	for _, l := range Levels {
		if got := m.Cost(op, l); got != op.Base {
			t.Fatalf("%v cost = %v, want native %v", l, got, op.Base)
		}
	}
}

func TestALUDriftAboveFloor(t *testing.T) {
	m := DefaultModel()
	op := ALUOp("int div", Nanos(5.94))
	l0 := m.Cost(op, L0)
	l1 := m.Cost(op, L1)
	l2 := m.Cost(op, L2)
	if l0 != op.Base {
		t.Fatalf("L0 = %v", l0)
	}
	// L1 drift ~0.3%, L2 drift ~3.4% — the Table II shape.
	r1 := float64(l1) / float64(l0)
	r2 := float64(l2) / float64(l0)
	if r1 < 1.0 || r1 > 1.01 {
		t.Fatalf("L1/L0 = %v, want ~1.003", r1)
	}
	if r2 < 1.02 || r2 > 1.05 {
		t.Fatalf("L2/L0 = %v, want ~1.034", r2)
	}
}

func TestExitMultiplicationShape(t *testing.T) {
	// An op with exits gets a modest L1 penalty and a multiplied L2
	// penalty — the pipe-latency shape from Table III.
	m := DefaultModel()
	pipe := SyscallOp("pipe", Micros(3.49), 3, 0)
	l0 := m.Cost(pipe, L0)
	l1 := m.Cost(pipe, L1)
	l2 := m.Cost(pipe, L2)
	if l1 <= l0 {
		t.Fatalf("L1 %v <= L0 %v", l1, l0)
	}
	// Paper: 3.49 -> 6.75 -> 65.49 µs. Check factors loosely.
	f1 := float64(l1) / float64(l0)
	f2 := float64(l2) / float64(l0)
	if f1 < 1.5 || f1 > 3 {
		t.Fatalf("L1/L0 = %.2f, want ~2", f1)
	}
	if f2 < 10 || f2 > 30 {
		t.Fatalf("L2/L0 = %.2f, want ~19", f2)
	}
}

func TestNestedFaultsOnlyCostAtL2(t *testing.T) {
	// fork: no exits, many nested faults. L1 ~= L0, L2 ~3x — Table III.
	m := DefaultModel()
	fork := SyscallOp("fork+exit", Micros(74.6), 0, 78)
	l0 := m.Cost(fork, L0)
	l1 := m.Cost(fork, L1)
	l2 := m.Cost(fork, L2)
	if f := float64(l1) / float64(l0); f > 1.3 {
		t.Fatalf("fork L1/L0 = %.2f, want near 1 (EPT handles it)", f)
	}
	if f := float64(l2) / float64(l0); f < 2.5 || f > 4.5 {
		t.Fatalf("fork L2/L0 = %.2f, want ~3.2", f)
	}
}

func TestIOOpAlwaysAtLeastOneExit(t *testing.T) {
	op := IOOp("out", Micros(1), 0)
	if op.Profile.Exits != 1 {
		t.Fatalf("IOOp clamped exits = %d, want 1", op.Profile.Exits)
	}
	m := DefaultModel()
	if m.Cost(op, L1) <= m.Cost(op, L0) {
		t.Fatal("virtualized IO not slower than native")
	}
}

func TestExitsAt(t *testing.T) {
	m := DefaultModel()
	op := SyscallOp("x", Micros(1), 2, 5)
	if got := m.ExitsAt(op, L0); got != 0 {
		t.Fatalf("L0 exits = %d", got)
	}
	if got := m.ExitsAt(op, L1); got != 2 {
		t.Fatalf("L1 exits = %d", got)
	}
	want := 2*(1+m.ExitMultiplier) + 5
	if got := m.ExitsAt(op, L2); got != want {
		t.Fatalf("L2 exits = %d, want %d", got, want)
	}
}

// Property: cost is monotonically non-decreasing in level for every op, and
// always at least the native cost.
func TestCostMonotoneInLevel(t *testing.T) {
	m := DefaultModel()
	f := func(baseUS uint16, exits, faults uint8) bool {
		op := SyscallOp("p", Micros(float64(baseUS)),
			int(exits%32), int(faults%128))
		l0 := m.Cost(op, L0)
		l1 := m.Cost(op, L1)
		l2 := m.Cost(op, L2)
		return l0 <= l1 && l1 <= l2 && l0 == op.Base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVCPUExecAdvancesClock(t *testing.T) {
	eng := sim.NewEngine(1)
	v := NewVCPU(eng, DefaultModel(), L1)
	op := SyscallOp("s", Micros(1), 1, 0)
	elapsed := v.Exec(op, 10)
	if elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
	if eng.Now() != elapsed {
		t.Fatalf("clock %v != elapsed %v", eng.Now(), elapsed)
	}
	want := (v.CostOf(op) * 10).Duration()
	if elapsed != want {
		t.Fatalf("noise-free exec = %v, want %v", elapsed, want)
	}
	if v.Executed(ClassSyscall) != 10 {
		t.Fatalf("executed = %d", v.Executed(ClassSyscall))
	}
	if v.Busy() != elapsed {
		t.Fatalf("busy = %v", v.Busy())
	}
	if v.Level() != L1 {
		t.Fatalf("level = %v", v.Level())
	}
	if v.Engine() != eng {
		t.Fatal("engine accessor mismatch")
	}
}

func TestVCPUExecZeroOrNegative(t *testing.T) {
	eng := sim.NewEngine(1)
	v := NewVCPU(eng, DefaultModel(), L0)
	if v.Exec(ALUOp("a", Nanos(1)), 0) != 0 {
		t.Fatal("Exec(0) advanced time")
	}
	if v.Exec(ALUOp("a", Nanos(1)), -5) != 0 {
		t.Fatal("Exec(-5) advanced time")
	}
	if eng.Now() != 0 {
		t.Fatal("clock moved")
	}
}

func TestVCPUNoiseIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) time.Duration {
		eng := sim.NewEngine(seed)
		v := NewVCPU(eng, DefaultModel(), L2)
		v.Noise = 0.05
		op := SyscallOp("s", Micros(1), 2, 3)
		var total time.Duration
		for i := 0; i < 20; i++ {
			total += v.Exec(op, 100)
		}
		return total
	}
	if run(7) != run(7) {
		t.Fatal("same seed produced different noisy totals")
	}
	if run(7) == run(8) {
		t.Fatal("different seeds produced identical noisy totals")
	}
}

func TestMeasureMean(t *testing.T) {
	eng := sim.NewEngine(1)
	v := NewVCPU(eng, DefaultModel(), L0)
	op := ALUOp("add", Nanos(0.13))
	mean := v.MeasureMean(op, 10000)
	if got := mean.Nanoseconds(); got < 0.125 || got > 0.135 {
		t.Fatalf("mean = %vns, want ~0.13", got)
	}
	if v.MeasureMean(op, 0) != 0 {
		t.Fatal("MeasureMean(0) != 0")
	}
}
