// Package cpu models virtual CPU execution cost across virtualization
// levels L0 (bare metal), L1 (guest), and L2 (nested guest).
//
// The model follows the mechanics the Turtles project documented for nested
// x86 virtualization and that the paper's Tables II-III exhibit:
//
//   - Pure ALU/FPU work runs at native speed at every level (hardware
//     virtualization does not intercept arithmetic); only a small
//     cache/steal drift appears at L2.
//   - Operations that cause VM exits (IPIs, port/MMIO I/O, privileged
//     instructions) pay one hardware exit each at L1. At L2 every exit must
//     be reflected to the L1 hypervisor, whose *own handling code* performs
//     privileged operations (VMREAD/VMWRITE, ...) that each trap to L0 —
//     the "exit multiplication" effect. One L2 exit therefore costs a
//     reflection plus ExitMultiplier real exits.
//   - Page-table-heavy operations (fork) run exit-free at L1 thanks to
//     two-dimensional paging (EPT), but at L2 the L1 hypervisor's EPT must
//     be emulated by L0 with shadow structures, so L2 page-table updates
//     fault. These are the NestedFaults in an op's profile.
//
// Parameter values are calibrated to the paper's testbed (Intel i7-4790,
// QEMU 2.9/KVM); see DESIGN.md §1 for the calibration story.
package cpu

import (
	"fmt"
	"time"
)

// Cost is a virtual-time cost in picoseconds. The lmbench arithmetic table
// reports sub-nanosecond latencies (0.13 ns integer add), which
// time.Duration's nanosecond resolution cannot represent, so operation
// costs carry picosecond resolution and are converted to durations only
// when accumulated.
type Cost int64

// Picoseconds builds a Cost from a picosecond count.
func Picoseconds(ps int64) Cost { return Cost(ps) }

// Nanos builds a Cost from (possibly fractional) nanoseconds.
func Nanos(ns float64) Cost { return Cost(ns * 1e3) }

// Micros builds a Cost from (possibly fractional) microseconds.
func Micros(us float64) Cost { return Cost(us * 1e6) }

// DurationCost converts a time.Duration to a Cost.
func DurationCost(d time.Duration) Cost { return Cost(d) * 1e3 }

// Duration converts the cost to a time.Duration, rounding to the nearest
// nanosecond.
func (c Cost) Duration() time.Duration {
	if c >= 0 {
		return time.Duration((c + 500) / 1e3)
	}
	return time.Duration((c - 500) / 1e3)
}

// Nanoseconds returns the cost as fractional nanoseconds.
func (c Cost) Nanoseconds() float64 { return float64(c) / 1e3 }

// Microseconds returns the cost as fractional microseconds.
func (c Cost) Microseconds() float64 { return float64(c) / 1e6 }

// Level identifies the virtualization level code runs at. The zero value is
// bare metal, which is the meaningful default.
type Level int

// Virtualization levels, using the Turtles project notation the paper
// follows: L0 is the bare-metal hypervisor's level, L1 a guest, L2 a guest
// of a guest.
const (
	L0 Level = iota
	L1
	L2
	// L3 is a guest of a nested guest — beyond the paper's evaluation, but
	// the level a deeper-nesting attacker strategy stacks to. Every L3 exit
	// reflects through *two* intermediate hypervisors, so the exit
	// multiplication compounds.
	L3
)

// Levels lists the three levels the paper evaluates, in order. Deeper
// levels (L3) exist in the model but are not part of the paper's sweep.
var Levels = []Level{L0, L1, L2}

// String returns the Turtles-style level name.
func (l Level) String() string {
	return fmt.Sprintf("L%d", int(l))
}

// Class partitions operations by the mechanism that dominates their
// virtualization overhead.
type Class int

// Operation classes.
const (
	// ClassALU is pure user-mode compute: arithmetic, logic, FP. Never
	// exits.
	ClassALU Class = iota + 1
	// ClassSyscall is a kernel round trip: syscalls, faults, IPC. May
	// exit depending on the op's profile (IPIs, halts).
	ClassSyscall
	// ClassIO is device I/O: always exits to the device model.
	ClassIO
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassSyscall:
		return "syscall"
	case ClassIO:
		return "io"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ExitProfile counts the virtualization traps one execution of an operation
// generates.
type ExitProfile struct {
	// Exits is the number of VM exits per operation at any virtualized
	// level (L1 and L2): IPIs, HLTs, port I/O, privileged instructions.
	Exits int
	// NestedFaults is the number of additional shadow-EPT faults per
	// operation that occur only at L2, from guest page-table updates the
	// L0 hypervisor must intercept to maintain L1's emulated EPT.
	NestedFaults int
}

// Op is one modelled operation: a name, its native (L0) cost, the mechanism
// class, and its exit profile.
type Op struct {
	Name    string
	Base    Cost
	Class   Class
	Profile ExitProfile
}

// ALUOp builds a pure-compute operation.
func ALUOp(name string, base Cost) Op {
	return Op{Name: name, Base: base, Class: ClassALU}
}

// SyscallOp builds a kernel-path operation with the given exit profile.
func SyscallOp(name string, base Cost, exits, nestedFaults int) Op {
	return Op{
		Name:    name,
		Base:    base,
		Class:   ClassSyscall,
		Profile: ExitProfile{Exits: exits, NestedFaults: nestedFaults},
	}
}

// IOOp builds a device-I/O operation (always at least one exit when
// virtualized).
func IOOp(name string, base Cost, exits int) Op {
	if exits < 1 {
		exits = 1
	}
	return Op{
		Name:    name,
		Base:    base,
		Class:   ClassIO,
		Profile: ExitProfile{Exits: exits},
	}
}

// Model holds the calibrated cost parameters shared by all operations.
type Model struct {
	// ExitCost is one hardware VM exit handled by L0 (world switch +
	// handler).
	ExitCost Cost
	// ReflectCost is the extra cost of reflecting an L2 exit into the L1
	// hypervisor before L1 even starts handling it.
	ReflectCost Cost
	// ExitMultiplier is the number of real (L0-handled) exits the L1
	// hypervisor's handling of a single reflected exit generates — the
	// Turtles exit-multiplication factor.
	ExitMultiplier int
	// NestedFaultCost is one shadow-EPT maintenance fault at L2.
	NestedFaultCost Cost

	// ALUDriftL1/L2 are multiplicative slowdowns on compute from cache
	// and TLB interference introduced by each extra layer. Applied only
	// to ops whose base latency is at least ALUDriftFloor: sub-cycle ops
	// hide the drift below measurement resolution (paper Table II shows
	// int bit/add unchanged while div/mod/FP ops drift ~3-4% at L2).
	ALUDriftL1    float64
	ALUDriftL2    float64
	ALUDriftFloor Cost

	// SyscallPadL1/L2 model kernel-path cache/TLB pollution per layer as
	// a small *additive* cost per operation. The paper's Table III pins
	// this down: signal-handler installation grows 75ns -> 96ns -> 100ns
	// (a ~20ns pad) while fork+exit (74.6µs base) is unchanged at L1 —
	// a multiplicative drift would have added ~19µs there.
	SyscallPadL1 Cost
	SyscallPadL2 Cost
}

// DefaultModel returns parameters calibrated against the paper's testbed.
func DefaultModel() Model {
	return Model{
		ExitCost:        Nanos(1100),
		ReflectCost:     Nanos(500),
		ExitMultiplier:  18,
		NestedFaultCost: Nanos(2100),
		ALUDriftL1:      1.003,
		ALUDriftL2:      1.034,
		ALUDriftFloor:   Picoseconds(500),
		SyscallPadL1:    Nanos(20),
		SyscallPadL2:    Nanos(40),
	}
}

// Cost returns the virtual-time cost of one execution of op at the given
// level.
func (m Model) Cost(op Op, level Level) Cost {
	base := float64(op.Base)
	switch level {
	case L0:
		return op.Base
	case L1:
		drifted := Cost(base*m.aluDrift(op, m.ALUDriftL1)) + m.syscallPad(op, m.SyscallPadL1)
		exits := Cost(op.Profile.Exits) * m.ExitCost
		return drifted + exits
	default:
		// L2 and deeper: each exit reflects to the enclosing hypervisor
		// and multiplies; page-table work additionally faults. Every level
		// past L2 wraps the reflection again — the L_{n-1} hypervisor's
		// handling of one reflected exit is itself ExitMultiplier exits
		// *at its own level*, each paying the full cost below it — so the
		// per-exit cost compounds geometrically with depth.
		drifted := Cost(base*m.aluDrift(op, m.ALUDriftL2)) + m.syscallPad(op, m.SyscallPadL2)
		perExit := m.ReflectCost + Cost(m.ExitMultiplier)*m.ExitCost
		faultCost := m.NestedFaultCost
		for l := L2; l < level; l++ {
			perExit = m.ReflectCost + Cost(m.ExitMultiplier)*perExit
			faultCost = Cost(m.ExitMultiplier) * faultCost
		}
		exits := Cost(op.Profile.Exits) * perExit
		faults := Cost(op.Profile.NestedFaults) * faultCost
		return drifted + exits + faults
	}
}

func (m Model) aluDrift(op Op, drift float64) float64 {
	if op.Class != ClassALU || op.Base < m.ALUDriftFloor {
		return 1
	}
	return drift
}

func (m Model) syscallPad(op Op, pad Cost) Cost {
	if op.Class != ClassSyscall {
		return 0
	}
	return pad
}

// ExitsAt returns how many real, L0-handled VM exits one execution of op
// generates at the given level. Useful for ablation benches and traces.
func (m Model) ExitsAt(op Op, level Level) int {
	switch level {
	case L0:
		return 0
	case L1:
		return op.Profile.Exits
	default:
		per := 1 + m.ExitMultiplier
		faults := op.Profile.NestedFaults
		for l := L2; l < level; l++ {
			per = 1 + m.ExitMultiplier*per
			faults *= m.ExitMultiplier
		}
		return op.Profile.Exits*per + faults
	}
}
