package cpu

import (
	"time"

	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
)

// VCPU executes modelled operations on a simulation engine, advancing
// virtual time by each operation's cost (with measurement noise) and
// keeping per-class accounting.
type VCPU struct {
	eng   *sim.Engine
	model Model
	level Level

	// Noise is the relative standard deviation applied per Exec batch,
	// modelling run-to-run measurement variance. Zero means exact costs.
	Noise float64

	executed map[Class]uint64
	busy     time.Duration

	tel *vcpuTelemetry
}

// vcpuTelemetry holds counter handles pre-resolved per class at
// SetTelemetry time, so Exec pays only a nil check plus atomic adds —
// no map lookups or string formatting on the hot path. exitFactor and
// faultFactor pre-bake Model.ExitsAt for this vCPU's level: real exits
// per profile exit and per nested fault respectively.
type vcpuTelemetry struct {
	ops         [ClassIO + 1]*telemetry.Counter // cpu_ops_total{class,level}
	exits       [ClassIO + 1]*telemetry.Counter // cpu_exits_total{class,level}
	exitFactor  uint64
	faultFactor uint64
}

// SetTelemetry attaches (or with nil detaches) a metrics registry. Every
// Exec then counts operations and real L0-handled exits by class at this
// vCPU's level.
func (v *VCPU) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		v.tel = nil
		return
	}
	t := &vcpuTelemetry{}
	switch v.level {
	case L0:
		// Bare metal: no exits.
	case L1:
		t.exitFactor = 1
	default:
		// L2 and deeper: mirror Model.ExitsAt — every level past L2 wraps
		// the multiplication again and each nested fault multiplies too.
		per := 1 + v.model.ExitMultiplier
		faults := 1
		for l := L2; l < v.level; l++ {
			per = 1 + v.model.ExitMultiplier*per
			faults *= v.model.ExitMultiplier
		}
		t.exitFactor = uint64(per)
		t.faultFactor = uint64(faults)
	}
	lvl := v.level.String()
	for _, c := range []Class{ClassALU, ClassSyscall, ClassIO} {
		t.ops[c] = reg.Counter(telemetry.Key("cpu_ops_total", "class", c.String(), "level", lvl))
		t.exits[c] = reg.Counter(telemetry.Key("cpu_exits_total", "class", c.String(), "level", lvl))
	}
	v.tel = t
}

// NewVCPU returns a vCPU running at the given level under the given model.
func NewVCPU(eng *sim.Engine, model Model, level Level) *VCPU {
	return &VCPU{
		eng:      eng,
		model:    model,
		level:    level,
		executed: make(map[Class]uint64, 3),
	}
}

// Level returns the virtualization level the vCPU runs at.
func (v *VCPU) Level() Level { return v.level }

// Model returns the cost model in use.
func (v *VCPU) Model() Model { return v.model }

// Engine returns the simulation engine the vCPU runs on.
func (v *VCPU) Engine() *sim.Engine { return v.eng }

// CostOf returns the exact (noise-free) cost of one execution of op at this
// vCPU's level.
func (v *VCPU) CostOf(op Op) Cost {
	return v.model.Cost(op, v.level)
}

// Exec runs op n times, advances virtual time by the (noisy) total cost,
// and returns the elapsed virtual time. n <= 0 is a no-op.
func (v *VCPU) Exec(op Op, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	exact := (v.CostOf(op) * Cost(n)).Duration()
	elapsed := exact
	if v.Noise > 0 {
		elapsed = v.eng.GaussDuration(exact, v.Noise)
	}
	v.eng.Advance(elapsed)
	v.executed[op.Class] += uint64(n)
	v.busy += elapsed
	if t := v.tel; t != nil && op.Class >= 0 && int(op.Class) < len(t.ops) {
		t.ops[op.Class].Add(uint64(n))
		e := uint64(op.Profile.Exits)*t.exitFactor + uint64(op.Profile.NestedFaults)*t.faultFactor
		if e > 0 {
			t.exits[op.Class].Add(e * uint64(n))
		}
	}
	return elapsed
}

// MeasureMean runs op reps times with this vCPU's noise applied and returns
// the mean per-op cost, the way lmbench reports a measurement.
func (v *VCPU) MeasureMean(op Op, reps int) Cost {
	if reps <= 0 {
		return 0
	}
	elapsed := v.Exec(op, reps)
	return DurationCost(elapsed) / Cost(reps)
}

// Executed returns how many operations of the class have run.
func (v *VCPU) Executed(c Class) uint64 { return v.executed[c] }

// Busy returns total virtual time this vCPU has consumed.
func (v *VCPU) Busy() time.Duration { return v.busy }
