package cpu

import (
	"time"

	"cloudskulk/internal/sim"
)

// VCPU executes modelled operations on a simulation engine, advancing
// virtual time by each operation's cost (with measurement noise) and
// keeping per-class accounting.
type VCPU struct {
	eng   *sim.Engine
	model Model
	level Level

	// Noise is the relative standard deviation applied per Exec batch,
	// modelling run-to-run measurement variance. Zero means exact costs.
	Noise float64

	executed map[Class]uint64
	busy     time.Duration
}

// NewVCPU returns a vCPU running at the given level under the given model.
func NewVCPU(eng *sim.Engine, model Model, level Level) *VCPU {
	return &VCPU{
		eng:      eng,
		model:    model,
		level:    level,
		executed: make(map[Class]uint64, 3),
	}
}

// Level returns the virtualization level the vCPU runs at.
func (v *VCPU) Level() Level { return v.level }

// Model returns the cost model in use.
func (v *VCPU) Model() Model { return v.model }

// Engine returns the simulation engine the vCPU runs on.
func (v *VCPU) Engine() *sim.Engine { return v.eng }

// CostOf returns the exact (noise-free) cost of one execution of op at this
// vCPU's level.
func (v *VCPU) CostOf(op Op) Cost {
	return v.model.Cost(op, v.level)
}

// Exec runs op n times, advances virtual time by the (noisy) total cost,
// and returns the elapsed virtual time. n <= 0 is a no-op.
func (v *VCPU) Exec(op Op, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	exact := (v.CostOf(op) * Cost(n)).Duration()
	elapsed := exact
	if v.Noise > 0 {
		elapsed = v.eng.GaussDuration(exact, v.Noise)
	}
	v.eng.Advance(elapsed)
	v.executed[op.Class] += uint64(n)
	v.busy += elapsed
	return elapsed
}

// MeasureMean runs op reps times with this vCPU's noise applied and returns
// the mean per-op cost, the way lmbench reports a measurement.
func (v *VCPU) MeasureMean(op Op, reps int) Cost {
	if reps <= 0 {
		return 0
	}
	elapsed := v.Exec(op, reps)
	return DurationCost(elapsed) / Cost(reps)
}

// Executed returns how many operations of the class have run.
func (v *VCPU) Executed(c Class) uint64 { return v.executed[c] }

// Busy returns total virtual time this vCPU has consumed.
func (v *VCPU) Busy() time.Duration { return v.busy }
