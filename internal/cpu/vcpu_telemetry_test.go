package cpu

import (
	"testing"
	"time"

	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
)

func TestVCPUTelemetryCountsOpsAndExits(t *testing.T) {
	eng := sim.NewEngine(1)
	v := NewVCPU(eng, DefaultModel(), L2)
	reg := telemetry.NewRegistry()
	v.SetTelemetry(reg)

	io := IOOp("out", Micros(1), 2)
	v.Exec(io, 10)
	alu := ALUOp("add", Nanos(1))
	v.Exec(alu, 5)

	ops := reg.Counter(telemetry.Key("cpu_ops_total", "class", "io", "level", "L2"))
	if ops.Value() != 10 {
		t.Fatalf("io ops = %d, want 10", ops.Value())
	}
	// At L2 each of the 2 exits reflects into 1+ExitMultiplier real exits.
	wantExits := uint64(10 * DefaultModel().ExitsAt(io, L2))
	exits := reg.Counter(telemetry.Key("cpu_exits_total", "class", "io", "level", "L2"))
	if exits.Value() != wantExits {
		t.Fatalf("io exits = %d, want %d", exits.Value(), wantExits)
	}
	aluExits := reg.Counter(telemetry.Key("cpu_exits_total", "class", "alu", "level", "L2"))
	if aluExits.Value() != 0 {
		t.Fatalf("alu exits = %d, want 0", aluExits.Value())
	}
}

func TestVCPUTelemetryNilFastPath(t *testing.T) {
	eng := sim.NewEngine(1)
	v := NewVCPU(eng, DefaultModel(), L1)
	// Never attached: Exec must behave identically to the bare vCPU.
	ref := NewVCPU(sim.NewEngine(1), DefaultModel(), L1)
	op := SyscallOp("pipe", Micros(3.49), 3, 0)
	if got, want := v.Exec(op, 100), ref.Exec(op, 100); got != want {
		t.Fatalf("nil-telemetry Exec changed timing: %v vs %v", got, want)
	}
	// Attach then detach: detached vCPU counts nothing further.
	reg := telemetry.NewRegistry()
	v.SetTelemetry(reg)
	v.Exec(op, 1)
	v.SetTelemetry(nil)
	v.Exec(op, 9)
	c := reg.Counter(telemetry.Key("cpu_ops_total", "class", "syscall", "level", "L1"))
	if c.Value() != 1 {
		t.Fatalf("ops after detach = %d, want 1", c.Value())
	}
}

// Acceptance bound: instrumented exit dispatch must stay within ~10% of
// the uninstrumented path. Compare with:
//
//	go test -run='^$' -bench=BenchmarkExec ./internal/cpu/
func benchmarkExec(b *testing.B, reg *telemetry.Registry, attach bool) {
	eng := sim.NewEngine(1)
	v := NewVCPU(eng, DefaultModel(), L2)
	if attach {
		v.SetTelemetry(reg)
	}
	op := IOOp("out", Micros(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Exec(op, 1)
	}
	if v.Busy() < time.Duration(b.N) { // keep the work observable
		b.Fatal("no virtual time consumed")
	}
}

func BenchmarkExecUninstrumented(b *testing.B) { benchmarkExec(b, nil, false) }

// The nil-registry fast path: SetTelemetry(nil) leaves only the nil
// check on the hot path; this must stay within ~10% of uninstrumented.
func BenchmarkExecNilRegistry(b *testing.B) { benchmarkExec(b, nil, true) }

func BenchmarkExecInstrumented(b *testing.B) {
	benchmarkExec(b, telemetry.NewRegistry(), true)
}
