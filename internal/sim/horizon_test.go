package sim

import (
	"testing"
	"time"
)

// TestRunBeforeExclusive: RunBefore(t) fires strictly-earlier events, leaves
// events at exactly t queued, and parks the clock at t.
func TestRunBeforeExclusive(t *testing.T) {
	e := NewEngine(1)
	var fired []string
	e.Schedule(5*time.Millisecond, "early", func() { fired = append(fired, "early") })
	e.Schedule(10*time.Millisecond, "edge", func() { fired = append(fired, "edge") })
	e.Schedule(15*time.Millisecond, "late", func() { fired = append(fired, "late") })

	e.RunBefore(10 * time.Millisecond)
	if len(fired) != 1 || fired[0] != "early" {
		t.Fatalf("fired %v, want [early]", fired)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v, want 10ms", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (edge + late)", e.Pending())
	}
	// The horizon event is still eligible for the next window.
	e.RunBefore(10*time.Millisecond + 1)
	if len(fired) != 2 || fired[1] != "edge" {
		t.Fatalf("fired %v, want [early edge]", fired)
	}
	// RunBefore never moves the clock backwards.
	e.RunBefore(1 * time.Millisecond)
	if e.Now() != 10*time.Millisecond+1 {
		t.Fatalf("clock moved backwards to %v", e.Now())
	}
}

// TestRunBeforeCascade: an event that schedules a follow-up inside the
// window gets that follow-up fired in the same call.
func TestRunBeforeCascade(t *testing.T) {
	e := NewEngine(1)
	var got []time.Duration
	e.Schedule(1*time.Millisecond, "a", func() {
		got = append(got, e.Now())
		e.Schedule(1*time.Millisecond, "b", func() { got = append(got, e.Now()) })
		e.Schedule(100*time.Millisecond, "far", func() { got = append(got, e.Now()) })
	})
	e.RunBefore(5 * time.Millisecond)
	if len(got) != 2 || got[0] != 1*time.Millisecond || got[1] != 2*time.Millisecond {
		t.Fatalf("fired at %v, want [1ms 2ms]", got)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (the far event)", e.Pending())
	}
}

// TestNextEventAt: peeks the earliest live timestamp, skipping and reaping
// cancelled heap heads without firing anything.
func TestNextEventAt(t *testing.T) {
	e := NewEngine(1)
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("empty engine reported a pending event")
	}
	h1 := e.Schedule(2*time.Millisecond, "dead", func() {})
	e.Schedule(3*time.Millisecond, "live", func() {})
	e.Cancel(h1)
	at, ok := e.NextEventAt()
	if !ok || at != 3*time.Millisecond {
		t.Fatalf("NextEventAt = %v,%v, want 3ms,true", at, ok)
	}
	if e.Pending() != 1 || e.Steps() != 0 {
		t.Fatalf("peek disturbed the engine: pending=%d steps=%d", e.Pending(), e.Steps())
	}
	// Peek is stable: asking again returns the same answer.
	if at2, ok2 := e.NextEventAt(); at2 != at || !ok2 {
		t.Fatalf("second peek = %v,%v", at2, ok2)
	}
}
