// Package sim provides a deterministic discrete-event simulation kernel.
//
// Everything in the CloudSkulk reproduction — vCPU execution, KSM daemon
// scans, live-migration rounds, network transfers — runs on a single virtual
// clock owned by an Engine. Virtual time only advances when events fire, so
// experiments are fully deterministic for a given seed and are independent of
// wall-clock performance of the machine running the simulation.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// compactMinCancelled is the floor below which lazily-cancelled events are
// never compacted out of the heap; past it, compaction triggers when more
// than half the queue is dead weight.
const compactMinCancelled = 64

// Engine is a discrete-event simulator: a virtual clock plus a priority
// queue of scheduled events. It is not safe for concurrent use; the entire
// simulation runs single-threaded, which is what makes it deterministic.
//
// Fired and cancelled events are recycled through a free list, so the
// steady-state Schedule/Step cycle allocates nothing.
type Engine struct {
	now        time.Duration
	queue      []*Event // min-heap ordered by (at, seq)
	free       []*Event // recycled events awaiting reuse
	ncancelled int      // cancelled events still sitting in queue
	rng        *rand.Rand
	seq        uint64
	nsteps     uint64
	tracer     *Tracer
}

// NewEngine returns an engine whose clock starts at zero and whose random
// source is seeded with seed. Two engines built with the same seed replay
// identical event traces.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time (duration since simulation start).
func (e *Engine) Now() time.Duration {
	return e.now
}

// Steps returns the number of events fired so far. Useful for loop guards
// and for asserting deterministic replay in tests.
//
//detlint:hotpath
func (e *Engine) Steps() uint64 {
	return e.nsteps
}

// RNG returns the engine's seeded random source. All simulated randomness
// must come from here so experiments replay exactly.
func (e *Engine) RNG() *rand.Rand {
	return e.rng
}

// Gauss draws from a normal distribution with the given mean and relative
// standard deviation (e.g. relStddev 0.05 means sigma = 5% of mean). The
// result is clamped to be non-negative, since all simulated quantities
// (latencies, throughputs) are non-negative.
func (e *Engine) Gauss(mean float64, relStddev float64) float64 {
	v := mean + e.rng.NormFloat64()*relStddev*mean
	if v < 0 {
		return 0
	}
	return v
}

// GaussDuration draws a non-negative duration around mean with the given
// relative standard deviation.
func (e *Engine) GaussDuration(mean time.Duration, relStddev float64) time.Duration {
	return time.Duration(e.Gauss(float64(mean), relStddev))
}

// Event is a scheduled callback, owned and recycled by the engine. Callers
// hold Handles, never bare *Events: the gen counter is what lets a Handle
// detect that its event already fired and the object now belongs to a
// different scheduling.
type Event struct {
	at        time.Duration
	seq       uint64
	gen       uint64
	name      string
	fn        func()
	cancelled bool
}

// Handle identifies one scheduling of an event. The zero Handle is valid
// and refers to nothing; cancelling it is a no-op. A Handle outlives the
// firing it refers to safely — once the event fires (or is cancelled and
// reaped) the generation moves on and the Handle goes inert.
type Handle struct {
	ev  *Event
	gen uint64
}

// Name returns the label the handle's event was scheduled with, or "" if
// the scheduling is no longer pending.
func (h Handle) Name() string {
	if h.ev == nil || h.ev.gen != h.gen {
		return ""
	}
	return h.ev.name
}

// At returns the virtual time the handle's event fires at, or 0 if the
// scheduling is no longer pending.
func (h Handle) At() time.Duration {
	if h.ev == nil || h.ev.gen != h.gen {
		return 0
	}
	return h.ev.at
}

// alloc takes an event off the free list, or mints one if the pool is dry.
//
//detlint:hotpath
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	//detlint:allow hotpath — pool-dry mint path; amortized to zero once the free list warms up
	return &Event{}
}

// recycle retires an event to the free list. Bumping gen first severs every
// outstanding Handle; clearing fn/name drops references the pool must not
// pin.
//
//detlint:hotpath
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.name = ""
	ev.cancelled = false
	e.free = append(e.free, ev)
}

// Schedule enqueues fn to run after delay of virtual time. A negative delay
// is treated as zero (fire as soon as the event loop resumes). Events
// scheduled for the same instant fire in scheduling order.
//
//detlint:hotpath
func (e *Engine) Schedule(delay time.Duration, name string, fn func()) Handle {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	ev := e.alloc()
	ev.at = e.now + delay
	ev.seq = e.seq
	ev.name = name
	ev.fn = fn
	e.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// ScheduleAt enqueues fn at an absolute virtual time. Times in the past are
// clamped to now.
//
//detlint:hotpath
func (e *Engine) ScheduleAt(at time.Duration, name string, fn func()) Handle {
	return e.Schedule(at-e.now, name, fn)
}

// Cancel prevents a pending event from firing. The event stays in the heap
// and is reaped when it reaches the top (or at the next compaction), which
// keeps Cancel O(1). Cancelling an already-fired, already-cancelled, or
// zero Handle is a no-op.
//
//detlint:hotpath
func (e *Engine) Cancel(h Handle) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.cancelled {
		return
	}
	ev.cancelled = true
	e.ncancelled++
	if e.ncancelled >= compactMinCancelled && e.ncancelled*2 > len(e.queue) {
		e.compact()
	}
}

// compact filters cancelled events out of the queue and re-heapifies.
// Heap order is re-derived from the total (at, seq) comparator, so pop
// order — and therefore the simulation — is unaffected.
//
//detlint:hotpath
func (e *Engine) compact() {
	live := e.queue[:0]
	for _, ev := range e.queue {
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = live
	e.ncancelled = 0
	for i := len(live)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event fired (false means the queue was empty).
//
//detlint:hotpath
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.cancelled {
			e.ncancelled--
			e.recycle(ev)
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.nsteps++
		// Recycle before invoking: the callback may schedule again and is
		// handed this very object back under a fresh generation, while any
		// stale Handle to the firing just went inert.
		name, fn := ev.name, ev.fn
		e.recycle(ev)
		if e.tracer != nil {
			e.tracer.Record(e.now, name)
		}
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.cancelled {
			e.pop()
			e.ncancelled--
			e.recycle(next)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunBefore fires events with timestamps strictly < t, then sets the clock
// to t. It is the conservative-synchronization primitive: a shard granted
// the window [now, horizon) may fire everything before the horizon but must
// leave events at exactly the horizon queued, because a neighbouring shard
// is still allowed to inject traffic at that instant.
func (e *Engine) RunBefore(t time.Duration) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.cancelled {
			e.pop()
			e.ncancelled--
			e.recycle(next)
			continue
		}
		if next.at >= t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// NextEventAt returns the timestamp of the earliest pending (non-cancelled)
// event, reaping any cancelled events it skips over on the way. The second
// result is false when the queue is empty. Shard coordinators use it to
// compute the fleet-wide minimum next-event time each synchronization round.
func (e *Engine) NextEventAt() (time.Duration, bool) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if !next.cancelled {
			return next.at, true
		}
		e.pop()
		e.ncancelled--
		e.recycle(next)
	}
	return 0, false
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

// Advance moves the clock forward by d without firing events scheduled in
// between. It is the building block for "this operation took d" accounting
// in analytic (non-event) code paths; callers that interleave with event
// sources should prefer RunFor. Advance panics on negative d, which always
// indicates a programming error in a cost model.
func (e *Engine) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %v", d))
	}
	e.now += d
}

// Pending returns the number of events currently queued and not cancelled.
func (e *Engine) Pending() int {
	return len(e.queue) - e.ncancelled
}

// less is the queue's strict total order: by firing time, ties broken by
// scheduling sequence, which is unique.
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//detlint:hotpath
func (e *Engine) push(ev *Event) {
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

//detlint:hotpath
func (e *Engine) pop() *Event {
	q := e.queue
	ev := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return ev
}

//detlint:hotpath
func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !less(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

//detlint:hotpath
func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && less(q[r], q[l]) {
			m = r
		}
		if !less(q[m], ev) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = ev
}
