// Package sim provides a deterministic discrete-event simulation kernel.
//
// Everything in the CloudSkulk reproduction — vCPU execution, KSM daemon
// scans, live-migration rounds, network transfers — runs on a single virtual
// clock owned by an Engine. Virtual time only advances when events fire, so
// experiments are fully deterministic for a given seed and are independent of
// wall-clock performance of the machine running the simulation.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event simulator: a virtual clock plus a priority
// queue of scheduled events. It is not safe for concurrent use; the entire
// simulation runs single-threaded, which is what makes it deterministic.
type Engine struct {
	now    time.Duration
	queue  eventQueue
	rng    *rand.Rand
	seq    uint64
	nsteps uint64
	tracer *Tracer
}

// NewEngine returns an engine whose clock starts at zero and whose random
// source is seeded with seed. Two engines built with the same seed replay
// identical event traces.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time (duration since simulation start).
func (e *Engine) Now() time.Duration {
	return e.now
}

// Steps returns the number of events fired so far. Useful for loop guards
// and for asserting deterministic replay in tests.
func (e *Engine) Steps() uint64 {
	return e.nsteps
}

// RNG returns the engine's seeded random source. All simulated randomness
// must come from here so experiments replay exactly.
func (e *Engine) RNG() *rand.Rand {
	return e.rng
}

// Gauss draws from a normal distribution with the given mean and relative
// standard deviation (e.g. relStddev 0.05 means sigma = 5% of mean). The
// result is clamped to be non-negative, since all simulated quantities
// (latencies, throughputs) are non-negative.
func (e *Engine) Gauss(mean float64, relStddev float64) float64 {
	v := mean + e.rng.NormFloat64()*relStddev*mean
	if v < 0 {
		return 0
	}
	return v
}

// GaussDuration draws a non-negative duration around mean with the given
// relative standard deviation.
func (e *Engine) GaussDuration(mean time.Duration, relStddev float64) time.Duration {
	return time.Duration(e.Gauss(float64(mean), relStddev))
}

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        time.Duration
	seq       uint64
	name      string
	fn        func()
	index     int // heap index; -1 once popped or cancelled
	cancelled bool
}

// Name returns the label the event was scheduled with.
func (ev *Event) Name() string { return ev.name }

// At returns the virtual time the event is scheduled to fire.
func (ev *Event) At() time.Duration { return ev.at }

// Schedule enqueues fn to run after delay of virtual time. A negative delay
// is treated as zero (fire as soon as the event loop resumes). Events
// scheduled for the same instant fire in scheduling order.
func (e *Engine) Schedule(delay time.Duration, name string, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	ev := &Event{
		at:   e.now + delay,
		seq:  e.seq,
		name: name,
		fn:   fn,
	}
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAt enqueues fn at an absolute virtual time. Times in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at time.Duration, name string, fn func()) *Event {
	return e.Schedule(at-e.now, name, fn)
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event fired (false means the queue was empty).
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev, ok := heap.Pop(&e.queue).(*Event)
		if !ok {
			return false
		}
		if ev.cancelled {
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.nsteps++
		if e.tracer != nil {
			e.tracer.Record(e.now, ev.name)
		}
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t time.Duration) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

// Advance moves the clock forward by d without firing events scheduled in
// between. It is the building block for "this operation took d" accounting
// in analytic (non-event) code paths; callers that interleave with event
// sources should prefer RunFor. Advance panics on negative d, which always
// indicates a programming error in a cost model.
func (e *Engine) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %v", d))
	}
	e.now += d
}

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic("sim: push of non-event")
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
