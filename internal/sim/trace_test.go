package sim

import (
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsEventFirings(t *testing.T) {
	e := NewEngine(1)
	tr := NewTracer(0)
	e.Observe(tr)
	e.Schedule(time.Millisecond, "alpha", func() {})
	e.Schedule(2*time.Millisecond, "beta", func() {})
	e.Run()
	got := tr.Entries()
	if len(got) != 2 {
		t.Fatalf("entries = %d", len(got))
	}
	if got[0].Name != "alpha" || got[0].At != time.Millisecond {
		t.Fatalf("entry 0 = %+v", got[0])
	}
	if got[1].Name != "beta" {
		t.Fatalf("entry 1 = %+v", got[1])
	}
	out := tr.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("render:\n%s", out)
	}
	// Detach: further events unrecorded.
	e.Observe(nil)
	e.Schedule(time.Millisecond, "gamma", func() {})
	e.Run()
	if tr.Len() != 2 {
		t.Fatal("recorded after detach")
	}
}

func TestTracerRingEviction(t *testing.T) {
	e := NewEngine(1)
	tr := NewTracer(3)
	e.Observe(tr)
	for i := 0; i < 5; i++ {
		name := string(rune('a' + i))
		e.Schedule(time.Duration(i+1)*time.Millisecond, name, func() {})
	}
	e.Run()
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	got := tr.Entries()
	if got[0].Name != "c" || got[2].Name != "e" {
		t.Fatalf("ring order = %+v", got)
	}
}

func TestTracerStringDroppedTrailer(t *testing.T) {
	tr := NewTracer(2)
	tr.Record(time.Millisecond, "a")
	tr.Record(2*time.Millisecond, "b")
	if out := tr.String(); strings.Contains(out, "dropped") {
		t.Fatalf("trailer shown with nothing dropped:\n%s", out)
	}
	tr.Record(3*time.Millisecond, "c")
	tr.Record(4*time.Millisecond, "d")
	out := tr.String()
	if !strings.HasSuffix(out, "(+2 dropped)\n") {
		t.Fatalf("missing dropped trailer:\n%s", out)
	}
}

func TestTracerCancelledEventsNotRecorded(t *testing.T) {
	e := NewEngine(1)
	tr := NewTracer(0)
	e.Observe(tr)
	ev := e.Schedule(time.Millisecond, "never", func() {})
	e.Cancel(ev)
	e.Run()
	if tr.Len() != 0 {
		t.Fatalf("entries = %v", tr.Entries())
	}
}
