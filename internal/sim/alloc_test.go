package sim

import (
	"testing"
	"time"
)

// TestScheduleStepZeroAlloc pins the tentpole property: once the event pool
// and heap backing array are warm, a Schedule+Step cycle allocates nothing.
func TestScheduleStepZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, "warm", fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(time.Microsecond, "tick", fn)
		if !e.Step() {
			t.Fatal("queue unexpectedly empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule+Step allocates %v objects/op, want 0", allocs)
	}
}

// TestTickerSteadyStateZeroAlloc: a running ticker re-arms by re-enqueueing
// one pre-bound closure, so each period is allocation-free.
func TestTickerSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	tk := NewTicker(e, time.Millisecond, "tick", func() { ticks++ })
	e.Step() // first firing warms the pool
	allocs := testing.AllocsPerRun(1000, func() {
		if !e.Step() {
			t.Fatal("ticker queue unexpectedly empty")
		}
	})
	tk.Stop()
	if allocs != 0 {
		t.Fatalf("ticker period allocates %v objects/op, want 0", allocs)
	}
	if ticks < 1000 {
		t.Fatalf("ticks = %d, want >= 1000", ticks)
	}
}

// TestStaleHandleDoesNotCancelReusedEvent: after an event fires, its pooled
// object may immediately back a new scheduling; the old Handle's generation
// no longer matches, so cancelling it must not touch the newcomer.
func TestStaleHandleDoesNotCancelReusedEvent(t *testing.T) {
	e := NewEngine(1)
	stale := e.Schedule(time.Millisecond, "first", func() {})
	e.Step()
	fired := false
	fresh := e.Schedule(time.Millisecond, "second", func() { fired = true })
	if fresh.ev != stale.ev {
		t.Fatalf("pool did not reuse the event object; test premise broken")
	}
	e.Cancel(stale)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after stale cancel, want 1", e.Pending())
	}
	e.Step()
	if !fired {
		t.Fatal("stale handle cancelled a reused event")
	}
}

// TestStaleHandleGoesInert: Name/At read through the generation check.
func TestStaleHandleGoesInert(t *testing.T) {
	e := NewEngine(1)
	h := e.Schedule(2*time.Millisecond, "probe", func() {})
	if h.Name() != "probe" || h.At() != 2*time.Millisecond {
		t.Fatalf("live handle = (%q, %v), want (probe, 2ms)", h.Name(), h.At())
	}
	e.Step()
	if h.Name() != "" || h.At() != 0 {
		t.Fatalf("fired handle = (%q, %v), want inert zero values", h.Name(), h.At())
	}
}

// TestMassCancelCompactionKeepsOrder: cancelling most of a large queue trips
// the lazy compaction; survivors must still fire in exact (at, seq) order
// and Pending must account for the dead weight either way.
func TestMassCancelCompactionKeepsOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	handles := make([]Handle, 300)
	for i := 0; i < 300; i++ {
		i := i
		handles[i] = e.Schedule(time.Duration(i)*time.Millisecond, "n", func() {
			order = append(order, i)
		})
	}
	for i := 0; i < 300; i++ {
		if i%3 != 0 {
			e.Cancel(handles[i])
		}
	}
	if got := e.Pending(); got != 100 {
		t.Fatalf("Pending = %d after mass cancel, want 100", got)
	}
	e.Run()
	if len(order) != 100 {
		t.Fatalf("fired %d events, want 100", len(order))
	}
	for idx, v := range order {
		if v != idx*3 {
			t.Fatalf("order[%d] = %d, want %d", idx, v, idx*3)
		}
	}
}

// TestCancelDuringOwnFiring: a callback cancelling its own handle (the
// ticker Stop-from-callback shape) is a harmless no-op — the generation
// already moved on by the time the callback runs.
func TestCancelDuringOwnFiring(t *testing.T) {
	e := NewEngine(1)
	var self Handle
	ran := false
	self = e.Schedule(time.Millisecond, "self", func() {
		ran = true
		e.Cancel(self)
	})
	e.Step()
	if !ran {
		t.Fatal("event did not fire")
	}
	later := false
	e.Schedule(time.Millisecond, "later", func() { later = true })
	e.Run()
	if !later {
		t.Fatal("self-cancel poisoned the pooled event for its next user")
	}
}
