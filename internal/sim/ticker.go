package sim

import "time"

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It is the simulation analogue of a kernel daemon's wakeup loop (KSM's
// ksmd, migration rate limiting, workload pulse generators).
type Ticker struct {
	engine  *Engine
	period  time.Duration
	name    string
	fn      func()
	fire    func()
	next    Handle
	stopped bool
}

// NewTicker schedules fn to run every period of virtual time, starting one
// period from now. The returned ticker must be stopped when no longer
// needed, otherwise it keeps the event queue non-empty forever.
func NewTicker(e *Engine, period time.Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{
		engine: e,
		period: period,
		name:   name,
		fn:     fn,
	}
	// One closure for the ticker's whole lifetime; re-arming just re-enqueues
	// it, so a running ticker adds no per-period garbage.
	t.fire = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.next = t.engine.Schedule(t.period, t.name, t.fire)
}

// Stop cancels future firings. Stopping twice is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.engine.Cancel(t.next)
}

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
