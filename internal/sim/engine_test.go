package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine pending = %d, want 0", e.Pending())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var fired time.Duration
	e.Schedule(5*time.Millisecond, "a", func() { fired = e.Now() })
	if !e.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if fired != 5*time.Millisecond {
		t.Fatalf("event fired at %v, want 5ms", fired)
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v, want 5ms", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Schedule(30*time.Millisecond, "c", func() { order = append(order, "c") })
	e.Schedule(10*time.Millisecond, "a", func() { order = append(order, "a") })
	e.Schedule(20*time.Millisecond, "b", func() { order = append(order, "b") })
	e.Run()
	if got := len(order); got != 3 {
		t.Fatalf("fired %d events, want 3", got)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", order)
	}
}

func TestSameInstantFiresInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, "tie", func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order = %v, want ascending schedule order", order)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine(1)
	e.Advance(time.Second)
	var at time.Duration
	e.Schedule(-time.Hour, "past", func() { at = e.Now() })
	e.Run()
	if at != time.Second {
		t.Fatalf("past event fired at %v, want clock time 1s", at)
	}
}

func TestScheduleAtAbsolute(t *testing.T) {
	e := NewEngine(1)
	var at time.Duration
	e.ScheduleAt(42*time.Millisecond, "abs", func() { at = e.Now() })
	e.Run()
	if at != 42*time.Millisecond {
		t.Fatalf("fired at %v, want 42ms", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Millisecond, "x", func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-after-run must not panic.
	e.Cancel(ev)
	e.Cancel(Handle{})
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine(1)
	var order []string
	a := e.Schedule(1*time.Millisecond, "a", func() { order = append(order, "a") })
	e.Schedule(2*time.Millisecond, "b", func() { order = append(order, "b") })
	c := e.Schedule(3*time.Millisecond, "c", func() { order = append(order, "c") })
	e.Cancel(a)
	e.Cancel(c)
	e.Run()
	if len(order) != 1 || order[0] != "b" {
		t.Fatalf("order = %v, want [b]", order)
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := NewEngine(1)
	var fired []string
	e.Schedule(10*time.Millisecond, "early", func() { fired = append(fired, "early") })
	e.Schedule(30*time.Millisecond, "late", func() { fired = append(fired, "late") })
	e.RunUntil(20 * time.Millisecond)
	if len(fired) != 1 || fired[0] != "early" {
		t.Fatalf("fired = %v, want [early]", fired)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("after Run fired = %v, want both", fired)
	}
}

func TestRunForRelative(t *testing.T) {
	e := NewEngine(1)
	e.Advance(time.Second)
	count := 0
	e.Schedule(500*time.Millisecond, "in", func() { count++ })
	e.Schedule(2*time.Second, "out", func() { count++ })
	e.RunFor(time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	e := NewEngine(1)
	var chain []time.Duration
	var step func()
	step = func() {
		chain = append(chain, e.Now())
		if len(chain) < 5 {
			e.Schedule(time.Millisecond, "chain", step)
		}
	}
	e.Schedule(time.Millisecond, "chain", step)
	e.Run()
	if len(chain) != 5 {
		t.Fatalf("chain length = %d, want 5", len(chain))
	}
	for i, at := range chain {
		want := time.Duration(i+1) * time.Millisecond
		if at != want {
			t.Fatalf("chain[%d] fired at %v, want %v", i, at, want)
		}
	}
}

func TestAdvancePanicsOnNegative(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	e.Advance(-1)
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []float64 {
		e := NewEngine(seed)
		var out []float64
		tk := NewTicker(e, time.Millisecond, "tick", func() {
			out = append(out, e.Gauss(100, 0.1))
		})
		e.RunFor(10 * time.Millisecond)
		tk.Stop()
		return out
	}
	a := run(42)
	b := run(42)
	c := run(43)
	if len(a) != 10 {
		t.Fatalf("run produced %d samples, want 10", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGaussNonNegative(t *testing.T) {
	e := NewEngine(7)
	f := func(mean uint16) bool {
		// Large relative stddev forces negative draws that must clamp.
		return e.Gauss(float64(mean), 5.0) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGaussDuration(t *testing.T) {
	e := NewEngine(7)
	for i := 0; i < 1000; i++ {
		d := e.GaussDuration(time.Millisecond, 0.05)
		if d < 0 {
			t.Fatalf("negative duration %v", d)
		}
		if d < 500*time.Microsecond || d > 1500*time.Microsecond {
			t.Fatalf("draw %v implausibly far from mean at 5%% sigma", d)
		}
	}
}

// TestQueueOrderProperty checks the heap invariant via property testing:
// any batch of delays fires in non-decreasing time order.
func TestQueueOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(1)
		var fired []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Microsecond, "p", func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTickerStops(t *testing.T) {
	e := NewEngine(1)
	count := 0
	tk := NewTicker(e, time.Millisecond, "tick", func() { count++ })
	e.RunFor(5 * time.Millisecond)
	tk.Stop()
	e.RunFor(5 * time.Millisecond)
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	if !tk.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	tk.Stop() // idempotent
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tk *Ticker
	tk = NewTicker(e, time.Millisecond, "tick", func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.RunFor(10 * time.Millisecond)
	if count != 3 {
		t.Fatalf("ticks = %d, want 3 (self-stop)", count)
	}
}

func TestTickerPanicsOnNonPositivePeriod(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	NewTicker(e, 0, "bad", func() {})
}

func TestStepsCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, "n", func() {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Fatalf("Steps = %d, want 7", e.Steps())
	}
}
