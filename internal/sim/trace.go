package sim

import (
	"fmt"
	"strings"
	"time"
)

// TraceEntry is one recorded event firing.
type TraceEntry struct {
	At   time.Duration
	Name string
}

// Tracer records event firings into a bounded ring, for debugging
// simulations and for the CLIs' verbose modes. A zero capacity means
// unbounded.
type Tracer struct {
	cap     int
	entries []TraceEntry
	start   int
	dropped uint64
}

// NewTracer returns a tracer keeping at most capacity entries
// (capacity <= 0 means unbounded).
func NewTracer(capacity int) *Tracer {
	return &Tracer{cap: capacity}
}

// Record appends an entry, evicting the oldest when at capacity.
func (t *Tracer) Record(at time.Duration, name string) {
	if t.cap > 0 && len(t.entries) == t.cap {
		t.entries[t.start] = TraceEntry{At: at, Name: name}
		t.start = (t.start + 1) % t.cap
		t.dropped++
		return
	}
	t.entries = append(t.entries, TraceEntry{At: at, Name: name})
}

// Entries returns the recorded entries, oldest first.
func (t *Tracer) Entries() []TraceEntry {
	out := make([]TraceEntry, 0, len(t.entries))
	out = append(out, t.entries[t.start:]...)
	out = append(out, t.entries[:t.start]...)
	return out
}

// Dropped returns how many entries were evicted.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Len returns the number of retained entries.
func (t *Tracer) Len() int { return len(t.entries) }

// String renders the trace, one event per line. When the ring has
// evicted entries, a "(+N dropped)" trailer makes the truncation visible.
func (t *Tracer) String() string {
	var b strings.Builder
	for _, e := range t.Entries() {
		fmt.Fprintf(&b, "%12s  %s\n", e.At, e.Name)
	}
	if t.dropped > 0 {
		fmt.Fprintf(&b, "(+%d dropped)\n", t.dropped)
	}
	return b.String()
}

// Observe attaches the tracer to the engine: every fired event is
// recorded. Passing nil detaches.
func (e *Engine) Observe(t *Tracer) {
	e.tracer = t
}
