package detect

import (
	"testing"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/telemetry"
)

func newAuditedSpace(t *testing.T) (*sim.Engine, *mem.Space, *InvariantDetector) {
	t.Helper()
	eng := sim.NewEngine(1)
	s := mem.NewSpace("guest-ram", 64*mem.PageSize)
	s.FillRandom(eng.RNG(), 0)
	return eng, s, NewInvariantDetector(eng, s, 0, 32)
}

// TestInvariantQuietGuestNeverFlagged: an untouched monitored range audits
// clean forever, and the audit overhead is charged.
func TestInvariantQuietGuestNeverFlagged(t *testing.T) {
	_, _, d := newAuditedSpace(t)
	for i := 0; i < 10; i++ {
		if d.Audit() {
			t.Fatalf("audit %d flagged an untouched range", i)
		}
	}
	if d.Hits() != 0 || d.Audits() != 10 {
		t.Fatalf("hits=%d audits=%d", d.Hits(), d.Audits())
	}
	if d.Overhead() <= 0 {
		t.Fatal("audits charged no overhead")
	}
}

// TestInvariantBenignRewriteNotFlagged is the false-positive path: a guest
// legitimately rewriting monitored pages once (a kernel update between two
// audits) must re-baseline, not flag — volatility-gate parity with the KSM
// checksum gate.
func TestInvariantBenignRewriteNotFlagged(t *testing.T) {
	eng, s, d := newAuditedSpace(t)
	if d.Audit() {
		t.Fatal("pre-rewrite audit flagged")
	}
	// The legitimate rewrite: every monitored page changes once.
	for p := 0; p < 32; p++ {
		if _, err := s.Write(p, mem.Content(eng.RNG().Uint64()|1)); err != nil {
			t.Fatal(err)
		}
	}
	if d.Audit() {
		t.Fatal("single benign rewrite flagged")
	}
	// The guest holds still afterwards: the suspect mark must clear and
	// stay clear.
	for i := 0; i < 5; i++ {
		if d.Audit() {
			t.Fatalf("audit %d after benign rewrite flagged", i)
		}
	}
	if d.Hits() != 0 {
		t.Fatalf("hits = %d, want 0", d.Hits())
	}
}

// TestInvariantSustainedTamperingFlagged: content that keeps changing
// across consecutive audits — an attacker churning kernel pages — trips
// the gate.
func TestInvariantSustainedTamperingFlagged(t *testing.T) {
	_, s, d := newAuditedSpace(t)
	c := mem.Content(0x1234567)
	tamper := func() {
		c = c*6364136223846793005 + 1442695040888963407
		if _, err := s.Write(3, c); err != nil {
			t.Fatal(err)
		}
	}
	tamper()
	if d.Audit() {
		t.Fatal("first change flagged immediately (gate should tolerate one)")
	}
	tamper()
	if !d.Audit() {
		t.Fatal("second consecutive change not flagged")
	}
	if d.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", d.Hits())
	}
}

// TestSkewDetectorFloorsAndFlags: the skew detector stays silent below the
// evidence floor and flags deep-level exit volume above it.
func TestSkewDetectorFloorsAndFlags(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := telemetry.NewRegistry()
	d := NewSkewDetector(reg)
	d.MinExits = 1000

	if flagged, _, _ := d.Scan(); flagged {
		t.Fatal("empty registry flagged")
	}

	// An L2 vCPU doing real syscall work reports reflected exits.
	v := cpu.NewVCPU(eng, cpu.DefaultModel(), cpu.L2)
	v.SetTelemetry(reg)
	v.Exec(cpu.SyscallOp("null-call", cpu.Nanos(150), 1, 0), 10)
	if flagged, exits, _ := d.Scan(); flagged {
		t.Fatalf("flagged below floor (%d exits)", exits)
	}
	v.Exec(cpu.SyscallOp("null-call", cpu.Nanos(150), 1, 0), 1000)
	flagged, exits, ops := d.Scan()
	if !flagged {
		t.Fatalf("not flagged above floor (exits=%d ops=%d)", exits, ops)
	}
	if exits != 1010*uint64(1+cpu.DefaultModel().ExitMultiplier) {
		t.Fatalf("exits = %d", exits)
	}
}
