package detect

import (
	"cloudskulk/internal/cpu"
	"cloudskulk/internal/telemetry"
)

// SkewDetector reads the host's exit-class telemetry (PR3's cpu_ops_total /
// cpu_exits_total counters) and flags exit-class skew: real, L0-handled
// exits that no first-level guest accounts for. Nested execution reflects
// every L2+ exit through the intermediate hypervisor, so reflected-exit
// volume attributed to deeper-than-L1 execution is exactly the signature a
// perf-counter-watching admin would see as "this guest's exits don't match
// its work". Its blind spot is sample size: an attacker whose captive guest
// does little exit-generating work (dirty-rate shaping, an idle victim)
// stays under the floor.
type SkewDetector struct {
	// Reg is the registry the host's vCPUs report into.
	Reg *telemetry.Registry
	// MinExits is the evidence floor: fewer reflected exits than this and
	// the detector stays silent rather than flag noise.
	MinExits uint64
}

// DefaultSkewMinExits is the evidence floor: below ~10k reflected exits
// the skew is indistinguishable from device-model jitter.
const DefaultSkewMinExits = 10_000

// NewSkewDetector returns a skew detector over the given registry with the
// default evidence floor.
func NewSkewDetector(reg *telemetry.Registry) *SkewDetector {
	return &SkewDetector{Reg: reg, MinExits: DefaultSkewMinExits}
}

// Scan sums ops and real exits attributed to deeper-than-L1 levels across
// every operation class and reports whether the skew evidence clears the
// floor, along with the totals it saw.
func (d *SkewDetector) Scan() (flagged bool, deepExits, deepOps uint64) {
	if d.Reg == nil {
		return false, 0, 0
	}
	for _, lvl := range []cpu.Level{cpu.L2, cpu.L3} {
		for _, c := range []cpu.Class{cpu.ClassALU, cpu.ClassSyscall, cpu.ClassIO} {
			deepExits += d.Reg.Counter(telemetry.Key("cpu_exits_total",
				"class", c.String(), "level", lvl.String())).Value()
			deepOps += d.Reg.Counter(telemetry.Key("cpu_ops_total",
				"class", c.String(), "level", lvl.String())).Value()
		}
	}
	min := d.MinExits
	if min == 0 {
		min = DefaultSkewMinExits
	}
	return deepExits >= min, deepExits, deepOps
}
