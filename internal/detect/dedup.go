// Package detect implements the paper's defence — the memory-deduplication
// timing detector run from L0 (§VI) — plus the two alternative approaches
// the paper discusses and dismisses: VMCS memory-forensic scanning
// (Graziano et al.) and VMI OS fingerprinting.
package detect

import (
	"errors"
	"fmt"
	"time"

	"cloudskulk/internal/ksm"
	"cloudskulk/internal/kvm"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/stats"
)

// Detector errors.
var (
	ErrKSMOff  = errors.New("detect: ksm daemon not running")
	ErrNoAgent = errors.New("detect: guest agent has no file loaded")
)

// Verdict is the detector's conclusion.
type Verdict int

// Verdicts.
const (
	// VerdictClean: t1 merged, t2 did not — the only copy of File-A was
	// the guest's and it changed. No hidden layer.
	VerdictClean Verdict = iota + 1
	// VerdictNested: t2 still merged after the guest's copy changed —
	// some *other* memory on this host still holds File-A. A CloudSkulk
	// L1 is impersonating the guest.
	VerdictNested
	// VerdictInconclusive: t1 never merged (KSM too slow / disabled) —
	// the protocol's precondition failed.
	VerdictInconclusive
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictClean:
		return "clean"
	case VerdictNested:
		return "nested-vm rootkit detected"
	case VerdictInconclusive:
		return "inconclusive"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Probe is one timing pass over the probe file: per-page write latencies.
type Probe struct {
	Times []time.Duration
	// MergedFraction is the share of pages whose write latency indicates
	// a copy-on-write break.
	MergedFraction float64
}

// Mean returns the mean per-page write time.
func (p Probe) Mean() time.Duration {
	if len(p.Times) == 0 {
		return 0
	}
	var sum time.Duration
	for _, t := range p.Times {
		sum += t
	}
	return sum / time.Duration(len(p.Times))
}

// MicrosSeries returns the per-page times in microseconds (the Figs. 5-6
// series).
func (p Probe) MicrosSeries() []float64 {
	return stats.DurationsMicros(p.Times)
}

// Evidence carries the three probes the protocol measures.
type Evidence struct {
	// T0: control — a file resident only in L0.
	T0 Probe
	// T1: File-A loaded in L0 after the guest received it.
	T1 Probe
	// T2: File-A loaded in L0 again after the guest changed its copy.
	T2 Probe
	// Elapsed is the protocol's total (virtual) duration: the
	// operational cost of one detection pass.
	Elapsed time.Duration
}

// GuestAgent is the user-side program the paper pairs with the detector:
// it loads File-A into the guest's memory and, on request, changes every
// page (File-A-v2). It runs *inside the guest*, so after a CloudSkulk
// attack it operates on the nested (L2) VM — which is the whole point.
type GuestAgent struct {
	vm   *qemu.VM
	at   int
	file *mem.File

	// OnLoad, if set, observes every file pushed into the guest. The
	// vendor's push traverses the guest's network path — which, under a
	// CloudSkulk attack, is the rootkit. The attack wires this hook to
	// mirror pushed files into the RITM (core.Rootkit.InterceptFilePushes);
	// mutations made *inside* the guest are invisible to it, which is
	// exactly the asymmetry the detector exploits.
	OnLoad func(f *mem.File)
}

// NewGuestAgent returns an agent for the given guest, placing the file at
// page offset at.
func NewGuestAgent(vm *qemu.VM, at int) *GuestAgent {
	return &GuestAgent{vm: vm, at: at}
}

// VM returns the guest the agent currently runs in.
func (a *GuestAgent) VM() *qemu.VM { return a.vm }

// Rebind points the agent at a different VM object. The simulation needs
// this after a migration-based attack: the user is still "in their VM",
// but that VM is now the nested one.
func (a *GuestAgent) Rebind(vm *qemu.VM) { a.vm = vm }

// LoadFile loads f into guest memory (the vendor's web-interface push).
func (a *GuestAgent) LoadFile(f *mem.File) error {
	if err := a.vm.RAM().LoadFile(f, a.at); err != nil {
		return err
	}
	a.file = f
	if a.OnLoad != nil {
		a.OnLoad(f)
	}
	return nil
}

// MutateFile changes every page of the loaded file (File-A -> File-A-v2),
// writing through the guest so COW sharing on the guest side breaks.
func (a *GuestAgent) MutateFile() error {
	if a.file == nil {
		return ErrNoAgent
	}
	v2 := a.file.Mutated()
	for i, c := range v2.Pages {
		if _, err := a.vm.RAM().Write(a.at+i, c); err != nil {
			return err
		}
	}
	a.file = v2
	return nil
}

// MutateRange changes n guest pages starting at page `at` — the image-probe
// protocol's "slightly change each page" step, applied to pages the vendor
// already knows (no fresh push for the attacker to observe).
func (a *GuestAgent) MutateRange(at, n int) error {
	for p := at; p < at+n; p++ {
		c, err := a.vm.RAM().Read(p)
		if err != nil {
			return err
		}
		if _, err := a.vm.RAM().Write(p, mem.MutateContent(c)); err != nil {
			return err
		}
	}
	return nil
}

// DedupDetector runs the paper's protocol from L0.
type DedupDetector struct {
	Host *kvm.Host
	// Pages is the probe-file size (the paper demonstrates with 100 and
	// argues one page suffices).
	Pages int
	// Wait is how long to let ksmd scan between loading and measuring
	// ("we wait for a while").
	Wait time.Duration
	// Noise is the relative stddev applied to each measured write.
	Noise float64
	// CostOverride, when non-nil, replaces the host KSM's write-cost
	// model — ablations use it to model hosts with smaller dedup timing
	// gaps.
	CostOverride *ksm.CostModel
}

// NewDedupDetector returns a detector with the paper's parameters.
func NewDedupDetector(host *kvm.Host) *DedupDetector {
	return &DedupDetector{
		Host:  host,
		Pages: 100,
		Wait:  15 * time.Second,
		Noise: 0.08,
	}
}

// Run executes the full protocol against the guest behind agent and
// returns the verdict with the timing evidence.
func (d *DedupDetector) Run(agent *GuestAgent) (Verdict, Evidence, error) {
	if !d.Host.KSM().Running() {
		return VerdictInconclusive, Evidence{}, ErrKSMOff
	}
	pages := d.Pages
	if pages <= 0 {
		pages = 100
	}
	start := d.Host.Engine().Now()
	rng := d.Host.Engine().RNG()
	fileA := mem.GenerateFile(rng, "file-a.mp3", pages)
	control := mem.GenerateFile(rng, "control.bin", pages)
	var ev Evidence

	// t0: baseline — control file resident only in L0.
	ev.T0 = d.probe(control, "detect.t0")

	// The vendor pushes File-A to both L0 and the guest.
	if err := agent.LoadFile(fileA); err != nil {
		return VerdictInconclusive, ev, err
	}

	// Step 1: load File-A in L0, wait for merging, measure t1.
	ev.T1 = d.probe(fileA, "detect.t1")

	// Step 2: the guest changes every page; load File-A in L0 again and
	// measure t2.
	if err := agent.MutateFile(); err != nil {
		return VerdictInconclusive, ev, err
	}
	ev.T2 = d.probe(fileA, "detect.t2")
	ev.Elapsed = d.Host.Engine().Now() - start

	return classify(ev), ev, nil
}

// RunImageProbe executes the protocol without pushing any fresh file:
// the probe is a randomly chosen window of pages from the VM image the
// vendor itself provisioned (so the vendor knows their contents and that
// they are resident in the guest — and in any impersonating layer running
// the same image). Because the attacker cannot predict *which* pages the
// detector will pick, evading this variant requires synchronizing the
// whole image region, not just observed file pushes (the paper's §VI-D
// cost argument).
//
// image is the vendor's record of the provisioned content; imageAt is
// where it resides in guest memory.
func (d *DedupDetector) RunImageProbe(agent *GuestAgent, image *mem.File, imageAt int) (Verdict, Evidence, error) {
	if !d.Host.KSM().Running() {
		return VerdictInconclusive, Evidence{}, ErrKSMOff
	}
	pages := d.Pages
	if pages <= 0 {
		pages = 100
	}
	if pages > image.NumPages() {
		pages = image.NumPages()
	}
	rng := d.Host.Engine().RNG()
	start := 0
	if span := image.NumPages() - pages; span > 0 {
		start = rng.Intn(span + 1)
	}
	slice := image.Slice(start, pages)
	control := mem.GenerateFile(rng, "control.bin", pages)
	began := d.Host.Engine().Now()

	var ev Evidence
	ev.T0 = d.probe(control, "detect.t0")
	ev.T1 = d.probe(slice, "detect.t1")
	if err := agent.MutateRange(imageAt+start, pages); err != nil {
		return VerdictInconclusive, ev, err
	}
	ev.T2 = d.probe(slice, "detect.t2")
	ev.Elapsed = d.Host.Engine().Now() - began

	return classify(ev), ev, nil
}

// classify turns the two probes into a verdict, fail-safe: ambiguous
// merged fractions (a host whose dedup timing gap is drowned by noise)
// yield inconclusive rather than a guess.
func classify(ev Evidence) Verdict {
	const (
		hi = 0.8
		lo = 0.2
	)
	if ev.T1.MergedFraction < hi {
		return VerdictInconclusive
	}
	switch {
	case ev.T2.MergedFraction >= hi:
		return VerdictNested
	case ev.T2.MergedFraction <= lo:
		return VerdictClean
	default:
		return VerdictInconclusive
	}
}

// probe loads the file into a fresh L0 address space, waits for ksmd, then
// measures per-page write times and releases the space (the detection
// process exits; its pages leave the merge pool).
func (d *DedupDetector) probe(f *mem.File, label string) Probe {
	eng := d.Host.Engine()
	ksmd := d.Host.KSM()
	costs := ksmd.Costs()
	if d.CostOverride != nil {
		costs = *d.CostOverride
	}

	space := mem.NewSpace(label, f.SizeBytes())
	// Load errors are impossible by construction (space sized to file).
	if err := space.LoadFile(f, 0); err != nil {
		panic(err)
	}
	ksmd.Register(space)
	eng.RunFor(d.Wait)

	p := Probe{Times: make([]time.Duration, f.NumPages())}
	merged := 0
	threshold := (costs.RegularWrite + costs.CowBreakWrite) / 2
	for i := 0; i < f.NumPages(); i++ {
		res, err := space.Write(i, f.Pages[i])
		if err != nil {
			panic(err) // in-range by construction
		}
		t := costs.WriteCost(res)
		if d.Noise > 0 {
			t = eng.GaussDuration(t, d.Noise)
		}
		eng.Advance(t)
		p.Times[i] = t
		if t > threshold {
			merged++
		}
	}
	p.MergedFraction = float64(merged) / float64(f.NumPages())
	ksmd.Unregister(space)
	return p
}
