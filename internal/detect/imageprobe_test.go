package detect

import (
	"errors"
	"testing"

	"cloudskulk/internal/mem"
)

func TestImageProbeClean(t *testing.T) {
	h, _, vm := cleanCloud(t, 1)
	img := mem.GenerateFile(h.Engine().RNG(), "vendor-image", 256)
	const at = 3000
	if err := vm.RAM().LoadFile(img, at); err != nil {
		t.Fatal(err)
	}
	d := NewDedupDetector(h)
	d.Pages = 20
	agent := NewGuestAgent(vm, 0) // offset unused by image probe
	verdict, ev, err := d.RunImageProbe(agent, img, at)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != VerdictClean {
		t.Fatalf("verdict = %v", verdict)
	}
	if ev.T1.MergedFraction < 0.9 || ev.T2.MergedFraction > 0.1 {
		t.Fatalf("fractions = %v / %v", ev.T1.MergedFraction, ev.T2.MergedFraction)
	}
	if len(ev.T1.Times) != 20 {
		t.Fatalf("probe pages = %d", len(ev.T1.Times))
	}
}

func TestImageProbeInfected(t *testing.T) {
	h, rk := infectedCloud(t, 2)
	img := mem.GenerateFile(h.Engine().RNG(), "vendor-image", 256)
	const at = 3000
	// The image was in the victim before capture... for this direct unit
	// test, load into the (already nested) victim and mirror into the
	// RITM — the impersonation.
	if err := rk.Victim.RAM().LoadFile(img, at); err != nil {
		t.Fatal(err)
	}
	if err := rk.MirrorRange(at, img.NumPages()); err != nil {
		t.Fatal(err)
	}
	d := NewDedupDetector(h)
	d.Pages = 20
	agent := NewGuestAgent(rk.Victim, 0)
	verdict, ev, err := d.RunImageProbe(agent, img, at)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != VerdictNested {
		t.Fatalf("verdict = %v (t2 merged %.0f%%)", verdict, ev.T2.MergedFraction*100)
	}
}

func TestImageProbeClampsPages(t *testing.T) {
	h, _, vm := cleanCloud(t, 3)
	img := mem.GenerateFile(h.Engine().RNG(), "tiny-image", 5)
	if err := vm.RAM().LoadFile(img, 3000); err != nil {
		t.Fatal(err)
	}
	d := NewDedupDetector(h)
	d.Pages = 100 // larger than the image
	agent := NewGuestAgent(vm, 0)
	verdict, ev, err := d.RunImageProbe(agent, img, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.T1.Times) != 5 {
		t.Fatalf("clamped probe = %d pages", len(ev.T1.Times))
	}
	if verdict != VerdictClean {
		t.Fatalf("verdict = %v", verdict)
	}
}

func TestImageProbeRequiresKSM(t *testing.T) {
	h, _, vm := cleanCloud(t, 1)
	h.KSM().Stop()
	img := mem.GenerateFile(h.Engine().RNG(), "img", 8)
	d := NewDedupDetector(h)
	if _, _, err := d.RunImageProbe(NewGuestAgent(vm, 0), img, 0); !errors.Is(err, ErrKSMOff) {
		t.Fatalf("err = %v", err)
	}
}

func TestMutateRange(t *testing.T) {
	_, _, vm := cleanCloud(t, 1)
	agent := NewGuestAgent(vm, 0)
	before := vm.RAM().MustRead(100)
	if err := agent.MutateRange(100, 3); err != nil {
		t.Fatal(err)
	}
	if vm.RAM().MustRead(100) == before {
		t.Fatal("page unchanged")
	}
	if vm.RAM().MustRead(100) != mem.MutateContent(before) {
		t.Fatal("mutation not the deterministic variant")
	}
	if err := agent.MutateRange(1<<30, 1); err == nil {
		t.Fatal("out-of-range mutate succeeded")
	}
}
