package detect

import (
	"errors"
	"testing"
	"time"

	"cloudskulk/internal/core"
	"cloudskulk/internal/kvm"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/vnet"
)

// agentOffset places the probe file well away from the kernel region.
const agentOffset = 2048

func mustKnown(t *testing.T, db *FingerprintDB, name string) uint64 {
	t.Helper()
	fp, ok := db.Known(name)
	if !ok {
		t.Fatalf("no baseline for %q", name)
	}
	return fp
}

// cleanCloud builds a host with a victim guest and KSM scanning.
func cleanCloud(t *testing.T, seed int64) (*kvm.Host, *migrate.Engine, *qemu.VM) {
	t.Helper()
	eng := sim.NewEngine(seed)
	network := vnet.New(eng)
	h, err := kvm.NewHost(eng, network, "host")
	if err != nil {
		t.Fatal(err)
	}
	me := migrate.NewEngine(eng, network)
	h.SetMigrationService(me)
	cfg := qemu.DefaultConfig("guest0")
	cfg.MemoryMB = 32
	cfg.MonitorPort = 5555
	cfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: 2222, GuestPort: 22}}
	vm, err := h.Hypervisor().CreateVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Hypervisor().Launch("guest0"); err != nil {
		t.Fatal(err)
	}
	h.KSM().Start()
	return h, me, vm
}

// infectedCloud builds a host where CloudSkulk has already captured the
// victim.
func infectedCloud(t *testing.T, seed int64) (*kvm.Host, *core.Rootkit) {
	t.Helper()
	h, me, _ := cleanCloud(t, seed)
	icfg := core.DefaultInstallConfig()
	icfg.TargetName = "guest0"
	rk, err := core.Installer{Host: h, Migration: me}.Install(icfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, rk
}

func TestVerdictString(t *testing.T) {
	if VerdictClean.String() != "clean" ||
		VerdictNested.String() != "nested-vm rootkit detected" ||
		VerdictInconclusive.String() != "inconclusive" {
		t.Fatal("verdict names")
	}
	if Verdict(42).String() != "verdict(42)" {
		t.Fatal("unknown verdict name")
	}
}

func TestDedupDetectorCleanScenario(t *testing.T) {
	h, _, vm := cleanCloud(t, 1)
	d := NewDedupDetector(h)
	agent := NewGuestAgent(vm, agentOffset)
	verdict, ev, err := d.Run(agent)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != VerdictClean {
		t.Fatalf("verdict = %v (t0=%v t1=%v t2=%v)", verdict, ev.T0.Mean(), ev.T1.Mean(), ev.T2.Mean())
	}
	// Fig. 5 shape: t1 >> t2 ~= t0.
	if ev.T1.Mean() < 5*ev.T0.Mean() {
		t.Fatalf("t1 (%v) not much larger than t0 (%v)", ev.T1.Mean(), ev.T0.Mean())
	}
	r := float64(ev.T2.Mean()) / float64(ev.T0.Mean())
	if r < 0.5 || r > 2 {
		t.Fatalf("t2/t0 = %.2f, want ~1", r)
	}
	if ev.T1.MergedFraction < 0.9 || ev.T2.MergedFraction > 0.1 || ev.T0.MergedFraction > 0.1 {
		t.Fatalf("merged fractions = %v/%v/%v", ev.T0.MergedFraction, ev.T1.MergedFraction, ev.T2.MergedFraction)
	}
	if len(ev.T1.Times) != 100 {
		t.Fatalf("probe pages = %d", len(ev.T1.Times))
	}
	// One pass costs three merge windows plus the measurement writes.
	if ev.Elapsed < 3*d.Wait || ev.Elapsed > 4*d.Wait {
		t.Fatalf("protocol elapsed = %v for wait %v", ev.Elapsed, d.Wait)
	}
}

func TestDedupDetectorInfectedScenario(t *testing.T) {
	h, rk := infectedCloud(t, 1)
	d := NewDedupDetector(h)
	// The user runs the agent in "their VM" — now the nested one. The
	// rootkit's position on the push path mirrors files into the RITM.
	agent := NewGuestAgent(rk.Victim, agentOffset)
	agent.OnLoad = rk.InterceptFilePushes(core.KernelPages + 4096)
	verdict, ev, err := d.Run(agent)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != VerdictNested {
		t.Fatalf("verdict = %v (t0=%v t1=%v t2=%v)", verdict, ev.T0.Mean(), ev.T1.Mean(), ev.T2.Mean())
	}
	// Fig. 6 shape: t1 ~= t2 >> t0.
	if ev.T2.Mean() < 5*ev.T0.Mean() {
		t.Fatalf("t2 (%v) not much larger than t0 (%v)", ev.T2.Mean(), ev.T0.Mean())
	}
	r := float64(ev.T2.Mean()) / float64(ev.T1.Mean())
	if r < 0.7 || r > 1.4 {
		t.Fatalf("t2/t1 = %.2f, want ~1", r)
	}
}

func TestDedupDetectorWithoutMirroringStillDetectsNothingOdd(t *testing.T) {
	// If the attacker fails to impersonate (no mirrored file), t2 drops
	// to baseline and the detector reads clean — matching the paper's
	// assumption discussion: detection *relies on* L1 trying to look
	// like L2. The attack is then caught by simpler means (the file
	// push visibly missing from "the guest" the admin inspects).
	h, rk := infectedCloud(t, 1)
	d := NewDedupDetector(h)
	agent := NewGuestAgent(rk.Victim, agentOffset)
	verdict, _, err := d.Run(agent)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != VerdictClean {
		t.Fatalf("verdict = %v", verdict)
	}
}

func TestDedupDetectorRequiresKSM(t *testing.T) {
	h, _, vm := cleanCloud(t, 1)
	h.KSM().Stop()
	d := NewDedupDetector(h)
	if _, _, err := d.Run(NewGuestAgent(vm, agentOffset)); !errors.Is(err, ErrKSMOff) {
		t.Fatalf("err = %v", err)
	}
}

func TestDedupDetectorInconclusiveWhenScanTooSlow(t *testing.T) {
	h, _, vm := cleanCloud(t, 1)
	d := NewDedupDetector(h)
	d.Wait = time.Millisecond // far too short for any merge
	verdict, _, err := d.Run(NewGuestAgent(vm, agentOffset))
	if err != nil {
		t.Fatal(err)
	}
	if verdict != VerdictInconclusive {
		t.Fatalf("verdict = %v", verdict)
	}
}

func TestDedupDetectorSinglePage(t *testing.T) {
	// The paper argues one page suffices.
	h, rk := infectedCloud(t, 3)
	d := NewDedupDetector(h)
	d.Pages = 1
	agent := NewGuestAgent(rk.Victim, agentOffset)
	agent.OnLoad = rk.InterceptFilePushes(core.KernelPages + 4096)
	verdict, ev, err := d.Run(agent)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != VerdictNested {
		t.Fatalf("single-page verdict = %v", verdict)
	}
	if len(ev.T1.Times) != 1 {
		t.Fatalf("probe pages = %d", len(ev.T1.Times))
	}
}

func TestGuestAgentErrors(t *testing.T) {
	_, _, vm := cleanCloud(t, 1)
	agent := NewGuestAgent(vm, agentOffset)
	if err := agent.MutateFile(); !errors.Is(err, ErrNoAgent) {
		t.Fatalf("err = %v", err)
	}
	if agent.VM() != vm {
		t.Fatal("agent VM accessor")
	}
	agent.Rebind(nil)
	if agent.VM() != nil {
		t.Fatal("rebind failed")
	}
}

func TestProbeHelpers(t *testing.T) {
	p := Probe{Times: []time.Duration{time.Microsecond, 3 * time.Microsecond}}
	if p.Mean() != 2*time.Microsecond {
		t.Fatalf("mean = %v", p.Mean())
	}
	series := p.MicrosSeries()
	if len(series) != 2 || series[0] != 1 || series[1] != 3 {
		t.Fatalf("series = %v", series)
	}
	if (Probe{}).Mean() != 0 {
		t.Fatal("empty probe mean")
	}
}

func TestVMCSScannerFindsHardwareNesting(t *testing.T) {
	h, rk := infectedCloud(t, 1)
	findings := VMCSScanner{Host: h}.Scan()
	if len(findings) == 0 {
		t.Fatal("no VMCS findings on an infected host")
	}
	for _, f := range findings {
		if f.VMName != rk.RITM.Name() {
			t.Fatalf("VMCS in unexpected VM %q", f.VMName)
		}
	}
}

func TestVMCSScannerCleanHost(t *testing.T) {
	h, _, _ := cleanCloud(t, 1)
	if got := (VMCSScanner{Host: h}.Scan()); len(got) != 0 {
		t.Fatalf("clean host findings = %v", got)
	}
}

func TestVMCSScannerEvadedBySoftwareMMU(t *testing.T) {
	h, me, _ := cleanCloud(t, 2)
	icfg := core.DefaultInstallConfig()
	icfg.TargetName = "guest0"
	icfg.HideVMCS = true
	if _, err := (core.Installer{Host: h, Migration: me}).Install(icfg); err != nil {
		t.Fatal(err)
	}
	if got := (VMCSScanner{Host: h}.Scan()); len(got) != 0 {
		t.Fatalf("software-MMU nesting detected anyway: %v", got)
	}
}

func TestFingerprintDetectorCatchesNaiveAttack(t *testing.T) {
	h, me, vm := cleanCloud(t, 1)
	db := NewFingerprintDB()
	db.Baseline(vm)
	if ok, err := db.Check(vm); err != nil || !ok {
		t.Fatalf("baseline self-check: %v %v", ok, err)
	}
	icfg := core.DefaultInstallConfig()
	icfg.TargetName = "guest0"
	icfg.Impersonate = false // naive attacker
	rk, err := core.Installer{Host: h, Migration: me}.Install(icfg)
	if err != nil {
		t.Fatal(err)
	}
	// The admin's "guest0" handle is now the RITM process; re-baseline
	// lookup by name happens against the VM the L0 hypervisor shows.
	bad := db.CheckAll(h)
	_ = rk
	if len(bad) != 0 {
		t.Fatalf("CheckAll by name = %v (guest0 gone from L0)", bad)
	}
	// Direct check of the impostor: the admin fingerprints the VM
	// backing the original PID — the RITM — against guest0's baseline.
	// Simulate by checking the RITM RAM against the stored fingerprint.
	ritmFP := db.FingerprintOf(rk.RITM)
	if ritmFP == mustKnown(t, db, "guest0") {
		t.Fatal("naive attack fingerprint matches baseline")
	}
}

func TestFingerprintDetectorEvadedByImpersonation(t *testing.T) {
	h, me, vm := cleanCloud(t, 1)
	db := NewFingerprintDB()
	db.Baseline(vm)
	icfg := core.DefaultInstallConfig()
	icfg.TargetName = "guest0"
	icfg.Impersonate = true
	rk, err := core.Installer{Host: h, Migration: me}.Install(icfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.FingerprintOf(rk.RITM); got != mustKnown(t, db, "guest0") {
		t.Fatal("impersonated fingerprint does not match baseline")
	}
}

func TestFingerprintNoBaseline(t *testing.T) {
	_, _, vm := cleanCloud(t, 1)
	db := NewFingerprintDB()
	if _, err := db.Check(vm); err == nil {
		t.Fatal("check without baseline succeeded")
	}
}
