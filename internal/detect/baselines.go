package detect

import (
	"fmt"
	"sort"

	"cloudskulk/internal/kvm"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/qemu"
)

// This file implements the two alternative detection approaches the
// paper's §VI-E discusses, both of which CloudSkulk can evade — which is
// the paper's argument for the dedup-timing approach.

// VMCSFinding is one VMCS signature located in a guest's memory,
// indicating that guest runs a hardware-assisted hypervisor.
type VMCSFinding struct {
	VMName string
	Page   int
}

// VMCSScanner is the Graziano-style memory-forensic scan: walk every L0
// guest's physical memory looking for VMCS revision-identifier
// signatures. It fails when the nested hypervisor does not use VT-x
// (software MMU) — the blind spot the paper points out.
type VMCSScanner struct {
	Host *kvm.Host
}

// Scan examines all L0 guests and returns any VMCS findings, sorted by VM
// name then page.
func (s VMCSScanner) Scan() []VMCSFinding {
	var out []VMCSFinding
	for _, vm := range s.Host.Hypervisor().VMs() {
		ram := vm.RAM()
		for p := 0; p < ram.NumPages(); p++ {
			if mem.IsVMCS(ram.MustRead(p)) {
				out = append(out, VMCSFinding{VMName: vm.Name(), Page: p})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VMName != out[j].VMName {
			return out[i].VMName < out[j].VMName
		}
		return out[i].Page < out[j].Page
	})
	return out
}

// FingerprintDB is the VMI-fingerprint baseline: record each guest's
// kernel-image fingerprint at a known-good time, then compare later. An
// attacker who mirrors the victim's kernel into the RITM produces a
// matching fingerprint, which is why the paper rejects this approach.
type FingerprintDB struct {
	// KernelPages is the size of the fingerprinted region.
	KernelPages int
	known       map[string]uint64
}

// NewFingerprintDB returns an empty database using the default kernel
// region size.
func NewFingerprintDB() *FingerprintDB {
	return &FingerprintDB{
		KernelPages: 256,
		known:       make(map[string]uint64),
	}
}

// Baseline records the fingerprint of the named guest as known-good.
func (db *FingerprintDB) Baseline(vm *qemu.VM) {
	db.known[vm.Name()] = db.FingerprintOf(vm)
}

// FingerprintOf computes a guest's current kernel-region fingerprint.
func (db *FingerprintDB) FingerprintOf(vm *qemu.VM) uint64 {
	return mem.Fingerprint(vm.RAM(), db.KernelPages)
}

// Known returns the stored baseline for a guest name, if any.
func (db *FingerprintDB) Known(name string) (uint64, bool) {
	fp, ok := db.known[name]
	return fp, ok
}

// Check compares a guest's current fingerprint against its baseline.
// It returns an error if no baseline exists, and ok=false on mismatch.
func (db *FingerprintDB) Check(vm *qemu.VM) (bool, error) {
	want, ok := db.known[vm.Name()]
	if !ok {
		return false, fmt.Errorf("detect: no fingerprint baseline for %q", vm.Name())
	}
	return mem.Fingerprint(vm.RAM(), db.KernelPages) == want, nil
}

// CheckAll verifies every L0 guest with a baseline and returns the names
// that mismatch.
func (db *FingerprintDB) CheckAll(host *kvm.Host) []string {
	var bad []string
	for _, vm := range host.Hypervisor().VMs() {
		if _, ok := db.known[vm.Name()]; !ok {
			continue
		}
		if match, err := db.Check(vm); err == nil && !match {
			bad = append(bad, vm.Name())
		}
	}
	sort.Strings(bad)
	return bad
}
