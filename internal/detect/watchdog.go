package detect

import (
	"time"

	"cloudskulk/internal/sim"
)

// Alert is one watchdog finding.
type Alert struct {
	At      time.Duration
	Guest   string
	Verdict Verdict
}

// AgentFactory returns a fresh in-guest agent for a named tenant at scan
// time. It is a factory rather than a fixed agent because the VM actually
// serving a tenant can change under the operator's feet — that is the
// attack.
type AgentFactory func(guest string) (*GuestAgent, error)

// Watchdog runs the dedup-timing protocol against a set of tenants on a
// fixed period — the paper's detector deployed as a continuous control
// rather than a one-shot audit.
type Watchdog struct {
	detector *DedupDetector
	factory  AgentFactory
	guests   []string
	ticker   *sim.Ticker

	alerts []Alert
	scans  uint64
	errs   []error
}

// NewWatchdog builds a stopped watchdog over the given tenants.
func NewWatchdog(d *DedupDetector, guests []string, factory AgentFactory) *Watchdog {
	return &Watchdog{
		detector: d,
		factory:  factory,
		guests:   append([]string(nil), guests...),
	}
}

// Start begins periodic scanning with the given period. Each firing scans
// every tenant once (sequentially, in virtual time).
func (w *Watchdog) Start(period time.Duration) {
	if w.ticker != nil && !w.ticker.Stopped() {
		return
	}
	eng := w.detector.Host.Engine()
	w.ticker = sim.NewTicker(eng, period, "detect.watchdog", func() {
		w.ScanOnce()
	})
}

// Stop halts scanning.
func (w *Watchdog) Stop() {
	if w.ticker != nil {
		w.ticker.Stop()
	}
}

// ScanOnce runs one pass over all tenants immediately.
func (w *Watchdog) ScanOnce() {
	eng := w.detector.Host.Engine()
	for _, g := range w.guests {
		agent, err := w.factory(g)
		if err != nil {
			w.errs = append(w.errs, err)
			continue
		}
		verdict, _, err := w.detector.Run(agent)
		if err != nil {
			w.errs = append(w.errs, err)
			continue
		}
		w.scans++
		if verdict == VerdictNested {
			w.alerts = append(w.alerts, Alert{
				At:      eng.Now(),
				Guest:   g,
				Verdict: verdict,
			})
		}
	}
}

// Alerts returns all findings so far, oldest first.
func (w *Watchdog) Alerts() []Alert {
	return append([]Alert(nil), w.alerts...)
}

// Scans returns how many tenant scans completed.
func (w *Watchdog) Scans() uint64 { return w.scans }

// Errors returns scan failures (e.g. a tenant that was down).
func (w *Watchdog) Errors() []error {
	return append([]error(nil), w.errs...)
}
