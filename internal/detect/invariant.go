package detect

import (
	"time"

	"cloudskulk/internal/mem"
	"cloudskulk/internal/sim"
)

// InvariantDetector is the Hello-rootKitty-style defence: an L0-side audit
// that periodically re-hashes a pinned range of a guest's physical memory —
// the kernel-image pages, which a healthy guest never rewrites — and flags
// the guest when the invariant breaks. Unlike the dedup-timing protocol it
// needs no in-guest agent and no KSM; its blind spot is the converse: an
// attacker who *never touches* the monitored range (a static impersonation)
// sails through, while one who churns it to dodge KSM trips it.
//
// A benign guest does occasionally rewrite monitored pages legitimately
// (relocation at boot, a kernel update). The detector therefore carries the
// same two-consecutive-audits volatility gate the KSM scanner uses: a
// single hash change re-baselines and marks the range suspect; only a
// change on the *next* audit as well — sustained tampering — is a hit.
type InvariantDetector struct {
	eng   *sim.Engine
	space *mem.Space
	from  int
	n     int

	// PerPageCost is the virtual time one audited page costs (an L0-side
	// read + hash step). Every audit advances Pages × PerPageCost — the
	// detector's overhead is explicit, not free.
	PerPageCost time.Duration

	baseline uint64
	suspect  bool // hash differed at the previous audit
	audits   uint64
	hits     uint64
	elapsed  time.Duration
}

// DefaultInvariantPageCost is the per-page audit cost: one cached 4 KiB
// read plus a hash step from the L0 side.
const DefaultInvariantPageCost = 250 * time.Nanosecond

// NewInvariantDetector arms an auditor over pages [from, from+n) of the
// given space (a guest's RAM as L0 sees it), recording the current range
// hash as the invariant baseline. Arming is free: the baseline is taken
// from the provisioning record, not a fresh scan.
func NewInvariantDetector(eng *sim.Engine, s *mem.Space, from, n int) *InvariantDetector {
	return &InvariantDetector{
		eng:         eng,
		space:       s,
		from:        from,
		n:           n,
		PerPageCost: DefaultInvariantPageCost,
		baseline:    s.RangeHash(from, n),
	}
}

// Rebind points subsequent audits at a different space — the admin's view
// of "the guest's RAM" after a migration moved it — keeping the armed
// baseline and gate state. This is what makes the detector meaningful
// against CloudSkulk: the invariant was recorded against the VM the admin
// provisioned, and keeps being enforced against whatever L0 process now
// claims to be that VM.
func (d *InvariantDetector) Rebind(s *mem.Space) { d.space = s }

// Audit runs one hash pass over the monitored range, charging the audit's
// virtual-time cost, and reports whether the invariant-violation gate
// tripped on this pass.
func (d *InvariantDetector) Audit() bool {
	cost := time.Duration(d.n) * d.PerPageCost
	d.eng.Advance(cost)
	d.elapsed += cost
	d.audits++
	h := d.space.RangeHash(d.from, d.n)
	switch {
	case h == d.baseline:
		d.suspect = false
		return false
	case d.suspect:
		// Changed on two consecutive audits: sustained tampering.
		d.baseline = h
		d.hits++
		return true
	default:
		// First change: tolerate (legitimate rewrite), re-baseline, watch.
		d.baseline = h
		d.suspect = true
		return false
	}
}

// Audits returns how many audit passes have run.
func (d *InvariantDetector) Audits() uint64 { return d.audits }

// Hits returns how many audits tripped the gate.
func (d *InvariantDetector) Hits() uint64 { return d.hits }

// Overhead returns the total virtual time the audits have consumed.
func (d *InvariantDetector) Overhead() time.Duration { return d.elapsed }
