package detect

import (
	"errors"
	"testing"
	"time"
)

func TestWatchdogCleanHostStaysQuiet(t *testing.T) {
	h, _, vm := cleanCloud(t, 1)
	d := NewDedupDetector(h)
	d.Pages = 20
	d.Wait = 5 * time.Second
	w := NewWatchdog(d, []string{"guest0"}, func(string) (*GuestAgent, error) {
		return NewGuestAgent(vm, agentOffset), nil
	})
	w.Start(time.Minute)
	w.Start(time.Minute) // idempotent
	h.Engine().RunFor(5 * time.Minute)
	w.Stop()
	if got := w.Alerts(); len(got) != 0 {
		t.Fatalf("alerts on clean host: %v", got)
	}
	if w.Scans() < 4 {
		t.Fatalf("scans = %d", w.Scans())
	}
	if len(w.Errors()) != 0 {
		t.Fatalf("errors = %v", w.Errors())
	}
}

func TestWatchdogAlertsOnInfectedHost(t *testing.T) {
	h, rk := infectedCloud(t, 1)
	d := NewDedupDetector(h)
	d.Pages = 20
	d.Wait = 5 * time.Second
	w := NewWatchdog(d, []string{"guest0"}, func(string) (*GuestAgent, error) {
		agent := NewGuestAgent(rk.Victim, agentOffset)
		agent.OnLoad = rk.InterceptFilePushes(8192)
		return agent, nil
	})
	w.ScanOnce()
	alerts := w.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v", alerts)
	}
	if alerts[0].Guest != "guest0" || alerts[0].Verdict != VerdictNested {
		t.Fatalf("alert = %+v", alerts[0])
	}
}

func TestWatchdogRecordsFactoryErrors(t *testing.T) {
	h, _, _ := cleanCloud(t, 1)
	d := NewDedupDetector(h)
	boom := errors.New("tenant down")
	w := NewWatchdog(d, []string{"gone"}, func(string) (*GuestAgent, error) {
		return nil, boom
	})
	w.ScanOnce()
	if errs := w.Errors(); len(errs) != 1 || !errors.Is(errs[0], boom) {
		t.Fatalf("errors = %v", errs)
	}
	if w.Scans() != 0 {
		t.Fatalf("scans = %d", w.Scans())
	}
}

func TestWatchdogRecordsDetectorErrors(t *testing.T) {
	h, _, vm := cleanCloud(t, 1)
	h.KSM().Stop()
	d := NewDedupDetector(h)
	w := NewWatchdog(d, []string{"guest0"}, func(string) (*GuestAgent, error) {
		return NewGuestAgent(vm, agentOffset), nil
	})
	w.ScanOnce()
	if errs := w.Errors(); len(errs) != 1 || !errors.Is(errs[0], ErrKSMOff) {
		t.Fatalf("errors = %v", errs)
	}
}
