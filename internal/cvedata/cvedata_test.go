package cvedata

import (
	"strings"
	"testing"
)

// TestTotalsMatchPaper checks the Table I bottom row exactly.
func TestTotalsMatchPaper(t *testing.T) {
	want := map[Hypervisor]int{
		VMware:     29,
		VirtualBox: 15,
		Xen:        15,
		HyperV:     14,
		KVMQEMU:    23,
	}
	for hv, n := range want {
		if got := TotalFor(hv); got != n {
			t.Errorf("TotalFor(%s) = %d, paper says %d", hv, got, n)
		}
	}
	if got := Total(); got != 96 {
		t.Fatalf("Total = %d, want 96", got)
	}
}

func TestCellsMatchPaper(t *testing.T) {
	cells := []struct {
		year int
		hv   Hypervisor
		n    int
	}{
		{2015, VMware, 5}, {2015, VirtualBox, 0}, {2015, Xen, 1}, {2015, HyperV, 2}, {2015, KVMQEMU, 5},
		{2016, VMware, 4}, {2016, Xen, 2}, {2016, HyperV, 1}, {2016, KVMQEMU, 3},
		{2017, VMware, 3}, {2017, VirtualBox, 1}, {2017, Xen, 6}, {2017, HyperV, 3}, {2017, KVMQEMU, 6},
		{2018, VMware, 2}, {2018, VirtualBox, 11}, {2018, Xen, 0}, {2018, HyperV, 3}, {2018, KVMQEMU, 2},
		{2019, VMware, 5}, {2019, VirtualBox, 2}, {2019, Xen, 6}, {2019, HyperV, 4}, {2019, KVMQEMU, 5},
		{2020, VMware, 10}, {2020, VirtualBox, 1}, {2020, Xen, 0}, {2020, HyperV, 1}, {2020, KVMQEMU, 2},
	}
	for _, c := range cells {
		if got := Count(c.year, c.hv); got != c.n {
			t.Errorf("Count(%d, %s) = %d, want %d", c.year, c.hv, got, c.n)
		}
	}
}

func TestEntriesConsistent(t *testing.T) {
	entries := Entries()
	if len(entries) != Total() {
		t.Fatalf("entries = %d, total = %d", len(entries), Total())
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if !strings.HasPrefix(e.ID, "CVE-") {
			t.Fatalf("bad id %q", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Year < 2015 || e.Year > 2020 {
			t.Fatalf("bad year %d", e.Year)
		}
	}
	// Sorted by year.
	for i := 1; i < len(entries); i++ {
		if entries[i].Year < entries[i-1].Year {
			t.Fatal("entries not sorted by year")
		}
	}
}

func TestIDsSortedAndCopied(t *testing.T) {
	ids := IDs(2018, VirtualBox)
	if len(ids) != 11 {
		t.Fatalf("ids = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatal("ids not sorted")
		}
	}
	ids[0] = "tampered"
	if IDs(2018, VirtualBox)[0] == "tampered" {
		t.Fatal("IDs returned live slice")
	}
}

func TestCountByYear(t *testing.T) {
	// Paper: majority reported 2015-2020, with 2020 = 14 total.
	if got := CountByYear(2020); got != 14 {
		t.Fatalf("2020 = %d", got)
	}
	sum := 0
	for _, y := range Years() {
		sum += CountByYear(y)
	}
	if sum != 96 {
		t.Fatalf("sum over years = %d", sum)
	}
}

func TestHypervisorsOrder(t *testing.T) {
	hvs := Hypervisors()
	if len(hvs) != 5 || hvs[0] != VMware || hvs[4] != KVMQEMU {
		t.Fatalf("order = %v", hvs)
	}
}
