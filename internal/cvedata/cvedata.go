// Package cvedata carries the paper's Table I: the VM-escape CVE
// inventory (2015-2020) across the five mainstream hypervisors, with the
// query helpers the threat-model discussion uses (counts per year, per
// hypervisor, totals).
package cvedata

import "sort"

// Hypervisor identifies a virtualization platform tracked in Table I.
type Hypervisor string

// The five columns of Table I.
const (
	VMware     Hypervisor = "VMware"
	VirtualBox Hypervisor = "VirtualBox"
	Xen        Hypervisor = "Xen"
	HyperV     Hypervisor = "Hyper-V"
	KVMQEMU    Hypervisor = "KVM/QEMU"
)

// Hypervisors lists the columns in the paper's order.
func Hypervisors() []Hypervisor {
	return []Hypervisor{VMware, VirtualBox, Xen, HyperV, KVMQEMU}
}

// Years lists the rows in the paper's order.
func Years() []int { return []int{2015, 2016, 2017, 2018, 2019, 2020} }

// Entry is one reported VM-escape vulnerability.
type Entry struct {
	ID         string
	Year       int
	Hypervisor Hypervisor
}

// Entries returns the full Table I inventory.
func Entries() []Entry {
	out := make([]Entry, 0, 96)
	for hv, byYear := range _table {
		for year, ids := range byYear {
			for _, id := range ids {
				out = append(out, Entry{ID: id, Year: year, Hypervisor: hv})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Year != out[j].Year {
			return out[i].Year < out[j].Year
		}
		if out[i].Hypervisor != out[j].Hypervisor {
			return out[i].Hypervisor < out[j].Hypervisor
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// IDs returns the CVE identifiers for a (year, hypervisor) cell, sorted.
func IDs(year int, hv Hypervisor) []string {
	ids := append([]string(nil), _table[hv][year]...)
	sort.Strings(ids)
	return ids
}

// Count returns the number of CVEs in a (year, hypervisor) cell.
func Count(year int, hv Hypervisor) int { return len(_table[hv][year]) }

// TotalFor returns a hypervisor's 2015-2020 total (the Table I bottom row).
func TotalFor(hv Hypervisor) int {
	n := 0
	for _, ids := range _table[hv] {
		n += len(ids)
	}
	return n
}

// Total returns the grand total across all hypervisors.
func Total() int {
	n := 0
	for _, hv := range Hypervisors() {
		n += TotalFor(hv)
	}
	return n
}

// CountByYear returns the total per year across hypervisors.
func CountByYear(year int) int {
	n := 0
	for _, hv := range Hypervisors() {
		n += Count(year, hv)
	}
	return n
}

// _table transcribes Table I verbatim.
var _table = map[Hypervisor]map[int][]string{
	VMware: {
		2015: {"CVE-2015-2336", "CVE-2015-2337", "CVE-2015-2338", "CVE-2015-2339", "CVE-2015-2340"},
		2016: {"CVE-2016-7082", "CVE-2016-7083", "CVE-2016-7084", "CVE-2016-7461"},
		2017: {"CVE-2017-4903", "CVE-2017-4934", "CVE-2017-4936"},
		2018: {"CVE-2018-6981", "CVE-2018-6982"},
		2019: {"CVE-2019-0964", "CVE-2019-5049", "CVE-2019-5124", "CVE-2019-5146", "CVE-2019-5147"},
		2020: {"CVE-2020-3962", "CVE-2020-3963", "CVE-2020-3964", "CVE-2020-3965", "CVE-2020-3966",
			"CVE-2020-3967", "CVE-2020-3968", "CVE-2020-3969", "CVE-2020-3970", "CVE-2020-3971"},
	},
	VirtualBox: {
		2017: {"CVE-2017-3538"},
		2018: {"CVE-2018-2676", "CVE-2018-2685", "CVE-2018-2686", "CVE-2018-2687", "CVE-2018-2688",
			"CVE-2018-2689", "CVE-2018-2690", "CVE-2018-2693", "CVE-2018-2694", "CVE-2018-2698",
			"CVE-2018-2844"},
		2019: {"CVE-2019-2723", "CVE-2019-3028"},
		2020: {"CVE-2020-2929"},
	},
	Xen: {
		2015: {"CVE-2015-7835"},
		2016: {"CVE-2016-6258", "CVE-2016-7092"},
		2017: {"CVE-2017-8903", "CVE-2017-8904", "CVE-2017-8905", "CVE-2017-10920",
			"CVE-2017-10921", "CVE-2017-17566"},
		2019: {"CVE-2019-18420", "CVE-2019-18421", "CVE-2019-18422", "CVE-2019-18423",
			"CVE-2019-18424", "CVE-2019-18425"},
	},
	HyperV: {
		2015: {"CVE-2015-2361", "CVE-2015-2362"},
		2016: {"CVE-2016-0088"},
		2017: {"CVE-2017-0075", "CVE-2017-0109", "CVE-2017-8664"},
		2018: {"CVE-2018-8439", "CVE-2018-8489", "CVE-2018-8490"},
		2019: {"CVE-2019-0620", "CVE-2019-0709", "CVE-2019-0722", "CVE-2019-0887"},
		2020: {"CVE-2020-0910"},
	},
	KVMQEMU: {
		2015: {"CVE-2015-3209", "CVE-2015-3456", "CVE-2015-5165", "CVE-2015-7504", "CVE-2015-5154"},
		2016: {"CVE-2016-3710", "CVE-2016-4440", "CVE-2016-9603"},
		2017: {"CVE-2017-2615", "CVE-2017-2620", "CVE-2017-2630", "CVE-2017-5931",
			"CVE-2017-5667", "CVE-2017-14167"},
		2018: {"CVE-2018-7550", "CVE-2018-16847"},
		2019: {"CVE-2019-6778", "CVE-2019-7221", "CVE-2019-14835", "CVE-2019-14378",
			"CVE-2019-18389"},
		2020: {"CVE-2020-1711", "CVE-2020-14364"},
	},
}
