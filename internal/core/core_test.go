package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/kvm"
	"cloudskulk/internal/mem"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/vnet"
)

// testCloud is a populated host: a victim VM with SSH and monitor ports,
// plus an unrelated co-tenant VM.
type testCloud struct {
	eng    *sim.Engine
	net    *vnet.Network
	host   *kvm.Host
	me     *migrate.Engine
	victim *qemu.VM
}

func newTestCloud(t *testing.T, seed int64) *testCloud {
	t.Helper()
	eng := sim.NewEngine(seed)
	network := vnet.New(eng)
	h, err := kvm.NewHost(eng, network, "host")
	if err != nil {
		t.Fatal(err)
	}
	me := migrate.NewEngine(eng, network)
	h.SetMigrationService(me)

	victimCfg := qemu.DefaultConfig("guest0")
	victimCfg.MemoryMB = 32
	victimCfg.MonitorPort = 5555
	victimCfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: 2222, GuestPort: 22}}
	victim, err := h.Hypervisor().CreateVM(victimCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Hypervisor().Launch("guest0"); err != nil {
		t.Fatal(err)
	}

	coCfg := qemu.DefaultConfig("guestM")
	coCfg.MemoryMB = 16
	if _, err := h.Hypervisor().CreateVM(coCfg); err != nil {
		t.Fatal(err)
	}
	if err := h.Hypervisor().Launch("guestM"); err != nil {
		t.Fatal(err)
	}
	return &testCloud{eng: eng, net: network, host: h, me: me, victim: victim}
}

func install(t *testing.T, tc *testCloud, cfg InstallConfig) *Rootkit {
	t.Helper()
	rk, err := Installer{Host: tc.host, Migration: tc.me}.Install(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rk
}

func defaultTargeted() InstallConfig {
	cfg := DefaultInstallConfig()
	cfg.TargetName = "guest0"
	return cfg
}

func TestReconFindsTargetViaPS(t *testing.T) {
	tc := newTestCloud(t, 1)
	cfg, method, err := Recon{Host: tc.host}.FindTarget("guestX")
	if err != nil {
		t.Fatal(err)
	}
	if method != ReconPS {
		t.Fatalf("method = %v", method)
	}
	// ps finds one of the two guests; both are valid targets.
	if cfg.Name != "guest0" && cfg.Name != "guestM" {
		t.Fatalf("target = %q", cfg.Name)
	}
}

func TestReconFallsBackToHistory(t *testing.T) {
	tc := newTestCloud(t, 1)
	// Root hides the process table entries (e.g. the VMs were started by
	// a supervisor whose children are masked): kill the PS view by
	// renaming commands, leaving history intact.
	for _, p := range tc.host.OS().PS() {
		p.Command = "[masked]"
	}
	cfg, method, err := Recon{Host: tc.host}.FindTarget()
	if err != nil {
		t.Fatal(err)
	}
	if method != ReconHistory {
		t.Fatalf("method = %v", method)
	}
	if !strings.HasPrefix(cfg.Name, "guest") {
		t.Fatalf("target = %q", cfg.Name)
	}
}

func TestReconExcludesAndSkipsIncoming(t *testing.T) {
	tc := newTestCloud(t, 1)
	_, _, err := Recon{Host: tc.host}.FindTarget("guest0", "guestM")
	if !errors.Is(err, ErrNoTarget) {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigViaMonitor(t *testing.T) {
	tc := newTestCloud(t, 1)
	got, err := Recon{Host: tc.host}.ConfigViaMonitor(5555)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "guest0" {
		t.Fatalf("name = %q", got.Name)
	}
	if got.MemoryMB != 32 {
		t.Fatalf("memory = %d", got.MemoryMB)
	}
	if len(got.Drives) != 1 || got.Drives[0].File != "guest0.qcow2" || got.Drives[0].Format != "qcow2" {
		t.Fatalf("drives = %+v", got.Drives)
	}
	if len(got.NetDevs) != 1 || got.NetDevs[0].Model != "virtio-net-pci" {
		t.Fatalf("netdevs = %+v", got.NetDevs)
	}
	if len(got.NetDevs[0].HostFwds) != 1 || got.NetDevs[0].HostFwds[0] != (qemu.FwdRule{HostPort: 2222, GuestPort: 22}) {
		t.Fatalf("fwds = %+v", got.NetDevs[0].HostFwds)
	}
	// The monitor-derived config is a valid migration twin.
	if err := tc.victim.Config().MatchesForMigration(got); err != nil {
		t.Fatalf("monitor recon not migration-compatible: %v", err)
	}
	if _, err := (Recon{Host: tc.host}).ConfigViaMonitor(9999); err == nil {
		t.Fatal("bogus port accepted")
	}
}

func TestInstallEndToEnd(t *testing.T) {
	tc := newTestCloud(t, 1)
	before := tc.victim.RAM().Snapshot()
	origPID := tc.victim.PID()

	rk := install(t, tc, defaultTargeted())
	rep := rk.Report

	if rep.TargetName != "guest0" || rep.ReconMethod != ReconPS {
		t.Fatalf("report = %+v", rep)
	}
	// The victim now runs nested at L2 with its memory intact.
	if rk.Victim.Level() != cpu.L2 {
		t.Fatalf("victim level = %v", rk.Victim.Level())
	}
	if !rk.Victim.Running() {
		t.Fatalf("victim state = %v", rk.Victim.State())
	}
	after := rk.Victim.RAM().Snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("victim page %d changed across the attack", i)
		}
	}
	// The victim keeps its name, so the admin sees "guest0".
	if rk.Victim.Name() != "guest0" {
		t.Fatalf("nested name = %q", rk.Victim.Name())
	}
	// The original source is gone from the L0 hypervisor.
	if _, ok := tc.host.Hypervisor().VM("guest0"); ok {
		t.Fatal("source VM still present on L0")
	}
	// PID and command line takeover.
	if !rep.PIDPreserved {
		t.Fatal("PID not preserved")
	}
	proc, ok := tc.host.OS().Process(origPID)
	if !ok {
		t.Fatal("original PID vanished")
	}
	if !strings.Contains(proc.Command, "-name guest0") {
		t.Fatalf("command line not spoofed: %q", proc.Command)
	}
	if rk.RITM.PID() != origPID {
		t.Fatalf("ritm pid = %d, want %d", rk.RITM.PID(), origPID)
	}
	// Migration result is recorded and sane.
	if !rep.Migration.Converged || rep.Migration.TotalTime <= 0 {
		t.Fatalf("migration = %+v", rep.Migration)
	}
	if rep.TotalTime < rep.Migration.TotalTime {
		t.Fatal("total install time less than migration time")
	}
	if len(rep.Steps) != 5 {
		t.Fatalf("steps = %v", rep.Steps)
	}
}

func TestInstallScrubsAttackerHistory(t *testing.T) {
	tc := newTestCloud(t, 1)
	install(t, tc, defaultTargeted())
	// The attacker's own launch commands are gone; the victim's
	// original line remains (its absence would itself be a tell).
	if got := tc.host.OS().HistoryMatching("guestX"); len(got) != 0 {
		t.Fatalf("attacker history remains: %v", got)
	}
	if got := tc.host.OS().HistoryMatching("-name guest0"); len(got) == 0 {
		t.Fatal("victim's original history line removed")
	}
}

func TestVictimReachableThroughRITM(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())

	if err := tc.net.AddEndpoint("client"); err != nil {
		t.Fatal(err)
	}
	var got *vnet.Packet
	if err := tc.net.Listen(vnet.Addr{Endpoint: rk.Victim.Endpoint(), Port: 22},
		func(p *vnet.Packet) { got = p }); err != nil {
		t.Fatal(err)
	}
	// The victim's owner connects exactly as before the attack.
	pkt := &vnet.Packet{
		From:    vnet.Addr{Endpoint: "client", Port: 50000},
		To:      vnet.Addr{Endpoint: "host", Port: 2222},
		Payload: []byte("ssh handshake"),
	}
	if err := tc.net.Send(pkt); err != nil {
		t.Fatal(err)
	}
	tc.eng.Run()
	if got == nil {
		t.Fatal("ssh packet not delivered to captured victim")
	}
	// And it traversed the rootkit.
	route := strings.Join(got.Route, ",")
	if !strings.Contains(route, rk.RITM.Endpoint()) {
		t.Fatalf("route %v does not include the RITM", got.Route)
	}
}

func TestMonitorImpersonation(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	// The admin telnets to the same monitor port and sees the same name.
	got, err := Recon{Host: tc.host}.ConfigViaMonitor(5555)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "guest0" {
		t.Fatalf("post-attack monitor name = %q", got.Name)
	}
	if got.MemoryMB != 32 {
		t.Fatalf("post-attack memory = %d", got.MemoryMB)
	}
	_ = rk
}

func TestSnifferCapturesVictimTraffic(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	sniffer := NewSniffer()
	if err := rk.AttachTap(sniffer); err != nil {
		t.Fatal(err)
	}
	if err := tc.net.AddEndpoint("client"); err != nil {
		t.Fatal(err)
	}
	if err := tc.net.Listen(vnet.Addr{Endpoint: rk.Victim.Endpoint(), Port: 22},
		func(*vnet.Packet) {}); err != nil {
		t.Fatal(err)
	}
	secrets := []string{"user: alice", "password: hunter2"}
	for _, s := range secrets {
		pkt := &vnet.Packet{
			From:    vnet.Addr{Endpoint: "client", Port: 50000},
			To:      vnet.Addr{Endpoint: "host", Port: 2222},
			Payload: []byte(s),
		}
		if err := tc.net.Send(pkt); err != nil {
			t.Fatal(err)
		}
	}
	tc.eng.Run()
	caught := sniffer.PayloadsTo(22)
	if len(caught) != 2 {
		t.Fatalf("captured %d payloads", len(caught))
	}
	if string(caught[1]) != "password: hunter2" {
		t.Fatalf("keystroke log = %q", caught[1])
	}
	if len(sniffer.Packets()) != 2 {
		t.Fatalf("packets = %d", len(sniffer.Packets()))
	}
}

func TestSnifferCapturesStreamSessions(t *testing.T) {
	// The same capture works when the victim's owner uses a proper
	// stream connection rather than raw packets: the sniffer unframes
	// data segments and skips control traffic.
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	sniffer := NewSniffer()
	if err := rk.AttachTap(sniffer); err != nil {
		t.Fatal(err)
	}
	if err := tc.net.AddEndpoint("laptop"); err != nil {
		t.Fatal(err)
	}
	l, err := tc.net.ListenStream(vnet.Addr{Endpoint: rk.Victim.Endpoint(), Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tc.net.DialStream(
		vnet.Addr{Endpoint: "laptop", Port: 50022},
		vnet.Addr{Endpoint: "host", Port: 2222})
	if err != nil {
		t.Fatal(err)
	}
	tc.eng.Run()
	srv, ok := l.Accept()
	if !ok {
		t.Fatal("stream did not reach the captured victim")
	}
	if err := conn.Write([]byte("password: hunter2")); err != nil {
		t.Fatal(err)
	}
	tc.eng.Run()
	if got := srv.Recv(); string(got) != "password: hunter2" {
		t.Fatalf("victim got %q", got)
	}
	caught := sniffer.PayloadsTo(22)
	if len(caught) != 1 || string(caught[0]) != "password: hunter2" {
		t.Fatalf("sniffer log = %q", caught)
	}
}

func TestActiveFilterDropsAndTampers(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	filter := NewActiveFilter(
		FilterRule{Port: 22, Match: []byte("DELETE"), Action: ActionDrop},
	)
	filter.AddRule(FilterRule{Port: 22, Match: []byte("balance=100"), Action: ActionReplace, Replace: []byte("balance=0")})
	if err := rk.AttachTap(filter); err != nil {
		t.Fatal(err)
	}
	if err := tc.net.AddEndpoint("client"); err != nil {
		t.Fatal(err)
	}
	var delivered []*vnet.Packet
	if err := tc.net.Listen(vnet.Addr{Endpoint: rk.Victim.Endpoint(), Port: 22},
		func(p *vnet.Packet) { delivered = append(delivered, p) }); err != nil {
		t.Fatal(err)
	}
	send := func(payload string) error {
		return tc.net.Send(&vnet.Packet{
			From:    vnet.Addr{Endpoint: "client", Port: 50000},
			To:      vnet.Addr{Endpoint: "host", Port: 2222},
			Payload: []byte(payload),
		})
	}
	if err := send("DELETE important-mail"); !errors.Is(err, vnet.ErrDropped) {
		t.Fatalf("drop err = %v", err)
	}
	if err := send("account balance=100 USD"); err != nil {
		t.Fatal(err)
	}
	tc.eng.Run()
	if len(delivered) != 1 {
		t.Fatalf("delivered = %d", len(delivered))
	}
	if string(delivered[0].Payload) != "account balance=0 USD" {
		t.Fatalf("tampered payload = %q", delivered[0].Payload)
	}
	dropped, modified := filter.Stats()
	if dropped != 1 || modified != 1 {
		t.Fatalf("stats = %d/%d", dropped, modified)
	}
	rk.DetachTaps()
	if err := send("DELETE now passes"); err != nil {
		t.Fatal(err)
	}
}

func TestVMIFindsSecretsInVictim(t *testing.T) {
	tc := newTestCloud(t, 1)
	// The victim holds a sensitive file before the attack.
	secret := mem.GenerateFile(tc.eng.RNG(), "customer-db", 16)
	if err := tc.victim.RAM().LoadFile(secret, 1000); err != nil {
		t.Fatal(err)
	}
	rk := install(t, tc, defaultTargeted())
	vmi := rk.VictimVMI()
	at, found := vmi.FindFile(secret)
	if !found {
		t.Fatal("VMI did not find the migrated secret file")
	}
	if at != 1000 {
		t.Fatalf("file found at %d, want 1000", at)
	}
	pages, err := vmi.ReadPages(1000, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range pages {
		if c != secret.Pages[i] {
			t.Fatalf("VMI page %d mismatch", i)
		}
	}
	if _, err := vmi.ReadPages(1<<30, 1); err == nil {
		t.Fatal("out-of-range VMI read succeeded")
	}
	if _, found := vmi.FindFile(&mem.File{}); found {
		t.Fatal("empty file found")
	}
}

func TestMirrorKernelMatchesFingerprint(t *testing.T) {
	tc := newTestCloud(t, 1)
	wantFP := mem.Fingerprint(tc.victim.RAM(), KernelPages)
	rk := install(t, tc, defaultTargeted())
	if got := rk.VictimVMI().OSFingerprint(); got != wantFP {
		t.Fatalf("victim fingerprint changed: %x vs %x", got, wantFP)
	}
	// Impersonation: the RITM's kernel region now matches the victim's.
	if got := mem.Fingerprint(rk.RITM.RAM(), KernelPages); got != wantFP {
		t.Fatalf("ritm fingerprint %x != victim %x", got, wantFP)
	}
}

func TestInstallWithoutImpersonation(t *testing.T) {
	tc := newTestCloud(t, 1)
	cfg := defaultTargeted()
	cfg.Impersonate = false
	wantFP := mem.Fingerprint(tc.victim.RAM(), KernelPages)
	rk := install(t, tc, cfg)
	if got := mem.Fingerprint(rk.RITM.RAM(), KernelPages); got == wantFP {
		t.Fatal("fingerprints match without impersonation (collision?)")
	}
}

func TestVMCSHiding(t *testing.T) {
	hasVMCS := func(rk *Rootkit) bool {
		ram := rk.RITM.RAM()
		for p := 0; p < ram.NumPages(); p++ {
			if mem.IsVMCS(ram.MustRead(p)) {
				return true
			}
		}
		return false
	}
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	if !hasVMCS(rk) {
		t.Fatal("hardware-assisted nesting left no VMCS signature")
	}
	tc2 := newTestCloud(t, 2)
	cfg := defaultTargeted()
	cfg.HideVMCS = true
	rk2 := install(t, tc2, cfg)
	if hasVMCS(rk2) {
		t.Fatal("software-MMU nesting left a VMCS signature")
	}
}

func TestLaunchParasite(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	parasite, err := rk.LaunchParasite("spambot", 8)
	if err != nil {
		t.Fatal(err)
	}
	if !parasite.Running() || parasite.Level() != cpu.L2 {
		t.Fatalf("parasite state/level = %v/%v", parasite.State(), parasite.Level())
	}
	// Victim and parasite run side by side on the inner hypervisor.
	if len(rk.InnerHV.VMs()) != 2 {
		t.Fatalf("inner VMs = %d", len(rk.InnerHV.VMs()))
	}
}

func TestInstallTimingDominatedByMigration(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	rep := rk.Report
	// Paper: installation time is dominated by the nested live
	// migration (plus our modelled boot times for the two new VMs).
	var boots time.Duration
	for _, s := range rep.Steps {
		if s.Name == "launch ritm" || s.Name == "launch nested destination" {
			boots += s.Took
		}
	}
	migPlusBoot := rep.Migration.TotalTime + boots
	if ratio := float64(migPlusBoot) / float64(rep.TotalTime); ratio < 0.95 {
		t.Fatalf("migration+boot only %.0f%% of install time", ratio*100)
	}
}

func TestInstallErrors(t *testing.T) {
	tc := newTestCloud(t, 1)
	cfg := defaultTargeted()
	cfg.TargetName = "ghost"
	if _, err := (Installer{Host: tc.host, Migration: tc.me}).Install(cfg); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("err = %v", err)
	}
	// Install twice: the RITM name collides.
	okCfg := defaultTargeted()
	install(t, tc, okCfg)
	if _, err := (Installer{Host: tc.host, Migration: tc.me}).Install(okCfg); err == nil {
		t.Fatal("second install with same RITM name succeeded")
	}
}

func TestInstallAutoTarget(t *testing.T) {
	tc := newTestCloud(t, 1)
	cfg := DefaultInstallConfig() // no TargetName
	rk := install(t, tc, cfg)
	if rk.Report.TargetName != "guest0" && rk.Report.TargetName != "guestM" {
		t.Fatalf("auto target = %q", rk.Report.TargetName)
	}
}

func TestParseMtreeRAMErrors(t *testing.T) {
	if _, err := parseMtreeRAMMB("garbage"); !errors.Is(err, ErrReconFailed) {
		t.Fatalf("err = %v", err)
	}
}
