package core

import (
	"testing"
	"time"

	"cloudskulk/internal/cpu"
	"cloudskulk/internal/mem"
)

func TestMirrorFileAndIntercept(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	f := mem.GenerateFile(tc.eng.RNG(), "pushed.bin", 8)
	hook := rk.InterceptFilePushes(4096)
	hook(f)
	if got := rk.RITM.RAM().FileResident(f, 4096); got != 8 {
		t.Fatalf("mirrored residency = %d", got)
	}
	// Oversized pushes are dropped silently (best effort).
	huge := mem.GenerateFile(tc.eng.RNG(), "huge.bin", rk.RITM.RAM().NumPages()+1)
	hook(huge)
	// Direct MirrorFile errors on overflow.
	if err := rk.MirrorFile(huge, 0); err == nil {
		t.Fatal("oversized MirrorFile succeeded")
	}
}

func TestMirrorRange(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	// Write known content into the victim, mirror it.
	for p := 3000; p < 3010; p++ {
		if _, err := rk.Victim.RAM().Write(p, mem.Content(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rk.MirrorRange(3000, 10); err != nil {
		t.Fatal(err)
	}
	for p := 3000; p < 3010; p++ {
		if rk.RITM.RAM().MustRead(p) != mem.Content(p) {
			t.Fatalf("page %d not mirrored", p)
		}
	}
	if err := rk.MirrorRange(1<<30, 1); err == nil {
		t.Fatal("out-of-range mirror succeeded")
	}
}

func TestPollingMirrorSync(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	// Seed the region in both.
	f := mem.GenerateFile(tc.eng.RNG(), "tracked.bin", 16)
	if err := rk.Victim.RAM().LoadFile(f, 5000); err != nil {
		t.Fatal(err)
	}
	if err := rk.MirrorFile(f, 6000); err != nil {
		t.Fatal(err)
	}
	ms := rk.StartMirrorSync(5000, 16, 6000, 100*time.Millisecond)
	defer ms.Stop()

	// The guest changes a tracked page; within an interval the mirror
	// follows.
	if _, err := rk.Victim.RAM().Write(5003, 0xabcd); err != nil {
		t.Fatal(err)
	}
	tc.eng.RunFor(250 * time.Millisecond)
	if got := rk.RITM.RAM().MustRead(6003); got != 0xabcd {
		t.Fatalf("mirror page = %#x, want synced 0xabcd", got)
	}
	scanned, copied, rate := ms.Overhead()
	if scanned == 0 || copied == 0 {
		t.Fatalf("overhead = %d/%d", scanned, copied)
	}
	if rate != 160 { // 16 pages / 0.1s
		t.Fatalf("scan rate = %v pages/s", rate)
	}
	ms.Stop()
	before := scannedOf(ms)
	tc.eng.RunFor(time.Second)
	if scannedOf(ms) != before {
		t.Fatal("sync kept scanning after Stop")
	}
}

func scannedOf(ms *MirrorSync) uint64 {
	s, _, _ := ms.Overhead()
	return s
}

func TestWriteTrackingSync(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	ws := rk.StartWriteTrackingSync(2000, 4, 7000)
	if !rk.Victim.RAM().HasWriteHook() {
		t.Fatal("hook not installed")
	}
	// Writes inside the window propagate instantly.
	if _, err := rk.Victim.RAM().Write(2001, 0x1111); err != nil {
		t.Fatal(err)
	}
	if rk.RITM.RAM().MustRead(7001) != 0x1111 {
		t.Fatal("tracked write not propagated")
	}
	// Writes outside the window do not trap.
	if _, err := rk.Victim.RAM().Write(100, 0x2222); err != nil {
		t.Fatal(err)
	}
	if ws.Traps() != 1 {
		t.Fatalf("traps = %d, want 1", ws.Traps())
	}
	perTrap := cpu.DefaultModel().NestedFaultCost.Duration()
	if ws.TrapOverhead(perTrap) != perTrap {
		t.Fatalf("overhead = %v", ws.TrapOverhead(perTrap))
	}
	ws.Stop()
	if rk.Victim.RAM().HasWriteHook() {
		t.Fatal("hook survived Stop")
	}
	if _, err := rk.Victim.RAM().Write(2002, 0x3333); err != nil {
		t.Fatal(err)
	}
	if ws.Traps() != 1 {
		t.Fatal("trapped after Stop")
	}
}

func TestWriteTrackingSyncWholeRAM(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	ws := rk.StartWriteTrackingSync(0, -1, 0)
	defer ws.Stop()
	if _, err := rk.Victim.RAM().Write(123, 0x9); err != nil {
		t.Fatal(err)
	}
	if _, err := rk.Victim.RAM().Write(4567, 0x8); err != nil {
		t.Fatal(err)
	}
	if ws.Traps() != 2 {
		t.Fatalf("traps = %d", ws.Traps())
	}
	if rk.RITM.RAM().MustRead(123) != 0x9 || rk.RITM.RAM().MustRead(4567) != 0x8 {
		t.Fatal("whole-RAM mirror incomplete")
	}
}
