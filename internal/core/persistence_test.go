package core

import (
	"strings"
	"testing"

	"cloudskulk/internal/vnet"
)

// TestRootkitSurvivesVictimReboot reproduces the paper's §VII-A claim:
// unlike SubVirt (needs a reboot to activate) and BluePill (does not
// survive one), CloudSkulk persists across the victim's reboot — the
// guest restarts *inside* the rootkit.
func TestRootkitSurvivesVictimReboot(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())

	// The victim's owner (or a suspicious admin) reboots "guest0".
	if err := rk.InnerHV.Reboot(rk.Victim.Name()); err != nil {
		t.Fatal(err)
	}
	if !rk.Victim.Running() {
		t.Fatalf("victim state after reboot = %v", rk.Victim.State())
	}
	// Still nested, still inside the RITM, RITM untouched.
	if rk.Victim.Level() != 2 {
		t.Fatalf("victim level = %v", rk.Victim.Level())
	}
	if !rk.RITM.Running() {
		t.Fatalf("ritm state = %v", rk.RITM.State())
	}

	// Traffic still flows through the rootkit after the reboot.
	sniffer := NewSniffer()
	if err := rk.AttachTap(sniffer); err != nil {
		t.Fatal(err)
	}
	if err := tc.net.AddEndpoint("client"); err != nil {
		t.Fatal(err)
	}
	if err := tc.net.Listen(vnet.Addr{Endpoint: rk.Victim.Endpoint(), Port: 22},
		func(*vnet.Packet) {}); err != nil {
		t.Fatal(err)
	}
	pkt := &vnet.Packet{
		From:    vnet.Addr{Endpoint: "client", Port: 40000},
		To:      vnet.Addr{Endpoint: "host", Port: 2222},
		Payload: []byte("post-reboot login"),
	}
	if err := tc.net.Send(pkt); err != nil {
		t.Fatal(err)
	}
	tc.eng.Run()
	if len(sniffer.PayloadsTo(22)) != 1 {
		t.Fatal("rootkit lost the victim's traffic after reboot")
	}

	// The admin's host view is unchanged: one "guest0" process with the
	// original command line.
	procs := tc.host.OS().FindByCommand("-name guest0")
	if len(procs) != 1 || !strings.Contains(procs[0].Command, "guest0") {
		t.Fatalf("host view after reboot: %v", procs)
	}
}

// TestRootkitSurvivesHostOnlyReboot: rebooting the RITM itself (what the
// admin can actually reboot from L0) destroys the nested victim's runtime
// but the paper's point is about *guest* reboots; this documents the
// boundary.
func TestRITMRebootLosesNestedGuestState(t *testing.T) {
	tc := newTestCloud(t, 1)
	rk := install(t, tc, defaultTargeted())
	secret := rk.Victim.RAM().MustRead(1000)
	if err := tc.host.Hypervisor().Reboot(rk.RITM.Name()); err != nil {
		t.Fatal(err)
	}
	// The RITM's own RAM is wiped (its hypervisor state with it). The
	// simulation keeps the nested VM object, but its hosting world
	// rebooted: an attacker would need to re-install.
	if got := rk.RITM.RAM().MustRead(0); got != 0 && got == secret {
		t.Fatal("ritm RAM survived its own reboot")
	}
}
