package core

import (
	"testing"
	"testing/quick"

	"cloudskulk/internal/kvm"
	"cloudskulk/internal/migrate"
	"cloudskulk/internal/qemu"
	"cloudskulk/internal/sim"
	"cloudskulk/internal/vnet"
)

// TestInstallInvariantProperty: for arbitrary seeds and guest sizes, a
// successful installation always (a) preserves the victim's memory
// bit-for-bit, (b) leaves the victim running at L2 under the original
// name, (c) keeps the original host ports routed to it, and (d) keeps the
// original PID alive in the process table.
func TestInstallInvariantProperty(t *testing.T) {
	f := func(seed int64, memSel uint8) bool {
		memMB := int64(8 + int(memSel)%25) // 8..32 MB
		eng := sim.NewEngine(seed)
		network := vnet.New(eng)
		h, err := kvm.NewHost(eng, network, "host")
		if err != nil {
			return false
		}
		me := migrate.NewEngine(eng, network)
		h.SetMigrationService(me)
		cfg := qemu.DefaultConfig("guest0")
		cfg.MemoryMB = memMB
		cfg.MonitorPort = 5555
		cfg.NetDevs[0].HostFwds = []qemu.FwdRule{{HostPort: 2222, GuestPort: 22}}
		victim, err := h.Hypervisor().CreateVM(cfg)
		if err != nil {
			return false
		}
		if err := h.Hypervisor().Launch("guest0"); err != nil {
			return false
		}
		before := victim.RAM().Snapshot()
		origPID := victim.PID()

		icfg := DefaultInstallConfig()
		icfg.TargetName = "guest0"
		rk, err := Installer{Host: h, Migration: me}.Install(icfg)
		if err != nil {
			return false
		}

		// (a) memory preserved.
		after := rk.Victim.RAM().Snapshot()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		// (b) running at L2, same name.
		if !rk.Victim.Running() || rk.Victim.Level() != 2 || rk.Victim.Name() != "guest0" {
			return false
		}
		// (c) port still routes to the victim through the RITM.
		dst, hops, err := network.ResolveForward(vnet.Addr{Endpoint: "host", Port: 2222})
		if err != nil || dst.Endpoint != rk.Victim.Endpoint() {
			return false
		}
		routedThroughRITM := false
		for _, hop := range hops {
			if hop == rk.RITM.Endpoint() {
				routedThroughRITM = true
			}
		}
		if !routedThroughRITM {
			return false
		}
		// (d) PID takeover.
		proc, ok := h.OS().Process(origPID)
		return ok && proc.PID == origPID && rk.RITM.PID() == origPID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
